// lsmssd_cli — command-line driver for the library.
//
//   lsmssd_cli run   [--workload=uniform|normal|tpc] [--policy=ChooseBest]
//                    [--size-mb=1.5] [--requests-mb=2] [--preserve=1]
//                    [--bloom=0] [--cache-blocks=0] [--trace-in=FILE]
//       Grow an index to the target size, reach the steady state, run a
//       measurement window, and print the paper's metrics.
//
//   lsmssd_cli run --db-path=DIR [--workload=...] [--n=50000]
//                  [--policy=ChooseBest] [--bloom=0] [--cache-blocks=0]
//                  [--sync=always|everyn|none] [--sync-n=64]
//                  [--checkpoint-wal-mb=8] [--threads=1]
//                  [--background-compaction] [--shards=1]
//       Persistent mode: open (or crash-recover) the Db at DIR, apply n
//       workload requests through the WAL, checkpoint on exit, and print
//       the Db stats. Re-running continues where the last run stopped.
//       --threads=T splits the n requests over T concurrent writers
//       (each with its own workload stream seeded seed+t), exercising
//       the Db's group commit and background checkpointing.
//       --background-compaction moves flushes and merges off the write
//       path onto a compaction thread (default off, keeping the
//       historical inline behaviour); the stats line then reports queue
//       depth, throttle/stall counts, and the stall-latency histogram.
//       --shards=N hash-partitions keys over N independent LSM shards
//       (each with its own WAL, device file, and compaction worker); the
//       layout is recorded in DIR/SHARDS, so later runs may omit the
//       flag. The stats line then adds the shard count, arbiter seals,
//       and stall fields aggregated across every shard.
//
//   lsmssd_cli trace [--workload=...] [--n=100000] --out=FILE
//       Capture a deterministic workload trace for replay.
//
//   lsmssd_cli manifest --dump=FILE
//       Print a summary of a saved manifest.
//
//   lsmssd_cli scrub --db-path=DIR
//       Offline integrity check: verify the checksum of every block the
//       manifest references without opening the Db. A sharded root
//       (DIR/SHARDS present) is walked shard by shard with a per-shard
//       damage report. Exits 0 when clean, 1 when any block is corrupt
//       or unreadable.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/db/db.h"
#include "src/lsm/manifest.h"
#include "src/storage/file_block_device.h"
#include "src/workload/trace.h"

namespace lsmssd::bench {
namespace {

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << arg << "\n";
      std::exit(2);
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const Flags& flags, const std::string& name,
                   const std::string& fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

WorkloadSpec SpecFromFlags(const Flags& flags) {
  WorkloadSpec spec;
  const std::string name = FlagOr(flags, "workload", "uniform");
  if (name == "uniform") {
    spec.kind = WorkloadKind::kUniform;
  } else if (name == "normal") {
    spec.kind = WorkloadKind::kNormal;
  } else if (name == "tpc") {
    spec.kind = WorkloadKind::kTpc;
  } else {
    std::cerr << "unknown workload: " << name << "\n";
    std::exit(2);
  }
  spec.seed = std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  spec.sigma_fraction =
      std::atof(FlagOr(flags, "sigma", "0.005").c_str());
  return spec;
}

int CmdRun(const Flags& flags) {
  PolicyKind kind;
  const std::string policy_name = FlagOr(flags, "policy", "ChooseBest");
  if (!ParsePolicyKind(policy_name, &kind)) {
    std::cerr << "unknown policy: " << policy_name
              << " (use Full|RR|ChooseBest|Mixed|TestMixed|PartitionedCB)\n";
    return 2;
  }
  Options options = BenchOptions();
  options.bloom_bits_per_key =
      std::strtoull(FlagOr(flags, "bloom", "0").c_str(), nullptr, 10);
  // Buffer cache in blocks (0 = off). Caching never changes write counts;
  // hits/misses show up in the device stats line.
  options.cache_blocks =
      std::strtoull(FlagOr(flags, "cache-blocks", "0").c_str(), nullptr, 10);
  PolicySpec policy{policy_name, kind,
                    FlagOr(flags, "preserve", "1") != "0"};

  const double size_mb = std::atof(FlagOr(flags, "size-mb", "1.5").c_str());
  const double window_mb =
      std::atof(FlagOr(flags, "requests-mb", "2").c_str());

  Experiment exp(options, policy, SpecFromFlags(flags));

  // Optional trace replay instead of the generator.
  std::unique_ptr<TraceWorkload> trace_workload;
  std::unique_ptr<WorkloadDriver> trace_driver;
  if (flags.contains("trace-in")) {
    auto trace = LoadTraceFromFile(flags.at("trace-in"));
    if (!trace.ok()) {
      std::cerr << "trace load failed: " << trace.status().ToString()
                << "\n";
      return 1;
    }
    trace_workload = std::make_unique<TraceWorkload>(std::move(*trace));
    trace_driver = std::make_unique<WorkloadDriver>(&exp.tree(),
                                                    trace_workload.get());
    Status st = trace_driver->Run(trace_workload->remaining());
    if (!st.ok()) {
      std::cerr << "replay failed: " << st.ToString() << "\n";
      return 1;
    }
  } else {
    Status st = exp.PrepareSteadyState(size_mb);
    if (!st.ok()) {
      std::cerr << "prepare failed: " << st.ToString() << "\n";
      return 1;
    }
    auto metrics = exp.Measure(window_mb);
    if (!metrics.ok()) {
      std::cerr << "measure failed: " << metrics.status().ToString() << "\n";
      return 1;
    }
    std::cout << "steady-state window (" << window_mb << " MB of requests):\n"
              << "  blocks written per MB : " << metrics->BlocksPerMb()
              << "\n"
              << "  seconds per MB        : " << metrics->SecondsPerMb()
              << "\n";
    if (policy.kind == PolicyKind::kMixed) {
      std::cout << "  learned parameters    : "
                << exp.learned_params().ToString() << "\n";
    }
  }

  LsmTree& tree = exp.tree();
  std::cout << "\nindex: " << tree.num_levels() << " levels, "
            << tree.TotalRecords() << " records, "
            << tree.ApproximateDataBytes() / (1024.0 * 1024.0) << " MB\n";
  for (size_t i = 1; i < tree.num_levels(); ++i) {
    std::cout << "  L" << i << ": " << tree.level(i).size_blocks() << "/"
              << tree.LevelCapacityBlocks(i) << " blocks, waste "
              << tree.level(i).waste_factor() << "\n";
  }
  std::cout << "device: " << exp.device().stats().ToString() << "\n";
  std::cout << "\nper-level merge stats:\n" << tree.stats().ToString();
  return 0;
}

// Persistent mode: the workload runs against a crash-safe Db directory
// instead of a fresh in-memory device. Every request goes through the
// WAL; the run ends with a checkpoint so the next invocation restores
// from the manifest alone.
int CmdRunDb(const Flags& flags) {
  DbOptions dbopts;
  dbopts.options = BenchOptions();
  // WAL replay re-applies a suffix of the history, which eager
  // tombstone+insert annihilation cannot tolerate; Db rejects it.
  dbopts.options.annihilate_delete_put = false;
  dbopts.options.bloom_bits_per_key =
      std::strtoull(FlagOr(flags, "bloom", "0").c_str(), nullptr, 10);
  dbopts.options.cache_blocks =
      std::strtoull(FlagOr(flags, "cache-blocks", "0").c_str(), nullptr, 10);

  const std::string policy_name = FlagOr(flags, "policy", "ChooseBest");
  if (!ParsePolicyKind(policy_name, &dbopts.policy)) {
    std::cerr << "unknown policy: " << policy_name
              << " (use Full|RR|ChooseBest|Mixed|TestMixed|PartitionedCB)\n";
    return 2;
  }

  const std::string sync = FlagOr(flags, "sync", "everyn");
  if (sync == "always") {
    dbopts.wal_sync_mode = WalSyncMode::kAlways;
  } else if (sync == "everyn") {
    dbopts.wal_sync_mode = WalSyncMode::kEveryN;
    dbopts.wal_sync_every_n = std::strtoull(
        FlagOr(flags, "sync-n", "64").c_str(), nullptr, 10);
  } else if (sync == "none") {
    dbopts.wal_sync_mode = WalSyncMode::kNone;
  } else {
    std::cerr << "unknown sync mode: " << sync << " (use always|everyn|none)\n";
    return 2;
  }
  dbopts.checkpoint_wal_bytes =
      std::strtoull(FlagOr(flags, "checkpoint-wal-mb", "8").c_str(), nullptr,
                    10) *
      1024 * 1024;
  // Off by default: the historical inline path merges on the write path.
  // With the flag, commits seal full memtables onto the compaction queue
  // and a worker thread flushes/merges them; stall and queue-depth fields
  // appear in the stats line below.
  dbopts.background_compaction = flags.contains("background-compaction") &&
                                 FlagOr(flags, "background-compaction", "0") != "0";
  dbopts.shards =
      std::strtoull(FlagOr(flags, "shards", "1").c_str(), nullptr, 10);
  if (dbopts.shards == 0) {
    std::cerr << "--shards must be >= 1\n";
    return 2;
  }

  auto db_or = Db::Open(dbopts, flags.at("db-path"));
  if (!db_or.ok()) {
    std::cerr << "open failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  Db& db = *db_or.value();
  {
    const DbStats s = db.Stats();
    std::cout << "opened " << db.dir() << ": restored "
              << s.recovery_manifest_blocks << " manifest blocks, replayed "
              << s.recovery_wal_entries_replayed << " WAL entries\n";
  }

  const auto n =
      std::strtoull(FlagOr(flags, "n", "50000").c_str(), nullptr, 10);
  const auto threads =
      std::strtoull(FlagOr(flags, "threads", "1").c_str(), nullptr, 10);
  if (threads == 0) {
    std::cerr << "--threads must be >= 1\n";
    return 2;
  }
  if (threads == 1) {
    // Single stream: byte-identical to the historical sequential path.
    auto workload = MakeWorkload(SpecFromFlags(flags));
    for (uint64_t i = 0; i < n; ++i) {
      const WorkloadRequest req = workload->Next();
      Status st = req.kind == WorkloadRequest::Kind::kDelete
                      ? db.Delete(req.key)
                      : db.Put(req.key, MakePayload(db.options(), req.key));
      if (!st.ok()) {
        std::cerr << "request " << i << " failed: " << st.ToString() << "\n";
        return 1;
      }
    }
  } else {
    // T concurrent writers, each with its own generator (seed+t) and an
    // even share of the n requests; group commit batches their syncs and
    // the maintenance thread absorbs the checkpoints.
    const WorkloadSpec base_spec = SpecFromFlags(flags);
    std::atomic<bool> ok{true};
    std::vector<std::thread> workers;
    for (uint64_t t = 0; t < threads; ++t) {
      workers.emplace_back([&db, &ok, base_spec, n, threads, t] {
        WorkloadSpec spec = base_spec;
        spec.seed += t;
        auto workload = MakeWorkload(spec);
        const uint64_t share = n / threads + (t < n % threads ? 1 : 0);
        for (uint64_t i = 0; i < share; ++i) {
          const WorkloadRequest req = workload->Next();
          Status st =
              req.kind == WorkloadRequest::Kind::kDelete
                  ? db.Delete(req.key)
                  : db.Put(req.key, MakePayload(db.options(), req.key));
          if (!st.ok()) {
            std::cerr << "writer " << t << " request " << i
                      << " failed: " << st.ToString() << "\n";
            ok.store(false);
            return;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    if (!ok.load()) return 1;
  }
  if (Status st = db.Checkpoint(); !st.ok()) {
    std::cerr << "final checkpoint failed: " << st.ToString() << "\n";
    return 1;
  }

  std::cout << "applied " << n << " requests\n";
  // One index summary per shard (the facade has no tree of its own);
  // unsharded output is unchanged.
  for (size_t s = 0; s < db.shard_count(); ++s) {
    const LsmTree& tree =
        db.shard_count() == 1 ? *db.tree() : *db.shard(s)->tree();
    std::cout << "\nindex";
    if (db.shard_count() > 1) std::cout << " (shard " << s << ")";
    std::cout << ": " << tree.num_levels() << " levels, "
              << tree.TotalRecords() << " records, "
              << tree.ApproximateDataBytes() / (1024.0 * 1024.0) << " MB\n";
    for (size_t i = 1; i < tree.num_levels(); ++i) {
      std::cout << "  L" << i << ": " << tree.level(i).size_blocks() << "/"
                << tree.LevelCapacityBlocks(i) << " blocks, waste "
                << tree.level(i).waste_factor() << "\n";
    }
  }
  std::cout << "\n" << db.Stats().ToString();
  return 0;
}

int CmdTrace(const Flags& flags) {
  if (!flags.contains("out")) {
    std::cerr << "trace requires --out=FILE\n";
    return 2;
  }
  const auto n = std::strtoull(FlagOr(flags, "n", "100000").c_str(),
                               nullptr, 10);
  auto workload = MakeWorkload(SpecFromFlags(flags));
  const auto trace = CaptureTrace(workload.get(), n);
  Status st = SaveTraceToFile(trace, flags.at("out"));
  if (!st.ok()) {
    std::cerr << "save failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "captured " << trace.size() << " requests to "
            << flags.at("out") << "\n";
  return 0;
}

int CmdManifest(const Flags& flags) {
  if (!flags.contains("dump")) {
    std::cerr << "manifest requires --dump=FILE\n";
    return 2;
  }
  auto manifest = LoadManifestFromFile(flags.at("dump"));
  if (!manifest.ok()) {
    std::cerr << "load failed: " << manifest.status().ToString() << "\n";
    return 1;
  }
  const Manifest& m = manifest.value();
  std::cout << "manifest: block_size=" << m.options.block_size
            << " payload=" << m.options.payload_size
            << " Gamma=" << m.options.gamma << " K0="
            << m.options.level0_capacity_blocks << "\n"
            << "memtable: " << m.memtable_records.size() << " records\n";
  for (size_t i = 0; i < m.levels.size(); ++i) {
    uint64_t records = 0;
    for (const auto& leaf : m.levels[i]) records += leaf.count;
    std::cout << "L" << i + 1 << ": " << m.levels[i].size() << " leaves, "
              << records << " records";
    if (!m.levels[i].empty()) {
      std::cout << ", keys [" << m.levels[i].front().min_key << ", "
                << m.levels[i].back().max_key << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

/// Verifies every manifest-live block of the single-shard Db directory
/// `dir`. `label` prefixes the report line ("" for an unsharded root).
/// Returns the corrupt-block count, or -1 when the directory itself is
/// unreadable.
int64_t ScrubOneDir(const std::string& dir, const std::string& label) {
  auto manifest_or = LoadManifestFromFile(Db::ManifestPath(dir));
  if (!manifest_or.ok()) {
    std::cerr << label << "manifest load failed: "
              << manifest_or.status().ToString() << "\n";
    return -1;
  }
  const Manifest& m = manifest_or.value();
  std::vector<BlockId> live;
  for (const auto& level : m.levels) {
    for (const auto& leaf : level) live.push_back(leaf.block);
  }
  FileBlockDevice::FileOptions fopts;
  fopts.block_size = m.options.block_size;
  fopts.remove_on_close = false;
  fopts.truncate = false;
  auto device_or = FileBlockDevice::Open(Db::DevicePath(dir), fopts);
  if (!device_or.ok()) {
    std::cerr << label << "device open failed: "
              << device_or.status().ToString() << "\n";
    return -1;
  }
  FileBlockDevice* device = device_or.value().get();
  if (Status st = device->RestoreLive(live); !st.ok()) {
    std::cerr << label << "restore failed: " << st.ToString() << "\n";
    return -1;
  }
  std::sort(live.begin(), live.end());
  uint64_t clean = 0;
  uint64_t corrupt = 0;
  for (BlockId id : live) {
    Status st = device->VerifyBlock(id);
    if (st.ok()) {
      ++clean;
    } else {
      ++corrupt;
      std::cerr << label << "block " << id << ": " << st.ToString() << "\n";
    }
  }
  std::cout << label << "scrub: " << clean << " clean, " << corrupt
            << " corrupt of " << live.size() << " manifest blocks\n";
  return static_cast<int64_t>(corrupt);
}

int CmdScrub(const Flags& flags) {
  if (!flags.contains("db-path")) {
    std::cerr << "scrub requires --db-path=DIR\n";
    return 2;
  }
  const std::string dir = flags.at("db-path");

  // A sharded root carries a SHARDS layout file; walk every shard and
  // report damage per shard so the operator knows which device file to
  // restore. Any unreadable shard fails the whole scrub.
  auto layout_or = Db::ReadShardLayout(dir);
  if (layout_or.ok()) {
    const size_t n = layout_or.value();
    std::cout << "sharded root: " << n << " shards\n";
    uint64_t corrupt_total = 0;
    bool failed = false;
    for (size_t s = 0; s < n; ++s) {
      const int64_t corrupt = ScrubOneDir(
          Db::ShardDirPath(dir, s), "shard " + std::to_string(s) + ": ");
      if (corrupt < 0) {
        failed = true;
      } else {
        corrupt_total += static_cast<uint64_t>(corrupt);
      }
    }
    std::cout << "total: " << corrupt_total << " corrupt across " << n
              << " shards\n";
    return (failed || corrupt_total > 0) ? 1 : 0;
  }
  if (!layout_or.status().IsNotFound()) {
    // A SHARDS file exists but cannot be trusted (torn or tampered).
    std::cerr << "shard layout: " << layout_or.status().ToString() << "\n";
    return 1;
  }

  const int64_t corrupt = ScrubOneDir(dir, "");
  return corrupt == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr
        << "usage: lsmssd_cli run|trace|manifest|scrub [--flag=value ...]\n";
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (command == "run") {
    return flags.contains("db-path") ? CmdRunDb(flags) : CmdRun(flags);
  }
  if (command == "trace") return CmdTrace(flags);
  if (command == "manifest") return CmdManifest(flags);
  if (command == "scrub") return CmdScrub(flags);
  std::cerr << "unknown command: " << command << "\n";
  return 2;
}

}  // namespace
}  // namespace lsmssd::bench

int main(int argc, char** argv) { return lsmssd::bench::Main(argc, argv); }
