// lsmssd_cli — command-line driver for the library.
//
//   lsmssd_cli run   [--workload=uniform|normal|tpc] [--policy=ChooseBest]
//                    [--size-mb=1.5] [--requests-mb=2] [--preserve=1]
//                    [--bloom=0] [--cache-blocks=0] [--trace-in=FILE]
//       Grow an index to the target size, reach the steady state, run a
//       measurement window, and print the paper's metrics.
//
//   lsmssd_cli run --db-path=DIR [--workload=...] [--n=50000]
//                  [--policy=ChooseBest] [--bloom=0] [--cache-blocks=0]
//                  [--sync=always|everyn|none] [--sync-n=64]
//                  [--checkpoint-wal-mb=8] [--threads=1]
//                  [--background-compaction] [--compaction-workers=1]
//                  [--compaction-rate-limit=0] [--shards=1]
//                  [--scrub-interval-ms=0] [--max-device-blocks=0]
//       Persistent mode: open (or crash-recover) the Db at DIR, apply n
//       workload requests through the WAL, checkpoint on exit, and print
//       the Db stats. Re-running continues where the last run stopped.
//       --threads=T splits the n requests over T concurrent writers
//       (each with its own workload stream seeded seed+t), exercising
//       the Db's group commit and background checkpointing.
//       --background-compaction moves flushes and merges off the write
//       path onto a compaction thread (default off, keeping the
//       historical inline behaviour); the stats line then reports queue
//       depth, throttle/stall counts, and the stall-latency histogram.
//       --compaction-workers=N runs N compaction threads (flushes and
//       merges of disjoint levels in parallel, coordinated by per-level
//       ownership); --compaction-rate-limit=B paces merge block-writes
//       to B blocks/sec through a token bucket that always yields to
//       writer backpressure (0 = unlimited).
//       --shards=N hash-partitions keys over N independent LSM shards
//       (each with its own WAL, device file, and compaction worker); the
//       layout is recorded in DIR/SHARDS, so later runs may omit the
//       flag. The stats line then adds the shard count, arbiter seals,
//       and stall fields aggregated across every shard.
//
//   lsmssd_cli serve --db-path=DIR [--host=127.0.0.1] [--port=0]
//                    [--workers=4] [--drain-timeout-ms=5000]
//                    [--max-pending-frames=4096]
//                    [Db flags as for run --db-path]
//       Open the Db and serve it over the versioned binary protocol
//       (src/net/wire.h) until SIGINT/SIGTERM. Prints
//       "listening on HOST:PORT" once the socket is bound (--port=0
//       picks an ephemeral port — parse that line to find it). On
//       SIGTERM/SIGINT the server *drains*: it stops accepting, answers
//       every in-flight frame (stragglers get kShuttingDown), flushes,
//       and only then falls back to cutting connections at the
//       --drain-timeout-ms deadline; the Db checkpoints and the stats
//       (including quarantined_blocks) are printed.
//       --max-pending-frames caps decoded-but-unexecuted requests across
//       all connections; excess requests are answered kOverloaded with a
//       retry-after hint instead of queueing without bound.
//
//   lsmssd_cli ping --port=P [--host=127.0.0.1] [--timeout-ms=1000]
//                   [--attempts=1]
//       Health check: one PING round trip (exit 0 = server answered).
//       --attempts>1 retries with exponential backoff — the readiness
//       poll `scripts/server_smoke.sh` uses instead of sleeping.
//
//   lsmssd_cli trace [--workload=...] [--n=100000] --out=FILE
//       Capture a deterministic workload trace for replay.
//
//   lsmssd_cli manifest --dump=FILE
//       Print a summary of a saved manifest.
//
//   lsmssd_cli scrub --db-path=DIR
//       Offline integrity check: verify the checksum of every block the
//       manifest references without opening the Db. A sharded root
//       (DIR/SHARDS present) is walked shard by shard with a per-shard
//       damage report. Exits 0 when clean, 1 when any block is corrupt
//       or unreadable.
//
// Flag parsing, validation, and DbOptions construction are shared with
// every other tool through src/db/db_flags.h — a bad flag fails with
// usage before anything touches the filesystem.

#include <csignal>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/db/db.h"
#include "src/db/db_flags.h"
#include "src/lsm/manifest.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/storage/file_block_device.h"
#include "src/workload/trace.h"

namespace lsmssd::bench {
namespace {

using Flags = FlagMap;

/// Prints a flag error plus the usage pointer; returns exit code 2.
/// Called before any directory is created, so a typo never leaves
/// state behind.
int FailUsage(const Status& status) {
  std::cerr << status.message() << "\n"
            << "usage: lsmssd_cli run|serve|ping|trace|manifest|scrub "
               "[--flag=value ...] (see source header for flags)\n";
  return 2;
}

StatusOr<WorkloadSpec> SpecFromFlags(const Flags& flags) {
  WorkloadSpec spec;
  const std::string name = FlagOr(flags, "workload", "uniform");
  if (name == "uniform") {
    spec.kind = WorkloadKind::kUniform;
  } else if (name == "normal") {
    spec.kind = WorkloadKind::kNormal;
  } else if (name == "tpc") {
    spec.kind = WorkloadKind::kTpc;
  } else {
    return Status::InvalidArgument("unknown workload: " + name +
                                   " (use uniform|normal|tpc)");
  }
  LSMSSD_ASSIGN_OR_RETURN(spec.seed, FlagUint(flags, "seed", 1));
  LSMSSD_ASSIGN_OR_RETURN(spec.sigma_fraction,
                          FlagDouble(flags, "sigma", 0.005));
  return spec;
}

int CmdRun(const Flags& flags) {
  if (Status st = CheckKnownFlags(
          flags, {"workload", "seed", "sigma", "policy", "preserve", "bloom",
                  "cache-blocks", "size-mb", "requests-mb", "trace-in"});
      !st.ok()) {
    return FailUsage(st);
  }
  PolicyKind kind;
  const std::string policy_name = FlagOr(flags, "policy", "ChooseBest");
  if (!ParsePolicyKind(policy_name, &kind)) {
    return FailUsage(Status::InvalidArgument(
        "unknown policy: " + policy_name +
        " (use Full|RR|ChooseBest|Mixed|TestMixed|PartitionedCB)"));
  }
  Options options = BenchOptions();
  auto bloom_or = FlagUint(flags, "bloom", 0);
  if (!bloom_or.ok()) return FailUsage(bloom_or.status());
  options.bloom_bits_per_key = *bloom_or;
  // Buffer cache in blocks (0 = off). Caching never changes write counts;
  // hits/misses show up in the device stats line.
  auto cache_or = FlagUint(flags, "cache-blocks", 0);
  if (!cache_or.ok()) return FailUsage(cache_or.status());
  options.cache_blocks = *cache_or;
  PolicySpec policy{policy_name, kind,
                    FlagOr(flags, "preserve", "1") != "0"};

  auto size_or = FlagDouble(flags, "size-mb", 1.5);
  if (!size_or.ok()) return FailUsage(size_or.status());
  auto window_or = FlagDouble(flags, "requests-mb", 2);
  if (!window_or.ok()) return FailUsage(window_or.status());
  const double size_mb = *size_or;
  const double window_mb = *window_or;

  auto spec_or = SpecFromFlags(flags);
  if (!spec_or.ok()) return FailUsage(spec_or.status());
  Experiment exp(options, policy, *spec_or);

  // Optional trace replay instead of the generator.
  std::unique_ptr<TraceWorkload> trace_workload;
  std::unique_ptr<WorkloadDriver> trace_driver;
  if (flags.contains("trace-in")) {
    auto trace = LoadTraceFromFile(flags.at("trace-in"));
    if (!trace.ok()) {
      std::cerr << "trace load failed: " << trace.status().ToString()
                << "\n";
      return 1;
    }
    trace_workload = std::make_unique<TraceWorkload>(std::move(*trace));
    trace_driver = std::make_unique<WorkloadDriver>(&exp.tree(),
                                                    trace_workload.get());
    Status st = trace_driver->Run(trace_workload->remaining());
    if (!st.ok()) {
      std::cerr << "replay failed: " << st.ToString() << "\n";
      return 1;
    }
  } else {
    Status st = exp.PrepareSteadyState(size_mb);
    if (!st.ok()) {
      std::cerr << "prepare failed: " << st.ToString() << "\n";
      return 1;
    }
    auto metrics = exp.Measure(window_mb);
    if (!metrics.ok()) {
      std::cerr << "measure failed: " << metrics.status().ToString() << "\n";
      return 1;
    }
    std::cout << "steady-state window (" << window_mb << " MB of requests):\n"
              << "  blocks written per MB : " << metrics->BlocksPerMb()
              << "\n"
              << "  seconds per MB        : " << metrics->SecondsPerMb()
              << "\n";
    if (policy.kind == PolicyKind::kMixed) {
      std::cout << "  learned parameters    : "
                << exp.learned_params().ToString() << "\n";
    }
  }

  LsmTree& tree = exp.tree();
  std::cout << "\nindex: " << tree.num_levels() << " levels, "
            << tree.TotalRecords() << " records, "
            << tree.ApproximateDataBytes() / (1024.0 * 1024.0) << " MB\n";
  for (size_t i = 1; i < tree.num_levels(); ++i) {
    std::cout << "  L" << i << ": " << tree.level(i).size_blocks() << "/"
              << tree.LevelCapacityBlocks(i) << " blocks, waste "
              << tree.level(i).waste_factor() << "\n";
  }
  std::cout << "device: " << exp.device().stats().ToString() << "\n";
  std::cout << "\nper-level merge stats:\n" << tree.stats().ToString();
  return 0;
}

/// Prints the per-shard index summary and the stats line (shared by the
/// run and serve epilogues).
void PrintDbSummary(Db& db) {
  // One index summary per shard (the facade has no tree of its own);
  // unsharded output is unchanged.
  for (size_t s = 0; s < db.shard_count(); ++s) {
    const LsmTree& tree =
        db.shard_count() == 1 ? *db.tree() : *db.shard(s)->tree();
    std::cout << "\nindex";
    if (db.shard_count() > 1) std::cout << " (shard " << s << ")";
    std::cout << ": " << tree.num_levels() << " levels, "
              << tree.TotalRecords() << " records, "
              << tree.ApproximateDataBytes() / (1024.0 * 1024.0) << " MB\n";
    for (size_t i = 1; i < tree.num_levels(); ++i) {
      std::cout << "  L" << i << ": " << tree.level(i).size_blocks() << "/"
                << tree.LevelCapacityBlocks(i) << " blocks, waste "
                << tree.level(i).waste_factor() << "\n";
    }
  }
  std::cout << "\n" << db.Stats().ToString();
}

// Persistent mode: the workload runs against a crash-safe Db directory
// instead of a fresh in-memory device. Every request goes through the
// WAL; the run ends with a checkpoint so the next invocation restores
// from the manifest alone.
int CmdRunDb(const Flags& flags) {
  std::vector<std::string_view> known = {"db-path", "workload", "seed",
                                         "sigma",   "n",        "threads"};
  AppendDbFlagNames(&known);
  if (Status st = CheckKnownFlags(flags, known); !st.ok()) {
    return FailUsage(st);
  }
  auto dbopts_or = DbOptionsFromFlags(flags, BenchOptions());
  if (!dbopts_or.ok()) return FailUsage(dbopts_or.status());
  auto n_or = FlagUint(flags, "n", 50000);
  if (!n_or.ok()) return FailUsage(n_or.status());
  auto threads_or = FlagUint(flags, "threads", 1);
  if (!threads_or.ok()) return FailUsage(threads_or.status());
  if (*threads_or == 0) {
    return FailUsage(Status::InvalidArgument("--threads must be >= 1"));
  }
  auto base_spec_or = SpecFromFlags(flags);
  if (!base_spec_or.ok()) return FailUsage(base_spec_or.status());
  const uint64_t n = *n_or;
  const uint64_t threads = *threads_or;

  auto db_or = Db::Open(*dbopts_or, flags.at("db-path"));
  if (!db_or.ok()) {
    std::cerr << "open failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  Db& db = *db_or.value();
  {
    const DbStats s = db.Stats();
    std::cout << "opened " << db.dir() << ": restored "
              << s.recovery_manifest_blocks << " manifest blocks, replayed "
              << s.recovery_wal_entries_replayed << " WAL entries\n";
  }

  if (threads == 1) {
    // Single stream: byte-identical to the historical sequential path.
    auto workload = MakeWorkload(*base_spec_or);
    for (uint64_t i = 0; i < n; ++i) {
      const WorkloadRequest req = workload->Next();
      Status st = req.kind == WorkloadRequest::Kind::kDelete
                      ? db.Delete(req.key)
                      : db.Put(req.key, MakePayload(db.options(), req.key));
      if (!st.ok()) {
        std::cerr << "request " << i << " failed: " << st.ToString() << "\n";
        return 1;
      }
    }
  } else {
    // T concurrent writers, each with its own generator (seed+t) and an
    // even share of the n requests; group commit batches their syncs and
    // the maintenance thread absorbs the checkpoints.
    const WorkloadSpec base_spec = *base_spec_or;
    std::atomic<bool> ok{true};
    std::vector<std::thread> workers;
    for (uint64_t t = 0; t < threads; ++t) {
      workers.emplace_back([&db, &ok, base_spec, n, threads, t] {
        WorkloadSpec spec = base_spec;
        spec.seed += t;
        auto workload = MakeWorkload(spec);
        const uint64_t share = n / threads + (t < n % threads ? 1 : 0);
        for (uint64_t i = 0; i < share; ++i) {
          const WorkloadRequest req = workload->Next();
          Status st =
              req.kind == WorkloadRequest::Kind::kDelete
                  ? db.Delete(req.key)
                  : db.Put(req.key, MakePayload(db.options(), req.key));
          if (!st.ok()) {
            std::cerr << "writer " << t << " request " << i
                      << " failed: " << st.ToString() << "\n";
            ok.store(false);
            return;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    if (!ok.load()) return 1;
  }
  // Drain the compaction queue before the final checkpoint: a paced or
  // busy worker pool may still hold sealed memtables, and the one-shot
  // run contract is queue_depth=0 in the exit stats.
  if (Status st = db.WaitForCompaction(); !st.ok()) {
    std::cerr << "compaction drain failed: " << st.ToString() << "\n";
    return 1;
  }
  if (Status st = db.Checkpoint(); !st.ok()) {
    std::cerr << "final checkpoint failed: " << st.ToString() << "\n";
    return 1;
  }

  std::cout << "applied " << n << " requests\n";
  PrintDbSummary(db);
  return 0;
}

std::atomic<int> g_stop_signal{0};

void HandleStopSignal(int sig) { g_stop_signal.store(sig); }

// Serve the Db over the versioned binary protocol until SIGINT/SIGTERM.
int CmdServe(const Flags& flags) {
  std::vector<std::string_view> known = {"db-path", "host", "port", "workers",
                                         "drain-timeout-ms",
                                         "max-pending-frames"};
  AppendDbFlagNames(&known);
  if (Status st = CheckKnownFlags(flags, known); !st.ok()) {
    return FailUsage(st);
  }
  if (!flags.contains("db-path")) {
    return FailUsage(
        Status::InvalidArgument("serve requires --db-path=DIR"));
  }
  auto dbopts_or = DbOptionsFromFlags(flags, BenchOptions());
  if (!dbopts_or.ok()) return FailUsage(dbopts_or.status());
  auto port_or = FlagUint(flags, "port", 0);
  if (!port_or.ok()) return FailUsage(port_or.status());
  if (*port_or > 65535) {
    return FailUsage(Status::InvalidArgument("--port must be <= 65535"));
  }
  auto workers_or = FlagUint(flags, "workers", 4);
  if (!workers_or.ok()) return FailUsage(workers_or.status());
  if (*workers_or == 0) {
    return FailUsage(Status::InvalidArgument("--workers must be >= 1"));
  }
  auto drain_ms_or = FlagUint(flags, "drain-timeout-ms", 5000);
  if (!drain_ms_or.ok()) return FailUsage(drain_ms_or.status());
  auto max_pending_or = FlagUint(flags, "max-pending-frames", 4096);
  if (!max_pending_or.ok()) return FailUsage(max_pending_or.status());

  auto db_or = Db::Open(*dbopts_or, flags.at("db-path"));
  if (!db_or.ok()) {
    std::cerr << "open failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  Db& db = *db_or.value();
  {
    const DbStats s = db.Stats();
    std::cout << "opened " << db.dir() << ": restored "
              << s.recovery_manifest_blocks << " manifest blocks, replayed "
              << s.recovery_wal_entries_replayed << " WAL entries\n";
  }

  net::ServerOptions sopts;
  sopts.host = FlagOr(flags, "host", "127.0.0.1");
  sopts.port = static_cast<uint16_t>(*port_or);
  sopts.workers = static_cast<size_t>(*workers_or);
  sopts.max_pending_frames = static_cast<size_t>(*max_pending_or);
  auto server_or = net::Server::Start(sopts, &db);
  if (!server_or.ok()) {
    std::cerr << "server start failed: " << server_or.status().ToString()
              << "\n";
    return 1;
  }
  net::Server& server = **server_or;
  // Scripted callers (the CI smoke job, the bench in spawn mode) parse
  // this exact line for the resolved port; keep it first and flushed.
  std::cout << "listening on " << sopts.host << ":" << server.port()
            << std::endl;

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (g_stop_signal.load() == 0 && !db.failed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const int sig = g_stop_signal.load();
  std::cout << (sig != 0 ? (sig == SIGINT ? "SIGINT" : "SIGTERM")
                         : "db failure")
            << ": shutting down\n";

  const bool drained =
      server.Drain(static_cast<int>(std::min<uint64_t>(*drain_ms_or, 1u << 30)));
  const net::ServerCounters counters = server.counters();
  std::cout << "drain " << (drained ? "clean" : "timed out") << " ("
            << counters.frames_rejected_shutdown
            << " frames rejected kShuttingDown)\n";
  if (Status st = db.Checkpoint(); !st.ok()) {
    std::cerr << "final checkpoint failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "served " << counters.frames_processed << " frames over "
            << counters.connections_accepted << " connections ("
            << counters.connections_dropped_malformed
            << " dropped malformed, " << counters.unsupported_version_frames
            << " unsupported-version, " << counters.frames_shed_overload
            << " shed overloaded)\n";
  std::cout << "quarantined_blocks " << db.Stats().quarantined_blocks.size()
            << "\n";
  PrintDbSummary(db);
  return db.failed() ? 1 : 0;
}

// One PING round trip, with optional retry/backoff — the scriptable
// readiness probe (a server that answers PING is accepting and serving).
int CmdPing(const Flags& flags) {
  if (Status st = CheckKnownFlags(flags,
                                  {"host", "port", "timeout-ms", "attempts"});
      !st.ok()) {
    return FailUsage(st);
  }
  auto port_or = FlagUint(flags, "port", 0);
  if (!port_or.ok()) return FailUsage(port_or.status());
  if (*port_or == 0 || *port_or > 65535) {
    return FailUsage(Status::InvalidArgument("ping requires --port=1..65535"));
  }
  auto timeout_or = FlagUint(flags, "timeout-ms", 1000);
  if (!timeout_or.ok()) return FailUsage(timeout_or.status());
  auto attempts_or = FlagUint(flags, "attempts", 1);
  if (!attempts_or.ok()) return FailUsage(attempts_or.status());
  if (*attempts_or == 0) {
    return FailUsage(Status::InvalidArgument("--attempts must be >= 1"));
  }

  net::ClientOptions copts;
  copts.host = FlagOr(flags, "host", "127.0.0.1");
  copts.port = static_cast<uint16_t>(*port_or);
  copts.connect_timeout_ms = static_cast<int>(*timeout_or);
  copts.io_timeout_ms = static_cast<int>(*timeout_or);
  copts.retry.max_attempts = static_cast<int>(*attempts_or);
  copts.retry.initial_backoff_ms = 50;
  copts.retry.max_backoff_ms = 500;

  // Connect() itself is outside the client's retry loop (there is no
  // client yet), so the probe retries the dial here with the same
  // budget — connection refused just means "not listening yet".
  const auto start = std::chrono::steady_clock::now();
  Status last = Status::OK();
  for (uint64_t attempt = 1; attempt <= *attempts_or; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<uint64_t>(50 * attempt, 500)));
    }
    auto client_or = net::Client::Connect(copts);
    if (!client_or.ok()) {
      last = client_or.status();
      continue;
    }
    last = (*client_or)->Ping();
    if (last.ok()) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      std::cout << "pong from " << copts.host << ":" << copts.port << " in "
                << elapsed.count() << "ms (attempt " << attempt << ")\n";
      return 0;
    }
  }
  std::cerr << "ping failed: " << last.ToString() << "\n";
  return 1;
}

int CmdTrace(const Flags& flags) {
  if (Status st = CheckKnownFlags(flags,
                                  {"workload", "seed", "sigma", "n", "out"});
      !st.ok()) {
    return FailUsage(st);
  }
  if (!flags.contains("out")) {
    return FailUsage(Status::InvalidArgument("trace requires --out=FILE"));
  }
  auto n_or = FlagUint(flags, "n", 100000);
  if (!n_or.ok()) return FailUsage(n_or.status());
  auto spec_or = SpecFromFlags(flags);
  if (!spec_or.ok()) return FailUsage(spec_or.status());
  auto workload = MakeWorkload(*spec_or);
  const auto trace = CaptureTrace(workload.get(), *n_or);
  Status st = SaveTraceToFile(trace, flags.at("out"));
  if (!st.ok()) {
    std::cerr << "save failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "captured " << trace.size() << " requests to "
            << flags.at("out") << "\n";
  return 0;
}

int CmdManifest(const Flags& flags) {
  if (Status st = CheckKnownFlags(flags, {"dump"}); !st.ok()) {
    return FailUsage(st);
  }
  if (!flags.contains("dump")) {
    return FailUsage(Status::InvalidArgument("manifest requires --dump=FILE"));
  }
  auto manifest = LoadManifestFromFile(flags.at("dump"));
  if (!manifest.ok()) {
    std::cerr << "load failed: " << manifest.status().ToString() << "\n";
    return 1;
  }
  const Manifest& m = manifest.value();
  std::cout << "manifest: block_size=" << m.options.block_size
            << " payload=" << m.options.payload_size
            << " Gamma=" << m.options.gamma << " K0="
            << m.options.level0_capacity_blocks << "\n"
            << "memtable: " << m.memtable_records.size() << " records\n";
  for (size_t i = 0; i < m.levels.size(); ++i) {
    uint64_t records = 0;
    for (const auto& leaf : m.levels[i]) records += leaf.count;
    std::cout << "L" << i + 1 << ": " << m.levels[i].size() << " leaves, "
              << records << " records";
    if (!m.levels[i].empty()) {
      std::cout << ", keys [" << m.levels[i].front().min_key << ", "
                << m.levels[i].back().max_key << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

/// Verifies every manifest-live block of the single-shard Db directory
/// `dir`. `label` prefixes the report line ("" for an unsharded root).
/// Returns the corrupt-block count, or -1 when the directory itself is
/// unreadable.
int64_t ScrubOneDir(const std::string& dir, const std::string& label) {
  auto manifest_or = LoadManifestFromFile(Db::ManifestPath(dir));
  if (!manifest_or.ok()) {
    std::cerr << label << "manifest load failed: "
              << manifest_or.status().ToString() << "\n";
    return -1;
  }
  const Manifest& m = manifest_or.value();
  std::vector<BlockId> live;
  for (const auto& level : m.levels) {
    for (const auto& leaf : level) live.push_back(leaf.block);
  }
  FileBlockDevice::FileOptions fopts;
  fopts.block_size = m.options.block_size;
  fopts.remove_on_close = false;
  fopts.truncate = false;
  auto device_or = FileBlockDevice::Open(Db::DevicePath(dir), fopts);
  if (!device_or.ok()) {
    std::cerr << label << "device open failed: "
              << device_or.status().ToString() << "\n";
    return -1;
  }
  FileBlockDevice* device = device_or.value().get();
  if (Status st = device->RestoreLive(live); !st.ok()) {
    std::cerr << label << "restore failed: " << st.ToString() << "\n";
    return -1;
  }
  std::sort(live.begin(), live.end());
  uint64_t clean = 0;
  uint64_t corrupt = 0;
  for (BlockId id : live) {
    Status st = device->VerifyBlock(id);
    if (st.ok()) {
      ++clean;
    } else {
      ++corrupt;
      std::cerr << label << "block " << id << ": " << st.ToString() << "\n";
    }
  }
  std::cout << label << "scrub: " << clean << " clean, " << corrupt
            << " corrupt of " << live.size() << " manifest blocks\n";
  return static_cast<int64_t>(corrupt);
}

int CmdScrub(const Flags& flags) {
  if (Status st = CheckKnownFlags(flags, {"db-path"}); !st.ok()) {
    return FailUsage(st);
  }
  if (!flags.contains("db-path")) {
    return FailUsage(Status::InvalidArgument("scrub requires --db-path=DIR"));
  }
  const std::string dir = flags.at("db-path");

  // A sharded root carries a SHARDS layout file; walk every shard and
  // report damage per shard so the operator knows which device file to
  // restore. Any unreadable shard fails the whole scrub.
  auto layout_or = Db::ReadShardLayout(dir);
  if (layout_or.ok()) {
    const size_t n = layout_or.value();
    std::cout << "sharded root: " << n << " shards\n";
    uint64_t corrupt_total = 0;
    bool failed = false;
    for (size_t s = 0; s < n; ++s) {
      const int64_t corrupt = ScrubOneDir(
          Db::ShardDirPath(dir, s), "shard " + std::to_string(s) + ": ");
      if (corrupt < 0) {
        failed = true;
      } else {
        corrupt_total += static_cast<uint64_t>(corrupt);
      }
    }
    std::cout << "total: " << corrupt_total << " corrupt across " << n
              << " shards\n";
    return (failed || corrupt_total > 0) ? 1 : 0;
  }
  if (!layout_or.status().IsNotFound()) {
    // A SHARDS file exists but cannot be trusted (torn or tampered).
    std::cerr << "shard layout: " << layout_or.status().ToString() << "\n";
    return 1;
  }

  const int64_t corrupt = ScrubOneDir(dir, "");
  return corrupt == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: lsmssd_cli run|serve|ping|trace|manifest|scrub "
                 "[--flag=value ...]\n";
    return 2;
  }
  const std::string command = argv[1];
  auto flags_or = ParseFlagArgs(argc, argv, 2);
  if (!flags_or.ok()) return FailUsage(flags_or.status());
  const Flags& flags = *flags_or;
  if (command == "run") {
    return flags.contains("db-path") ? CmdRunDb(flags) : CmdRun(flags);
  }
  if (command == "serve") return CmdServe(flags);
  if (command == "ping") return CmdPing(flags);
  if (command == "trace") return CmdTrace(flags);
  if (command == "manifest") return CmdManifest(flags);
  if (command == "scrub") return CmdScrub(flags);
  std::cerr << "unknown command: " << command << "\n";
  return 2;
}

}  // namespace
}  // namespace lsmssd::bench

int main(int argc, char** argv) { return lsmssd::bench::Main(argc, argv); }
