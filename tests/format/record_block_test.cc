#include "src/format/record_block.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

std::string Payload(const Options& o, char c) {
  return std::string(o.payload_size, c);
}

TEST(RecordBlockTest, CapacityMatchesOptions) {
  const Options o = TinyOptions();  // 256B blocks, 25B records, 4B header.
  EXPECT_EQ(o.records_per_block(), 10u);
  RecordBlockBuilder b(o);
  EXPECT_EQ(b.capacity(), 10u);
}

TEST(RecordBlockTest, RoundTripPutsAndTombstones) {
  const Options o = TinyOptions();
  RecordBlockBuilder b(o);
  b.Add(Record::Put(1, Payload(o, 'a')));
  b.Add(Record::Tombstone(5));
  b.Add(Record::Put(9, Payload(o, 'b')));
  EXPECT_EQ(b.min_key(), 1u);
  EXPECT_EQ(b.max_key(), 9u);

  const BlockData data = b.Finish();
  EXPECT_TRUE(b.empty());  // Finish resets.

  auto records_or = DecodeRecordBlock(o, data);
  ASSERT_TRUE(records_or.ok()) << records_or.status().ToString();
  const auto& rs = records_or.value();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs[0], Record::Put(1, Payload(o, 'a')));
  EXPECT_EQ(rs[1], Record::Tombstone(5));
  EXPECT_EQ(rs[2], Record::Put(9, Payload(o, 'b')));
}

TEST(RecordBlockTest, FullBlockRoundTrip) {
  const Options o = TinyOptions();
  RecordBlockBuilder b(o);
  for (Key k = 0; k < o.records_per_block(); ++k) {
    EXPECT_FALSE(b.full());
    b.Add(Record::Put(k * 3, Payload(o, 'x')));
  }
  EXPECT_TRUE(b.full());
  auto records_or = DecodeRecordBlock(o, b.Finish());
  ASSERT_TRUE(records_or.ok());
  EXPECT_EQ(records_or.value().size(), o.records_per_block());
}

TEST(RecordBlockTest, EmptyBlockRoundTrip) {
  const Options o = TinyOptions();
  auto records_or = DecodeRecordBlock(o, EncodeRecordBlock(o, {}));
  ASSERT_TRUE(records_or.ok());
  EXPECT_TRUE(records_or.value().empty());
}

TEST(RecordBlockTest, SerializedSizeFitsBlock) {
  const Options o = TinyOptions();
  std::vector<Record> rs;
  for (Key k = 0; k < o.records_per_block(); ++k) {
    rs.push_back(Record::Put(k, Payload(o, 'x')));
  }
  EXPECT_LE(EncodeRecordBlock(o, rs).size(), o.block_size);
}

TEST(RecordBlockTest, DecodeRejectsTruncatedHeader) {
  const Options o = TinyOptions();
  EXPECT_TRUE(DecodeRecordBlock(o, BlockData{1, 2}).status().IsCorruption());
}

TEST(RecordBlockTest, DecodeRejectsRecordSizeMismatch) {
  Options writer = TinyOptions();
  Options reader = TinyOptions();
  reader.payload_size = writer.payload_size + 4;
  const BlockData data =
      EncodeRecordBlock(writer, {Record::Put(1, Payload(writer, 'a'))});
  EXPECT_TRUE(DecodeRecordBlock(reader, data).status().IsCorruption());
}

TEST(RecordBlockTest, DecodeRejectsCorruptType) {
  const Options o = TinyOptions();
  BlockData data = EncodeRecordBlock(o, {Record::Put(1, Payload(o, 'a'))});
  data[4] = 0x77;  // First record's type byte.
  EXPECT_TRUE(DecodeRecordBlock(o, data).status().IsCorruption());
}

TEST(RecordBlockTest, DecodeRejectsOutOfOrderKeys) {
  const Options o = TinyOptions();
  BlockData data = EncodeRecordBlock(
      o, {Record::Put(5, Payload(o, 'a')), Record::Put(9, Payload(o, 'b'))});
  // Swap the two key fields to invert the order.
  const size_t r0_key = 4 + 1;
  const size_t r1_key = 4 + o.record_size() + 1;
  for (size_t i = 0; i < o.key_size; ++i) {
    std::swap(data[r0_key + i], data[r1_key + i]);
  }
  EXPECT_TRUE(DecodeRecordBlock(o, data).status().IsCorruption());
}

TEST(RecordBlockTest, DecodeRejectsOverflowingCount) {
  const Options o = TinyOptions();
  BlockData data = EncodeRecordBlock(o, {Record::Put(1, Payload(o, 'a'))});
  data[0] = 0xff;  // Claim 255 records.
  data[1] = 0x00;
  EXPECT_TRUE(DecodeRecordBlock(o, data).status().IsCorruption());
}

TEST(RecordBlockTest, PaperPayloadGeometry) {
  // Paper Section V-C: with 4 KB blocks and 4-byte keys, 25-byte payloads
  // give 136 records per block and 4000-byte payloads give 1.
  Options o;
  o.block_size = 4096;
  o.key_size = 4;
  o.payload_size = 25;
  EXPECT_EQ(o.records_per_block(), 136u);
  o.payload_size = 4000;
  EXPECT_EQ(o.records_per_block(), 1u);
}

}  // namespace
}  // namespace lsmssd
