#include "src/format/key_codec.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace lsmssd {
namespace {

TEST(KeyCodecTest, MaxKeyPerWidth) {
  EXPECT_EQ(MaxKeyForSize(1), 0xffu);
  EXPECT_EQ(MaxKeyForSize(2), 0xffffu);
  EXPECT_EQ(MaxKeyForSize(4), 0xffffffffu);
  EXPECT_EQ(MaxKeyForSize(8), ~uint64_t{0});
}

TEST(KeyCodecTest, RoundTripAllWidths) {
  Random rng(3);
  for (size_t width = 1; width <= 8; ++width) {
    for (int i = 0; i < 200; ++i) {
      const Key k = rng.Next() & MaxKeyForSize(width);
      uint8_t buf[8];
      EncodeKey(k, width, buf);
      EXPECT_EQ(DecodeKey(buf, width), k) << "width " << width;
    }
  }
}

TEST(KeyCodecTest, EncodingIsBigEndian) {
  uint8_t buf[4];
  EncodeKey(0x01020304u, 4, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(KeyCodecTest, ByteOrderEqualsKeyOrder) {
  // The defining property of big-endian keys: memcmp order == numeric
  // order.
  Random rng(4);
  for (int i = 0; i < 500; ++i) {
    const Key a = rng.Uniform(1'000'000'000);
    const Key b = rng.Uniform(1'000'000'000);
    uint8_t ba[4], bb[4];
    EncodeKey(a, 4, ba);
    EncodeKey(b, 4, bb);
    const int cmp = std::memcmp(ba, bb, 4);
    if (a < b) {
      EXPECT_LT(cmp, 0);
    } else if (a > b) {
      EXPECT_GT(cmp, 0);
    } else {
      EXPECT_EQ(cmp, 0);
    }
  }
}

TEST(KeyCodecTest, BoundaryValues) {
  for (size_t width = 1; width <= 8; ++width) {
    uint8_t buf[8];
    EncodeKey(0, width, buf);
    EXPECT_EQ(DecodeKey(buf, width), 0u);
    EncodeKey(MaxKeyForSize(width), width, buf);
    EXPECT_EQ(DecodeKey(buf, width), MaxKeyForSize(width));
  }
}

}  // namespace
}  // namespace lsmssd
