#include "src/format/record.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(RecordTest, Factories) {
  Record p = Record::Put(7, "abc");
  EXPECT_EQ(p.key, 7u);
  EXPECT_FALSE(p.is_tombstone());
  EXPECT_EQ(p.payload, "abc");

  Record t = Record::Tombstone(9);
  EXPECT_EQ(t.key, 9u);
  EXPECT_TRUE(t.is_tombstone());
  EXPECT_TRUE(t.payload.empty());
}

TEST(RecordTest, Equality) {
  EXPECT_EQ(Record::Put(1, "a"), Record::Put(1, "a"));
  EXPECT_FALSE(Record::Put(1, "a") == Record::Put(1, "b"));
  EXPECT_FALSE(Record::Put(1, "") == Record::Tombstone(1));
}

TEST(ConsolidateTest, UpperPutShadowsLowerPut) {
  Record out;
  ASSERT_TRUE(ConsolidateRecords(Record::Put(1, "new"),
                                 Record::Put(1, "old"), false, &out));
  EXPECT_EQ(out.payload, "new");
}

TEST(ConsolidateTest, UpperPutRevivesDeletedKey) {
  Record out;
  ASSERT_TRUE(ConsolidateRecords(Record::Put(1, "v"), Record::Tombstone(1),
                                 false, &out));
  EXPECT_FALSE(out.is_tombstone());
  EXPECT_EQ(out.payload, "v");
}

TEST(ConsolidateTest, DeletePlusPutAnnihilatesWhenAllowed) {
  Record out;
  EXPECT_FALSE(ConsolidateRecords(Record::Tombstone(1), Record::Put(1, "v"),
                                  /*annihilate_delete_put=*/true, &out));
}

TEST(ConsolidateTest, DeletePlusPutKeepsTombstoneByDefault) {
  // The safe rule: an older version may still exist deeper down, so the
  // tombstone must survive.
  Record out;
  ASSERT_TRUE(ConsolidateRecords(Record::Tombstone(1), Record::Put(1, "v"),
                                 /*annihilate_delete_put=*/false, &out));
  EXPECT_TRUE(out.is_tombstone());
}

TEST(ConsolidateTest, TwoTombstonesCollapse) {
  Record out;
  ASSERT_TRUE(ConsolidateRecords(Record::Tombstone(1), Record::Tombstone(1),
                                 false, &out));
  EXPECT_TRUE(out.is_tombstone());
  ASSERT_TRUE(ConsolidateRecords(Record::Tombstone(1), Record::Tombstone(1),
                                 true, &out));
  EXPECT_TRUE(out.is_tombstone());
}

}  // namespace
}  // namespace lsmssd
