#include "src/format/record_block_view.h"

#include <gtest/gtest.h>

#include "src/format/record_block.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

std::string Payload(const Options& o, char c) {
  return std::string(o.payload_size, c);
}

TEST(RecordBlockViewTest, RoundTripMatchesDecode) {
  const Options o = TinyOptions();
  const std::vector<Record> records = {
      Record::Put(1, Payload(o, 'a')),
      Record::Tombstone(5),
      Record::Put(9, Payload(o, 'b')),
  };
  const BlockData data = EncodeRecordBlock(o, records);

  auto view_or = RecordBlockView::Parse(o, data);
  ASSERT_TRUE(view_or.ok()) << view_or.status().ToString();
  const RecordBlockView& view = view_or.value();

  ASSERT_EQ(view.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(view.key_at(i), records[i].key);
    EXPECT_EQ(view.type_at(i), records[i].type);
    EXPECT_EQ(view.is_tombstone_at(i), records[i].is_tombstone());
    EXPECT_EQ(view.record_at(i), records[i]);
  }
  EXPECT_EQ(view.min_key(), 1u);
  EXPECT_EQ(view.max_key(), 9u);

  // Materialize() reproduces the decode path exactly.
  auto decoded_or = DecodeRecordBlock(o, data);
  ASSERT_TRUE(decoded_or.ok());
  EXPECT_EQ(view.Materialize(), decoded_or.value());
}

TEST(RecordBlockViewTest, PayloadViewsAddressTheBlockInPlace) {
  const Options o = TinyOptions();
  const BlockData data =
      EncodeRecordBlock(o, {Record::Put(3, Payload(o, 'q'))});
  auto view_or = RecordBlockView::Parse(o, data);
  ASSERT_TRUE(view_or.ok());
  const std::string_view payload = view_or.value().payload_at(0);
  EXPECT_EQ(payload, Payload(o, 'q'));
  // Zero-copy: the view points into the encoded image itself.
  const auto* begin = reinterpret_cast<const char*>(data.data());
  EXPECT_GE(payload.data(), begin);
  EXPECT_LE(payload.data() + payload.size(), begin + data.size());
}

TEST(RecordBlockViewTest, TombstonePayloadIsEmpty) {
  const Options o = TinyOptions();
  const BlockData data = EncodeRecordBlock(o, {Record::Tombstone(7)});
  auto view_or = RecordBlockView::Parse(o, data);
  ASSERT_TRUE(view_or.ok());
  EXPECT_TRUE(view_or.value().is_tombstone_at(0));
  EXPECT_TRUE(view_or.value().payload_at(0).empty());
  EXPECT_EQ(view_or.value().record_at(0), Record::Tombstone(7));
}

TEST(RecordBlockViewTest, EmptyBlock) {
  const Options o = TinyOptions();
  const BlockData data = EncodeRecordBlock(o, {});
  auto view_or = RecordBlockView::Parse(o, data);
  ASSERT_TRUE(view_or.ok());
  const RecordBlockView& view = view_or.value();
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.LowerBound(0), 0u);
  size_t slot;
  EXPECT_FALSE(view.Find(42, &slot));
  EXPECT_TRUE(view.Materialize().empty());
}

TEST(RecordBlockViewTest, PartialAndFullBlocks) {
  const Options o = TinyOptions();
  for (size_t n : {size_t{1}, o.records_per_block() / 2,
                   o.records_per_block()}) {
    std::vector<Record> records;
    for (size_t i = 0; i < n; ++i) {
      records.push_back(Record::Put(Key{10} * (i + 1), Payload(o, 'x')));
    }
    const BlockData data = EncodeRecordBlock(o, records);  // Outlives view.
    auto view_or = RecordBlockView::Parse(o, data);
    ASSERT_TRUE(view_or.ok()) << "n=" << n;
    EXPECT_EQ(view_or.value().size(), n);
    EXPECT_EQ(view_or.value().Materialize(), records);
  }
}

TEST(RecordBlockViewTest, BinarySearchFindsEveryKeyAndOnlyThose) {
  const Options o = TinyOptions();
  std::vector<Record> records;
  for (size_t i = 0; i < o.records_per_block(); ++i) {
    records.push_back(Record::Put(Key{3} * i + 2, Payload(o, 'x')));
  }
  const BlockData data = EncodeRecordBlock(o, records);  // Outlives view.
  auto view_or = RecordBlockView::Parse(o, data);
  ASSERT_TRUE(view_or.ok());
  const RecordBlockView& view = view_or.value();

  for (size_t i = 0; i < records.size(); ++i) {
    size_t slot = ~size_t{0};
    ASSERT_TRUE(view.Find(records[i].key, &slot));
    EXPECT_EQ(slot, i);
    EXPECT_EQ(view.LowerBound(records[i].key), i);
  }
  // Absent keys: Find fails, LowerBound lands on the next larger slot.
  size_t slot;
  EXPECT_FALSE(view.Find(0, &slot));
  EXPECT_EQ(view.LowerBound(0), 0u);
  EXPECT_FALSE(view.Find(3, &slot));  // Between keys 2 and 5.
  EXPECT_EQ(view.LowerBound(3), 1u);
  EXPECT_FALSE(view.Find(view.max_key() + 1, &slot));
  EXPECT_EQ(view.LowerBound(view.max_key() + 1), view.size());
}

TEST(RecordBlockViewTest, RejectsTruncatedHeader) {
  const Options o = TinyOptions();
  const BlockData data{1, 2};
  EXPECT_TRUE(RecordBlockView::Parse(o, data).status().IsCorruption());
}

TEST(RecordBlockViewTest, RejectsRecordSizeMismatch) {
  Options writer = TinyOptions();
  Options reader = TinyOptions();
  reader.payload_size = writer.payload_size + 4;
  const BlockData data =
      EncodeRecordBlock(writer, {Record::Put(1, Payload(writer, 'a'))});
  EXPECT_TRUE(RecordBlockView::Parse(reader, data).status().IsCorruption());
}

TEST(RecordBlockViewTest, RejectsCorruptType) {
  const Options o = TinyOptions();
  BlockData data = EncodeRecordBlock(o, {Record::Put(1, Payload(o, 'a'))});
  data[4] = 0x77;  // First record's type byte.
  EXPECT_TRUE(RecordBlockView::Parse(o, data).status().IsCorruption());
}

TEST(RecordBlockViewTest, RejectsOutOfOrderKeys) {
  const Options o = TinyOptions();
  BlockData data = EncodeRecordBlock(
      o, {Record::Put(5, Payload(o, 'a')), Record::Put(9, Payload(o, 'b'))});
  const size_t r0_key = 4 + 1;
  const size_t r1_key = 4 + o.record_size() + 1;
  for (size_t i = 0; i < o.key_size; ++i) {
    std::swap(data[r0_key + i], data[r1_key + i]);
  }
  EXPECT_TRUE(RecordBlockView::Parse(o, data).status().IsCorruption());
}

TEST(RecordBlockViewTest, RejectsDuplicateKeys) {
  const Options o = TinyOptions();
  BlockData data = EncodeRecordBlock(
      o, {Record::Put(5, Payload(o, 'a')), Record::Put(9, Payload(o, 'b'))});
  // Overwrite the second key with a copy of the first: order check is
  // strict, equal adjacent keys are corruption too.
  const size_t r0_key = 4 + 1;
  const size_t r1_key = 4 + o.record_size() + 1;
  for (size_t i = 0; i < o.key_size; ++i) {
    data[r1_key + i] = data[r0_key + i];
  }
  EXPECT_TRUE(RecordBlockView::Parse(o, data).status().IsCorruption());
}

TEST(RecordBlockViewTest, RejectsOverflowingCount) {
  const Options o = TinyOptions();
  BlockData data = EncodeRecordBlock(o, {Record::Put(1, Payload(o, 'a'))});
  data[0] = 0xff;  // Claim 255 records.
  data[1] = 0x00;
  EXPECT_TRUE(RecordBlockView::Parse(o, data).status().IsCorruption());
}

}  // namespace
}  // namespace lsmssd
