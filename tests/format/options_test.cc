#include "src/format/options.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(OptionsTest, PaperDefaultsAreValid) {
  Options o;
  const char* why = nullptr;
  EXPECT_TRUE(o.Validate(&why)) << why;
  EXPECT_EQ(o.block_size, 4096u);
  EXPECT_EQ(o.key_size, 4u);
  EXPECT_EQ(o.payload_size, 100u);
  EXPECT_EQ(o.record_size(), 105u);
  EXPECT_EQ(o.level0_capacity_blocks, 4000u);
  EXPECT_DOUBLE_EQ(o.gamma, 10.0);
  EXPECT_DOUBLE_EQ(o.epsilon, 0.2);
  EXPECT_DOUBLE_EQ(o.delta, 0.07);
}

TEST(OptionsTest, LevelCapacitiesAreGeometric) {
  Options o;
  o.level0_capacity_blocks = 7;
  o.gamma = 10.0;
  EXPECT_EQ(o.LevelCapacityBlocks(0), 7u);
  EXPECT_EQ(o.LevelCapacityBlocks(1), 70u);
  EXPECT_EQ(o.LevelCapacityBlocks(2), 700u);
  EXPECT_EQ(o.LevelCapacityBlocks(3), 7000u);
}

TEST(OptionsTest, FractionalGamma) {
  Options o;
  o.level0_capacity_blocks = 100;
  o.gamma = 2.5;
  EXPECT_EQ(o.LevelCapacityBlocks(1), 250u);
  EXPECT_EQ(o.LevelCapacityBlocks(2), 625u);
}

TEST(OptionsTest, PartialMergeBlocksAtLeastOne) {
  Options o;
  o.level0_capacity_blocks = 4;
  o.delta = 0.1;  // 0.4 blocks -> clamp to 1.
  EXPECT_EQ(o.PartialMergeBlocks(0), 1u);
}

TEST(OptionsTest, PartialMergeBlocksScalesWithLevel) {
  Options o;  // K0=4000, delta=0.07.
  EXPECT_EQ(o.PartialMergeBlocks(0), 280u);
  EXPECT_EQ(o.PartialMergeBlocks(1), 2800u);
}

TEST(OptionsTest, ValidateRejectsBadConfigs) {
  const char* why = nullptr;
  {
    Options o;
    o.key_size = 0;
    EXPECT_FALSE(o.Validate(&why));
  }
  {
    Options o;
    o.key_size = 9;
    EXPECT_FALSE(o.Validate(&why));
  }
  {
    Options o;
    o.block_size = 32;  // Smaller than one 105-byte record.
    EXPECT_FALSE(o.Validate(&why));
  }
  {
    Options o;
    o.gamma = 1.0;
    EXPECT_FALSE(o.Validate(&why));
  }
  {
    Options o;
    o.epsilon = 0.6;  // Paper requires epsilon <= 0.5.
    EXPECT_FALSE(o.Validate(&why));
  }
  {
    Options o;
    o.epsilon = 0.0;
    EXPECT_FALSE(o.Validate(&why));
  }
  {
    Options o;
    o.delta = 1.0;
    EXPECT_FALSE(o.Validate(&why));
  }
  {
    Options o;
    o.level0_capacity_blocks = 0;
    EXPECT_FALSE(o.Validate(&why));
  }
}

TEST(OptionsTest, ValidateExplainsFailure) {
  Options o;
  o.gamma = 0.5;
  const char* why = nullptr;
  ASSERT_FALSE(o.Validate(&why));
  ASSERT_NE(why, nullptr);
  EXPECT_NE(std::string(why).find("gamma"), std::string::npos);
}

TEST(OptionsTest, RecordsPerBlockAccountsForHeader) {
  Options o;
  o.block_size = 4096;
  o.key_size = 4;
  o.payload_size = 100;  // 105-byte records; (4096-4)/105 = 38.
  EXPECT_EQ(o.records_per_block(), 38u);
}

}  // namespace
}  // namespace lsmssd
