#include "src/format/options.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(OptionsTest, PaperDefaultsAreValid) {
  Options o;
  EXPECT_TRUE(o.Validate().ok()) << o.Validate().ToString();
  EXPECT_EQ(o.block_size, 4096u);
  EXPECT_EQ(o.key_size, 4u);
  EXPECT_EQ(o.payload_size, 100u);
  EXPECT_EQ(o.record_size(), 105u);
  EXPECT_EQ(o.level0_capacity_blocks, 4000u);
  EXPECT_DOUBLE_EQ(o.gamma, 10.0);
  EXPECT_DOUBLE_EQ(o.epsilon, 0.2);
  EXPECT_DOUBLE_EQ(o.delta, 0.07);
}

TEST(OptionsTest, LevelCapacitiesAreGeometric) {
  Options o;
  o.level0_capacity_blocks = 7;
  o.gamma = 10.0;
  EXPECT_EQ(o.LevelCapacityBlocks(0), 7u);
  EXPECT_EQ(o.LevelCapacityBlocks(1), 70u);
  EXPECT_EQ(o.LevelCapacityBlocks(2), 700u);
  EXPECT_EQ(o.LevelCapacityBlocks(3), 7000u);
}

TEST(OptionsTest, FractionalGamma) {
  Options o;
  o.level0_capacity_blocks = 100;
  o.gamma = 2.5;
  EXPECT_EQ(o.LevelCapacityBlocks(1), 250u);
  EXPECT_EQ(o.LevelCapacityBlocks(2), 625u);
}

TEST(OptionsTest, PartialMergeBlocksAtLeastOne) {
  Options o;
  o.level0_capacity_blocks = 4;
  o.delta = 0.1;  // 0.4 blocks -> clamp to 1.
  EXPECT_EQ(o.PartialMergeBlocks(0), 1u);
}

TEST(OptionsTest, PartialMergeBlocksScalesWithLevel) {
  Options o;  // K0=4000, delta=0.07.
  EXPECT_EQ(o.PartialMergeBlocks(0), 280u);
  EXPECT_EQ(o.PartialMergeBlocks(1), 2800u);
}

TEST(OptionsTest, ValidateRejectsBadConfigs) {
  // Table-driven over every constraint Validate enforces; the same
  // routine backs LsmTree::Open/Restore, Db::Open, and manifest decode.
  struct Case {
    const char* name;
    void (*mutate)(Options*);
    const char* message_substring;
  };
  const Case kCases[] = {
      {"key_size too small", [](Options* o) { o->key_size = 0; },
       "key_size"},
      {"key_size too large", [](Options* o) { o->key_size = 9; },
       "key_size"},
      {"block smaller than one record",
       [](Options* o) { o->block_size = 32; }, "block_size"},
      {"gamma at one", [](Options* o) { o->gamma = 1.0; }, "gamma"},
      {"epsilon above paper bound",
       [](Options* o) { o->epsilon = 0.6; }, "epsilon"},
      {"epsilon zero", [](Options* o) { o->epsilon = 0.0; }, "epsilon"},
      {"delta at one", [](Options* o) { o->delta = 1.0; }, "delta"},
      {"delta zero", [](Options* o) { o->delta = 0.0; }, "delta"},
      {"empty L0", [](Options* o) { o->level0_capacity_blocks = 0; }, "K0"},
  };
  for (const Case& c : kCases) {
    Options o;
    c.mutate(&o);
    const Status st = o.Validate();
    EXPECT_TRUE(st.IsInvalidArgument()) << c.name << ": " << st.ToString();
    EXPECT_NE(st.message().find(c.message_substring), std::string::npos)
        << c.name << ": " << st.ToString();
  }
}

TEST(OptionsTest, ValidateChecksDeviceBlockSize) {
  Options o;
  EXPECT_TRUE(o.Validate(4096).ok());
  const Status st = o.Validate(512);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("device block size"), std::string::npos);
  EXPECT_TRUE(o.Validate(0).ok());  // 0 skips the device check.
}

TEST(OptionsTest, RecordsPerBlockAccountsForHeader) {
  Options o;
  o.block_size = 4096;
  o.key_size = 4;
  o.payload_size = 100;  // 105-byte records; (4096-4)/105 = 38.
  EXPECT_EQ(o.records_per_block(), 38u);
}

}  // namespace
}  // namespace lsmssd
