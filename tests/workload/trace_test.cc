#include "src/workload/trace.h"

#include <unistd.h>

#include <fstream>

#include <gtest/gtest.h>

#include "src/workload/uniform_workload.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

std::string TracePath(const char* tag) {
  return ::testing::TempDir() + "/trace_" + tag + std::to_string(::getpid());
}

TEST(TraceTest, CaptureMatchesGenerator) {
  UniformWorkload::Params p;
  p.seed = 5;
  UniformWorkload a(p), b(p);
  const auto trace = CaptureTrace(&a, 500);
  ASSERT_EQ(trace.size(), 500u);
  for (const auto& r : trace) {
    const auto expected = b.Next();
    EXPECT_EQ(r.kind, expected.kind);
    EXPECT_EQ(r.key, expected.key);
  }
}

TEST(TraceTest, FileRoundTrip) {
  const std::string path = TracePath("rt");
  UniformWorkload::Params p;
  p.seed = 6;
  UniformWorkload w(p);
  const auto trace = CaptureTrace(&w, 300);
  ASSERT_TRUE(SaveTraceToFile(trace, path).ok());
  auto loaded = LoadTraceFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*loaded)[i].kind, trace[i].kind);
    EXPECT_EQ((*loaded)[i].key, trace[i].key);
  }
  ::unlink(path.c_str());
}

TEST(TraceTest, CorruptionDetected) {
  const std::string path = TracePath("bad");
  UniformWorkload::Params p;
  UniformWorkload w(p);
  ASSERT_TRUE(SaveTraceToFile(CaptureTrace(&w, 50), path).ok());

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  data[20] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  EXPECT_TRUE(LoadTraceFromFile(path).status().IsCorruption());
  ::unlink(path.c_str());
}

TEST(TraceWorkloadTest, ReplayIsExact) {
  std::vector<WorkloadRequest> trace = {
      {WorkloadRequest::Kind::kInsert, 10},
      {WorkloadRequest::Kind::kInsert, 20},
      {WorkloadRequest::Kind::kDelete, 10},
  };
  TraceWorkload replay(trace);
  EXPECT_EQ(replay.remaining(), 3u);
  EXPECT_EQ(replay.Next().key, 10u);
  EXPECT_EQ(replay.Next().key, 20u);
  EXPECT_EQ(replay.indexed_keys(), 2u);
  EXPECT_EQ(replay.Next().kind, WorkloadRequest::Kind::kDelete);
  EXPECT_EQ(replay.indexed_keys(), 1u);
  EXPECT_TRUE(replay.exhausted());
}

TEST(TraceWorkloadTest, LoopingWrapsAround) {
  std::vector<WorkloadRequest> trace = {
      {WorkloadRequest::Kind::kInsert, 1},
      {WorkloadRequest::Kind::kDelete, 1},
  };
  TraceWorkload replay(trace, /*loop=*/true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replay.Next().kind, WorkloadRequest::Kind::kInsert);
    EXPECT_EQ(replay.Next().kind, WorkloadRequest::Kind::kDelete);
  }
  EXPECT_FALSE(replay.exhausted());
}

TEST(TraceWorkloadTest, ReplayedRunsAreByteIdenticalInCost) {
  // Two trees driven by the same trace must agree on every statistic —
  // the reproducibility property the trace facility exists for.
  UniformWorkload::Params p;
  p.seed = 7;
  p.key_max = 10'000'000;
  UniformWorkload source(p);
  const auto trace = CaptureTrace(&source, 4000);

  uint64_t writes[2];
  for (int run = 0; run < 2; ++run) {
    TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
    TraceWorkload replay(trace);
    WorkloadDriver driver(fx.tree.get(), &replay);
    ASSERT_TRUE(driver.Run(trace.size()).ok());
    writes[run] = fx.device.stats().block_writes();
  }
  EXPECT_EQ(writes[0], writes[1]);
}

}  // namespace
}  // namespace lsmssd
