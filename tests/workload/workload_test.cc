#include "src/workload/workload.h"

#include <set>

#include <gtest/gtest.h>

#include "src/util/histogram.h"
#include "src/workload/normal_workload.h"
#include "src/workload/tpc_workload.h"
#include "src/workload/uniform_workload.h"

namespace lsmssd {
namespace {

TEST(SampledKeySetTest, InsertEraseContains) {
  SampledKeySet set;
  EXPECT_TRUE(set.Insert(5));
  EXPECT_FALSE(set.Insert(5));  // Duplicate.
  EXPECT_TRUE(set.Contains(5));
  EXPECT_TRUE(set.Erase(5));
  EXPECT_FALSE(set.Erase(5));
  EXPECT_FALSE(set.Contains(5));
  EXPECT_EQ(set.size(), 0u);
}

TEST(SampledKeySetTest, SampleIsUniformOverMembers) {
  SampledKeySet set;
  for (Key k = 0; k < 10; ++k) set.Insert(k);
  set.Erase(3);
  Random rng(1);
  std::map<Key, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[set.Sample(&rng)];
  EXPECT_EQ(counts.count(3), 0u);
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c, 20000 / 9.0, 400) << "key " << k;
  }
}

TEST(UniformWorkloadTest, DeterministicForSeed) {
  UniformWorkload::Params p;
  p.seed = 9;
  UniformWorkload a(p), b(p);
  for (int i = 0; i < 500; ++i) {
    const auto ra = a.Next();
    const auto rb = b.Next();
    EXPECT_EQ(ra.kind, rb.kind);
    EXPECT_EQ(ra.key, rb.key);
  }
}

TEST(UniformWorkloadTest, InsertsAreFreshDeletesAreExisting) {
  UniformWorkload::Params p;
  p.key_max = 100000;
  UniformWorkload w(p);
  std::set<Key> live;
  for (int i = 0; i < 5000; ++i) {
    const auto r = w.Next();
    if (r.kind == WorkloadRequest::Kind::kInsert) {
      EXPECT_EQ(live.count(r.key), 0u);
      live.insert(r.key);
    } else {
      EXPECT_EQ(live.count(r.key), 1u);
      live.erase(r.key);
    }
  }
  EXPECT_EQ(w.indexed_keys(), live.size());
}

TEST(UniformWorkloadTest, SteadyStateKeepsSizeStable) {
  UniformWorkload::Params p;
  p.insert_ratio = 0.5;
  UniformWorkload w(p);
  for (int i = 0; i < 4000; ++i) w.Next();
  const auto mid = static_cast<int64_t>(w.indexed_keys());
  for (int i = 0; i < 4000; ++i) w.Next();
  const auto end = static_cast<int64_t>(w.indexed_keys());
  EXPECT_LT(std::abs(end - mid), 500);
}

TEST(UniformWorkloadTest, InsertOnlyModeGrowsMonotonically) {
  UniformWorkload::Params p;
  p.insert_ratio = 1.0;
  UniformWorkload w(p);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(w.Next().kind, WorkloadRequest::Kind::kInsert);
  }
  EXPECT_EQ(w.indexed_keys(), 1000u);
}

TEST(UniformWorkloadTest, KeysCoverDomainUniformly) {
  UniformWorkload::Params p;
  p.key_max = 1'000'000'000;
  p.insert_ratio = 1.0;
  UniformWorkload w(p);
  Histogram h(0, p.key_max, 20);
  for (int i = 0; i < 40000; ++i) h.Add(w.Next().key);
  EXPECT_LT(h.FrequencyCv(), 0.15);
}

TEST(NormalWorkloadTest, KeysClusterAroundMean) {
  NormalWorkload::Params p;
  p.sigma_fraction = 0.005;
  p.omega = 1'000'000;  // Mean never moves during this test.
  p.insert_ratio = 1.0;
  NormalWorkload w(p);
  const Key mean = w.current_mean();
  const double sigma = 0.005 * 1e9;
  int within_3sigma = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto r = w.Next();
    const double d =
        std::abs(static_cast<double>(r.key) - static_cast<double>(mean));
    within_3sigma += (d <= 3 * sigma);
  }
  EXPECT_GT(within_3sigma, 1950);  // ~99.7% inside 3 sigma.
}

TEST(NormalWorkloadTest, MeanMovesEveryOmegaInserts) {
  NormalWorkload::Params p;
  p.omega = 100;
  p.insert_ratio = 1.0;
  NormalWorkload w(p);
  const Key first = w.current_mean();
  for (int i = 0; i < 100; ++i) w.Next();
  EXPECT_NE(w.current_mean(), first);  // Moved (w.h.p. for a 1e9 domain).
}

TEST(NormalWorkloadTest, KeysStayInDomain) {
  NormalWorkload::Params p;
  p.key_min = 1000;
  p.key_max = 5000;
  p.sigma_fraction = 0.5;  // Heavy truncation.
  p.insert_ratio = 1.0;
  NormalWorkload w(p);
  // Insert-only, so stay well under the 4001-key domain capacity.
  for (int i = 0; i < 2000; ++i) {
    const auto r = w.Next();
    EXPECT_GE(r.key, 1000u);
    EXPECT_LE(r.key, 5000u);
  }
}

TEST(NormalWorkloadTest, DeletesTargetExistingKeys) {
  NormalWorkload::Params p;
  p.insert_ratio = 0.5;
  NormalWorkload w(p);
  std::set<Key> live;
  for (int i = 0; i < 3000; ++i) {
    const auto r = w.Next();
    if (r.kind == WorkloadRequest::Kind::kInsert) {
      EXPECT_EQ(live.count(r.key), 0u);
      live.insert(r.key);
    } else {
      EXPECT_EQ(live.count(r.key), 1u);
      live.erase(r.key);
    }
  }
}

TEST(TpcWorkloadTest, KeysEncodeWarehouseDistrictOrder) {
  TpcWorkload::Params p;
  p.warehouses = 4;
  p.districts_per_warehouse = 4;
  TpcWorkload w(p);
  // 4 warehouses -> 2 bits; 4 districts -> 2 bits; 28 order bits.
  EXPECT_EQ(w.MakeKey(0, 0, 0), 0u);
  EXPECT_EQ(w.MakeKey(1, 0, 0), uint64_t{1} << 30);
  EXPECT_EQ(w.MakeKey(0, 1, 5), (uint64_t{1} << 28) | 5);
}

TEST(TpcWorkloadTest, OrdersAreSequentialPerDistrict) {
  TpcWorkload::Params p;
  p.warehouses = 1;
  p.districts_per_warehouse = 1;
  p.insert_ratio = 1.0;
  TpcWorkload w(p);
  Key prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto r = w.Next();
    ASSERT_EQ(r.kind, WorkloadRequest::Kind::kInsert);
    if (i > 0) {
      EXPECT_EQ(r.key, prev + 1);
    }
    prev = r.key;
  }
}

TEST(TpcWorkloadTest, DeletesComeInBatchesOfOldestOrders) {
  TpcWorkload::Params p;
  p.warehouses = 1;
  p.districts_per_warehouse = 1;
  p.deletes_per_batch = 10;
  p.insert_ratio = 0.0;  // Delete whenever possible.
  TpcWorkload w(p);

  // Not enough orders yet: generator must fall back to inserts.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(w.Next().kind, WorkloadRequest::Kind::kInsert);
  }
  // One more insert makes 10 -> the next 10 requests delete order 0..9.
  EXPECT_EQ(w.Next().kind, WorkloadRequest::Kind::kInsert);
  for (uint64_t i = 0; i < 10; ++i) {
    const auto r = w.Next();
    EXPECT_EQ(r.kind, WorkloadRequest::Kind::kDelete);
    EXPECT_EQ(r.key, i);  // Oldest first.
  }
}

TEST(TpcWorkloadTest, RequestLevelRatioHoldsAtSteadyState) {
  TpcWorkload::Params p;
  p.insert_ratio = 0.5;
  TpcWorkload w(p);
  // Warm up so every district has deletable batches.
  for (int i = 0; i < 30000; ++i) w.Next();
  int inserts = 0, deletes = 0;
  for (int i = 0; i < 30000; ++i) {
    (w.Next().kind == WorkloadRequest::Kind::kInsert ? inserts : deletes)++;
  }
  EXPECT_NEAR(static_cast<double>(inserts) / (inserts + deletes), 0.5, 0.05);
}

TEST(TpcWorkloadTest, IndexedKeyCountTracksLiveOrders) {
  TpcWorkload::Params p;
  p.insert_ratio = 0.7;
  TpcWorkload w(p);
  int64_t live = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto r = w.Next();
    live += (r.kind == WorkloadRequest::Kind::kInsert) ? 1 : -1;
  }
  EXPECT_EQ(w.indexed_keys(), static_cast<uint64_t>(live));
}

}  // namespace
}  // namespace lsmssd
