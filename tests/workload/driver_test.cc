#include "src/workload/driver.h"

#include <gtest/gtest.h>

#include "src/workload/uniform_workload.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

struct DriverRig {
  DriverRig() : fx(TinyOptions(), PolicyKind::kChooseBest) {
    UniformWorkload::Params wp;
    wp.key_max = 10'000'000;
    wp.seed = 3;
    workload = std::make_unique<UniformWorkload>(wp);
    driver = std::make_unique<WorkloadDriver>(fx.tree.get(), workload.get());
  }
  TreeFixture fx;
  std::unique_ptr<UniformWorkload> workload;
  std::unique_ptr<WorkloadDriver> driver;
};

TEST(MakePayloadTest, DeterministicAndSized) {
  const Options o = TinyOptions();
  EXPECT_EQ(MakePayload(o, 7).size(), o.payload_size);
  EXPECT_EQ(MakePayload(o, 7), MakePayload(o, 7));
  EXPECT_NE(MakePayload(o, 7), MakePayload(o, 8));
}

TEST(DriverTest, RunAppliesExactlyNRequests) {
  DriverRig rig;
  ASSERT_TRUE(rig.driver->Run(123).ok());
  EXPECT_EQ(rig.driver->requests_applied(), 123u);
  EXPECT_EQ(rig.fx.tree->stats().puts + rig.fx.tree->stats().deletes, 123u);
}

TEST(DriverTest, GrowToReachesTargetBytes) {
  DriverRig rig;
  const uint64_t target = 400 * rig.fx.options_copy.record_size();
  ASSERT_TRUE(rig.driver->GrowTo(target).ok());
  EXPECT_GE(rig.fx.tree->ApproximateDataBytes(), target);
  // Insert-only growth: no deletes issued.
  EXPECT_EQ(rig.fx.tree->stats().deletes, 0u);
}

TEST(DriverTest, ReachSteadyStatePushesDataToBottom) {
  DriverRig rig;
  ASSERT_TRUE(
      rig.driver->GrowTo(500 * rig.fx.options_copy.record_size()).ok());
  ASSERT_TRUE(rig.driver->ReachSteadyState(0.5).ok());
  const size_t bottom = rig.fx.tree->num_levels() - 1;
  const uint64_t second_to_last_capacity =
      rig.fx.tree->LevelCapacityBlocks(bottom - 1) *
      rig.fx.options_copy.records_per_block();
  EXPECT_GE(rig.fx.tree->stats().records_merged_into[bottom],
            second_to_last_capacity);
}

TEST(DriverTest, MeasureWindowReportsConsistentMetrics) {
  DriverRig rig;
  ASSERT_TRUE(
      rig.driver->GrowTo(400 * rig.fx.options_copy.record_size()).ok());
  rig.workload->set_insert_ratio(0.5);

  const uint64_t window_bytes = 100 * rig.fx.options_copy.record_size();
  auto metrics_or = rig.driver->MeasureWindow(window_bytes);
  ASSERT_TRUE(metrics_or.ok());
  const WindowMetrics& m = metrics_or.value();
  EXPECT_EQ(m.requests, 100u);
  EXPECT_EQ(m.request_bytes,
            100 * rig.fx.options_copy.record_size());
  EXPECT_EQ(m.blocks_written, m.stats_delta.TotalBlocksWritten());
  EXPECT_GE(m.elapsed_seconds, 0.0);
}

TEST(DriverTest, BlocksPerMbScalesInverselyWithWindow) {
  WindowMetrics m;
  m.request_bytes = 1024 * 1024;
  m.blocks_written = 500;
  EXPECT_DOUBLE_EQ(m.BlocksPerMb(), 500.0);
  m.request_bytes = 2 * 1024 * 1024;
  EXPECT_DOUBLE_EQ(m.BlocksPerMb(), 250.0);
}

TEST(DriverTest, ZeroByteWindowMetricsAreZero) {
  WindowMetrics m;
  EXPECT_DOUBLE_EQ(m.BlocksPerMb(), 0.0);
  EXPECT_DOUBLE_EQ(m.SecondsPerMb(), 0.0);
}

TEST(DriverTest, RequestFnDrivesTree) {
  DriverRig rig;
  auto fn = rig.driver->RequestFn();
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(fn(rig.fx.tree.get()).ok());
  EXPECT_EQ(rig.driver->requests_applied(), 50u);
}

}  // namespace
}  // namespace lsmssd
