#include "src/workload/ycsb.h"

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace lsmssd {
namespace {

YcsbConfig Config(char workload, uint64_t seed = 7) {
  YcsbConfig cfg;
  cfg.workload = workload;
  cfg.initial_records = 5000;
  cfg.seed = seed;
  return cfg;
}

std::map<YcsbRequest::Op, uint64_t> CountOps(char workload, uint64_t n) {
  YcsbWorkload wl(Config(workload));
  std::map<YcsbRequest::Op, uint64_t> counts;
  for (uint64_t i = 0; i < n; ++i) ++counts[wl.Next().op];
  return counts;
}

TEST(YcsbWorkloadTest, SameSeedSameStream) {
  YcsbWorkload a(Config('a'));
  YcsbWorkload b(Config('a'));
  for (int i = 0; i < 10000; ++i) {
    const YcsbRequest ra = a.Next();
    const YcsbRequest rb = b.Next();
    EXPECT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(ra.scan_len, rb.scan_len);
  }
  YcsbWorkload c(Config('a', /*seed=*/8));
  bool differs = false;
  YcsbWorkload a2(Config('a'));
  for (int i = 0; i < 1000 && !differs; ++i) {
    differs = a2.Next().key != c.Next().key;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical streams";
}

TEST(YcsbWorkloadTest, MixRatiosMatchTheSuite) {
  constexpr uint64_t kN = 100000;
  constexpr double kTol = 0.01;  // 1% absolute on 100k draws.
  {
    const auto c = CountOps('a', kN);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kRead) / double(kN), 0.5, kTol);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kUpdate) / double(kN), 0.5, kTol);
  }
  {
    const auto c = CountOps('b', kN);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kRead) / double(kN), 0.95, kTol);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kUpdate) / double(kN), 0.05, kTol);
  }
  {
    const auto c = CountOps('c', kN);
    EXPECT_EQ(c.at(YcsbRequest::Op::kRead), kN);
  }
  {
    const auto c = CountOps('e', kN);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kScan) / double(kN), 0.95, kTol);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kInsert) / double(kN), 0.05, kTol);
  }
  {
    const auto c = CountOps('f', kN);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kRead) / double(kN), 0.5, kTol);
    EXPECT_NEAR(c.at(YcsbRequest::Op::kReadModifyWrite) / double(kN), 0.5,
                kTol);
  }
}

TEST(YcsbWorkloadTest, KeysStayInConfiguredRange) {
  YcsbConfig cfg = Config('a');
  cfg.key_min = 100;
  cfg.key_max = 10000;
  YcsbWorkload wl(cfg);
  for (int i = 0; i < 20000; ++i) {
    const YcsbRequest req = wl.Next();
    EXPECT_GE(req.key, cfg.key_min);
    EXPECT_LE(req.key, cfg.key_max);
  }
}

TEST(YcsbWorkloadTest, ScanLengthsSpanOneToMax) {
  YcsbConfig cfg = Config('e');
  cfg.max_scan_len = 25;
  YcsbWorkload wl(cfg);
  std::set<uint32_t> seen;
  for (int i = 0; i < 50000; ++i) {
    const YcsbRequest req = wl.Next();
    if (req.op != YcsbRequest::Op::kScan) continue;
    ASSERT_GE(req.scan_len, 1u);
    ASSERT_LE(req.scan_len, cfg.max_scan_len);
    seen.insert(req.scan_len);
  }
  // Uniform over [1, 25]: essentially every length appears in 47k draws.
  EXPECT_GT(seen.size(), 20u);
}

TEST(YcsbWorkloadTest, InsertsGrowTheRecordSpace) {
  YcsbConfig cfg = Config('e');
  YcsbWorkload wl(cfg);
  const uint64_t before = wl.record_count();
  uint64_t inserts = 0;
  for (int i = 0; i < 10000; ++i) {
    if (wl.Next().op == YcsbRequest::Op::kInsert) ++inserts;
  }
  EXPECT_GT(inserts, 0u);
  EXPECT_EQ(wl.record_count(), before + inserts);
}

TEST(YcsbWorkloadTest, KeyForIndexIsSeedIndependent) {
  // The load phase and every runner thread must agree on the key of
  // record i regardless of their seeds.
  YcsbWorkload a(Config('a', 1));
  YcsbWorkload b(Config('b', 999));
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.KeyForIndex(i), b.KeyForIndex(i));
  }
}

TEST(YcsbWorkloadTest, ParseWorkloadNameAcceptsOnlyImplemented) {
  char w = 0;
  for (const char* good : {"a", "A", "b", "c", "e", "f", "F"}) {
    EXPECT_TRUE(YcsbWorkload::ParseWorkloadName(good, &w)) << good;
  }
  for (const char* bad : {"d", "D", "g", "", "aa", "1"}) {
    EXPECT_FALSE(YcsbWorkload::ParseWorkloadName(bad, &w)) << bad;
  }
}

TEST(ZipfianGeneratorTest, SkewAndBounds) {
  constexpr uint64_t kItems = 1000;
  ZipfianGenerator zipf(kItems, 0.99);
  Random rng(3);
  std::vector<uint64_t> counts(kItems, 0);
  constexpr uint64_t kDraws = 200000;
  for (uint64_t i = 0; i < kDraws; ++i) {
    const uint64_t item = zipf.Next(&rng);
    ASSERT_LT(item, kItems);
    ++counts[item];
  }
  // Zipf theta=0.99 over 1000 items: item 0 draws a bit under 1/zeta(n)
  // ~ 13% of the mass; the skew must be obvious and monotone-ish at the
  // head.
  EXPECT_GT(counts[0], kDraws / 20);  // >5%.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[100]);
  // The tail is still reachable.
  uint64_t tail = 0;
  for (size_t i = kItems / 2; i < kItems; ++i) tail += counts[i];
  EXPECT_GT(tail, 0u);
}

TEST(ZipfianGeneratorTest, GrowKeepsDistributionValid) {
  ZipfianGenerator zipf(100, 0.99);
  Random rng(5);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(zipf.Next(&rng), 100u);
  zipf.GrowItems(200);
  EXPECT_EQ(zipf.items(), 200u);
  bool past_old_range = false;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t item = zipf.Next(&rng);
    ASSERT_LT(item, 200u);
    past_old_range |= item >= 100;
  }
  EXPECT_TRUE(past_old_range) << "grown items never drawn";
  // Growing to a not-larger count is a no-op.
  zipf.GrowItems(150);
  EXPECT_EQ(zipf.items(), 200u);
}

}  // namespace
}  // namespace lsmssd
