// Executable checks of the paper's theoretical guarantees (Section III).

#include <gtest/gtest.h>

#include "src/workload/uniform_workload.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

/// Runs `requests` of a steady-state uniform mix and returns the fixture's
/// stats at the end.
void RunSteadyUniform(TreeFixture* fx, uint64_t grow_records,
                      uint64_t requests, uint64_t seed) {
  UniformWorkload::Params wp;
  wp.key_max = 50'000'000;
  wp.seed = seed;
  UniformWorkload workload(wp);
  WorkloadDriver driver(fx->tree.get(), &workload);
  ASSERT_TRUE(
      driver.GrowTo(grow_records * fx->options_copy.record_size()).ok());
  workload.set_insert_ratio(0.5);
  ASSERT_TRUE(driver.Run(requests).ok());
}

TEST(PolicyBoundsTest, ChooseBestPerMergeBoundTheorem2) {
  // Theorem 2: under ChooseBest, each merge into L_i costs no more than
  // delta * (1/Gamma + 1) * K_i blocks. We check the per-merge |Y| bound
  // indirectly: the amortized output per merge must stay within the bound
  // (per-merge maxima are checked in merge_test via
  // overlapping_target_blocks; here we assert the cost never explodes the
  // way a Full merge would).
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  RunSteadyUniform(&fx, 700, 8000, 31);

  const LsmStats& stats = fx.tree->stats();
  for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
    if (stats.merges_into[i] == 0) continue;
    const double bound = options.delta * (1.0 / options.gamma + 1.0) *
                         static_cast<double>(options.LevelCapacityBlocks(i));
    // Average output blocks per merge into L_i. The theorem bounds the
    // merge's write cost; output includes X's own blocks, so compare
    // against bound + the X window size.
    const double avg_out =
        static_cast<double>(stats.blocks_written_into[i]) /
        static_cast<double>(stats.merges_into[i]);
    const double window =
        static_cast<double>(options.PartialMergeBlocks(i - 1));
    EXPECT_LE(avg_out, bound + window + 2.0) << "level " << i;
  }
}

TEST(PolicyBoundsTest, FullAmortizedCostNearHalfGammaPlusOne) {
  // Corollary 1: amortized Full cost is about (Gamma + 1)/2 blocks written
  // per block merged into L_i. Insert-only keeps record consolidation out
  // of the picture. Check L1 (plenty of merges there).
  Options options = TinyOptions();
  options.preserve_blocks = false;  // Analysis ignores preservation.
  TreeFixture fx(options, PolicyKind::kFull);
  RunSteadyUniform(&fx, 700, 12000, 37);

  const LsmStats& stats = fx.tree->stats();
  const double b = options.records_per_block();
  ASSERT_GT(stats.merges_into[1], 10u);
  const double blocks_merged_in =
      static_cast<double>(stats.records_merged_into[1]) / b;
  const double amortized =
      static_cast<double>(stats.BlocksWrittenForLevel(1)) / blocks_merged_in;
  const double predicted = (options.gamma + 1.0) / 2.0;  // 2.5 for Gamma=4.
  // Steady-state L1 under a delete-heavy mix oscillates, so allow slack;
  // the point is the scale: far below Gamma+1, near (Gamma+1)/2.
  EXPECT_GT(amortized, 0.3 * predicted);
  EXPECT_LT(amortized, 2.0 * predicted);
}

TEST(PolicyBoundsTest, ChooseBestSingleMergeNeverRewritesWholeLevel) {
  // The qualitative content of Theorem 2 vs Theorem 1: no single
  // ChooseBest merge may rewrite anything close to the whole next level.
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);

  UniformWorkload::Params wp;
  wp.key_max = 50'000'000;
  wp.seed = 41;
  UniformWorkload workload(wp);
  WorkloadDriver driver(fx.tree.get(), &workload);
  ASSERT_TRUE(driver.GrowTo(700 * options.record_size()).ok());
  workload.set_insert_ratio(0.5);

  // Sample per-merge write deltas into L2.
  uint64_t prev_writes = fx.tree->stats().blocks_written_into[2];
  uint64_t prev_merges = fx.tree->stats().merges_into[2];
  uint64_t max_single = 0;
  for (int i = 0; i < 6000; ++i) {
    ASSERT_TRUE(driver.Run(1).ok());
    const auto& s = fx.tree->stats();
    if (s.merges_into[2] == prev_merges + 1) {
      max_single = std::max(max_single,
                            s.blocks_written_into[2] - prev_writes);
    }
    prev_merges = s.merges_into[2];
    prev_writes = s.blocks_written_into[2];
  }
  const uint64_t k2 = options.LevelCapacityBlocks(2);  // 64 blocks.
  ASSERT_GT(max_single, 0u);
  EXPECT_LT(max_single, k2 / 2) << "a single partial merge rewrote half of L2";
}

TEST(PolicyBoundsTest, CompactionsAreRareTheorem3) {
  // Theorem 3 bounds amortized compaction cost; in practice the paper
  // reports compactions to be extremely rare. Verify that here.
  for (PolicyKind kind :
       {PolicyKind::kRr, PolicyKind::kChooseBest, PolicyKind::kTestMixed}) {
    TreeFixture fx(TinyOptions(), kind);
    RunSteadyUniform(&fx, 700, 8000, 43);
    uint64_t compactions = 0, merges = 0;
    for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
      compactions += fx.tree->stats().compactions[i];
      merges += fx.tree->stats().merges_into[i];
    }
    ASSERT_GT(merges, 50u);
    EXPECT_LT(static_cast<double>(compactions),
              0.05 * static_cast<double>(merges))
        << PolicyKindName(kind);
  }
}

TEST(PolicyBoundsTest, WasteConstraintsHoldUnderAllPolicies) {
  for (PolicyKind kind : {PolicyKind::kFull, PolicyKind::kRr,
                          PolicyKind::kChooseBest, PolicyKind::kTestMixed}) {
    TreeFixture fx(TinyOptions(), kind);
    RunSteadyUniform(&fx, 500, 4000, 47);
    ASSERT_TRUE(fx.tree->CheckInvariants(true).ok())
        << PolicyKindName(kind) << ": "
        << fx.tree->CheckInvariants(true).ToString();
  }
}

}  // namespace
}  // namespace lsmssd
