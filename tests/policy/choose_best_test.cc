#include "src/policy/choose_best_policy.h"

#include <gtest/gtest.h>

#include "src/storage/mem_block_device.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::AddLeafOfKeys;
using testing::TinyOptions;
using testing::TreeFixture;

class ChooseBestSelectionTest : public ::testing::Test {
 protected:
  ChooseBestSelectionTest()
      : options_(TinyOptions()),
        device_(options_.block_size),
        source_(options_, &device_, 1),
        target_(options_, &device_, 2) {}

  void SourceLeaf(const std::vector<Key>& keys) {
    AddLeafOfKeys(options_, &device_, &source_, keys);
  }
  void TargetLeaf(const std::vector<Key>& keys) {
    AddLeafOfKeys(options_, &device_, &target_, keys);
  }

  Options options_;
  MemBlockDevice device_;
  Level source_;
  Level target_;
};

TEST_F(ChooseBestSelectionTest, PicksWindowWithZeroOverlap) {
  SourceLeaf({100, 110});   // Overlaps target leaf 0.
  SourceLeaf({200, 210});   // Overlaps target leaf 1.
  SourceLeaf({900, 910});   // Overlaps nothing.
  TargetLeaf({95, 115});
  TargetLeaf({195, 215});

  auto sel = SelectChooseBestFromLevel(source_, target_, 1);
  EXPECT_FALSE(sel.full);
  EXPECT_EQ(sel.leaf_begin, 2u);
  EXPECT_EQ(sel.leaf_count, 1u);
}

TEST_F(ChooseBestSelectionTest, PicksMinimumOverlapWindow) {
  SourceLeaf({100, 190});  // Spans target leaves 0-2 (3 overlaps).
  SourceLeaf({200, 290});  // Spans 1 target leaf.
  SourceLeaf({300, 390});  // Spans 2 target leaves.
  TargetLeaf({90, 120});
  TargetLeaf({130, 160});
  TargetLeaf({170, 210});
  TargetLeaf({280, 310});
  TargetLeaf({350, 420});

  auto sel = SelectChooseBestFromLevel(source_, target_, 1);
  EXPECT_EQ(sel.leaf_begin, 1u);
}

TEST_F(ChooseBestSelectionTest, TieBreaksToLeftmost) {
  SourceLeaf({100, 110});
  SourceLeaf({200, 210});
  TargetLeaf({105, 205});  // Both windows overlap exactly this one leaf.

  auto sel = SelectChooseBestFromLevel(source_, target_, 1);
  EXPECT_EQ(sel.leaf_begin, 0u);
}

TEST_F(ChooseBestSelectionTest, WindowWiderThanSourceSelectsAll) {
  SourceLeaf({1, 2});
  SourceLeaf({10, 20});
  auto sel = SelectChooseBestFromLevel(source_, target_, 10);
  EXPECT_EQ(sel.leaf_begin, 0u);
  EXPECT_EQ(sel.leaf_count, 2u);
}

TEST_F(ChooseBestSelectionTest, MultiBlockWindowSpansConsecutiveLeaves) {
  SourceLeaf({100, 110});
  SourceLeaf({120, 130});
  SourceLeaf({500, 510});
  SourceLeaf({520, 530});
  TargetLeaf({90, 140});  // Covers source leaves 0-1.

  auto sel = SelectChooseBestFromLevel(source_, target_, 2);
  EXPECT_EQ(sel.leaf_begin, 2u);  // Window {500s} overlaps nothing.
  EXPECT_EQ(sel.leaf_count, 2u);
}

TEST_F(ChooseBestSelectionTest, EmptyTargetMeansAnyWindowIsFree) {
  SourceLeaf({1, 5});
  SourceLeaf({10, 15});
  auto sel = SelectChooseBestFromLevel(source_, target_, 1);
  EXPECT_EQ(sel.leaf_begin, 0u);  // All overlap 0; leftmost wins.
}

TEST_F(ChooseBestSelectionTest, L0SelectionFindsSparseRegion) {
  Memtable mem;
  // Dense cluster at 100.. and a couple of outliers at 900+.
  for (Key k = 0; k < 20; ++k) mem.Put(100 + k, "v");
  mem.Put(900, "v");
  mem.Put(905, "v");
  TargetLeaf({95, 130});  // The dense cluster region is covered by target.

  auto sel = SelectChooseBestFromL0(mem, target_, 2);
  EXPECT_FALSE(sel.full);
  EXPECT_EQ(sel.record_begin, 20u);  // The {900, 905} window.
  EXPECT_EQ(sel.record_count, 2u);
}

TEST_F(ChooseBestSelectionTest, L0WindowLargerThanMemtableSelectsAll) {
  Memtable mem;
  mem.Put(1, "v");
  mem.Put(2, "v");
  auto sel = SelectChooseBestFromL0(mem, target_, 50);
  EXPECT_EQ(sel.record_begin, 0u);
  EXPECT_EQ(sel.record_count, 2u);
}

TEST(ChooseBestPolicyTest, EveryMergeRespectsWindowSize) {
  // Under ChooseBest, partial merges out of L0 always move exactly the
  // configured window (delta * K0 * B records) while L0 keeps its size
  // between (1-delta) and full.
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  const uint64_t window =
      options.PartialMergeBlocks(0) * options.records_per_block();
  for (Key k = 0; k < 3000; ++k) {
    ASSERT_TRUE(fx.Put(k * 17 + 1).ok());
    const uint64_t l0_cap =
        options.level0_capacity_blocks * options.records_per_block();
    EXPECT_LT(fx.tree->memtable().size(), l0_cap);
  }
  // Records merged into L1 arrive in window-sized steps.
  EXPECT_EQ(fx.tree->stats().records_merged_into[1] % window, 0u);
}

}  // namespace
}  // namespace lsmssd
