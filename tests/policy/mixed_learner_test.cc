#include "src/policy/mixed_learner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/workload/uniform_workload.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

/// Builds a steady-state scratch tree of roughly `records` live records
/// plus the workload that produced it.
struct LearnerRig {
  LearnerRig(uint64_t records, uint64_t seed)
      : fx(TinyOptions(), PolicyKind::kChooseBest) {
    UniformWorkload::Params wp;
    wp.key_max = 40'000'000;
    wp.seed = seed;
    workload = std::make_unique<UniformWorkload>(wp);
    driver = std::make_unique<WorkloadDriver>(fx.tree.get(), workload.get());
    const uint64_t bytes = records * fx.options_copy.record_size();
    LSMSSD_CHECK(driver->GrowTo(bytes).ok());
    LSMSSD_CHECK(driver->ReachSteadyState(0.5).ok());
  }

  TreeFixture fx;
  std::unique_ptr<UniformWorkload> workload;
  std::unique_ptr<WorkloadDriver> driver;
};

TEST(MixedLearnerTest, LearnsBetaOnThreeLevelTree) {
  LearnerRig rig(500, 11);
  ASSERT_EQ(rig.fx.tree->num_levels(), 3u);

  auto params_or =
      MixedLearner::Learn(rig.fx.tree.get(), rig.driver->RequestFn());
  ASSERT_TRUE(params_or.ok()) << params_or.status().ToString();
  // Three levels: no internal thresholds to learn, only beta; the learned
  // parameter set must drive a working Mixed policy.
  TreeFixture fresh(TinyOptions(), PolicyKind::kMixed, params_or.value());
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fresh.Put(k * 3 + 1).ok());
  EXPECT_TRUE(fresh.tree->CheckInvariants(true).ok());
}

TEST(MixedLearnerTest, BetaCostsAreFiniteAndPositive) {
  LearnerRig rig(500, 13);
  MixedLearner::Config config;
  MixedParams params;
  auto full_or = MixedLearner::MeasureBetaCost(
      rig.fx.tree.get(), rig.driver->RequestFn(), params, true, config);
  ASSERT_TRUE(full_or.ok()) << full_or.status().ToString();
  auto partial_or = MixedLearner::MeasureBetaCost(
      rig.fx.tree.get(), rig.driver->RequestFn(), params, false, config);
  ASSERT_TRUE(partial_or.ok()) << partial_or.status().ToString();
  EXPECT_GT(full_or.value(), 0.0);
  EXPECT_TRUE(std::isfinite(full_or.value()));
  EXPECT_GT(partial_or.value(), 0.0);
  EXPECT_TRUE(std::isfinite(partial_or.value()));
}

TEST(MixedLearnerTest, ThresholdCostMeasurableOnFourLevelTree) {
  LearnerRig rig(2200, 17);
  ASSERT_GE(rig.fx.tree->num_levels(), 4u);

  MixedLearner::Config config;
  MixedParams params;
  params.tau.assign(4, 0.0);
  params.tau[2] = 0.5;
  auto cost_or = MixedLearner::MeasureThresholdCost(
      rig.fx.tree.get(), rig.driver->RequestFn(), params, 2, config);
  ASSERT_TRUE(cost_or.ok()) << cost_or.status().ToString();
  EXPECT_GT(cost_or.value(), 0.0);
  EXPECT_TRUE(std::isfinite(cost_or.value()));
}

TEST(MixedLearnerTest, LearnsFullParameterSetTopDown) {
  LearnerRig rig(2200, 19);
  ASSERT_GE(rig.fx.tree->num_levels(), 4u);
  const size_t h = rig.fx.tree->num_levels();

  MixedLearner::Config config;
  config.tau_step = 0.25;  // Coarse grid keeps the test fast.
  auto params_or = MixedLearner::Learn(rig.fx.tree.get(),
                                       rig.driver->RequestFn(), config);
  ASSERT_TRUE(params_or.ok()) << params_or.status().ToString();
  const MixedParams& p = params_or.value();
  for (size_t i = 2; i + 1 < h; ++i) {
    EXPECT_GE(p.TauFor(i), 0.0);
    EXPECT_LE(p.TauFor(i), 1.0);
  }
}

TEST(MixedLearnerTest, RequestBudgetFailureSurfaces) {
  LearnerRig rig(500, 23);
  MixedLearner::Config config;
  config.max_requests_per_measurement = 5;  // Absurdly small.
  MixedParams params;
  auto cost_or = MixedLearner::MeasureBetaCost(
      rig.fx.tree.get(), rig.driver->RequestFn(), params, true, config);
  EXPECT_FALSE(cost_or.ok());
}

}  // namespace
}  // namespace lsmssd
