// Factory plumbing plus behavioral tests of the Full and RR policies.

#include <gtest/gtest.h>

#include "src/policy/full_policy.h"
#include "src/policy/policy_factory.h"
#include "src/policy/rr_policy.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::AddLeafOfKeys;
using testing::TinyOptions;
using testing::TreeFixture;

TEST(PolicyFactoryTest, CreatesEveryKind) {
  EXPECT_EQ(CreatePolicy(PolicyKind::kFull)->name(), "Full");
  EXPECT_EQ(CreatePolicy(PolicyKind::kRr)->name(), "RR");
  EXPECT_EQ(CreatePolicy(PolicyKind::kChooseBest)->name(), "ChooseBest");
  EXPECT_EQ(CreatePolicy(PolicyKind::kMixed)->name(), "Mixed");
  EXPECT_EQ(CreatePolicy(PolicyKind::kTestMixed)->name(), "Mixed");
}

TEST(PolicyFactoryTest, ParseRoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kFull, PolicyKind::kRr, PolicyKind::kChooseBest,
        PolicyKind::kMixed, PolicyKind::kTestMixed}) {
    PolicyKind parsed;
    ASSERT_TRUE(ParsePolicyKind(PolicyKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind unused;
  EXPECT_FALSE(ParsePolicyKind("full", &unused));  // Case-sensitive.
  EXPECT_FALSE(ParsePolicyKind("Bogus", &unused));
}

TEST(FullPolicyTest, AlwaysSelectsFull) {
  TreeFixture fx(TinyOptions(), PolicyKind::kFull);
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(fx.Put(k * 5).ok());
  FullPolicy policy;
  const MergeSelection sel = policy.SelectMerge(*fx.tree, 0);
  EXPECT_TRUE(sel.full);
}

TEST(FullPolicyTest, FullMergesEmptyTheSourceLevel) {
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kFull);
  // Push exactly one L0 overflow through.
  const uint64_t l0_records =
      options.level0_capacity_blocks * options.records_per_block();
  for (Key k = 0; k < l0_records; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  // After a Full merge, L0 drained completely.
  EXPECT_EQ(fx.tree->memtable().size(), 0u);
  EXPECT_EQ(fx.tree->stats().full_merges_into[1],
            fx.tree->stats().merges_into[1]);
}

TEST(RrPolicyTest, FirstSelectionStartsAtFront) {
  Options options = TinyOptions();
  MemBlockDevice device(options.block_size);
  auto tree_or =
      LsmTree::Open(options, &device, CreatePolicy(PolicyKind::kRr));
  ASSERT_TRUE(tree_or.ok());
  // Give L0 some records without triggering a merge.
  for (Key k = 0; k < 30; ++k) {
    ASSERT_TRUE(
        tree_or.value()->Put(k, MakePayload(options, k)).ok());
  }
  RrPolicy policy;
  // Need a level 1 to exist before selecting; grow by hand is overkill —
  // instead check the L0 path on a 2-level tree.
  // (L0 window = PartialMergeBlocks(0) * B = 1 * 10.)
  // Force level creation through the tree's own machinery:
  for (Key k = 30; k < 45; ++k) {
    ASSERT_TRUE(tree_or.value()->Put(k, MakePayload(options, k)).ok());
  }
  ASSERT_GE(tree_or.value()->num_levels(), 2u);
  const MergeSelection sel = policy.SelectMerge(*tree_or.value(), 0);
  EXPECT_FALSE(sel.full);
  EXPECT_EQ(sel.record_begin, 0u);
  EXPECT_EQ(sel.record_count, 10u);
}

TEST(RrPolicyTest, CursorAdvancesAndWraps) {
  // Build a standalone source/target pair and call the policy directly on
  // a real tree whose L1 we populate by hand is complex; instead verify
  // cursor mechanics through consecutive selections on L0.
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 600; ++k) ASSERT_TRUE(fx.Put(k).ok());
  ASSERT_GE(fx.tree->num_levels(), 2u);

  // Fill L0 with a known ladder (values 1000..1029 stay below merge
  // threshold of 40).
  for (Key k = 0; k < 30; ++k) {
    ASSERT_TRUE(fx.tree->Put(10000 + k, MakePayload(options, k)).ok());
  }

  RrPolicy policy;
  auto s1 = policy.SelectMerge(*fx.tree, 0);
  auto s2 = policy.SelectMerge(*fx.tree, 0);
  EXPECT_EQ(s1.record_begin, 0u);
  // Cursor resumes after the largest key of the previous selection.
  EXPECT_EQ(s2.record_begin, s1.record_begin + s1.record_count);

  // Selections walk forward and eventually wrap to the beginning.
  size_t wraps = 0;
  size_t prev_begin = s2.record_begin;
  for (int i = 0; i < 20; ++i) {
    auto s = policy.SelectMerge(*fx.tree, 0);
    if (s.record_begin < prev_begin) ++wraps;
    prev_begin = s.record_begin;
  }
  EXPECT_GE(wraps, 1u);
}

TEST(RrPolicyTest, ResetClearsCursors) {
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 600; ++k) ASSERT_TRUE(fx.Put(k).ok());
  for (Key k = 0; k < 30; ++k) {
    ASSERT_TRUE(fx.tree->Put(10000 + k, MakePayload(options, k)).ok());
  }
  RrPolicy policy;
  auto s1 = policy.SelectMerge(*fx.tree, 0);
  (void)policy.SelectMerge(*fx.tree, 0);
  policy.Reset();
  auto s3 = policy.SelectMerge(*fx.tree, 0);
  EXPECT_EQ(s3.record_begin, s1.record_begin);  // Back to the start.
}

TEST(RrPolicyTest, LevelSelectionsAreRoundRobinInKeyOrder) {
  // Drive a tree under RR and verify selections from L1 progress through
  // the key space: consecutive merges into L2 should touch increasing key
  // ranges (with wraparound).
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kRr);
  for (Key k = 0; k < 4000; ++k) ASSERT_TRUE(fx.Put(k * 11 + 3).ok());
  ASSERT_GE(fx.tree->num_levels(), 3u);
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
}

}  // namespace
}  // namespace lsmssd
