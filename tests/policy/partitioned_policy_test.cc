#include "src/policy/partitioned_policy.h"

#include <gtest/gtest.h>

#include "src/policy/choose_best_policy.h"
#include "src/workload/normal_workload.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(PartitionedPolicyTest, FactoryAndName) {
  auto policy = CreatePolicy(PolicyKind::kPartitioned);
  EXPECT_EQ(policy->name(), "PartitionedCB");
  PolicyKind parsed;
  ASSERT_TRUE(ParsePolicyKind("PartitionedCB", &parsed));
  EXPECT_EQ(parsed, PolicyKind::kPartitioned);
}

TEST(PartitionedPolicyTest, SelectionsAreAlignedToPartitions) {
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 600; ++k) ASSERT_TRUE(fx.Put(k).ok());
  for (Key k = 0; k < 30; ++k) {
    ASSERT_TRUE(fx.tree->Put(100000 + k, MakePayload(options, k)).ok());
  }
  PartitionedChooseBestPolicy policy;
  const size_t window =
      options.PartialMergeBlocks(0) * options.records_per_block();
  for (int i = 0; i < 5; ++i) {
    const MergeSelection sel = policy.SelectMerge(*fx.tree, 0);
    EXPECT_FALSE(sel.full);
    EXPECT_EQ(sel.record_begin % window, 0u) << "unaligned partition";
  }
}

TEST(PartitionedPolicyTest, NeverBeatsChooseBestOnOverlap) {
  // ChooseBest considers every window, Partitioned only the aligned ones:
  // for identical tree states, ChooseBest's selected overlap is a lower
  // bound (Section VI's HyperLevelDB argument).
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 3000; ++k) ASSERT_TRUE(fx.Put(k * 13 + 1).ok());
  ASSERT_GE(fx.tree->num_levels(), 3u);

  const Level& source = fx.tree->level(1);
  const Level& target = fx.tree->level(2);
  if (source.num_leaves() < 4) GTEST_SKIP() << "L1 too small";

  auto overlap_of = [&](const MergeSelection& sel) {
    const Key lo = source.leaf(sel.leaf_begin).min_key;
    const Key hi =
        source.leaf(sel.leaf_begin + sel.leaf_count - 1).max_key;
    const auto [b, e] = target.OverlapRange(lo, hi);
    return e - b;
  };

  PartitionedChooseBestPolicy partitioned;
  const MergeSelection p = partitioned.SelectMerge(*fx.tree, 1);
  const MergeSelection c = SelectChooseBestFromLevel(
      source, target, fx.options_copy.PartialMergeBlocks(1));
  EXPECT_LE(overlap_of(c), overlap_of(p));
}

TEST(PartitionedPolicyTest, EndToEndCorrectness) {
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kPartitioned);
  NormalWorkload::Params wp;
  wp.seed = 77;
  NormalWorkload workload(wp);
  WorkloadDriver driver(fx.tree.get(), &workload);
  ASSERT_TRUE(driver.Run(6000).ok());
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  EXPECT_EQ(fx.tree->stats().TotalBlocksWritten(),
            fx.device.stats().block_writes());
}

TEST(PartitionedPolicyTest, CostBetweenChooseBestAndRr) {
  // Sanity on relative cost: Partitioned (a restricted ChooseBest) should
  // not beat ChooseBest by more than noise, and should not collapse.
  auto measure = [&](PolicyKind kind) {
    Options options = TinyOptions();
    TreeFixture fx(options, kind);
    NormalWorkload::Params wp;
    wp.seed = 99;
    NormalWorkload workload(wp);
    WorkloadDriver driver(fx.tree.get(), &workload);
    LSMSSD_CHECK(driver.GrowTo(600 * options.record_size()).ok());
    workload.set_insert_ratio(0.5);
    LSMSSD_CHECK(driver.Run(15000).ok());
    return static_cast<double>(fx.device.stats().block_writes());
  };
  const double cb = measure(PolicyKind::kChooseBest);
  const double part = measure(PolicyKind::kPartitioned);
  EXPECT_GT(part, cb * 0.9);
  EXPECT_LT(part, cb * 1.6);
}

}  // namespace
}  // namespace lsmssd
