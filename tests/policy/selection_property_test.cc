// Randomized property tests of the selection algorithms: the two-pointer
// ChooseBest sweep must return exactly what a brute-force scan over every
// window returns, and Level::OverlapRange must agree with a brute-force
// overlap test — across many random level layouts.

#include <gtest/gtest.h>

#include "src/policy/choose_best_policy.h"
#include "src/storage/mem_block_device.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::AddLeafOfKeys;
using testing::TinyOptions;

/// Builds a level with `n` random non-overlapping leaves (1..B records
/// each, but pairwise-valid is NOT required here — selection code never
/// depends on the waste constraints).
void BuildRandomLevel(const Options& options, MemBlockDevice* device,
                      Level* level, size_t n, Random* rng) {
  Key next = rng->Uniform(50);
  const size_t b = options.records_per_block();
  for (size_t i = 0; i < n; ++i) {
    const size_t count = 1 + rng->Uniform(b);
    std::vector<Key> keys;
    for (size_t j = 0; j < count; ++j) {
      next += 1 + rng->Uniform(40);
      keys.push_back(next);
    }
    AddLeafOfKeys(options, device, level, keys);
    next += 1 + rng->Uniform(200);  // Gap between leaves.
  }
}

size_t BruteForceOverlap(const Level& target, Key lo, Key hi) {
  size_t overlap = 0;
  for (const LeafMeta& leaf : target.leaves()) {
    if (leaf.max_key >= lo && leaf.min_key <= hi) ++overlap;
  }
  return overlap;
}

TEST(SelectionPropertyTest, ChooseBestMatchesBruteForce) {
  const Options options = TinyOptions();
  Random rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    MemBlockDevice device(options.block_size);
    Level source(options, &device, 1);
    Level target(options, &device, 2);
    BuildRandomLevel(options, &device, &source, 3 + rng.Uniform(25), &rng);
    BuildRandomLevel(options, &device, &target, rng.Uniform(40), &rng);
    const size_t window = 1 + rng.Uniform(6);

    const MergeSelection sel =
        SelectChooseBestFromLevel(source, target, window);

    if (window >= source.num_leaves()) {
      EXPECT_EQ(sel.leaf_begin, 0u);
      EXPECT_EQ(sel.leaf_count, source.num_leaves());
      continue;
    }
    // Brute force: overlap of every window; the selection must achieve
    // the global minimum and be the leftmost such window.
    size_t best = SIZE_MAX, best_j = 0;
    for (size_t j = 0; j + window <= source.num_leaves(); ++j) {
      const size_t overlap = BruteForceOverlap(
          target, source.leaf(j).min_key,
          source.leaf(j + window - 1).max_key);
      if (overlap < best) {
        best = overlap;
        best_j = j;
      }
    }
    const size_t selected_overlap = BruteForceOverlap(
        target, source.leaf(sel.leaf_begin).min_key,
        source.leaf(sel.leaf_begin + sel.leaf_count - 1).max_key);
    EXPECT_EQ(selected_overlap, best) << "trial " << trial;
    EXPECT_EQ(sel.leaf_begin, best_j) << "trial " << trial;
    EXPECT_EQ(sel.leaf_count, window);
  }
}

TEST(SelectionPropertyTest, L0ChooseBestMatchesBruteForce) {
  const Options options = TinyOptions();
  Random rng(2025);
  for (int trial = 0; trial < 40; ++trial) {
    MemBlockDevice device(options.block_size);
    Level target(options, &device, 1);
    BuildRandomLevel(options, &device, &target, 5 + rng.Uniform(30), &rng);

    Memtable mem;
    const size_t n = 5 + rng.Uniform(60);
    while (mem.size() < n) mem.Put(rng.Uniform(5000), "v");
    const size_t window = 1 + rng.Uniform(10);
    const std::vector<Key> keys = mem.SortedKeys();

    const MergeSelection sel = SelectChooseBestFromL0(mem, target, window);
    if (window >= keys.size()) {
      EXPECT_EQ(sel.record_count, keys.size());
      continue;
    }
    size_t best = SIZE_MAX;
    for (size_t j = 0; j + window <= keys.size(); ++j) {
      best = std::min(
          best, BruteForceOverlap(target, keys[j], keys[j + window - 1]));
    }
    const size_t selected = BruteForceOverlap(
        target, keys[sel.record_begin],
        keys[sel.record_begin + sel.record_count - 1]);
    EXPECT_EQ(selected, best) << "trial " << trial;
  }
}

TEST(SelectionPropertyTest, OverlapRangeMatchesBruteForce) {
  const Options options = TinyOptions();
  Random rng(2026);
  for (int trial = 0; trial < 60; ++trial) {
    MemBlockDevice device(options.block_size);
    Level level(options, &device, 1);
    BuildRandomLevel(options, &device, &level, rng.Uniform(30), &rng);

    for (int probe = 0; probe < 30; ++probe) {
      Key lo = rng.Uniform(6000);
      Key hi = lo + rng.Uniform(2000);
      const auto [begin, end] = level.OverlapRange(lo, hi);
      for (size_t i = 0; i < level.num_leaves(); ++i) {
        const bool overlaps = level.leaf(i).max_key >= lo &&
                              level.leaf(i).min_key <= hi;
        const bool in_range = i >= begin && i < end;
        EXPECT_EQ(overlaps, in_range)
            << "trial " << trial << " leaf " << i << " range [" << lo
            << "," << hi << "]";
      }
    }
  }
}

TEST(SelectionPropertyTest, InitialLevelsPreCreatesEmptyLevels) {
  Options options = TinyOptions();
  options.initial_levels = 4;
  testing::TreeFixture fx(options, PolicyKind::kTestMixed);
  EXPECT_EQ(fx.tree->num_levels(), 5u);  // L0 + 4 on-SSD levels.
  for (size_t i = 1; i <= 4; ++i) EXPECT_TRUE(fx.tree->level(i).empty());

  // The tree works normally; merges route down through the pre-created
  // levels and invariants hold.
  for (Key k = 0; k < 1500; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  for (Key k = 0; k < 1500; ++k) {
    ASSERT_TRUE(fx.tree->Get(k * 3).ok()) << "key " << k * 3;
  }
}

}  // namespace
}  // namespace lsmssd
