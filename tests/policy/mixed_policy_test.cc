#include "src/policy/mixed_policy.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(MixedParamsTest, TauForDefaultsToZero) {
  MixedParams params;
  EXPECT_DOUBLE_EQ(params.TauFor(2), 0.0);
  params.tau = {0, 0, 0.4, 0.7};
  EXPECT_DOUBLE_EQ(params.TauFor(2), 0.4);
  EXPECT_DOUBLE_EQ(params.TauFor(3), 0.7);
  EXPECT_DOUBLE_EQ(params.TauFor(9), 0.0);
}

TEST(MixedParamsTest, ToStringMentionsBeta) {
  MixedParams params;
  params.beta = true;
  EXPECT_NE(params.ToString().find("beta=true"), std::string::npos);
}

TEST(MixedPolicyTest, L0MergesAreAlwaysPartialInTallTrees) {
  // Once the tree has >= 3 levels under TestMixed, merges into L1 must all
  // be partial (rule 1) and merges into the bottom all full (beta = true).
  // Measure as a delta after the growth phase: while the tree had only two
  // levels, L1 *was* the bottom and legitimately received full merges.
  TreeFixture fx(TinyOptions(), PolicyKind::kTestMixed);
  Key k = 0;
  while (fx.tree->num_levels() < 4) {
    ASSERT_TRUE(fx.Put(k * 7 + 1).ok());
    ++k;
  }
  const LsmStats before = fx.tree->stats();
  const size_t bottom = fx.tree->num_levels() - 1;
  // Capacity up to L3 is ~3400 records at TinyOptions; 300 more inserts
  // stay below it, so the height (and thus the bottom index) is stable.
  for (Key extra = 0; extra < 300; ++extra) {
    ASSERT_TRUE(fx.Put(k * 7 + 1).ok());
    ++k;
  }
  ASSERT_EQ(fx.tree->num_levels(), bottom + 1);

  const LsmStats delta = fx.tree->stats().DeltaSince(before);
  EXPECT_GT(delta.merges_into[1], 0u);
  EXPECT_EQ(delta.full_merges_into[1], 0u);  // Rule 1: never full from L0.
  if (delta.merges_into[bottom] > 0) {
    EXPECT_EQ(delta.full_merges_into[bottom], delta.merges_into[bottom]);
  }
}

TEST(MixedPolicyTest, BetaFalseMakesBottomMergesPartial) {
  MixedParams params;
  params.beta = false;
  TreeFixture fx(TinyOptions(), PolicyKind::kMixed, params);
  for (Key k = 0; k < 3000; ++k) ASSERT_TRUE(fx.Put(k * 7 + 1).ok());
  ASSERT_GE(fx.tree->num_levels(), 3u);
  const size_t bottom = fx.tree->num_levels() - 1;
  EXPECT_GT(fx.tree->stats().merges_into[bottom], 0u);
  EXPECT_EQ(fx.tree->stats().full_merges_into[bottom], 0u);
}

TEST(MixedPolicyTest, ThresholdGovernsInternalLevels) {
  // With tau_2 = 1.0 every merge into L2 happens while S(L2) < K2, i.e.
  // all merges into L2 are full until it is at capacity; with tau_2 = 0
  // none are.
  for (double tau2 : {0.0, 1.0}) {
    MixedParams params;
    params.tau = {0, 0, tau2};
    params.beta = false;
    TreeFixture fx(TinyOptions(), PolicyKind::kMixed, params);
    for (Key k = 0; k < 12000; ++k) ASSERT_TRUE(fx.Put(k * 5 + 1).ok());
    ASSERT_GE(fx.tree->num_levels(), 4u) << "need L2 internal";
    const LsmStats& stats = fx.tree->stats();
    ASSERT_GT(stats.merges_into[2], 0u);
    if (tau2 == 0.0) {
      EXPECT_EQ(stats.full_merges_into[2], 0u);
    } else {
      EXPECT_GT(stats.full_merges_into[2], 0u);
    }
    ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  }
}

TEST(MixedPolicyTest, TestMixedMatchesPaperDescription) {
  // "ChooseBest for all merges from L0 to L1, Full for all merges from L1
  // to L2" on a 3-level tree.
  MixedPolicy policy = MixedPolicy::TestMixed();
  EXPECT_TRUE(policy.params().beta);
  EXPECT_TRUE(policy.params().tau.empty());
}

TEST(MixedPolicyTest, SetParamsSwapsBehaviour) {
  MixedPolicy policy{MixedParams{}};
  MixedParams p;
  p.beta = true;
  p.tau = {0, 0, 0.5};
  policy.set_params(p);
  EXPECT_TRUE(policy.params().beta);
  EXPECT_DOUBLE_EQ(policy.params().TauFor(2), 0.5);
}

}  // namespace
}  // namespace lsmssd
