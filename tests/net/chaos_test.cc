// Chaos-path tests: the socket fault seam (src/net/fault_socket.h), the
// client's retry/backoff/reconnect machinery, and the partial-frame
// satellite — a response truncated at EVERY byte offset must leave the
// client either cleanly Unavailable (peer closed) or TimedOut-and-
// resumable (peer stalled); it must never misparse a partial frame.
//
// Scripted servers (raw loopback sockets driven byte-by-byte from a
// thread) stand in for the real server so each failure is placed at an
// exact point in the conversation.

#include "src/net/fault_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/db/db.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/storage/fault_injection.h"
#include "tests/test_util.h"

namespace lsmssd::net {
namespace {

using lsmssd::testing::TinyOptions;
using Action = SocketFaultInjector::Action;

// ---------------------------------------------------------------------------
// SocketFaultInjector unit tests (no sockets involved).
// ---------------------------------------------------------------------------

TEST(SocketFaultInjectorTest, PeriodicRulesAreDeterministic) {
  SocketFaultConfig cfg;
  cfg.eintr_every = 3;
  cfg.reset_every = 5;
  SocketFaultInjector a(nullptr, cfg), b(nullptr, cfg);
  for (int i = 0; i < 60; ++i) {
    const Action x = a.Next(SocketOp::kRecv);
    const Action y = b.Next(SocketOp::kRecv);
    EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind)) << i;
    EXPECT_EQ(x.err, y.err) << i;
  }
  EXPECT_EQ(a.counters().eintr, b.counters().eintr);
  EXPECT_EQ(a.counters().resets, b.counters().resets);
  EXPECT_EQ(a.steps(), 60u);
}

TEST(SocketFaultInjectorTest, AtMostOneRuleFiresCheckedInOrder) {
  // Steps divisible by both 3 and 6 must pick eintr (checked first);
  // reset fires only on the multiples of 3 that are not multiples of 6.
  SocketFaultConfig cfg;
  cfg.eintr_every = 6;
  cfg.reset_every = 3;
  SocketFaultInjector inj(nullptr, cfg);
  std::vector<int> eintr_steps, reset_steps;
  for (int step = 1; step <= 12; ++step) {
    const Action a = inj.Next(SocketOp::kSend);
    if (a.err == EINTR) eintr_steps.push_back(step);
    if (a.err == ECONNRESET) reset_steps.push_back(step);
  }
  EXPECT_EQ(eintr_steps, (std::vector<int>{6, 12}));
  EXPECT_EQ(reset_steps, (std::vector<int>{3, 9}));
}

TEST(SocketFaultInjectorTest, TruncateIsSendOnlyAndArmsAReset) {
  SocketFaultConfig cfg;
  cfg.truncate_every = 3;
  cfg.short_bytes = 2;
  SocketFaultInjector inj(nullptr, cfg);

  // Steps 1..3 are recvs: truncation never fires on the receive side.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kRecv).kind),
              static_cast<int>(Action::Kind::kPass));
  }
  // Steps 4,5 pass; step 6 is a send on a multiple of 3: short write...
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kSend).kind),
            static_cast<int>(Action::Kind::kPass));
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kSend).kind),
            static_cast<int>(Action::Kind::kPass));
  const Action trunc = inj.Next(SocketOp::kSend);
  EXPECT_EQ(static_cast<int>(trunc.kind),
            static_cast<int>(Action::Kind::kShort));
  EXPECT_EQ(trunc.cap_bytes, 2u);
  // ...and the op after it observes the torn stream.
  const Action after = inj.Next(SocketOp::kRecv);
  EXPECT_EQ(static_cast<int>(after.kind),
            static_cast<int>(Action::Kind::kErrno));
  EXPECT_EQ(after.err, ECONNRESET);

  // Step 8 passes; step 9 truncates again, but this time the client
  // reconnects first: the pending reset belongs to the torn stream and
  // is cleared.
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kSend).kind),
            static_cast<int>(Action::Kind::kPass));
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kSend).kind),
            static_cast<int>(Action::Kind::kShort));
  inj.OnReconnect();
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kRecv).kind),
            static_cast<int>(Action::Kind::kPass));
  EXPECT_EQ(inj.counters().truncations, 2u);
  EXPECT_EQ(inj.counters().resets, 1u);
}

TEST(SocketFaultInjectorTest, ArmedClockIsAPermanentResetUntilDisarm) {
  FaultInjector clock;
  SocketFaultConfig cfg;  // No periodic rules: only the clock acts.
  SocketFaultInjector inj(&clock, cfg);
  clock.Arm(2);  // Steps 0 and 1 pass; step 2 trips.
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kSend).kind),
            static_cast<int>(Action::Kind::kPass));
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kRecv).kind),
            static_cast<int>(Action::Kind::kPass));
  for (int i = 0; i < 5; ++i) {
    const Action a = inj.Next(SocketOp::kSend);
    EXPECT_EQ(a.err, ECONNRESET) << "tripped clock must keep resetting";
  }
  EXPECT_TRUE(clock.tripped());
  clock.Disarm();
  EXPECT_EQ(static_cast<int>(inj.Next(SocketOp::kRecv).kind),
            static_cast<int>(Action::Kind::kPass));
  EXPECT_EQ(inj.counters().resets, 5u);
}

// ---------------------------------------------------------------------------
// Scripted loopback servers.
// ---------------------------------------------------------------------------

/// A listening socket whose conversation is driven explicitly by the
/// test: accept / read-exact / send / close, one step at a time.
struct ScriptServer {
  ScriptServer() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    LSMSSD_CHECK(listen_fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    LSMSSD_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    LSMSSD_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    LSMSSD_CHECK(::listen(listen_fd, 4) == 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    LSMSSD_CHECK(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                               &len) == 0);
    port = ntohs(bound.sin_port);
  }
  ~ScriptServer() {
    CloseConn();
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void Accept() {
    CloseConn();
    conn_fd = ::accept(listen_fd, nullptr, nullptr);
    LSMSSD_CHECK(conn_fd >= 0);
  }
  /// Reads exactly n bytes (so a later close sends FIN, not RST).
  void ReadExact(size_t n) {
    std::string got(n, '\0');
    size_t off = 0;
    while (off < n) {
      const ssize_t r = ::recv(conn_fd, got.data() + off, n - off, 0);
      LSMSSD_CHECK(r > 0) << "script read failed at " << off << "/" << n;
      off += static_cast<size_t>(r);
    }
  }
  void Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(conn_fd, bytes.data() + off, bytes.size() - off,
                 MSG_NOSIGNAL);
      LSMSSD_CHECK(n > 0);
      off += static_cast<size_t>(n);
    }
  }
  void CloseConn() {
    if (conn_fd >= 0) ::close(conn_fd), conn_fd = -1;
  }

  int listen_fd = -1;
  int conn_fd = -1;
  uint16_t port = 0;
};

std::unique_ptr<Client> MustConnect(uint16_t port, int io_timeout_ms,
                                    RetryPolicy retry = RetryPolicy()) {
  ClientOptions copts;
  copts.port = port;
  copts.io_timeout_ms = io_timeout_ms;
  copts.retry = retry;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 4;
  auto client_or = Client::Connect(copts);
  LSMSSD_CHECK(client_or.ok()) << client_or.status().ToString();
  return std::move(client_or).value();
}

// ---------------------------------------------------------------------------
// Satellite: partial-frame truncation at every byte offset.
// ---------------------------------------------------------------------------

TEST(TruncationSweepTest, PeerCloseAfterEveryPrefixIsCleanlyUnavailable) {
  const std::string request =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet), EncodeGetRequest(7));
  const std::string reply =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet) | kResponseBit,
                  EncodeErrorResponse(Status::NotFound("nope")));
  for (size_t off = 1; off < reply.size(); ++off) {
    ScriptServer server;
    auto client = MustConnect(server.port, /*io_timeout_ms=*/2000);
    std::thread script([&] {
      server.Accept();
      server.ReadExact(request.size());
      server.Send(std::string_view(reply).substr(0, off));
      server.CloseConn();  // FIN mid-frame.
    });
    ASSERT_TRUE(client
                    ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                              EncodeGetRequest(7))
                    .ok())
        << "offset " << off;
    Frame frame;
    const Status st = client->ReceiveResponse(&frame);
    // The defining property: a frame cut at ANY offset is never
    // surfaced as a (mis)parsed response.
    EXPECT_TRUE(st.IsUnavailable()) << "offset " << off << ": "
                                    << st.ToString();
    // The connection is latched dead with the same retryable error.
    Frame again;
    EXPECT_TRUE(client->ReceiveResponse(&again).IsUnavailable())
        << "offset " << off;
    script.join();
  }
}

TEST(TruncationSweepTest, StallAfterEveryPrefixTimesOutThenResumesAligned) {
  const std::string request =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet), EncodeGetRequest(7));
  const std::string reply =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet) | kResponseBit,
                  EncodeErrorResponse(Status::NotFound("nope")));
  for (size_t off = 1; off < reply.size(); ++off) {
    ScriptServer server;
    auto client = MustConnect(server.port, /*io_timeout_ms=*/50);
    std::thread script([&] {
      server.Accept();
      server.ReadExact(request.size());
      server.Send(std::string_view(reply).substr(0, off));
      // Stall: say nothing until the client has timed out once.
    });
    ASSERT_TRUE(client
                    ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                              EncodeGetRequest(7))
                    .ok());
    Frame frame;
    Status st = client->ReceiveResponse(&frame);
    ASSERT_TRUE(st.IsTimedOut()) << "offset " << off << ": " << st.ToString();
    script.join();

    // The server wakes up: the rest of the frame completes the original
    // reply — the partial prefix was buffered, the stream is aligned.
    server.Send(std::string_view(reply).substr(off));
    st = client->ReceiveResponse(&frame);
    ASSERT_TRUE(st.ok()) << "offset " << off << ": " << st.ToString();
    std::string_view body;
    EXPECT_TRUE(DecodeResponseStatus(frame.payload, &body).IsNotFound())
        << "offset " << off;

    // And the alignment survives into the next full exchange.
    ASSERT_TRUE(client
                    ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                              EncodeGetRequest(8))
                    .ok());
    server.ReadExact(request.size());
    server.Send(reply);
    st = client->ReceiveResponse(&frame);
    ASSERT_TRUE(st.ok()) << "offset " << off << ": " << st.ToString();
  }
}

// ---------------------------------------------------------------------------
// Retry / reconnect semantics against scripted failures.
// ---------------------------------------------------------------------------

TEST(RetryTest, ReadRetriesAcrossAPeerReset) {
  ScriptServer server;
  const std::string request =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet), EncodeGetRequest(42));
  const std::string reply =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet) | kResponseBit,
                  EncodeErrorResponse(Status::NotFound("nope")));
  std::thread script([&] {
    server.Accept();                    // Connection 1:
    server.ReadExact(request.size());   //   take the request...
    server.CloseConn();                 //   ...and hang up. Ambiguous!
    server.Accept();                    // Connection 2 (the reconnect):
    server.ReadExact(request.size());
    server.Send(reply);                 //   answer properly.
  });

  RetryPolicy rp;
  rp.max_attempts = 5;
  auto client = MustConnect(server.port, 2000, rp);
  const Status st = client->Get(42).status();
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();  // The app-level answer.
  EXPECT_EQ(client->stats().reconnects, 1u);
  EXPECT_GE(client->stats().retries, 1u);
  script.join();
}

TEST(RetryTest, AmbiguousWriteIsNotResentWithoutOptIn) {
  ScriptServer server;
  const std::string put_payload = EncodePutRequest(1, "v");
  const std::string request =
      EncodeFrame(static_cast<uint8_t>(Opcode::kPut), put_payload);
  std::thread script([&] {
    server.Accept();
    server.ReadExact(request.size());  // The write *was delivered*...
    server.CloseConn();                // ...but the ack never came.
  });

  RetryPolicy rp;
  rp.max_attempts = 5;  // Retries allowed — but not for ambiguous writes.
  auto client = MustConnect(server.port, 2000, rp);
  const Status st = client->Put(1, "v");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(client->stats().retries, 0u) << "write must not be resent";
  EXPECT_EQ(client->stats().reconnects, 0u);
  script.join();
}

TEST(RetryTest, AmbiguousWriteIsResentWithOptIn) {
  ScriptServer server;
  const std::string put_payload = EncodePutRequest(1, "v");
  const std::string request =
      EncodeFrame(static_cast<uint8_t>(Opcode::kPut), put_payload);
  const std::string ok_reply =
      EncodeFrame(static_cast<uint8_t>(Opcode::kPut) | kResponseBit,
                  EncodeEmptyOkResponse());
  std::thread script([&] {
    server.Accept();
    server.ReadExact(request.size());
    server.CloseConn();
    server.Accept();  // The opted-in client resends on a fresh conn.
    server.ReadExact(request.size());
    server.Send(ok_reply);
  });

  RetryPolicy rp;
  rp.max_attempts = 5;
  rp.retry_writes = true;
  auto client = MustConnect(server.port, 2000, rp);
  EXPECT_TRUE(client->Put(1, "v").ok());
  EXPECT_EQ(client->stats().reconnects, 1u);
  script.join();
}

TEST(RetryTest, OverloadedReplyIsRetriedOnTheSameConnection) {
  ScriptServer server;
  const std::string request =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet), EncodeGetRequest(9));
  const std::string shed_reply =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet) | kResponseBit,
                  EncodeOverloadedResponse(/*retry_after_ms=*/3));
  const std::string real_reply =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet) | kResponseBit,
                  EncodeErrorResponse(Status::NotFound("nope")));
  std::thread script([&] {
    server.Accept();
    server.ReadExact(request.size());
    server.Send(shed_reply);           // "Come back later."
    server.ReadExact(request.size());  // Same connection, retried frame.
    server.Send(real_reply);
  });

  RetryPolicy rp;
  rp.max_attempts = 3;
  auto client = MustConnect(server.port, 2000, rp);
  const Status st = client->Get(9).status();
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  EXPECT_EQ(client->stats().overloaded_replies, 1u);
  EXPECT_EQ(client->stats().retries, 1u);
  EXPECT_EQ(client->stats().reconnects, 0u) << "shed is not a torn conn";
  script.join();
}

TEST(RetryTest, ExhaustedAttemptsSurfaceTheLastError) {
  ScriptServer server;
  const std::string request =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet), EncodeGetRequest(1));
  std::thread script([&] {
    for (int i = 0; i < 3; ++i) {
      server.Accept();
      server.ReadExact(request.size());
      server.CloseConn();
    }
  });
  RetryPolicy rp;
  rp.max_attempts = 3;
  auto client = MustConnect(server.port, 2000, rp);
  const Status st = client->Get(1).status();
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(client->stats().retries, 2u);  // Attempts 2 and 3.
  script.join();
}

// ---------------------------------------------------------------------------
// End-to-end: a faulty client against the real server.
// ---------------------------------------------------------------------------

TEST(ChaosEndToEndTest, FaultyClientConvergesAgainstRealServer) {
  const std::string dir = ::testing::TempDir() + "/net_chaos_e2e_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.checkpoint_wal_bytes = 0;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(db_or).value();
  auto server_or = Server::Start(ServerOptions(), db.get());
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).value();

  SocketFaultConfig fcfg;
  fcfg.eintr_every = 7;
  fcfg.eagain_every = 11;
  fcfg.short_every = 5;
  fcfg.truncate_every = 23;
  fcfg.reset_every = 31;
  SocketFaultInjector injector(nullptr, fcfg);

  ClientOptions copts;
  copts.port = server->port();
  copts.io_timeout_ms = 1000;
  copts.fault_injector = &injector;
  copts.retry.max_attempts = 10;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 8;
  copts.retry.retry_writes = true;  // Blind stamped puts: idempotent.
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();

  const std::string value(db->options().payload_size, 'z');
  for (Key k = 1; k <= 100; ++k) {
    ASSERT_TRUE(client->Put(k, value).ok()) << "put " << k;
  }
  for (Key k = 1; k <= 100; ++k) {
    auto got = client->Get(k);
    ASSERT_TRUE(got.ok()) << "get " << k << ": " << got.status().ToString();
    EXPECT_EQ(*got, value) << k;
  }
  // The schedule above guarantees faults actually happened — and the
  // client absorbed every one of them.
  EXPECT_GT(injector.counters().resets, 0u);
  EXPECT_GT(injector.counters().truncations, 0u);
  EXPECT_GT(client->stats().reconnects, 0u);
  EXPECT_GT(client->stats().retries, 0u);

  server->Stop();
  db->Close();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsmssd::net
