// Frame-codec and error-mapping tests for the v1 wire protocol.
//
// The fuzz structure mirrors the WAL torn-tail tests: a codec that feeds
// a byte stream into a stateful parser must treat *every* truncation as
// "need more bytes" and *every* single-byte corruption as either
// malformed or an honest different frame — never as the original frame
// with silently different content, and never as a crash.

#include "src/net/wire.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/crc32c.h"
#include "src/util/status.h"

namespace lsmssd::net {
namespace {

Frame MustDecode(std::string_view buf) {
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(buf, kDefaultMaxPayloadBytes, &frame, &consumed,
                        &error),
            FrameDecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, buf.size());
  return frame;
}

TEST(WireFrameTest, RoundTripEmptyAndPayload) {
  for (const std::string& payload :
       {std::string(), std::string("x"), std::string(1000, 'p')}) {
    const std::string encoded =
        EncodeFrame(static_cast<uint8_t>(Opcode::kPut), payload);
    ASSERT_EQ(encoded.size(), kFrameHeaderBytes + payload.size());
    const Frame frame = MustDecode(encoded);
    EXPECT_EQ(frame.version, kWireVersion);
    EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kPut));
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(WireFrameTest, HeaderLayoutIsFrozen) {
  // Byte positions are the compatibility contract (see wire.h): magic at
  // 0, version at 4, opcode at 5, reserved at 6, length at 8 (LE).
  const std::string f =
      EncodeFrame(static_cast<uint8_t>(Opcode::kScan), "abc");
  EXPECT_EQ(f.substr(0, 4), "LSMS");
  EXPECT_EQ(static_cast<uint8_t>(f[4]), kWireVersion);
  EXPECT_EQ(static_cast<uint8_t>(f[5]), static_cast<uint8_t>(Opcode::kScan));
  EXPECT_EQ(f[6], '\0');
  EXPECT_EQ(f[7], '\0');
  EXPECT_EQ(static_cast<uint8_t>(f[8]), 3);  // length LE
  EXPECT_EQ(f[9], '\0');
  EXPECT_EQ(f[10], '\0');
  EXPECT_EQ(f[11], '\0');
}

// Every truncation offset must yield kNeedMore — a prefix is never a
// frame and never malformed (the bytes still to come may complete it).
TEST(WireFrameTest, EveryTruncationOffsetNeedsMore) {
  const std::string payload(97, 'q');
  const std::string encoded =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet), payload);
  for (size_t len = 0; len < encoded.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    Frame frame;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(std::string_view(encoded.data(), len),
                          kDefaultMaxPayloadBytes, &frame, &consumed, &error),
              FrameDecodeResult::kNeedMore);
  }
}

// Every single-byte flip (all 8 bit positions) must decode as malformed
// or — if it happens to still parse — as a frame whose content differs
// honestly. It must never reproduce the original frame.
TEST(WireFrameTest, EveryByteFlipIsDetected) {
  const std::string payload = "the quick brown fox";
  const std::string encoded =
      EncodeFrame(static_cast<uint8_t>(Opcode::kPut), payload);
  const Frame original = MustDecode(encoded);
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE("byte " + std::to_string(i) + " bit " +
                   std::to_string(bit));
      std::string corrupt = encoded;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      Frame frame;
      size_t consumed = 0;
      std::string error;
      const FrameDecodeResult result =
          DecodeFrame(corrupt, kDefaultMaxPayloadBytes, &frame, &consumed,
                      &error);
      if (result == FrameDecodeResult::kFrame) {
        // CRC collisions with a 1-bit flip are impossible (crc32c detects
        // all single-bit errors), so a surviving decode means the flip
        // hit... nothing observable — which would be a codec hole.
        EXPECT_TRUE(frame.version != original.version ||
                    frame.opcode != original.opcode ||
                    frame.payload != original.payload)
            << "flip decoded as the original frame";
        ADD_FAILURE() << "1-bit flip passed CRC";
      } else if (result == FrameDecodeResult::kNeedMore) {
        // Only a length-field flip can legally ask for more bytes: the
        // frame claims to extend past the corrupted buffer.
        EXPECT_TRUE(i >= 8 && i < 12)
            << "non-length flip at byte " << i << " yielded kNeedMore";
      } else {
        EXPECT_EQ(result, FrameDecodeResult::kMalformed);
        EXPECT_FALSE(error.empty());
      }
    }
  }
}

TEST(WireFrameTest, OversizedLengthIsMalformedNotAllocation) {
  std::string header = EncodeFrame(static_cast<uint8_t>(Opcode::kGet), "");
  // Rewrite length to 16 MB (over the 1 KB cap passed below). The CRC is
  // now wrong too, but length is checked first — the decoder must refuse
  // before ever waiting for (or allocating) 16 MB.
  header[8] = 0;
  header[9] = 0;
  header[10] = 0;
  header[11] = 1;
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(header, 1024, &frame, &consumed, &error),
            FrameDecodeResult::kMalformed);
  EXPECT_NE(error.find("payload length"), std::string::npos) << error;
}

/// Builds a frame the way a `version` sender would: frozen header
/// layout, CRC over bytes [4,12) plus the payload.
std::string HandEncodeFrame(uint8_t version, uint8_t opcode,
                            std::string_view payload) {
  std::string f(kWireMagic, 4);
  f.push_back(static_cast<char>(version));
  f.push_back(static_cast<char>(opcode));
  AppendU16(&f, 0);  // reserved
  AppendU32(&f, static_cast<uint32_t>(payload.size()));
  uint32_t crc =
      crc32c::Value(reinterpret_cast<const uint8_t*>(f.data()) + 4, 8);
  crc = crc32c::Extend(crc, reinterpret_cast<const uint8_t*>(payload.data()),
                       payload.size());
  AppendU32(&f, crc);
  f.append(payload);
  return f;
}

TEST(WireFrameTest, HandEncodedFrameMatchesEncoder) {
  // Locks the CRC definition: a frame built from the documented layout
  // alone must be byte-identical to EncodeFrame's output.
  EXPECT_EQ(HandEncodeFrame(kWireVersion,
                            static_cast<uint8_t>(Opcode::kPut), "hello"),
            EncodeFrame(static_cast<uint8_t>(Opcode::kPut), "hello"));
}

TEST(WireFrameTest, UnknownVersionStillFrames) {
  // The header layout is version-invariant, so a valid future-version
  // frame must decode as kFrame (the server then answers
  // kUnsupportedVersion) rather than desync or drop the stream.
  const std::string f =
      HandEncodeFrame(9, static_cast<uint8_t>(Opcode::kGet), "zz");
  const Frame frame = MustDecode(f);
  EXPECT_EQ(frame.version, 9);
  EXPECT_EQ(frame.payload, "zz");
}

TEST(WireFrameTest, BadMagicAndReservedAreMalformed) {
  std::string bad_magic =
      HandEncodeFrame(kWireVersion, static_cast<uint8_t>(Opcode::kGet), "");
  bad_magic[0] = 'X';
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(bad_magic, kDefaultMaxPayloadBytes, &frame,
                        &consumed, &error),
            FrameDecodeResult::kMalformed);

  // Non-zero reserved bytes are malformed even with a matching CRC — the
  // field is held at zero so a future version can assign it meaning.
  std::string f(kWireMagic, 4);
  f.push_back(static_cast<char>(kWireVersion));
  f.push_back(static_cast<char>(Opcode::kGet));
  AppendU16(&f, 7);  // reserved != 0
  AppendU32(&f, 0);
  AppendU32(&f,
            crc32c::Value(reinterpret_cast<const uint8_t*>(f.data()) + 4, 8));
  EXPECT_EQ(DecodeFrame(f, kDefaultMaxPayloadBytes, &frame, &consumed,
                        &error),
            FrameDecodeResult::kMalformed);
  EXPECT_NE(error.find("reserved"), std::string::npos) << error;
}

TEST(WireRequestCodecTest, RoundTrips) {
  Key key = 0;
  ASSERT_TRUE(DecodeGetRequest(EncodeGetRequest(42), &key));
  EXPECT_EQ(key, 42u);

  std::string_view value;
  ASSERT_TRUE(DecodePutRequest(EncodePutRequest(7, "abcd"), &key, &value));
  EXPECT_EQ(key, 7u);
  EXPECT_EQ(value, "abcd");

  ASSERT_TRUE(DecodeDeleteRequest(EncodeDeleteRequest(9), &key));
  EXPECT_EQ(key, 9u);

  Key lo = 0, hi = 0;
  uint32_t limit = 0;
  ASSERT_TRUE(DecodeScanRequest(EncodeScanRequest(3, 1000, 17), &lo, &hi,
                                &limit));
  EXPECT_EQ(lo, 3u);
  EXPECT_EQ(hi, 1000u);
  EXPECT_EQ(limit, 17u);
}

TEST(WireRequestCodecTest, TruncatedPayloadsRejected) {
  const std::string get = EncodeGetRequest(42);
  Key key;
  for (size_t len = 0; len < get.size(); ++len) {
    EXPECT_FALSE(DecodeGetRequest(get.substr(0, len), &key));
  }
  // A put's value is the raw remainder of the payload (the frame length
  // delimits it), so only truncation into the key itself is detectable
  // here; wrong value widths are rejected by the engine's payload_size
  // check instead.
  const std::string put = EncodePutRequest(7, "abcd");
  std::string_view value;
  for (size_t len = 0; len < sizeof(Key); ++len) {
    EXPECT_FALSE(DecodePutRequest(put.substr(0, len), &key, &value));
  }
  ASSERT_TRUE(DecodePutRequest(put.substr(0, sizeof(Key) + 2), &key, &value));
  EXPECT_EQ(key, 7u);
  EXPECT_EQ(value, "ab");
  const std::string scan = EncodeScanRequest(3, 1000, 17);
  Key lo, hi;
  uint32_t limit;
  for (size_t len = 0; len < scan.size(); ++len) {
    EXPECT_FALSE(DecodeScanRequest(scan.substr(0, len), &lo, &hi, &limit));
  }
}

TEST(WireResponseCodecTest, ScanRoundTrip) {
  std::vector<ScanItem> items = {{1, "aa"}, {2, ""}, {0xffffffffffull, "zz"}};
  const std::string payload = EncodeScanResponse(items);
  std::string_view body;
  ASSERT_TRUE(DecodeResponseStatus(payload, &body).ok());
  std::vector<ScanItem> decoded;
  ASSERT_TRUE(DecodeScanResponseBody(body, &decoded));
  ASSERT_EQ(decoded.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(decoded[i].key, items[i].key);
    EXPECT_EQ(decoded[i].value, items[i].value);
  }
}

TEST(WireResponseCodecTest, ScanBodyTruncationsRejected) {
  std::vector<ScanItem> items = {{1, "aa"}, {2, "bbb"}};
  const std::string payload = EncodeScanResponse(items);
  std::string_view body;
  ASSERT_TRUE(DecodeResponseStatus(payload, &body).ok());
  std::vector<ScanItem> decoded;
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(
        DecodeScanResponseBody(body.substr(0, len), &decoded))
        << "truncated scan body of length " << len << " decoded";
  }
}

// The satellite requirement: ONE mapping table, exercised as a property
// over every StatusCode — encode to the wire and back must preserve the
// code and the message. In particular ResourceExhausted (backpressure)
// and Corruption (integrity) must stay distinguishable end to end.
TEST(WireErrorMappingTest, RoundTripsEveryStatusCode) {
  for (int c = 1; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    const Status original(code, "msg for " +
                                    std::string(StatusCodeToString(code)));
    const WireError wire = WireErrorFromStatus(original);
    const Status decoded = StatusFromWire(wire, original.message());
    EXPECT_EQ(decoded.code(), original.code())
        << StatusCodeToString(code) << " did not survive the wire";
    EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(WireErrorMappingTest, CodesAreDistinctOnTheWire) {
  // Injective: no two StatusCodes may share a wire value, or the client
  // could confuse backpressure with corruption.
  std::vector<WireError> seen;
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    const Status st(static_cast<StatusCode>(c), c == 0 ? "" : "m");
    const WireError wire = WireErrorFromStatus(st);
    for (WireError prior : seen) EXPECT_NE(wire, prior);
    seen.push_back(wire);
  }
}

TEST(WireErrorMappingTest, ErrorResponsePayloadRoundTrips) {
  const Status backpressure =
      Status::ResourceExhausted("device blocks exhausted");
  const std::string payload = EncodeErrorResponse(backpressure);
  std::string_view body;
  const Status decoded = DecodeResponseStatus(payload, &body);
  EXPECT_TRUE(decoded.IsResourceExhausted());
  EXPECT_EQ(decoded.message(), backpressure.message());

  const Status corruption = Status::Corruption("block 17 checksum");
  const Status decoded2 =
      DecodeResponseStatus(EncodeErrorResponse(corruption), &body);
  EXPECT_TRUE(decoded2.IsCorruption());
  EXPECT_EQ(decoded2.message(), corruption.message());
}

TEST(WireErrorMappingTest, ProtocolCodesDecodeWithContext) {
  std::string_view body;
  const Status unsupported = DecodeResponseStatus(
      EncodeProtocolErrorResponse(WireError::kUnsupportedVersion, "v9"),
      &body);
  EXPECT_FALSE(unsupported.ok());
  EXPECT_NE(unsupported.message().find("v9"), std::string::npos);

  const Status malformed = DecodeResponseStatus(
      EncodeProtocolErrorResponse(WireError::kMalformedRequest, "bad put"),
      &body);
  EXPECT_FALSE(malformed.ok());
  EXPECT_NE(malformed.message().find("bad put"), std::string::npos);
}

TEST(WireErrorMappingTest, UnknownWireCodeIsInternal) {
  const Status st = StatusFromWire(static_cast<WireError>(250), "");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("250"), std::string::npos);
}

TEST(WirePrimitivesTest, ReadersRejectShortBuffers) {
  std::string buf;
  AppendU16(&buf, 0x1234);
  AppendU32(&buf, 0xdeadbeef);
  AppendU64(&buf, 0x0102030405060708ull);
  AppendWireKey(&buf, 0x1122334455667788ull);
  size_t pos = 0;
  uint16_t v16;
  uint32_t v32;
  uint64_t v64;
  Key key;
  ASSERT_TRUE(ReadU16(buf, &pos, &v16));
  EXPECT_EQ(v16, 0x1234);
  ASSERT_TRUE(ReadU32(buf, &pos, &v32));
  EXPECT_EQ(v32, 0xdeadbeefu);
  ASSERT_TRUE(ReadU64(buf, &pos, &v64));
  EXPECT_EQ(v64, 0x0102030405060708ull);
  ASSERT_TRUE(ReadWireKey(buf, &pos, &key));
  EXPECT_EQ(key, 0x1122334455667788ull);
  EXPECT_EQ(pos, buf.size());
  // Any further read fails and leaves pos in place.
  EXPECT_FALSE(ReadU16(buf, &pos, &v16));
  EXPECT_EQ(pos, buf.size());

  // Keys are big-endian on the wire: byte order == key order.
  std::string a, b;
  AppendWireKey(&a, 1);
  AppendWireKey(&b, 256);
  EXPECT_LT(a, b);
}

TEST(WireProtocolTest, PingOpcodeIsStable) {
  // Additive protocol evolution: kPing landed as 6 and must never move.
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kPing), 6);
}

TEST(WireErrorMappingTest, ProtocolRejectionsDecodeToUnavailable) {
  const Status overloaded = StatusFromWire(WireError::kOverloaded, "busy");
  EXPECT_TRUE(overloaded.IsUnavailable()) << overloaded.ToString();
  EXPECT_EQ(overloaded.message(), "server overloaded: busy");

  const Status draining = StatusFromWire(WireError::kShuttingDown, "bye");
  EXPECT_TRUE(draining.IsUnavailable()) << draining.ToString();
  EXPECT_EQ(draining.message(), "server shutting down: bye");
}

TEST(WireErrorMappingTest, ClientLocalCodesFallBackToInternal) {
  // kTimedOut and kUnavailable describe the *transport as seen by one
  // client* — they have no wire encoding. If one is ever (wrongly) fed
  // to the encoder it degrades to kInternal rather than minting a new
  // wire value.
  EXPECT_EQ(WireErrorFromStatus(Status::Unavailable("x")),
            WireError::kInternal);
  EXPECT_EQ(WireErrorFromStatus(Status::TimedOut("x")), WireError::kInternal);
}

TEST(WireErrorMappingTest, RetryAfterHintParses) {
  uint32_t ms = 0;
  EXPECT_TRUE(ParseRetryAfterMs("retry_after_ms=25", &ms));
  EXPECT_EQ(ms, 25u);
  EXPECT_TRUE(
      ParseRetryAfterMs("server overloaded: retry_after_ms=0", &ms));
  EXPECT_EQ(ms, 0u);

  EXPECT_FALSE(ParseRetryAfterMs("no hint here", &ms));
  EXPECT_FALSE(ParseRetryAfterMs("retry_after_ms=", &ms));
  EXPECT_FALSE(ParseRetryAfterMs("retry_after_ms=soon", &ms));
  EXPECT_FALSE(ParseRetryAfterMs("retry_after_ms=99999999999", &ms))
      << "out-of-range hint must not wrap";
}

TEST(WireErrorMappingTest, OverloadedResponseRoundTripsWithHint) {
  const std::string payload = EncodeOverloadedResponse(42);
  std::string_view body;
  const Status decoded = DecodeResponseStatus(payload, &body);
  EXPECT_TRUE(decoded.IsUnavailable()) << decoded.ToString();
  uint32_t ms = 0;
  ASSERT_TRUE(ParseRetryAfterMs(decoded.message(), &ms)) << decoded.message();
  EXPECT_EQ(ms, 42u);
}

}  // namespace
}  // namespace lsmssd::net
