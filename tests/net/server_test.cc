// End-to-end tests of the epoll server + blocking client over a real
// loopback socket, including the abuse cases the protocol contract
// promises to survive: pipelined bursts, malformed frames (connection
// dropped, Db unharmed), CRC-valid-but-undecodable payloads (error
// reply, connection kept), future-version frames (kUnsupportedVersion
// reply, then close), and ResourceExhausted backpressure crossing the
// wire intact.

#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/db/db.h"
#include "src/net/client.h"
#include "src/util/crc32c.h"
#include "tests/test_util.h"

namespace lsmssd::net {
namespace {

using lsmssd::testing::TinyOptions;

std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/net_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

DbOptions TinyDbOptions() {
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.checkpoint_wal_bytes = 0;
  return dbopts;
}

struct ServerFixture {
  explicit ServerFixture(const char* tag,
                         DbOptions dbopts = TinyDbOptions(),
                         ServerOptions sopts = ServerOptions()) {
    dir = FreshDir(tag);
    auto db_or = Db::Open(dbopts, dir);
    LSMSSD_CHECK(db_or.ok()) << db_or.status().ToString();
    db = std::move(db_or).value();
    auto server_or = Server::Start(sopts, db.get());
    LSMSSD_CHECK(server_or.ok()) << server_or.status().ToString();
    server = std::move(server_or).value();
  }
  ~ServerFixture() {
    server->Stop();
    db->Close();
    std::filesystem::remove_all(dir);
  }

  std::unique_ptr<Client> Connect() {
    ClientOptions copts;
    copts.port = server->port();
    auto client_or = Client::Connect(copts);
    LSMSSD_CHECK(client_or.ok()) << client_or.status().ToString();
    return std::move(client_or).value();
  }

  std::string dir;
  std::unique_ptr<Db> db;
  std::unique_ptr<Server> server;
};

/// Raw loopback socket for bytes the Client refuses to send.
struct RawConn {
  explicit RawConn(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    LSMSSD_CHECK(fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    LSMSSD_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    LSMSSD_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      LSMSSD_CHECK(n > 0);
      off += static_cast<size_t>(n);
    }
  }

  /// Reads until EOF or `max` bytes; returns what arrived.
  std::string ReadUntilEof(size_t max = 1 << 20) {
    std::string got;
    char buf[4096];
    while (got.size() < max) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      got.append(buf, static_cast<size_t>(n));
    }
    return got;
  }

  int fd = -1;
};

std::string HandEncodeFrame(uint8_t version, uint8_t opcode,
                            std::string_view payload) {
  std::string f(kWireMagic, 4);
  f.push_back(static_cast<char>(version));
  f.push_back(static_cast<char>(opcode));
  AppendU16(&f, 0);
  AppendU32(&f, static_cast<uint32_t>(payload.size()));
  uint32_t crc =
      crc32c::Value(reinterpret_cast<const uint8_t*>(f.data()) + 4, 8);
  crc = crc32c::Extend(crc, reinterpret_cast<const uint8_t*>(payload.data()),
                       payload.size());
  AppendU32(&f, crc);
  f.append(payload);
  return f;
}

std::string Payload(const Options& options, Key key) {
  return MakePayload(options, key);
}

TEST(ServerTest, PutGetDeleteScanStatsEndToEnd) {
  ServerFixture fx("e2e");
  auto client = fx.Connect();
  const Options& options = fx.db->options();

  for (Key k = 1; k <= 30; ++k) {
    ASSERT_TRUE(client->Put(k, Payload(options, k)).ok()) << k;
  }
  auto got = client->Get(17);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, Payload(options, 17));

  ASSERT_TRUE(client->Delete(17).ok());
  EXPECT_TRUE(client->Get(17).status().IsNotFound());

  std::vector<ScanItem> items;
  ASSERT_TRUE(client->Scan(10, 20, 0, &items).ok());
  ASSERT_EQ(items.size(), 10u);  // 10..20 minus deleted 17.
  Key prev = 0;
  for (const ScanItem& item : items) {
    EXPECT_GT(item.key, prev);  // Key order.
    EXPECT_NE(item.key, 17u);
    EXPECT_EQ(item.value, Payload(options, item.key));
    prev = item.key;
  }

  // Limit honored.
  items.clear();
  ASSERT_TRUE(client->Scan(1, 30, 5, &items).ok());
  EXPECT_EQ(items.size(), 5u);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->payload_size, options.payload_size);
  EXPECT_EQ(stats->shards, 1u);
  EXPECT_EQ(stats->quarantined_blocks, 0u);
  EXPECT_GT(stats->frames_processed, 30u);
  EXPECT_FALSE(stats->text.empty());
}

TEST(ServerTest, WrongPayloadWidthIsInvalidArgument) {
  ServerFixture fx("width");
  auto client = fx.Connect();
  const Status st = client->Put(1, "short");
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  // The connection survives an application-level error.
  EXPECT_TRUE(client->Put(1, Payload(fx.db->options(), 1)).ok());
}

TEST(ServerTest, PipelinedRequestsAnswerInOrder) {
  ServerFixture fx("pipeline");
  auto client = fx.Connect();
  const Options& options = fx.db->options();
  constexpr Key kCount = 64;
  for (Key k = 1; k <= kCount; ++k) {
    ASSERT_TRUE(client->Put(k, Payload(options, k)).ok());
  }

  // Fire every GET before reading any response; replies must come back
  // in request order, each carrying its own key's payload.
  for (Key k = 1; k <= kCount; ++k) {
    ASSERT_TRUE(
        client
            ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                      EncodeGetRequest(k))
            .ok());
  }
  for (Key k = 1; k <= kCount; ++k) {
    Frame frame;
    ASSERT_TRUE(client->ReceiveResponse(&frame).ok());
    EXPECT_EQ(frame.opcode,
              static_cast<uint8_t>(Opcode::kGet) | kResponseBit);
    std::string_view body;
    ASSERT_TRUE(DecodeResponseStatus(frame.payload, &body).ok());
    EXPECT_EQ(body, Payload(options, k)) << "response out of order at " << k;
  }
}

TEST(ServerTest, MalformedFrameDropsConnectionWithoutPoisoningDb) {
  ServerFixture fx("malformed");
  {
    auto client = fx.Connect();
    ASSERT_TRUE(client->Put(1, Payload(fx.db->options(), 1)).ok());
  }

  {
    // Garbage that can never be a frame header: dropped with no reply.
    RawConn raw(fx.server->port());
    raw.Send("GET / HTTP/1.1\r\nHost: nope\r\n\r\n");
    EXPECT_EQ(raw.ReadUntilEof(), "");
  }
  {
    // A real frame whose CRC is wrong: same treatment (the stream cannot
    // be trusted past a bad CRC).
    std::string f = EncodeFrame(static_cast<uint8_t>(Opcode::kGet),
                                EncodeGetRequest(1));
    f[f.size() - 1] = static_cast<char>(f[f.size() - 1] ^ 0x01);
    RawConn raw(fx.server->port());
    raw.Send(f);
    EXPECT_EQ(raw.ReadUntilEof(), "");
  }

  EXPECT_EQ(fx.server->counters().connections_dropped_malformed, 2u);

  // The Db is unharmed: a fresh client reads the old write and makes new
  // ones.
  auto client = fx.Connect();
  auto got = client->Get(1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(client->Put(2, Payload(fx.db->options(), 2)).ok());
  EXPECT_TRUE(fx.db->tree()->CheckInvariants(true).ok());
}

TEST(ServerTest, UndecodablePayloadGetsErrorReplyAndConnectionSurvives) {
  ServerFixture fx("badpayload");
  auto client = fx.Connect();
  // CRC-valid frame, known opcode, truncated payload: the server can
  // trust the stream, so it answers kMalformedRequest instead of
  // dropping.
  ASSERT_TRUE(
      client->SendRaw(static_cast<uint8_t>(Opcode::kGet), "abc").ok());
  Frame frame;
  ASSERT_TRUE(client->ReceiveResponse(&frame).ok());
  std::string_view body;
  const Status st = DecodeResponseStatus(frame.payload, &body);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("malformed"), std::string::npos)
      << st.ToString();

  // Same connection keeps working.
  EXPECT_TRUE(client->Put(5, Payload(fx.db->options(), 5)).ok());
  EXPECT_EQ(fx.server->counters().connections_dropped_malformed, 0u);
}

TEST(ServerTest, UnknownOpcodeGetsUnimplemented) {
  ServerFixture fx("badop");
  auto client = fx.Connect();
  ASSERT_TRUE(client->SendRaw(42, "").ok());
  Frame frame;
  ASSERT_TRUE(client->ReceiveResponse(&frame).ok());
  std::string_view body;
  const Status st = DecodeResponseStatus(frame.payload, &body);
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented) << st.ToString();
}

TEST(ServerTest, UnsupportedVersionGetsReplyThenClose) {
  ServerFixture fx("version");
  RawConn raw(fx.server->port());
  raw.Send(HandEncodeFrame(9, static_cast<uint8_t>(Opcode::kGet),
                           EncodeGetRequest(1)));
  const std::string reply = raw.ReadUntilEof();
  // Exactly one response frame came back before the close.
  Frame frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(reply, kDefaultMaxPayloadBytes, &frame, &consumed,
                        &error),
            FrameDecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, reply.size());
  std::string_view body;
  const Status st = DecodeResponseStatus(frame.payload, &body);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("version"), std::string::npos) << st.ToString();
  EXPECT_EQ(fx.server->counters().unsupported_version_frames, 1u);
  EXPECT_EQ(fx.server->counters().connections_dropped_malformed, 0u);
}

TEST(ServerTest, BackpressureCodeTravelsTheWire) {
  // A 6-block device bound makes the first L0 flush abort: the paired
  // satellite requirement is that the client sees *ResourceExhausted* —
  // not Corruption, not a dropped connection — exactly as an embedded
  // caller would.
  DbOptions dbopts = TinyDbOptions();
  dbopts.max_device_blocks = 6;
  ServerFixture fx("backpressure", dbopts);
  auto client = fx.Connect();
  const Options& options = fx.db->options();

  Status first_error = Status::OK();
  for (Key k = 1; k <= 500 && first_error.ok(); ++k) {
    first_error = client->Put(k, Payload(options, k));
  }
  ASSERT_FALSE(first_error.ok()) << "device bound never hit";
  EXPECT_TRUE(first_error.IsResourceExhausted()) << first_error.ToString();

  // Backpressure is not poison: reads still work on the same connection.
  auto got = client->Get(1);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GT(fx.db->Stats().write_backpressure_events, 0u);
}

TEST(ServerTest, ScanRespectsServerCap) {
  ServerOptions sopts;
  sopts.max_scan_results = 7;
  ServerFixture fx("scancap", TinyDbOptions(), sopts);
  auto client = fx.Connect();
  const Options& options = fx.db->options();
  for (Key k = 1; k <= 30; ++k) {
    ASSERT_TRUE(client->Put(k, Payload(options, k)).ok());
  }
  std::vector<ScanItem> items;
  ASSERT_TRUE(client->Scan(1, 30, 0, &items).ok());
  EXPECT_EQ(items.size(), 7u);  // Unlimited request truncates to the cap.
  items.clear();
  ASSERT_TRUE(client->Scan(1, 30, 100, &items).ok());
  EXPECT_EQ(items.size(), 7u);  // Request above the cap truncates too.
}

TEST(ServerTest, ConcurrentClientsShareOneGroupCommit) {
  DbOptions dbopts = TinyDbOptions();
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;
  dbopts.wal_sync_every_n = 8;
  ServerFixture fx("groupcommit", dbopts);
  const Options& options = fx.db->options();

  constexpr int kThreads = 4;
  constexpr Key kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = fx.server->port();
      auto client_or = Client::Connect(copts);
      ASSERT_TRUE(client_or.ok());
      auto& client = *client_or;
      for (Key i = 0; i < kPerThread; ++i) {
        const Key key = static_cast<Key>(t) * 10000 + i + 1;
        ASSERT_TRUE(client->Put(key, Payload(options, key)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // All writes landed; group commit means far fewer syncs than entries.
  const DbStats stats = fx.db->Stats();
  EXPECT_EQ(stats.wal_entries_appended, kThreads * kPerThread);
  EXPECT_LT(stats.wal_syncs, stats.wal_entries_appended);
  auto client = fx.Connect();
  for (int t = 0; t < kThreads; ++t) {
    const Key probe = static_cast<Key>(t) * 10000 + 1;
    EXPECT_TRUE(client->Get(probe).ok()) << "thread " << t;
  }
}

/// A listening loopback socket that accepts but replies only when told —
/// impersonating a stalled server for client-timeout tests.
struct StalledServer {
  StalledServer() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    LSMSSD_CHECK(listen_fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // Ephemeral.
    LSMSSD_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    LSMSSD_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    LSMSSD_CHECK(::listen(listen_fd, 1) == 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    LSMSSD_CHECK(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                               &len) == 0);
    port = ntohs(bound.sin_port);
  }
  ~StalledServer() {
    if (conn_fd >= 0) ::close(conn_fd);
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void Accept() {
    conn_fd = ::accept(listen_fd, nullptr, nullptr);
    LSMSSD_CHECK(conn_fd >= 0);
  }
  void Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(conn_fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      LSMSSD_CHECK(n > 0);
      off += static_cast<size_t>(n);
    }
  }

  int listen_fd = -1;
  int conn_fd = -1;
  uint16_t port = 0;
};

TEST(ServerTest, ReceiveTimeoutIsNonFatalAndResumable) {
  StalledServer stalled;
  ClientOptions copts;
  copts.port = stalled.port;
  copts.io_timeout_ms = 200;
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();
  stalled.Accept();

  // The request goes out, but no reply comes: ReceiveResponse must return
  // TimedOut instead of blocking forever — and must NOT latch the
  // connection dead.
  ASSERT_TRUE(client
                  ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                            EncodeGetRequest(42))
                  .ok());
  Frame frame;
  Status st = client->ReceiveResponse(&frame);
  ASSERT_TRUE(st.IsTimedOut()) << st.ToString();

  // Feed half a response frame; the next receive still times out (the
  // partial frame stays buffered, the stream stays aligned).
  const std::string reply =
      EncodeFrame(static_cast<uint8_t>(Opcode::kGet) | kResponseBit,
                  EncodeErrorResponse(Status::NotFound("nope")));
  stalled.Send(std::string_view(reply).substr(0, reply.size() / 2));
  st = client->ReceiveResponse(&frame);
  ASSERT_TRUE(st.IsTimedOut()) << st.ToString();

  // The server wakes up and completes the frame: the owed response now
  // arrives intact on the same connection.
  stalled.Send(std::string_view(reply).substr(reply.size() / 2));
  st = client->ReceiveResponse(&frame);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kGet) | kResponseBit);
  std::string_view body;
  EXPECT_TRUE(DecodeResponseStatus(frame.payload, &body).IsNotFound());
}

TEST(ServerTest, PingIsACheapHealthCheck) {
  ServerFixture fx("ping");
  auto client = fx.Connect();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Ping().ok());

  // PING carries no payload by contract; a stuffed one is malformed —
  // answered as an error, connection kept (the stream is still trusted).
  ASSERT_TRUE(
      client->SendRaw(static_cast<uint8_t>(Opcode::kPing), "x").ok());
  Frame frame;
  ASSERT_TRUE(client->ReceiveResponse(&frame).ok());
  std::string_view body;
  const Status st = DecodeResponseStatus(frame.payload, &body);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("malformed"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(client->Ping().ok()) << "connection must survive";
}

/// Blocks the (single) worker inside the first executed request until
/// Release(); later requests pass straight through.
struct WorkerGate {
  std::function<void()> Hook() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu);
      if (blocked_once) return;
      blocked_once = true;
      entered = true;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }

  std::mutex mu;
  std::condition_variable cv;
  bool blocked_once = false;
  bool entered = false;
  bool released = false;
};

TEST(ServerTest, OverloadShedsInOrderInsteadOfQueueingUnbounded) {
  WorkerGate gate;
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.max_pending_frames = 2;
  sopts.overload_retry_after_ms = 7;
  sopts.worker_hook_for_testing = gate.Hook();
  ServerFixture fx("overload", TinyDbOptions(), sopts);
  auto client = fx.Connect();

  // Frame #1 is swapped into the worker's batch (leaving the pending
  // count at zero) and then parks inside the gate.
  ASSERT_TRUE(client
                  ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                            EncodeGetRequest(1))
                  .ok());
  gate.AwaitEntered();

  // With the worker wedged, frames #2 and #3 fill the pool-wide cap;
  // #4 and #5 must be shed at admission, not queued.
  for (Key k = 2; k <= 5; ++k) {
    ASSERT_TRUE(client
                    ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                              EncodeGetRequest(k))
                    .ok());
  }
  gate.Release();

  // Replies still arrive strictly in request order: three real answers
  // (NotFound on an empty store), then two kOverloaded rejections that
  // carry the configured retry-after hint.
  for (Key k = 1; k <= 5; ++k) {
    Frame frame;
    ASSERT_TRUE(client->ReceiveResponse(&frame).ok()) << k;
    std::string_view body;
    const Status st = DecodeResponseStatus(frame.payload, &body);
    if (k <= 3) {
      EXPECT_TRUE(st.IsNotFound()) << k << ": " << st.ToString();
    } else {
      EXPECT_TRUE(st.IsUnavailable()) << k << ": " << st.ToString();
      EXPECT_NE(st.message().find("overloaded"), std::string::npos);
      uint32_t hint = 0;
      ASSERT_TRUE(ParseRetryAfterMs(st.message(), &hint)) << st.ToString();
      EXPECT_EQ(hint, 7u);
    }
  }
  EXPECT_EQ(fx.server->counters().frames_shed_overload, 2u);
  EXPECT_EQ(fx.server->counters().frames_processed, 3u);

  // The shed counters travel the wire in the stats dump.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->frames_shed_overload, 2u);
  EXPECT_EQ(stats->frames_rejected_shutdown, 0u);
  EXPECT_EQ(stats->connections_dropped_slow, 0u);
}

TEST(ServerTest, HealthProbesAdmittedWhileOverloadShedsWrites) {
  WorkerGate gate;
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.max_pending_frames = 2;
  sopts.overload_retry_after_ms = 7;
  sopts.worker_hook_for_testing = gate.Hook();
  ServerFixture fx("overload_ping", TinyDbOptions(), sopts);
  const Options& options = fx.db->options();
  auto client = fx.Connect();

  // Frame #1 parks inside the worker; #2 and #3 fill the pool-wide cap.
  for (Key k = 1; k <= 3; ++k) {
    ASSERT_TRUE(client
                    ->SendRaw(static_cast<uint8_t>(Opcode::kPut),
                              EncodePutRequest(k, Payload(options, k)))
                    .ok());
    if (k == 1) gate.AwaitEntered();
  }
  // At the cap: a PUT is shed, but PING and STATS must still be
  // admitted — an operator diagnosing the overload needs them.
  ASSERT_TRUE(client
                  ->SendRaw(static_cast<uint8_t>(Opcode::kPut),
                            EncodePutRequest(4, Payload(options, 4)))
                  .ok());
  ASSERT_TRUE(client->SendRaw(static_cast<uint8_t>(Opcode::kPing), "").ok());
  ASSERT_TRUE(client->SendRaw(static_cast<uint8_t>(Opcode::kStats), "").ok());
  gate.Release();

  // In order: three real PUT acks, the shed PUT, then the two probes —
  // both answered for real, not rejected.
  for (int i = 1; i <= 6; ++i) {
    Frame frame;
    ASSERT_TRUE(client->ReceiveResponse(&frame).ok()) << "frame " << i;
    std::string_view body;
    const Status st = DecodeResponseStatus(frame.payload, &body);
    if (i == 4) {
      EXPECT_TRUE(st.IsUnavailable()) << i << ": " << st.ToString();
      EXPECT_NE(st.message().find("overloaded"), std::string::npos);
    } else {
      EXPECT_TRUE(st.ok()) << i << ": " << st.ToString();
    }
  }
  EXPECT_EQ(fx.server->counters().frames_shed_overload, 1u);
}

TEST(ServerTest, DrainAnswersEveryInFlightFrameThenRejectsLateOnes) {
  WorkerGate gate;
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.worker_hook_for_testing = gate.Hook();
  ServerFixture fx("drain", TinyDbOptions(), sopts);
  const Options& options = fx.db->options();

  // Four connections each pipeline a burst of PUTs, none of which can
  // complete while the gate holds the worker.
  constexpr int kConns = 4;
  constexpr Key kBurst = 8;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kConns; ++c) clients.push_back(fx.Connect());
  for (int c = 0; c < kConns; ++c) {
    for (Key i = 1; i <= kBurst; ++i) {
      const Key key = static_cast<Key>(c) * 1000 + i;
      ASSERT_TRUE(clients[c]
                      ->SendRaw(static_cast<uint8_t>(Opcode::kPut),
                                EncodePutRequest(key, Payload(options, key)))
                      .ok());
    }
  }
  gate.AwaitEntered();

  // Drain while all 32 frames are in flight.
  std::thread drainer([&] { EXPECT_TRUE(fx.server->Drain(5000)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // The listener is gone: new connections are refused...
  {
    ClientOptions copts;
    copts.port = fx.server->port();
    auto refused = Client::Connect(copts);
    EXPECT_FALSE(refused.ok());
  }
  // ...and frames arriving on live connections after drain-begin are
  // rejected, not executed.
  for (int c = 0; c < kConns; ++c) {
    ASSERT_TRUE(clients[c]
                    ->SendRaw(static_cast<uint8_t>(Opcode::kGet),
                              EncodeGetRequest(1))
                    .ok());
  }
  gate.Release();

  // Every accepted frame is answered before the connection closes: the
  // full burst succeeds, then the late frame gets kShuttingDown.
  for (int c = 0; c < kConns; ++c) {
    for (Key i = 1; i <= kBurst; ++i) {
      Frame frame;
      ASSERT_TRUE(clients[c]->ReceiveResponse(&frame).ok())
          << "conn " << c << " frame " << i;
      std::string_view body;
      EXPECT_TRUE(DecodeResponseStatus(frame.payload, &body).ok())
          << "conn " << c << " frame " << i;
    }
    Frame late;
    ASSERT_TRUE(clients[c]->ReceiveResponse(&late).ok()) << c;
    std::string_view body;
    const Status st = DecodeResponseStatus(late.payload, &body);
    EXPECT_TRUE(st.IsUnavailable()) << c << ": " << st.ToString();
    EXPECT_NE(st.message().find("shutting down"), std::string::npos);
  }
  drainer.join();

  EXPECT_EQ(fx.server->counters().frames_processed, kConns * kBurst);
  EXPECT_EQ(fx.server->counters().frames_rejected_shutdown,
            static_cast<uint64_t>(kConns));

  // Nothing accepted was lost: the store holds every acked write.
  for (int c = 0; c < kConns; ++c) {
    for (Key i = 1; i <= kBurst; ++i) {
      const Key key = static_cast<Key>(c) * 1000 + i;
      auto got = fx.db->Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_EQ(*got, Payload(options, key));
    }
  }
}

TEST(ServerTest, DrainWithIdleConnectionsCompletesImmediately) {
  ServerFixture fx("drainidle");
  auto a = fx.Connect();
  auto b = fx.Connect();
  ASSERT_TRUE(a->Ping().ok());
  ASSERT_TRUE(b->Ping().ok());
  EXPECT_TRUE(fx.server->Drain(2000));
  // Idle connections were simply closed; the next call observes it.
  Frame frame;
  EXPECT_FALSE(a->ReceiveResponse(&frame).ok());
}

TEST(ServerTest, SlowClientIsEvictedByBacklogCapNotBufferedForever) {
  ServerOptions sopts;
  sopts.max_conn_backlog_bytes = 1024;
  ServerFixture fx("slowpoke", TinyDbOptions(), sopts);
  const Options& options = fx.db->options();
  constexpr Key kSeeded = 500;  // ~16 KiB per full-range scan response.
  {
    auto seeder = fx.Connect();
    for (Key k = 1; k <= kSeeded; ++k) {
      ASSERT_TRUE(seeder->Put(k, Payload(options, k)).ok());
    }
  }

  // A reader that requests large scans and never drains its socket. A
  // tiny fixed SO_RCVBUF (set before connect) pins the TCP window so
  // kernel autotuning cannot absorb the responses: they pile up in the
  // server's userspace backlog until the cap evicts the connection.
  // Sends are best-effort: the server may (correctly) reset the
  // connection mid-burst.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny)), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string scan = EncodeFrame(static_cast<uint8_t>(Opcode::kScan),
                                       EncodeScanRequest(1, kSeeded, 0));
  for (int i = 0; i < 1000; ++i) {
    const ssize_t n = ::send(fd, scan.data(), scan.size(), MSG_NOSIGNAL);
    if (n <= 0) break;  // Evicted while we were still pouring requests.
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fx.server->counters().connections_dropped_slow == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.server->counters().connections_dropped_slow, 1u);
  ::close(fd);

  // The abuse cost one connection, not the server: a polite client is
  // served as usual.
  auto client = fx.Connect();
  auto got = client->Get(1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, Payload(options, 1));
}

}  // namespace
}  // namespace lsmssd::net
