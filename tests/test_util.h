#ifndef LSMSSD_TESTS_TEST_UTIL_H_
#define LSMSSD_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "src/format/options.h"
#include "src/lsm/lsm_tree.h"
#include "src/policy/policy_factory.h"
#include "src/storage/mem_block_device.h"
#include "src/workload/driver.h"

namespace lsmssd::testing {

/// A deliberately tiny configuration so trees grow several levels within a
/// few thousand requests: 256-byte blocks, 20-byte payloads -> B = 10
/// records/block; K0 = 4 blocks (40 records); Gamma = 4.
inline Options TinyOptions() {
  Options options;
  options.block_size = 256;
  options.key_size = 4;
  options.payload_size = 20;
  options.level0_capacity_blocks = 4;
  options.gamma = 4.0;
  options.epsilon = 0.2;
  options.delta = 0.25;
  options.preserve_blocks = true;
  return options;
}

/// Device + tree bundle keeping lifetimes straight in tests.
struct TreeFixture {
  explicit TreeFixture(const Options& options, PolicyKind kind,
                       const MixedParams& mixed = MixedParams())
      : options_copy(options), device(options.block_size) {
    auto tree_or =
        LsmTree::Open(options_copy, &device, CreatePolicy(kind, mixed));
    LSMSSD_CHECK(tree_or.ok()) << tree_or.status().ToString();
    tree = std::move(tree_or).value();
  }

  Status Put(Key key) {
    return tree->Put(key, MakePayload(options_copy, key));
  }

  Options options_copy;
  MemBlockDevice device;
  std::unique_ptr<LsmTree> tree;
};

/// Writes one leaf of Put records with the given keys into `level`
/// (payloads derived from keys). Aborts on device failure.
inline void AddLeafOfKeys(const Options& options, BlockDevice* device,
                          Level* level, const std::vector<Key>& keys) {
  std::vector<Record> records;
  records.reserve(keys.size());
  for (Key k : keys) {
    records.push_back(Record::Put(k, MakePayload(options, k)));
  }
  auto id = device->WriteNewBlock(EncodeRecordBlock(options, records));
  LSMSSD_CHECK(id.ok()) << id.status().ToString();
  LeafMeta meta;
  meta.block = id.value();
  meta.min_key = keys.front();
  meta.max_key = keys.back();
  meta.count = static_cast<uint32_t>(keys.size());
  level->AppendLeaf(meta);
}

}  // namespace lsmssd::testing

#endif  // LSMSSD_TESTS_TEST_UTIL_H_
