// End-to-end block-integrity tests across the device stack: out-of-band
// checksums catch every single-bit flip, silent-corruption fault modes are
// detected rather than served, transient read errors are retried, and
// typed errors (NotFound, ResourceExhausted) come back for misuse and
// exhaustion on every device.

#include <cerrno>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/db/pinned_block_device.h"
#include "src/storage/fault_injection_block_device.h"
#include "src/storage/file_block_device.h"
#include "src/storage/lru_cache.h"
#include "src/storage/mem_block_device.h"

namespace lsmssd {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + std::to_string(::getpid());
}

// Builds every production device flavor behind one factory so the same
// property tests run against all of them.
struct DeviceFixture {
  std::unique_ptr<MemBlockDevice> mem;
  std::unique_ptr<FileBlockDevice> file;
  BlockDevice* device = nullptr;  // The device under test.
};

DeviceFixture MakeMem(size_t block_size) {
  DeviceFixture f;
  f.mem = std::make_unique<MemBlockDevice>(block_size);
  f.device = f.mem.get();
  return f;
}

DeviceFixture MakeFile(size_t block_size, const char* name) {
  DeviceFixture f;
  FileBlockDevice::FileOptions opts;
  opts.block_size = block_size;
  auto dev_or = FileBlockDevice::Open(TempPath(name), opts);
  EXPECT_TRUE(dev_or.ok()) << dev_or.status().ToString();
  f.file = std::move(dev_or.value());
  f.device = f.file.get();
  return f;
}

// ---------------------------------------------------------------------------
// Every-bit-flip property: any single flipped bit in a stored block image
// must turn every read into Corruption — never a wrong payload.

void RunEveryBitFlip(BlockDevice* dev) {
  BlockData payload(dev->block_size());
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  auto id_or = dev->WriteNewBlock(payload);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const BlockId id = id_or.value();

  BlockData image;
  ASSERT_TRUE(dev->ReadBlockUnverifiedForTesting(id, &image).ok());
  ASSERT_EQ(image.size(), dev->block_size());

  for (size_t bit = 0; bit < image.size() * 8; ++bit) {
    image[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ASSERT_TRUE(dev->CorruptBlockForTesting(id, image).ok());

    BlockData out;
    Status read = dev->ReadBlock(id, &out);
    ASSERT_TRUE(read.IsCorruption()) << "bit " << bit << ": " << read.ToString();
    ASSERT_NE(read.ToString().find(std::to_string(id)), std::string::npos)
        << "corruption error must name the block id: " << read.ToString();
    ASSERT_TRUE(dev->VerifyBlock(id).IsCorruption()) << "bit " << bit;

    // Restore the original image; the block must verify clean again.
    image[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ASSERT_TRUE(dev->CorruptBlockForTesting(id, image).ok());
    ASSERT_TRUE(dev->VerifyBlock(id).ok()) << "bit " << bit;
  }
}

TEST(BlockIntegrityTest, EveryBitFlipDetectedMemDevice) {
  auto f = MakeMem(128);
  RunEveryBitFlip(f.device);
}

TEST(BlockIntegrityTest, EveryBitFlipDetectedFileDevice) {
  auto f = MakeFile(128, "bi_flip_file");
  RunEveryBitFlip(f.device);
}

TEST(BlockIntegrityTest, BitFlipDetectedOnSharedReadPath) {
  MemBlockDevice dev(256);
  auto id = dev.WriteNewBlock(BlockData(256, 0xCD));
  ASSERT_TRUE(id.ok());
  BlockData image(256, 0xCD);
  image[100] ^= 0x10;
  ASSERT_TRUE(dev.CorruptBlockForTesting(id.value(), image).ok());
  EXPECT_TRUE(dev.ReadBlockShared(id.value()).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// FreeBlock misuse: unallocated / double-freed ids are typed errors on
// every device, and never crash.

void RunFreeMisuse(BlockDevice* dev) {
  EXPECT_FALSE(dev->FreeBlock(9999).ok()) << "free of never-allocated id";
  EXPECT_FALSE(dev->FreeBlock(kInvalidBlockId).ok());

  auto id = dev->WriteNewBlock(BlockData(8, 0x01));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(dev->FreeBlock(id.value()).ok());
  EXPECT_FALSE(dev->FreeBlock(id.value()).ok()) << "double free";
  BlockData out;
  EXPECT_TRUE(dev->ReadBlock(id.value(), &out).IsNotFound());
  EXPECT_TRUE(dev->VerifyBlock(id.value()).IsNotFound());
}

TEST(BlockIntegrityTest, FreeMisuseMemDevice) {
  auto f = MakeMem(64);
  RunFreeMisuse(f.device);
}

TEST(BlockIntegrityTest, FreeMisuseFileDevice) {
  auto f = MakeFile(64, "bi_free_file");
  RunFreeMisuse(f.device);
}

TEST(BlockIntegrityTest, FreeMisuseCachedDevice) {
  auto f = MakeMem(64);
  CachedBlockDevice cached(f.device, 4);
  RunFreeMisuse(&cached);
}

TEST(BlockIntegrityTest, FreeMisusePinnedDevice) {
  auto f = MakeMem(64);
  PinnedBlockDevice pinned(f.device, {});
  RunFreeMisuse(&pinned);
}

TEST(BlockIntegrityTest, FreeMisuseFaultInjectionDevice) {
  auto f = MakeMem(64);
  FaultInjectionBlockDevice faulty(f.device, nullptr);
  RunFreeMisuse(&faulty);
}

// ---------------------------------------------------------------------------
// Decorator forwarding: corruption armed below a cache must still be
// observable through it, and VerifyBlock must bypass the cache.

TEST(BlockIntegrityTest, CorruptionVisibleThroughCache) {
  MemBlockDevice mem(256);
  CachedBlockDevice cached(&mem, 8);

  auto id = cached.WriteNewBlock(BlockData(256, 0x77));
  ASSERT_TRUE(id.ok());
  BlockData out;
  ASSERT_TRUE(cached.ReadBlock(id.value(), &out).ok());  // Now cached.

  BlockData bad(256, 0x77);
  bad[0] ^= 0x01;
  ASSERT_TRUE(cached.CorruptBlockForTesting(id.value(), bad).ok());

  // The seam dropped the cached copy, so the damage is seen immediately.
  EXPECT_TRUE(cached.ReadBlock(id.value(), &out).IsCorruption());
  EXPECT_TRUE(cached.VerifyBlock(id.value()).IsCorruption());
}

TEST(BlockIntegrityTest, VerifyBypassesCache) {
  MemBlockDevice mem(256);
  CachedBlockDevice cached(&mem, 8);

  auto id = cached.WriteNewBlock(BlockData(256, 0x42));
  ASSERT_TRUE(id.ok());
  BlockData out;
  ASSERT_TRUE(cached.ReadBlock(id.value(), &out).ok());  // Warm the cache.

  // Corrupt via the *base* seam; the cache above still holds a clean copy.
  BlockData bad(256, 0x42);
  bad[17] ^= 0x80;
  ASSERT_TRUE(mem.CorruptBlockForTesting(id.value(), bad).ok());

  // A scrub through the cache must check the backing store, not the cache.
  EXPECT_TRUE(cached.VerifyBlock(id.value()).IsCorruption());
}

TEST(BlockIntegrityTest, PinnedDeviceQuarantinesCorruptReads) {
  MemBlockDevice mem(256);
  PinnedBlockDevice pinned(&mem, {});

  auto a = pinned.WriteNewBlock(BlockData(256, 0x01));
  auto b = pinned.WriteNewBlock(BlockData(256, 0x02));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(pinned.quarantined_count(), 0u);

  BlockData bad(256, 0x01);
  bad[5] ^= 0x04;
  ASSERT_TRUE(pinned.CorruptBlockForTesting(a.value(), bad).ok());

  BlockData out;
  EXPECT_TRUE(pinned.ReadBlock(a.value(), &out).IsCorruption());
  ASSERT_EQ(pinned.quarantined_count(), 1u);
  EXPECT_EQ(pinned.QuarantinedBlocks().front(), a.value());

  // Repeated accesses keep failing and do not duplicate the entry.
  EXPECT_TRUE(pinned.VerifyBlock(a.value()).IsCorruption());
  EXPECT_TRUE(pinned.ReadBlockShared(a.value()).status().IsCorruption());
  EXPECT_EQ(pinned.quarantined_count(), 1u);

  // The clean block is unaffected.
  EXPECT_TRUE(pinned.ReadBlock(b.value(), &out).ok());

  // Freeing the damaged block (a merge rewrote the level) clears it.
  EXPECT_TRUE(pinned.FreeBlock(a.value()).ok());
  EXPECT_EQ(pinned.quarantined_count(), 0u);
}

// ---------------------------------------------------------------------------
// Silent fault modes on the fault-injection decorator.

TEST(BlockIntegrityTest, SilentBitFlipCorruptsTriggerWrite) {
  MemBlockDevice mem(256);
  FaultInjectionBlockDevice faulty(&mem, nullptr);
  faulty.ArmBitFlip(/*after_writes=*/2, /*bit_index=*/123);

  auto a = faulty.WriteNewBlock(BlockData(256, 0x0A));
  auto b = faulty.WriteNewBlock(BlockData(256, 0x0B));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(faulty.silent_fault_fired());

  auto c = faulty.WriteNewBlock(BlockData(256, 0x0C));
  ASSERT_TRUE(c.ok()) << "silent faults must not fail the write";
  EXPECT_TRUE(faulty.silent_fault_fired());
  EXPECT_EQ(faulty.last_corrupted_block(), c.value());

  BlockData out;
  EXPECT_TRUE(faulty.ReadBlock(c.value(), &out).IsCorruption());
  EXPECT_TRUE(faulty.ReadBlock(a.value(), &out).ok());
  EXPECT_TRUE(faulty.ReadBlock(b.value(), &out).ok());

  // Exactly one bit differs from what the caller wrote.
  BlockData raw;
  ASSERT_TRUE(faulty.ReadBlockUnverifiedForTesting(c.value(), &raw).ok());
  int diff_bits = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    uint8_t x = raw[i] ^ 0x0C;
    while (x != 0) {
      diff_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1);
}

TEST(BlockIntegrityTest, MisdirectedWriteClobbersVictim) {
  MemBlockDevice mem(256);
  FaultInjectionBlockDevice faulty(&mem, nullptr);

  auto victim = faulty.WriteNewBlock(BlockData(256, 0x55));
  ASSERT_TRUE(victim.ok());
  faulty.ArmMisdirectedWrite(/*after_writes=*/0, victim.value());

  auto trigger = faulty.WriteNewBlock(BlockData(256, 0x66));
  ASSERT_TRUE(trigger.ok());
  EXPECT_TRUE(faulty.silent_fault_fired());
  EXPECT_EQ(faulty.last_corrupted_block(), victim.value());

  // The trigger block itself is fine; the victim now fails its checksum
  // (its stored bytes are the trigger's payload, its checksum is not).
  BlockData out;
  EXPECT_TRUE(faulty.ReadBlock(trigger.value(), &out).ok());
  EXPECT_TRUE(faulty.ReadBlock(victim.value(), &out).IsCorruption());
  BlockData raw;
  ASSERT_TRUE(faulty.ReadBlockUnverifiedForTesting(victim.value(), &raw).ok());
  EXPECT_EQ(raw[0], 0x66);
}

TEST(BlockIntegrityTest, StaleReadServesPreviousPayload) {
  MemBlockDevice mem(256);
  FaultInjectionBlockDevice faulty(&mem, nullptr);
  faulty.ArmStaleRead(/*after_writes=*/1);

  auto a = faulty.WriteNewBlock(BlockData(256, 0x11));  // Remembered.
  ASSERT_TRUE(a.ok());
  auto b = faulty.WriteNewBlock(BlockData(256, 0x22));  // Dropped write.
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(faulty.silent_fault_fired());
  EXPECT_EQ(faulty.last_corrupted_block(), b.value());

  BlockData out;
  EXPECT_TRUE(faulty.ReadBlock(b.value(), &out).IsCorruption());
  BlockData raw;
  ASSERT_TRUE(faulty.ReadBlockUnverifiedForTesting(b.value(), &raw).ok());
  EXPECT_EQ(raw[0], 0x11) << "slot must hold the previous write's payload";
}

TEST(BlockIntegrityTest, TransientReadErrorsRecover) {
  MemBlockDevice mem(256);
  FaultInjectionBlockDevice faulty(&mem, nullptr);
  auto id = faulty.WriteNewBlock(BlockData(256, 0x99));
  ASSERT_TRUE(id.ok());

  faulty.ArmTransientReadErrors(2);
  BlockData out;
  EXPECT_TRUE(faulty.ReadBlock(id.value(), &out).IsIoError());
  EXPECT_TRUE(faulty.ReadBlockShared(id.value()).status().IsIoError());
  // Scrub verdicts reflect media state, not transport weather.
  faulty.ArmTransientReadErrors(1);
  EXPECT_TRUE(faulty.VerifyBlock(id.value()).ok());
  EXPECT_TRUE(faulty.ReadBlock(id.value(), &out).IsIoError());
  // Third read recovers.
  EXPECT_TRUE(faulty.ReadBlock(id.value(), &out).ok());
  EXPECT_EQ(out[0], 0x99);
}

// ---------------------------------------------------------------------------
// FileBlockDevice syscall resilience.

TEST(BlockIntegrityTest, FileWriteEnospcIsResourceExhausted) {
  auto f = MakeFile(128, "bi_enospc");
  auto ok = f.file->WriteNewBlock(BlockData(16, 0x01));
  ASSERT_TRUE(ok.ok());

  f.file->InjectWriteFaultForTesting(ENOSPC);
  auto st = f.file->WriteNewBlock(BlockData(16, 0x02)).status();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(f.file->live_blocks(), 1u) << "failed allocation must not leak";

  // The slot is recycled and the device keeps working.
  auto retry = f.file->WriteNewBlock(BlockData(16, 0x03));
  ASSERT_TRUE(retry.ok());
  BlockData out;
  EXPECT_TRUE(f.file->ReadBlock(retry.value(), &out).ok());
  EXPECT_EQ(out[0], 0x03);
}

TEST(BlockIntegrityTest, FileWriteEioIsIoError) {
  auto f = MakeFile(128, "bi_eio");
  f.file->InjectWriteFaultForTesting(EIO);
  auto st = f.file->WriteNewBlock(BlockData(16, 0x01)).status();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
}

TEST(BlockIntegrityTest, FileTransientReadFaultsAreRetried) {
  auto f = MakeFile(128, "bi_retry");
  auto id = f.file->WriteNewBlock(BlockData(16, 0xAB));
  ASSERT_TRUE(id.ok());

  // Two transient failures, then success: the bounded retry absorbs them.
  f.file->InjectReadFaultsForTesting(2);
  BlockData out;
  ASSERT_TRUE(f.file->ReadBlock(id.value(), &out).ok());
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_EQ(f.file->read_retries(), 2u);
}

TEST(BlockIntegrityTest, FilePersistentReadFaultSurfacesAfterRetries) {
  auto f = MakeFile(128, "bi_retry_fail");
  auto id = f.file->WriteNewBlock(BlockData(16, 0xAB));
  ASSERT_TRUE(id.ok());

  // More faults than attempts: the error surfaces, typed as IoError.
  f.file->InjectReadFaultsForTesting(10);
  BlockData out;
  EXPECT_TRUE(f.file->ReadBlock(id.value(), &out).IsIoError());
  // The remaining armed faults drain on later reads, which then recover.
  f.file->InjectReadFaultsForTesting(0);
  EXPECT_TRUE(f.file->ReadBlock(id.value(), &out).ok());
}

TEST(BlockIntegrityTest, FileCorruptionIsNeverRetried) {
  auto f = MakeFile(128, "bi_no_retry");
  auto id = f.file->WriteNewBlock(BlockData(16, 0xAB));
  ASSERT_TRUE(id.ok());
  BlockData bad(128, 0xAB);
  bad[3] ^= 0x02;
  ASSERT_TRUE(f.file->CorruptBlockForTesting(id.value(), bad).ok());

  const uint64_t retries_before = f.file->read_retries();
  BlockData out;
  EXPECT_TRUE(f.file->ReadBlock(id.value(), &out).IsCorruption());
  EXPECT_EQ(f.file->read_retries(), retries_before)
      << "stable media damage must not be retried";
}

// ---------------------------------------------------------------------------
// Device exhaustion (max_blocks).

void RunExhaustion(BlockDevice* dev, auto set_max) {
  set_max(2);
  auto a = dev->WriteNewBlock(BlockData(8, 0x01));
  auto b = dev->WriteNewBlock(BlockData(8, 0x02));
  ASSERT_TRUE(a.ok() && b.ok());

  auto st = dev->WriteNewBlock(BlockData(8, 0x03)).status();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(dev->live_blocks(), 2u);

  // Freeing makes room again.
  ASSERT_TRUE(dev->FreeBlock(a.value()).ok());
  EXPECT_TRUE(dev->WriteNewBlock(BlockData(8, 0x04)).ok());

  // Raising the cap makes room too.
  set_max(3);
  EXPECT_TRUE(dev->WriteNewBlock(BlockData(8, 0x05)).ok());
  // And clearing it removes the limit.
  set_max(0);
  EXPECT_TRUE(dev->WriteNewBlock(BlockData(8, 0x06)).ok());
}

TEST(BlockIntegrityTest, ExhaustionMemDevice) {
  MemBlockDevice mem(64);
  RunExhaustion(&mem, [&](uint64_t n) { mem.set_max_blocks(n); });
}

TEST(BlockIntegrityTest, ExhaustionFileDevice) {
  auto f = MakeFile(64, "bi_full");
  RunExhaustion(f.device, [&](uint64_t n) { f.file->set_max_blocks(n); });
}

// ---------------------------------------------------------------------------
// Sidecar persistence across reopen.

TEST(BlockIntegrityTest, ChecksumsSurviveReopen) {
  const std::string path = TempPath("bi_reopen");
  FileBlockDevice::FileOptions opts;
  opts.block_size = 128;
  opts.remove_on_close = false;

  std::vector<BlockId> ids;
  {
    auto dev_or = FileBlockDevice::Open(path, opts);
    ASSERT_TRUE(dev_or.ok());
    for (uint8_t i = 0; i < 5; ++i) {
      auto id = dev_or.value()->WriteNewBlock(BlockData(16, i));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    ASSERT_TRUE(dev_or.value()->Flush().ok());
  }

  opts.truncate = false;
  auto dev_or = FileBlockDevice::Open(path, opts);
  ASSERT_TRUE(dev_or.ok()) << dev_or.status().ToString();
  auto& dev = *dev_or.value();
  ASSERT_TRUE(dev.RestoreLive(ids).ok());
  for (uint8_t i = 0; i < 5; ++i) {
    BlockData out;
    ASSERT_TRUE(dev.ReadBlock(ids[i], &out).ok());
    EXPECT_EQ(out[0], i);
    EXPECT_TRUE(dev.VerifyBlock(ids[i]).ok());
  }
  // Clean up the persisted pair.
  dev.set_max_blocks(0);
  ::unlink(path.c_str());
  ::unlink(FileBlockDevice::SidecarPath(path).c_str());
}

TEST(BlockIntegrityTest, OfflineCorruptionDetectedAfterReopen) {
  const std::string path = TempPath("bi_reopen_bad");
  FileBlockDevice::FileOptions opts;
  opts.block_size = 128;
  opts.remove_on_close = false;

  BlockId id = kInvalidBlockId;
  {
    auto dev_or = FileBlockDevice::Open(path, opts);
    ASSERT_TRUE(dev_or.ok());
    auto id_or = dev_or.value()->WriteNewBlock(BlockData(16, 0x5C));
    ASSERT_TRUE(id_or.ok());
    id = id_or.value();
    ASSERT_TRUE(dev_or.value()->Flush().ok());
  }

  // Flip one byte directly in the backing file — rot while "powered off".
  {
    FILE* fp = ::fopen(path.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(::fseek(fp, static_cast<long>(id * 128 + 7), SEEK_SET), 0);
    ASSERT_EQ(::fputc(0xEE, fp), 0xEE);
    ASSERT_EQ(::fclose(fp), 0);
  }

  opts.truncate = false;
  auto dev_or = FileBlockDevice::Open(path, opts);
  ASSERT_TRUE(dev_or.ok());
  ASSERT_TRUE(dev_or.value()->RestoreLive({id}).ok());
  BlockData out;
  EXPECT_TRUE(dev_or.value()->ReadBlock(id, &out).IsCorruption());
  ::unlink(path.c_str());
  ::unlink(FileBlockDevice::SidecarPath(path).c_str());
}

TEST(BlockIntegrityTest, MissingSidecarEntriesFailRestore) {
  const std::string path = TempPath("bi_no_sidecar");
  FileBlockDevice::FileOptions opts;
  opts.block_size = 128;
  opts.remove_on_close = false;

  BlockId id = kInvalidBlockId;
  {
    auto dev_or = FileBlockDevice::Open(path, opts);
    ASSERT_TRUE(dev_or.ok());
    auto id_or = dev_or.value()->WriteNewBlock(BlockData(16, 0x01));
    ASSERT_TRUE(id_or.ok());
    id = id_or.value();
    ASSERT_TRUE(dev_or.value()->Flush().ok());
  }
  ASSERT_EQ(::truncate(FileBlockDevice::SidecarPath(path).c_str(), 0), 0);

  opts.truncate = false;
  auto dev_or = FileBlockDevice::Open(path, opts);
  ASSERT_TRUE(dev_or.ok());
  EXPECT_TRUE(dev_or.value()->RestoreLive({id}).IsCorruption());
  ::unlink(path.c_str());
  ::unlink(FileBlockDevice::SidecarPath(path).c_str());
}

TEST(BlockIntegrityTest, SidecarPathMapping) {
  EXPECT_EQ(FileBlockDevice::SidecarPath("/x/blocks.dev"), "/x/blocks.crc");
  EXPECT_EQ(FileBlockDevice::SidecarPath("/x/data"), "/x/data.crc");
}

}  // namespace
}  // namespace lsmssd
