#include "src/storage/mem_block_device.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

BlockData Bytes(std::initializer_list<uint8_t> v) { return BlockData(v); }

TEST(MemBlockDeviceTest, WriteReadRoundTrip) {
  MemBlockDevice dev(64);
  auto id = dev.WriteNewBlock(Bytes({1, 2, 3}));
  ASSERT_TRUE(id.ok());
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(id.value(), &out).ok());
  ASSERT_EQ(out.size(), 64u);  // Zero-padded to block size.
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(out[3], 0);
}

TEST(MemBlockDeviceTest, RejectsOversizedPayload) {
  MemBlockDevice dev(8);
  auto id = dev.WriteNewBlock(BlockData(9, 0xff));
  EXPECT_TRUE(id.status().IsInvalidArgument());
}

TEST(MemBlockDeviceTest, DistinctIdsPerWrite) {
  MemBlockDevice dev(16);
  auto a = dev.WriteNewBlock(Bytes({1}));
  auto b = dev.WriteNewBlock(Bytes({2}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
}

TEST(MemBlockDeviceTest, FreeMakesBlockUnreadable) {
  MemBlockDevice dev(16);
  auto id = dev.WriteNewBlock(Bytes({1}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(dev.FreeBlock(id.value()).ok());
  BlockData out;
  EXPECT_TRUE(dev.ReadBlock(id.value(), &out).IsNotFound());
  EXPECT_FALSE(dev.IsLive(id.value()));
}

TEST(MemBlockDeviceTest, DoubleFreeFails) {
  MemBlockDevice dev(16);
  auto id = dev.WriteNewBlock(Bytes({1}));
  ASSERT_TRUE(dev.FreeBlock(id.value()).ok());
  EXPECT_TRUE(dev.FreeBlock(id.value()).IsNotFound());
}

TEST(MemBlockDeviceTest, ReadOfUnknownIdFails) {
  MemBlockDevice dev(16);
  BlockData out;
  EXPECT_TRUE(dev.ReadBlock(12345, &out).IsNotFound());
}

TEST(MemBlockDeviceTest, LiveBlockAccounting) {
  MemBlockDevice dev(16);
  EXPECT_EQ(dev.live_blocks(), 0u);
  auto a = dev.WriteNewBlock(Bytes({1}));
  auto b = dev.WriteNewBlock(Bytes({2}));
  EXPECT_EQ(dev.live_blocks(), 2u);
  ASSERT_TRUE(dev.FreeBlock(a.value()).ok());
  EXPECT_EQ(dev.live_blocks(), 1u);
  ASSERT_TRUE(dev.FreeBlock(b.value()).ok());
  EXPECT_EQ(dev.live_blocks(), 0u);
}

TEST(MemBlockDeviceTest, IoStatsCountEveryOperation) {
  MemBlockDevice dev(16);
  auto a = dev.WriteNewBlock(Bytes({1}));
  auto b = dev.WriteNewBlock(Bytes({2}));
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(a.value(), &out).ok());
  ASSERT_TRUE(dev.ReadBlock(b.value(), &out).ok());
  ASSERT_TRUE(dev.ReadBlock(b.value(), &out).ok());
  ASSERT_TRUE(dev.FreeBlock(a.value()).ok());
  EXPECT_EQ(dev.stats().block_writes(), 2u);
  EXPECT_EQ(dev.stats().block_reads(), 3u);
  EXPECT_EQ(dev.stats().block_allocs(), 2u);
  EXPECT_EQ(dev.stats().block_frees(), 1u);
}

TEST(MemBlockDeviceTest, FailedOperationsDoNotCount) {
  MemBlockDevice dev(8);
  (void)dev.WriteNewBlock(BlockData(9, 1));  // Too big; rejected.
  BlockData out;
  (void)dev.ReadBlock(7, &out);  // Unknown id.
  EXPECT_EQ(dev.stats().block_writes(), 0u);
  EXPECT_EQ(dev.stats().block_reads(), 0u);
}

TEST(IoStatsTest, ResetZeroesEverything) {
  IoStats s;
  s.RecordWrite();
  s.RecordRead();
  s.RecordCachedRead();
  s.RecordFree();
  s.RecordAllocate();
  s.Reset();
  EXPECT_EQ(s.block_writes(), 0u);
  EXPECT_EQ(s.block_reads(), 0u);
  EXPECT_EQ(s.cached_reads(), 0u);
  EXPECT_EQ(s.block_frees(), 0u);
  EXPECT_EQ(s.block_allocs(), 0u);
}

TEST(IoStatsTest, ToStringMentionsCounts) {
  IoStats s;
  s.RecordWrite();
  s.RecordWrite();
  EXPECT_NE(s.ToString().find("writes=2"), std::string::npos);
}

}  // namespace
}  // namespace lsmssd
