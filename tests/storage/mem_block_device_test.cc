#include "src/storage/mem_block_device.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

BlockData Bytes(std::initializer_list<uint8_t> v) { return BlockData(v); }

TEST(MemBlockDeviceTest, WriteReadRoundTrip) {
  MemBlockDevice dev(64);
  auto id = dev.WriteNewBlock(Bytes({1, 2, 3}));
  ASSERT_TRUE(id.ok());
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(id.value(), &out).ok());
  ASSERT_EQ(out.size(), 64u);  // Zero-padded to block size.
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(out[3], 0);
}

TEST(MemBlockDeviceTest, RejectsOversizedPayload) {
  MemBlockDevice dev(8);
  auto id = dev.WriteNewBlock(BlockData(9, 0xff));
  EXPECT_TRUE(id.status().IsInvalidArgument());
}

TEST(MemBlockDeviceTest, DistinctIdsPerWrite) {
  MemBlockDevice dev(16);
  auto a = dev.WriteNewBlock(Bytes({1}));
  auto b = dev.WriteNewBlock(Bytes({2}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
}

TEST(MemBlockDeviceTest, FreeMakesBlockUnreadable) {
  MemBlockDevice dev(16);
  auto id = dev.WriteNewBlock(Bytes({1}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(dev.FreeBlock(id.value()).ok());
  BlockData out;
  EXPECT_TRUE(dev.ReadBlock(id.value(), &out).IsNotFound());
  EXPECT_FALSE(dev.IsLive(id.value()));
}

TEST(MemBlockDeviceTest, DoubleFreeFails) {
  MemBlockDevice dev(16);
  auto id = dev.WriteNewBlock(Bytes({1}));
  ASSERT_TRUE(dev.FreeBlock(id.value()).ok());
  EXPECT_TRUE(dev.FreeBlock(id.value()).IsNotFound());
}

TEST(MemBlockDeviceTest, ReadOfUnknownIdFails) {
  MemBlockDevice dev(16);
  BlockData out;
  EXPECT_TRUE(dev.ReadBlock(12345, &out).IsNotFound());
}

TEST(MemBlockDeviceTest, LiveBlockAccounting) {
  MemBlockDevice dev(16);
  EXPECT_EQ(dev.live_blocks(), 0u);
  auto a = dev.WriteNewBlock(Bytes({1}));
  auto b = dev.WriteNewBlock(Bytes({2}));
  EXPECT_EQ(dev.live_blocks(), 2u);
  ASSERT_TRUE(dev.FreeBlock(a.value()).ok());
  EXPECT_EQ(dev.live_blocks(), 1u);
  ASSERT_TRUE(dev.FreeBlock(b.value()).ok());
  EXPECT_EQ(dev.live_blocks(), 0u);
}

TEST(MemBlockDeviceTest, IoStatsCountEveryOperation) {
  MemBlockDevice dev(16);
  auto a = dev.WriteNewBlock(Bytes({1}));
  auto b = dev.WriteNewBlock(Bytes({2}));
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(a.value(), &out).ok());
  ASSERT_TRUE(dev.ReadBlock(b.value(), &out).ok());
  ASSERT_TRUE(dev.ReadBlock(b.value(), &out).ok());
  ASSERT_TRUE(dev.FreeBlock(a.value()).ok());
  EXPECT_EQ(dev.stats().block_writes(), 2u);
  EXPECT_EQ(dev.stats().block_reads(), 3u);
  EXPECT_EQ(dev.stats().block_allocs(), 2u);
  EXPECT_EQ(dev.stats().block_frees(), 1u);
}

TEST(MemBlockDeviceTest, FailedOperationsDoNotCount) {
  MemBlockDevice dev(8);
  (void)dev.WriteNewBlock(BlockData(9, 1));  // Too big; rejected.
  BlockData out;
  (void)dev.ReadBlock(7, &out);  // Unknown id.
  EXPECT_EQ(dev.stats().block_writes(), 0u);
  EXPECT_EQ(dev.stats().block_reads(), 0u);
}

TEST(IoStatsTest, ResetZeroesEverything) {
  IoStats s;
  s.RecordWrite();
  s.RecordRead();
  s.RecordCachedRead();
  s.RecordFree();
  s.RecordAllocate();
  s.Reset();
  EXPECT_EQ(s.block_writes(), 0u);
  EXPECT_EQ(s.block_reads(), 0u);
  EXPECT_EQ(s.cached_reads(), 0u);
  EXPECT_EQ(s.block_frees(), 0u);
  EXPECT_EQ(s.block_allocs(), 0u);
}

TEST(IoStatsTest, ToStringMentionsCounts) {
  IoStats s;
  s.RecordWrite();
  s.RecordWrite();
  EXPECT_NE(s.ToString().find("writes=2"), std::string::npos);
}

TEST(IoStatsTest, ToStringHidesBatchCountersUntilUsed) {
  IoStats s;
  s.RecordWrite();
  EXPECT_EQ(s.ToString().find("batch_writes"), std::string::npos);
  s.RecordBatchWrite(8);
  const std::string out = s.ToString();
  EXPECT_NE(out.find("batch_writes=1"), std::string::npos);
  EXPECT_NE(out.find("batched_blocks_written=8"), std::string::npos);
}

TEST(MemBlockDeviceBatchTest, WriteBlocksRoundTrip) {
  MemBlockDevice dev(16);
  std::vector<BlockData> blocks;
  for (uint8_t i = 0; i < 5; ++i) blocks.push_back(Bytes({i}));
  std::vector<BlockId> ids;
  ASSERT_TRUE(dev.WriteBlocks(blocks, &ids).ok());
  ASSERT_EQ(ids.size(), 5u);
  std::vector<BlockData> out;
  ASSERT_TRUE(dev.ReadBlocks(ids, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  for (uint8_t i = 0; i < 5; ++i) EXPECT_EQ(out[i][0], i);
}

TEST(MemBlockDeviceBatchTest, AccountsLikePerBlockCallsPlusBatchCounters) {
  MemBlockDevice dev(16);
  std::vector<BlockId> ids;
  ASSERT_TRUE(dev.WriteBlocks({Bytes({1}), Bytes({2}), Bytes({3})}, &ids).ok());
  EXPECT_EQ(dev.stats().block_writes(), 3u);
  EXPECT_EQ(dev.stats().block_allocs(), 3u);
  EXPECT_EQ(dev.stats().batch_writes(), 1u);
  EXPECT_EQ(dev.stats().batched_blocks_written(), 3u);
  std::vector<BlockData> out;
  ASSERT_TRUE(dev.ReadBlocks(ids, &out).ok());
  EXPECT_EQ(dev.stats().block_reads(), 3u);
  EXPECT_EQ(dev.stats().batch_reads(), 1u);
  EXPECT_EQ(dev.stats().batched_blocks_read(), 3u);
  // In-memory device: no syscalls, ever.
  EXPECT_EQ(dev.stats().write_syscalls(), 0u);
  EXPECT_EQ(dev.stats().read_syscalls(), 0u);
}

TEST(MemBlockDeviceBatchTest, SingleBlockBatchSkipsBatchCounters) {
  MemBlockDevice dev(16);
  std::vector<BlockId> ids;
  ASSERT_TRUE(dev.WriteBlocks({Bytes({1})}, &ids).ok());
  EXPECT_EQ(dev.stats().batch_writes(), 0u);
  EXPECT_EQ(dev.stats().block_writes(), 1u);
}

TEST(MemBlockDeviceBatchTest, WriteBlocksIsAllOrNothingAtCapacity) {
  MemBlockDevice dev(16);
  dev.set_max_blocks(2);
  std::vector<BlockId> ids;
  Status st = dev.WriteBlocks({Bytes({1}), Bytes({2}), Bytes({3})}, &ids);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(ids.empty());
  EXPECT_EQ(dev.live_blocks(), 0u);
  EXPECT_EQ(dev.stats().block_writes(), 0u);
  // The device is intact: a fitting batch still lands.
  ASSERT_TRUE(dev.WriteBlocks({Bytes({1}), Bytes({2})}, &ids).ok());
  EXPECT_EQ(ids.size(), 2u);
}

TEST(MemBlockDeviceBatchTest, ReadBlocksFailsOnDeadBlock) {
  MemBlockDevice dev(16);
  std::vector<BlockId> ids;
  ASSERT_TRUE(dev.WriteBlocks({Bytes({1}), Bytes({2})}, &ids).ok());
  ASSERT_TRUE(dev.FreeBlock(ids[1]).ok());
  std::vector<BlockData> out;
  EXPECT_TRUE(dev.ReadBlocks(ids, &out).IsNotFound());
}

TEST(MemBlockDeviceBatchTest, MatchesIdSequenceOfPerBlockWrites) {
  // Batched and per-block writes must allocate identical id sequences, so
  // merge output layout (and every figure) is independent of batching.
  MemBlockDevice a(16), b(16);
  std::vector<BlockId> batch_ids;
  ASSERT_TRUE(a.WriteBlocks({Bytes({1}), Bytes({2}), Bytes({3})}, &batch_ids)
                  .ok());
  std::vector<BlockId> loop_ids;
  for (uint8_t i = 1; i <= 3; ++i) {
    auto id = b.WriteNewBlock(Bytes({i}));
    ASSERT_TRUE(id.ok());
    loop_ids.push_back(id.value());
  }
  EXPECT_EQ(batch_ids, loop_ids);
}

}  // namespace
}  // namespace lsmssd
