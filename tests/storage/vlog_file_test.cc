// Value-log segment format hardening: encode/read roundtrip, the
// every-byte-flip corruption sweep (any single damaged byte must turn
// into Corruption, never a wrong value), scan behaviour over torn
// tails, and the fault-injection decorator's page-cache model.

#include "src/storage/vlog_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

std::string FreshPath(const char* tag) {
  const std::string path = ::testing::TempDir() + "/vlog_" + tag + "_" +
                           std::to_string(::getpid());
  ::unlink(path.c_str());
  return path;
}

TEST(VlogFileTest, AppendReadAtSizeRoundtrip) {
  const std::string path = FreshPath("rt");
  auto file_or = PosixVlogFile::Open(path);
  ASSERT_TRUE(file_or.ok()) << file_or.status().ToString();
  auto file = std::move(file_or).value();
  EXPECT_EQ(file->size(), 0u);
  ASSERT_TRUE(file->Append("hello ").ok());
  ASSERT_TRUE(file->Append("world").ok());
  EXPECT_EQ(file->size(), 11u);
  std::string got;
  ASSERT_TRUE(file->ReadAt(0, 11, &got).ok());
  EXPECT_EQ(got, "hello world");
  ASSERT_TRUE(file->ReadAt(6, 5, &got).ok());
  EXPECT_EQ(got, "world");
  // Reading past the end is an IO error, not silent zero-fill.
  EXPECT_FALSE(file->ReadAt(8, 10, &got).ok());
  // Reopen sees the persisted size and appends after it.
  file.reset();
  auto again_or = PosixVlogFile::Open(path);
  ASSERT_TRUE(again_or.ok());
  EXPECT_EQ(again_or.value()->size(), 11u);
  ::unlink(path.c_str());
}

TEST(VlogFileTest, EncodeReadEntryRoundtrip) {
  const std::string path = FreshPath("entry");
  auto file_or = PosixVlogFile::Open(path);
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();
  const std::string v1(40, 'a');
  const std::string v2 = "short";
  const std::string e1 = vlog::EncodeEntry(7, v1);
  const std::string e2 = vlog::EncodeEntry(123456789, v2);
  ASSERT_EQ(e1.size(), vlog::kEntryHeaderSize + v1.size());
  ASSERT_TRUE(file->Append(e1).ok());
  ASSERT_TRUE(file->Append(e2).ok());

  std::string got;
  ASSERT_TRUE(vlog::ReadEntry(file.get(), 0, 7, 40, &got).ok());
  EXPECT_EQ(got, v1);
  ASSERT_TRUE(
      vlog::ReadEntry(file.get(), e1.size(), 123456789, 5, &got).ok());
  EXPECT_EQ(got, v2);

  // Wrong expectations are Corruption: a pointer must not be able to
  // read someone else's entry.
  EXPECT_TRUE(vlog::ReadEntry(file.get(), 0, 8, 40, &got)
                  .IsCorruption());  // Key mismatch.
  EXPECT_TRUE(vlog::ReadEntry(file.get(), 0, 7, 39, &got)
                  .IsCorruption());  // Length mismatch.
  EXPECT_TRUE(vlog::ReadEntry(file.get(), 1, 7, 40, &got)
                  .IsCorruption());  // Misaligned offset.
  EXPECT_TRUE(vlog::ReadEntry(file.get(), e1.size() + e2.size(), 7, 40, &got)
                  .IsCorruption());  // Past the end (dangling pointer).
  ::unlink(path.c_str());
}

TEST(VlogFileTest, EveryByteFlipIsDetected) {
  const std::string path = FreshPath("flip");
  auto file_or = PosixVlogFile::Open(path);
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();
  const std::string value = "the quick brown fox";
  const std::string entry = vlog::EncodeEntry(42, value);
  ASSERT_TRUE(file->Append(entry).ok());

  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  for (size_t i = 0; i < entry.size(); ++i) {
    const char orig = entry[i];
    const char bad = static_cast<char>(orig ^ 0x40);
    ASSERT_EQ(::pwrite(fd, &bad, 1, static_cast<off_t>(i)), 1);
    std::string got;
    Status st = vlog::ReadEntry(file.get(), 0, 42,
                                static_cast<uint32_t>(value.size()), &got);
    EXPECT_TRUE(st.IsCorruption()) << "flipped byte " << i << ": "
                                   << st.ToString();
    EXPECT_NE(st.message().find("offset 0"), std::string::npos)
        << "corruption must name the entry: " << st.ToString();
    ASSERT_EQ(::pwrite(fd, &orig, 1, static_cast<off_t>(i)), 1);
  }
  ::close(fd);
  // Restored file reads clean again.
  std::string got;
  EXPECT_TRUE(vlog::ReadEntry(file.get(), 0, 42,
                              static_cast<uint32_t>(value.size()), &got)
                  .ok());
  EXPECT_EQ(got, value);
  ::unlink(path.c_str());
}

TEST(VlogFileTest, ScanEntriesStopsAtTornTail) {
  const std::string path = FreshPath("scan");
  auto file_or = PosixVlogFile::Open(path);
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();
  const std::string e1 = vlog::EncodeEntry(1, "first");
  const std::string e2 = vlog::EncodeEntry(2, "second");
  ASSERT_TRUE(file->Append(e1).ok());
  ASSERT_TRUE(file->Append(e2).ok());
  // A torn third entry: header says 100 bytes but only 3 arrived.
  const std::string e3 = vlog::EncodeEntry(3, std::string(100, 'x'));
  ASSERT_TRUE(file->Append(e3.substr(0, vlog::kEntryHeaderSize + 3)).ok());

  std::vector<Key> keys;
  uint64_t intact_end = 0;
  ASSERT_TRUE(vlog::ScanEntries(
                  file.get(), 0,
                  [&](const vlog::EntryInfo& info, const std::string& value) {
                    keys.push_back(info.key);
                    EXPECT_EQ(value.size(), info.length);
                    return Status::OK();
                  },
                  &intact_end)
                  .ok());
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 1u);
  EXPECT_EQ(keys[1], 2u);
  // The frontier stops exactly at the torn entry's header.
  EXPECT_EQ(intact_end, e1.size() + e2.size());
  EXPECT_LT(intact_end, file->size());
  ::unlink(path.c_str());
}

TEST(VlogFileTest, FaultInjectionBuffersUntilSyncAndServesReads) {
  const std::string path = FreshPath("inj");
  auto base_or = PosixVlogFile::Open(path);
  ASSERT_TRUE(base_or.ok());
  PosixVlogFile* base_raw = base_or.value().get();
  FaultInjector injector;  // Unarmed: steps never fire.
  FaultInjectionVlogFile file(std::move(base_or).value(), &injector);

  ASSERT_TRUE(file.Append("abcdef").ok());
  EXPECT_EQ(file.size(), 6u);
  EXPECT_EQ(base_raw->size(), 0u);  // Still only in the "page cache".
  // Reads see unsynced bytes, like a same-process read through the cache.
  std::string got;
  ASSERT_TRUE(file.ReadAt(2, 3, &got).ok());
  EXPECT_EQ(got, "cde");
  ASSERT_TRUE(file.Sync().ok());
  EXPECT_EQ(base_raw->size(), 6u);
  // Straddling read after more unsynced appends: durable head + buffer.
  ASSERT_TRUE(file.Append("ghi").ok());
  ASSERT_TRUE(file.ReadAt(4, 5, &got).ok());
  EXPECT_EQ(got, "efghi");
  ::unlink(path.c_str());
}

TEST(VlogFileTest, FaultInjectionCrashDuringSyncTearsTail) {
  const std::string path = FreshPath("tear");
  auto base_or = PosixVlogFile::Open(path);
  ASSERT_TRUE(base_or.ok());
  PosixVlogFile* base_raw = base_or.value().get();
  FaultInjector injector;
  FaultInjectionVlogFile file(std::move(base_or).value(), &injector);
  ASSERT_TRUE(file.Append("0123456789").ok());  // Unarmed: no fault yet.
  injector.Arm(0);                              // Next step crashes.
  EXPECT_FALSE(file.Sync().ok());
  // A strict prefix reached the file — more than zero (the tear model
  // flushes size/2+1 bytes), less than everything.
  EXPECT_GT(base_raw->size(), 0u);
  EXPECT_LT(base_raw->size(), 10u);
  // The file is dead after the crash, like the process it models.
  EXPECT_FALSE(file.Append("x").ok());
  std::string got;
  EXPECT_FALSE(file.ReadAt(0, 1, &got).ok());
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace lsmssd
