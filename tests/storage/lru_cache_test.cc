#include "src/storage/lru_cache.h"

#include <gtest/gtest.h>

#include "src/storage/mem_block_device.h"

namespace lsmssd {
namespace {

BlockData Val(uint8_t b) { return BlockData(4, b); }

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(2);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, Val(7));
  auto hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 7);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Put(1, Val(1));
  cache.Put(2, Val(2));
  ASSERT_NE(cache.Get(1), nullptr);  // 1 becomes MRU.
  cache.Put(3, Val(3));              // Evicts 2.
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(LruCacheTest, PutRefreshesExistingEntry) {
  LruCache cache(2);
  cache.Put(1, Val(1));
  cache.Put(2, Val(2));
  cache.Put(1, Val(9));  // Refresh: 1 is MRU now.
  cache.Put(3, Val(3));  // Evicts 2.
  auto hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 9);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, PinnedEntriesSurviveEviction) {
  LruCache cache(2);
  cache.Put(1, Val(1));
  EXPECT_TRUE(cache.Pin(1));
  cache.Put(2, Val(2));
  cache.Put(3, Val(3));  // Would evict 1 (LRU), but it is pinned -> evict 2.
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, UnpinMakesEvictable) {
  LruCache cache(1);
  cache.Put(1, Val(1));
  cache.Pin(1);
  cache.Put(2, Val(2));  // 1 pinned: cache stays over... insert skipped or kept.
  cache.Unpin(1);
  cache.Put(3, Val(3));
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(LruCacheTest, PinMissingReturnsFalse) {
  LruCache cache(2);
  EXPECT_FALSE(cache.Pin(42));
}

TEST(LruCacheTest, EraseRemovesEvenPinned) {
  LruCache cache(2);
  cache.Put(1, Val(1));
  cache.Pin(1);
  cache.Erase(1);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache cache(0);
  cache.Put(1, Val(1));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ZeroCapacityCountsNoHitsAndNoMisses) {
  // A capacity-0 cache is "no cache", not "a cache with a 0% hit rate":
  // its lookups must not pollute the hit/miss accounting at all.
  LruCache cache(0);
  cache.Put(1, Val(1));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruCacheTest, ClearEmptiesCache) {
  LruCache cache(4);
  cache.Put(1, Val(1));
  cache.Put(2, Val(2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(LruCacheTest, ClearResetsHitAndMissCounters) {
  // Clear() starts a fresh accounting epoch: contents *and* counters go,
  // so a post-Clear hit rate reflects only post-Clear traffic.
  LruCache cache(4);
  cache.Put(1, Val(1));
  EXPECT_NE(cache.Get(1), nullptr);  // 1 hit.
  EXPECT_EQ(cache.Get(2), nullptr);  // 1 miss.
  cache.Clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  cache.Put(3, Val(3));
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(CachedBlockDeviceTest, ReadsAreServedFromCache) {
  MemBlockDevice base(32);
  CachedBlockDevice cached(&base, 8);
  auto id = cached.WriteNewBlock(Val(5));
  ASSERT_TRUE(id.ok());

  BlockData out;
  ASSERT_TRUE(cached.ReadBlock(id.value(), &out).ok());
  ASSERT_TRUE(cached.ReadBlock(id.value(), &out).ok());
  // Write-through put the block in cache, so the base device never saw a
  // read.
  EXPECT_EQ(base.stats().block_reads(), 0u);
  EXPECT_EQ(base.stats().cached_reads(), 2u);
  EXPECT_EQ(out[0], 5);
}

TEST(CachedBlockDeviceTest, WritesAlwaysReachDevice) {
  MemBlockDevice base(32);
  CachedBlockDevice cached(&base, 8);
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(cached.WriteNewBlock(Val(i)).ok());
  }
  // The headline metric (device writes) must never be absorbed by caching.
  EXPECT_EQ(base.stats().block_writes(), 5u);
}

TEST(CachedBlockDeviceTest, MissFallsThroughAndPopulates) {
  MemBlockDevice base(32);
  auto id = base.WriteNewBlock(Val(9));  // Written directly to base.
  ASSERT_TRUE(id.ok());

  CachedBlockDevice cached(&base, 8);
  BlockData out;
  ASSERT_TRUE(cached.ReadBlock(id.value(), &out).ok());
  EXPECT_EQ(base.stats().block_reads(), 1u);
  ASSERT_TRUE(cached.ReadBlock(id.value(), &out).ok());
  EXPECT_EQ(base.stats().block_reads(), 1u);  // Second read cached.
}

TEST(CachedBlockDeviceTest, FreeInvalidatesCacheEntry) {
  MemBlockDevice base(32);
  CachedBlockDevice cached(&base, 8);
  auto id = cached.WriteNewBlock(Val(5));
  ASSERT_TRUE(cached.FreeBlock(id.value()).ok());
  BlockData out;
  EXPECT_TRUE(cached.ReadBlock(id.value(), &out).IsNotFound());
}

TEST(CachedBlockDeviceTest, EvictionBoundsMemory) {
  MemBlockDevice base(32);
  CachedBlockDevice cached(&base, 4);
  for (uint8_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(cached.WriteNewBlock(Val(i)).ok());
  }
  EXPECT_LE(cached.cache().size(), 4u);
}

}  // namespace
}  // namespace lsmssd
