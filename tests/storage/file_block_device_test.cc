#include "src/storage/file_block_device.h"

#include <unistd.h>

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + std::to_string(::getpid());
}

TEST(FileBlockDeviceTest, OpenCreatesBackingFile) {
  const std::string path = TempPath("fbd_open");
  auto dev_or = FileBlockDevice::Open(path, {});
  ASSERT_TRUE(dev_or.ok()) << dev_or.status().ToString();
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);
}

TEST(FileBlockDeviceTest, RemovesFileOnClose) {
  const std::string path = TempPath("fbd_rm");
  {
    auto dev_or = FileBlockDevice::Open(path, {});
    ASSERT_TRUE(dev_or.ok());
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(FileBlockDeviceTest, WriteReadRoundTrip) {
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_rw"), {});
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  BlockData payload(100, 0xab);
  auto id = dev.WriteNewBlock(payload);
  ASSERT_TRUE(id.ok());
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(id.value(), &out).ok());
  ASSERT_EQ(out.size(), dev.block_size());
  EXPECT_EQ(out[0], 0xab);
  EXPECT_EQ(out[99], 0xab);
  EXPECT_EQ(out[100], 0);  // Padding.
}

TEST(FileBlockDeviceTest, SlotsAreRecycledAfterFree) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 512;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_recycle"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  auto a = dev.WriteNewBlock(BlockData(1, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(dev.FreeBlock(a.value()).ok());
  auto b = dev.WriteNewBlock(BlockData(1, 2));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // Freed slot reused.
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(b.value(), &out).ok());
  EXPECT_EQ(out[0], 2);
}

TEST(FileBlockDeviceTest, ReadAfterFreeFails) {
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_raf"), {});
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();
  auto id = dev.WriteNewBlock(BlockData(1, 1));
  ASSERT_TRUE(dev.FreeBlock(id.value()).ok());
  BlockData out;
  EXPECT_TRUE(dev.ReadBlock(id.value(), &out).IsNotFound());
}

TEST(FileBlockDeviceTest, OversizedPayloadRejected) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_big"), opts);
  ASSERT_TRUE(dev_or.ok());
  EXPECT_TRUE(dev_or.value()
                  ->WriteNewBlock(BlockData(65, 0))
                  .status()
                  .IsInvalidArgument());
}

TEST(FileBlockDeviceTest, StatsTrackIo) {
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_stats"), {});
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();
  auto a = dev.WriteNewBlock(BlockData(1, 1));
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(a.value(), &out).ok());
  EXPECT_EQ(dev.stats().block_writes(), 1u);
  EXPECT_EQ(dev.stats().block_reads(), 1u);
  EXPECT_EQ(dev.live_blocks(), 1u);
}

TEST(FileBlockDeviceTest, ManyBlocksPersistIndependently) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 128;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_many"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  std::vector<BlockId> ids;
  for (uint8_t i = 0; i < 50; ++i) {
    auto id = dev.WriteNewBlock(BlockData(4, i));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (uint8_t i = 0; i < 50; ++i) {
    BlockData out;
    ASSERT_TRUE(dev.ReadBlock(ids[i], &out).ok());
    EXPECT_EQ(out[0], i);
  }
}

TEST(FileBlockDeviceTest, ZeroBlockSizeRejected) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 0;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_zero"), opts);
  EXPECT_TRUE(dev_or.status().IsInvalidArgument());
}

}  // namespace
}  // namespace lsmssd
