#include "src/storage/file_block_device.h"

#include <unistd.h>

#include <cerrno>

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + std::to_string(::getpid());
}

TEST(FileBlockDeviceTest, OpenCreatesBackingFile) {
  const std::string path = TempPath("fbd_open");
  auto dev_or = FileBlockDevice::Open(path, {});
  ASSERT_TRUE(dev_or.ok()) << dev_or.status().ToString();
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);
}

TEST(FileBlockDeviceTest, RemovesFileOnClose) {
  const std::string path = TempPath("fbd_rm");
  {
    auto dev_or = FileBlockDevice::Open(path, {});
    ASSERT_TRUE(dev_or.ok());
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(FileBlockDeviceTest, WriteReadRoundTrip) {
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_rw"), {});
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  BlockData payload(100, 0xab);
  auto id = dev.WriteNewBlock(payload);
  ASSERT_TRUE(id.ok());
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(id.value(), &out).ok());
  ASSERT_EQ(out.size(), dev.block_size());
  EXPECT_EQ(out[0], 0xab);
  EXPECT_EQ(out[99], 0xab);
  EXPECT_EQ(out[100], 0);  // Padding.
}

TEST(FileBlockDeviceTest, SlotsAreRecycledAfterFree) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 512;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_recycle"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  auto a = dev.WriteNewBlock(BlockData(1, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(dev.FreeBlock(a.value()).ok());
  auto b = dev.WriteNewBlock(BlockData(1, 2));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // Freed slot reused.
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(b.value(), &out).ok());
  EXPECT_EQ(out[0], 2);
}

TEST(FileBlockDeviceTest, ReadAfterFreeFails) {
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_raf"), {});
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();
  auto id = dev.WriteNewBlock(BlockData(1, 1));
  ASSERT_TRUE(dev.FreeBlock(id.value()).ok());
  BlockData out;
  EXPECT_TRUE(dev.ReadBlock(id.value(), &out).IsNotFound());
}

TEST(FileBlockDeviceTest, OversizedPayloadRejected) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_big"), opts);
  ASSERT_TRUE(dev_or.ok());
  EXPECT_TRUE(dev_or.value()
                  ->WriteNewBlock(BlockData(65, 0))
                  .status()
                  .IsInvalidArgument());
}

TEST(FileBlockDeviceTest, StatsTrackIo) {
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_stats"), {});
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();
  auto a = dev.WriteNewBlock(BlockData(1, 1));
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(a.value(), &out).ok());
  EXPECT_EQ(dev.stats().block_writes(), 1u);
  EXPECT_EQ(dev.stats().block_reads(), 1u);
  EXPECT_EQ(dev.live_blocks(), 1u);
}

TEST(FileBlockDeviceTest, ManyBlocksPersistIndependently) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 128;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_many"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  std::vector<BlockId> ids;
  for (uint8_t i = 0; i < 50; ++i) {
    auto id = dev.WriteNewBlock(BlockData(4, i));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (uint8_t i = 0; i < 50; ++i) {
    BlockData out;
    ASSERT_TRUE(dev.ReadBlock(ids[i], &out).ok());
    EXPECT_EQ(out[0], i);
  }
}

TEST(FileBlockDeviceTest, ZeroBlockSizeRejected) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 0;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_zero"), opts);
  EXPECT_TRUE(dev_or.status().IsInvalidArgument());
}

TEST(FileBlockDeviceBatchTest, WriteBlocksCoalescesContiguousRunIntoTwoSyscalls) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 128;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_batchw"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  std::vector<BlockData> blocks;
  for (uint8_t i = 0; i < 8; ++i) blocks.push_back(BlockData(16, i));
  std::vector<BlockId> ids;
  ASSERT_TRUE(dev.WriteBlocks(blocks, &ids).ok());
  ASSERT_EQ(ids.size(), 8u);
  // Fresh device => 8 consecutive tail slots => one pwritev + one packed
  // sidecar pwrite. Per-block writes would cost 16 syscalls.
  EXPECT_EQ(dev.stats().write_syscalls(), 2u);
  EXPECT_EQ(dev.stats().block_writes(), 8u);
  EXPECT_EQ(dev.stats().batch_writes(), 1u);
  EXPECT_EQ(dev.stats().batched_blocks_written(), 8u);

  std::vector<BlockData> out;
  ASSERT_TRUE(dev.ReadBlocks(ids, &out).ok());
  EXPECT_EQ(dev.stats().read_syscalls(), 1u);  // One preadv for the run.
  EXPECT_EQ(dev.stats().block_reads(), 8u);
  for (uint8_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i][0], i);
    EXPECT_EQ(out[i].size(), dev.block_size());
  }
}

TEST(FileBlockDeviceBatchTest, AllocatesSameSlotsAsPerBlockWritesAscending) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_batchorder"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  // Build a free list: slots 1..4 live, free 2 then 4 (LIFO order 4, 2).
  std::vector<BlockId> first;
  for (uint8_t i = 1; i <= 4; ++i) {
    auto id = dev.WriteNewBlock(BlockData(1, i));
    ASSERT_TRUE(id.ok());
    first.push_back(id.value());
  }
  ASSERT_TRUE(dev.FreeBlock(first[1]).ok());
  ASSERT_TRUE(dev.FreeBlock(first[3]).ok());

  // A batch of 3 takes the same slot set three WriteNewBlock calls would
  // (freed 4 and 2, then tail 5), assigned in ascending order so any runs
  // among them coalesce.
  std::vector<BlockId> ids;
  ASSERT_TRUE(
      dev.WriteBlocks({BlockData(1, 9), BlockData(1, 8), BlockData(1, 7)},
                      &ids)
          .ok());
  EXPECT_EQ(ids, (std::vector<BlockId>{first[1], first[3], 5u}));
  for (size_t i = 0; i < ids.size(); ++i) {
    BlockData out;
    ASSERT_TRUE(dev.ReadBlock(ids[i], &out).ok());
    EXPECT_EQ(out[0], 9 - i);
  }
}

TEST(FileBlockDeviceBatchTest, FreedRunReformsAndCoalesces) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_batchrefree"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  // Occupy slots 1..4, then free 2,3,4 in merge-like order (oldest first).
  std::vector<BlockId> first;
  for (uint8_t i = 1; i <= 4; ++i) {
    auto id = dev.WriteNewBlock(BlockData(1, i));
    ASSERT_TRUE(id.ok());
    first.push_back(id.value());
  }
  for (size_t i = 1; i < 4; ++i) ASSERT_TRUE(dev.FreeBlock(first[i]).ok());
  const uint64_t syscalls_before = dev.stats().write_syscalls();

  // The batch pops 4,3,2 off the LIFO free list but writes them ascending:
  // one contiguous run => one pwritev + one packed sidecar pwrite.
  std::vector<BlockId> ids;
  ASSERT_TRUE(
      dev.WriteBlocks({BlockData(1, 9), BlockData(1, 8), BlockData(1, 7)},
                      &ids)
          .ok());
  EXPECT_EQ(ids, (std::vector<BlockId>{first[1], first[2], first[3]}));
  EXPECT_EQ(dev.stats().write_syscalls(), syscalls_before + 2);
  for (size_t i = 0; i < ids.size(); ++i) {
    BlockData out;
    ASSERT_TRUE(dev.ReadBlock(ids[i], &out).ok());
    EXPECT_EQ(out[0], 9 - i);
  }
}

TEST(FileBlockDeviceBatchTest, WriteBlocksIsAllOrNothingOnInjectedError) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_batcherr"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();

  auto keep = dev.WriteNewBlock(BlockData(1, 1));
  ASSERT_TRUE(keep.ok());
  dev.InjectWriteFaultForTesting(ENOSPC);
  std::vector<BlockId> ids;
  Status st = dev.WriteBlocks({BlockData(1, 2), BlockData(1, 3)}, &ids);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(ids.empty());
  EXPECT_EQ(dev.live_blocks(), 1u);
  EXPECT_EQ(dev.stats().block_writes(), 1u);  // Only the pre-fault write.

  // Slots allocated for the failed batch were returned; the next batch
  // reuses them and the device stays fully functional.
  ASSERT_TRUE(dev.WriteBlocks({BlockData(1, 2), BlockData(1, 3)}, &ids).ok());
  ASSERT_EQ(ids.size(), 2u);
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(ids[0], &out).ok());
  EXPECT_EQ(out[0], 2);
}

TEST(FileBlockDeviceBatchTest, ExceedingCapIsResourceExhausted) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  opts.max_blocks = 2;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_batchcap"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();
  std::vector<BlockId> ids;
  Status st = dev.WriteBlocks(
      {BlockData(1, 1), BlockData(1, 2), BlockData(1, 3)}, &ids);
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_EQ(dev.live_blocks(), 0u);
}

TEST(FileBlockDeviceBatchTest, ReadBlocksVerifiesEachBlockChecksum) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_batchcrc"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();
  std::vector<BlockId> ids;
  ASSERT_TRUE(dev.WriteBlocks(
                     {BlockData(1, 1), BlockData(1, 2), BlockData(1, 3)}, &ids)
                  .ok());
  ASSERT_TRUE(dev.CorruptBlockForTesting(ids[1], BlockData(1, 0xee)).ok());
  std::vector<BlockData> out;
  Status st = dev.ReadBlocks(ids, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find(std::to_string(ids[1])), std::string::npos);
}

TEST(FileBlockDeviceBatchTest, ReadBlocksFallsBackPerBlockUnderFaults) {
  FileBlockDevice::FileOptions opts;
  opts.block_size = 64;
  auto dev_or = FileBlockDevice::Open(TempPath("fbd_batchfault"), opts);
  ASSERT_TRUE(dev_or.ok());
  auto& dev = *dev_or.value();
  std::vector<BlockId> ids;
  ASSERT_TRUE(dev.WriteBlocks(
                     {BlockData(1, 1), BlockData(1, 2), BlockData(1, 3)}, &ids)
                  .ok());
  // With the transient-fault seam armed the device must take the per-block
  // retrying path (the fault fires once per block, then retries succeed).
  dev.InjectReadFaultsForTesting(2);
  std::vector<BlockData> out;
  ASSERT_TRUE(dev.ReadBlocks(ids, &out).ok());
  EXPECT_GE(dev.read_retries(), 2u);
  for (uint8_t i = 0; i < 3; ++i) EXPECT_EQ(out[i][0], i + 1);
}

}  // namespace
}  // namespace lsmssd
