#include "src/storage/fault_injection.h"

#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "src/storage/fault_injection_block_device.h"
#include "src/storage/fault_injection_wal_file.h"
#include "src/storage/mem_block_device.h"
#include "src/storage/wal_file.h"

namespace lsmssd {
namespace {

std::string TmpPath(const char* tag) {
  return ::testing::TempDir() + "/fi_" + tag + std::to_string(::getpid());
}

std::string ReadFileOrDie(const std::string& path) {
  FILE* f = ::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = ::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  ::fclose(f);
  return out;
}

TEST(FaultInjectorTest, DisarmedNeverFails) {
  FaultInjector fi;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fi.Step());
  EXPECT_EQ(fi.steps(), 100u);
  EXPECT_FALSE(fi.tripped());
}

TEST(FaultInjectorTest, ArmedFailsAtStepAndStaysTripped) {
  FaultInjector fi;
  fi.Arm(3);
  EXPECT_FALSE(fi.Step());  // step 0
  EXPECT_FALSE(fi.Step());  // step 1
  EXPECT_FALSE(fi.Step());  // step 2
  EXPECT_TRUE(fi.Step());   // step 3: the crash
  EXPECT_TRUE(fi.tripped());
  // A dead process never comes back on its own.
  EXPECT_TRUE(fi.Step());
  EXPECT_TRUE(fi.Step());
}

TEST(FaultInjectorTest, DisarmModelsTheRecoveryProcess) {
  FaultInjector fi;
  fi.Arm(0);
  EXPECT_TRUE(fi.Step());
  EXPECT_TRUE(fi.tripped());
  fi.Disarm();  // "Reboot": the recovering process runs fault-free.
  EXPECT_FALSE(fi.tripped());
  EXPECT_FALSE(fi.Step());
}

TEST(FaultInjectionBlockDeviceTest, PassesThroughWhenDisarmed) {
  MemBlockDevice base(256);
  FaultInjector fi;
  FaultInjectionBlockDevice dev(&base, &fi);
  auto id = dev.WriteNewBlock(BlockData(10, 'x'));
  ASSERT_TRUE(id.ok());
  BlockData out;
  ASSERT_TRUE(dev.ReadBlock(id.value(), &out).ok());
  EXPECT_EQ(out[0], 'x');
  ASSERT_TRUE(dev.FreeBlock(id.value()).ok());
  EXPECT_EQ(dev.live_blocks(), 0u);
}

TEST(FaultInjectionBlockDeviceTest, TripLeavesTornBlockAndKillsDevice) {
  MemBlockDevice base(256);
  FaultInjector fi;
  FaultInjectionBlockDevice dev(&base, &fi);
  auto ok_id = dev.WriteNewBlock(BlockData(256, 'a'));
  ASSERT_TRUE(ok_id.ok());

  fi.Arm(0);  // Arm resets the step clock: the next step crashes.
  auto bad = dev.WriteNewBlock(BlockData(256, 'b'));
  EXPECT_TRUE(bad.status().IsIoError());
  // The torn block *is* on the base device (garbage a crash leaves
  // behind), but its id never reached the caller.
  EXPECT_EQ(base.live_blocks(), 2u);

  // The process is dead: reads fail too.
  BlockData out;
  EXPECT_TRUE(dev.ReadBlock(ok_id.value(), &out).IsIoError());
  EXPECT_TRUE(dev.ReadBlockShared(ok_id.value()).status().IsIoError());
  EXPECT_TRUE(dev.Flush().IsIoError());
  EXPECT_TRUE(dev.FreeBlock(ok_id.value()).IsIoError());
}

TEST(FaultInjectionWalFileTest, UnsyncedAppendsLiveInTheBuffer) {
  const std::string path = TmpPath("buf");
  auto base = PosixWalFile::Open(path);
  ASSERT_TRUE(base.ok());
  FaultInjector fi;
  FaultInjectionWalFile wal(std::move(base).value(), &fi);

  ASSERT_TRUE(wal.Append("hello").ok());
  ASSERT_TRUE(wal.Append("world").ok());
  EXPECT_EQ(wal.unsynced_bytes(), 10u);
  // Nothing reached the file yet: this is the page-cache model.
  EXPECT_EQ(ReadFileOrDie(path).size(), 0u);

  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.unsynced_bytes(), 0u);
  EXPECT_EQ(ReadFileOrDie(path), "helloworld");
  ::unlink(path.c_str());
}

TEST(FaultInjectionWalFileTest, CrashDuringSyncTearsTheLog) {
  const std::string path = TmpPath("torn");
  auto base = PosixWalFile::Open(path);
  ASSERT_TRUE(base.ok());
  FaultInjector fi;
  FaultInjectionWalFile wal(std::move(base).value(), &fi);

  ASSERT_TRUE(wal.Append("0123456789").ok());
  fi.Arm(0);  // The Sync itself crashes.
  EXPECT_TRUE(wal.Sync().IsIoError());
  // A *prefix* of the buffered bytes hit the file: a torn tail.
  const std::string on_disk = ReadFileOrDie(path);
  EXPECT_GT(on_disk.size(), 0u);
  EXPECT_LT(on_disk.size(), 10u);
  EXPECT_EQ(on_disk, std::string("0123456789").substr(0, on_disk.size()));

  // Dead afterwards.
  EXPECT_TRUE(wal.Append("x").IsIoError());
  EXPECT_TRUE(wal.Truncate().IsIoError());
  ::unlink(path.c_str());
}

TEST(FaultInjectionWalFileTest, CrashDuringAppendLosesOnlyThatAppend) {
  const std::string path = TmpPath("app");
  auto base = PosixWalFile::Open(path);
  ASSERT_TRUE(base.ok());
  FaultInjector fi;
  FaultInjectionWalFile wal(std::move(base).value(), &fi);

  ASSERT_TRUE(wal.Append("keep").ok());
  ASSERT_TRUE(wal.Sync().ok());
  fi.Arm(0);
  EXPECT_TRUE(wal.Append("lost").IsIoError());
  EXPECT_EQ(ReadFileOrDie(path), "keep");  // Synced data is untouched.
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace lsmssd
