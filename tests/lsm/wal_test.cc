#include "src/lsm/wal.h"

#include <unistd.h>

#include <fstream>

#include <gtest/gtest.h>

#include "src/lsm/manifest.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

std::string WalPath(const char* tag) {
  return ::testing::TempDir() + "/wal_" + tag + std::to_string(::getpid());
}

TEST(WalTest, AppendAndReadBack) {
  const std::string path = WalPath("rt");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(1, "hello")).ok());
    ASSERT_TRUE(writer.value()->Append(Record::Tombstone(2)).ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(3, "world")).ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  auto records = WalReader::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0], Record::Put(1, "hello"));
  EXPECT_EQ((*records)[1], Record::Tombstone(2));
  EXPECT_EQ((*records)[2], Record::Put(3, "world"));
  ::unlink(path.c_str());
}

TEST(WalTest, MissingFileMeansNothingToReplay) {
  auto records = WalReader::ReadAll("/does/not/exist.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, AppendSurvivesReopen) {
  const std::string path = WalPath("reopen");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.value()->Append(Record::Put(1, "a")).ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  {
    auto writer = WalWriter::Open(path);  // Appends, not truncates.
    ASSERT_TRUE(writer.value()->Append(Record::Put(2, "b")).ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  auto records = WalReader::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  ::unlink(path.c_str());
}

TEST(WalTest, TruncateEmptiesLog) {
  const std::string path = WalPath("trunc");
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.value()->Append(Record::Put(1, "a")).ok());
  ASSERT_TRUE(writer.value()->Truncate().ok());
  ASSERT_TRUE(writer.value()->Append(Record::Put(2, "b")).ok());
  ASSERT_TRUE(writer.value()->Sync().ok());
  auto records = WalReader::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].key, 2u);
  ::unlink(path.c_str());
}

TEST(WalTest, TornTailIsDropped) {
  const std::string path = WalPath("torn");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.value()->Append(Record::Put(1, "aaaa")).ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(2, "bbbb")).ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  // Chop bytes off the end, simulating a crash mid-append.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 5));
  }
  auto records = WalReader::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);  // Complete first entry only.
  EXPECT_EQ((*records)[0].key, 1u);
  ::unlink(path.c_str());
}

TEST(WalTest, CorruptChecksumStopsReplay) {
  const std::string path = WalPath("crc");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.value()->Append(Record::Put(1, "aaaa")).ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(2, "bbbb")).ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  data[data.size() - 2] ^= 0x5a;  // Corrupt the *second* entry's payload.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  auto records = WalReader::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
  ::unlink(path.c_str());
}

TEST(WalTest, MidFileCorruptionIsSurfacedNotTruncated) {
  // A bad frame with intact entries *behind* it is not a torn tail:
  // stopping there would silently discard synced, acknowledged data, so
  // the reader must refuse with Corruption. Flip one byte at every
  // offset of the first two entries; the third stays well-formed.
  const std::string path = WalPath("midcorrupt");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(1, "aaaa")).ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(2, "bbbb")).ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(3, "cccc")).ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  const size_t entry_size = 8 + 9 + 4;
  ASSERT_EQ(data.size(), 3 * entry_size);
  for (size_t off = 0; off < 2 * entry_size; ++off) {
    SCOPED_TRACE("flip at " + std::to_string(off));
    std::string bad = data;
    bad[off] ^= 0x5a;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    auto records = WalReader::ReadAll(path);
    EXPECT_TRUE(records.status().IsCorruption())
        << records.status().ToString();
  }
  ::unlink(path.c_str());
}

TEST(WalTest, TornTailFuzzEveryTruncationOffset) {
  // A crash can cut the log at *any* byte. Recovery must return exactly
  // the complete entries before the cut — never an error, never a
  // half-applied entry, never anything after the tear.
  const std::string path = WalPath("fuzztrunc");
  const Record kEntries[] = {
      Record::Put(11, "aaaa"),
      Record::Tombstone(22),
      Record::Put(33, "cccccc"),
  };
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const Record& r : kEntries) {
      ASSERT_TRUE(writer.value()->Append(r).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Framed size of entry i: 8-byte header + 1 type + 8 key + payload.
  const size_t sizes[] = {8 + 9 + 4, 8 + 9 + 0, 8 + 9 + 6};
  ASSERT_EQ(data.size(), sizes[0] + sizes[1] + sizes[2]);

  for (size_t cut = 0; cut < data.size(); ++cut) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(data.data(), static_cast<std::streamsize>(cut));
    }
    size_t expect = 0;
    if (cut >= sizes[0]) ++expect;
    if (cut >= sizes[0] + sizes[1]) ++expect;
    if (cut >= data.size()) ++expect;  // Unreachable; documents intent.
    auto records = WalReader::ReadAll(path);
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    ASSERT_EQ(records->size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ((*records)[i], kEntries[i]);
    }
  }
  ::unlink(path.c_str());
}

TEST(WalTest, TornTailFuzzEveryBitFlipInFinalEntry) {
  // Corruption anywhere in the final entry (bit rot, torn sector) must
  // drop that entry and keep the intact prefix — never crash, never
  // return a mangled record.
  const std::string path = WalPath("fuzzflip");
  const Record kKept[] = {Record::Put(1, "xxxx"), Record::Put(2, "yyyy")};
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const Record& r : kKept) ASSERT_TRUE(writer.value()->Append(r).ok());
    ASSERT_TRUE(writer.value()->Append(Record::Put(3, "zzzz")).ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  const size_t entry_size = 8 + 9 + 4;
  const size_t final_start = data.size() - entry_size;
  for (size_t off = final_start; off < data.size(); ++off) {
    for (const char mask : {char(0x01), char(0xA5), char(0xFF)}) {
      SCOPED_TRACE("flip at " + std::to_string(off));
      std::string bad = data;
      bad[off] ^= mask;
      {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
      }
      auto records = WalReader::ReadAll(path);
      ASSERT_TRUE(records.ok()) << records.status().ToString();
      ASSERT_EQ(records->size(), 2u);
      EXPECT_EQ((*records)[0], kKept[0]);
      EXPECT_EQ((*records)[1], kKept[1]);
    }
  }
  ::unlink(path.c_str());
}

TEST(WalTest, CheckpointPlusWalRecoversExactState) {
  // The full recovery protocol: snapshot a tree, keep logging into the
  // WAL, "crash", then Restore(manifest) + replay WAL and compare.
  const std::string wal_path = WalPath("recover");
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);

  // Phase 1: checkpointed history. The device clone is the point-in-time
  // "persistent" device image the crashed process would find on disk.
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  const std::string manifest_bytes = EncodeManifest(*fx.tree);
  std::unique_ptr<MemBlockDevice> device_image = fx.device.Clone();

  // Phase 2: post-checkpoint writes, logged to the WAL.
  auto writer = WalWriter::Open(wal_path);
  ASSERT_TRUE(writer.ok());
  // NOTE: replay applies to the *restored* tree, so only L0-bound requests
  // after the checkpoint go to the WAL — exactly the protocol.
  std::vector<Record> tail;
  for (Key k = 0; k < 30; ++k) {
    const Record r = (k % 3 == 0)
                         ? Record::Tombstone(k * 3)
                         : Record::Put(9'000 + k, MakePayload(options, k));
    ASSERT_TRUE(writer.value()->Append(r).ok());
    tail.push_back(r);
  }
  ASSERT_TRUE(writer.value()->Sync().ok());

  // Apply the same tail to the live tree (the "real" execution).
  for (const Record& r : tail) {
    if (r.is_tombstone()) {
      ASSERT_TRUE(fx.tree->Delete(r.key).ok());
    } else {
      ASSERT_TRUE(fx.tree->Put(r.key, r.payload).ok());
    }
  }

  // Phase 3: crash + recover against the checkpoint-time device image.
  auto manifest = DecodeManifest(manifest_bytes);
  ASSERT_TRUE(manifest.ok());
  auto recovered_or =
      LsmTree::Restore(manifest.value(), device_image.get(),
                       CreatePolicy(PolicyKind::kChooseBest));
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  LsmTree& recovered = *recovered_or.value();
  auto replay = WalReader::ReadAll(wal_path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->size(), tail.size());
  for (const Record& r : replay.value()) {
    if (r.is_tombstone()) {
      ASSERT_TRUE(recovered.Delete(r.key).ok());
    } else {
      ASSERT_TRUE(recovered.Put(r.key, r.payload).ok());
    }
  }

  // The recovered tree answers every query like the live one.
  for (Key k = 0; k < 1600; ++k) {
    auto a = fx.tree->Get(k);
    auto b = recovered.Get(k);
    ASSERT_EQ(a.ok(), b.ok()) << "key " << k;
    if (a.ok()) {
      EXPECT_EQ(a.value(), b.value());
    }
  }
  for (Key k = 9'000; k < 9'030; ++k) {
    auto a = fx.tree->Get(k);
    auto b = recovered.Get(k);
    ASSERT_EQ(a.ok(), b.ok()) << "key " << k;
  }
  ::unlink(wal_path.c_str());
}

}  // namespace
}  // namespace lsmssd
