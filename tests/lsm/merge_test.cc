#include "src/lsm/merge.h"

#include <gtest/gtest.h>

#include "src/storage/mem_block_device.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

class MergeTest : public ::testing::Test {
 protected:
  MergeTest() : options_(TinyOptions()), device_(options_.block_size) {}

  std::string Payload(char c) { return std::string(options_.payload_size, c); }

  void AddLeaf(Level* level, const std::vector<Record>& records) {
    auto id = device_.WriteNewBlock(EncodeRecordBlock(options_, records));
    ASSERT_TRUE(id.ok());
    LeafMeta meta;
    meta.block = id.value();
    meta.min_key = records.front().key;
    meta.max_key = records.back().key;
    meta.count = static_cast<uint32_t>(records.size());
    level->AppendLeaf(meta);
  }

  std::vector<Record> Puts(std::initializer_list<Key> keys, char c = 'p') {
    std::vector<Record> out;
    for (Key k : keys) out.push_back(Record::Put(k, Payload(c)));
    return out;
  }

  std::vector<Record> AllRecords(const Level& level) {
    std::vector<Record> out;
    for (size_t i = 0; i < level.num_leaves(); ++i) {
      auto leaf = level.ReadLeaf(i);
      EXPECT_TRUE(leaf.ok());
      for (auto& r : leaf.value()) out.push_back(std::move(r));
    }
    return out;
  }

  Options options_;
  MemBlockDevice device_;
};

TEST_F(MergeTest, L0IntoEmptyLevelPacksBlocks) {
  Level target(options_, &device_, 1);
  MergeExecutor exec(options_, &device_, &target, /*bottom=*/true,
                     /*preserve=*/true);
  std::vector<Record> records;
  for (Key k = 0; k < 25; ++k) records.push_back(Record::Put(k, Payload('a')));
  auto result = exec.Merge(MergeSource::FromL0(std::move(records)));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output_blocks_written, 3u);  // 10+10+5 with B=10.
  EXPECT_EQ(result->source_records, 25u);
  EXPECT_EQ(result->blocks_preserved, 0u);
  EXPECT_EQ(target.record_count(), 25u);
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeTest, OverlappingKeysAreConsolidated) {
  Level target(options_, &device_, 1);
  AddLeaf(&target, Puts({10, 20, 30, 40, 50, 60}, 'o'));
  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result = exec.Merge(
      MergeSource::FromL0({Record::Put(20, Payload('n')),
                           Record::Put(25, Payload('n'))}));
  ASSERT_TRUE(result.ok());
  auto records = AllRecords(target);
  ASSERT_EQ(records.size(), 7u);  // 6 + 2 - 1 duplicate.
  Record r;
  ASSERT_TRUE(target.Lookup(20, &r).ok());
  EXPECT_EQ(r.payload, Payload('n'));  // Upper level won.
  EXPECT_EQ(result->overlapping_target_blocks, 1u);
}

TEST_F(MergeTest, TombstoneAnnihilatesMatchingPut) {
  Level target(options_, &device_, 1);
  AddLeaf(&target, Puts({10, 20, 30, 40, 50, 60}));
  MergeExecutor exec(options_, &device_, &target, /*bottom=*/true, true);
  auto result = exec.Merge(MergeSource::FromL0({Record::Tombstone(30)}));
  ASSERT_TRUE(result.ok());
  Record r;
  EXPECT_TRUE(target.Lookup(30, &r).IsNotFound());
  EXPECT_EQ(target.record_count(), 5u);
}

TEST_F(MergeTest, UnmatchedTombstoneDroppedAtBottom) {
  Level target(options_, &device_, 1);
  AddLeaf(&target, Puts({10, 20, 30, 40, 50, 60}));
  MergeExecutor exec(options_, &device_, &target, /*bottom=*/true, true);
  auto result = exec.Merge(MergeSource::FromL0({Record::Tombstone(35)}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(target.record_count(), 6u);  // Tombstone vanished.
  Record r;
  EXPECT_TRUE(target.Lookup(35, &r).IsNotFound());
}

TEST_F(MergeTest, UnmatchedTombstoneSurvivesAtNonBottom) {
  Level target(options_, &device_, 1);
  AddLeaf(&target, Puts({10, 20, 30, 40, 50, 60}));
  MergeExecutor exec(options_, &device_, &target, /*bottom=*/false, true);
  auto result = exec.Merge(MergeSource::FromL0({Record::Tombstone(35)}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(target.record_count(), 7u);
  Record r;
  ASSERT_TRUE(target.Lookup(35, &r).ok());
  EXPECT_TRUE(r.is_tombstone());
}

TEST_F(MergeTest, TombstoneReplacesPutAtNonBottomByDefault) {
  Level target(options_, &device_, 1);
  AddLeaf(&target, Puts({10, 20, 30, 40, 50, 60}));
  MergeExecutor exec(options_, &device_, &target, /*bottom=*/false, true);
  auto result = exec.Merge(MergeSource::FromL0({Record::Tombstone(30)}));
  ASSERT_TRUE(result.ok());
  Record r;
  ASSERT_TRUE(target.Lookup(30, &r).ok());
  EXPECT_TRUE(r.is_tombstone());  // Kept: older versions may exist deeper.
}

TEST_F(MergeTest, TombstoneAnnihilatesAtNonBottomWithPaperRule) {
  options_.annihilate_delete_put = true;
  Level target(options_, &device_, 1);
  AddLeaf(&target, Puts({10, 20, 30, 40, 50, 60}));
  MergeExecutor exec(options_, &device_, &target, /*bottom=*/false, true);
  auto result = exec.Merge(MergeSource::FromL0({Record::Tombstone(30)}));
  ASSERT_TRUE(result.ok());
  Record r;
  EXPECT_TRUE(target.Lookup(30, &r).IsNotFound());
  EXPECT_EQ(target.record_count(), 5u);
}

TEST_F(MergeTest, LevelSourceBlocksArePreservedIntoGap) {
  // Source has a full block whose whole range falls between target keys.
  Level source(options_, &device_, 1);
  AddLeaf(&source, Puts({30, 31, 32, 33, 34, 35, 36, 37, 38, 39}, 's'));
  Level target(options_, &device_, 2);
  AddLeaf(&target, Puts({10, 11, 12, 13, 14, 15}, 't'));
  AddLeaf(&target, Puts({50, 51, 52, 53, 54, 55}, 't'));
  const BlockId source_block = source.leaf(0).block;

  // Credit the slack ledger as if earlier merges left their allowance
  // unused (at this toy scale a single merge's own allowance, epsilon *
  // delta * K * B, is below the B-1 headroom the paper's budget reserves).
  target.ledger().OnMergeStart(100.0);

  MergeExecutor exec(options_, &device_, &target, true, /*preserve=*/true);
  const uint64_t writes_before = device_.stats().block_writes();
  auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The target blocks do not overlap X's range at all, so Y is empty and
  // only the source block participates — preserved wholesale.
  EXPECT_EQ(result->blocks_preserved, 1u);
  EXPECT_EQ(result->output_blocks_written, 0u);
  EXPECT_EQ(device_.stats().block_writes(), writes_before);
  EXPECT_TRUE(source.empty());
  EXPECT_EQ(target.size_blocks(), 3u);
  EXPECT_EQ(target.leaf(1).block, source_block);  // Moved, not rewritten.
  EXPECT_TRUE(target.CheckInvariants(true).ok());
  Record r;
  EXPECT_TRUE(target.Lookup(35, &r).ok());
}

TEST_F(MergeTest, PreservationDisabledRewritesEverything) {
  Level source(options_, &device_, 1);
  AddLeaf(&source, Puts({30, 31, 32, 33, 34, 35, 36, 37, 38, 39}, 's'));
  Level target(options_, &device_, 2);
  // Both target leaves straddle X's range so they are part of Y.
  AddLeaf(&target, Puts({10, 11, 12, 13, 14, 31}, 't'));
  AddLeaf(&target, Puts({36, 50, 51, 52, 53, 55}, 't'));

  MergeExecutor exec(options_, &device_, &target, true, /*preserve=*/false);
  auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_preserved, 0u);
  EXPECT_EQ(result->overlapping_target_blocks, 2u);
  // 6+10+6 records minus the duplicate keys 31 and 36 = 20 -> 2 blocks.
  EXPECT_EQ(result->output_blocks_written, 2u);
  EXPECT_EQ(target.record_count(), 20u);
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeTest, NonOverlappingTargetBlocksPreserved) {
  // X overlaps only the middle of three target blocks; outer Y blocks are
  // not part of Y at all, and the middle is rewritten.
  Level target(options_, &device_, 1);
  AddLeaf(&target, Puts({10, 11, 12, 13, 14, 15}, 't'));
  AddLeaf(&target, Puts({20, 21, 22, 23, 24, 25}, 't'));
  AddLeaf(&target, Puts({30, 31, 32, 33, 34, 35}, 't'));

  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result = exec.Merge(MergeSource::FromL0({
      Record::Put(22, Payload('n')), Record::Put(26, Payload('n'))}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->overlapping_target_blocks, 1u);
  EXPECT_EQ(result->output_blocks_written, 1u);
  EXPECT_EQ(target.record_count(), 19u);
  // 19 records across 3 blocks leave 11 empty slots (> B), busting the
  // level-wise constraint at this toy scale: Case 4 compacts to 2 blocks.
  EXPECT_TRUE(result->target_compacted);
  EXPECT_EQ(target.size_blocks(), 2u);
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeTest, SourceRemovalSeamRepairedWhenPairwiseViolated) {
  // Source: [a][b][c] where removing b leaves a+c <= B.
  Level source(options_, &device_, 1);
  AddLeaf(&source, Puts({1, 2, 3, 4, 5}, 'a'));
  AddLeaf(&source, Puts({10, 11, 12, 13, 14, 15}, 'b'));
  AddLeaf(&source, Puts({20, 21, 22, 23, 24}, 'c'));
  Level target(options_, &device_, 2);

  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result = exec.Merge(MergeSource::FromLevel(&source, 1, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source_pairwise_repairs, 1u);
  EXPECT_EQ(result->source_maintenance_writes, 1u);
  EXPECT_EQ(source.size_blocks(), 1u);  // a+c coalesced.
  EXPECT_EQ(source.record_count(), 10u);
  EXPECT_TRUE(source.CheckInvariants(true).ok());
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeTest, MergeIntoEmptyTargetFromLevelPreservesAllBlocks) {
  Level source(options_, &device_, 1);
  AddLeaf(&source, Puts({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 'a'));
  AddLeaf(&source, Puts({11, 12, 13, 14, 15, 16, 17, 18, 19, 20}, 'b'));
  Level target(options_, &device_, 2);
  target.ledger().OnMergeStart(100.0);  // Carried-over slack (see above).

  MergeExecutor exec(options_, &device_, &target, true, true);
  const uint64_t writes_before = device_.stats().block_writes();
  auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_preserved, 2u);
  EXPECT_EQ(device_.stats().block_writes(), writes_before);
  EXPECT_EQ(target.size_blocks(), 2u);
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeTest, EmptyL0SourceRejected) {
  Level target(options_, &device_, 1);
  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result = exec.Merge(MergeSource::FromL0({}));
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(MergeTest, WasteBudgetBlocksPreservationWhenExhausted) {
  // epsilon so small that preserving a half-empty source block would bust
  // the slack budget; the merge must fall back to rewriting.
  options_.epsilon = 0.01;
  Level source(options_, &device_, 1);
  AddLeaf(&source, Puts({30, 31, 32, 33, 34}, 's'));  // 5 empty slots.
  Level target(options_, &device_, 2);
  AddLeaf(&target, Puts({10, 11, 12, 13, 14, 15, 16, 17, 18, 19}, 't'));
  AddLeaf(&target, Puts({50, 51, 52, 53, 54, 55, 56, 57, 58, 59}, 't'));

  MergeExecutor exec(options_, &device_, &target, true, /*preserve=*/true);
  auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 1));
  ASSERT_TRUE(result.ok());
  // The source block (5 empties) cannot be preserved under the tiny
  // budget; it must be rewritten.
  EXPECT_EQ(result->blocks_preserved, 0u);
  EXPECT_EQ(result->output_blocks_written, 1u);
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeTest, StatsAttributionMatchesDeviceCounts) {
  Level source(options_, &device_, 1);
  AddLeaf(&source, Puts({5, 6, 7, 8, 9, 10}, 's'));
  Level target(options_, &device_, 2);
  AddLeaf(&target, Puts({1, 2, 3, 4, 11, 12}, 't'));

  const uint64_t before = device_.stats().block_writes();
  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 1));
  ASSERT_TRUE(result.ok());
  const uint64_t device_delta = device_.stats().block_writes() - before;
  EXPECT_EQ(device_delta, result->output_blocks_written +
                              result->target_maintenance_writes +
                              result->source_maintenance_writes);
}

}  // namespace
}  // namespace lsmssd
