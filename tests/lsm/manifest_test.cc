#include "src/lsm/manifest.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/storage/file_block_device.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(ManifestTest, EncodeDecodeRoundTripEmptyTree) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  auto manifest_or = DecodeManifest(EncodeManifest(*fx.tree));
  ASSERT_TRUE(manifest_or.ok()) << manifest_or.status().ToString();
  EXPECT_TRUE(manifest_or->memtable_records.empty());
  EXPECT_TRUE(manifest_or->levels.empty());
  EXPECT_EQ(manifest_or->options.block_size, fx.options_copy.block_size);
}

TEST(ManifestTest, EncodeDecodeRoundTripPopulatedTree) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 700; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  ASSERT_TRUE(fx.tree->Delete(30).ok());

  auto manifest_or = DecodeManifest(EncodeManifest(*fx.tree));
  ASSERT_TRUE(manifest_or.ok()) << manifest_or.status().ToString();
  const Manifest& m = manifest_or.value();
  EXPECT_EQ(m.memtable_records.size(), fx.tree->memtable().size());
  ASSERT_EQ(m.levels.size(), fx.tree->num_levels() - 1);
  for (size_t i = 0; i < m.levels.size(); ++i) {
    ASSERT_EQ(m.levels[i].size(), fx.tree->level(i + 1).num_leaves());
    for (size_t j = 0; j < m.levels[i].size(); ++j) {
      EXPECT_EQ(m.levels[i][j].block, fx.tree->level(i + 1).leaf(j).block);
      EXPECT_EQ(m.levels[i][j].count, fx.tree->level(i + 1).leaf(j).count);
    }
  }
}

TEST(ManifestTest, RestoreOnSameDeviceMatchesOriginal) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 900; ++k) ASSERT_TRUE(fx.Put(k * 7 + 1).ok());
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(fx.tree->Delete(k * 7 + 1).ok());

  auto manifest_or = DecodeManifest(EncodeManifest(*fx.tree));
  ASSERT_TRUE(manifest_or.ok());
  auto restored_or = LsmTree::Restore(manifest_or.value(), &fx.device,
                                      CreatePolicy(PolicyKind::kChooseBest));
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  LsmTree& restored = *restored_or.value();

  EXPECT_EQ(restored.num_levels(), fx.tree->num_levels());
  EXPECT_EQ(restored.TotalRecords(), fx.tree->TotalRecords());
  ASSERT_TRUE(restored.CheckInvariants(true).ok());

  // Every key reads identically from both trees.
  for (Key k = 0; k < 900; ++k) {
    auto a = fx.tree->Get(k * 7 + 1);
    auto b = restored.Get(k * 7 + 1);
    ASSERT_EQ(a.ok(), b.ok()) << "key " << k * 7 + 1;
    if (a.ok()) {
      EXPECT_EQ(a.value(), b.value());
    }
  }
}

TEST(ManifestTest, RestoreRebuildsBloomFilters) {
  Options options = TinyOptions();
  options.bloom_bits_per_key = 10;
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 800; ++k) ASSERT_TRUE(fx.Put(k * 2).ok());

  auto manifest_or = DecodeManifest(EncodeManifest(*fx.tree));
  ASSERT_TRUE(manifest_or.ok());
  auto restored_or = LsmTree::Restore(manifest_or.value(), &fx.device,
                                      CreatePolicy(PolicyKind::kChooseBest));
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  LsmTree& restored = *restored_or.value();

  // Negative lookups should be answered by rebuilt filters (few reads).
  const uint64_t reads_before = fx.device.stats().block_reads();
  for (Key k = 1; k < 1000; k += 2) {
    EXPECT_TRUE(restored.Get(k).status().IsNotFound());
  }
  EXPECT_LT(fx.device.stats().block_reads() - reads_before, 60u);
}

TEST(ManifestTest, CorruptionDetected) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 300; ++k) ASSERT_TRUE(fx.Put(k).ok());
  std::string data = EncodeManifest(*fx.tree);

  {  // Flipped byte in the middle.
    std::string bad = data;
    bad[bad.size() / 2] ^= 0x40;
    EXPECT_TRUE(DecodeManifest(bad).status().IsCorruption());
  }
  {  // Truncation.
    std::string bad = data.substr(0, data.size() - 9);
    EXPECT_TRUE(DecodeManifest(bad).status().IsCorruption());
  }
  {  // Bad magic.
    std::string bad = data;
    bad[0] = 'X';
    EXPECT_TRUE(DecodeManifest(bad).status().IsCorruption());
  }
}

TEST(ManifestTest, EveryByteFlipIsDetected) {
  // The manifest is the recovery root: a corrupt one must *fail loudly*
  // (Corruption), never crash the decoder or silently round-trip. The
  // trailing checksum covers everything between the magic and itself, and
  // the magic is compared byte-for-byte, so no single-byte flip anywhere
  // may survive.
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 400; ++k) ASSERT_TRUE(fx.Put(k * 3 + 1).ok());
  ASSERT_TRUE(fx.tree->Delete(4).ok());
  const std::string data = EncodeManifest(*fx.tree);
  ASSERT_TRUE(DecodeManifest(data).ok());

  for (size_t off = 0; off < data.size(); ++off) {
    for (const char mask : {char(0x01), char(0x80)}) {
      std::string bad = data;
      bad[off] ^= mask;
      const Status st = DecodeManifest(bad).status();
      EXPECT_TRUE(st.IsCorruption())
          << "flip at " << off << " -> " << st.ToString();
    }
  }
}

TEST(ManifestTest, EveryTruncationIsDetected) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 200; ++k) ASSERT_TRUE(fx.Put(k * 5).ok());
  const std::string data = EncodeManifest(*fx.tree);
  for (size_t cut = 0; cut < data.size(); ++cut) {
    const Status st = DecodeManifest(data.substr(0, cut)).status();
    EXPECT_TRUE(st.IsCorruption())
        << "cut at " << cut << " -> " << st.ToString();
  }
}

TEST(ManifestTest, DecodeRejectsOptionsAManifestShouldNeverContain) {
  // Defense in depth: even with a colliding checksum (or a buggy writer),
  // decoded options are re-validated before the tree trusts them.
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  std::string data = EncodeManifest(*fx.tree);
  auto good = DecodeManifest(data);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->options.Validate().ok());
}

TEST(ManifestTest, SaveAndLoadFile) {
  const std::string path =
      ::testing::TempDir() + "/manifest_" + std::to_string(::getpid());
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k * 5).ok());

  ASSERT_TRUE(SaveManifestToFile(*fx.tree, path).ok());
  auto manifest_or = LoadManifestFromFile(path);
  ASSERT_TRUE(manifest_or.ok()) << manifest_or.status().ToString();
  EXPECT_EQ(manifest_or->levels.size(), fx.tree->num_levels() - 1);
  ::unlink(path.c_str());
}

TEST(ManifestTest, FullRestartCycleOnFileDevice) {
  // End-to-end restart: persistent file device + manifest, close
  // everything, reopen, verify contents.
  const std::string dev_path =
      ::testing::TempDir() + "/lsmdev_" + std::to_string(::getpid());
  const std::string manifest_path = dev_path + ".manifest";
  Options options = TinyOptions();

  std::string manifest_bytes;
  {
    FileBlockDevice::FileOptions fopts;
    fopts.block_size = options.block_size;
    fopts.remove_on_close = false;
    auto device_or = FileBlockDevice::Open(dev_path, fopts);
    ASSERT_TRUE(device_or.ok());
    auto tree_or = LsmTree::Open(options, device_or.value().get(),
                                 CreatePolicy(PolicyKind::kChooseBest));
    ASSERT_TRUE(tree_or.ok());
    LsmTree& tree = *tree_or.value();
    for (Key k = 0; k < 600; ++k) {
      ASSERT_TRUE(tree.Put(k * 11, MakePayload(options, k * 11)).ok());
    }
    ASSERT_TRUE(SaveManifestToFile(tree, manifest_path).ok());
  }  // Device closed; file persists.

  {
    auto manifest_or = LoadManifestFromFile(manifest_path);
    ASSERT_TRUE(manifest_or.ok());

    FileBlockDevice::FileOptions fopts;
    fopts.block_size = options.block_size;
    fopts.remove_on_close = true;  // Clean up at the end.
    fopts.truncate = false;
    auto device_or = FileBlockDevice::Open(dev_path, fopts);
    ASSERT_TRUE(device_or.ok());

    std::vector<BlockId> live;
    for (const auto& level : manifest_or->levels) {
      for (const auto& leaf : level) live.push_back(leaf.block);
    }
    ASSERT_TRUE(device_or.value()->RestoreLive(live).ok());

    auto tree_or =
        LsmTree::Restore(manifest_or.value(), device_or.value().get(),
                         CreatePolicy(PolicyKind::kChooseBest));
    ASSERT_TRUE(tree_or.ok()) << tree_or.status().ToString();
    LsmTree& tree = *tree_or.value();
    ASSERT_TRUE(tree.CheckInvariants(true).ok());
    for (Key k = 0; k < 600; ++k) {
      auto v = tree.Get(k * 11);
      ASSERT_TRUE(v.ok()) << "key " << k * 11;
      EXPECT_EQ(v.value(), MakePayload(options, k * 11));
    }
    // The restored tree keeps working: write more and merge.
    for (Key k = 600; k < 900; ++k) {
      ASSERT_TRUE(tree.Put(k * 11, MakePayload(options, k * 11)).ok());
    }
    ASSERT_TRUE(tree.CheckInvariants(true).ok());
  }
  ::unlink(manifest_path.c_str());
}

TEST(FileBlockDeviceTest, RestoreLiveRejectsAfterAllocation) {
  auto device_or = FileBlockDevice::Open(
      ::testing::TempDir() + "/rl_" + std::to_string(::getpid()), {});
  ASSERT_TRUE(device_or.ok());
  ASSERT_TRUE(device_or.value()->WriteNewBlock(BlockData(1, 1)).ok());
  EXPECT_FALSE(device_or.value()->RestoreLive({5}).ok());
}

}  // namespace
}  // namespace lsmssd
