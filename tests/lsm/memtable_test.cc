#include "src/lsm/memtable.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(MemtableTest, PutAndGet) {
  Memtable m;
  m.Put(3, "v3");
  m.Put(1, "v1");
  ASSERT_NE(m.Get(1), nullptr);
  EXPECT_EQ(m.Get(1)->payload, "v1");
  EXPECT_EQ(m.Get(2), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(MemtableTest, PutOverwrites) {
  Memtable m;
  m.Put(1, "old");
  m.Put(1, "new");
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.Get(1)->payload, "new");
}

TEST(MemtableTest, DeleteLogsTombstone) {
  Memtable m;
  m.Put(1, "v");
  m.Delete(1);
  ASSERT_NE(m.Get(1), nullptr);
  EXPECT_TRUE(m.Get(1)->is_tombstone());
  EXPECT_EQ(m.size(), 1u);  // Tombstone occupies a slot.

  m.Delete(9);  // Delete of an absent key still logs.
  EXPECT_TRUE(m.Get(9)->is_tombstone());
}

TEST(MemtableTest, PutRevivesTombstone) {
  Memtable m;
  m.Delete(1);
  m.Put(1, "back");
  EXPECT_FALSE(m.Get(1)->is_tombstone());
}

TEST(MemtableTest, MinMaxAndSortedKeys) {
  Memtable m;
  m.Put(50, "a");
  m.Put(10, "b");
  m.Put(30, "c");
  EXPECT_EQ(m.min_key(), 10u);
  EXPECT_EQ(m.max_key(), 50u);
  EXPECT_EQ(m.SortedKeys(), (std::vector<Key>{10, 30, 50}));
}

TEST(MemtableTest, SliceDoesNotRemove) {
  Memtable m;
  for (Key k : {10, 20, 30, 40}) m.Put(k, "v");
  auto slice = m.Slice(1, 2);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].key, 20u);
  EXPECT_EQ(slice[1].key, 30u);
  EXPECT_EQ(m.size(), 4u);
}

TEST(MemtableTest, SliceClampsToEnd) {
  Memtable m;
  for (Key k : {1, 2, 3}) m.Put(k, "v");
  EXPECT_EQ(m.Slice(2, 10).size(), 1u);
  EXPECT_TRUE(m.Slice(5, 2).empty());
}

TEST(MemtableTest, ExtractRemovesRange) {
  Memtable m;
  for (Key k : {10, 20, 30, 40, 50}) m.Put(k, "v");
  auto extracted = m.Extract(1, 3);
  ASSERT_EQ(extracted.size(), 3u);
  EXPECT_EQ(extracted.front().key, 20u);
  EXPECT_EQ(extracted.back().key, 40u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.SortedKeys(), (std::vector<Key>{10, 50}));
}

TEST(MemtableTest, ExtractAllEmpties) {
  Memtable m;
  for (Key k : {3, 1, 2}) m.Put(k, "v");
  auto all = m.ExtractAll();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key, 1u);  // Key order.
  EXPECT_EQ(all[2].key, 3u);
  EXPECT_TRUE(m.empty());
}

TEST(MemtableTest, UpperBoundIndex) {
  Memtable m;
  for (Key k : {10, 20, 30}) m.Put(k, "v");
  EXPECT_EQ(m.UpperBoundIndex(5), 0u);
  EXPECT_EQ(m.UpperBoundIndex(10), 1u);
  EXPECT_EQ(m.UpperBoundIndex(25), 2u);
  EXPECT_EQ(m.UpperBoundIndex(30), 3u);
  EXPECT_EQ(m.UpperBoundIndex(99), 3u);
}

TEST(MemtableTest, CollectRangeInclusive) {
  Memtable m;
  for (Key k : {10, 20, 30, 40}) m.Put(k, "v");
  m.Delete(30);
  std::vector<Record> out;
  m.CollectRange(20, 30, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 20u);
  EXPECT_EQ(out[1].key, 30u);
  EXPECT_TRUE(out[1].is_tombstone());  // Tombstones included (caller filters).
}

}  // namespace
}  // namespace lsmssd
