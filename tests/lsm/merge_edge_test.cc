// Edge cases of the merge engine that the main merge_test scenarios do
// not reach: empty-output merges, the in-merge final-block repair (and
// its un-preserve branch), slack accumulation across merges, and
// full-range merges.

#include <gtest/gtest.h>

#include "src/lsm/merge.h"
#include "src/storage/mem_block_device.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::AddLeafOfKeys;
using testing::TinyOptions;

class MergeEdgeTest : public ::testing::Test {
 protected:
  MergeEdgeTest() : options_(TinyOptions()), device_(options_.block_size) {}

  std::string Payload(char c) { return std::string(options_.payload_size, c); }

  Options options_;
  MemBlockDevice device_;
};

TEST_F(MergeEdgeTest, EverythingAnnihilatesLeavesEmptyRange) {
  // X carries tombstones for every record of the single Y leaf; the merge
  // output Z is empty and the target shrinks by one block.
  Level target(options_, &device_, 1);
  AddLeafOfKeys(options_, &device_, &target, {10, 20, 30, 40, 50, 60});
  MergeExecutor exec(options_, &device_, &target, /*bottom=*/true, true);

  std::vector<Record> tombs;
  for (Key k : {10, 20, 30, 40, 50, 60}) tombs.push_back(Record::Tombstone(k));
  auto result = exec.Merge(MergeSource::FromL0(std::move(tombs)));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output_blocks_written, 0u);
  EXPECT_TRUE(target.empty());
  EXPECT_EQ(device_.live_blocks(), 0u);  // Old Y block freed.
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeEdgeTest, EmptyOutputBetweenSurvivingNeighboursRepairsSeam) {
  // Annihilate one full leaf so its two half-full neighbours become
  // adjacent and jointly violate the pairwise constraint; the merge must
  // coalesce them (Case 3's removal seam). Padding with full leaves keeps
  // the initial level within the waste bound.
  Level target(options_, &device_, 1);
  for (Key base : {100, 200, 300, 400}) {  // Full padding leaves.
    std::vector<Key> keys;
    for (Key k = 0; k < 10; ++k) keys.push_back(base + k);
    AddLeafOfKeys(options_, &device_, &target, keys);
  }
  AddLeafOfKeys(options_, &device_, &target, {500, 501, 502, 503, 504});
  AddLeafOfKeys(options_, &device_, &target,
                {600, 601, 602, 603, 604, 605, 606, 607, 608, 609});
  AddLeafOfKeys(options_, &device_, &target, {700, 701, 702, 703, 704});
  for (Key base : {800, 900}) {  // More full padding.
    std::vector<Key> keys;
    for (Key k = 0; k < 10; ++k) keys.push_back(base + k);
    AddLeafOfKeys(options_, &device_, &target, keys);
  }
  ASSERT_TRUE(target.CheckInvariants(false).ok())
      << target.CheckInvariants(false).ToString();

  MergeExecutor exec(options_, &device_, &target, true, true);
  std::vector<Record> tombs;
  for (Key k = 600; k <= 609; ++k) tombs.push_back(Record::Tombstone(k));
  auto result = exec.Merge(MergeSource::FromL0(std::move(tombs)));
  ASSERT_TRUE(result.ok());
  // The 5-record survivors met at the seam (5 + 5 <= B): coalesced.
  EXPECT_EQ(result->target_pairwise_repairs, 1u);
  EXPECT_EQ(target.size_blocks(), 7u);  // 9 leaves - annihilated - coalesce.
  EXPECT_EQ(target.record_count(), 70u);
  EXPECT_TRUE(target.CheckInvariants(true).ok())
      << target.CheckInvariants(true).ToString();
}

TEST_F(MergeEdgeTest, FinalPartialBlockCoalescedWithPreservedTail) {
  // A preserved X block followed by a tiny tail of records would violate
  // the pairwise constraint; the merge's final-flush repair must rewrite
  // them as one block, un-preserving the tail block.
  Level source(options_, &device_, 1);
  AddLeafOfKeys(options_, &device_, &source,
                {30, 31, 32, 33, 34, 35, 36, 37});       // 8 records.
  AddLeafOfKeys(options_, &device_, &source, {40, 41});  // 2 records.
  // Source pairwise: 8 + 2 = 10 <= B... that's invalid; use 9+2.
  Level target(options_, &device_, 2);
  target.ledger().OnMergeStart(100.0);  // Ample carried-over slack.

  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The first block (8 records) is preserved into the empty target; the
  // trailing 2 records cannot stand alone next to it (8+2 <= 10), so the
  // repair path rewrites 10 records into one block... or preserves both
  // blocks if the pairwise check already failed at preservation time.
  // Either way the invariant must hold and no records may be lost.
  EXPECT_EQ(target.record_count(), 10u);
  EXPECT_TRUE(target.CheckInvariants(true).ok());
  EXPECT_TRUE(source.empty());
}

TEST_F(MergeEdgeTest, SlackAccumulatesAcrossMergesUntilPreservationFires) {
  // epsilon * X-capacity = 0.2 * 10 = 2 slack per merge; preserving a
  // full block needs w <= allowance - B + 1, i.e. allowance >= 9. The
  // fifth merge's accumulated allowance (10) finally permits preservation.
  Level target(options_, &device_, 2);
  uint64_t preserved_total = 0;
  for (int round = 0; round < 5; ++round) {
    Level source(options_, &device_, 1);
    // Disjoint, gap-free full blocks far apart from previous rounds.
    const Key base = 1000 * (round + 1);
    AddLeafOfKeys(options_, &device_, &source,
                  {base, base + 1, base + 2, base + 3, base + 4, base + 5,
                   base + 6, base + 7, base + 8, base + 9});
    MergeExecutor exec(options_, &device_, &target, true, true);
    auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 1));
    ASSERT_TRUE(result.ok());
    preserved_total += result->blocks_preserved;
  }
  EXPECT_GT(preserved_total, 0u);  // Carried-over slack eventually allows it.
  EXPECT_LT(preserved_total, 5u);  // But not from the first merge.
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeEdgeTest, FullMergeCoversEntireTargetRange) {
  Level source(options_, &device_, 1);
  AddLeafOfKeys(options_, &device_, &source, {5, 15, 25, 35, 45, 55});
  Level target(options_, &device_, 2);
  AddLeafOfKeys(options_, &device_, &target, {1, 10, 20, 30, 40, 50});
  AddLeafOfKeys(options_, &device_, &target, {60, 70, 80, 90, 95, 99});

  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result =
      exec.Merge(MergeSource::FromLevel(&source, 0, source.num_leaves()));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->overlapping_target_blocks, 1u);  // [5,55] hits leaf 0.
  EXPECT_EQ(target.record_count(), 18u);
  EXPECT_TRUE(source.empty());
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeEdgeTest, InterleavedKeysForceFullRewrite) {
  // X and Y interleave record-by-record: no preservation opportunity can
  // exist, and output must be perfectly packed.
  Level source(options_, &device_, 1);
  AddLeafOfKeys(options_, &device_, &source,
                {1, 3, 5, 7, 9, 11, 13, 15, 17, 19});
  Level target(options_, &device_, 2);
  AddLeafOfKeys(options_, &device_, &target,
                {0, 2, 4, 6, 8, 10, 12, 14, 16, 18});

  MergeExecutor exec(options_, &device_, &target, true, true);
  auto result = exec.Merge(MergeSource::FromLevel(&source, 0, 1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_preserved, 0u);
  EXPECT_EQ(result->output_blocks_written, 2u);  // 20 records, B=10.
  EXPECT_EQ(target.leaf(0).count, 10u);
  EXPECT_EQ(target.leaf(1).count, 10u);
  EXPECT_TRUE(target.CheckInvariants(true).ok());
}

TEST_F(MergeEdgeTest, LedgerNetIncreaseTracksRealEmptySlots) {
  Level target(options_, &device_, 2);
  Level source(options_, &device_, 1);
  AddLeafOfKeys(options_, &device_, &source, {1, 2, 3, 4, 5, 6, 7});
  MergeExecutor exec(options_, &device_, &target, true, true);
  ASSERT_TRUE(exec.Merge(MergeSource::FromLevel(&source, 0, 1)).ok());
  // One 7-record block in the target: 3 empty slots, and the ledger's net
  // increase must say exactly that.
  EXPECT_EQ(target.empty_slots(), 3u);
  EXPECT_EQ(target.ledger().net_increase(), 3);
  EXPECT_EQ(target.ledger().merges_since_compaction(), 1u);
}

}  // namespace
}  // namespace lsmssd
