// Tree-level degradation tests: a corrupt leaf surfaces as Corruption from
// lookups, scans, and merges without poisoning the rest of the tree, and a
// full device aborts merges atomically — no leaked blocks, every pre-merge
// record still readable, and a later merge succeeds once capacity returns.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/lsm/lsm_tree.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

// Grows the tree until it holds at least `min_leaves` leaves in L1+.
void Grow(TreeFixture* fx, size_t min_leaves, Key* next_key) {
  while (true) {
    size_t leaves = 0;
    for (size_t i = 1; i < fx->tree->num_levels(); ++i) {
      leaves += fx->tree->level(i).num_leaves();
    }
    if (leaves >= min_leaves) return;
    ASSERT_TRUE(fx->Put((*next_key)++).ok());
  }
}

TEST(IntegrityDegradationTest, CorruptLeafSurfacesFromGetAndScan) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  Key next_key = 1;
  Grow(&fx, 3, &next_key);

  // Corrupt the first leaf of the deepest level.
  const size_t deepest = fx.tree->num_levels() - 1;
  const LeafMeta leaf = fx.tree->level(deepest).leaf(0);
  BlockData image;
  ASSERT_TRUE(
      fx.device.ReadBlockUnverifiedForTesting(leaf.block, &image).ok());
  image[image.size() / 2] ^= 0x01;
  ASSERT_TRUE(fx.device.CorruptBlockForTesting(leaf.block, image).ok());

  // A lookup that must consult the damaged leaf reports Corruption.
  // (Keys shadowed by upper levels may still succeed; probe until the
  // lookup actually reaches the leaf.)
  bool saw_corruption = false;
  for (Key k = leaf.min_key; k <= leaf.max_key; ++k) {
    auto got = fx.tree->Get(k);
    if (got.status().IsCorruption()) {
      saw_corruption = true;
      EXPECT_NE(got.status().ToString().find(std::to_string(leaf.block)),
                std::string::npos)
          << got.status().ToString();
      break;
    }
    ASSERT_TRUE(got.ok() || got.status().IsNotFound())
        << got.status().ToString();
  }
  EXPECT_TRUE(saw_corruption);

  // A scan across the damaged range fails with Corruption, not wrong data.
  std::vector<std::pair<Key, std::string>> out;
  EXPECT_TRUE(
      fx.tree->Scan(leaf.min_key, leaf.max_key, &out).IsCorruption());

  // The rest of the tree still answers: fresh writes and reads succeed.
  ASSERT_TRUE(fx.tree->Get(next_key - 1).ok());
  const Key probe = next_key;
  ASSERT_TRUE(fx.Put(next_key++).ok());
  EXPECT_TRUE(fx.tree->Get(probe).ok());
}

TEST(IntegrityDegradationTest, MergeIntoCorruptLeafAbortsAtomically) {
  Options options = TinyOptions();
  options.preserve_blocks = false;  // Force the merge to read target leaves.
  TreeFixture fx(options, PolicyKind::kFull);
  Key next_key = 1;
  Grow(&fx, 2, &next_key);

  // Corrupt a leaf in L1 — the target of the next L0 merge.
  const LeafMeta leaf = fx.tree->level(1).leaf(0);
  BlockData image;
  ASSERT_TRUE(
      fx.device.ReadBlockUnverifiedForTesting(leaf.block, &image).ok());
  image[0] ^= 0x80;
  ASSERT_TRUE(fx.device.CorruptBlockForTesting(leaf.block, image).ok());

  const uint64_t live_before = fx.device.live_blocks();

  // Drive overwrites of keys inside the damaged leaf's range (so the next
  // L0 merge must read it) interleaved with fresh keys (so L0 actually
  // fills up — the leaf range alone holds too few distinct keys to ever
  // trigger a merge). The merge trips over the corruption.
  Status st;
  Key last_written = 0;
  for (int i = 0; i < 1000 && st.ok(); ++i) {
    last_written = leaf.min_key + static_cast<Key>(i) %
                                      (leaf.max_key - leaf.min_key + 1);
    st = fx.Put(last_written);
    if (st.ok()) st = fx.Put(next_key++);
  }
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();

  // Abort was atomic: no leaked output blocks (the corrupt leaf itself is
  // still live and still referenced), and the failing write — like every
  // record buffered in L0 — is still in the tree, shadowing the leaf.
  EXPECT_EQ(fx.device.live_blocks(), live_before);
  EXPECT_TRUE(fx.tree->Get(last_written).ok());
  ASSERT_TRUE(fx.tree->CheckInvariants(false).ok());
}

TEST(IntegrityDegradationTest, FullDeviceAbortsMergeAtomically) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  Key next_key = 1;
  Grow(&fx, 4, &next_key);

  // Freeze the device at its current occupancy: the next merge's first
  // allocation fails with ResourceExhausted.
  fx.device.set_max_blocks(fx.device.live_blocks());
  const uint64_t live_before = fx.device.live_blocks();

  // Record everything the tree holds right now.
  std::vector<std::pair<Key, std::string>> before;
  ASSERT_TRUE(fx.tree->Scan(0, next_key, &before).ok());

  // Write until a merge is attempted and fails.
  Status st;
  Key first_failed = 0;
  for (int i = 0; i < 1000 && st.ok(); ++i) {
    first_failed = next_key;
    st = fx.Put(next_key++);
  }
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();

  // No partial outputs leaked; the un-merged tree is fully readable.
  EXPECT_EQ(fx.device.live_blocks(), live_before);
  for (const auto& [key, value] : before) {
    auto got = fx.tree->Get(key);
    ASSERT_TRUE(got.ok()) << "key " << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), value);
  }
  // The failed Put's record is in L0 (the caller may retry or backoff; the
  // write itself was buffered before the merge was attempted).
  EXPECT_TRUE(fx.tree->Get(first_failed).ok());
  ASSERT_TRUE(fx.tree->CheckInvariants(false).ok());

  // Raise capacity: the retried merge goes through and the tree drains L0.
  fx.device.set_max_blocks(0);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(fx.Put(next_key++).ok());
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  for (const auto& [key, value] : before) {
    auto got = fx.tree->Get(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    EXPECT_EQ(got.value(), value);
  }
}

TEST(IntegrityDegradationTest, RepeatedExhaustionNeverLeaksBlocks) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  Key next_key = 1;
  Grow(&fx, 2, &next_key);

  for (int round = 0; round < 5; ++round) {
    fx.device.set_max_blocks(fx.device.live_blocks());
    const uint64_t live_before = fx.device.live_blocks();
    Status st;
    for (int i = 0; i < 1000 && st.ok(); ++i) st = fx.Put(next_key++);
    ASSERT_EQ(st.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(fx.device.live_blocks(), live_before) << "round " << round;
    fx.device.set_max_blocks(0);
    // Drain the backlog before the next round.
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(fx.Put(next_key++).ok());
  }
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
}

}  // namespace
}  // namespace lsmssd
