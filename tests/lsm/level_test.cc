#include "src/lsm/level.h"

#include <gtest/gtest.h>

#include "src/storage/mem_block_device.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

class LevelTest : public ::testing::Test {
 protected:
  LevelTest() : options_(TinyOptions()), device_(options_.block_size) {}

  std::string Payload(char c) { return std::string(options_.payload_size, c); }

  /// Appends a leaf holding Put records with the given keys.
  void AddLeaf(Level* level, const std::vector<Key>& keys) {
    std::vector<Record> records;
    for (Key k : keys) records.push_back(Record::Put(k, Payload('p')));
    auto id = device_.WriteNewBlock(EncodeRecordBlock(options_, records));
    ASSERT_TRUE(id.ok());
    LeafMeta meta;
    meta.block = id.value();
    meta.min_key = keys.front();
    meta.max_key = keys.back();
    meta.count = static_cast<uint32_t>(keys.size());
    level->AppendLeaf(meta);
  }

  Options options_;
  MemBlockDevice device_;
};

TEST_F(LevelTest, EmptyLevel) {
  Level level(options_, &device_, 1);
  EXPECT_TRUE(level.empty());
  EXPECT_EQ(level.size_blocks(), 0u);
  EXPECT_EQ(level.record_count(), 0u);
  EXPECT_DOUBLE_EQ(level.waste_factor(), 0.0);
  EXPECT_TRUE(level.MeetsLevelWaste());
  EXPECT_TRUE(level.CheckInvariants(true).ok());
}

TEST_F(LevelTest, AppendTracksCountsAndRanges) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  AddLeaf(&level, {20, 21, 22, 23, 24, 25, 26, 27, 28, 29});
  EXPECT_EQ(level.size_blocks(), 2u);
  EXPECT_EQ(level.record_count(), 20u);
  EXPECT_EQ(level.min_key(), 1u);
  EXPECT_EQ(level.max_key(), 29u);
  EXPECT_EQ(level.empty_slots(), 0u);
  EXPECT_TRUE(level.CheckInvariants(true).ok());
}

TEST_F(LevelTest, LookupFindsAndMisses) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {10, 20, 30, 40, 50, 60});
  AddLeaf(&level, {100, 110, 120, 130, 140});

  Record r;
  ASSERT_TRUE(level.Lookup(30, &r).ok());
  EXPECT_EQ(r.key, 30u);
  ASSERT_TRUE(level.Lookup(140, &r).ok());

  EXPECT_TRUE(level.Lookup(35, &r).IsNotFound());   // Gap inside a leaf.
  EXPECT_TRUE(level.Lookup(70, &r).IsNotFound());   // Between leaves.
  EXPECT_TRUE(level.Lookup(5, &r).IsNotFound());    // Before first.
  EXPECT_TRUE(level.Lookup(999, &r).IsNotFound());  // After last.
}

TEST_F(LevelTest, OverlapRange) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {10, 19});
  AddLeaf(&level, {20, 29});
  AddLeaf(&level, {30, 39});
  AddLeaf(&level, {40, 49});

  EXPECT_EQ(level.OverlapRange(22, 33), (std::pair<size_t, size_t>(1, 3)));
  EXPECT_EQ(level.OverlapRange(0, 5), (std::pair<size_t, size_t>(0, 0)));
  EXPECT_EQ(level.OverlapRange(50, 60), (std::pair<size_t, size_t>(4, 4)));
  EXPECT_EQ(level.OverlapRange(19, 20), (std::pair<size_t, size_t>(0, 2)));
  EXPECT_EQ(level.OverlapRange(0, 99), (std::pair<size_t, size_t>(0, 4)));
  // Range falling in the gap between leaves 0 and 1.
  EXPECT_EQ(level.OverlapRange(19, 19), (std::pair<size_t, size_t>(0, 1)));
}

TEST_F(LevelTest, CollectRangeFiltersWithinLeaf) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {10, 20, 30});
  AddLeaf(&level, {40, 50});
  std::vector<Record> out;
  ASSERT_TRUE(level.CollectRange(20, 40, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, 20u);
  EXPECT_EQ(out[2].key, 40u);
}

TEST_F(LevelTest, SpliceReplacesAndFrees) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {10, 19});
  AddLeaf(&level, {20, 29});
  AddLeaf(&level, {30, 39});
  const BlockId old_mid = level.leaf(1).block;

  std::vector<Record> replacement = {Record::Put(21, Payload('n')),
                                     Record::Put(22, Payload('n')),
                                     Record::Put(23, Payload('n'))};
  auto id = device_.WriteNewBlock(EncodeRecordBlock(options_, replacement));
  ASSERT_TRUE(id.ok());
  const LeafMeta meta = MakeLeafMeta(options_, replacement, id.value());
  ASSERT_TRUE(level.SpliceLeaves(1, 2, {meta}, {}).ok());

  EXPECT_EQ(level.size_blocks(), 3u);
  EXPECT_EQ(level.record_count(), 7u);
  EXPECT_FALSE(device_.IsLive(old_mid));  // Old block freed.
  Record r;
  EXPECT_TRUE(level.Lookup(22, &r).ok());
  EXPECT_TRUE(level.Lookup(20, &r).IsNotFound());
}

TEST_F(LevelTest, SplicePreservedBlocksAreNotFreed) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {10, 19});
  const BlockId preserved = level.leaf(0).block;
  ASSERT_TRUE(level.RemoveLeaves(0, 1, {preserved}).ok());
  EXPECT_TRUE(device_.IsLive(preserved));
  EXPECT_TRUE(level.empty());
}

TEST_F(LevelTest, CoalescePairMergesAdjacentBlocks) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {10, 20, 30});
  AddLeaf(&level, {40, 50});
  const uint64_t writes_before = device_.stats().block_writes();

  auto writes_or = level.CoalescePair(0);
  ASSERT_TRUE(writes_or.ok());
  EXPECT_EQ(writes_or.value(), 1u);
  EXPECT_EQ(device_.stats().block_writes() - writes_before, 1u);
  EXPECT_EQ(level.size_blocks(), 1u);
  EXPECT_EQ(level.record_count(), 5u);
  auto records = level.ReadLeaf(0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value().front().key, 10u);
  EXPECT_EQ(records.value().back().key, 50u);
}

TEST_F(LevelTest, CompactPacksBlocksFully) {
  Level level(options_, &device_, 1);
  // Four sparse leaves (6 each with B=10) -> compact to ceil(24/10)=3.
  AddLeaf(&level, {1, 2, 3, 4, 5, 6});
  AddLeaf(&level, {11, 12, 13, 14, 15, 16});
  AddLeaf(&level, {21, 22, 23, 24, 25, 26});
  AddLeaf(&level, {31, 32, 33, 34, 35, 36});
  level.ledger().OnMergeStart(5.0);
  level.ledger().OnMergeEnd(3);

  auto writes_or = level.Compact();
  ASSERT_TRUE(writes_or.ok());
  EXPECT_EQ(writes_or.value(), 3u);
  EXPECT_EQ(level.size_blocks(), 3u);
  EXPECT_EQ(level.record_count(), 24u);
  EXPECT_EQ(level.leaf(0).count, 10u);
  EXPECT_EQ(level.leaf(1).count, 10u);
  EXPECT_EQ(level.leaf(2).count, 4u);
  // Ledger reset by compaction.
  EXPECT_EQ(level.ledger().merges_since_compaction(), 0u);
  EXPECT_EQ(level.ledger().net_increase(), 0);
  EXPECT_TRUE(level.CheckInvariants(true).ok());
}

TEST_F(LevelTest, WasteFactorArithmetic) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {1, 2, 3, 4, 5, 6, 7, 8});   // 2 empty slots.
  AddLeaf(&level, {11, 12, 13, 14, 15, 16, 17, 18, 19, 20});  // Full.
  EXPECT_EQ(level.empty_slots(), 2u);
  EXPECT_DOUBLE_EQ(level.waste_factor(), 2.0 / 20.0);
  EXPECT_TRUE(level.MeetsLevelWaste());  // 0.1 <= 0.2.
}

TEST_F(LevelTest, InvariantCheckCatchesPairwiseViolation) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {1, 2, 3});
  AddLeaf(&level, {11, 12, 13});  // 3+3 <= 10: pairwise violation.
  EXPECT_FALSE(level.CheckInvariants(false).ok());
}

TEST_F(LevelTest, SingleLeafExemptFromLevelWaste) {
  Level level(options_, &device_, 1);
  AddLeaf(&level, {1});  // 1/10 full: 90% waste but only one block.
  EXPECT_TRUE(level.MeetsLevelWaste());
  EXPECT_TRUE(level.CheckInvariants(true).ok());
}

}  // namespace
}  // namespace lsmssd
