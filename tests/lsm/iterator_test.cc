#include "src/lsm/iterator.h"

#include <map>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(IteratorTest, EmptyTree) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  auto it = fx.tree->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek(42);
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST(IteratorTest, MemtableOnly) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k : {30, 10, 20}) ASSERT_TRUE(fx.Put(k).ok());
  auto it = fx.tree->NewIterator();
  std::vector<Key> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) keys.push_back(it->key());
  EXPECT_EQ(keys, (std::vector<Key>{10, 20, 30}));
  EXPECT_TRUE(it->status().ok());
}

TEST(IteratorTest, SpansAllLevelsInOrder) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 900; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  ASSERT_GE(fx.tree->num_levels(), 3u);

  auto it = fx.tree->NewIterator();
  Key expected = 0;
  size_t count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->key(), expected);
    EXPECT_EQ(it->value(), MakePayload(fx.options_copy, expected));
    expected += 3;
    ++count;
  }
  EXPECT_EQ(count, 900u);
  EXPECT_TRUE(it->status().ok());
}

TEST(IteratorTest, UpperLevelsShadowLower) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k).ok());
  // Fresh overwrite lands in L0 while the original sits deeper.
  const std::string fresh(fx.options_copy.payload_size, 'Z');
  ASSERT_TRUE(fx.tree->Put(123, fresh).ok());

  auto it = fx.tree->NewIterator();
  it->Seek(123);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), 123u);
  EXPECT_EQ(it->value(), fresh);
}

TEST(IteratorTest, TombstonesAreSkipped) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 300; ++k) ASSERT_TRUE(fx.Put(k).ok());
  for (Key k = 100; k < 200; ++k) ASSERT_TRUE(fx.tree->Delete(k).ok());

  auto it = fx.tree->NewIterator();
  it->Seek(50);
  size_t seen = 0;
  for (; it->Valid(); it->Next()) {
    EXPECT_TRUE(it->key() < 100 || it->key() >= 200)
        << "deleted key " << it->key() << " surfaced";
    ++seen;
  }
  EXPECT_EQ(seen, 150u);  // 50..99 and 200..299.
}

TEST(IteratorTest, SeekSemantics) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 400; ++k) ASSERT_TRUE(fx.Put(k * 10).ok());

  auto it = fx.tree->NewIterator();
  it->Seek(1500);  // Exact hit.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), 1500u);

  it->Seek(1501);  // Between keys: next larger.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), 1510u);

  it->Seek(0);  // Smallest.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), 0u);

  it->Seek(999999);  // Past the end.
  EXPECT_FALSE(it->Valid());
}

TEST(IteratorTest, AgreesWithReferenceAfterChurn) {
  TreeFixture fx(TinyOptions(), PolicyKind::kTestMixed);
  std::map<Key, std::string> reference;
  Random rng(77);
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.Uniform(2000);
    if (rng.Bernoulli(0.7)) {
      const std::string payload = MakePayload(fx.options_copy, k + i);
      ASSERT_TRUE(fx.tree->Put(k, payload).ok());
      reference[k] = payload;
    } else {
      ASSERT_TRUE(fx.tree->Delete(k).ok());
      reference.erase(k);
    }
  }
  auto it = fx.tree->NewIterator();
  auto ref = reference.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++ref) {
    ASSERT_NE(ref, reference.end());
    EXPECT_EQ(it->key(), ref->first);
    EXPECT_EQ(it->value(), ref->second);
  }
  EXPECT_EQ(ref, reference.end());
  EXPECT_TRUE(it->status().ok());
}

TEST(IteratorTest, ScanMatchesIterator) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 600; ++k) ASSERT_TRUE(fx.Put(k * 2).ok());

  std::vector<std::pair<Key, std::string>> scanned;
  ASSERT_TRUE(fx.tree->Scan(100, 300, &scanned).ok());

  auto it = fx.tree->NewIterator();
  std::vector<std::pair<Key, std::string>> iterated;
  for (it->Seek(100); it->Valid() && it->key() <= 300; it->Next()) {
    iterated.emplace_back(it->key(), it->value());
  }
  EXPECT_EQ(scanned, iterated);
  EXPECT_EQ(scanned.size(), 101u);  // 100,102,...,300.
}

}  // namespace
}  // namespace lsmssd
