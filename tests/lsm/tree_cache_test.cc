// LsmTree + CachedBlockDevice wiring: Options::cache_blocks builds the
// tree-owned buffer cache, Gets are served from it, merge frees invalidate
// it, and — the paper's ground rule — write counts are never affected.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/lsm/lsm_tree.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(TreeCacheTest, CacheDisabledByDefault) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  EXPECT_EQ(fx.tree->cache_device(), nullptr);
  // Tree I/O goes straight to the caller's device.
  EXPECT_EQ(fx.tree->device(), &fx.device);
}

TEST(TreeCacheTest, CacheWiredWhenEnabled) {
  Options options = TinyOptions();
  options.cache_blocks = 64;
  TreeFixture fx(options, PolicyKind::kChooseBest);
  ASSERT_NE(fx.tree->cache_device(), nullptr);
  EXPECT_EQ(fx.tree->device(), fx.tree->cache_device());
  EXPECT_EQ(fx.tree->cache_device()->base(), &fx.device);
  EXPECT_EQ(fx.tree->cache_device()->cache().capacity(), 64u);
}

TEST(TreeCacheTest, GetsCountHitsAndMisses) {
  Options options = TinyOptions();
  options.cache_blocks = 256;  // Holds the whole tiny tree.
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 1; k <= 600; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  ASSERT_GT(fx.tree->num_levels(), 1u);  // Data actually spilled to SSD.

  const IoStats& stats = fx.tree->device()->stats();
  // Merges warm the cache write-through; clear it so the first read pass
  // demonstrably misses and the second demonstrably hits.
  fx.tree->cache_device()->cache().Clear();
  const uint64_t hits0 = stats.cache_hits();

  for (Key k = 1; k <= 600; ++k) ASSERT_TRUE(fx.tree->Get(k * 3).ok());
  const uint64_t misses_after_cold_pass = stats.cache_misses();
  EXPECT_GT(misses_after_cold_pass, 0u);

  for (Key k = 1; k <= 600; ++k) ASSERT_TRUE(fx.tree->Get(k * 3).ok());
  EXPECT_GT(stats.cache_hits(), hits0);
  // Cache is large enough: the warm pass added no misses.
  EXPECT_EQ(stats.cache_misses(), misses_after_cold_pass);
  // The base device mirrors the hit/miss accounting.
  EXPECT_EQ(fx.device.stats().cache_hits(), stats.cache_hits());
  EXPECT_EQ(fx.device.stats().cache_misses(), stats.cache_misses());
}

TEST(TreeCacheTest, BloomSkipsAreCounted) {
  Options options = TinyOptions();
  options.cache_blocks = 256;
  options.bloom_bits_per_key = 10;
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 1; k <= 600; ++k) ASSERT_TRUE(fx.Put(k * 2).ok());
  ASSERT_GT(fx.tree->num_levels(), 1u);
  for (Key k = 1; k <= 600; ++k) {
    auto miss = fx.tree->Get(k * 2 + 1);  // All absent (odd keys).
    EXPECT_TRUE(miss.status().IsNotFound());
  }
  EXPECT_GT(fx.tree->device()->stats().bloom_skips(), 0u);
}

TEST(TreeCacheTest, WriteCountsUnchangedByCache) {
  Options cached_options = TinyOptions();
  cached_options.cache_blocks = 128;
  TreeFixture with_cache(cached_options, PolicyKind::kChooseBest);
  TreeFixture without_cache(TinyOptions(), PolicyKind::kChooseBest);

  for (Key k = 1; k <= 1500; ++k) {
    ASSERT_TRUE(with_cache.Put(k * 7).ok());
    ASSERT_TRUE(without_cache.Put(k * 7).ok());
    if (k % 5 == 0) {
      // Interleave reads so the cache is actually exercised.
      ASSERT_TRUE(with_cache.tree->Get(k * 7).ok());
    }
  }

  // The paper's headline metric is identical with and without the cache;
  // the tree-owned wrapper also mirrors the base device's write counts.
  EXPECT_EQ(with_cache.device.stats().block_writes(),
            without_cache.device.stats().block_writes());
  EXPECT_EQ(with_cache.tree->device()->stats().block_writes(),
            with_cache.device.stats().block_writes());
  EXPECT_EQ(with_cache.tree->device()->stats().block_allocs(),
            with_cache.device.stats().block_allocs());
  EXPECT_EQ(with_cache.tree->device()->stats().block_frees(),
            with_cache.device.stats().block_frees());
}

TEST(TreeCacheTest, MergeFreesInvalidateCachedBlocks) {
  Options options = TinyOptions();
  options.cache_blocks = 1024;  // Nothing is ever evicted for capacity.
  TreeFixture fx(options, PolicyKind::kChooseBest);
  std::map<Key, std::string> reference;

  auto live_blocks = [&] {
    std::set<BlockId> live;
    for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
      for (const LeafMeta& m : fx.tree->level(i).leaves()) {
        live.insert(m.block);
      }
    }
    return live;
  };

  // Phase 1: populate, then read everything so the cache holds the
  // current block set.
  for (Key k = 1; k <= 800; ++k) {
    const Key key = k * 11;
    ASSERT_TRUE(fx.Put(key).ok());
    reference[key] = MakePayload(fx.options_copy, key);
  }
  for (const auto& [key, payload] : reference) {
    auto got = fx.tree->Get(key);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value(), payload);
  }
  const std::set<BlockId> before = live_blocks();

  // Phase 2: more writes cascade merges that free many phase-1 blocks.
  for (Key k = 1; k <= 800; ++k) {
    const Key key = k * 11 + 5;
    ASSERT_TRUE(fx.Put(key).ok());
    reference[key] = MakePayload(fx.options_copy, key);
  }
  const std::set<BlockId> after = live_blocks();

  // Freed blocks must be gone from the cache: a read through the cached
  // device is NotFound, never a stale image.
  size_t freed = 0;
  for (BlockId id : before) {
    if (after.contains(id)) continue;
    ++freed;
    auto stale = fx.tree->device()->ReadBlockShared(id);
    EXPECT_TRUE(stale.status().IsNotFound()) << "stale block " << id;
  }
  EXPECT_GT(freed, 0u) << "workload did not exercise merge frees";

  // And every logical read still resolves correctly through the cache.
  for (const auto& [key, payload] : reference) {
    auto got = fx.tree->Get(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), payload);
  }
}

}  // namespace
}  // namespace lsmssd
