#include "src/lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(LsmTreeOpenTest, RejectsInvalidOptions) {
  Options bad = TinyOptions();
  bad.gamma = 0.5;
  MemBlockDevice device(bad.block_size);
  auto tree = LsmTree::Open(bad, &device, CreatePolicy(PolicyKind::kFull));
  EXPECT_TRUE(tree.status().IsInvalidArgument());
}

TEST(LsmTreeOpenTest, RejectsBlockSizeMismatch) {
  Options options = TinyOptions();
  MemBlockDevice device(options.block_size * 2);
  auto tree =
      LsmTree::Open(options, &device, CreatePolicy(PolicyKind::kFull));
  EXPECT_TRUE(tree.status().IsInvalidArgument());
}

TEST(LsmTreeOpenTest, RejectsNulls) {
  Options options = TinyOptions();
  MemBlockDevice device(options.block_size);
  EXPECT_TRUE(LsmTree::Open(options, nullptr,
                            CreatePolicy(PolicyKind::kFull))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LsmTree::Open(options, &device, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(LsmTreeTest, EmptyTreeBehaviour) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  EXPECT_EQ(fx.tree->num_levels(), 1u);  // Just L0.
  EXPECT_TRUE(fx.tree->Get(5).status().IsNotFound());
  std::vector<std::pair<Key, std::string>> out;
  ASSERT_TRUE(fx.tree->Scan(0, 100, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fx.tree->TotalRecords(), 0u);
}

TEST(LsmTreeTest, PutGetWithoutMerge) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.Put(7).ok());
  auto v = fx.tree->Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), MakePayload(fx.options_copy, 7));
  // Nothing merged yet: zero device writes.
  EXPECT_EQ(fx.device.stats().block_writes(), 0u);
}

TEST(LsmTreeTest, PayloadSizeValidated) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  EXPECT_TRUE(fx.tree->Put(1, "short").IsInvalidArgument());
  EXPECT_TRUE(
      fx.tree->Put(1, std::string(999, 'x')).IsInvalidArgument());
}

TEST(LsmTreeTest, KeyWidthValidated) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);  // 4-byte keys.
  const std::string payload(fx.options_copy.payload_size, 'x');
  EXPECT_TRUE(
      fx.tree->Put(uint64_t{1} << 40, payload).IsInvalidArgument());
  EXPECT_TRUE(fx.tree->Delete(uint64_t{1} << 40).IsInvalidArgument());
}

TEST(LsmTreeTest, DeleteHidesKeyImmediately) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.Put(5).ok());
  ASSERT_TRUE(fx.tree->Delete(5).ok());
  EXPECT_TRUE(fx.tree->Get(5).status().IsNotFound());
}

TEST(LsmTreeTest, OverflowSpillsToLevel1) {
  Options options = TinyOptions();  // L0 capacity = 4 blocks * 10 = 40.
  TreeFixture fx(options, PolicyKind::kFull);
  for (Key k = 0; k < 40; ++k) ASSERT_TRUE(fx.Put(k * 10).ok());
  EXPECT_GE(fx.tree->num_levels(), 2u);
  EXPECT_GT(fx.tree->level(1).record_count(), 0u);
  EXPECT_GT(fx.device.stats().block_writes(), 0u);
  // All keys still readable after the merge.
  for (Key k = 0; k < 40; ++k) {
    EXPECT_TRUE(fx.tree->Get(k * 10).ok()) << "key " << k * 10;
  }
}

TEST(LsmTreeTest, GrowsMultipleLevels) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 2000; ++k) ASSERT_TRUE(fx.Put(k * 7 + 1).ok());
  EXPECT_GE(fx.tree->num_levels(), 3u);
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  // No level above capacity at rest (checked inside CheckInvariants too).
  for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
    EXPECT_LE(fx.tree->level(i).size_blocks(),
              fx.tree->LevelCapacityBlocks(i));
  }
}

TEST(LsmTreeTest, ScanSpansAllLevels) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k).ok());
  // Some keys are now in lower levels; newest overwrites sit in L0.
  ASSERT_TRUE(fx.tree->Put(100, std::string(20, 'Z')).ok());
  ASSERT_TRUE(fx.tree->Delete(101).ok());

  std::vector<std::pair<Key, std::string>> out;
  ASSERT_TRUE(fx.tree->Scan(95, 105, &out).ok());
  ASSERT_EQ(out.size(), 10u);  // 95..105 minus deleted 101.
  EXPECT_EQ(out[5].first, 100u);
  EXPECT_EQ(out[5].second, std::string(20, 'Z'));  // L0 shadows L1+.
  for (const auto& [k, v] : out) EXPECT_NE(k, 101u);
}

TEST(LsmTreeTest, StatsCountRequests) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.Put(1).ok());
  ASSERT_TRUE(fx.Put(2).ok());
  ASSERT_TRUE(fx.tree->Delete(1).ok());
  (void)fx.tree->Get(2);
  std::vector<std::pair<Key, std::string>> out;
  (void)fx.tree->Scan(0, 10, &out);
  EXPECT_EQ(fx.tree->stats().puts, 2u);
  EXPECT_EQ(fx.tree->stats().deletes, 1u);
  EXPECT_EQ(fx.tree->stats().gets, 1u);
  EXPECT_EQ(fx.tree->stats().scans, 1u);
}

TEST(LsmTreeTest, StatsWritesMatchDevice) {
  TreeFixture fx(TinyOptions(), PolicyKind::kRr);
  for (Key k = 0; k < 3000; ++k) ASSERT_TRUE(fx.Put(k * 13 + 5).ok());
  EXPECT_EQ(fx.tree->stats().TotalBlocksWritten(),
            fx.device.stats().block_writes());
}

TEST(LsmTreeTest, SetPolicyMidStream) {
  TreeFixture fx(TinyOptions(), PolicyKind::kFull);
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  fx.tree->set_policy(CreatePolicy(PolicyKind::kChooseBest));
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k * 3 + 1).ok());
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  EXPECT_EQ(fx.tree->policy()->name(), "ChooseBest");
}

TEST(LsmTreeTest, ApproximateDataBytes) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(fx.Put(k).ok());
  EXPECT_EQ(fx.tree->ApproximateDataBytes(),
            fx.tree->TotalRecords() * fx.options_copy.record_size());
}

TEST(LsmTreeTest, ScanRejectsInvertedRange) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  std::vector<std::pair<Key, std::string>> out;
  EXPECT_TRUE(fx.tree->Scan(10, 5, &out).IsInvalidArgument());
}

TEST(LsmTreeTest, TombstonesPurgedAtBottomKeepDatasetBounded) {
  // Insert/delete churn over a fixed small key set: tombstones must not
  // accumulate without bound (they die at the bottom level).
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (int round = 0; round < 50; ++round) {
    for (Key k = 0; k < 60; ++k) ASSERT_TRUE(fx.Put(k).ok());
    for (Key k = 0; k < 60; ++k) ASSERT_TRUE(fx.tree->Delete(k).ok());
  }
  // Everything was deleted; total records bounded by the live churn, far
  // below the 6000 requests issued.
  EXPECT_LT(fx.tree->TotalRecords(), 600u);
  for (Key k = 0; k < 60; ++k) {
    EXPECT_TRUE(fx.tree->Get(k).status().IsNotFound());
  }
}

}  // namespace
}  // namespace lsmssd
