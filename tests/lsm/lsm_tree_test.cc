#include "src/lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(LsmTreeOpenTest, RejectsInvalidOptions) {
  Options bad = TinyOptions();
  bad.gamma = 0.5;
  MemBlockDevice device(bad.block_size);
  auto tree = LsmTree::Open(bad, &device, CreatePolicy(PolicyKind::kFull));
  EXPECT_TRUE(tree.status().IsInvalidArgument());
}

TEST(LsmTreeOpenTest, RejectsBlockSizeMismatch) {
  Options options = TinyOptions();
  MemBlockDevice device(options.block_size * 2);
  auto tree =
      LsmTree::Open(options, &device, CreatePolicy(PolicyKind::kFull));
  EXPECT_TRUE(tree.status().IsInvalidArgument());
}

TEST(LsmTreeOpenTest, RejectsNulls) {
  Options options = TinyOptions();
  MemBlockDevice device(options.block_size);
  EXPECT_TRUE(LsmTree::Open(options, nullptr,
                            CreatePolicy(PolicyKind::kFull))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LsmTree::Open(options, &device, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(LsmTreeTest, EmptyTreeBehaviour) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  EXPECT_EQ(fx.tree->num_levels(), 1u);  // Just L0.
  EXPECT_TRUE(fx.tree->Get(5).status().IsNotFound());
  std::vector<std::pair<Key, std::string>> out;
  ASSERT_TRUE(fx.tree->Scan(0, 100, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fx.tree->TotalRecords(), 0u);
}

TEST(LsmTreeTest, PutGetWithoutMerge) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.Put(7).ok());
  auto v = fx.tree->Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), MakePayload(fx.options_copy, 7));
  // Nothing merged yet: zero device writes.
  EXPECT_EQ(fx.device.stats().block_writes(), 0u);
}

TEST(LsmTreeTest, PayloadSizeValidated) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  EXPECT_TRUE(fx.tree->Put(1, "short").IsInvalidArgument());
  EXPECT_TRUE(
      fx.tree->Put(1, std::string(999, 'x')).IsInvalidArgument());
}

TEST(LsmTreeTest, KeyWidthValidated) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);  // 4-byte keys.
  const std::string payload(fx.options_copy.payload_size, 'x');
  EXPECT_TRUE(
      fx.tree->Put(uint64_t{1} << 40, payload).IsInvalidArgument());
  EXPECT_TRUE(fx.tree->Delete(uint64_t{1} << 40).IsInvalidArgument());
}

TEST(LsmTreeTest, DeleteHidesKeyImmediately) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.Put(5).ok());
  ASSERT_TRUE(fx.tree->Delete(5).ok());
  EXPECT_TRUE(fx.tree->Get(5).status().IsNotFound());
}

TEST(LsmTreeTest, OverflowSpillsToLevel1) {
  Options options = TinyOptions();  // L0 capacity = 4 blocks * 10 = 40.
  TreeFixture fx(options, PolicyKind::kFull);
  for (Key k = 0; k < 40; ++k) ASSERT_TRUE(fx.Put(k * 10).ok());
  EXPECT_GE(fx.tree->num_levels(), 2u);
  EXPECT_GT(fx.tree->level(1).record_count(), 0u);
  EXPECT_GT(fx.device.stats().block_writes(), 0u);
  // All keys still readable after the merge.
  for (Key k = 0; k < 40; ++k) {
    EXPECT_TRUE(fx.tree->Get(k * 10).ok()) << "key " << k * 10;
  }
}

TEST(LsmTreeTest, GrowsMultipleLevels) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 2000; ++k) ASSERT_TRUE(fx.Put(k * 7 + 1).ok());
  EXPECT_GE(fx.tree->num_levels(), 3u);
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  // No level above capacity at rest (checked inside CheckInvariants too).
  for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
    EXPECT_LE(fx.tree->level(i).size_blocks(),
              fx.tree->LevelCapacityBlocks(i));
  }
}

TEST(LsmTreeTest, ScanSpansAllLevels) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k).ok());
  // Some keys are now in lower levels; newest overwrites sit in L0.
  ASSERT_TRUE(fx.tree->Put(100, std::string(20, 'Z')).ok());
  ASSERT_TRUE(fx.tree->Delete(101).ok());

  std::vector<std::pair<Key, std::string>> out;
  ASSERT_TRUE(fx.tree->Scan(95, 105, &out).ok());
  ASSERT_EQ(out.size(), 10u);  // 95..105 minus deleted 101.
  EXPECT_EQ(out[5].first, 100u);
  EXPECT_EQ(out[5].second, std::string(20, 'Z'));  // L0 shadows L1+.
  for (const auto& [k, v] : out) EXPECT_NE(k, 101u);
}

TEST(LsmTreeTest, StatsCountRequests) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.Put(1).ok());
  ASSERT_TRUE(fx.Put(2).ok());
  ASSERT_TRUE(fx.tree->Delete(1).ok());
  (void)fx.tree->Get(2);
  std::vector<std::pair<Key, std::string>> out;
  (void)fx.tree->Scan(0, 10, &out);
  EXPECT_EQ(fx.tree->stats().puts, 2u);
  EXPECT_EQ(fx.tree->stats().deletes, 1u);
  EXPECT_EQ(fx.tree->stats().gets, 1u);
  EXPECT_EQ(fx.tree->stats().scans, 1u);
}

TEST(LsmTreeTest, StatsWritesMatchDevice) {
  TreeFixture fx(TinyOptions(), PolicyKind::kRr);
  for (Key k = 0; k < 3000; ++k) ASSERT_TRUE(fx.Put(k * 13 + 5).ok());
  EXPECT_EQ(fx.tree->stats().TotalBlocksWritten(),
            fx.device.stats().block_writes());
}

TEST(LsmTreeTest, SetPolicyMidStream) {
  TreeFixture fx(TinyOptions(), PolicyKind::kFull);
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k * 3).ok());
  fx.tree->set_policy(CreatePolicy(PolicyKind::kChooseBest));
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(fx.Put(k * 3 + 1).ok());
  ASSERT_TRUE(fx.tree->CheckInvariants(true).ok());
  EXPECT_EQ(fx.tree->policy()->name(), "ChooseBest");
}

TEST(LsmTreeTest, ApproximateDataBytes) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(fx.Put(k).ok());
  EXPECT_EQ(fx.tree->ApproximateDataBytes(),
            fx.tree->TotalRecords() * fx.options_copy.record_size());
}

TEST(LsmTreeTest, ScanRejectsInvertedRange) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  std::vector<std::pair<Key, std::string>> out;
  EXPECT_TRUE(fx.tree->Scan(10, 5, &out).IsInvalidArgument());
}

TEST(LsmTreeTest, TombstonesPurgedAtBottomKeepDatasetBounded) {
  // Insert/delete churn over a fixed small key set: tombstones must not
  // accumulate without bound (they die at the bottom level).
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (int round = 0; round < 50; ++round) {
    for (Key k = 0; k < 60; ++k) ASSERT_TRUE(fx.Put(k).ok());
    for (Key k = 0; k < 60; ++k) ASSERT_TRUE(fx.tree->Delete(k).ok());
  }
  // Everything was deleted; total records bounded by the live churn, far
  // below the 6000 requests issued.
  EXPECT_LT(fx.tree->TotalRecords(), 600u);
  for (Key k = 0; k < 60; ++k) {
    EXPECT_TRUE(fx.tree->Get(k).status().IsNotFound());
  }
}

TEST(BackgroundCompactTest, PutNoMergeNeverTouchesDevice) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  // TinyOptions: L0 overflows at 40 records. PutNoMerge must let the
  // memtable sail past that without any merge.
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(
        fx.tree->PutNoMerge(k, MakePayload(fx.options_copy, k)).ok());
  }
  EXPECT_EQ(fx.device.stats().block_writes(), 0u);
  EXPECT_TRUE(fx.tree->MemtableAtCapacity());
  EXPECT_EQ(fx.tree->memtable().size(), 100u);
}

TEST(BackgroundCompactTest, SealMovesMemtableAndEmptySealIsNoop) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  fx.tree->SealMemtable();  // Empty: no-op.
  EXPECT_EQ(fx.tree->sealed_count(), 0u);
  for (Key k = 0; k < 10; ++k) ASSERT_TRUE(fx.Put(k).ok());
  fx.tree->SealMemtable();
  EXPECT_EQ(fx.tree->sealed_count(), 1u);
  EXPECT_EQ(fx.tree->sealed_records(), 10u);
  EXPECT_EQ(fx.tree->memtable().size(), 0u);
  EXPECT_TRUE(fx.tree->HasCompactionWork());
}

TEST(BackgroundCompactTest, ReadsSeeSealedAndActiveNewestFirst) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.tree->PutNoMerge(1, MakePayload(fx.options_copy, 100)).ok());
  fx.tree->SealMemtable();
  ASSERT_TRUE(fx.tree->PutNoMerge(1, MakePayload(fx.options_copy, 200)).ok());
  ASSERT_TRUE(fx.tree->PutNoMerge(2, MakePayload(fx.options_copy, 2)).ok());
  fx.tree->SealMemtable();
  ASSERT_TRUE(fx.tree->DeleteNoMerge(2).ok());

  // key 1: the second sealed memtable's version shadows the first's.
  auto v = fx.tree->Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), MakePayload(fx.options_copy, 200));
  // key 2: the active memtable's tombstone shadows the sealed Put.
  EXPECT_TRUE(fx.tree->Get(2).status().IsNotFound());

  // Scan and iterator agree.
  std::vector<std::pair<Key, std::string>> out;
  ASSERT_TRUE(fx.tree->Scan(0, 100, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 1u);
  EXPECT_EQ(out[0].second, MakePayload(fx.options_copy, 200));
}

TEST(BackgroundCompactTest, StepsDrainQueueAndRestoreInvariants) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  // Three full memtables on the queue.
  Key next = 0;
  for (int m = 0; m < 3; ++m) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          fx.tree->PutNoMerge(next, MakePayload(fx.options_copy, next)).ok());
      ++next;
    }
    fx.tree->SealMemtable();
  }
  ASSERT_EQ(fx.tree->sealed_count(), 3u);

  int flushes = 0, merges = 0, steps = 0;
  for (;; ++steps) {
    ASSERT_LT(steps, 1000) << "compaction failed to converge";
    auto step = fx.tree->BackgroundCompactStep();
    ASSERT_TRUE(step.ok()) << step.status().ToString();
    if (step.value() == LsmTree::CompactStep::kNone) break;
    if (step.value() == LsmTree::CompactStep::kFlush) ++flushes;
    if (step.value() == LsmTree::CompactStep::kMerge) ++merges;
  }
  EXPECT_GE(flushes, 3);
  EXPECT_EQ(fx.tree->sealed_count(), 0u);
  EXPECT_FALSE(fx.tree->HasCompactionWork());
  ASSERT_TRUE(fx.tree->CheckInvariants(/*deep=*/true).ok());
  EXPECT_EQ(fx.tree->TotalRecords(), 120u);
  for (Key k = 0; k < 120; ++k) {
    auto v = fx.tree->Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(v.value(), MakePayload(fx.options_copy, k));
  }
}

TEST(BackgroundCompactTest, MatchesInlinePathContents) {
  // Same operations through the inline cascade and the sealed-queue path
  // end in trees with identical logical contents.
  TreeFixture inline_fx(TinyOptions(), PolicyKind::kChooseBest);
  TreeFixture bg_fx(TinyOptions(), PolicyKind::kChooseBest);
  for (Key k = 0; k < 500; ++k) {
    const Key key = (k * 37) % 200;
    ASSERT_TRUE(inline_fx.Put(key).ok());
    ASSERT_TRUE(
        bg_fx.tree->PutNoMerge(key, MakePayload(bg_fx.options_copy, key))
            .ok());
    if (bg_fx.tree->MemtableAtCapacity()) {
      bg_fx.tree->SealMemtable();
      // Drain eagerly about half the time to vary queue depth.
      if (k % 80 < 40) {
        for (;;) {
          auto step = bg_fx.tree->BackgroundCompactStep();
          ASSERT_TRUE(step.ok());
          if (step.value() == LsmTree::CompactStep::kNone) break;
        }
      }
    }
  }
  for (;;) {
    auto step = bg_fx.tree->BackgroundCompactStep();
    ASSERT_TRUE(step.ok());
    if (step.value() == LsmTree::CompactStep::kNone) break;
  }
  ASSERT_TRUE(bg_fx.tree->CheckInvariants(/*deep=*/true).ok());

  std::vector<std::pair<Key, std::string>> a, b;
  ASSERT_TRUE(inline_fx.tree->Scan(0, 1000, &a).ok());
  ASSERT_TRUE(bg_fx.tree->Scan(0, 1000, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(BackgroundCompactTest, MemtableSnapshotConsolidatesNewestWins) {
  TreeFixture fx(TinyOptions(), PolicyKind::kChooseBest);
  ASSERT_TRUE(fx.tree->PutNoMerge(1, MakePayload(fx.options_copy, 10)).ok());
  ASSERT_TRUE(fx.tree->PutNoMerge(2, MakePayload(fx.options_copy, 20)).ok());
  fx.tree->SealMemtable();
  ASSERT_TRUE(fx.tree->PutNoMerge(2, MakePayload(fx.options_copy, 21)).ok());
  ASSERT_TRUE(fx.tree->DeleteNoMerge(3).ok());
  fx.tree->SealMemtable();
  ASSERT_TRUE(fx.tree->PutNoMerge(4, MakePayload(fx.options_copy, 40)).ok());

  std::vector<Record> snap = fx.tree->MemtableSnapshot();
  ASSERT_EQ(snap.size(), 4u);  // Keys 1, 2, 3 (tombstone), 4.
  EXPECT_EQ(snap[0].key, 1u);
  EXPECT_EQ(snap[0].payload, MakePayload(fx.options_copy, 10));
  EXPECT_EQ(snap[1].key, 2u);
  EXPECT_EQ(snap[1].payload, MakePayload(fx.options_copy, 21));  // Newer.
  EXPECT_EQ(snap[2].key, 3u);
  EXPECT_TRUE(snap[2].is_tombstone());  // Tombstones survive.
  EXPECT_EQ(snap[3].key, 4u);
}

}  // namespace
}  // namespace lsmssd
