#include "src/lsm/waste.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(PairwiseWasteTest, StrictlyMoreThanB) {
  EXPECT_FALSE(PairwiseWasteOk(5, 5, 10));  // Exactly B: violation.
  EXPECT_TRUE(PairwiseWasteOk(5, 6, 10));
  EXPECT_TRUE(PairwiseWasteOk(10, 1, 10));
  EXPECT_FALSE(PairwiseWasteOk(1, 1, 10));
}

TEST(LevelWasteTest, ExemptBelowTwoBlocks) {
  EXPECT_TRUE(LevelWasteOk(/*records=*/1, /*leaves=*/1, /*b=*/10, 0.2));
  EXPECT_TRUE(LevelWasteOk(0, 0, 10, 0.2));
}

TEST(LevelWasteTest, ThresholdIsInclusive) {
  // 100 slots, 80 records -> waste 0.2 == epsilon: OK.
  EXPECT_TRUE(LevelWasteOk(80, 10, 10, 0.2));
  // 79 records -> waste 0.21 > epsilon.
  EXPECT_FALSE(LevelWasteOk(79, 10, 10, 0.2));
}

TEST(LevelWasteTest, MaximallyPackedLevelsAreExempt) {
  // Fewer empty slots than one block means leaves == ceil(records/B):
  // compaction could not improve it, so the constraint is satisfied.
  EXPECT_TRUE(LevelWasteOk(15, 2, 10, 0.2));  // 5 empties < B.
  EXPECT_TRUE(LevelWasteOk(11, 2, 10, 0.2));  // 9 empties < B.
  EXPECT_FALSE(LevelWasteOk(10, 2, 10, 0.2));  // 10 empties: compactable.
}

TEST(WasteLedgerTest, AllowanceAccumulatesAcrossMerges) {
  WasteLedger ledger;
  ledger.OnMergeStart(100.0);
  EXPECT_EQ(ledger.merges_since_compaction(), 1u);
  EXPECT_DOUBLE_EQ(ledger.slack_allowance(), 100.0);
  ledger.OnMergeStart(50.0);
  EXPECT_EQ(ledger.merges_since_compaction(), 2u);
  EXPECT_DOUBLE_EQ(ledger.slack_allowance(), 150.0);
}

TEST(WasteLedgerTest, BudgetHasBlockHeadroom) {
  // Budget: w <= allowance - B + 1 (the last output block may be forced to
  // carry B-1 empties).
  WasteLedger ledger;
  ledger.OnMergeStart(100.0);
  EXPECT_TRUE(ledger.WithinBudget(91, 10));
  EXPECT_FALSE(ledger.WithinBudget(92, 10));
}

TEST(WasteLedgerTest, UnusedSlackCarriesOver) {
  WasteLedger ledger;
  ledger.OnMergeStart(100.0);
  ledger.OnMergeEnd(10);  // Used only 10 of the allowance.
  ledger.OnMergeStart(100.0);
  // Cumulative budget now 200 - B + 1; net increase so far 10.
  EXPECT_EQ(ledger.net_increase(), 10);
  EXPECT_TRUE(ledger.WithinBudget(10 + 181, 10));
  EXPECT_FALSE(ledger.WithinBudget(10 + 182, 10));
}

TEST(WasteLedgerTest, NegativeDeltasReduceNetIncrease) {
  WasteLedger ledger;
  ledger.OnMergeStart(50.0);
  ledger.OnMergeEnd(-20);  // The merge packed records tighter than before.
  EXPECT_EQ(ledger.net_increase(), -20);
}

TEST(WasteLedgerTest, CompactionResetsEverything) {
  WasteLedger ledger;
  ledger.OnMergeStart(100.0);
  ledger.OnMergeEnd(42);
  ledger.OnCompaction();
  EXPECT_EQ(ledger.merges_since_compaction(), 0u);
  EXPECT_DOUBLE_EQ(ledger.slack_allowance(), 0.0);
  EXPECT_EQ(ledger.net_increase(), 0);
}

}  // namespace
}  // namespace lsmssd
