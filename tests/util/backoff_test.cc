#include "src/util/backoff.h"

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(BackoffTest, GrowsGeometricallyWithoutJitter) {
  ExponentialBackoff::Options o;
  o.initial_ms = 2;
  o.max_ms = 1000;
  o.multiplier = 2.0;
  o.jitter = 0.0;
  ExponentialBackoff b(o);
  EXPECT_EQ(b.NextDelayMs(), 2);
  EXPECT_EQ(b.NextDelayMs(), 4);
  EXPECT_EQ(b.NextDelayMs(), 8);
  EXPECT_EQ(b.NextDelayMs(), 16);
  EXPECT_EQ(b.attempts(), 4);
}

TEST(BackoffTest, CapsAtMax) {
  ExponentialBackoff::Options o;
  o.initial_ms = 100;
  o.max_ms = 250;
  o.multiplier = 3.0;
  o.jitter = 0.0;
  ExponentialBackoff b(o);
  EXPECT_EQ(b.NextDelayMs(), 100);
  EXPECT_EQ(b.NextDelayMs(), 250);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(b.NextDelayMs(), 250);
}

TEST(BackoffTest, JitterStaysInRangeAndVaries) {
  ExponentialBackoff::Options o;
  o.initial_ms = 100;
  o.max_ms = 100;  // Fixed base isolates the jitter.
  o.jitter = 0.5;
  o.seed = 7;
  ExponentialBackoff b(o);
  bool varied = false;
  int prev = -1;
  for (int i = 0; i < 50; ++i) {
    const int d = b.NextDelayMs();
    EXPECT_GE(d, 50);   // base * (1 - jitter)
    EXPECT_LE(d, 100);  // base
    if (prev >= 0 && d != prev) varied = true;
    prev = d;
  }
  EXPECT_TRUE(varied) << "jitter produced a constant schedule";
}

TEST(BackoffTest, SeededSchedulesAreDeterministic) {
  ExponentialBackoff::Options o;
  o.seed = 42;
  ExponentialBackoff a(o), b(o);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs());

  o.seed = 43;
  ExponentialBackoff c(o);
  bool diverged = false;
  ExponentialBackoff d(ExponentialBackoff::Options{});  // seed 1
  for (int i = 0; i < 30; ++i) {
    if (c.NextDelayMs() != d.NextDelayMs()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, ResetRestartsTheSchedule) {
  ExponentialBackoff::Options o;
  o.initial_ms = 10;
  o.jitter = 0.0;
  ExponentialBackoff b(o);
  EXPECT_EQ(b.NextDelayMs(), 10);
  EXPECT_EQ(b.NextDelayMs(), 20);
  b.Reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_EQ(b.NextDelayMs(), 10);
}

TEST(BackoffTest, SanitizesHostileOptions) {
  ExponentialBackoff::Options o;
  o.initial_ms = -5;
  o.max_ms = -10;
  o.multiplier = 0.1;   // Would shrink: clamped to 1.0.
  o.jitter = 3.0;       // Clamped to 1.0.
  ExponentialBackoff b(o);
  for (int i = 0; i < 10; ++i) {
    const int d = b.NextDelayMs();
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 0);  // initial and max both clamp to 0.
  }
}

}  // namespace
}  // namespace lsmssd
