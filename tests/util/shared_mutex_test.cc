#include "src/util/shared_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace lsmssd {
namespace {

TEST(SharedMutexTest, ExclusiveLockIsMutuallyExclusive) {
  SharedMutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        std::lock_guard<SharedMutex> lk(mu);
        ++counter;  // Data race here unless lock() really excludes.
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40'000);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  std::atomic<int> concurrent_readers{0};
  std::atomic<bool> writer_in{false};
  std::atomic<bool> overlap_seen{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 2'000; ++i) {
        std::shared_lock<SharedMutex> lk(mu);
        concurrent_readers.fetch_add(1);
        if (writer_in.load()) overlap_seen.store(true);
        concurrent_readers.fetch_sub(1);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      std::lock_guard<SharedMutex> lk(mu);
      writer_in.store(true);
      if (concurrent_readers.load() != 0) overlap_seen.store(true);
      writer_in.store(false);
    }
  });
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(overlap_seen.load());
}

TEST(SharedMutexTest, TwoReadersHoldTheLockSimultaneously) {
  // Each reader enters, then waits (bounded) for the other to be inside
  // before releasing. This only succeeds if shared locks actually share;
  // a lock degenerating to full mutual exclusion times both readers out.
  SharedMutex mu;
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::shared_lock<SharedMutex> lk(mu);
      inside.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (inside.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      if (inside.load() >= 2) overlapped.store(true);
      inside.fetch_sub(1);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_TRUE(overlapped.load());
}

TEST(SharedMutexTest, WriterIsNotStarvedByContinuousReaders) {
  // Regression test for the reason this class exists: glibc's
  // std::shared_mutex is reader-preferring, so readers that re-acquire
  // back-to-back can block a writer indefinitely. With writer preference
  // the writer must get in promptly even though the read side never goes
  // idle voluntarily.
  SharedMutex mu;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::shared_lock<SharedMutex> lk(mu);
      }
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int writes = 0;
  for (; writes < 1'000; ++writes) {
    std::lock_guard<SharedMutex> lk(mu);
    if (std::chrono::steady_clock::now() > deadline) break;
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(writes, 1'000) << "writer starved by spinning readers";
}

TEST(SharedMutexTest, TryLockRespectsState) {
  SharedMutex mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock_shared());
  mu.unlock();

  EXPECT_TRUE(mu.try_lock_shared());
  EXPECT_TRUE(mu.try_lock_shared());  // Readers share.
  EXPECT_FALSE(mu.try_lock());
  mu.unlock_shared();
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace lsmssd
