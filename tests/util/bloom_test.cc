#include "src/util/bloom.h"

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

TEST(BloomFilterTest, NoFalseNegatives) {
  Random rng(1);
  std::vector<Key> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back(rng.Uniform(1'000'000'000));
  BloomFilter filter(keys, 10);
  for (Key k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
  Random rng(2);
  std::vector<Key> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(rng.Uniform(1'000'000));
  BloomFilter filter(keys, 10);

  int false_positives = 0, probes = 0;
  for (Key k = 2'000'000; k < 2'050'000; ++k) {  // Disjoint from inserted.
    ++probes;
    false_positives += filter.MayContain(k);
  }
  const double rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(rate, 0.03);  // Theory: ~1% at 10 bits/key.
}

TEST(BloomFilterTest, FewerBitsMeansMoreFalsePositives) {
  Random rng(3);
  std::vector<Key> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Uniform(1'000'000));
  BloomFilter tight(keys, 12);
  BloomFilter loose(keys, 2);
  int fp_tight = 0, fp_loose = 0;
  for (Key k = 2'000'000; k < 2'020'000; ++k) {
    fp_tight += tight.MayContain(k);
    fp_loose += loose.MayContain(k);
  }
  EXPECT_LT(fp_tight, fp_loose);
}

TEST(BloomFilterTest, EmptyKeySetRejectsEverything) {
  BloomFilter filter({}, 10);
  int hits = 0;
  for (Key k = 0; k < 1000; ++k) hits += filter.MayContain(k);
  EXPECT_EQ(hits, 0);
}

TEST(BloomFilterTest, SizeScalesWithKeys) {
  std::vector<Key> small_keys(100), large_keys(10000);
  for (size_t i = 0; i < small_keys.size(); ++i) small_keys[i] = i;
  for (size_t i = 0; i < large_keys.size(); ++i) large_keys[i] = i;
  BloomFilter small(small_keys, 10);
  BloomFilter large(large_keys, 10);
  EXPECT_LT(small.SizeBytes(), large.SizeBytes());
  EXPECT_NEAR(large.SizeBytes(), 10000 * 10 / 8, 16);
}

TEST(BloomIntegrationTest, NegativeLookupsSkipBlockReads) {
  Options options = TinyOptions();
  options.bloom_bits_per_key = 10;
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 2000; ++k) ASSERT_TRUE(fx.Put(k * 2).ok());

  // Probe keys that are definitely absent (odd keys inside the range).
  const uint64_t reads_before = fx.device.stats().block_reads();
  int found = 0;
  for (Key k = 1; k < 2000; k += 2) found += fx.tree->Get(k).ok();
  EXPECT_EQ(found, 0);
  const uint64_t negative_reads =
      fx.device.stats().block_reads() - reads_before;

  uint64_t skips = 0;
  for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
    skips += fx.tree->level(i).bloom_negative_skips();
  }
  EXPECT_GT(skips, 800u);  // The vast majority skipped the read.
  EXPECT_LT(negative_reads, 100u);
}

TEST(BloomIntegrationTest, PositiveLookupsStillSucceed) {
  Options options = TinyOptions();
  options.bloom_bits_per_key = 10;
  TreeFixture fx(options, PolicyKind::kTestMixed);
  for (Key k = 0; k < 2000; ++k) ASSERT_TRUE(fx.Put(k * 3 + 1).ok());
  for (Key k = 0; k < 2000; ++k) {
    auto v = fx.tree->Get(k * 3 + 1);
    ASSERT_TRUE(v.ok()) << "key " << k * 3 + 1 << ": "
                        << v.status().ToString();
    EXPECT_EQ(v.value(), MakePayload(options, k * 3 + 1));
  }
}

TEST(BloomIntegrationTest, FiltersSurviveBlockPreservation) {
  // Preserved blocks carry their filter across levels (shared_ptr in the
  // metadata); correctness must hold after heavy churn with preservation.
  Options options = TinyOptions();
  options.bloom_bits_per_key = 10;
  options.block_size = 256;
  options.payload_size = 200;  // B = 1: preservation everywhere.
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(fx.tree->Put(k * 7, MakePayload(options, k * 7)).ok());
  }
  uint64_t preserved = 0;
  for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
    preserved += fx.tree->stats().blocks_preserved_into[i];
  }
  ASSERT_GT(preserved, 0u);
  for (Key k = 0; k < 500; ++k) {
    EXPECT_TRUE(fx.tree->Get(k * 7).ok()) << "key " << k * 7;
  }
  EXPECT_TRUE(fx.tree->Get(3).status().IsNotFound());
}

}  // namespace
}  // namespace lsmssd
