#include "src/util/crc32c.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lsmssd::crc32c {
namespace {

uint32_t ValueOf(const std::string& s) {
  return Value(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32cTest, StandardTestVector) {
  // The canonical CRC-32C check value ("123456789" -> 0xE3069283).
  EXPECT_EQ(ValueOf("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 appendix B.4 vectors.
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Value(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Value(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> incr(32);
  for (size_t i = 0; i < incr.size(); ++i) incr[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Value(incr.data(), incr.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Value(nullptr, 0), 0u); }

TEST(Crc32cTest, ExtendComposes) {
  const std::string whole = "hello, block device world";
  for (size_t split = 0; split <= whole.size(); ++split) {
    const uint32_t head =
        Value(reinterpret_cast<const uint8_t*>(whole.data()), split);
    const uint32_t both = Extend(
        head, reinterpret_cast<const uint8_t*>(whole.data()) + split,
        whole.size() - split);
    EXPECT_EQ(both, ValueOf(whole)) << "split at " << split;
  }
}

TEST(Crc32cTest, DistinguishesSingleBitFlips) {
  // Any single-bit flip in a block-sized buffer must change the CRC
  // (guaranteed by the polynomial's Hamming distance for these lengths).
  std::vector<uint8_t> buf(4096, 0x5A);
  const uint32_t base = Value(buf.data(), buf.size());
  for (size_t bit = 0; bit < buf.size() * 8; bit += 397) {
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Value(buf.data(), buf.size()), base) << "bit " << bit;
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

TEST(Crc32cTest, UnalignedStartsAgree) {
  // The hardware path aligns to 8 bytes first; results must not depend on
  // the buffer's alignment.
  std::vector<uint8_t> backing(64 + 15, 0);
  for (size_t i = 0; i < backing.size(); ++i) {
    backing[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const uint32_t want = Value(backing.data() + 0, 64);
  for (size_t off = 1; off < 8; ++off) {
    std::memmove(backing.data() + off, backing.data(), 64);
    EXPECT_EQ(Value(backing.data() + off, 64), want) << "offset " << off;
    std::memmove(backing.data(), backing.data() + off, 64);
  }
}

}  // namespace
}  // namespace lsmssd::crc32c
