#include "src/util/golden_section.h"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

double Quadratic(size_t i, double minimum_at) {
  const double d = static_cast<double>(i) - minimum_at;
  return d * d;
}

TEST(GoldenSectionTest, FindsInteriorMinimum) {
  auto result = GoldenSectionMinimize(
      101, [](size_t i) { return Quadratic(i, 37.0); });
  EXPECT_EQ(result.best_index, 37u);
  EXPECT_DOUBLE_EQ(result.best_value, 0.0);
}

TEST(GoldenSectionTest, FindsBoundaryMinima) {
  auto left = GoldenSectionMinimize(
      50, [](size_t i) { return static_cast<double>(i); });
  EXPECT_EQ(left.best_index, 0u);
  auto right = GoldenSectionMinimize(
      50, [](size_t i) { return 49.0 - static_cast<double>(i); });
  EXPECT_EQ(right.best_index, 49u);
}

TEST(GoldenSectionTest, SingleCandidate) {
  auto result = GoldenSectionMinimize(1, [](size_t) { return 5.0; });
  EXPECT_EQ(result.best_index, 0u);
  EXPECT_EQ(result.evaluations, 1u);
}

TEST(GoldenSectionTest, TwoAndThreeCandidates) {
  auto two = GoldenSectionMinimize(
      2, [](size_t i) { return i == 1 ? 0.0 : 9.0; });
  EXPECT_EQ(two.best_index, 1u);
  auto three = GoldenSectionMinimize(
      3, [](size_t i) { return Quadratic(i, 1.0); });
  EXPECT_EQ(three.best_index, 1u);
}

TEST(GoldenSectionTest, LogarithmicEvaluationCount) {
  size_t n = 1 << 14;
  auto result = GoldenSectionMinimize(
      n, [](size_t i) { return Quadratic(i, 9000.0); });
  EXPECT_EQ(result.best_index, 9000u);
  // Each bracket step discards ~38%; ~25 evals suffice for 16k candidates.
  EXPECT_LE(result.evaluations, 60u);
}

TEST(GoldenSectionTest, MemoizesEvaluations) {
  size_t calls = 0;
  auto result = GoldenSectionMinimize(64, [&](size_t i) {
    ++calls;
    return Quadratic(i, 20.0);
  });
  EXPECT_EQ(result.best_index, 20u);
  EXPECT_EQ(calls, result.evaluations);
}

// Property sweep: the search must find the exact optimum of every
// unimodal quadratic, wherever the minimum sits.
class GoldenSectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(GoldenSectionSweep, ExactOnAllMinimumPositions) {
  const double m = GetParam();
  auto result =
      GoldenSectionMinimize(11, [&](size_t i) { return Quadratic(i, m); });
  EXPECT_EQ(result.best_index, static_cast<size_t>(m));
}

INSTANTIATE_TEST_SUITE_P(AllPositions, GoldenSectionSweep,
                         ::testing::Range(0, 11));

TEST(LinearScanTest, StopsEarlyAfterTurn) {
  size_t calls = 0;
  auto result = LinearScanMinimize(100, [&](size_t i) {
    ++calls;
    return Quadratic(i, 3.0);
  });
  EXPECT_EQ(result.best_index, 3u);
  EXPECT_EQ(calls, 5u);  // 0,1,2,3,4 — stops once the curve turns up.
}

TEST(LinearScanTest, HandlesMonotoneDecreasing) {
  auto result = LinearScanMinimize(
      20, [](size_t i) { return 19.0 - static_cast<double>(i); });
  EXPECT_EQ(result.best_index, 19u);
}

TEST(LinearScanTest, PlateauDoesNotStopScan) {
  // f = [3,3,1,...]: equal values must not trigger the early stop.
  auto result = LinearScanMinimize(4, [](size_t i) {
    const double v[] = {3, 3, 1, 2};
    return v[i];
  });
  EXPECT_EQ(result.best_index, 2u);
}

}  // namespace
}  // namespace lsmssd
