#include "src/util/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(RandomTest, DeterministicForEqualSeeds) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, SeedZeroIsValid) {
  Random r(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r.Next());
  EXPECT_GT(seen.size(), 45u);  // Not a constant stream.
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformOneAlwaysZero) {
  Random r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.Uniform(1), 0u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = r.UniformRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UniformIsRoughlyUniform) {
  Random r(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) ++counts[r.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, GaussianMomentsMatchStandardNormal) {
  Random r(17);
  constexpr int kSamples = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = r.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RandomTest, BernoulliEdgeCases) {
  Random r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRate) {
  Random r(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace lsmssd
