#include "src/util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace lsmssd {
namespace {

TEST(TablePrinterTest, CsvRoundTrip) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x", "y"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TablePrinterTest, AddRowValuesFormatsMixedTypes) {
  TablePrinter t({"name", "count", "ratio"});
  t.AddRowValues("full", 42, 1.5);
  EXPECT_EQ(t.ToCsv(), "name,count,ratio\nfull,42,1.5\n");
}

TEST(TablePrinterTest, DoubleFormattingIsCompact) {
  TablePrinter t({"v"});
  t.AddRowValues(1234.56789);
  t.AddRowValues(2.0);
  EXPECT_EQ(t.ToCsv(), "v\n1234.57\n2\n");
}

TEST(TablePrinterTest, AlignedColumnsPad) {
  TablePrinter t({"col", "x"});
  t.AddRow({"longvalue", "1"});
  const std::string aligned = t.ToAligned();
  // Header line padded to the widest cell.
  EXPECT_NE(aligned.find("col        x"), std::string::npos);
  EXPECT_NE(aligned.find("longvalue  1"), std::string::npos);
}

TEST(TablePrinterTest, PrintEmitsCsvMarkers) {
  TablePrinter t({"a"});
  t.AddRow({"1"});
  std::ostringstream out;
  t.Print(out, "fig42");
  const std::string s = out.str();
  EXPECT_NE(s.find("# begin-csv fig42\n"), std::string::npos);
  EXPECT_NE(s.find("# end-csv\n"), std::string::npos);
  EXPECT_LT(s.find("# begin-csv"), s.find("a\n1\n"));
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace lsmssd
