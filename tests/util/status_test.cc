#include "src/util/status.h"

#include <gtest/gtest.h>

#include "src/util/statusor.h"

namespace lsmssd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_EQ(Status::Internal("boom").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("k=3").ToString(), "NotFound: k=3");
  EXPECT_EQ(Status::Corruption("").ToString(), "Corruption");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status {
    LSMSSD_RETURN_IF_ERROR(Status::IoError("disk gone"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIoError());

  auto succeeds = []() -> Status {
    LSMSSD_RETURN_IF_ERROR(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_TRUE(succeeds().IsNotFound());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(*v, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string(1000, 'x'));
  std::string s = std::move(v).value();
  EXPECT_EQ(s.size(), 1000u);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::Corruption("bad");
    return 41;
  };
  auto outer = [&](bool fail) -> StatusOr<int> {
    LSMSSD_ASSIGN_OR_RETURN(int x, inner(fail));
    return x + 1;
  };
  EXPECT_EQ(outer(false).value(), 42);
  EXPECT_TRUE(outer(true).status().IsCorruption());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

}  // namespace
}  // namespace lsmssd
