#include "src/util/histogram.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/util/random.h"

namespace lsmssd {
namespace {

TEST(HistogramTest, BucketAssignment) {
  Histogram h(0, 99, 10);
  EXPECT_EQ(h.BucketOf(0), 0u);
  EXPECT_EQ(h.BucketOf(9), 0u);
  EXPECT_EQ(h.BucketOf(10), 1u);
  EXPECT_EQ(h.BucketOf(99), 9u);
}

TEST(HistogramTest, OutOfRangeClampsToEnds) {
  Histogram h(100, 199, 10);
  EXPECT_EQ(h.BucketOf(5), 0u);
  EXPECT_EQ(h.BucketOf(1000), 9u);
}

TEST(HistogramTest, CountsAndFrequencies) {
  Histogram h(0, 9, 2);
  h.Add(1);
  h.Add(2);
  h.Add(7);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_DOUBLE_EQ(h.Frequency(0), 2.0 / 3.0);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0, 9, 2);
  h.AddWeighted(1, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bucket_count(0), 10u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h(0, 9, 2);
  h.Add(3);
  h.Clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.Frequency(0), 0.0);
}

TEST(HistogramTest, BucketLowBoundaries) {
  Histogram h(0, 99, 10);
  EXPECT_EQ(h.BucketLow(0), 0u);
  EXPECT_EQ(h.BucketLow(5), 50u);
}

TEST(HistogramTest, BucketLowIsExactInverseOfBucketOf) {
  // BucketOf and BucketLow derive from one exact mapping, so BucketLow(i)
  // must land in bucket i, and the value just below it in bucket i-1 —
  // for every bucket, including ranges where width % buckets != 0 and
  // the full-uint64 range where naive double math loses precision.
  struct Range {
    uint64_t lo, hi;
    size_t buckets;
  };
  const Range kRanges[] = {
      {0, 99, 10},                // Even split.
      {3, 17, 7},                 // Width 15 over 7 buckets.
      {1000, 1006, 7},            // One value per bucket.
      {5, 104, 33},               // Width 100 over 33 buckets.
      {0, UINT64_MAX, 100},       // Width 2^64: overflows any u64 math.
      {UINT64_MAX - 1000, UINT64_MAX, 13},
      {0, 6, 3},                  // Tiny odd split.
      {123456789, 987654321, 97},
  };
  for (const Range& r : kRanges) {
    Histogram h(r.lo, r.hi, r.buckets);
    for (size_t i = 0; i < r.buckets; ++i) {
      SCOPED_TRACE("range [" + std::to_string(r.lo) + ", " +
                   std::to_string(r.hi) + "] x" + std::to_string(r.buckets) +
                   " bucket " + std::to_string(i));
      const uint64_t low = h.BucketLow(i);
      EXPECT_EQ(h.BucketOf(low), i);
      if (i > 0) {
        // BucketLow is the *smallest* value mapping to bucket i.
        EXPECT_EQ(h.BucketOf(low - 1), i - 1);
      }
    }
  }
}

TEST(HistogramTest, MergeEqualsUnionOfSamples) {
  // Merging B into A must yield exactly the histogram that would have
  // seen all of A's and B's samples directly.
  Histogram a(0, 999, 50);
  Histogram b(0, 999, 50);
  Histogram both(0, 999, 50);
  Random rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Uniform(1000);
    if (i % 3 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    both.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), both.total());
  for (size_t i = 0; i < a.num_buckets(); ++i) {
    EXPECT_EQ(a.bucket_count(i), both.bucket_count(i)) << "bucket " << i;
  }
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  // (A + B) + C == A + (B + C) == (C + B) + A, bucket for bucket.
  Random rng(13);
  auto fill = [&rng](Histogram& h, int n) {
    for (int i = 0; i < n; ++i) h.Add(rng.Uniform(1'000'000));
  };
  Histogram a(0, 999'999, 64), b(0, 999'999, 64), c(0, 999'999, 64);
  fill(a, 1000);
  fill(b, 2000);
  fill(c, 3000);

  Histogram left = a;   // (A + B) + C
  left.Merge(b);
  left.Merge(c);
  Histogram bc = b;     // A + (B + C)
  bc.Merge(c);
  Histogram right = a;
  right.Merge(bc);
  Histogram rev = c;    // (C + B) + A
  rev.Merge(b);
  rev.Merge(a);

  EXPECT_EQ(left.total(), right.total());
  EXPECT_EQ(left.total(), rev.total());
  for (size_t i = 0; i < left.num_buckets(); ++i) {
    EXPECT_EQ(left.bucket_count(i), right.bucket_count(i)) << "bucket " << i;
    EXPECT_EQ(left.bucket_count(i), rev.bucket_count(i)) << "bucket " << i;
  }
}

TEST(HistogramTest, MergeEmptyIsIdentity) {
  // The empty histogram is the identity on both sides: merging it in
  // changes nothing, and merging into it reproduces the other operand —
  // the inverse direction of MergeEqualsUnionOfSamples.
  Histogram a(0, 99, 10);
  a.Add(5);
  a.Add(42);
  a.AddWeighted(97, 7);

  Histogram empty(0, 99, 10);
  Histogram id = a;
  id.Merge(empty);
  Histogram onto = empty;
  onto.Merge(a);

  EXPECT_EQ(id.total(), a.total());
  EXPECT_EQ(onto.total(), a.total());
  for (size_t i = 0; i < a.num_buckets(); ++i) {
    EXPECT_EQ(id.bucket_count(i), a.bucket_count(i)) << "bucket " << i;
    EXPECT_EQ(onto.bucket_count(i), a.bucket_count(i)) << "bucket " << i;
  }
}

TEST(HistogramDeathTest, MergeRejectsMismatchedDomains) {
  Histogram a(0, 99, 10);
  Histogram wider(0, 199, 10);
  Histogram finer(0, 99, 20);
  EXPECT_DEATH(a.Merge(wider), "identical domain");
  EXPECT_DEATH(a.Merge(finer), "identical domain");
}

TEST(HistogramTest, FlatDistributionHasLowCv) {
  Histogram h(0, 999'999, 100);
  Random rng(5);
  for (int i = 0; i < 200000; ++i) h.Add(rng.Uniform(1'000'000));
  EXPECT_LT(h.FrequencyCv(), 0.1);
}

TEST(HistogramTest, SkewedDistributionHasHighCv) {
  Histogram h(0, 999'999, 100);
  Random rng(5);
  for (int i = 0; i < 200000; ++i) h.Add(500'000 + rng.Uniform(10'000));
  EXPECT_GT(h.FrequencyCv(), 2.0);
}

TEST(HistogramTest, CsvHasOneLinePerBucket) {
  Histogram h(0, 9, 5);
  h.Add(1);
  const std::string csv = h.ToCsv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.max_value(), 0u);
}

TEST(LatencyHistogramTest, SingleSampleIsExactAtEveryPercentile) {
  LatencyHistogram h;
  h.Add(123456789);
  EXPECT_EQ(h.Percentile(0), 123456789u);
  EXPECT_EQ(h.Percentile(50), 123456789u);
  EXPECT_EQ(h.Percentile(100), 123456789u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below 16 land in dedicated linear buckets.
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Add(v);
  for (uint64_t v = 0; v < 16; ++v) {
    const double p = 100.0 * static_cast<double>(v + 1) / 16.0;
    EXPECT_EQ(h.Percentile(p), v) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, PercentilesBoundedWithinOneBucket) {
  // Each power-of-two decade splits into 16 sub-buckets, so a reported
  // percentile is below the true value by at most 1/16 of its decade
  // (~6.25% relative error).
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Add(v);
  const uint64_t p50 = h.Percentile(50);
  EXPECT_LE(p50, 50000u);
  EXPECT_GE(p50, 46875u);  // 50000 * 15/16.
  const uint64_t p99 = h.Percentile(99);
  EXPECT_LE(p99, 99000u);
  EXPECT_GE(p99, 92812u);
}

TEST(LatencyHistogramTest, OrderStatisticsAreMonotone) {
  LatencyHistogram h;
  Random rng(7);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(1u << 30));
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_LE(prev, h.max_value());
}

TEST(LatencyHistogramTest, HandlesHugeValues) {
  LatencyHistogram h;
  h.Add(std::numeric_limits<uint64_t>::max());
  h.Add(0);
  EXPECT_EQ(h.max_value(), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(h.Percentile(100), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(h.Percentile(1), 0u);
}

TEST(LatencyHistogramTest, ClearResets) {
  LatencyHistogram h;
  h.Add(42);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(LatencyHistogramTest, MergeEqualsUnionOfSamples) {
  LatencyHistogram a, b, both;
  Random rng(17);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Uniform(1u << 28);
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    both.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.max_value(), both.max_value());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(a.Percentile(p), both.Percentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, MergeEmptyIsIdentity) {
  LatencyHistogram a;
  a.Add(7);
  a.Add(1000);
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 1007u);
  EXPECT_EQ(a.max_value(), 1000u);

  LatencyHistogram onto;
  onto.Merge(a);
  EXPECT_EQ(onto.count(), 2u);
  EXPECT_EQ(onto.sum(), 1007u);
  EXPECT_EQ(onto.Percentile(100), 1000u);
}

TEST(LatencyHistogramTest, MergeIsAssociative) {
  LatencyHistogram a, b, c;
  Random rng(19);
  for (int i = 0; i < 3000; ++i) a.Add(rng.Uniform(1u << 20));
  for (int i = 0; i < 4000; ++i) b.Add(rng.Uniform(1u << 24));
  for (int i = 0; i < 5000; ++i) c.Add(rng.Uniform(1u << 16));

  LatencyHistogram left = a;  // (A + B) + C
  left.Merge(b);
  left.Merge(c);
  LatencyHistogram bc = b;    // A + (B + C)
  bc.Merge(c);
  LatencyHistogram right = a;
  right.Merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.max_value(), right.max_value());
  for (double p : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_EQ(left.Percentile(p), right.Percentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, ToStringCarriesSummary) {
  LatencyHistogram h;
  h.Add(10);
  h.Add(20);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos);
  EXPECT_NE(s.find("mean=15"), std::string::npos);
  EXPECT_NE(s.find("max=20"), std::string::npos);
}

}  // namespace
}  // namespace lsmssd
