#include "src/db/db.h"

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/workload/driver.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

/// Fresh per-test Db directory under the gtest temp dir.
std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/db_" + tag + "_" +
                          std::to_string(::getpid());
  ::unlink(Db::ManifestPath(dir).c_str());
  ::unlink(Db::ManifestTmpPath(dir).c_str());
  ::unlink(Db::DevicePath(dir).c_str());
  ::unlink(Db::ChecksumPath(dir).c_str());
  ::unlink(Db::WalPath(dir).c_str());
  for (const std::string& seg : Db::ListWalSegments(dir)) {
    ::unlink(seg.c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

DbOptions TinyDbOptions() {
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.checkpoint_wal_bytes = 0;  // Manual checkpoints unless asked.
  return dbopts;
}

TEST(DbTest, OpenPutGetReopenRecoversFromWalAlone) {
  const std::string dir = FreshDir("walonly");
  const DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    for (Key k = 0; k < 50; ++k) {
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
    ASSERT_TRUE(db.Delete(7).ok());
    auto v = db.Get(3);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, 3));
  }  // No checkpoint was ever taken: recovery is pure WAL replay.
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    EXPECT_EQ(db.Stats().recovery_wal_entries_replayed, 51u);
    EXPECT_EQ(db.Stats().recovery_manifest_blocks, 0u);
    for (Key k = 0; k < 50; ++k) {
      auto v = db.Get(k);
      if (k == 7) {
        EXPECT_TRUE(v.status().IsNotFound());
      } else {
        ASSERT_TRUE(v.ok()) << "key " << k;
        EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
      }
    }
  }
}

TEST(DbTest, CheckpointTruncatesWalAndReopenUsesManifest) {
  const std::string dir = FreshDir("ckpt");
  const DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    // Enough data to spill well past L0 (merges allocate real blocks).
    for (Key k = 0; k < 600; ++k) {
      ASSERT_TRUE(db.Put(k * 3, MakePayload(dbopts.options, k * 3)).ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());
    EXPECT_EQ(db.Stats().checkpoints, 1u);
    // Post-checkpoint tail.
    for (Key k = 0; k < 20; ++k) {
      ASSERT_TRUE(
          db.Put(10'000 + k, MakePayload(dbopts.options, 10'000 + k)).ok());
    }
  }
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    const DbStats stats = db.Stats();
    EXPECT_GT(stats.recovery_manifest_blocks, 0u);
    EXPECT_EQ(stats.recovery_wal_entries_replayed, 20u);  // Tail only.
    for (Key k = 0; k < 600; ++k) {
      ASSERT_TRUE(db.Get(k * 3).ok()) << "key " << k * 3;
    }
    for (Key k = 0; k < 20; ++k) {
      ASSERT_TRUE(db.Get(10'000 + k).ok());
    }
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());
  }
}

TEST(DbTest, AutoCheckpointFiresOnWalSize) {
  const std::string dir = FreshDir("auto");
  DbOptions dbopts = TinyDbOptions();
  dbopts.checkpoint_wal_bytes = 2048;  // ~55 tiny entries.
  dbopts.background_checkpoint = false;  // Deterministic counts.
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  for (Key k = 0; k < 400; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  EXPECT_GT(db.Stats().checkpoints, 2u);
  // The WAL threshold also bounds replay work on the next open.
  auto reopened = Db::Open(dbopts, dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_LT(reopened.value()->Stats().recovery_wal_entries_replayed, 60u);
}

TEST(DbTest, AutoCheckpointCountsRecoveredWalBytes) {
  const std::string dir = FreshDir("autorec");
  DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 0; k < 100; ++k) {
      ASSERT_TRUE(
          db_or.value()->Put(k, MakePayload(dbopts.options, k)).ok());
    }
  }  // ~3.7KB of WAL left behind.
  dbopts.checkpoint_wal_bytes = 2048;
  dbopts.background_checkpoint = false;  // Deterministic counts.
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  // The recovered tail already exceeds the threshold: the first
  // modification triggers a checkpoint rather than letting the log grow
  // unboundedly across restart loops.
  ASSERT_TRUE(db_or.value()->Put(500, MakePayload(dbopts.options, 500)).ok());
  EXPECT_EQ(db_or.value()->Stats().checkpoints, 1u);
}

TEST(DbTest, ScanAndIteratorSeeWalRecoveredState) {
  const std::string dir = FreshDir("scan");
  const DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 1; k <= 30; ++k) {
      ASSERT_TRUE(
          db_or.value()->Put(k * 2, MakePayload(dbopts.options, k * 2)).ok());
    }
    ASSERT_TRUE(db_or.value()->Delete(10).ok());
  }
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  std::vector<std::pair<Key, std::string>> got;
  ASSERT_TRUE(db_or.value()->Scan(0, 100, &got).ok());
  EXPECT_EQ(got.size(), 29u);  // 30 puts minus the deleted key 10.
  size_t n = 0;
  auto it = db_or.value()->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++n;
  EXPECT_EQ(n, 29u);
}

TEST(DbTest, RejectsInvalidConfigurations) {
  const std::string dir = FreshDir("badopts");
  struct Case {
    const char* name;
    void (*mutate)(DbOptions&);
    const char* expect_substring;  // Must appear in the error message.
  };
  const Case kCases[] = {
      {"tree options must validate",
       [](DbOptions& o) { o.options.gamma = 1.0; }, ""},
      {"annihilate_delete_put breaks blind replay",
       [](DbOptions& o) { o.options.annihilate_delete_put = true; },
       "annihilate"},
      {"kEveryN with a zero batch never syncs",
       [](DbOptions& o) {
         o.wal_sync_mode = WalSyncMode::kEveryN;
         o.wal_sync_every_n = 0;
       },
       "wal_sync_every_n"},
      {"checkpoint threshold of one byte checkpoints every op",
       [](DbOptions& o) { o.checkpoint_wal_bytes = 1; },
       "checkpoint_wal_bytes"},
      {"checkpoint threshold under two entries checkpoints every op",
       [](DbOptions& o) { o.checkpoint_wal_bytes = 40; },
       "checkpoint_wal_bytes"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    DbOptions dbopts = TinyDbOptions();
    c.mutate(dbopts);
    const Status st = Db::Open(dbopts, dir).status();
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    EXPECT_NE(st.message().find(c.expect_substring), std::string::npos)
        << st.message();
    struct ::stat unused;
    EXPECT_NE(::stat(dir.c_str(), &unused), 0)
        << "rejected Open must not leave a directory behind";
  }
  // Boundary: exactly two max-size framed entries (8B frame + 1B type +
  // 8B key + payload) is the smallest accepted threshold; 0 disables.
  DbOptions ok = TinyDbOptions();
  ok.checkpoint_wal_bytes = 2 * (4 + 4 + 1 + 8 + ok.options.payload_size);
  ok.background_checkpoint = false;
  EXPECT_TRUE(Db::Open(ok, dir).ok());
}

TEST(DbTest, CreateIfMissingAndErrorIfExists) {
  const std::string dir = FreshDir("flags");
  DbOptions dbopts = TinyDbOptions();
  dbopts.create_if_missing = false;
  EXPECT_TRUE(Db::Open(dbopts, dir).status().IsNotFound());

  dbopts.create_if_missing = true;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    ASSERT_TRUE(db_or.value()->Put(1, MakePayload(dbopts.options, 1)).ok());
    ASSERT_TRUE(db_or.value()->Checkpoint().ok());
  }
  dbopts.error_if_exists = true;
  EXPECT_EQ(Db::Open(dbopts, dir).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DbTest, ErrorIfExistsCatchesPreCheckpointLeftovers) {
  const std::string dir = FreshDir("flags2");
  DbOptions dbopts = TinyDbOptions();
  {  // Crash before the first checkpoint: wal.log exists, MANIFEST not.
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    ASSERT_TRUE(db_or.value()->Put(1, MakePayload(dbopts.options, 1)).ok());
  }
  struct ::stat st;
  ASSERT_NE(::stat(Db::ManifestPath(dir).c_str(), &st), 0);  // No manifest.
  dbopts.error_if_exists = true;
  EXPECT_EQ(Db::Open(dbopts, dir).status().code(),
            StatusCode::kFailedPrecondition);
  // Without the flag, the leftover WAL is recoverable state, not a
  // fresh directory to silently replay into.
  dbopts.error_if_exists = false;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  EXPECT_TRUE(db_or.value()->Get(1).ok());
}

TEST(DbTest, MidWalCorruptionFailsOpenInsteadOfTruncating) {
  // Bit rot in an early WAL entry must not make Open silently truncate
  // away the later (synced, acknowledged) entries behind it.
  const std::string dir = FreshDir("rot");
  const DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 0; k < 10; ++k) {
      ASSERT_TRUE(db_or.value()->Put(k, MakePayload(dbopts.options, k)).ok());
    }
  }
  {  // Flip one byte in the first entry's payload.
    std::fstream f(Db::WalPath(dir),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(12);
    char c = static_cast<char>(f.get());
    f.seekp(12);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  auto db_or = Db::Open(dbopts, dir);
  EXPECT_TRUE(db_or.status().IsCorruption()) << db_or.status().ToString();
}

TEST(DbTest, BadModificationsAreRejectedBeforeLogging) {
  const std::string dir = FreshDir("reject");
  const DbOptions dbopts = TinyDbOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  EXPECT_TRUE(db.Put(1, "short").IsInvalidArgument());
  EXPECT_TRUE(db.Put(uint64_t{1} << 40, MakePayload(dbopts.options, 1))
                  .IsInvalidArgument());  // key_size = 4 bytes.
  EXPECT_FALSE(db.failed());  // Caller error, not a durability error.
  // The rejected requests were never logged: nothing replays.
  EXPECT_EQ(db.Stats().wal_entries_appended, 0u);
}

TEST(DbTest, TornWalTailFromHardKillIsTolerated) {
  const std::string dir = FreshDir("torn");
  const DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 0; k < 10; ++k) {
      ASSERT_TRUE(db_or.value()->Put(k, MakePayload(dbopts.options, k)).ok());
    }
  }
  {  // Simulate a torn final append: half an entry of garbage.
    std::ofstream out(Db::WalPath(dir),
                      std::ios::binary | std::ios::app);
    out.write("\x20\x00\x00\x00\xde\xad", 6);
  }
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  EXPECT_EQ(db_or.value()->Stats().recovery_wal_entries_replayed, 10u);
  // And the Db keeps working, appending cleanly after recovery.
  ASSERT_TRUE(
      db_or.value()->Put(99, MakePayload(dbopts.options, 99)).ok());
  auto reopened = Db::Open(dbopts, dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value()->Get(99).ok());
}

TEST(DbTest, StaleManifestTmpIsIgnored) {
  const std::string dir = FreshDir("tmp");
  const DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    ASSERT_TRUE(db_or.value()->Put(1, MakePayload(dbopts.options, 1)).ok());
    ASSERT_TRUE(db_or.value()->Checkpoint().ok());
  }
  {  // A checkpoint that died before its rename leaves a garbage tmp.
    std::ofstream out(Db::ManifestTmpPath(dir), std::ios::binary);
    out.write("garbage", 7);
  }
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  EXPECT_TRUE(db_or.value()->Get(1).ok());
  struct ::stat st;
  EXPECT_NE(::stat(Db::ManifestTmpPath(dir).c_str(), &st), 0);  // Gone.
}

TEST(DbTest, StoredFormatOptionsAreAuthoritativeOnReopen) {
  const std::string dir = FreshDir("fmt");
  DbOptions dbopts = TinyDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    ASSERT_TRUE(db_or.value()->Put(1, MakePayload(dbopts.options, 1)).ok());
    ASSERT_TRUE(db_or.value()->Checkpoint().ok());
  }
  // Ask for an incompatible format; the stored one must win.
  DbOptions other = dbopts;
  other.options.block_size = 512;
  other.options.payload_size = 40;
  other.options.cache_blocks = 8;  // Runtime-only: honored.
  auto db_or = Db::Open(other, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  EXPECT_EQ(db_or.value()->options().block_size, 256u);
  EXPECT_EQ(db_or.value()->options().payload_size, 20u);
  EXPECT_EQ(db_or.value()->options().cache_blocks, 8u);
  EXPECT_TRUE(db_or.value()->Get(1).ok());
}

TEST(DbTest, GroupCommitAndNoneModesAckWithoutSyncing) {
  const std::string dir = FreshDir("modes");
  DbOptions dbopts = TinyDbOptions();
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;
  dbopts.wal_sync_every_n = 10;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 0; k < 25; ++k) {
      ASSERT_TRUE(db_or.value()->Put(k, MakePayload(dbopts.options, k)).ok());
    }
    EXPECT_EQ(db_or.value()->Stats().wal_syncs, 2u);  // At 10 and 20.
    ASSERT_TRUE(db_or.value()->SyncWal().ok());
    EXPECT_EQ(db_or.value()->Stats().wal_syncs, 3u);
  }
  dbopts.wal_sync_mode = WalSyncMode::kNone;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 100; k < 120; ++k) {
      ASSERT_TRUE(db_or.value()->Put(k, MakePayload(dbopts.options, k)).ok());
    }
    EXPECT_EQ(db_or.value()->Stats().wal_syncs, 0u);
  }  // Destructor syncs best-effort; a clean close loses nothing.
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  for (Key k = 100; k < 120; ++k) EXPECT_TRUE(db_or.value()->Get(k).ok());
}

TEST(DbTest, StatsSurfaceIoAndWalCounters) {
  const std::string dir = FreshDir("stats");
  DbOptions dbopts = TinyDbOptions();
  dbopts.options.cache_blocks = 16;
  dbopts.options.bloom_bits_per_key = 10;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(db.Put(k * 2, MakePayload(dbopts.options, k * 2)).ok());
  }
  for (Key k = 0; k < 200; ++k) (void)db.Get(k * 2);
  for (Key k = 0; k < 200; ++k) (void)db.Get(k * 2 + 1);  // Bloom misses.
  const DbStats stats = db.Stats();
  EXPECT_GT(stats.io.block_writes(), 0u);
  EXPECT_GT(stats.io.cache_hits() + stats.io.cache_misses(), 0u);
  EXPECT_GT(stats.io.bloom_skips(), 0u);
  EXPECT_EQ(stats.wal_entries_appended, 500u);
  EXPECT_GT(stats.wal_bytes_appended, 500u * 29u);  // 8B frame + 9B + 20B.
  EXPECT_EQ(stats.wal_syncs, 500u);  // kAlways.
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("wal:"), std::string::npos);
  EXPECT_NE(text.find("recovery:"), std::string::npos);
}

TEST(DbTest, LargeWorkloadWithMergesSurvivesManyReopens) {
  const std::string dir = FreshDir("large");
  DbOptions dbopts = TinyDbOptions();
  dbopts.checkpoint_wal_bytes = 4096;
  dbopts.background_checkpoint = false;  // tree() checks need quiescence.
  std::map<Key, bool> model;  // key -> live?
  for (int round = 0; round < 5; ++round) {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    for (Key i = 0; i < 300; ++i) {
      const Key k = (static_cast<Key>(round) * 131 + i * 7) % 2000;
      if (i % 5 == 4) {
        ASSERT_TRUE(db.Delete(k).ok());
        model[k] = false;
      } else {
        ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
        model[k] = true;
      }
    }
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());
  }
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  for (const auto& [k, live] : model) {
    auto v = db_or.value()->Get(k);
    if (live) {
      ASSERT_TRUE(v.ok()) << "lost key " << k;
      EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
    } else {
      EXPECT_TRUE(v.status().IsNotFound()) << "ghost key " << k;
    }
  }
}

TEST(DbTest, BackgroundCheckpointRunsOffTheWriterThread) {
  const std::string dir = FreshDir("bg");
  DbOptions dbopts = TinyDbOptions();
  dbopts.checkpoint_wal_bytes = 2048;
  dbopts.background_checkpoint = true;  // The default, spelled out.
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    for (Key k = 0; k < 400; ++k) {
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
    // Writers only *request* checkpoints; the maintenance thread runs
    // them asynchronously. Give it a moment (typically instant).
    for (int i = 0; i < 2000 && db.Stats().checkpoints == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(db.Stats().checkpoints, 0u);
    EXPECT_FALSE(db.failed());
    db.Close();  // Idempotent; the destructor calls it again.
  }
  auto reopened = Db::Open(dbopts, dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const DbStats stats = reopened.value()->Stats();
  EXPECT_GT(stats.recovery_manifest_blocks, 0u);
  EXPECT_LT(stats.recovery_wal_entries_replayed, 400u);
  for (Key k = 0; k < 400; ++k) {
    ASSERT_TRUE(reopened.value()->Get(k).ok()) << "key " << k;
  }
}

TEST(DbTest, InjectedWalFaultPoisonsTheInstanceUntilReopen) {
  const std::string dir = FreshDir("poison");
  DbOptions dbopts = TinyDbOptions();
  FaultInjector fi;
  dbopts.fault_injector = &fi;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  ASSERT_TRUE(db.Put(1, MakePayload(dbopts.options, 1)).ok());

  fi.Arm(0);  // Next durable step (the WAL append) dies.
  EXPECT_TRUE(db.Put(2, MakePayload(dbopts.options, 2)).IsIoError());
  EXPECT_TRUE(db.failed());
  EXPECT_EQ(db.Put(3, MakePayload(dbopts.options, 3)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Get(1).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.NewIterator(), nullptr);

  fi.Disarm();
  auto reopened = Db::Open(dbopts, dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->Get(1).ok());  // Acked+synced survives.
  EXPECT_TRUE(reopened.value()->Get(2).status().IsNotFound());
}

}  // namespace
}  // namespace lsmssd
