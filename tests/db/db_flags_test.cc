#include "src/db/db_flags.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/flags.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

// Builds an argv from string literals and parses it like main() would.
StatusOr<FlagMap> Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (std::string& a : args) argv.push_back(a.data());
  return ParseFlagArgs(static_cast<int>(argv.size()), argv.data(), 1);
}

FlagMap MustParse(std::vector<std::string> args) {
  auto flags_or = Parse(std::move(args));
  EXPECT_TRUE(flags_or.ok()) << flags_or.status().message();
  return std::move(flags_or).value();
}

TEST(ParseFlagArgsTest, AcceptsFlagsAndBareSwitches) {
  const FlagMap flags =
      MustParse({"--shards=4", "--background-compaction", "--policy=RR"});
  EXPECT_EQ(flags.at("shards"), "4");
  EXPECT_EQ(flags.at("background-compaction"), "1");
  EXPECT_EQ(flags.at("policy"), "RR");
}

TEST(ParseFlagArgsTest, RejectsNonFlagArguments) {
  for (const char* bad : {"shards=4", "-shards=4", "positional", "--=5"}) {
    auto flags_or = Parse({bad});
    ASSERT_FALSE(flags_or.ok()) << bad;
    EXPECT_TRUE(flags_or.status().IsInvalidArgument()) << bad;
  }
}

TEST(FlagUintTest, StrictParseTable) {
  struct Case {
    const char* value;
    bool ok;
    uint64_t want;
  };
  const Case kCases[] = {
      {"0", true, 0},
      {"42", true, 42},
      {"18446744073709551615", true, UINT64_MAX},
      {"", false, 0},
      {"-3", false, 0},
      {"+3", false, 0},
      {"12abc", false, 0},
      {"0x10", false, 0},
      {"3.5", false, 0},
      {"18446744073709551616", false, 0},  // overflow
  };
  for (const Case& c : kCases) {
    FlagMap flags{{"n", c.value}};
    auto v = FlagUint(flags, "n", 7);
    EXPECT_EQ(v.ok(), c.ok) << "value: \"" << c.value << "\"";
    if (c.ok && v.ok()) {
      EXPECT_EQ(v.value(), c.want);
    }
    if (!c.ok && !v.ok()) {
      EXPECT_TRUE(v.status().IsInvalidArgument());
      // The error must name the flag so the user can find it.
      EXPECT_NE(v.status().message().find("n"), std::string::npos);
    }
  }
  // Absent flag -> fallback.
  auto fb = FlagUint(FlagMap{}, "n", 7);
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(fb.value(), 7u);
}

TEST(FlagBoolTest, OnlyCanonicalSpellings) {
  EXPECT_TRUE(FlagBool(FlagMap{{"x", "1"}}, "x", false).value());
  EXPECT_TRUE(FlagBool(FlagMap{{"x", "true"}}, "x", false).value());
  EXPECT_FALSE(FlagBool(FlagMap{{"x", "0"}}, "x", true).value());
  EXPECT_FALSE(FlagBool(FlagMap{{"x", "false"}}, "x", true).value());
  EXPECT_FALSE(FlagBool(FlagMap{{"x", "yes"}}, "x", false).ok());
  EXPECT_TRUE(FlagBool(FlagMap{}, "x", true).value());
}

TEST(CheckKnownFlagsTest, CatchesTypos) {
  std::vector<std::string_view> known = {"port", "host"};
  AppendDbFlagNames(&known);
  EXPECT_TRUE(CheckKnownFlags(MustParse({"--port=1", "--shards=2"}), known)
                  .ok());
  const Status bad =
      CheckKnownFlags(MustParse({"--shrads=2"}), known);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.IsInvalidArgument());
  EXPECT_NE(bad.message().find("shrads"), std::string::npos);
}

class DbOptionsFromFlagsTest : public ::testing::Test {
 protected:
  StatusOr<DbOptions> Build(std::vector<std::string> args) {
    auto flags_or = Parse(std::move(args));
    if (!flags_or.ok()) return flags_or.status();
    return DbOptionsFromFlags(flags_or.value(), testing::TinyOptions());
  }
};

TEST_F(DbOptionsFromFlagsTest, DefaultsAreServingDefaults) {
  auto dbopts_or = Build({});
  ASSERT_TRUE(dbopts_or.ok()) << dbopts_or.status().message();
  const DbOptions& o = dbopts_or.value();
  EXPECT_EQ(o.policy, PolicyKind::kChooseBest);
  EXPECT_EQ(o.wal_sync_mode, WalSyncMode::kEveryN);
  EXPECT_EQ(o.wal_sync_every_n, 64u);
  EXPECT_EQ(o.checkpoint_wal_bytes, 8u * 1024 * 1024);
  EXPECT_FALSE(o.background_compaction);
  EXPECT_EQ(o.compaction_workers, 1u);
  EXPECT_EQ(o.compaction_rate_limit_blocks_per_sec, 0u);
  EXPECT_EQ(o.shards, 1u);
  EXPECT_EQ(o.scrub_interval_ms, 0u);
  EXPECT_EQ(o.max_device_blocks, 0u);
  EXPECT_EQ(o.options.vlog_value_threshold, 0u);  // KV separation off.
  EXPECT_EQ(o.vlog_gc_ratio, 0.0);
  // The builder must force annihilation off even though TinyOptions
  // leaves it configurable: WAL replay cannot tolerate it.
  EXPECT_FALSE(o.options.annihilate_delete_put);
}

TEST_F(DbOptionsFromFlagsTest, AllFlagsReachTheirFields) {
  auto dbopts_or = Build({"--policy=TestMixed", "--bloom=10",
                          "--cache-blocks=32", "--sync=always",
                          "--checkpoint-wal-mb=2", "--background-compaction",
                          "--compaction-workers=3",
                          "--compaction-rate-limit=5000", "--shards=4",
                          "--scrub-interval-ms=50", "--max-device-blocks=999",
                          "--vlog-threshold=128", "--vlog-gc-ratio=0.4"});
  ASSERT_TRUE(dbopts_or.ok()) << dbopts_or.status().message();
  const DbOptions& o = dbopts_or.value();
  EXPECT_EQ(o.policy, PolicyKind::kTestMixed);
  EXPECT_EQ(o.options.bloom_bits_per_key, 10u);
  EXPECT_EQ(o.options.cache_blocks, 32u);
  EXPECT_EQ(o.wal_sync_mode, WalSyncMode::kAlways);
  EXPECT_EQ(o.checkpoint_wal_bytes, 2u * 1024 * 1024);
  EXPECT_TRUE(o.background_compaction);
  EXPECT_EQ(o.compaction_workers, 3u);
  EXPECT_EQ(o.compaction_rate_limit_blocks_per_sec, 5000u);
  EXPECT_EQ(o.shards, 4u);
  EXPECT_EQ(o.scrub_interval_ms, 50u);
  EXPECT_EQ(o.max_device_blocks, 999u);
  EXPECT_EQ(o.options.vlog_value_threshold, 128u);
  EXPECT_EQ(o.vlog_gc_ratio, 0.4);
}

TEST_F(DbOptionsFromFlagsTest, BadValuesAreInvalidArgumentNamingTheFlag) {
  struct Case {
    std::vector<std::string> args;
    const char* names;  // Substring the error must contain.
  };
  const Case kCases[] = {
      {{"--policy=Fancy"}, "policy"},
      {{"--sync=sometimes"}, "sync"},
      {{"--sync=everyn", "--sync-n=0"}, "sync-n"},
      {{"--sync-n=abc"}, "sync-n"},
      {{"--shards=0"}, "shards"},
      {{"--shards=-1"}, "shards"},
      {{"--bloom=ten"}, "bloom"},
      {{"--checkpoint-wal-mb=1.5"}, "checkpoint-wal-mb"},
      {{"--background-compaction=maybe"}, "background-compaction"},
      {{"--compaction-workers=0"}, "compaction-workers"},
      {{"--compaction-workers=many"}, "compaction-workers"},
      {{"--compaction-rate-limit=fast"}, "compaction-rate-limit"},
      {{"--vlog-threshold=8"}, "vlog-threshold"},    // <= pointer size.
      {{"--vlog-threshold=16"}, "vlog-threshold"},   // == pointer size.
      {{"--vlog-threshold=lots"}, "vlog-threshold"},
      {{"--vlog-gc-ratio=1.0"}, "vlog-gc-ratio"},    // Must stay < 1.
      {{"--vlog-gc-ratio=-0.1"}, "vlog-gc-ratio"},
      {{"--vlog-gc-ratio=half"}, "vlog-gc-ratio"},
  };
  for (const Case& c : kCases) {
    auto dbopts_or = Build(c.args);
    ASSERT_FALSE(dbopts_or.ok()) << c.args[0];
    EXPECT_TRUE(dbopts_or.status().IsInvalidArgument()) << c.args[0];
    EXPECT_NE(dbopts_or.status().message().find(c.names), std::string::npos)
        << c.args[0] << " error: " << dbopts_or.status().message();
  }
}

TEST_F(DbOptionsFromFlagsTest, FailureHasNoFilesystemSideEffects) {
  // A rejected invocation must not create the db directory (the CLI
  // validates flags before Db::Open ever runs; the builder itself is
  // pure). Guard that property at the builder layer: run every failing
  // case above and verify the tree under a scratch dir stays empty.
  const std::string dir = ::testing::TempDir() + "/db_flags_side_effects";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto dbopts_or = Build({"--policy=Fancy", "--shards=0"});
  ASSERT_FALSE(dbopts_or.ok());
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsmssd
