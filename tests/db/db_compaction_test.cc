// Background compaction pipeline at the Db layer: writes land in WAL +
// active memtable and merges run on the maintenance thread. These tests
// exercise sealing, queue backpressure, wedge/unwedge, checkpoint/recovery
// interplay with queued memtables, and equivalence with the inline path.

#include <unistd.h>

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/db/db.h"
#include "src/util/random.h"
#include "src/workload/driver.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/dbc_" + tag + "_" +
                          std::to_string(::getpid());
  ::unlink(Db::ManifestPath(dir).c_str());
  ::unlink(Db::ManifestTmpPath(dir).c_str());
  ::unlink(Db::DevicePath(dir).c_str());
  ::unlink(Db::ChecksumPath(dir).c_str());
  ::unlink(Db::WalPath(dir).c_str());
  for (const std::string& seg : Db::ListWalSegments(dir)) {
    ::unlink(seg.c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

DbOptions BgDbOptions() {
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.checkpoint_wal_bytes = 0;  // Manual checkpoints unless asked.
  dbopts.background_compaction = true;
  return dbopts;
}

TEST(DbCompactionTest, RejectsZeroQueueDepth) {
  DbOptions dbopts = BgDbOptions();
  dbopts.compaction_queue_depth = 0;
  auto db_or = Db::Open(dbopts, FreshDir("zdepth"));
  EXPECT_TRUE(db_or.status().IsInvalidArgument());
}

TEST(DbCompactionTest, RejectsZeroCompactionWorkers) {
  DbOptions dbopts = BgDbOptions();
  dbopts.compaction_workers = 0;
  auto db_or = Db::Open(dbopts, FreshDir("zworkers"));
  EXPECT_TRUE(db_or.status().IsInvalidArgument());
}

TEST(DbCompactionTest, ThrottleCollapsesOnceQueueDrains) {
  // The soft throttle is a condvar wait with a queue-depth predicate, not
  // an unconditional sleep: a throttled writer resumes the moment the
  // worker pops below the threshold. With slowdown_micros set to five
  // SECONDS, a single full-penalty sleep would blow the wall-clock bound —
  // passing proves writers only ever wait out the actual drain time.
  DbOptions dbopts = BgDbOptions();
  dbopts.compaction_queue_depth = 4;
  dbopts.compaction_slowdown_depth = 1;
  dbopts.compaction_slowdown_micros = 5'000'000;
  auto db_or = Db::Open(dbopts, FreshDir("throttle"));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  const auto t0 = std::chrono::steady_clock::now();
  for (Key k = 0; k < 400; ++k) {  // ~10 seals at TinyOptions' 40/memtable.
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok()) << k;
  }
  ASSERT_TRUE(db.WaitForCompaction().ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  const DbStats stats = db.Stats();
  EXPECT_GT(stats.memtables_sealed, 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "a throttled writer served out the full slowdown penalty; "
         "throttle_events=" << stats.throttle_events
      << " throttle_micros=" << stats.throttle_micros;
  if (stats.throttle_events > 0) {
    EXPECT_LT(stats.throttle_micros / stats.throttle_events, 1'000'000u)
        << "average throttle wait should track drain time, not the penalty";
  }
  for (Key k = 0; k < 400; ++k) {
    ASSERT_TRUE(db.Get(k).ok()) << k;
  }
}

TEST(DbCompactionTest, ParallelWorkersDrainWithRateLimit) {
  // Multiple workers + the merge rate limiter: contents, invariants, and
  // idle semantics (WaitForCompaction waits out pacing pauses too) all
  // hold. Burst 1 forces real debt so PaceMergeRate actually runs.
  DbOptions dbopts = BgDbOptions();
  dbopts.compaction_workers = 3;
  dbopts.compaction_queue_depth = 2;
  dbopts.compaction_rate_limit_blocks_per_sec = 5000;
  dbopts.compaction_rate_burst_blocks = 1;
  auto db_or = Db::Open(dbopts, FreshDir("parworkers"));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  std::map<Key, std::string> oracle;
  Random rng(20260809);
  for (int i = 0; i < 1500; ++i) {
    const Key k = rng.Uniform(300);
    if (rng.Uniform(10) == 0) {
      ASSERT_TRUE(db.Delete(k).ok());
      oracle.erase(k);
    } else {
      const std::string payload = MakePayload(dbopts.options, k + i);
      ASSERT_TRUE(db.Put(k, payload).ok());
      oracle[k] = payload;
    }
  }
  ASSERT_TRUE(db.WaitForCompaction().ok());
  ASSERT_TRUE(db.tree()->CheckInvariants(/*deep=*/true).ok());

  for (Key k = 0; k < 300; ++k) {
    auto v = db.Get(k);
    auto it = oracle.find(k);
    if (it == oracle.end()) {
      EXPECT_TRUE(v.status().IsNotFound()) << k;
    } else {
      ASSERT_TRUE(v.ok()) << k << ": " << v.status().ToString();
      EXPECT_EQ(v.value(), it->second) << k;
    }
  }
  const DbStats stats = db.Stats();
  EXPECT_EQ(stats.compaction_queue_depth, 0u);
  EXPECT_NE(stats.ToString().find("rate_pauses="), std::string::npos);
}

TEST(DbCompactionTest, WritesReadableWhileWorkerDrains) {
  const std::string dir = FreshDir("basic");
  const DbOptions dbopts = BgDbOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  // Several memtables' worth (TinyOptions seals every 40 records); reads
  // interleave with the worker and must always see every acked write.
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok()) << k;
    if (k % 97 == 0) {
      auto v = db.Get(k);
      ASSERT_TRUE(v.ok()) << "key " << k;
    }
  }
  ASSERT_TRUE(db.Delete(123).ok());
  ASSERT_TRUE(db.WaitForCompaction().ok());

  const DbStats stats = db.Stats();
  EXPECT_GT(stats.memtables_sealed, 0u);
  EXPECT_GT(stats.background_flushes, 0u);
  EXPECT_EQ(stats.compaction_queue_depth, 0u);
  EXPECT_EQ(db.tree()->sealed_count(), 0u);
  ASSERT_TRUE(db.tree()->CheckInvariants(/*deep=*/true).ok());
  for (Key k = 0; k < 500; ++k) {
    auto v = db.Get(k);
    if (k == 123) {
      EXPECT_TRUE(v.status().IsNotFound());
    } else {
      ASSERT_TRUE(v.ok()) << "key " << k;
      EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
    }
  }
}

TEST(DbCompactionTest, MatchesInlineModeContents) {
  const DbOptions bg = BgDbOptions();
  DbOptions inline_opts = bg;
  inline_opts.background_compaction = false;

  const std::string bg_dir = FreshDir("eqbg");
  const std::string in_dir = FreshDir("eqin");
  auto bg_or = Db::Open(bg, bg_dir);
  auto in_or = Db::Open(inline_opts, in_dir);
  ASSERT_TRUE(bg_or.ok());
  ASSERT_TRUE(in_or.ok());

  Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.Uniform(300);
    if (rng.Uniform(10) < 8) {
      const std::string payload = MakePayload(bg.options, k + i);
      ASSERT_TRUE(bg_or.value()->Put(k, payload).ok());
      ASSERT_TRUE(in_or.value()->Put(k, payload).ok());
    } else {
      ASSERT_TRUE(bg_or.value()->Delete(k).ok());
      ASSERT_TRUE(in_or.value()->Delete(k).ok());
    }
  }
  ASSERT_TRUE(bg_or.value()->WaitForCompaction().ok());

  std::vector<std::pair<Key, std::string>> a, b;
  ASSERT_TRUE(bg_or.value()->Scan(0, 1000, &a).ok());
  ASSERT_TRUE(in_or.value()->Scan(0, 1000, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(DbCompactionTest, ReopenRecoversAckedWritesIncludingQueuedOnes) {
  const std::string dir = FreshDir("reopen");
  const DbOptions dbopts = BgDbOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    for (Key k = 0; k < 300; ++k) {
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
    // Close without quiescing: sealed memtables may still be queued. All
    // 300 writes were acked under kAlways, so reopen must restore them.
  }
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    for (Key k = 0; k < 300; ++k) {
      auto v = db.Get(k);
      ASSERT_TRUE(v.ok()) << "key " << k;
      EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
    }
  }
}

TEST(DbCompactionTest, CheckpointPersistsQueuedMemtables) {
  const std::string dir = FreshDir("ckptq");
  DbOptions dbopts = BgDbOptions();
  // Deep queue + no slowdown: maximize the chance sealed memtables are
  // still queued when the checkpoint snapshots the tree.
  dbopts.compaction_queue_depth = 8;
  dbopts.compaction_slowdown_depth = 0;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    for (Key k = 0; k < 400; ++k) {
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
    // The checkpoint deletes the WAL segments covering these writes, so
    // the manifest MUST carry the queued (sealed but unflushed) records.
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    EXPECT_EQ(db.Stats().recovery_wal_entries_replayed, 0u);
    for (Key k = 0; k < 400; ++k) {
      auto v = db.Get(k);
      ASSERT_TRUE(v.ok()) << "key " << k;
      EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
    }
    ASSERT_TRUE(db.WaitForCompaction().ok());
    ASSERT_TRUE(db.tree()->CheckInvariants(/*deep=*/true).ok());
  }
}

TEST(DbCompactionTest, FullDeviceWedgesThenUnwedges) {
  const std::string dir = FreshDir("wedge");
  DbOptions dbopts = BgDbOptions();
  dbopts.compaction_queue_depth = 1;
  dbopts.compaction_slowdown_depth = 0;  // No throttling noise.
  dbopts.max_device_blocks = 2;          // Far too small for any flush.
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();

  // Fill until backpressure: the first seal kicks a flush that hits the
  // cap; once the queue is full AND the worker is wedged, a writer that
  // must seal is refused with ResourceExhausted BEFORE the WAL append.
  Key next = 0;
  Status refused;
  for (; next < 1000; ++next) {
    Status st = db.Put(next, MakePayload(dbopts.options, next));
    if (!st.ok()) {
      refused = st;
      break;
    }
  }
  ASSERT_TRUE(refused.IsResourceExhausted()) << refused.ToString();
  ASSERT_LT(next, 1000u) << "backpressure never engaged";
  EXPECT_FALSE(db.failed());  // Backpressure, not poison.
  EXPECT_GT(db.Stats().write_backpressure_events, 0u);
  // WaitForCompaction surfaces the wedge instead of hanging.
  EXPECT_TRUE(db.WaitForCompaction().IsResourceExhausted());

  // Every acked write is still readable (flush failure rolled back).
  for (Key k = 0; k < next; ++k) {
    ASSERT_TRUE(db.Get(k).ok()) << "key " << k;
  }
  // The refused op was never logged nor applied.
  EXPECT_TRUE(db.Get(next).status().IsNotFound());

  // Raising the cap unwedges: the retried op lands and the queue drains.
  db.SetMaxDeviceBlocks(0);
  ASSERT_TRUE(db.Put(next, MakePayload(dbopts.options, next)).ok());
  ASSERT_TRUE(db.WaitForCompaction().ok());
  EXPECT_EQ(db.Stats().compaction_queue_depth, 0u);
  for (Key k = 0; k <= next; ++k) {
    ASSERT_TRUE(db.Get(k).ok()) << "key " << k;
  }
  ASSERT_TRUE(db.tree()->CheckInvariants(/*deep=*/true).ok());
}

TEST(DbCompactionTest, IteratorHoldsConsistentSnapshot) {
  const std::string dir = FreshDir("iter");
  const DbOptions dbopts = BgDbOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  auto it = db.NewIterator();
  ASSERT_NE(it, nullptr);
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->key(), n);
    ++n;
  }
  EXPECT_EQ(n, 100u);
  ASSERT_TRUE(it->status().ok());
}

TEST(DbCompactionTest, StatsLineCarriesCompactionFields) {
  const std::string dir = FreshDir("stats");
  const DbOptions dbopts = BgDbOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  for (Key k = 0; k < 200; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  ASSERT_TRUE(db.WaitForCompaction().ok());
  const std::string s = db.Stats().ToString();
  EXPECT_NE(s.find("compaction:"), std::string::npos);
  EXPECT_NE(s.find("bg_flushes="), std::string::npos);
  EXPECT_NE(s.find("queue_depth=0"), std::string::npos);
  EXPECT_NE(s.find("stall_latency_us:"), std::string::npos);
}

TEST(DbCompactionTest, SyncModeNoneStillRecoversAfterCleanClose) {
  const std::string dir = FreshDir("nosync");
  DbOptions dbopts = BgDbOptions();
  dbopts.wal_sync_mode = WalSyncMode::kNone;
  std::map<Key, std::string> oracle;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    Random rng(3);
    for (int i = 0; i < 1000; ++i) {
      const Key k = rng.Uniform(150);
      if (rng.Uniform(5) == 0) {
        ASSERT_TRUE(db.Delete(k).ok());
        oracle.erase(k);
      } else {
        const std::string payload = MakePayload(dbopts.options, k + i);
        ASSERT_TRUE(db.Put(k, payload).ok());
        oracle[k] = payload;
      }
    }
  }  // Clean close syncs the WAL tail.
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    std::vector<std::pair<Key, std::string>> got;
    ASSERT_TRUE(db.Scan(0, 1000, &got).ok());
    std::vector<std::pair<Key, std::string>> want(oracle.begin(),
                                                  oracle.end());
    EXPECT_EQ(got, want);
  }
}

}  // namespace
}  // namespace lsmssd
