// Sharded Db facade: layout creation and reopen authority, reshard
// rejection, key routing, cross-shard scan/iterator merge against an
// oracle, stats aggregation (counter sums + histogram merge), the
// cross-shard memory arbiter, and shard-aware scrub/quarantine.

#include "src/db/db.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/driver.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

/// Fresh per-test root directory (recursively wiped: a sharded root
/// holds shard-<i> subdirectories, not just flat files).
std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/dbs_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

DbOptions TinyShardedOptions(size_t shards) {
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.checkpoint_wal_bytes = 0;  // Manual checkpoints unless asked.
  dbopts.shards = shards;
  return dbopts;
}

TEST(DbShardedTest, PartitionIsDeterministicAndUsesEveryShard) {
  const size_t kShards = 4;
  std::vector<uint64_t> hits(kShards, 0);
  for (Key k = 0; k < 10000; ++k) {
    const size_t s = Db::ShardOfKey(k, kShards);
    ASSERT_LT(s, kShards);
    EXPECT_EQ(s, Db::ShardOfKey(k, kShards));  // Pure function.
    ++hits[s];
  }
  // FNV-1a over sequential keys should spread roughly evenly; the exact
  // split is layout-defining, so a gross imbalance would be a red flag.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(hits[s], 10000u / kShards / 2) << "shard " << s;
  }
  // shards=1 degenerates to the identity routing.
  EXPECT_EQ(Db::ShardOfKey(12345, 1), 0u);
}

TEST(DbShardedTest, OpenCreatesLayoutFileAndShardDirs) {
  const std::string dir = FreshDir("create");
  auto db_or = Db::Open(TinyShardedOptions(4), dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  EXPECT_EQ(db.shard_count(), 4u);
  EXPECT_EQ(db.tree(), nullptr);  // The facade has no tree of its own.
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_NE(db.shard(i), nullptr);
    EXPECT_EQ(db.shard(i)->shard_count(), 1u);
  }
  EXPECT_EQ(db.shard(4), nullptr);
  EXPECT_TRUE(std::filesystem::exists(Db::ShardLayoutPath(dir)));
  EXPECT_TRUE(std::filesystem::is_directory(Db::ShardDirPath(dir, 0)));
  EXPECT_TRUE(std::filesystem::is_directory(Db::ShardDirPath(dir, 3)));

  const Options& o = db.options();
  ASSERT_TRUE(db.Put(7, MakePayload(o, 7)).ok());
  auto v = db.Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), MakePayload(o, 7));
}

TEST(DbShardedTest, LayoutFileIsAuthoritativeOnReopen) {
  const std::string dir = FreshDir("reopen");
  const DbOptions dbopts = TinyShardedOptions(4);
  const Key kCount = 300;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    for (Key k = 0; k < kCount; ++k) {
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
    ASSERT_TRUE(db.Delete(13).ok());
  }  // No checkpoint: recovery below is per-shard WAL replay.
  {
    // Reopen with DEFAULT options (shards = 1): the SHARDS file must win.
    DbOptions defaults;
    defaults.options = dbopts.options;
    defaults.checkpoint_wal_bytes = 0;
    auto db_or = Db::Open(defaults, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    EXPECT_EQ(db.shard_count(), 4u);
    const DbStats stats = db.Stats();
    EXPECT_EQ(stats.shards, 4u);
    // Every op was replayed from some shard's WAL (kCount puts + 1 del).
    EXPECT_EQ(stats.recovery_wal_entries_replayed, kCount + 1);
    for (Key k = 0; k < kCount; ++k) {
      auto v = db.Get(k);
      if (k == 13) {
        EXPECT_TRUE(v.status().IsNotFound());
      } else {
        ASSERT_TRUE(v.ok()) << "key " << k;
        EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
      }
    }
  }
}

TEST(DbShardedTest, ReshardingExistingSingleShardDbFails) {
  const std::string dir = FreshDir("reshard1");
  DbOptions single = TinyShardedOptions(1);
  {
    auto db_or = Db::Open(single, dir);
    ASSERT_TRUE(db_or.ok());
    ASSERT_TRUE(db_or.value()->Put(1, MakePayload(single.options, 1)).ok());
  }
  auto db_or = Db::Open(TinyShardedOptions(2), dir);
  EXPECT_TRUE(db_or.status().IsInvalidArgument())
      << db_or.status().ToString();
}

TEST(DbShardedTest, ReopeningWithDifferentShardCountFails) {
  const std::string dir = FreshDir("reshard2");
  { ASSERT_TRUE(Db::Open(TinyShardedOptions(2), dir).ok()); }
  auto db_or = Db::Open(TinyShardedOptions(4), dir);
  EXPECT_TRUE(db_or.status().IsInvalidArgument())
      << db_or.status().ToString();
  // The matching explicit count still works.
  EXPECT_TRUE(Db::Open(TinyShardedOptions(2), dir).ok());
}

TEST(DbShardedTest, ErrorIfExistsSeesShardedLayout) {
  const std::string dir = FreshDir("eie");
  { ASSERT_TRUE(Db::Open(TinyShardedOptions(2), dir).ok()); }
  DbOptions dbopts = TinyShardedOptions(2);
  dbopts.error_if_exists = true;
  auto db_or = Db::Open(dbopts, dir);
  EXPECT_EQ(db_or.status().code(), StatusCode::kFailedPrecondition)
      << db_or.status().ToString();
}

TEST(DbShardedTest, ZeroShardsIsRejected) {
  auto db_or = Db::Open(TinyShardedOptions(0), FreshDir("zero"));
  EXPECT_TRUE(db_or.status().IsInvalidArgument());
}

TEST(DbShardedTest, CorruptLayoutFileIsRejected) {
  const std::string dir = FreshDir("corruptlayout");
  { ASSERT_TRUE(Db::Open(TinyShardedOptions(2), dir).ok()); }
  // Flip the count without updating the checksum.
  const std::string path = Db::ShardLayoutPath(dir);
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = buf.str();
  }
  const size_t pos = data.find("count=2");
  ASSERT_NE(pos, std::string::npos);
  data[pos + 6] = '3';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
  }
  auto db_or = Db::Open(TinyShardedOptions(2), dir);
  EXPECT_TRUE(db_or.status().IsCorruption()) << db_or.status().ToString();
}

TEST(DbShardedTest, EveryKeyLivesInExactlyItsHashShard) {
  const std::string dir = FreshDir("routing");
  const DbOptions dbopts = TinyShardedOptions(4);
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  const Key kCount = 200;
  for (Key k = 0; k < kCount; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  for (Key k = 0; k < kCount; ++k) {
    const size_t home = Db::ShardOfKey(k, 4);
    for (size_t s = 0; s < 4; ++s) {
      auto v = db.shard(s)->Get(k);
      if (s == home) {
        ASSERT_TRUE(v.ok()) << "key " << k << " missing from shard " << s;
        EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
      } else {
        EXPECT_TRUE(v.status().IsNotFound())
            << "key " << k << " leaked into shard " << s;
      }
    }
  }
}

TEST(DbShardedTest, ScanAndIteratorMergeSortedAcrossShards) {
  const std::string dir = FreshDir("scan");
  DbOptions dbopts = TinyShardedOptions(4);
  dbopts.background_compaction = true;  // Exercise the mem_mu_ lock path.
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();

  std::map<Key, std::string> oracle;
  // Sparse keys with updates and deletes, spread across all shards.
  for (Key k = 0; k < 500; ++k) {
    const Key key = k * 7;
    const std::string payload = MakePayload(dbopts.options, key + 1);
    ASSERT_TRUE(db.Put(key, payload).ok());
    oracle[key] = payload;
  }
  for (Key k = 0; k < 500; k += 5) {
    ASSERT_TRUE(db.Delete(k * 7).ok());
    oracle.erase(k * 7);
  }

  // Range scan vs oracle.
  std::vector<std::pair<Key, std::string>> got;
  ASSERT_TRUE(db.Scan(100, 2500, &got).ok());
  std::vector<std::pair<Key, std::string>> want;
  for (const auto& [k, v] : oracle) {
    if (k >= 100 && k <= 2500) want.emplace_back(k, v);
  }
  EXPECT_EQ(got, want);

  // Inverted range mirrors the single-shard contract.
  EXPECT_TRUE(db.Scan(10, 5, &got).IsInvalidArgument());

  // Full iterator walk: sorted, complete, no duplicates.
  auto it = db.NewIterator();
  ASSERT_NE(it, nullptr);
  auto expect = oracle.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, oracle.end());
    EXPECT_EQ(it->key(), expect->first);
    EXPECT_EQ(it->value(), expect->second);
  }
  EXPECT_EQ(expect, oracle.end());
  EXPECT_TRUE(it->status().ok());

  // Seek lands on the first key >= target across all shards.
  it->Seek(701);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), oracle.lower_bound(701)->first);
}

TEST(DbShardedTest, StatsAggregateAndMergeAcrossShards) {
  const std::string dir = FreshDir("stats");
  const DbOptions dbopts = TinyShardedOptions(4);
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  const Key kCount = 400;
  for (Key k = 0; k < kCount; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());

  const DbStats agg = db.Stats();
  EXPECT_EQ(agg.shards, 4u);
  EXPECT_EQ(agg.wal_entries_appended, kCount);
  EXPECT_EQ(agg.checkpoints, 4u);  // One per shard.
  // Cross-check each aggregate against the per-shard sum.
  uint64_t entries = 0, writes = 0, syncs = 0;
  for (size_t s = 0; s < 4; ++s) {
    const DbStats ss = db.shard(s)->Stats();
    EXPECT_GT(ss.wal_entries_appended, 0u) << "idle shard " << s;
    entries += ss.wal_entries_appended;
    writes += ss.io.block_writes();
    syncs += ss.wal_syncs;
  }
  EXPECT_EQ(agg.wal_entries_appended, entries);
  EXPECT_EQ(agg.io.block_writes(), writes);
  EXPECT_EQ(agg.wal_syncs, syncs);
  EXPECT_GT(agg.io.block_writes(), 0u);

  const std::string text = agg.ToString();
  EXPECT_NE(text.find("shards: 4"), std::string::npos);
  // Single-shard stats keep the historical format (no shards line).
  EXPECT_EQ(db.shard(0)->Stats().ToString().find("shards:"),
            std::string::npos);
}

TEST(DbShardedTest, MemoryArbiterSealsLargestShardUnderPressure) {
  const std::string dir = FreshDir("arbiter");
  DbOptions dbopts = TinyShardedOptions(4);
  dbopts.background_compaction = true;
  // Budget far below one memtable's 40-record capacity: the facade must
  // keep sealing early to stay under it.
  dbopts.shard_memory_budget_records = 16;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  const Key kCount = 600;
  for (Key k = 0; k < kCount; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  ASSERT_TRUE(db.WaitForCompaction().ok());
  const DbStats stats = db.Stats();
  EXPECT_GT(stats.arbiter_seals, 0u);
  EXPECT_GE(stats.memtables_sealed, stats.arbiter_seals);
  // Pressure-induced seals must never cost correctness.
  for (Key k = 0; k < kCount; ++k) {
    auto v = db.Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, k));
  }
}

TEST(DbShardedTest, ScrubFindsPerShardDamageAndOthersStayClean) {
  const std::string dir = FreshDir("scrub");
  const DbOptions dbopts = TinyShardedOptions(2);
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  for (Key k = 0; k < 400; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.Scrub().ok());  // Clean after checkpoint.

  // Corrupt one on-SSD leaf of shard 1 only.
  Db* victim = db.shard(1);
  ASSERT_NE(victim, nullptr);
  LsmTree* tree = victim->tree();
  ASSERT_NE(tree, nullptr);
  BlockId bad = kInvalidBlockId;
  for (size_t lvl = 1; lvl < tree->num_levels() && bad == kInvalidBlockId;
       ++lvl) {
    if (tree->level(lvl).num_leaves() > 0) {
      bad = tree->level(lvl).leaf(0).block;
    }
  }
  ASSERT_NE(bad, kInvalidBlockId) << "shard 1 spilled nothing to SSD";
  BlockData image;
  ASSERT_TRUE(
      tree->device()->ReadBlockUnverifiedForTesting(bad, &image).ok());
  image[image.size() / 3] ^= 0x20;
  ASSERT_TRUE(tree->device()->CorruptBlockForTesting(bad, image).ok());

  EXPECT_TRUE(db.Scrub().IsCorruption());
  const DbStats agg = db.Stats();
  EXPECT_EQ(agg.scrub_corruptions_found, 1u);
  EXPECT_EQ(agg.quarantined_blocks.size(), 1u);
  // The damage is attributable to its shard; the other shard is clean.
  EXPECT_EQ(db.shard(1)->Stats().quarantined_blocks.size(), 1u);
  EXPECT_TRUE(db.shard(0)->Stats().quarantined_blocks.empty());
}

TEST(DbShardedTest, CheckpointedShardedDbReopensFromManifests) {
  const std::string dir = FreshDir("ckptreopen");
  const DbOptions dbopts = TinyShardedOptions(2);
  const Key kCount = 500;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    for (Key k = 0; k < kCount; ++k) {
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    const DbStats stats = db.Stats();
    // A checkpoint preceded close, so recovery came from the per-shard
    // manifests, not WAL replay.
    EXPECT_EQ(stats.recovery_wal_entries_replayed, 0u);
    EXPECT_GT(stats.recovery_manifest_blocks, 0u);
    for (Key k = 0; k < kCount; ++k) {
      auto v = db.Get(k);
      ASSERT_TRUE(v.ok()) << "key " << k;
    }
  }
}

}  // namespace
}  // namespace lsmssd
