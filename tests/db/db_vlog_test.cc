// Key–value separation (DESIGN.md §11): the vlog stays completely off
// at default options, values round-trip through pointers under Get /
// Scan / iterators, recovery replays pointers from WAL and manifest,
// the head truncation sweep recovers the durable prefix at every cut,
// GC reclaims dead segments without losing a live value, a corrupt
// entry quarantines itself without poisoning the Db, and a sharded
// facade merges vlog-resolved scans across shards.

#include "src/db/db.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/storage/vlog_file.h"
#include "src/workload/driver.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/dbv_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

/// Tiny options with the value log on: every 20-byte payload clears the
/// 17-byte threshold, so all puts take the vlog path.
DbOptions TinyVlogOptions() {
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.options.vlog_value_threshold = 17;
  dbopts.checkpoint_wal_bytes = 0;  // Manual checkpoints unless asked.
  return dbopts;
}

/// Entry footprint of one put in the tiny config: 17-byte header plus
/// the 20-byte payload.
constexpr uint64_t kEntryBytes = vlog::kEntryHeaderSize + 20;

TEST(DbVlogTest, DefaultOptionsCreateNoVlogFiles) {
  const std::string dir = FreshDir("off");
  DbOptions dbopts;
  dbopts.options = TinyOptions();  // vlog_value_threshold stays 0.
  dbopts.checkpoint_wal_bytes = 0;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_TRUE(Db::ListVlogSegments(dir).empty());
  const DbStats stats = db.Stats();
  EXPECT_EQ(stats.vlog_segments, 0u);
  EXPECT_EQ(stats.vlog_bytes_appended, 0u);
  // The stats summary must not even mention the vlog when it is off —
  // the default text output is part of the paper-figure surface.
  EXPECT_EQ(stats.ToString().find("vlog:"), std::string::npos);
}

TEST(DbVlogTest, PutGetScanIteratorRoundtrip) {
  const std::string dir = FreshDir("rt");
  const DbOptions dbopts = TinyVlogOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  std::map<Key, std::string> oracle;
  for (Key k = 0; k < 300; ++k) {
    const std::string payload = MakePayload(dbopts.options, k * 7);
    ASSERT_TRUE(db.Put(k * 7, payload).ok());
    oracle[k * 7] = payload;
  }
  // Overwrites and deletes: the tree must serve the newest pointer.
  for (Key k = 0; k < 50; ++k) {
    const std::string payload = MakePayload(dbopts.options, k * 7 + 1);
    ASSERT_TRUE(db.Put(k * 7, payload).ok());
    oracle[k * 7] = payload;
  }
  ASSERT_TRUE(db.Delete(14).ok());
  oracle.erase(14);

  for (const auto& [k, v] : oracle) {
    auto got = db.Get(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), v) << "key " << k;
  }
  EXPECT_TRUE(db.Get(14).status().IsNotFound());

  // Scan resolves pointers before returning.
  std::vector<std::pair<Key, std::string>> scanned;
  ASSERT_TRUE(db.Scan(0, 700, &scanned).ok());
  std::map<Key, std::string> expect_range(oracle.begin(),
                                          oracle.upper_bound(700));
  ASSERT_EQ(scanned.size(), expect_range.size());
  for (const auto& [k, v] : scanned) {
    ASSERT_TRUE(expect_range.count(k)) << "key " << k;
    EXPECT_EQ(v, expect_range[k]) << "key " << k;
  }

  // Iterators resolve per position.
  auto it = db.NewIterator();
  ASSERT_NE(it, nullptr);
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++n) {
    ASSERT_TRUE(oracle.count(it->key())) << "key " << it->key();
    EXPECT_EQ(it->value(), oracle[it->key()]) << "key " << it->key();
  }
  ASSERT_TRUE(it->status().ok()) << it->status().ToString();
  EXPECT_EQ(n, oracle.size());

  const DbStats stats = db.Stats();
  EXPECT_GE(stats.vlog_segments, 1u);
  EXPECT_EQ(stats.vlog_bytes_appended, 350 * kEntryBytes);  // Deletes skip it.
  EXPECT_NE(stats.ToString().find("vlog:"), std::string::npos);
}

TEST(DbVlogTest, ReopenRecoversPointersFromWalAndManifest) {
  const std::string dir = FreshDir("reopen");
  const DbOptions dbopts = TinyVlogOptions();
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    for (Key k = 0; k < 400; ++k) {
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());  // Manifest carries the frontier.
    for (Key k = 400; k < 450; ++k) {   // WAL-only tail.
      ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
    }
  }
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  for (Key k = 0; k < 450; ++k) {
    auto got = db.Get(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), MakePayload(dbopts.options, k)) << "key " << k;
  }
  // And the reopened head keeps appending where it left off.
  ASSERT_TRUE(db.Put(9999, MakePayload(dbopts.options, 9999)).ok());
  auto got = db.Get(9999);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), MakePayload(dbopts.options, 9999));
}

TEST(DbVlogTest, HeadTruncationSweepRecoversDurablePrefix) {
  // Build one clean-closed Db with kAlways sync (every entry durable),
  // then cut the vlog head at EVERY byte offset and reopen: recovery
  // must come back with exactly the keys whose entries survived the cut
  // — a prefix, never a gap — and stay writable afterwards.
  const std::string golden = FreshDir("sweep_golden");
  const DbOptions dbopts = TinyVlogOptions();
  constexpr Key kKeys = 8;
  {
    auto db_or = Db::Open(dbopts, golden);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(db_or.value()->Put(k, MakePayload(dbopts.options, k)).ok());
    }
  }  // Clean close: vlog synced, WAL synced, no checkpoint.
  const uint64_t full = kKeys * kEntryBytes;
  ASSERT_EQ(std::filesystem::file_size(Db::VlogSegmentPath(golden, 0)), full);

  const std::string work = FreshDir("sweep_work");
  for (uint64_t cut = 0; cut <= full; ++cut) {
    std::filesystem::remove_all(work);
    std::filesystem::copy(golden, work);
    ASSERT_EQ(::truncate(Db::VlogSegmentPath(work, 0).c_str(),
                         static_cast<off_t>(cut)),
              0);
    auto db_or = Db::Open(dbopts, work);
    ASSERT_TRUE(db_or.ok()) << "cut " << cut << ": "
                            << db_or.status().ToString();
    Db& db = *db_or.value();
    const Key survivors = static_cast<Key>(cut / kEntryBytes);
    for (Key k = 0; k < kKeys; ++k) {
      auto got = db.Get(k);
      if (k < survivors) {
        ASSERT_TRUE(got.ok()) << "cut " << cut << " key " << k << ": "
                              << got.status().ToString();
        EXPECT_EQ(got.value(), MakePayload(dbopts.options, k));
      } else {
        // Beyond the durable frontier the WAL was truncated too: the
        // key is gone entirely, not half-present.
        EXPECT_TRUE(got.status().IsNotFound())
            << "cut " << cut << " key " << k << ": "
            << got.status().ToString();
      }
    }
    // The recovered Db keeps working.
    ASSERT_TRUE(db.Put(1000, MakePayload(dbopts.options, 1000)).ok())
        << "cut " << cut;
    auto got = db.Get(1000);
    ASSERT_TRUE(got.ok()) << "cut " << cut;
    EXPECT_EQ(got.value(), MakePayload(dbopts.options, 1000));
  }
}

TEST(DbVlogTest, GcReclaimsDeadSegmentsAndKeepsEveryLiveValue) {
  const std::string dir = FreshDir("gc");
  DbOptions dbopts = TinyVlogOptions();
  dbopts.vlog_segment_bytes = 4 * kEntryBytes;  // Roll every 4 entries.
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  // Overwrite a small key set many times: almost everything in the
  // early segments is dead.
  constexpr Key kKeys = 16;
  std::map<Key, std::string> oracle;
  for (int round = 0; round < 10; ++round) {
    for (Key k = 0; k < kKeys; ++k) {
      const std::string payload =
          MakePayload(dbopts.options, k + 1000 * round);
      ASSERT_TRUE(db.Put(k, payload).ok());
      oracle[k] = payload;
    }
  }
  ASSERT_TRUE(db.Delete(0).ok());
  oracle.erase(0);

  const size_t segments_before = Db::ListVlogSegments(dir).size();
  ASSERT_GT(segments_before, 10u);  // 160 entries / 4 per segment.
  ASSERT_TRUE(db.CompactVlog().ok());
  const DbStats stats = db.Stats();
  EXPECT_GT(stats.vlog_segments_reclaimed, 0u);
  EXPECT_GT(stats.vlog_gc_rewrites, 0u);
  // On disk: everything below the published tail is gone.
  EXPECT_LT(Db::ListVlogSegments(dir).size(), segments_before);

  for (const auto& [k, v] : oracle) {
    auto got = db.Get(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), v) << "key " << k;
  }
  EXPECT_TRUE(db.Get(0).status().IsNotFound());

  // Survives a reopen: the manifest's tail matches the files on disk.
  db_or.value().reset();
  auto again_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(again_or.ok()) << again_or.status().ToString();
  for (const auto& [k, v] : oracle) {
    auto got = again_or.value()->Get(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), v) << "key " << k;
  }
}

TEST(DbVlogTest, AutoGcTriggersOnGarbageRatio) {
  const std::string dir = FreshDir("autogc");
  DbOptions dbopts = TinyVlogOptions();
  dbopts.vlog_segment_bytes = 8 * kEntryBytes;
  dbopts.vlog_gc_ratio = 0.5;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    for (int round = 0; round < 20; ++round) {
      for (Key k = 0; k < 8; ++k) {
        ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k + round)).ok());
      }
    }
    // The maintenance thread GCs on its own; poll briefly.
    for (int i = 0; i < 200 && db.Stats().vlog_segments_reclaimed == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(db.Stats().vlog_segments_reclaimed, 0u);
    for (Key k = 0; k < 8; ++k) {
      auto got = db.Get(k);
      ASSERT_TRUE(got.ok()) << "key " << k;
      EXPECT_EQ(got.value(), MakePayload(dbopts.options, k + 19));
    }
  }
}

TEST(DbVlogTest, CorruptEntryQuarantinesWithoutPoisoningDb) {
  const std::string dir = FreshDir("quar");
  const DbOptions dbopts = TinyVlogOptions();
  constexpr Key kKeys = 20;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (Key k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(db_or.value()->Put(k, MakePayload(dbopts.options, k)).ok());
    }
  }
  // Flip one byte inside key 5's value on disk.
  constexpr Key kVictim = 5;
  const uint64_t flip_at =
      kVictim * kEntryBytes + vlog::kEntryHeaderSize + 3;
  {
    std::fstream f(Db::VlogSegmentPath(dir, 0),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(flip_at));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(flip_at));
    f.put(static_cast<char>(c ^ 0x01));
  }
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  // The victim reads as Corruption naming the segment; twice (the second
  // read hits the quarantine, not the disk).
  Status st = db.Get(kVictim).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("vlog segment 0"), std::string::npos)
      << st.ToString();
  st = db.Get(kVictim).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("quarantined"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(db.Stats().vlog_quarantined_entries, 1u);
  // Every other key still reads; the Db is not poisoned and keeps
  // accepting writes — damage is entry-local.
  for (Key k = 0; k < kKeys; ++k) {
    if (k == kVictim) continue;
    auto got = db.Get(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), MakePayload(dbopts.options, k));
  }
  ASSERT_TRUE(db.Put(kVictim, MakePayload(dbopts.options, 777)).ok());
  auto got = db.Get(kVictim);
  ASSERT_TRUE(got.ok());  // The overwrite's fresh entry is clean.
  EXPECT_EQ(got.value(), MakePayload(dbopts.options, 777));
}

TEST(DbVlogTest, ShardedScanMergesVlogResolvedValues) {
  const std::string dir = FreshDir("sharded");
  DbOptions dbopts = TinyVlogOptions();
  dbopts.shards = 2;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  std::map<Key, std::string> oracle;
  for (Key k = 0; k < 200; ++k) {
    const std::string payload = MakePayload(dbopts.options, k);
    ASSERT_TRUE(db.Put(k, payload).ok());
    oracle[k] = payload;
  }
  // Both shards actually took vlog writes.
  EXPECT_FALSE(Db::ListVlogSegments(Db::ShardDirPath(dir, 0)).empty());
  EXPECT_FALSE(Db::ListVlogSegments(Db::ShardDirPath(dir, 1)).empty());

  std::vector<std::pair<Key, std::string>> scanned;
  ASSERT_TRUE(db.Scan(0, 199, &scanned).ok());
  ASSERT_EQ(scanned.size(), oracle.size());
  Key prev = 0;
  for (size_t i = 0; i < scanned.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(scanned[i].first, prev);  // Merged in key order.
    }
    prev = scanned[i].first;
    EXPECT_EQ(scanned[i].second, oracle[scanned[i].first])
        << "key " << scanned[i].first;
  }
  // The facade's stats aggregate the per-shard vlog counters.
  const DbStats stats = db.Stats();
  EXPECT_GE(stats.vlog_segments, 2u);
  EXPECT_EQ(stats.vlog_bytes_appended, 200 * kEntryBytes);
}

TEST(DbVlogTest, BadVlogOptionsRejectedBeforeTouchingDisk) {
  const std::string dir = FreshDir("badopts");
  {
    DbOptions dbopts = TinyVlogOptions();
    dbopts.vlog_gc_ratio = 1.5;  // Must be in [0, 1).
    auto db_or = Db::Open(dbopts, dir);
    EXPECT_TRUE(db_or.status().IsInvalidArgument())
        << db_or.status().ToString();
    EXPECT_NE(db_or.status().message().find("vlog_gc_ratio"),
              std::string::npos)
        << db_or.status().ToString();
    EXPECT_FALSE(std::filesystem::exists(dir));
  }
  {
    DbOptions dbopts = TinyVlogOptions();
    dbopts.options.vlog_value_threshold = 10;  // Must exceed pointer size.
    auto db_or = Db::Open(dbopts, dir);
    EXPECT_TRUE(db_or.status().IsInvalidArgument())
        << db_or.status().ToString();
    EXPECT_FALSE(std::filesystem::exists(dir));
  }
}

}  // namespace
}  // namespace lsmssd
