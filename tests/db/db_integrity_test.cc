// Db-level integrity and degradation behavior: corrupted blocks surface
// as Status::Corruption from reads without poisoning the instance (and
// land in the quarantine set), Db::Scrub() and the background scrubber
// find damage proactively, device exhaustion turns into write
// backpressure instead of a dead Db, and offline bit rot is caught on
// the first read after reopen.

#include "src/db/db.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/driver.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

/// Fresh per-test Db directory under the gtest temp dir.
std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/dbi_" + tag + "_" +
                          std::to_string(::getpid());
  ::unlink(Db::ManifestPath(dir).c_str());
  ::unlink(Db::ManifestTmpPath(dir).c_str());
  ::unlink(Db::DevicePath(dir).c_str());
  ::unlink(Db::ChecksumPath(dir).c_str());
  ::unlink(Db::WalPath(dir).c_str());
  for (const std::string& seg : Db::ListWalSegments(dir)) {
    ::unlink(seg.c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

DbOptions TinyDbOptions() {
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.checkpoint_wal_bytes = 0;  // Manual checkpoints unless asked.
  return dbopts;
}

/// Puts keys 0, 3, 6, ... so the tree spills well past L0.
void Grow(Db* db, const Options& options, Key count) {
  for (Key k = 0; k < count; ++k) {
    ASSERT_TRUE(db->Put(k * 3, MakePayload(options, k * 3)).ok());
  }
}

/// First on-SSD leaf of the shallowest populated level >= 1.
LeafMeta FirstLeaf(Db* db) {
  for (size_t i = 1; i < db->tree()->num_levels(); ++i) {
    if (db->tree()->level(i).num_leaves() > 0) {
      return db->tree()->level(i).leaf(0);
    }
  }
  ADD_FAILURE() << "tree has no on-SSD leaves";
  return LeafMeta{};
}

/// Silently corrupts `leaf`'s stored image through the Db's device stack.
void CorruptLeaf(Db* db, const LeafMeta& leaf) {
  BlockData image;
  ASSERT_TRUE(
      db->tree()->device()->ReadBlockUnverifiedForTesting(leaf.block, &image)
          .ok());
  image[image.size() / 3] ^= 0x20;
  ASSERT_TRUE(db->tree()->device()->CorruptBlockForTesting(leaf.block, image)
                  .ok());
}

bool Quarantined(Db* db, BlockId id) {
  const std::vector<BlockId> q = db->Stats().quarantined_blocks;
  return std::find(q.begin(), q.end(), id) != q.end();
}

TEST(DbIntegrityTest, CorruptionSurfacesWithoutPoisoning) {
  const std::string dir = FreshDir("corrupt");
  const DbOptions dbopts = TinyDbOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  Grow(&db, dbopts.options, 600);

  const LeafMeta leaf = FirstLeaf(&db);
  CorruptLeaf(&db, leaf);

  // Any in-range lookup must consult the damaged leaf (keys shadowed by
  // upper levels aside) and reports Corruption — never a wrong value.
  bool saw_corruption = false;
  for (Key k = leaf.min_key; k <= leaf.max_key; ++k) {
    auto got = db.Get(k);
    if (got.status().IsCorruption()) {
      saw_corruption = true;
      break;
    }
    ASSERT_TRUE(got.ok() || got.status().IsNotFound())
        << got.status().ToString();
  }
  EXPECT_TRUE(saw_corruption);
  std::vector<std::pair<Key, std::string>> out;
  EXPECT_TRUE(db.Scan(leaf.min_key, leaf.max_key, &out).IsCorruption());

  // The id is quarantined, and the Db is *not* poisoned: healthy ranges
  // keep answering and new writes are accepted.
  EXPECT_FALSE(db.failed());
  EXPECT_TRUE(Quarantined(&db, leaf.block));
  ASSERT_TRUE(db.Get(3 * 599).ok());
  EXPECT_TRUE(db.Put(1'000'000, MakePayload(dbopts.options, 1'000'000)).ok());
  EXPECT_TRUE(db.Get(1'000'000).ok());
}

TEST(DbIntegrityTest, ScrubVerifiesCleanAndFindsDamage) {
  const std::string dir = FreshDir("scrub");
  const DbOptions dbopts = TinyDbOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  Grow(&db, dbopts.options, 600);

  // A clean tree scrubs clean.
  ASSERT_TRUE(db.Scrub().ok()) << db.Scrub().ToString();
  const DbStats clean = db.Stats();
  EXPECT_GT(clean.scrub_blocks_verified, 0u);
  EXPECT_EQ(clean.scrub_corruptions_found, 0u);
  EXPECT_TRUE(clean.quarantined_blocks.empty());

  const LeafMeta leaf = FirstLeaf(&db);
  CorruptLeaf(&db, leaf);

  Status st = db.Scrub();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  const DbStats dirty = db.Stats();
  EXPECT_EQ(dirty.scrub_corruptions_found, 1u);
  EXPECT_TRUE(Quarantined(&db, leaf.block));
  EXPECT_FALSE(db.failed());
}

TEST(DbIntegrityTest, BackgroundScrubberQuarantinesOfflineRot) {
  const std::string dir = FreshDir("bgscrub");
  DbOptions dbopts = TinyDbOptions();

  // Build a checkpointed Db, remember where a leaf lives, close it.
  LeafMeta leaf;
  size_t block_size = 0;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    Grow(&db, dbopts.options, 600);
    ASSERT_TRUE(db.Checkpoint().ok());
    leaf = FirstLeaf(&db);
    block_size = db.options().block_size;
  }

  // Bit rot while powered off: flip one byte in the backing file.
  {
    FILE* fp = ::fopen(Db::DevicePath(dir).c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(
        ::fseek(fp, static_cast<long>(leaf.block * block_size + 11), SEEK_SET),
        0);
    ASSERT_EQ(::fputc(0xA5, fp), 0xA5);
    ASSERT_EQ(::fclose(fp), 0);
  }

  // Reopen with an aggressive background scrub; it must find and
  // quarantine the block without any foreground read touching it.
  dbopts.scrub_interval_ms = 2;
  dbopts.scrub_batch_blocks = 1024;
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!Quarantined(&db, leaf.block)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "background scrubber never quarantined the damaged block";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const DbStats stats = db.Stats();
  EXPECT_GE(stats.scrub_corruptions_found, 1u);
  EXPECT_FALSE(db.failed());

  // The damage is confined: a lookup in the damaged range reports
  // Corruption, everything else still works.
  EXPECT_TRUE(db.Get(leaf.min_key).status().IsCorruption());
  EXPECT_TRUE(db.Put(2'000'000, MakePayload(dbopts.options, 2'000'000)).ok());
}

TEST(DbIntegrityTest, ExhaustionIsBackpressureNotFailure) {
  const std::string dir = FreshDir("full");
  const DbOptions dbopts = TinyDbOptions();
  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok());
  Db& db = *db_or.value();
  Grow(&db, dbopts.options, 600);

  // Freeze the device at its current occupancy, then keep writing fresh
  // keys until a triggered merge needs a block it cannot get.
  const uint64_t live_before = db.tree()->device()->live_blocks();
  db.SetMaxDeviceBlocks(live_before);
  Status st;
  Key k = 500'000;
  for (int i = 0; i < 5000 && st.ok(); ++i, ++k) {
    st = db.Put(k, MakePayload(dbopts.options, k));
  }
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();

  // Backpressure, not a poisoned Db: the event is counted, no block
  // leaked from the aborted merge, reads (old and backlogged-new) work.
  EXPECT_FALSE(db.failed());
  EXPECT_GE(db.Stats().write_backpressure_events, 1u);
  EXPECT_EQ(db.tree()->device()->live_blocks(), live_before);
  ASSERT_TRUE(db.Get(0).ok());
  ASSERT_TRUE(db.Get(500'000).ok());

  // Raising the cap un-sticks writers; the backlog drains through merges
  // and a checkpoint publishes the recovered state.
  db.SetMaxDeviceBlocks(0);
  for (int i = 0; i < 200; ++i, ++k) {
    ASSERT_TRUE(db.Put(k, MakePayload(dbopts.options, k)).ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.Get(0).ok());
  ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());
}

TEST(DbIntegrityTest, OfflineCorruptionCaughtOnFirstReadAfterReopen) {
  const std::string dir = FreshDir("reopen");
  const DbOptions dbopts = TinyDbOptions();

  LeafMeta leaf;
  size_t block_size = 0;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    Db& db = *db_or.value();
    Grow(&db, dbopts.options, 600);
    ASSERT_TRUE(db.Checkpoint().ok());
    leaf = FirstLeaf(&db);
    block_size = db.options().block_size;
  }

  {
    FILE* fp = ::fopen(Db::DevicePath(dir).c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(
        ::fseek(fp, static_cast<long>(leaf.block * block_size + 42), SEEK_SET),
        0);
    ASSERT_EQ(::fputc(0x3C, fp), 0x3C);
    ASSERT_EQ(::fclose(fp), 0);
  }

  auto db_or = Db::Open(dbopts, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  // The very first in-range read trips the sidecar checksum.
  EXPECT_TRUE(db.Get(leaf.min_key).status().IsCorruption());
  EXPECT_TRUE(Quarantined(&db, leaf.block));
  EXPECT_FALSE(db.failed());
  // And an explicit scrub agrees.
  EXPECT_TRUE(db.Scrub().IsCorruption());
}

}  // namespace
}  // namespace lsmssd
