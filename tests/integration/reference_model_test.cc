// End-to-end semantic check: an LsmTree driven by a randomized mix of
// inserts, overwrites, deletes (including of absent keys), and reads must
// behave exactly like a std::map, for every merge policy, with and without
// block preservation, while maintaining all structural invariants.

#include <map>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

struct Case {
  PolicyKind kind;
  bool preserve;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name(PolicyKindName(info.param.kind));
  name += info.param.preserve ? "_P1" : "_P0";
  return name;
}

class ReferenceModelTest : public ::testing::TestWithParam<Case> {};

TEST_P(ReferenceModelTest, MatchesStdMap) {
  Options options = TinyOptions();
  options.preserve_blocks = GetParam().preserve;
  TreeFixture fx(options, GetParam().kind);
  LsmTree& tree = *fx.tree;

  std::map<Key, std::string> reference;
  Random rng(20170405);
  constexpr Key kDomain = 3000;
  constexpr int kRequests = 6000;

  for (int step = 0; step < kRequests; ++step) {
    const Key key = rng.Uniform(kDomain);
    const uint64_t action = rng.Uniform(10);
    if (action < 6) {  // Insert or overwrite.
      const std::string payload = MakePayload(options, key + step);
      ASSERT_TRUE(tree.Put(key, payload).ok());
      reference[key] = payload;
    } else if (action < 9) {  // Delete (possibly of an absent key).
      ASSERT_TRUE(tree.Delete(key).ok());
      reference.erase(key);
    } else {  // Point read of a random key.
      auto got = tree.Get(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << "key " << key;
      } else {
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(got.value(), it->second) << "key " << key;
      }
    }

    if (step % 500 == 499) {
      ASSERT_TRUE(tree.CheckInvariants(/*deep=*/true).ok())
          << tree.CheckInvariants(true).ToString();
    }
  }

  // Full-range scan must agree with the reference exactly.
  std::vector<std::pair<Key, std::string>> scanned;
  ASSERT_TRUE(tree.Scan(0, kDomain, &scanned).ok());
  ASSERT_EQ(scanned.size(), reference.size());
  size_t i = 0;
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(scanned[i].first, key);
    EXPECT_EQ(scanned[i].second, value);
    ++i;
  }

  // Every key (present or absent) must read correctly.
  for (Key key = 0; key < kDomain; ++key) {
    auto got = tree.Get(key);
    auto it = reference.find(key);
    if (it == reference.end()) {
      ASSERT_TRUE(got.status().IsNotFound()) << "key " << key;
    } else {
      ASSERT_TRUE(got.ok()) << "key " << key << ": "
                            << got.status().ToString();
      ASSERT_EQ(got.value(), it->second) << "key " << key;
    }
  }

  // Accounting cross-check: per-level write attribution must equal the
  // device's ground-truth write counter.
  EXPECT_EQ(tree.stats().TotalBlocksWritten(),
            fx.device.stats().block_writes());
  // The tree must have grown beyond L1 for this test to mean anything.
  EXPECT_GE(tree.num_levels(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ReferenceModelTest,
    ::testing::Values(Case{PolicyKind::kFull, true},
                      Case{PolicyKind::kFull, false},
                      Case{PolicyKind::kRr, true},
                      Case{PolicyKind::kRr, false},
                      Case{PolicyKind::kChooseBest, true},
                      Case{PolicyKind::kChooseBest, false},
                      Case{PolicyKind::kTestMixed, true},
                      Case{PolicyKind::kTestMixed, false}),
    CaseName);

}  // namespace
}  // namespace lsmssd
