// Property sweep: the full LSM invariant set (reference-model agreement,
// waste constraints, capacity limits, write-accounting consistency) must
// hold across a grid of configurations — block sizes, payload widths,
// Gamma, delta, epsilon, bloom — not just the defaults.

#include <map>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TreeFixture;

struct GridPoint {
  size_t block_size;
  size_t payload_size;
  double gamma;
  double delta;
  double epsilon;
  size_t bloom_bits;
  PolicyKind policy;
};

std::string GridName(const ::testing::TestParamInfo<GridPoint>& info) {
  const GridPoint& g = info.param;
  std::string name = std::string(PolicyKindName(g.policy)) + "_bs" +
                     std::to_string(g.block_size) + "_p" +
                     std::to_string(g.payload_size) + "_g" +
                     std::to_string(static_cast<int>(g.gamma * 10)) + "_d" +
                     std::to_string(static_cast<int>(g.delta * 100)) + "_e" +
                     std::to_string(static_cast<int>(g.epsilon * 100)) +
                     "_b" + std::to_string(g.bloom_bits);
  return name;
}

class OptionsGridTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(OptionsGridTest, InvariantsHoldEverywhere) {
  const GridPoint& g = GetParam();
  Options options;
  options.block_size = g.block_size;
  options.key_size = 4;
  options.payload_size = g.payload_size;
  options.level0_capacity_blocks = 4;
  options.gamma = g.gamma;
  options.delta = g.delta;
  options.epsilon = g.epsilon;
  options.bloom_bits_per_key = g.bloom_bits;
  options.preserve_blocks = true;
  const Status valid = options.Validate();
  ASSERT_TRUE(valid.ok()) << valid.ToString();

  TreeFixture fx(options, g.policy);
  std::map<Key, std::string> reference;
  Random rng(1234 + g.block_size + g.payload_size);
  constexpr Key kDomain = 2500;

  for (int step = 0; step < 4000; ++step) {
    const Key key = rng.Uniform(kDomain);
    if (rng.Bernoulli(0.65)) {
      const std::string payload = MakePayload(options, key + step);
      ASSERT_TRUE(fx.tree->Put(key, payload).ok());
      reference[key] = payload;
    } else {
      ASSERT_TRUE(fx.tree->Delete(key).ok());
      reference.erase(key);
    }
    if (step % 1000 == 999) {
      ASSERT_TRUE(fx.tree->CheckInvariants(true).ok())
          << fx.tree->CheckInvariants(true).ToString();
    }
  }

  // Reference agreement via iterator.
  auto it = fx.tree->NewIterator();
  auto ref = reference.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++ref) {
    ASSERT_NE(ref, reference.end());
    ASSERT_EQ(it->key(), ref->first);
    ASSERT_EQ(it->value(), ref->second);
  }
  EXPECT_EQ(ref, reference.end());
  ASSERT_TRUE(it->status().ok());

  // Accounting consistency.
  EXPECT_EQ(fx.tree->stats().TotalBlocksWritten(),
            fx.device.stats().block_writes());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptionsGridTest,
    ::testing::Values(
        // Block-size extremes.
        GridPoint{128, 10, 4.0, 0.25, 0.2, 0, PolicyKind::kChooseBest},
        GridPoint{4096, 100, 4.0, 0.25, 0.2, 0, PolicyKind::kChooseBest},
        // One record per block (preservation everywhere).
        GridPoint{256, 200, 4.0, 0.25, 0.2, 0, PolicyKind::kChooseBest},
        GridPoint{256, 200, 4.0, 0.25, 0.2, 0, PolicyKind::kRr},
        // Gamma extremes.
        GridPoint{256, 20, 2.0, 0.25, 0.2, 0, PolicyKind::kChooseBest},
        GridPoint{256, 20, 16.0, 0.25, 0.2, 0, PolicyKind::kTestMixed},
        // Delta extremes.
        GridPoint{256, 20, 4.0, 0.05, 0.2, 0, PolicyKind::kChooseBest},
        GridPoint{256, 20, 4.0, 0.6, 0.2, 0, PolicyKind::kChooseBest},
        // Epsilon extremes.
        GridPoint{256, 20, 4.0, 0.25, 0.01, 0, PolicyKind::kChooseBest},
        GridPoint{256, 20, 4.0, 0.25, 0.5, 0, PolicyKind::kRr},
        // Bloom filters on, across policies.
        GridPoint{256, 20, 4.0, 0.25, 0.2, 10, PolicyKind::kFull},
        GridPoint{256, 20, 4.0, 0.25, 0.2, 10, PolicyKind::kChooseBest},
        GridPoint{256, 20, 4.0, 0.25, 0.2, 2, PolicyKind::kTestMixed},
        // The extra baseline policy.
        GridPoint{256, 20, 4.0, 0.25, 0.2, 0, PolicyKind::kPartitioned},
        GridPoint{512, 40, 8.0, 0.1, 0.2, 10, PolicyKind::kPartitioned},
        // Fractional gamma.
        GridPoint{256, 20, 2.5, 0.25, 0.2, 0, PolicyKind::kChooseBest}),
    GridName);

}  // namespace
}  // namespace lsmssd
