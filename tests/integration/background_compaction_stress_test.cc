// Concurrency stress for the background compaction pipeline: N writer
// threads and M reader threads hammer one Db whose flushes and merges run
// on the compaction thread — with the maintenance thread's background
// checkpoints on at the same time — and the final contents are checked
// against a serial oracle.
//
// Key-space partitioning makes the oracle exact without cross-thread
// ordering assumptions: writer w only touches keys congruent to w, so the
// expected final value of every key is decided entirely by that writer's
// own (deterministic) op sequence, whatever the interleaving.
//
// A shallow compaction queue keeps the soft-throttle and hard-stall
// commit paths hot, so readers overlap every publish point: memtable
// seal, sealed-queue pop, L0-buffer absorption, and level swap. Run
// under TSan (see .github/workflows/ci.yml) this doubles as the
// data-race check for the whole compaction locking layer.
#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/db/db.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

constexpr int kWriters = 4;
constexpr int kReaders = 3;
constexpr size_t kOpsPerWriter = 15'000;  // 60k modifications total.
constexpr Key kKeysPerWriter = 4'096;     // Bounded space => real rewrites.

std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/bgstress_" + tag + "_" +
                          std::to_string(::getpid());
  ::unlink(Db::ManifestPath(dir).c_str());
  ::unlink(Db::ManifestTmpPath(dir).c_str());
  ::unlink(Db::DevicePath(dir).c_str());
  ::unlink(Db::WalPath(dir).c_str());
  for (const std::string& seg : Db::ListWalSegments(dir)) {
    ::unlink(seg.c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

struct Op {
  Key key;
  bool is_delete;
  Key payload_seed;
};

/// Writer w's deterministic op sequence over its own key residue class.
std::vector<Op> WriterOps(int w, size_t ops_per_writer = kOpsPerWriter) {
  std::mt19937_64 rng(0xba5e + static_cast<uint64_t>(w));
  std::vector<Op> ops;
  ops.reserve(ops_per_writer);
  for (size_t i = 0; i < ops_per_writer; ++i) {
    const Key key = static_cast<Key>(w) +
                    kWriters * static_cast<Key>(rng() % kKeysPerWriter);
    const bool is_delete = rng() % 8 == 0;
    // Op-unique payload: a lost or reordered rewrite changes bytes, not
    // just presence.
    ops.push_back({key, is_delete,
                   key ^ (static_cast<Key>(i + 1) << 32) ^
                       (static_cast<Key>(w) << 56)});
  }
  return ops;
}

void RunStressAgainstOracle(const std::string& dir, const DbOptions& dbopts,
                            size_t ops_per_writer) {
  // The serial oracle: per-writer replay over disjoint key sets.
  std::map<Key, std::string> expected;
  for (int w = 0; w < kWriters; ++w) {
    for (const Op& op : WriterOps(w, ops_per_writer)) {
      if (op.is_delete) {
        expected.erase(op.key);
      } else {
        expected[op.key] = MakePayload(dbopts.options, op.payload_seed);
      }
    }
  }

  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&db, &failures, w, ops_per_writer] {
        const std::vector<Op> ops = WriterOps(w, ops_per_writer);
        for (size_t i = 0; i < ops.size(); ++i) {
          const Op& op = ops[i];
          const Status st =
              op.is_delete
                  ? db.Delete(op.key)
                  : db.Put(op.key, MakePayload(db.options(), op.payload_seed));
          if (!st.ok()) {
            ADD_FAILURE() << "writer " << w << " op " << i << ": "
                          << st.ToString();
            failures.fetch_add(1);
            return;
          }
          // Sprinkle synchronous ops into the stream: checkpoints
          // serialize with in-flight background flushes/merges, SyncWal
          // exercises group commit, WaitForCompaction drains the queue
          // while the other writers keep refilling it.
          if (w == 0 && (i + 1) % 6'000 == 0) {
            const Status ck = db.Checkpoint();
            if (!ck.ok()) {
              ADD_FAILURE() << "manual checkpoint: " << ck.ToString();
              failures.fetch_add(1);
              return;
            }
          }
          if (w == 1 && (i + 1) % 4'777 == 0 && !db.SyncWal().ok()) {
            failures.fetch_add(1);
            return;
          }
          if (w == 2 && (i + 1) % 5'500 == 0 &&
              !db.WaitForCompaction().ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }

    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&db, &stop, &dbopts, r] {
        std::mt19937_64 rng(0xf00d + static_cast<uint64_t>(r));
        while (!stop.load(std::memory_order_relaxed)) {
          const Key key = static_cast<Key>(rng() % (kWriters * kKeysPerWriter));
          switch (rng() % 3) {
            case 0: {  // Point lookup: value, if present, is well-formed.
              auto v = db.Get(key);
              if (v.ok()) {
                EXPECT_EQ(v.value().size(), dbopts.options.payload_size);
              } else {
                EXPECT_TRUE(v.status().IsNotFound()) << v.status().ToString();
              }
              break;
            }
            case 1: {  // Range scan over a snapshot: sorted, unique keys.
              std::vector<std::pair<Key, std::string>> rows;
              ASSERT_TRUE(db.Scan(key, key + 64, &rows).ok());
              for (size_t i = 1; i < rows.size(); ++i) {
                EXPECT_LT(rows[i - 1].first, rows[i].first);
              }
              break;
            }
            case 2: {  // Iterator: holds the shared tree lock while open.
              auto it = db.NewIterator();
              ASSERT_NE(it, nullptr);
              int n = 0;
              for (it->Seek(key); it->Valid() && n < 32; it->Next(), ++n) {
                EXPECT_EQ(it->value().size(), dbopts.options.payload_size);
              }
              EXPECT_TRUE(it->status().ok()) << it->status().ToString();
              break;
            }
          }
        }
      });
    }

    for (std::thread& t : writers) t.join();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : readers) t.join();
    ASSERT_EQ(failures.load(), 0);
    ASSERT_FALSE(db.failed());

    // The background path actually engaged: memtables were sealed onto
    // the queue and the worker drained them.
    ASSERT_TRUE(db.WaitForCompaction().ok());
    const DbStats stats = db.Stats();
    EXPECT_GT(stats.memtables_sealed, 0u);
    EXPECT_GT(stats.background_flushes, 0u);
    EXPECT_EQ(stats.compaction_queue_depth, 0u);

    // Quiesced: the live contents must equal the serial oracle.
    std::vector<std::pair<Key, std::string>> rows;
    ASSERT_TRUE(db.Scan(0, MaxKeyForSize(8), &rows).ok());
    const std::map<Key, std::string> got(rows.begin(), rows.end());
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_TRUE(got == expected) << "live contents diverge from the oracle";

    ASSERT_TRUE(db.Checkpoint().ok());
    db.Close();
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());
  }

  // And the whole thing must round-trip through recovery.
  DbOptions verify = dbopts;
  verify.background_checkpoint = false;
  verify.background_compaction = false;
  auto db_or = Db::Open(verify, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::vector<std::pair<Key, std::string>> rows;
  ASSERT_TRUE(db_or.value()->Scan(0, MaxKeyForSize(8), &rows).ok());
  const std::map<Key, std::string> recovered(rows.begin(), rows.end());
  EXPECT_TRUE(recovered == expected) << "recovered contents diverge";
  ASSERT_TRUE(db_or.value()->tree()->CheckInvariants(true).ok());
}

TEST(BackgroundCompactionStressTest, WritersReadersMatchSerialOracle) {
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;
  dbopts.wal_sync_every_n = 32;  // Cross-thread group commit.
  dbopts.checkpoint_wal_bytes = 64 * 1024;  // Many background checkpoints.
  dbopts.background_checkpoint = true;
  dbopts.background_compaction = true;
  // Shallow queue + tight slowdown: writers regularly cross the throttle
  // and stall thresholds instead of staying in the fast path.
  dbopts.compaction_queue_depth = 3;
  dbopts.compaction_slowdown_depth = 1;
  dbopts.compaction_slowdown_micros = 50;
  RunStressAgainstOracle(FreshDir("oracle"), dbopts, kOpsPerWriter);
}

TEST(BackgroundCompactionStressTest, ParallelWorkersMatchSerialOracle) {
  // The worker-pool variant: three compaction workers race over the
  // ownership table — flushes (under mem_mu_ + claim{0}) overlap merges
  // (under tree_mu_ + claim{s,s+1}) — with the merge rate limiter on
  // (burst 1 forces real pacing pauses, and their fairness bypass when the
  // shallow queue deepens). Under TSan this is the data-race check for
  // the parallel-compaction locking layer; the oracle + recovery check
  // catches lost or misordered L0-buffer mutations (e.g. a flush shifting
  // record positions under an in-flight spill's erase range).
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;
  dbopts.wal_sync_every_n = 32;
  dbopts.checkpoint_wal_bytes = 64 * 1024;
  dbopts.background_checkpoint = true;
  dbopts.background_compaction = true;
  dbopts.compaction_workers = 3;
  dbopts.compaction_queue_depth = 2;  // Even shallower: constant pressure.
  dbopts.compaction_slowdown_depth = 1;
  dbopts.compaction_slowdown_micros = 50;
  dbopts.compaction_rate_limit_blocks_per_sec = 20'000;
  dbopts.compaction_rate_burst_blocks = 1;
  RunStressAgainstOracle(FreshDir("parallel"), dbopts, 8'000);
}

}  // namespace
}  // namespace lsmssd
