// Concurrency stress for the Db facade: N writer threads and M reader
// threads hammer one Db (group commit, background checkpoints, manual
// checkpoints, iterators) and the final contents are checked against a
// serial oracle.
//
// Key-space partitioning makes the oracle exact without cross-thread
// ordering assumptions: writer w only touches keys congruent to w, so
// the expected final value of every key is decided entirely by that
// writer's own (deterministic) op sequence, whatever the interleaving.
//
// Run under TSan (see .github/workflows/ci.yml) this doubles as the
// data-race check for the whole Db locking layer.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/db/db.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

constexpr int kWriters = 4;
constexpr int kReaders = 3;
constexpr size_t kOpsPerWriter = 25'000;  // 100k modifications total.
constexpr Key kKeysPerWriter = 8'192;     // Bounded space => real rewrites.

std::string FreshDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "/stress_" + tag + "_" +
                          std::to_string(::getpid());
  ::unlink(Db::ManifestPath(dir).c_str());
  ::unlink(Db::ManifestTmpPath(dir).c_str());
  ::unlink(Db::DevicePath(dir).c_str());
  ::unlink(Db::WalPath(dir).c_str());
  for (const std::string& seg : Db::ListWalSegments(dir)) {
    ::unlink(seg.c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

struct Op {
  Key key;
  bool is_delete;
  Key payload_seed;
};

/// Writer w's deterministic op sequence over its own key residue class.
std::vector<Op> WriterOps(int w) {
  std::mt19937_64 rng(0x5eed + static_cast<uint64_t>(w));
  std::vector<Op> ops;
  ops.reserve(kOpsPerWriter);
  for (size_t i = 0; i < kOpsPerWriter; ++i) {
    const Key key =
        static_cast<Key>(w) + kWriters * static_cast<Key>(rng() % kKeysPerWriter);
    const bool is_delete = rng() % 8 == 0;
    // Op-unique payload: a lost or reordered rewrite changes bytes, not
    // just presence.
    ops.push_back({key, is_delete,
                   key ^ (static_cast<Key>(i + 1) << 32) ^
                       (static_cast<Key>(w) << 56)});
  }
  return ops;
}

TEST(ConcurrentStressTest, WritersReadersCheckpointsMatchSerialOracle) {
  const std::string dir = FreshDir("oracle");
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;
  dbopts.wal_sync_every_n = 32;  // Cross-thread group commit.
  dbopts.checkpoint_wal_bytes = 64 * 1024;  // Many background checkpoints.
  dbopts.background_checkpoint = true;

  // The serial oracle: per-writer replay over disjoint key sets.
  std::map<Key, std::string> expected;
  for (int w = 0; w < kWriters; ++w) {
    for (const Op& op : WriterOps(w)) {
      if (op.is_delete) {
        expected.erase(op.key);
      } else {
        expected[op.key] = MakePayload(dbopts.options, op.payload_seed);
      }
    }
  }

  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&db, &failures, w] {
        const std::vector<Op> ops = WriterOps(w);
        for (size_t i = 0; i < ops.size(); ++i) {
          const Op& op = ops[i];
          const Status st =
              op.is_delete
                  ? db.Delete(op.key)
                  : db.Put(op.key, MakePayload(db.options(), op.payload_seed));
          if (!st.ok()) {
            ADD_FAILURE() << "writer " << w << " op " << i << ": "
                          << st.ToString();
            failures.fetch_add(1);
            return;
          }
          // Sprinkle synchronous durability ops into the stream: manual
          // checkpoints serialize with background ones, SyncWal exercises
          // the force-sync path against concurrent group commits.
          if (w == 0 && (i + 1) % 10'000 == 0) {
            const Status ck = db.Checkpoint();
            if (!ck.ok()) {
              ADD_FAILURE() << "manual checkpoint: " << ck.ToString();
              failures.fetch_add(1);
              return;
            }
          }
          if (w == 1 && (i + 1) % 7'777 == 0 && !db.SyncWal().ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }

    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&db, &stop, &dbopts, r] {
        std::mt19937_64 rng(0xfeed + static_cast<uint64_t>(r));
        while (!stop.load(std::memory_order_relaxed)) {
          const Key key = static_cast<Key>(rng() % (kWriters * kKeysPerWriter));
          switch (rng() % 3) {
            case 0: {  // Point lookup: value, if present, is well-formed.
              auto v = db.Get(key);
              if (v.ok()) {
                EXPECT_EQ(v.value().size(), dbopts.options.payload_size);
              } else {
                EXPECT_TRUE(v.status().IsNotFound()) << v.status().ToString();
              }
              break;
            }
            case 1: {  // Range scan over a snapshot: sorted, unique keys.
              std::vector<std::pair<Key, std::string>> rows;
              ASSERT_TRUE(db.Scan(key, key + 64, &rows).ok());
              for (size_t i = 1; i < rows.size(); ++i) {
                EXPECT_LT(rows[i - 1].first, rows[i].first);
              }
              break;
            }
            case 2: {  // Iterator: holds the shared tree lock while open.
              auto it = db.NewIterator();
              ASSERT_NE(it, nullptr);
              int n = 0;
              for (it->Seek(key); it->Valid() && n < 32; it->Next(), ++n) {
                EXPECT_EQ(it->value().size(), dbopts.options.payload_size);
              }
              EXPECT_TRUE(it->status().ok()) << it->status().ToString();
              break;
            }
          }
        }
      });
    }

    for (std::thread& t : writers) t.join();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : readers) t.join();
    ASSERT_EQ(failures.load(), 0);
    ASSERT_FALSE(db.failed());

    // Quiesced: the live contents must equal the serial oracle.
    std::vector<std::pair<Key, std::string>> rows;
    ASSERT_TRUE(db.Scan(0, MaxKeyForSize(8), &rows).ok());
    const std::map<Key, std::string> got(rows.begin(), rows.end());
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_TRUE(got == expected) << "live contents diverge from the oracle";

    ASSERT_TRUE(db.Checkpoint().ok());
    db.Close();
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());
  }

  // And the whole thing must round-trip through recovery.
  DbOptions verify = dbopts;
  verify.background_checkpoint = false;
  auto db_or = Db::Open(verify, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::vector<std::pair<Key, std::string>> rows;
  ASSERT_TRUE(db_or.value()->Scan(0, MaxKeyForSize(8), &rows).ok());
  const std::map<Key, std::string> recovered(rows.begin(), rows.end());
  EXPECT_TRUE(recovered == expected) << "recovered contents diverge";
  ASSERT_TRUE(db_or.value()->tree()->CheckInvariants(true).ok());
}

// Same writer/reader mix against a 4-shard facade: routing, the N-way
// scan merge, the cross-shard memory arbiter, and four independent
// compaction workers all run under the same serial-oracle check. Under
// TSan this covers the facade's lock-free accounting reads as well.
TEST(ConcurrentStressTest, ShardedWritersReadersScansMatchSerialOracle) {
  const std::string dir = ::testing::TempDir() + "/stress_sharded_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;
  dbopts.wal_sync_every_n = 32;
  dbopts.checkpoint_wal_bytes = 64 * 1024;
  dbopts.background_checkpoint = true;
  dbopts.background_compaction = true;
  dbopts.shards = 4;
  // Tight budget so the arbiter fires while writers race it.
  dbopts.shard_memory_budget_records = 64;

  std::map<Key, std::string> expected;
  for (int w = 0; w < kWriters; ++w) {
    for (const Op& op : WriterOps(w)) {
      if (op.is_delete) {
        expected.erase(op.key);
      } else {
        expected[op.key] = MakePayload(dbopts.options, op.payload_seed);
      }
    }
  }

  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    ASSERT_EQ(db.shard_count(), 4u);

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&db, &failures, w] {
        const std::vector<Op> ops = WriterOps(w);
        for (size_t i = 0; i < ops.size(); ++i) {
          const Op& op = ops[i];
          const Status st =
              op.is_delete
                  ? db.Delete(op.key)
                  : db.Put(op.key, MakePayload(db.options(), op.payload_seed));
          if (!st.ok()) {
            ADD_FAILURE() << "writer " << w << " op " << i << ": "
                          << st.ToString();
            failures.fetch_add(1);
            return;
          }
          if (w == 0 && (i + 1) % 10'000 == 0 && !db.Checkpoint().ok()) {
            failures.fetch_add(1);
            return;
          }
          if (w == 1 && (i + 1) % 7'777 == 0 && !db.SyncWal().ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }

    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&db, &stop, &dbopts, r] {
        std::mt19937_64 rng(0xfeed + static_cast<uint64_t>(r));
        while (!stop.load(std::memory_order_relaxed)) {
          const Key key = static_cast<Key>(rng() % (kWriters * kKeysPerWriter));
          switch (rng() % 3) {
            case 0: {
              auto v = db.Get(key);
              if (v.ok()) {
                EXPECT_EQ(v.value().size(), dbopts.options.payload_size);
              } else {
                EXPECT_TRUE(v.status().IsNotFound()) << v.status().ToString();
              }
              break;
            }
            case 1: {  // Cross-shard merge scan: sorted, unique keys.
              std::vector<std::pair<Key, std::string>> rows;
              ASSERT_TRUE(db.Scan(key, key + 64, &rows).ok());
              for (size_t i = 1; i < rows.size(); ++i) {
                EXPECT_LT(rows[i - 1].first, rows[i].first);
              }
              break;
            }
            case 2: {  // Merged iterator over all four shard snapshots.
              auto it = db.NewIterator();
              ASSERT_NE(it, nullptr);
              int n = 0;
              Key prev = 0;
              for (it->Seek(key); it->Valid() && n < 32; it->Next(), ++n) {
                if (n > 0) {
                  EXPECT_LT(prev, it->key());
                }
                prev = it->key();
                EXPECT_EQ(it->value().size(), dbopts.options.payload_size);
              }
              EXPECT_TRUE(it->status().ok()) << it->status().ToString();
              break;
            }
          }
        }
      });
    }

    for (std::thread& t : writers) t.join();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : readers) t.join();
    ASSERT_EQ(failures.load(), 0);
    ASSERT_FALSE(db.failed());
    ASSERT_TRUE(db.WaitForCompaction().ok());

    // Quiesced: the merged view must equal the serial oracle.
    std::vector<std::pair<Key, std::string>> rows;
    ASSERT_TRUE(db.Scan(0, MaxKeyForSize(8), &rows).ok());
    const std::map<Key, std::string> got(rows.begin(), rows.end());
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_TRUE(got == expected) << "live contents diverge from the oracle";

    // And every key must live in exactly its hash shard.
    EXPECT_GT(db.Stats().arbiter_seals, 0u) << "budget never bound";
    std::mt19937_64 rng(0xabc);
    for (int i = 0; i < 200; ++i) {
      const auto it = expected.lower_bound(static_cast<Key>(
          rng() % (kWriters * kKeysPerWriter)));
      if (it == expected.end()) continue;
      const size_t home = Db::ShardOfKey(it->first, 4);
      for (size_t s = 0; s < 4; ++s) {
        const bool found = db.shard(s)->Get(it->first).ok();
        EXPECT_EQ(found, s == home) << "key " << it->first << " shard " << s;
      }
    }

    ASSERT_TRUE(db.Checkpoint().ok());
    db.Close();
    for (size_t s = 0; s < 4; ++s) {
      ASSERT_TRUE(db.shard(s)->tree()->CheckInvariants(true).ok())
          << "shard " << s;
    }
  }

  // Round-trip through per-shard recovery.
  DbOptions verify = dbopts;
  verify.background_checkpoint = false;
  auto db_or = Db::Open(verify, dir);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  ASSERT_EQ(db_or.value()->shard_count(), 4u);
  std::vector<std::pair<Key, std::string>> rows;
  ASSERT_TRUE(db_or.value()->Scan(0, MaxKeyForSize(8), &rows).ok());
  const std::map<Key, std::string> recovered(rows.begin(), rows.end());
  EXPECT_TRUE(recovered == expected) << "recovered contents diverge";
}

}  // namespace
}  // namespace lsmssd
