// Scaled-down versions of the paper's headline comparisons: under a
// steady-state uniform mix, ChooseBest must beat Full on write cost
// (Figure 2/6), and the RR-induced skew of L1's key distribution (Figure
// 1) must emerge.

#include <gtest/gtest.h>

#include "src/util/histogram.h"
#include "src/workload/uniform_workload.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

/// Grows a tree to `records`, reaches the steady state, then measures
/// blocks written per MB over `window_records` requests.
double MeasureSteadyCost(PolicyKind kind, bool preserve, uint64_t records,
                         uint64_t window_records, uint64_t seed,
                         size_t cache_blocks = 0,
                         uint64_t* device_writes = nullptr) {
  Options options = TinyOptions();
  options.preserve_blocks = preserve;
  options.cache_blocks = cache_blocks;
  TreeFixture fx(options, kind);
  UniformWorkload::Params wp;
  wp.key_max = 100'000'000;
  wp.seed = seed;
  UniformWorkload workload(wp);
  WorkloadDriver driver(fx.tree.get(), &workload);
  LSMSSD_CHECK(driver.GrowTo(records * options.record_size()).ok());
  LSMSSD_CHECK(driver.ReachSteadyState(0.5).ok());
  auto metrics = driver.MeasureWindow(window_records * options.record_size());
  LSMSSD_CHECK(metrics.ok());
  LSMSSD_CHECK(fx.tree->CheckInvariants(true).ok());
  if (device_writes != nullptr) {
    *device_writes = fx.device.stats().block_writes();
  }
  return metrics->BlocksPerMb();
}

TEST(SteadyStateTest, BufferCacheLeavesWriteCountsUnchanged) {
  // The buffer cache is read-side only: an identical workload run with
  // cache_blocks on and off must reach the exact same device write count
  // and measured write cost (the paper's metric is never absorbed).
  uint64_t writes_without = 0;
  uint64_t writes_with = 0;
  const double cost_without =
      MeasureSteadyCost(PolicyKind::kChooseBest, true, 600, 20000, 131,
                        /*cache_blocks=*/0, &writes_without);
  const double cost_with =
      MeasureSteadyCost(PolicyKind::kChooseBest, true, 600, 20000, 131,
                        /*cache_blocks=*/256, &writes_with);
  EXPECT_EQ(writes_with, writes_without);
  EXPECT_EQ(cost_with, cost_without);
}

TEST(SteadyStateTest, ChooseBestBeatsFullOnUniform) {
  const double full = MeasureSteadyCost(PolicyKind::kFull, true, 600,
                                        20000, 101);
  const double choose_best = MeasureSteadyCost(PolicyKind::kChooseBest, true,
                                               600, 20000, 101);
  EXPECT_LT(choose_best, full)
      << "ChooseBest=" << choose_best << " Full=" << full;
}

TEST(SteadyStateTest, RrStaysWithinConstantFactorOfFull) {
  // At paper scale RR roughly matches ChooseBest under Uniform (Figure
  // 6a); at this unit-test scale the merge windows are a single block, so
  // we only guard against pathological blowup here — the full-scale
  // comparison lives in bench/fig06_steady_state.
  const double full =
      MeasureSteadyCost(PolicyKind::kFull, true, 600, 20000, 103);
  const double rr = MeasureSteadyCost(PolicyKind::kRr, true, 600, 20000, 103);
  EXPECT_LT(rr, full * 1.5) << "RR=" << rr << " Full=" << full;
}

TEST(SteadyStateTest, L1DistributionSkewsUnderPartialMerges) {
  // Figure 1: under a partial policy, L1's key density is skewed (recently
  // merged regions are sparse) while the bottom level stays uniform.
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  UniformWorkload::Params wp;
  wp.key_max = 100'000'000;
  wp.seed = 107;
  UniformWorkload workload(wp);
  WorkloadDriver driver(fx.tree.get(), &workload);
  ASSERT_TRUE(driver.GrowTo(700 * options.record_size()).ok());
  ASSERT_TRUE(driver.ReachSteadyState(0.5).ok());
  ASSERT_TRUE(driver.Run(20000).ok());

  ASSERT_GE(fx.tree->num_levels(), 3u);
  Histogram l1(0, wp.key_max, 20);
  Histogram bottom(0, wp.key_max, 20);
  const size_t bottom_index = fx.tree->num_levels() - 1;
  for (size_t i = 0; i < fx.tree->level(1).num_leaves(); ++i) {
    auto leaf = fx.tree->level(1).ReadLeaf(i);
    ASSERT_TRUE(leaf.ok());
    for (const auto& r : leaf.value()) l1.Add(r.key);
  }
  const Level& bl = fx.tree->level(bottom_index);
  for (size_t i = 0; i < bl.num_leaves(); ++i) {
    auto leaf = bl.ReadLeaf(i);
    ASSERT_TRUE(leaf.ok());
    for (const auto& r : leaf.value()) bottom.Add(r.key);
  }
  // The bottom holds most data and mirrors the workload's uniformity;
  // L1's distribution is measurably more skewed.
  EXPECT_GT(l1.FrequencyCv(), bottom.FrequencyCv())
      << "L1 cv=" << l1.FrequencyCv() << " bottom cv=" << bottom.FrequencyCv();
}

TEST(SteadyStateTest, DatasetSizeStableUnderFiftyFiftyMix) {
  Options options = TinyOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  UniformWorkload::Params wp;
  wp.key_max = 100'000'000;
  wp.seed = 109;
  UniformWorkload workload(wp);
  WorkloadDriver driver(fx.tree.get(), &workload);
  ASSERT_TRUE(driver.GrowTo(600 * options.record_size()).ok());
  ASSERT_TRUE(driver.ReachSteadyState(0.5).ok());

  const uint64_t live_before = workload.indexed_keys();
  ASSERT_TRUE(driver.Run(10000).ok());
  const uint64_t live_after = workload.indexed_keys();
  EXPECT_NEAR(static_cast<double>(live_after),
              static_cast<double>(live_before), 0.25 * live_before);
}

TEST(SteadyStateTest, AllPoliciesAgreeOnFinalContent) {
  // Same workload stream -> identical final key sets regardless of policy
  // (merge policy affects cost, never contents).
  std::vector<std::vector<std::pair<Key, std::string>>> contents;
  for (PolicyKind kind : {PolicyKind::kFull, PolicyKind::kRr,
                          PolicyKind::kChooseBest, PolicyKind::kTestMixed}) {
    Options options = TinyOptions();
    TreeFixture fx(options, kind);
    UniformWorkload::Params wp;
    wp.key_max = 1'000'000;
    wp.seed = 113;
    UniformWorkload workload(wp);
    WorkloadDriver driver(fx.tree.get(), &workload);
    ASSERT_TRUE(driver.Run(5000).ok());
    std::vector<std::pair<Key, std::string>> out;
    ASSERT_TRUE(fx.tree->Scan(0, wp.key_max, &out).ok());
    contents.push_back(std::move(out));
  }
  for (size_t i = 1; i < contents.size(); ++i) {
    EXPECT_EQ(contents[i], contents[0]) << "policy #" << i;
  }
}

}  // namespace
}  // namespace lsmssd
