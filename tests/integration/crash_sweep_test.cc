// Crash-point sweep over the Db durability protocol.
//
// A fixed workload runs against a Db whose every durable step (WAL
// append/sync/truncate, block write, device flush, manifest tmp-write/
// rename) ticks a FaultInjector. A first, disarmed run counts the steps;
// the sweep then re-runs the workload once per step k, killing the
// "process" at step k, reopening the directory, and checking the
// recovered state against a model:
//
//   * the recovered contents equal the model state after some prefix of
//     the workload (an operation is atomic: never partially visible,
//     never applied out of order);
//   * that prefix covers at least every operation that was durable when
//     the crash hit (acknowledged-and-synced writes are never lost);
//   * the recovered tree passes deep invariant checks (the block
//     directory is consistent, torn blocks unreachable);
//   * the recovered Db accepts and persists new writes.
#include <unistd.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/db/db.h"
#include "src/storage/vlog_file.h"
#include "src/workload/driver.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;

struct Op {
  Key key;
  bool is_delete;
  Key payload_seed;  ///< Unique per op, so every rewrite changes the value.
};

/// Deterministic workload: interleaved puts/deletes over a small key
/// space (so deletes hit existing keys and merges carry tombstones),
/// with one explicit checkpoint in the middle. The 20-key cycle is
/// deliberately smaller than the ~29-entry auto-checkpoint window
/// (checkpoint_wal_bytes=1000 / ~34-byte frames), so keys repeat within
/// one window, and each put carries an op-unique payload — recovering a
/// stale WAL prefix on top of a newer checkpoint therefore visibly
/// regresses any key rewritten since the last group commit, instead of
/// silently rewriting it to the same bytes.
std::vector<Op> MakeWorkload() {
  std::vector<Op> ops;
  for (int i = 0; i < 80; ++i) {
    const Key k = static_cast<Key>((i * 13) % 20);
    ops.push_back({k, i % 7 == 5, k + (static_cast<Key>(i + 1) << 32)});
  }
  return ops;
}
constexpr int kCheckpointAfterOp = 40;

using ModelState = std::map<Key, std::string>;

void ApplyToModel(ModelState* model, const Op& op, const Options& options) {
  if (op.is_delete) {
    model->erase(op.key);
  } else {
    (*model)[op.key] = MakePayload(options, op.payload_seed);
  }
}

std::string WipedDir(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + "/sweep_" + tag + "_" + std::to_string(::getpid());
  ::unlink(Db::ManifestPath(dir).c_str());
  ::unlink(Db::ManifestTmpPath(dir).c_str());
  ::unlink(Db::DevicePath(dir).c_str());
  ::unlink(Db::ChecksumPath(dir).c_str());
  ::unlink(Db::WalPath(dir).c_str());
  for (const std::string& seg : Db::ListWalSegments(dir)) {
    ::unlink(seg.c_str());
  }
  for (uint64_t n : Db::ListVlogSegments(dir)) {
    ::unlink(Db::VlogSegmentPath(dir, n).c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

ModelState DumpDb(Db* db) {
  std::vector<std::pair<Key, std::string>> rows;
  EXPECT_TRUE(db->Scan(0, MaxKeyForSize(8), &rows).ok());
  return ModelState(rows.begin(), rows.end());
}

struct RunResult {
  uint64_t steps = 0;       ///< Injector steps the full run consumed.
  size_t durable_ops = 0;   ///< Ops covered by a sync/checkpoint at crash.
};

/// Runs the workload in `dir` with `dbopts` (whose injector may be
/// armed). Returns the durable-op frontier: the largest prefix of ops
/// known covered by a successful WAL sync or checkpoint.
RunResult RunWorkload(const DbOptions& dbopts, const std::string& dir,
                      FaultInjector* injector) {
  RunResult result;
  auto db_or = Db::Open(dbopts, dir);
  if (!db_or.ok()) {
    // Open of a fresh dir takes no injector steps; it cannot fail here.
    ADD_FAILURE() << "fresh open failed: " << db_or.status().ToString();
    return result;
  }
  Db& db = *db_or.value();
  const std::vector<Op> ops = MakeWorkload();
  for (size_t i = 0; i < ops.size(); ++i) {
    const uint64_t covered_before =
        db.Stats().wal_syncs + db.Stats().checkpoints;
    Status st = ops[i].is_delete
                    ? db.Delete(ops[i].key)
                    : db.Put(ops[i].key, MakePayload(dbopts.options,
                                                     ops[i].payload_seed));
    if (st.ok() && static_cast<int>(i) + 1 == kCheckpointAfterOp) {
      st = db.Checkpoint();
    }
    const DbStats stats = db.Stats();
    if (stats.wal_syncs + stats.checkpoints > covered_before) {
      // A sync/checkpoint fired during this op (even if the op itself
      // then failed): every WAL-appended op so far is durable.
      result.durable_ops = static_cast<size_t>(stats.wal_entries_appended);
    }
    if (!st.ok()) break;  // The process died mid-op.
  }
  // db destructor: best-effort final sync (a step) unless failed.
  db_or.value().reset();
  result.steps = injector->steps();
  return result;
}

void SweepMode(const char* tag, WalSyncMode mode) {
  FaultInjector injector;
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = mode;
  // 7 does not divide any checkpoint's entry count, so in kEveryN mode a
  // checkpoint always finds unsynced appends beyond the last group
  // commit — the window where a checkpoint that skipped its WAL fsync
  // would publish a manifest the durable log does not cover.
  dbopts.wal_sync_every_n = 7;
  dbopts.checkpoint_wal_bytes = 1000;  // Auto-checkpoints mid-workload.
  // Inline checkpoints: the step at which each durable operation runs is
  // then a pure function of the workload, so pass 2 can enumerate pass
  // 1's steps exactly. (The background path gets its own sweep below.)
  dbopts.background_checkpoint = false;
  dbopts.fault_injector = &injector;

  // Pass 1: count the crash points.
  const std::string count_dir = WipedDir(std::string(tag) + "_count");
  const RunResult full = RunWorkload(dbopts, count_dir, &injector);
  ASSERT_GT(full.steps, 0u);

  // The model: state after every prefix of the workload.
  const std::vector<Op> ops = MakeWorkload();
  std::vector<ModelState> prefix_states(1);
  for (const Op& op : ops) {
    ModelState next = prefix_states.back();
    ApplyToModel(&next, op, dbopts.options);
    prefix_states.push_back(std::move(next));
  }

  // Pass 2: crash at every step, recover, verify.
  for (uint64_t crash_at = 0; crash_at < full.steps; ++crash_at) {
    SCOPED_TRACE(std::string(tag) + " crash at step " +
                 std::to_string(crash_at));
    const std::string dir =
        WipedDir(std::string(tag) + "_k" + std::to_string(crash_at));
    injector.Arm(crash_at);
    const RunResult crashed = RunWorkload(dbopts, dir, &injector);
    injector.Disarm();

    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());

    // The recovered contents must equal some prefix state at or past the
    // durable frontier.
    const ModelState recovered = DumpDb(&db);
    bool matched = false;
    for (size_t i = crashed.durable_ops; i < prefix_states.size(); ++i) {
      if (prefix_states[i] == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "recovered state (" << recovered.size()
        << " keys) matches no workload prefix >= durable frontier "
        << crashed.durable_ops;

    // Recovery leaves a fully functional Db behind.
    const Key probe = 7'777;
    ASSERT_TRUE(db.Put(probe, MakePayload(dbopts.options, probe)).ok());
    ASSERT_TRUE(db.SyncWal().ok());
    auto v = db.Get(probe);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, probe));
  }
}

TEST(CrashSweepTest, SyncAlways) { SweepMode("always", WalSyncMode::kAlways); }

TEST(CrashSweepTest, SyncEveryN) { SweepMode("everyn", WalSyncMode::kEveryN); }

TEST(CrashSweepTest, SyncNone) { SweepMode("none", WalSyncMode::kNone); }

/// Crash-point sweep with background *compaction* in flight: commits seal
/// full memtables onto the queue and the compaction thread runs the
/// flushes and merges, so the injector's durable steps interleave writer
/// WAL/checkpoint steps with worker block writes nondeterministically —
/// the kill lands mid-flush or mid-merge on many of the sweep's points.
/// The durable frontier is still computed exactly as in SweepMode (WAL
/// syncs and inline checkpoints happen only on the writer thread), and
/// recovery must additionally leave zero leaked blocks: the device's live
/// set is exactly the recovered leaves.
void SweepBackgroundCompaction(const char* tag, WalSyncMode mode,
                               size_t workers = 1) {
  FaultInjector injector;
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = mode;
  dbopts.wal_sync_every_n = 7;
  dbopts.checkpoint_wal_bytes = 1000;  // Auto-checkpoints mid-workload.
  // Inline checkpoints keep the durable frontier a pure function of the
  // writer's own progress; only the compaction workers interleave.
  dbopts.background_checkpoint = false;
  dbopts.background_compaction = true;
  dbopts.compaction_workers = workers;
  // A shallow queue so the sweep also crosses throttled and stalled
  // commits, not just quiescent-worker windows.
  dbopts.compaction_queue_depth = 2;
  dbopts.compaction_slowdown_depth = 1;
  dbopts.fault_injector = &injector;

  // Verification reopens without the injector and without the worker
  // (tree()/DumpDb inspect the tree without the Db's locks).
  DbOptions verify_opts = dbopts;
  verify_opts.background_compaction = false;
  verify_opts.fault_injector = nullptr;

  const std::vector<Op> ops = MakeWorkload();
  std::vector<ModelState> prefix_states(1);
  for (const Op& op : ops) {
    ModelState next = prefix_states.back();
    ApplyToModel(&next, op, dbopts.options);
    prefix_states.push_back(std::move(next));
  }

  // Pass 1: size the sweep from a disarmed run. The workers' steps
  // interleave nondeterministically, so the count varies run to run; pad
  // the range so late crash points stay covered (more with a pool — its
  // interleavings spread the step clock wider).
  const std::string count_dir = WipedDir(std::string(tag) + "_count");
  const RunResult full = RunWorkload(dbopts, count_dir, &injector);
  ASSERT_GT(full.steps, 0u);
  const uint64_t sweep_steps = full.steps + (workers > 1 ? 16 : 8);

  for (uint64_t crash_at = 0; crash_at < sweep_steps; ++crash_at) {
    SCOPED_TRACE(std::string(tag) + " crash at step " +
                 std::to_string(crash_at));
    const std::string dir =
        WipedDir(std::string(tag) + "_k" + std::to_string(crash_at));
    injector.Arm(crash_at);
    const RunResult crashed = RunWorkload(dbopts, dir, &injector);
    injector.Disarm();

    auto db_or = Db::Open(verify_opts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());

    // Zero leaked blocks: every live device block is referenced by
    // exactly one recovered leaf. A flush or merge killed mid-batch must
    // not leave orphaned allocations behind after recovery.
    uint64_t leaves = 0;
    for (size_t i = 1; i < db.tree()->num_levels(); ++i) {
      leaves += db.tree()->level(i).num_leaves();
    }
    EXPECT_EQ(db.tree()->device()->live_blocks(), leaves)
        << "device live blocks != recovered leaves (leaked blocks)";

    // The recovered contents must equal some prefix state at or past the
    // durable frontier.
    const ModelState recovered = DumpDb(&db);
    bool matched = false;
    for (size_t i = crashed.durable_ops; i < prefix_states.size(); ++i) {
      if (prefix_states[i] == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "recovered state (" << recovered.size()
        << " keys) matches no workload prefix >= durable frontier "
        << crashed.durable_ops;

    // Recovery leaves a fully functional Db behind.
    const Key probe = 7'777;
    ASSERT_TRUE(db.Put(probe, MakePayload(dbopts.options, probe)).ok());
    ASSERT_TRUE(db.SyncWal().ok());
    auto v = db.Get(probe);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, probe));
  }
}

TEST(CrashSweepTest, BackgroundCompactionSyncAlways) {
  SweepBackgroundCompaction("bgc_always", WalSyncMode::kAlways);
}

TEST(CrashSweepTest, BackgroundCompactionSyncEveryN) {
  SweepBackgroundCompaction("bgc_everyn", WalSyncMode::kEveryN);
}

TEST(CrashSweepTest, BackgroundCompactionSyncNone) {
  SweepBackgroundCompaction("bgc_none", WalSyncMode::kNone);
}

TEST(CrashSweepTest, ParallelCompactionWorkersSyncEveryN) {
  // Two workers: the kill can land inside two concurrent steps — a flush
  // absorbing under mem_mu_ while a merge writes blocks under tree_mu_.
  // The guarantees are unchanged: recovery lands on a durable-frontier
  // prefix and the device leaks zero blocks.
  SweepBackgroundCompaction("bgc_par", WalSyncMode::kEveryN, /*workers=*/2);
}

// A double-crash must not weaken the guarantee: crash during the
// workload, recover, then crash again during *recovery's* first
// checkpoint and recover once more.
TEST(CrashSweepTest, CrashDuringRecoveryCheckpoint) {
  FaultInjector injector;
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.checkpoint_wal_bytes = 0;  // Manual checkpoints only (no thread).
  dbopts.background_checkpoint = false;
  dbopts.fault_injector = &injector;

  const std::string dir = WipedDir("double");
  ModelState model;
  {
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok());
    for (const Op& op : MakeWorkload()) {
      if (op.is_delete) {
        ASSERT_TRUE(db_or.value()->Delete(op.key).ok());
      } else {
        ASSERT_TRUE(
            db_or.value()
                ->Put(op.key, MakePayload(dbopts.options, op.payload_seed))
                .ok());
      }
      ApplyToModel(&model, op, dbopts.options);
    }
  }
  // Crash the post-recovery checkpoint at each of its steps.
  for (uint64_t k = 0; k < 8; ++k) {
    SCOPED_TRACE("checkpoint crash at step " + std::to_string(k));
    {
      auto db_or = Db::Open(dbopts, dir);
      ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
      injector.Arm(k);
      (void)db_or.value()->Checkpoint();  // May or may not survive.
      injector.Disarm();
    }
    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    ASSERT_TRUE(db_or.value()->tree()->CheckInvariants(true).ok());
    EXPECT_EQ(DumpDb(db_or.value().get()), model);
  }
}

// Crash-point sweep with the checkpoint running on the *background*
// maintenance thread. Steps interleave nondeterministically between the
// writer and the checkpointer, so unlike SweepMode this cannot match the
// recovered state against an exact durable-step frontier; instead it uses
// the strongest mode (kAlways: an op acked => its entry fsynced) where
// "every acknowledged op survives" is exact regardless of interleaving,
// and sweeps the kill point over a generous step range.
TEST(CrashSweepTest, CrashDuringBackgroundCheckpoint) {
  FaultInjector injector;
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = WalSyncMode::kAlways;
  dbopts.checkpoint_wal_bytes = 1000;  // ~2 background checkpoints/run.
  dbopts.background_checkpoint = true;
  dbopts.fault_injector = &injector;

  // Recovery verification must not race a fresh maintenance thread
  // (tree()/DumpDb inspect the tree without the Db's locks).
  DbOptions verify_opts = dbopts;
  verify_opts.background_checkpoint = false;
  verify_opts.fault_injector = nullptr;

  const std::vector<Op> ops = MakeWorkload();
  std::vector<ModelState> prefix_states(1);
  for (const Op& op : ops) {
    ModelState next = prefix_states.back();
    ApplyToModel(&next, op, dbopts.options);
    prefix_states.push_back(std::move(next));
  }

  // Runs the workload; returns how many ops were acknowledged (in
  // kAlways mode: durable). The Db is closed/destroyed before return, so
  // the maintenance thread is joined and the injector is quiescent.
  auto run = [&](const std::string& dir) -> size_t {
    auto db_or = Db::Open(dbopts, dir);
    if (!db_or.ok()) {
      ADD_FAILURE() << "fresh open failed: " << db_or.status().ToString();
      return 0;
    }
    Db& db = *db_or.value();
    size_t acked = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      Status st = ops[i].is_delete
                      ? db.Delete(ops[i].key)
                      : db.Put(ops[i].key, MakePayload(dbopts.options,
                                                       ops[i].payload_seed));
      if (!st.ok()) break;  // The process died mid-op.
      ++acked;
      // A manual checkpoint mid-workload serializes with any in-flight
      // background one — both orders are exercised across the sweep.
      if (static_cast<int>(i) + 1 == kCheckpointAfterOp &&
          !db.Checkpoint().ok()) {
        break;
      }
    }
    return acked;
  };

  // Pass 1: count the steps of one (disarmed) run to size the sweep. The
  // exact count varies with thread interleaving; pad the range so late
  // crash points (including the destructor's final sync) are covered.
  const std::string count_dir = WipedDir("bg_count");
  ASSERT_EQ(run(count_dir), ops.size());
  const uint64_t sweep_steps = injector.steps() + 8;

  for (uint64_t crash_at = 0; crash_at < sweep_steps; ++crash_at) {
    SCOPED_TRACE("bg crash at step " + std::to_string(crash_at));
    const std::string dir = WipedDir("bg_k" + std::to_string(crash_at));
    injector.Arm(crash_at);
    const size_t acked = run(dir);
    injector.Disarm();

    auto db_or = Db::Open(verify_opts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());

    const ModelState recovered = DumpDb(&db);
    bool matched = false;
    for (size_t i = acked; i < prefix_states.size(); ++i) {
      if (prefix_states[i] == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "recovered state (" << recovered.size()
                         << " keys) matches no workload prefix >= acked "
                         << "frontier " << acked;

    // Recovery leaves a fully functional Db behind.
    const Key probe = 7'777;
    ASSERT_TRUE(db.Put(probe, MakePayload(dbopts.options, probe)).ok());
    ASSERT_TRUE(db.SyncWal().ok());
    auto v = db.Get(probe);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, probe));
  }
}

// Crash-point sweep with a background scrub AND a background checkpoint
// concurrently in flight when the crash hits. Scrub reads deliberately
// never tick the injector (only durable steps do), so the sweep still
// enumerates the same durability protocol — but every kill now lands
// while the maintenance thread may be mid-scrub, and recovery must
// additionally leave the checksum sidecar (blocks.crc) consistent with
// every manifest-live block of blocks.dev, which the post-recovery
// Scrub() verifies bit-for-bit.
TEST(CrashSweepTest, CrashWithScrubAndCheckpointInFlight) {
  FaultInjector injector;
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = WalSyncMode::kAlways;  // Acked == durable.
  dbopts.checkpoint_wal_bytes = 1000;  // ~2 background checkpoints/run.
  dbopts.background_checkpoint = true;
  dbopts.scrub_interval_ms = 1;  // Scrub whenever maintenance is idle.
  dbopts.scrub_batch_blocks = 8;
  dbopts.fault_injector = &injector;

  // Verification reopens without the injector and without background
  // maintenance (tree()/DumpDb inspect the tree without the Db's locks).
  DbOptions verify_opts = dbopts;
  verify_opts.background_checkpoint = false;
  verify_opts.scrub_interval_ms = 0;
  verify_opts.fault_injector = nullptr;

  const std::vector<Op> ops = MakeWorkload();
  std::vector<ModelState> prefix_states(1);
  for (const Op& op : ops) {
    ModelState next = prefix_states.back();
    ApplyToModel(&next, op, dbopts.options);
    prefix_states.push_back(std::move(next));
  }

  // Runs the workload with a foreground Scrub() overlapping the mid-run
  // checkpoint; returns acknowledged (== durable) ops.
  auto run = [&](const std::string& dir) -> size_t {
    auto db_or = Db::Open(dbopts, dir);
    if (!db_or.ok()) {
      ADD_FAILURE() << "fresh open failed: " << db_or.status().ToString();
      return 0;
    }
    Db& db = *db_or.value();
    size_t acked = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      Status st = ops[i].is_delete
                      ? db.Delete(ops[i].key)
                      : db.Put(ops[i].key, MakePayload(dbopts.options,
                                                       ops[i].payload_seed));
      if (!st.ok()) break;  // The process died mid-op.
      ++acked;
      if (static_cast<int>(i) + 1 == kCheckpointAfterOp) {
        // Foreground scrub concurrent with the checkpoint the WAL size
        // is about to trigger on the maintenance thread.
        (void)db.Scrub();  // May fail only once the injector tripped.
        if (!db.Checkpoint().ok()) break;
      }
    }
    return acked;
  };

  // Pass 1: size the sweep from a disarmed run (step counts vary with
  // thread interleaving; pad for late crash points).
  const std::string count_dir = WipedDir("scrub_count");
  ASSERT_EQ(run(count_dir), ops.size());
  const uint64_t sweep_steps = injector.steps() + 8;

  for (uint64_t crash_at = 0; crash_at < sweep_steps; ++crash_at) {
    SCOPED_TRACE("scrub crash at step " + std::to_string(crash_at));
    const std::string dir = WipedDir("scrub_k" + std::to_string(crash_at));
    injector.Arm(crash_at);
    const size_t acked = run(dir);
    injector.Disarm();

    auto db_or = Db::Open(verify_opts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());

    // The sidecar survived the crash consistent with the data file: every
    // manifest-live block's stored bytes match its out-of-band checksum.
    // (Torn blocks past the durable frontier are not live and are free to
    // mismatch until their slot is rewritten.)
    Status scrub = db.Scrub();
    ASSERT_TRUE(scrub.ok()) << scrub.ToString();
    EXPECT_TRUE(db.Stats().quarantined_blocks.empty());

    const ModelState recovered = DumpDb(&db);
    bool matched = false;
    for (size_t i = acked; i < prefix_states.size(); ++i) {
      if (prefix_states[i] == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "recovered state (" << recovered.size()
                         << " keys) matches no workload prefix >= acked "
                         << "frontier " << acked;

    // Recovery leaves a fully functional Db behind.
    const Key probe = 7'777;
    ASSERT_TRUE(db.Put(probe, MakePayload(dbopts.options, probe)).ok());
    ASSERT_TRUE(db.SyncWal().ok());
    auto v = db.Get(probe);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, probe));
  }
}

// Crash-point sweep over a 2-shard facade with both per-shard compaction
// workers live. The shards share one injector, so the kill can land in
// either shard's WAL append, block flush, checkpoint rename, or the
// other shard's anything — and recovery must hold per shard:
//
//   * each shard's recovered contents equal some prefix of that shard's
//     own op subsequence (ops hash-routed to it, in submission order) at
//     or past its durable frontier — in kAlways mode, every op the
//     facade acknowledged;
//   * neither shard's device file leaks blocks (live set == leaves);
//   * one shard crashing mid-flush never corrupts the other.
TEST(CrashSweepTest, ShardedKillEveryStepRecoversPerShardPrefixes) {
  constexpr size_t kShards = 2;
  FaultInjector injector;
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.wal_sync_mode = WalSyncMode::kAlways;  // Acked == durable.
  dbopts.checkpoint_wal_bytes = 1000;
  dbopts.background_checkpoint = false;
  dbopts.background_compaction = true;
  dbopts.compaction_queue_depth = 2;
  dbopts.compaction_slowdown_depth = 1;
  dbopts.shards = kShards;
  dbopts.fault_injector = &injector;

  DbOptions verify_opts = dbopts;
  verify_opts.background_compaction = false;
  verify_opts.fault_injector = nullptr;

  // Per-shard op subsequences and their prefix states.
  const std::vector<Op> ops = MakeWorkload();
  std::vector<std::vector<Op>> shard_ops(kShards);
  for (const Op& op : ops) {
    shard_ops[Db::ShardOfKey(op.key, kShards)].push_back(op);
  }
  std::vector<std::vector<ModelState>> shard_prefixes(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    ASSERT_FALSE(shard_ops[s].empty()) << "workload misses shard " << s;
    shard_prefixes[s].emplace_back();
    for (const Op& op : shard_ops[s]) {
      ModelState next = shard_prefixes[s].back();
      ApplyToModel(&next, op, dbopts.options);
      shard_prefixes[s].push_back(std::move(next));
    }
  }

  auto wiped = [](const std::string& tag) {
    const std::string dir = ::testing::TempDir() + "/sweep_shard_" + tag +
                            "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
  };

  // Runs the workload; returns per-shard acked (== durable) op counts.
  auto run = [&](const std::string& dir) -> std::vector<size_t> {
    std::vector<size_t> acked(kShards, 0);
    auto db_or = Db::Open(dbopts, dir);
    if (!db_or.ok()) {
      ADD_FAILURE() << "fresh open failed: " << db_or.status().ToString();
      return acked;
    }
    Db& db = *db_or.value();
    for (size_t i = 0; i < ops.size(); ++i) {
      Status st = ops[i].is_delete
                      ? db.Delete(ops[i].key)
                      : db.Put(ops[i].key, MakePayload(dbopts.options,
                                                       ops[i].payload_seed));
      if (!st.ok()) break;  // The process died mid-op.
      ++acked[Db::ShardOfKey(ops[i].key, kShards)];
      if (static_cast<int>(i) + 1 == kCheckpointAfterOp &&
          !db.Checkpoint().ok()) {
        break;
      }
    }
    return acked;
  };

  // Pass 1: size the sweep from a disarmed run (two workers interleave
  // nondeterministically; pad for late crash points).
  const std::vector<size_t> full = run(wiped("count"));
  for (size_t s = 0; s < kShards; ++s) {
    ASSERT_EQ(full[s], shard_ops[s].size());
  }
  const uint64_t sweep_steps = injector.steps() + 8;

  for (uint64_t crash_at = 0; crash_at < sweep_steps; ++crash_at) {
    SCOPED_TRACE("sharded crash at step " + std::to_string(crash_at));
    const std::string dir = wiped("k" + std::to_string(crash_at));
    injector.Arm(crash_at);
    const std::vector<size_t> acked = run(dir);
    injector.Disarm();

    auto db_or = Db::Open(verify_opts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    ASSERT_EQ(db.shard_count(), kShards);

    for (size_t s = 0; s < kShards; ++s) {
      SCOPED_TRACE("shard " + std::to_string(s));
      Db* shard = db.shard(s);
      ASSERT_TRUE(shard->tree()->CheckInvariants(true).ok());

      // Zero leaked blocks in this shard's device file.
      uint64_t leaves = 0;
      for (size_t i = 1; i < shard->tree()->num_levels(); ++i) {
        leaves += shard->tree()->level(i).num_leaves();
      }
      EXPECT_EQ(shard->tree()->device()->live_blocks(), leaves)
          << "shard device leaks blocks";

      // This shard's contents are a prefix of its own subsequence, at or
      // past its durable frontier.
      const ModelState recovered = DumpDb(shard);
      bool matched = false;
      for (size_t i = acked[s]; i < shard_prefixes[s].size(); ++i) {
        if (shard_prefixes[s][i] == recovered) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched)
          << "recovered state (" << recovered.size()
          << " keys) matches no shard-op prefix >= durable frontier "
          << acked[s];
    }

    // The whole facade stays writable after recovery.
    const Key probe = 7'777;
    ASSERT_TRUE(db.Put(probe, MakePayload(dbopts.options, probe)).ok());
    ASSERT_TRUE(db.SyncWal().ok());
    auto v = db.Get(probe);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, probe));
  }
}

// Crash-point sweep with key–value separation on (DESIGN.md §11). Every
// durable step now includes the vlog appends/syncs and the GC's
// publish-then-unlink, and the mid-run CompactVlog() puts pointer
// rewrites, the tail advance, and the crash-before-vlog-unlink window
// inside the sweep. Per crash point, recovery must additionally hold:
//
//   * every surviving tree pointer resolves to its exact value (the
//     verification Scan fails on any dangling or corrupt pointer);
//   * no leaked dead range: the segments on disk are exactly the
//     manifest's [tail, head] window — a below-tail file that recovery
//     failed to delete would show up as an extra;
//   * a post-recovery CompactVlog() pass succeeds and loses nothing.
constexpr int kVlogGcAfterOp = 60;

/// RunWorkload with vlog GC in the middle. The durable frontier counts
/// *operations* (not WAL entries — GC rewrites append entries of their
/// own), taken conservatively: ops acked before the last observed
/// sync/checkpoint are certainly durable.
RunResult RunVlogWorkload(const DbOptions& dbopts, const std::string& dir,
                          FaultInjector* injector) {
  RunResult result;
  auto db_or = Db::Open(dbopts, dir);
  if (!db_or.ok()) {
    ADD_FAILURE() << "fresh open failed: " << db_or.status().ToString();
    return result;
  }
  Db& db = *db_or.value();
  const std::vector<Op> ops = MakeWorkload();
  for (size_t i = 0; i < ops.size(); ++i) {
    const uint64_t covered_before =
        db.Stats().wal_syncs + db.Stats().checkpoints;
    Status st = ops[i].is_delete
                    ? db.Delete(ops[i].key)
                    : db.Put(ops[i].key, MakePayload(dbopts.options,
                                                     ops[i].payload_seed));
    if (st.ok() && static_cast<int>(i) + 1 == kCheckpointAfterOp) {
      st = db.Checkpoint();
    }
    if (st.ok() && static_cast<int>(i) + 1 == kVlogGcAfterOp) {
      st = db.CompactVlog();  // Rewrites + tail publish + segment unlink.
    }
    const DbStats stats = db.Stats();
    if (stats.wal_syncs + stats.checkpoints > covered_before) {
      result.durable_ops = i + (st.ok() ? 1 : 0);
    }
    if (!st.ok()) break;  // The process died mid-op.
  }
  db_or.value().reset();
  result.steps = injector->steps();
  return result;
}

void SweepVlogMode(const char* tag, WalSyncMode mode) {
  FaultInjector injector;
  DbOptions dbopts;
  dbopts.options = TinyOptions();
  dbopts.options.vlog_value_threshold = 17;  // Every 20-byte payload.
  dbopts.vlog_segment_bytes = 6 * (vlog::kEntryHeaderSize + 20);  // Rolls.
  dbopts.wal_sync_mode = mode;
  dbopts.wal_sync_every_n = 7;
  dbopts.checkpoint_wal_bytes = 1000;  // Auto-checkpoints mid-workload.
  dbopts.background_checkpoint = false;
  dbopts.fault_injector = &injector;

  // Pass 1: count the crash points.
  const std::string count_dir = WipedDir(std::string(tag) + "_count");
  const RunResult full = RunVlogWorkload(dbopts, count_dir, &injector);
  ASSERT_GT(full.steps, 0u);

  const std::vector<Op> ops = MakeWorkload();
  std::vector<ModelState> prefix_states(1);
  for (const Op& op : ops) {
    ModelState next = prefix_states.back();
    ApplyToModel(&next, op, dbopts.options);
    prefix_states.push_back(std::move(next));
  }

  for (uint64_t crash_at = 0; crash_at < full.steps; ++crash_at) {
    SCOPED_TRACE(std::string(tag) + " crash at step " +
                 std::to_string(crash_at));
    const std::string dir =
        WipedDir(std::string(tag) + "_k" + std::to_string(crash_at));
    injector.Arm(crash_at);
    const RunResult crashed = RunVlogWorkload(dbopts, dir, &injector);
    injector.Disarm();

    auto db_or = Db::Open(dbopts, dir);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Db& db = *db_or.value();
    ASSERT_TRUE(db.tree()->CheckInvariants(true).ok());

    // Zero lost live values: DumpDb resolves every pointer through the
    // vlog, so a single dangling or corrupt entry fails the Scan.
    const ModelState recovered = DumpDb(&db);
    bool matched = false;
    for (size_t i = crashed.durable_ops; i < prefix_states.size(); ++i) {
      if (prefix_states[i] == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "recovered state (" << recovered.size()
        << " keys) matches no workload prefix >= durable frontier "
        << crashed.durable_ops;

    // Zero leaked dead ranges: disk holds exactly the manifest's
    // [tail, head] segment window (recovery re-deletes below-tail files
    // left by a crash between manifest publish and unlink).
    EXPECT_EQ(Db::ListVlogSegments(dir).size(), db.Stats().vlog_segments)
        << "vlog segments on disk leak past the [tail, head] window";

    // The recovered Db keeps working, and a fresh GC pass loses nothing.
    const Key probe = 7'777;
    ASSERT_TRUE(db.Put(probe, MakePayload(dbopts.options, probe)).ok());
    ASSERT_TRUE(db.SyncWal().ok());
    ASSERT_TRUE(db.CompactVlog().ok());
    EXPECT_EQ(Db::ListVlogSegments(dir).size(), db.Stats().vlog_segments);
    ModelState after_gc = DumpDb(&db);
    after_gc.erase(probe);
    EXPECT_EQ(after_gc, recovered) << "post-recovery GC changed contents";
    auto v = db.Get(probe);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), MakePayload(dbopts.options, probe));
  }
}

TEST(CrashSweepTest, VlogSyncAlways) {
  SweepVlogMode("vlog_always", WalSyncMode::kAlways);
}

TEST(CrashSweepTest, VlogSyncEveryN) {
  SweepVlogMode("vlog_everyn", WalSyncMode::kEveryN);
}

TEST(CrashSweepTest, VlogSyncNone) {
  SweepVlogMode("vlog_none", WalSyncMode::kNone);
}

}  // namespace
}  // namespace lsmssd
