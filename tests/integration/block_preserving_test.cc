// Block preservation end-to-end: the "-P" variants must write strictly
// more blocks when records are large (Figure 9's mechanism), and
// preservation must never change query results.

#include <gtest/gtest.h>

#include "src/workload/uniform_workload.h"
#include "tests/test_util.h"

namespace lsmssd {
namespace {

using testing::TinyOptions;
using testing::TreeFixture;

/// Tiny config with one record per block: every merge can preserve every
/// block (the paper's 4000-byte payload extreme).
Options OneRecordPerBlockOptions() {
  Options options = TinyOptions();
  options.block_size = 256;
  options.payload_size = 200;  // 1 + 4 + 200 = 205 > (256-4)/2: B = 1.
  return options;
}

struct RunResult {
  uint64_t writes = 0;
  uint64_t preserved = 0;
  std::vector<std::pair<Key, std::string>> content;
};

RunResult RunChurn(const Options& options, PolicyKind kind, uint64_t seed) {
  TreeFixture fx(options, kind);
  UniformWorkload::Params wp;
  wp.key_max = 10'000'000;
  wp.seed = seed;
  UniformWorkload workload(wp);
  WorkloadDriver driver(fx.tree.get(), &workload);
  LSMSSD_CHECK(driver.GrowTo(500 * options.record_size()).ok());
  workload.set_insert_ratio(0.5);
  LSMSSD_CHECK(driver.Run(8000).ok());
  LSMSSD_CHECK(fx.tree->CheckInvariants(true).ok());

  RunResult result;
  result.writes = fx.tree->device()->stats().block_writes();
  for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
    result.preserved += fx.tree->stats().blocks_preserved_into[i];
  }
  LSMSSD_CHECK(fx.tree->Scan(0, wp.key_max, &result.content).ok());
  return result;
}

TEST(BlockPreservingTest, OneRecordPerBlockPreservesAlmostEverything) {
  const Options options = OneRecordPerBlockOptions();
  ASSERT_EQ(options.records_per_block(), 1u);

  Options no_preserve = options;
  no_preserve.preserve_blocks = false;

  const RunResult with = RunChurn(options, PolicyKind::kChooseBest, 7);
  const RunResult without = RunChurn(no_preserve, PolicyKind::kChooseBest, 7);

  EXPECT_GT(with.preserved, 0u);
  EXPECT_EQ(without.preserved, 0u);
  // With B = 1 all blocks can be squeezed between neighbours: preservation
  // must cut writes dramatically (paper: all policies converge at the
  // 4000-byte payload extreme).
  EXPECT_LT(with.writes, without.writes / 2)
      << "with=" << with.writes << " without=" << without.writes;
  // Same content either way.
  EXPECT_EQ(with.content, without.content);
}

TEST(BlockPreservingTest, PreservationNeverChangesResults) {
  for (PolicyKind kind : {PolicyKind::kFull, PolicyKind::kRr,
                          PolicyKind::kChooseBest, PolicyKind::kTestMixed}) {
    Options preserve = TinyOptions();
    Options no_preserve = TinyOptions();
    no_preserve.preserve_blocks = false;
    const RunResult with = RunChurn(preserve, kind, 11);
    const RunResult without = RunChurn(no_preserve, kind, 11);
    EXPECT_EQ(with.content, without.content) << PolicyKindName(kind);
    EXPECT_LE(with.writes, without.writes * 1.02) << PolicyKindName(kind);
  }
}

TEST(BlockPreservingTest, SmallRecordsRarelyPreserve) {
  // Mirrors the paper's Figure 6a observation: with many records per
  // block, preservation opportunities under Uniform are rare, so "-P"
  // variants perform nearly identically.
  Options options = TinyOptions();  // B = 10.
  Options no_preserve = options;
  no_preserve.preserve_blocks = false;
  const RunResult with = RunChurn(options, PolicyKind::kChooseBest, 13);
  const RunResult without =
      RunChurn(no_preserve, PolicyKind::kChooseBest, 13);
  const double ratio = static_cast<double>(with.writes) /
                       static_cast<double>(without.writes);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LE(ratio, 1.05);
}

TEST(BlockPreservingTest, PreservedCountsReportedInStats) {
  const Options options = OneRecordPerBlockOptions();
  TreeFixture fx(options, PolicyKind::kChooseBest);
  for (Key k = 0; k < 300; ++k) {
    ASSERT_TRUE(fx.Put(k * 101 + 7).ok());
  }
  uint64_t preserved = 0;
  for (size_t i = 1; i < fx.tree->num_levels(); ++i) {
    preserved += fx.tree->stats().blocks_preserved_into[i];
  }
  EXPECT_GT(preserved, 0u);
}

}  // namespace
}  // namespace lsmssd
