#ifndef LSMSSD_LSM_LSM_TREE_H_
#define LSMSSD_LSM_LSM_TREE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/lsm/iterator.h"
#include "src/lsm/level.h"
#include "src/lsm/memtable.h"
#include "src/lsm/stats.h"
#include "src/policy/merge_policy.h"
#include "src/storage/block_device.h"
#include "src/storage/lru_cache.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

struct Manifest;

/// The LSM tree of the paper: a memory-resident L0 plus on-SSD levels
/// L1..L_{h-1} with geometrically increasing capacities (K_i = K0 *
/// Gamma^i), relaxed level storage, and pluggable merge policies
/// (Section II). Modifications enter L0; overflowing levels are merged
/// down by the configured policy; reads walk the levels top-down.
///
/// Typical usage:
///
///   Options options;
///   MemBlockDevice device(options.block_size);
///   auto tree = LsmTree::Open(options, &device,
///                             CreatePolicy(PolicyKind::kChooseBest));
///   tree.value()->Put(42, std::string(options.payload_size, 'x'));
///
/// Thread-compatible, not internally locked: the paper scopes concurrency
/// control out (Section II), and the tree keeps the paper's synchronous
/// merge structure. Concurrent reads (Get/Scan/NewIterator) are safe
/// against each other; any Put/Delete/merge must be exclusive. lsmssd::Db
/// layers exactly that reader/writer locking on top (see DESIGN.md,
/// "Threading model"); research code driving a bare LsmTree from one
/// thread needs no locks at all.
class LsmTree {
 public:
  /// Validates `options` (which must match `device->block_size()`), and
  /// builds an empty tree. `device` must outlive the tree.
  static StatusOr<std::unique_ptr<LsmTree>> Open(
      const Options& options, BlockDevice* device,
      std::unique_ptr<MergePolicy> policy);

  /// Reconstructs a tree from a Manifest snapshot (src/lsm/manifest.h)
  /// whose data blocks are already present on `device`. Bloom filters are
  /// rebuilt from the data blocks when enabled; leaf metadata is verified
  /// against block contents in that case.
  static StatusOr<std::unique_ptr<LsmTree>> Restore(
      const Manifest& manifest, BlockDevice* device,
      std::unique_ptr<MergePolicy> policy);

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  // ---- Modifications (may trigger merges) ---------------------------

  /// Inserts or blind-updates `key`. `payload` must be exactly
  /// Options::payload_size bytes.
  Status Put(Key key, std::string_view payload);

  /// Deletes `key` (logs a tombstone; the key need not exist).
  Status Delete(Key key);

  // ---- Reads ---------------------------------------------------------

  /// Returns the payload for `key`, or NotFound.
  StatusOr<std::string> Get(Key key);

  /// Collects all live (non-deleted) records with keys in [lo, hi], in key
  /// order.
  Status Scan(Key lo, Key hi,
              std::vector<std::pair<Key, std::string>>* out);

  /// Streaming forward iterator over all live records (see iterator.h).
  /// The tree must not be modified while the iterator is in use.
  std::unique_ptr<Iterator> NewIterator() const;

  // ---- Introspection (used by policies, tests, benches) --------------

  /// Total number of levels h, *including* the memory-resident L0.
  size_t num_levels() const { return 1 + levels_.size(); }
  const Memtable& memtable() const { return memtable_; }
  /// On-SSD level L_i, 1 <= i < num_levels().
  const Level& level(size_t i) const;
  Level* mutable_level(size_t i);
  const Options& options() const { return options_; }
  /// The device all tree I/O goes through. With Options::cache_blocks > 0
  /// this is the tree-owned CachedBlockDevice wrapping the device passed
  /// to Open/Restore; its IoStats mirror the base device's write/alloc/
  /// free counts, so block-write accounting is unchanged by caching.
  BlockDevice* device() { return device_; }
  /// The tree-owned buffer cache, or nullptr when cache_blocks == 0.
  CachedBlockDevice* cache_device() { return cache_device_.get(); }
  const LsmStats& stats() const { return stats_; }
  MergePolicy* policy() { return policy_.get(); }
  /// Swaps the merge policy (e.g., while learning Mixed parameters).
  void set_policy(std::unique_ptr<MergePolicy> policy);

  /// K_i in blocks.
  uint64_t LevelCapacityBlocks(size_t i) const {
    return options_.LevelCapacityBlocks(i);
  }
  bool IsBottomLevel(size_t i) const { return i + 1 == num_levels(); }

  /// Records across all levels (including tombstones).
  uint64_t TotalRecords() const;
  /// Live-record payload bytes, approximated as records * record_size.
  uint64_t ApproximateDataBytes() const;

  /// Verifies structural invariants of every level (plus, with `deep`,
  /// block contents against metadata). Test/debug helper.
  Status CheckInvariants(bool deep = false) const;

 private:
  LsmTree(const Options& options, BlockDevice* device,
          std::unique_ptr<MergePolicy> policy);

  bool LevelOverflowing(size_t i) const;
  /// Runs merges until no level overflows (top-down cascade).
  Status MaybeMerge();
  /// One merge out of `source_level`, as selected by the policy.
  Status ExecuteMerge(size_t source_level);
  void AddLevel();

  Options options_;
  /// Owned buffer cache around the caller's device (null when disabled).
  std::unique_ptr<CachedBlockDevice> cache_device_;
  /// cache_device_.get() when caching is on, else the caller's device.
  BlockDevice* device_;
  std::unique_ptr<MergePolicy> policy_;
  Memtable memtable_;
  std::vector<std::unique_ptr<Level>> levels_;  // levels_[0] is L1.
  LsmStats stats_;
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_LSM_TREE_H_
