#ifndef LSMSSD_LSM_LSM_TREE_H_
#define LSMSSD_LSM_LSM_TREE_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/lsm/iterator.h"
#include "src/lsm/level.h"
#include "src/lsm/memtable.h"
#include "src/lsm/stats.h"
#include "src/policy/merge_policy.h"
#include "src/storage/block_device.h"
#include "src/storage/lru_cache.h"
#include "src/util/rate_limiter.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

struct Manifest;

/// The LSM tree of the paper: a memory-resident L0 plus on-SSD levels
/// L1..L_{h-1} with geometrically increasing capacities (K_i = K0 *
/// Gamma^i), relaxed level storage, and pluggable merge policies
/// (Section II). Modifications enter L0; overflowing levels are merged
/// down by the configured policy; reads walk the levels top-down.
///
/// Typical usage:
///
///   Options options;
///   MemBlockDevice device(options.block_size);
///   auto tree = LsmTree::Open(options, &device,
///                             CreatePolicy(PolicyKind::kChooseBest));
///   tree.value()->Put(42, std::string(options.payload_size, 'x'));
///
/// Thread-compatible, not internally locked: the paper scopes concurrency
/// control out (Section II), and the tree keeps the paper's synchronous
/// merge structure. Concurrent reads (Get/Scan/NewIterator) are safe
/// against each other; any Put/Delete/merge must be exclusive. lsmssd::Db
/// layers exactly that reader/writer locking on top (see DESIGN.md,
/// "Threading model"); research code driving a bare LsmTree from one
/// thread needs no locks at all.
class LsmTree {
 public:
  /// Validates `options` (which must match `device->block_size()`), and
  /// builds an empty tree. `device` must outlive the tree.
  static StatusOr<std::unique_ptr<LsmTree>> Open(
      const Options& options, BlockDevice* device,
      std::unique_ptr<MergePolicy> policy);

  /// Reconstructs a tree from a Manifest snapshot (src/lsm/manifest.h)
  /// whose data blocks are already present on `device`. Bloom filters are
  /// rebuilt from the data blocks when enabled; leaf metadata is verified
  /// against block contents in that case.
  static StatusOr<std::unique_ptr<LsmTree>> Restore(
      const Manifest& manifest, BlockDevice* device,
      std::unique_ptr<MergePolicy> policy);

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  // ---- Modifications (may trigger merges) ---------------------------

  /// Inserts or blind-updates `key`. `payload` must be exactly
  /// Options::payload_size bytes.
  Status Put(Key key, std::string_view payload);

  /// Deletes `key` (logs a tombstone; the key need not exist).
  Status Delete(Key key);

  // ---- Background-compaction write path ------------------------------
  //
  // The decoupled write path used by lsmssd::Db's background compaction:
  // modifications land in the *active* memtable only (never merging
  // inline); when it fills, the caller seals it onto a queue of immutable
  // memtables and a compaction worker drains the queue one bounded step
  // at a time. The worker may run concurrently with PutNoMerge/
  // DeleteNoMerge as long as the caller serializes them against the
  // active memtable and the sealed list (Db's memtable lock) and gives
  // BackgroundCompactStep exclusive access to the levels (Db's tree
  // lock); see DESIGN.md, "Compaction scheduling & write stalls".

  /// Put/Delete without the inline MaybeMerge cascade. The active
  /// memtable may exceed its capacity transiently; the caller is expected
  /// to seal it.
  Status PutNoMerge(Key key, std::string_view payload);
  Status DeleteNoMerge(Key key);

  /// True once the active memtable holds >= K0 * B records (the same
  /// overflow test the inline path uses).
  bool MemtableAtCapacity() const;

  /// Moves the active memtable onto the back of the sealed queue and
  /// installs a fresh empty one. No-op when the active memtable is empty.
  void SealMemtable();

  /// Sealed memtables not yet fully drained (the compaction queue depth).
  size_t sealed_count() const { return sealed_.size(); }
  /// Records across all sealed memtables.
  uint64_t sealed_records() const;

  /// True when a compaction step would do something: a sealed memtable
  /// awaits flushing, or an on-SSD level is over capacity.
  bool HasCompactionWork() const;

  /// Kind of work one BackgroundCompactStep performed.
  enum class CompactStep { kNone, kFlush, kMerge };

  /// Executes ONE bounded unit of compaction — a policy-selected merge
  /// out of the oldest sealed memtable (kFlush), or, when the queue is
  /// empty, one merge out of the shallowest overflowing on-SSD level
  /// (kMerge) — and returns without cascading, so the caller can release
  /// its exclusive lock between steps and writers/readers interleave.
  /// Levels may be over capacity between steps; repeated calls until
  /// kNone restore every invariant. Failure atomicity matches
  /// MergeExecutor::Merge. Single-threaded convenience over the three
  /// phase methods below; a concurrent caller (lsmssd::Db) drives the
  /// phases itself so each can run under exactly the locks it needs.
  StatusOr<CompactStep> BackgroundCompactStep();

  // The phases of one step. Locking contracts (Db's discipline, see
  // DESIGN.md "Compaction scheduling & write stalls"): FrontSealed/
  // FlushSealedStep/PopSealedIfDrained touch only memory-resident state
  // (the sealed queue and the L0 buffer), so a flush runs entirely under
  // the exclusive *memtable* lock — it never takes the tree lock, which
  // is what lets flushes proceed while another worker holds the tree
  // lock for a long merge. Merge steps (OverflowingMergeSources +
  // MergeSourceStep) mutate levels and device metadata and need the
  // exclusive tree lock. The L0 buffer is written by both a flush
  // (absorb) and an L0 spill (Slice/EraseRange inside MergeSourceStep(0));
  // neither lock alone orders those two, so Db's per-level ownership
  // table additionally guarantees at most one worker owns "level 0" at
  // a time (flush and L0 spill both claim it).

  /// The sealed memtable the next flush step drains (the oldest), or
  /// nullptr when the queue is empty.
  Memtable* FrontSealed() {
    return sealed_.empty() ? nullptr : sealed_.front().get();
  }
  /// Absorbs `m` (which must be FrontSealed()) completely into the
  /// memory-resident L0 buffer — pure memory, no device I/O, so `m` is
  /// always drained when this returns. The buffer plays the inline
  /// path's L0 role: records spill to L1 only through policy-windowed
  /// merges once it overflows (MergeOverflowStep), which is what keeps
  /// the background path's amortized block writes equal to inline mode.
  Status FlushSealedStep(Memtable* m);
  /// Pops the front sealed memtable if a flush step emptied it; returns
  /// whether it popped.
  bool PopSealedIfDrained();
  /// One policy-selected merge out of the shallowest overflowing level —
  /// the L0 buffer first, then the on-SSD levels — or kNone.
  StatusOr<CompactStep> MergeOverflowStep();

  /// Merge sources currently overflowing, shallowest first: 0 when the
  /// L0 buffer is at K0 capacity, then every on-SSD level over K_i. A
  /// multi-worker caller claims one source s (owning levels {s, s+1} in
  /// its ownership table) and runs MergeSourceStep(s).
  std::vector<size_t> OverflowingMergeSources() const;

  /// One policy-selected merge out of `source` (0 = the L0 buffer spill,
  /// i >= 1 = level Li into Li+1), growing the tree by one level first
  /// when the target does not exist yet. Returns kNone when `source` is
  /// no longer overflowing (another worker's flush may race the scan for
  /// source 0 — the buffer only grows, so this is conservative). Failure
  /// atomicity matches MergeExecutor::Merge.
  StatusOr<CompactStep> MergeSourceStep(size_t source);

  /// Installs the token bucket charged by merge block-writes (may be
  /// null to disable). Not owned; set once before compaction starts.
  void set_merge_rate_limiter(RateLimiter* limiter) {
    merge_rate_limiter_ = limiter;
  }

  /// Records currently absorbed into the L0 buffer (background path
  /// only; always 0 on the inline path).
  uint64_t l0_buffer_records() const { return l0_buffer_.size(); }

  /// True once the L0 buffer holds at least twice its nominal K0
  /// capacity. Flush steps must then yield to overflow merges: a flush
  /// absorbs a sealed memtable with no device I/O while a merge pays
  /// real device time, so under a sustained write burst flush-first
  /// scheduling starves merges and the buffer grows without bound.
  /// Yielding at 2x caps the buffer near 2*K0*B + one memtable and
  /// turns the excess into queue backpressure the writers can see.
  bool L0BufferBacklogged() const;

  // ---- Reads ---------------------------------------------------------

  /// Returns the payload for `key`, or NotFound.
  StatusOr<std::string> Get(Key key);

  /// Memory-resident half of Get: probes the active memtable, then the
  /// sealed memtables newest-first. Returns the winning record (possibly
  /// a tombstone) or nullptr when no memtable has the key. Split out so
  /// lsmssd::Db can hold its memtable lock for exactly this probe.
  const Record* FindInMemtables(Key key) const;

  /// On-SSD half of Get: walks the levels top-down. The caller must have
  /// established that no memtable shadows `key`.
  StatusOr<std::string> GetFromLevels(Key key);

  /// Collects all live (non-deleted) records with keys in [lo, hi], in key
  /// order.
  Status Scan(Key lo, Key hi,
              std::vector<std::pair<Key, std::string>>* out);

  /// Streaming forward iterator over all live records (see iterator.h).
  /// The tree must not be modified while the iterator is in use.
  std::unique_ptr<Iterator> NewIterator() const;

  // ---- Introspection (used by policies, tests, benches) --------------

  /// Total number of levels h, *including* the memory-resident L0.
  size_t num_levels() const { return 1 + levels_.size(); }
  /// The L0 a merge policy should look at: normally the active memtable;
  /// during a background flush step, the sealed memtable being drained
  /// (so SelectMerge and the L0 merge path work unchanged against it).
  const Memtable& memtable() const {
    return compacting_l0_ != nullptr ? *compacting_l0_ : memtable_;
  }
  /// Record count of the *active* memtable, bypassing the compacting_l0_
  /// redirect above — what a writer holding the memtable lock should
  /// report to the sharded facade's memory arbiter.
  size_t active_memtable_records() const { return memtable_.size(); }
  /// Consolidated snapshot of every memory-resident record (active +
  /// sealed memtables, newest version of each key, tombstones kept), in
  /// key order — what a manifest must persist so deleting WAL segments
  /// after a checkpoint cannot lose queued-but-unflushed writes.
  std::vector<Record> MemtableSnapshot() const;
  /// On-SSD level L_i, 1 <= i < num_levels().
  const Level& level(size_t i) const;
  Level* mutable_level(size_t i);
  const Options& options() const { return options_; }
  /// The device all tree I/O goes through. With Options::cache_blocks > 0
  /// this is the tree-owned CachedBlockDevice wrapping the device passed
  /// to Open/Restore; its IoStats mirror the base device's write/alloc/
  /// free counts, so block-write accounting is unchanged by caching.
  BlockDevice* device() { return device_; }
  /// The tree-owned buffer cache, or nullptr when cache_blocks == 0.
  CachedBlockDevice* cache_device() { return cache_device_.get(); }
  const LsmStats& stats() const { return stats_; }
  MergePolicy* policy() { return policy_.get(); }
  /// Swaps the merge policy (e.g., while learning Mixed parameters).
  void set_policy(std::unique_ptr<MergePolicy> policy);

  /// K_i in blocks.
  uint64_t LevelCapacityBlocks(size_t i) const {
    return options_.LevelCapacityBlocks(i);
  }
  bool IsBottomLevel(size_t i) const { return i + 1 == num_levels(); }

  /// Records across all levels (including tombstones).
  uint64_t TotalRecords() const;
  /// Live-record payload bytes, approximated as records * record_size.
  uint64_t ApproximateDataBytes() const;

  /// Verifies structural invariants of every level (plus, with `deep`,
  /// block contents against metadata). Test/debug helper.
  Status CheckInvariants(bool deep = false) const;

 private:
  LsmTree(const Options& options, BlockDevice* device,
          std::unique_ptr<MergePolicy> policy);

  bool LevelOverflowing(size_t i) const;
  /// Runs merges until no level overflows (top-down cascade).
  Status MaybeMerge();
  /// One merge out of `source_level`, as selected by the policy.
  Status ExecuteMerge(size_t source_level);
  /// True once the L0 buffer holds >= K0 * B records (same overflow test
  /// the inline path applies to its memtable).
  bool L0BufferOverflowing() const;
  void AddLevel();
  /// The memtable ExecuteMerge(0) drains: the redirect target during a
  /// background flush step, the active memtable otherwise.
  Memtable& l0() { return compacting_l0_ != nullptr ? *compacting_l0_ : memtable_; }
  const Memtable& l0() const {
    return compacting_l0_ != nullptr ? *compacting_l0_ : memtable_;
  }

  Options options_;
  /// Owned buffer cache around the caller's device (null when disabled).
  std::unique_ptr<CachedBlockDevice> cache_device_;
  /// cache_device_.get() when caching is on, else the caller's device.
  BlockDevice* device_;
  std::unique_ptr<MergePolicy> policy_;
  Memtable memtable_;
  /// Sealed (immutable) memtables awaiting background flush, oldest at
  /// the front. Only SealMemtable appends; only BackgroundCompactStep
  /// drains. Empty whenever the inline merge path is in use.
  std::deque<std::unique_ptr<Memtable>> sealed_;
  /// The background path's memory-resident L0: flush steps absorb sealed
  /// memtables here (newest wins), and overflow steps spill policy-
  /// selected windows to L1 once it reaches K0 capacity — mirroring the
  /// inline path's memtable dynamics so both paths write the same
  /// amortized blocks. Read precedence: below every sealed memtable,
  /// above the levels. Only the compaction worker mutates it (under the
  /// exclusive tree lock); always empty on the inline path.
  Memtable l0_buffer_;
  /// Set for the duration of a background flush step: memtable()/l0()
  /// return the sealed memtable being drained instead of the active one.
  Memtable* compacting_l0_ = nullptr;
  std::vector<std::unique_ptr<Level>> levels_;  // levels_[0] is L1.
  /// Charged per merge output-block write when set (see merge.h). Null
  /// on the inline path and in research/bench code.
  RateLimiter* merge_rate_limiter_ = nullptr;
  LsmStats stats_;
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_LSM_TREE_H_
