#ifndef LSMSSD_LSM_WAL_H_
#define LSMSSD_LSM_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/format/record.h"
#include "src/storage/wal_file.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Write-ahead log for the memory-resident L0. LSM's durability gap is
/// exactly L0 (everything else lives on the block device); the paper
/// treats recovery as out of scope, so this is the standard complement: a
/// checkpoint (Manifest) plus a WAL of the modifications since.
///
/// Protocol (run automatically by lsmssd::Db, src/db/db.h):
///   * append every Put/Delete to the WAL before applying it;
///   * on checkpoint: Sync() (the durable log must cover every entry the
///     manifest includes), SaveManifestToFile(tree, ...), then
///     Truncate();
///   * on restart: LsmTree::Restore(manifest, ...), then replay
///     WalReader::ReadAll() in order.
///
/// Entry framing: [u32 LE length][u32 LE FNV-1a of payload][payload],
/// payload = [u8 type][u64 LE key][payload bytes]. A torn final entry
/// (crash mid-append) is detected and dropped; anything after it is
/// ignored. Entries carry no sequence numbers: replaying a WAL tail on
/// top of a manifest that already includes some of its entries is safe
/// because all modifications are blind writes (re-applying an in-order
/// suffix of the history reproduces the same final state).
class WalWriter {
 public:
  /// Opens (creating or appending to) the log at `path`.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path);

  /// Frames entries onto an externally constructed log file (used to
  /// interpose FaultInjectionWalFile in crash tests).
  static std::unique_ptr<WalWriter> Wrap(std::unique_ptr<WalFile> file);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one logged modification (Put carries the payload; Delete an
  /// empty one). Durable only after the next successful Sync().
  Status Append(const Record& record);

  /// Makes every appended entry durable.
  Status Sync();

  /// Empties the log (after a successful checkpoint).
  Status Truncate();

  /// Entries appended since this writer was opened.
  uint64_t entries_appended() const { return entries_appended_; }
  /// Framed bytes appended since this writer was opened (drives
  /// Db's checkpoint-by-WAL-size threshold).
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  explicit WalWriter(std::unique_ptr<WalFile> file);

  std::unique_ptr<WalFile> file_;
  uint64_t entries_appended_ = 0;
  uint64_t bytes_appended_ = 0;
};

/// Reads a WAL back; tolerant of a torn tail.
class WalReader {
 public:
  /// Returns all complete entries in append order. A missing file yields
  /// an empty vector (nothing to replay). A bad frame at the end of the
  /// log is the expected tear from a crash mid-append and is dropped; a
  /// bad frame *followed by* well-formed entries is mid-file corruption
  /// of possibly-synced data and yields `Corruption` instead of silently
  /// discarding the entries behind it. When `valid_bytes` is non-null
  /// it receives the byte length of the intact prefix — recovery must
  /// truncate the file to it before appending new entries, or they would
  /// land unreachable behind the torn tail. When `entry_offsets` is
  /// non-null it receives the frame-start byte offset of each returned
  /// entry — vlog recovery truncates the log at the first entry whose
  /// value pointer exceeds the durable vlog frontier (DESIGN.md §11).
  static StatusOr<std::vector<Record>> ReadAll(
      const std::string& path, size_t* valid_bytes = nullptr,
      std::vector<size_t>* entry_offsets = nullptr);
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_WAL_H_
