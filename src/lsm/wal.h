#ifndef LSMSSD_LSM_WAL_H_
#define LSMSSD_LSM_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/format/record.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Write-ahead log for the memory-resident L0. LSM's durability gap is
/// exactly L0 (everything else lives on the block device); the paper
/// treats recovery as out of scope, so this is the standard complement: a
/// checkpoint (Manifest) plus a WAL of the modifications since.
///
/// Protocol:
///   * append every Put/Delete to the WAL before applying it;
///   * on checkpoint: SaveManifestToFile(tree, ...), then Truncate();
///   * on restart: LsmTree::Restore(manifest, ...), then replay
///     WalReader::ReadAll() in order.
///
/// Entry framing: [u32 LE length][u32 LE FNV-1a of payload][payload],
/// payload = [u8 type][u64 LE key][payload bytes]. A torn final entry
/// (crash mid-append) is detected and dropped; anything after it is
/// ignored.
class WalWriter {
 public:
  /// Opens (creating or appending to) the log at `path`.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one logged modification (Put carries the payload; Delete an
  /// empty one).
  Status Append(const Record& record);

  /// Flushes userspace buffers and fsyncs.
  Status Sync();

  /// Empties the log (after a successful checkpoint).
  Status Truncate();

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::FILE* file);

  std::string path_;
  std::FILE* file_;
};

/// Reads a WAL back; tolerant of a torn tail.
class WalReader {
 public:
  /// Returns all complete entries in append order. A missing file yields
  /// an empty vector (nothing to replay).
  static StatusOr<std::vector<Record>> ReadAll(const std::string& path);
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_WAL_H_
