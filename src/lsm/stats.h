#ifndef LSMSSD_LSM_STATS_H_
#define LSMSSD_LSM_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lsmssd {

/// A uint64 tally that may be bumped concurrently. LsmTree is
/// thread-compatible — concurrent const reads are safe — but Get/Scan
/// count themselves, so the request counters must tolerate concurrent
/// readers (Db::Get/Scan under a shared lock). Relaxed ordering is
/// sufficient: each counter is an independent monotonic tally, never used
/// to synchronize other memory, and single-threaded counts are
/// bit-identical to a plain integer. Copyable so LsmStats keeps value
/// semantics (snapshots, DeltaSince).
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) : v_(v) {}
  RelaxedCounter(const RelaxedCounter& other) : v_(other.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const { return value(); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_;
};

/// Per-level merge/write accounting. Vectors are indexed by destination
/// level (index 0 unused — nothing merges *into* L0). These counters drive
/// every figure of the paper: Figures 3/4 plot cumulative
/// `blocks_written_into` per level over time; amortized costs divide the
/// same counters by `records_merged_into`; the Mixed learner reads them to
/// measure C(tau).
struct LsmStats {
  /// Grows the per-level vectors to cover `levels` entries.
  void EnsureLevels(size_t levels);

  /// Number of merges into each level (full + partial).
  std::vector<uint64_t> merges_into;
  /// Number of full merges into each level.
  std::vector<uint64_t> full_merges_into;
  /// Data blocks written by merges into each level: new output blocks plus
  /// pairwise-repair rewrites on the destination side.
  std::vector<uint64_t> blocks_written_into;
  /// Blocks written by source-side maintenance attributed to each level:
  /// pairwise repairs and compactions triggered by removing a merged range
  /// *from* that level (Cases 1-2), plus destination compactions (Case 4)
  /// attributed to the destination.
  std::vector<uint64_t> maintenance_blocks_written;
  /// Records that entered each level via merges.
  std::vector<uint64_t> records_merged_into;
  /// Input blocks preserved (reused without rewriting) by merges into each
  /// level.
  std::vector<uint64_t> blocks_preserved_into;
  /// Compactions run on each level.
  std::vector<uint64_t> compactions;
  /// Pairwise-waste repairs (adjacent-block coalesces) on each level.
  std::vector<uint64_t> pairwise_repairs;

  /// Request counters. Relaxed so concurrent readers can count their own
  /// Get/Scan while holding only a shared lock; see RelaxedCounter.
  RelaxedCounter puts;
  RelaxedCounter deletes;
  RelaxedCounter gets;
  RelaxedCounter scans;

  /// Total data blocks written across all levels (sum of the two write
  /// vectors). Tests cross-check this against the device's IoStats.
  uint64_t TotalBlocksWritten() const;

  /// Writes attributed to one level (merge output + maintenance).
  uint64_t BlocksWrittenForLevel(size_t level) const;

  /// Element-wise difference (this - earlier) for windowed measurements.
  LsmStats DeltaSince(const LsmStats& earlier) const;

  std::string ToString() const;
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_STATS_H_
