// LsmTree::NewIterator(): a k-way merge across L0 and every on-SSD level,
// with upper levels shadowing lower ones and tombstones suppressed.
//
// Level cursors walk the zero-copy leaf views (Level::ReadLeafView): key
// comparisons and tombstone checks read the encoded block in place, and a
// Record is materialized only for the winning source of each yielded key.

#include <algorithm>
#include <vector>

#include "src/lsm/iterator.h"
#include "src/lsm/lsm_tree.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// Cursor over one source (the memtable or one level), exposing entries in
/// key order including tombstones. The merged iterator consolidates.
/// key()/is_tombstone() are allocation-free; record() materializes.
class SourceCursor {
 public:
  virtual ~SourceCursor() = default;
  virtual bool Valid() const = 0;
  virtual Status SeekToFirst() = 0;
  virtual Status Seek(Key target) = 0;
  virtual Status Next() = 0;
  virtual Key key() const = 0;
  virtual bool is_tombstone() const = 0;
  virtual Record record() const = 0;
};

class MemtableCursor : public SourceCursor {
 public:
  explicit MemtableCursor(const Memtable* memtable) : memtable_(memtable) {}

  bool Valid() const override { return valid_; }

  Status SeekToFirst() override { return Seek(0); }

  Status Seek(Key target) override {
    // Memtable exposes sorted positions; reuse the slice API to avoid
    // widening its interface: position = count of keys < target.
    index_ = memtable_->UpperBoundIndex(target);
    // UpperBoundIndex returns first key > target; step back if the
    // previous key equals target.
    if (index_ > 0) {
      const auto prev = memtable_->Slice(index_ - 1, 1);
      if (!prev.empty() && prev.front().key == target) --index_;
    }
    return Load();
  }

  Status Next() override {
    ++index_;
    return Load();
  }

  Key key() const override {
    LSMSSD_DCHECK(valid_);
    return current_.key;
  }

  bool is_tombstone() const override {
    LSMSSD_DCHECK(valid_);
    return current_.is_tombstone();
  }

  Record record() const override {
    LSMSSD_DCHECK(valid_);
    return current_;
  }

 private:
  Status Load() {
    auto slice = memtable_->Slice(index_, 1);
    valid_ = !slice.empty();
    if (valid_) current_ = std::move(slice.front());
    return Status::OK();
  }

  const Memtable* memtable_;
  size_t index_ = 0;
  bool valid_ = false;
  Record current_;
};

class LevelCursor : public SourceCursor {
 public:
  explicit LevelCursor(const Level* level) : level_(level) {}

  bool Valid() const override { return valid_; }

  Status SeekToFirst() override {
    leaf_index_ = 0;
    pos_ = 0;
    return LoadLeaf();
  }

  Status Seek(Key target) override {
    const auto [begin, end] = level_->OverlapRange(target, target);
    if (begin < end) {
      leaf_index_ = begin;
      LSMSSD_RETURN_IF_ERROR(LoadLeaf());
      if (!valid_) return Status::OK();
      pos_ = leaf_.view.LowerBound(target);
      if (pos_ >= leaf_.view.size()) return AdvanceLeaf();
      return Status::OK();
    }
    // No leaf contains target: the first leaf starting after it (if any).
    leaf_index_ = begin;  // OverlapRange's begin == first leaf with max >= target.
    pos_ = 0;
    return LoadLeaf();
  }

  Status Next() override {
    LSMSSD_DCHECK(valid_);
    ++pos_;
    if (pos_ >= leaf_.view.size()) return AdvanceLeaf();
    return Status::OK();
  }

  Key key() const override {
    LSMSSD_DCHECK(valid_);
    return leaf_.view.key_at(pos_);
  }

  bool is_tombstone() const override {
    LSMSSD_DCHECK(valid_);
    return leaf_.view.is_tombstone_at(pos_);
  }

  Record record() const override {
    LSMSSD_DCHECK(valid_);
    return leaf_.view.record_at(pos_);
  }

 private:
  Status AdvanceLeaf() {
    ++leaf_index_;
    pos_ = 0;
    return LoadLeaf();
  }

  Status LoadLeaf() {
    valid_ = false;
    leaf_ = LeafView{};
    if (leaf_index_ >= level_->num_leaves()) return Status::OK();
    auto leaf_or = level_->ReadLeafView(leaf_index_);
    if (!leaf_or.ok()) return leaf_or.status();
    leaf_ = std::move(leaf_or).value();
    valid_ = !leaf_.view.empty();
    return Status::OK();
  }

  const Level* level_;
  size_t leaf_index_ = 0;
  size_t pos_ = 0;
  bool valid_ = false;
  LeafView leaf_;
};

/// Merges the cursors: smallest key wins; among equal keys the youngest
/// source (lowest index, L0 first) shadows the rest; tombstones are
/// skipped.
class MergedIterator : public Iterator {
 public:
  explicit MergedIterator(std::vector<std::unique_ptr<SourceCursor>> sources)
      : sources_(std::move(sources)) {}

  bool Valid() const override { return valid_ && status_.ok(); }

  void SeekToFirst() override {
    for (auto& s : sources_) {
      if (!Check(s->SeekToFirst())) return;
    }
    FindNextLive();
  }

  void Seek(Key target) override {
    for (auto& s : sources_) {
      if (!Check(s->Seek(target))) return;
    }
    FindNextLive();
  }

  void Next() override {
    LSMSSD_CHECK(Valid());
    if (!AdvancePast(current_.key)) return;
    FindNextLive();
  }

  Key key() const override {
    LSMSSD_DCHECK(Valid());
    return current_.key;
  }

  const std::string& value() const override {
    LSMSSD_DCHECK(Valid());
    return current_.payload;
  }

  Status status() const override { return status_; }

 private:
  bool Check(Status st) {
    if (!st.ok()) {
      status_ = std::move(st);
      valid_ = false;
      return false;
    }
    return true;
  }

  /// Advances every source positioned on `key`.
  bool AdvancePast(Key key) {
    for (auto& s : sources_) {
      if (s->Valid() && s->key() == key) {
        if (!Check(s->Next())) return false;
      }
    }
    return true;
  }

  /// Consolidates the current minimum across sources; skips tombstones.
  /// Only the winner of a live key materializes a Record.
  void FindNextLive() {
    for (;;) {
      const SourceCursor* winner = nullptr;
      for (const auto& s : sources_) {
        if (!s->Valid()) continue;
        if (winner == nullptr || s->key() < winner->key()) {
          winner = s.get();  // Lowest index wins ties (scanned in order).
        }
      }
      if (winner == nullptr) {
        valid_ = false;
        return;
      }
      if (!winner->is_tombstone()) {
        current_ = winner->record();
        valid_ = true;
        return;
      }
      if (!AdvancePast(winner->key())) return;  // Deleted: keep looking.
    }
  }

  std::vector<std::unique_ptr<SourceCursor>> sources_;
  Record current_;
  bool valid_ = false;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> LsmTree::NewIterator() const {
  std::vector<std::unique_ptr<SourceCursor>> sources;
  sources.reserve(num_levels() + sealed_.size() + 1);
  // Youngest source first (ties are won by the lowest index): the active
  // memtable, then sealed memtables newest-first, then the L0 buffer
  // (absorbed seals, older than all of the above), then the levels.
  sources.push_back(std::make_unique<MemtableCursor>(&memtable_));
  for (auto it = sealed_.rbegin(); it != sealed_.rend(); ++it) {
    sources.push_back(std::make_unique<MemtableCursor>(it->get()));
  }
  sources.push_back(std::make_unique<MemtableCursor>(&l0_buffer_));
  for (size_t i = 1; i < num_levels(); ++i) {
    sources.push_back(std::make_unique<LevelCursor>(&level(i)));
  }
  return std::make_unique<MergedIterator>(std::move(sources));
}

}  // namespace lsmssd
