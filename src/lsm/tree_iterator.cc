// LsmTree::NewIterator(): a k-way merge across L0 and every on-SSD level,
// with upper levels shadowing lower ones and tombstones suppressed.

#include <algorithm>
#include <vector>

#include "src/lsm/iterator.h"
#include "src/lsm/lsm_tree.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// Cursor over one source (the memtable or one level), exposing records in
/// key order including tombstones. The merged iterator consolidates.
class SourceCursor {
 public:
  virtual ~SourceCursor() = default;
  virtual bool Valid() const = 0;
  virtual Status SeekToFirst() = 0;
  virtual Status Seek(Key target) = 0;
  virtual Status Next() = 0;
  virtual const Record& record() const = 0;
};

class MemtableCursor : public SourceCursor {
 public:
  explicit MemtableCursor(const Memtable* memtable) : memtable_(memtable) {}

  bool Valid() const override { return valid_; }

  Status SeekToFirst() override { return Seek(0); }

  Status Seek(Key target) override {
    // Memtable exposes sorted positions; reuse the slice API to avoid
    // widening its interface: position = count of keys < target.
    index_ = memtable_->UpperBoundIndex(target);
    // UpperBoundIndex returns first key > target; step back if the
    // previous key equals target.
    if (index_ > 0) {
      const auto prev = memtable_->Slice(index_ - 1, 1);
      if (!prev.empty() && prev.front().key == target) --index_;
    }
    return Load();
  }

  Status Next() override {
    ++index_;
    return Load();
  }

  const Record& record() const override {
    LSMSSD_DCHECK(valid_);
    return current_;
  }

 private:
  Status Load() {
    auto slice = memtable_->Slice(index_, 1);
    valid_ = !slice.empty();
    if (valid_) current_ = std::move(slice.front());
    return Status::OK();
  }

  const Memtable* memtable_;
  size_t index_ = 0;
  bool valid_ = false;
  Record current_;
};

class LevelCursor : public SourceCursor {
 public:
  explicit LevelCursor(const Level* level) : level_(level) {}

  bool Valid() const override { return valid_; }

  Status SeekToFirst() override {
    leaf_ = 0;
    pos_ = 0;
    return LoadLeaf();
  }

  Status Seek(Key target) override {
    const auto [begin, end] = level_->OverlapRange(target, target);
    if (begin < end) {
      leaf_ = begin;
      LSMSSD_RETURN_IF_ERROR(LoadLeaf());
      if (!valid_) return Status::OK();
      auto it = std::lower_bound(
          records_.begin(), records_.end(), target,
          [](const Record& r, Key k) { return r.key < k; });
      pos_ = static_cast<size_t>(it - records_.begin());
      if (pos_ >= records_.size()) return AdvanceLeaf();
      return Status::OK();
    }
    // No leaf contains target: the first leaf starting after it (if any).
    leaf_ = begin;  // OverlapRange's begin == first leaf with max >= target.
    pos_ = 0;
    return LoadLeaf();
  }

  Status Next() override {
    LSMSSD_DCHECK(valid_);
    ++pos_;
    if (pos_ >= records_.size()) return AdvanceLeaf();
    return Status::OK();
  }

  const Record& record() const override {
    LSMSSD_DCHECK(valid_);
    return records_[pos_];
  }

 private:
  Status AdvanceLeaf() {
    ++leaf_;
    pos_ = 0;
    return LoadLeaf();
  }

  Status LoadLeaf() {
    valid_ = false;
    if (leaf_ >= level_->num_leaves()) return Status::OK();
    auto records_or = level_->ReadLeaf(leaf_);
    if (!records_or.ok()) return records_or.status();
    records_ = std::move(records_or).value();
    valid_ = !records_.empty();
    return Status::OK();
  }

  const Level* level_;
  size_t leaf_ = 0;
  size_t pos_ = 0;
  bool valid_ = false;
  std::vector<Record> records_;
};

/// Merges the cursors: smallest key wins; among equal keys the youngest
/// source (lowest index, L0 first) shadows the rest; tombstones are
/// skipped.
class MergedIterator : public Iterator {
 public:
  explicit MergedIterator(std::vector<std::unique_ptr<SourceCursor>> sources)
      : sources_(std::move(sources)) {}

  bool Valid() const override { return valid_ && status_.ok(); }

  void SeekToFirst() override {
    for (auto& s : sources_) {
      if (!Check(s->SeekToFirst())) return;
    }
    FindNextLive();
  }

  void Seek(Key target) override {
    for (auto& s : sources_) {
      if (!Check(s->Seek(target))) return;
    }
    FindNextLive();
  }

  void Next() override {
    LSMSSD_CHECK(Valid());
    if (!AdvancePast(current_.key)) return;
    FindNextLive();
  }

  Key key() const override {
    LSMSSD_DCHECK(Valid());
    return current_.key;
  }

  const std::string& value() const override {
    LSMSSD_DCHECK(Valid());
    return current_.payload;
  }

  Status status() const override { return status_; }

 private:
  bool Check(Status st) {
    if (!st.ok()) {
      status_ = std::move(st);
      valid_ = false;
      return false;
    }
    return true;
  }

  /// Advances every source positioned on `key`.
  bool AdvancePast(Key key) {
    for (auto& s : sources_) {
      if (s->Valid() && s->record().key == key) {
        if (!Check(s->Next())) return false;
      }
    }
    return true;
  }

  /// Consolidates the current minimum across sources; skips tombstones.
  void FindNextLive() {
    for (;;) {
      const SourceCursor* winner = nullptr;
      for (const auto& s : sources_) {
        if (!s->Valid()) continue;
        if (winner == nullptr || s->record().key < winner->record().key) {
          winner = s.get();  // Lowest index wins ties (scanned in order).
        }
      }
      if (winner == nullptr) {
        valid_ = false;
        return;
      }
      current_ = winner->record();
      if (!current_.is_tombstone()) {
        valid_ = true;
        return;
      }
      if (!AdvancePast(current_.key)) return;  // Deleted: keep looking.
    }
  }

  std::vector<std::unique_ptr<SourceCursor>> sources_;
  Record current_;
  bool valid_ = false;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> LsmTree::NewIterator() const {
  std::vector<std::unique_ptr<SourceCursor>> sources;
  sources.reserve(num_levels());
  sources.push_back(std::make_unique<MemtableCursor>(&memtable_));
  for (size_t i = 1; i < num_levels(); ++i) {
    sources.push_back(std::make_unique<LevelCursor>(&level(i)));
  }
  return std::make_unique<MergedIterator>(std::move(sources));
}

}  // namespace lsmssd
