#include "src/lsm/merge.h"

#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>

#include "src/format/record_block.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// Sorted record source consumed by the merge loop. Implementations expose
/// input-block boundaries so the block-preserving greedy can reuse whole
/// blocks without reading them.
class InputStream {
 public:
  virtual ~InputStream() = default;
  virtual bool HasNext() const = 0;
  /// Key of the next record. Requires HasNext(). Must not cost I/O when the
  /// next record starts a block (metadata suffices).
  virtual Key NextKey() const = 0;
  /// Consumes and returns the next record (reads the containing block on
  /// first touch).
  virtual StatusOr<Record> NextRecord() = 0;
  /// True iff the next record is the first of an (unread) input block.
  virtual bool AtBlockStart() const = 0;
  /// Metadata of the block holding the next record; only valid when
  /// AtBlockStart().
  virtual const LeafMeta* BlockMeta() const = 0;
  /// Skips the current block wholesale without reading it. Requires
  /// AtBlockStart().
  virtual void SkipBlock() = 0;
};

/// Streams the leaves [begin, end) of a level. `on_leaf_open` fires when a
/// leaf is read for element-wise processing (used to subtract Y empties in
/// the slack accounting); preserved (skipped) leaves never fire it.
///
/// Scans through the zero-copy leaf view: keys are compared in place and a
/// Record is materialized only when the merge actually consumes the slot
/// (consolidated or emitted) — preserved and skipped slots never allocate.
class LevelStream : public InputStream {
 public:
  LevelStream(const Level* level, size_t begin, size_t end,
              std::function<void(const LeafMeta&)> on_leaf_open)
      : level_(level),
        cur_(begin),
        end_(end),
        on_leaf_open_(std::move(on_leaf_open)) {}

  bool HasNext() const override { return cur_ < end_; }

  Key NextKey() const override {
    LSMSSD_DCHECK(HasNext());
    if (!loaded_) return level_->leaf(cur_).min_key;
    return leaf_.view.key_at(pos_);
  }

  StatusOr<Record> NextRecord() override {
    LSMSSD_CHECK(HasNext());
    if (!loaded_) {
      auto leaf_or = level_->ReadLeafView(cur_);
      if (!leaf_or.ok()) return leaf_or.status();
      leaf_ = std::move(leaf_or).value();
      pos_ = 0;
      loaded_ = true;
      if (on_leaf_open_) on_leaf_open_(level_->leaf(cur_));
    }
    Record r = leaf_.view.record_at(pos_++);
    if (pos_ >= leaf_.view.size()) {
      ++cur_;
      pos_ = 0;
      loaded_ = false;
      leaf_ = LeafView{};
    }
    return r;
  }

  bool AtBlockStart() const override { return HasNext() && !loaded_; }

  const LeafMeta* BlockMeta() const override {
    LSMSSD_DCHECK(AtBlockStart());
    return &level_->leaf(cur_);
  }

  void SkipBlock() override {
    LSMSSD_CHECK(AtBlockStart());
    ++cur_;
  }

 private:
  const Level* level_;
  size_t cur_;
  size_t end_;
  std::function<void(const LeafMeta&)> on_leaf_open_;
  bool loaded_ = false;
  size_t pos_ = 0;
  LeafView leaf_;
};

/// Streams records drained from L0. L0 has no on-SSD blocks, so there is
/// nothing to preserve.
class VectorStream : public InputStream {
 public:
  explicit VectorStream(std::vector<Record> records)
      : records_(std::move(records)) {}

  bool HasNext() const override { return pos_ < records_.size(); }
  Key NextKey() const override {
    LSMSSD_DCHECK(HasNext());
    return records_[pos_].key;
  }
  StatusOr<Record> NextRecord() override {
    LSMSSD_CHECK(HasNext());
    return std::move(records_[pos_++]);
  }
  bool AtBlockStart() const override { return false; }
  const LeafMeta* BlockMeta() const override {
    LSMSSD_CHECK(false) << "VectorStream has no blocks";
    return nullptr;
  }
  void SkipBlock() override { LSMSSD_CHECK(false); }

 private:
  std::vector<Record> records_;
  size_t pos_ = 0;
};

}  // namespace

MergeExecutor::MergeExecutor(const Options& options, BlockDevice* device,
                             Level* target, bool target_is_bottom,
                             bool preserve_blocks, RateLimiter* rate_limiter)
    : options_(options),
      device_(device),
      target_(target),
      target_is_bottom_(target_is_bottom),
      preserve_blocks_(preserve_blocks),
      rate_limiter_(rate_limiter) {
  LSMSSD_CHECK(device != nullptr);
  LSMSSD_CHECK(target != nullptr);
}

StatusOr<MergeResult> MergeExecutor::Merge(MergeSource source) {
  MergeScratch scratch;
  auto result_or = MergeBody(std::move(source), &scratch);
  if (result_or.ok()) return result_or;

  // Abort path. Before the commit point (the target splice) the tree is
  // untouched: give back every output block this merge wrote, so the
  // device's live-block count returns to its pre-merge value. Frees are
  // best-effort — on a crash-injected device the process is dead anyway.
  if (!scratch.installed) {
    for (BlockId id : scratch.owned) (void)device_->FreeBlock(id);
  }
  // Close the slack-ledger bracket with the level's actual empty-slot
  // delta (zero when nothing was installed); an open bracket would leave
  // inflated slack behind and let later merges overshoot the waste bound.
  if (scratch.ledger_open) {
    target_->ledger().OnMergeEnd(
        static_cast<int64_t>(target_->empty_slots()) -
        static_cast<int64_t>(scratch.target_empty_before));
  }
  return result_or;
}

StatusOr<MergeResult> MergeExecutor::MergeBody(MergeSource source,
                                               MergeScratch* scratch) {
  MergeResult result;
  const uint64_t b_cap = options_.records_per_block();
  auto empty_of = [b_cap](uint32_t count) {
    return static_cast<int64_t>(b_cap) - static_cast<int64_t>(count);
  };

  // ---- Assemble the X side. ----------------------------------------
  Key kmin = 0, kmax = 0;
  double x_capacity_records = 0.0;
  std::unique_ptr<InputStream> x_stream;
  Level* src_level = source.level;
  const size_t x_begin = source.leaf_begin;
  const size_t x_end = source.leaf_end;

  if (source.from_l0()) {
    if (source.l0_records.empty()) {
      return Status::InvalidArgument("merge with empty L0 source");
    }
    kmin = source.l0_records.front().key;
    kmax = source.l0_records.back().key;
    result.source_records = source.l0_records.size();
    x_capacity_records = static_cast<double>(result.source_records);
    x_stream = std::make_unique<VectorStream>(std::move(source.l0_records));
  } else {
    LSMSSD_CHECK(src_level != target_);
    LSMSSD_CHECK_LT(x_begin, x_end);
    LSMSSD_CHECK_LE(x_end, src_level->num_leaves());
    kmin = src_level->leaf(x_begin).min_key;
    kmax = src_level->leaf(x_end - 1).max_key;
    for (size_t i = x_begin; i < x_end; ++i) {
      result.source_records += src_level->leaf(i).count;
    }
    x_capacity_records = static_cast<double>((x_end - x_begin) * b_cap);
    x_stream = std::make_unique<LevelStream>(src_level, x_begin, x_end,
                                             /*on_leaf_open=*/nullptr);
  }

  // ---- Locate the overlapping Y range in the target. ---------------
  const auto [y_begin, y_end] = target_->OverlapRange(kmin, kmax);
  result.overlapping_target_blocks = y_end - y_begin;

  const uint64_t target_empty_before = target_->empty_slots();
  target_->ledger().OnMergeStart(options_.epsilon * x_capacity_records);
  scratch->ledger_open = true;
  scratch->target_empty_before = target_empty_before;

  // Running net empty-slot delta of the current merge (the paper's
  // in-merge w bookkeeping): empties of emitted Z blocks minus empties of
  // Y blocks already processed.
  int64_t w_run = 0;
  LevelStream y_stream(target_, y_begin, y_end,
                       [&](const LeafMeta& m) { w_run -= empty_of(m.count); });

  RecordBlockBuilder builder(options_);
  std::vector<LeafMeta> z;
  std::unordered_set<BlockId> preserved;

  // Previous output block for pairwise checks: initially the target block
  // preceding Y (if any), thereafter the tail of Z.
  bool has_prev = y_begin > 0;
  uint32_t prev_count = has_prev ? target_->leaf(y_begin - 1).count : 0;
  bool prev_in_z = false;

  // Output batching (Options::io_batch_blocks): completed output blocks
  // are buffered and written with one vectored WriteBlocks call, letting
  // FileBlockDevice coalesce contiguous slots into a single pwritev and
  // amortize the checksum-sidecar update. Buffered blocks sit in `z` with
  // a placeholder id until flush_pending() assigns real ids. WriteBlocks
  // allocates in the exact order a WriteNewBlock loop would, and no other
  // allocation or free happens while blocks are pending (the tail-repair
  // path drains the buffer first), so block ids, write counts, and the
  // paper's metrics are identical to the unbatched path.
  const size_t batch = options_.io_batch_blocks;
  std::vector<BlockData> pending_data;
  std::vector<size_t> pending_z;  // Indices into z awaiting real ids.

  auto flush_pending = [&]() -> Status {
    if (pending_data.empty()) return Status::OK();
    std::vector<BlockId> ids;
    ids.reserve(pending_data.size());
    LSMSSD_RETURN_IF_ERROR(device_->WriteBlocks(pending_data, &ids));
    if (rate_limiter_ != nullptr) rate_limiter_->Charge(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      z[pending_z[i]].block = ids[i];
      scratch->owned.push_back(ids[i]);
    }
    pending_data.clear();
    pending_z.clear();
    return Status::OK();
  };

  auto flush = [&]() -> Status {
    if (builder.empty()) return Status::OK();
    // Metadata (and Bloom filter) are built from the buffered records in
    // place, before Finish() resets the builder — no O(B) vector copy.
    LeafMeta meta = MakeLeafMeta(options_, builder.records(), kInvalidBlockId);
    if (batch > 1) {
      pending_z.push_back(z.size());
      pending_data.push_back(builder.Finish());
      z.push_back(meta);
      ++result.output_blocks_written;
      w_run += empty_of(meta.count);
      has_prev = true;
      prev_count = meta.count;
      prev_in_z = true;
      if (pending_data.size() >= batch) return flush_pending();
      return Status::OK();
    }
    auto id_or = device_->WriteNewBlock(builder.Finish());
    if (!id_or.ok()) return id_or.status();
    if (rate_limiter_ != nullptr) rate_limiter_->Charge(1);
    meta.block = id_or.value();
    scratch->owned.push_back(meta.block);
    z.push_back(meta);
    ++result.output_blocks_written;
    w_run += empty_of(meta.count);
    has_prev = true;
    prev_count = meta.count;
    prev_in_z = true;
    return Status::OK();
  };

  auto emit_record = [&](const Record& r) -> Status {
    // A tombstone arriving at the bottom level has nothing left to cancel:
    // drop it instead of persisting dead weight.
    if (target_is_bottom_ && r.is_tombstone()) return Status::OK();
    if (builder.full()) LSMSSD_RETURN_IF_ERROR(flush());
    builder.Add(r);
    return Status::OK();
  };

  // The paper's greedy waste check (Section II-B): preserve block b only
  // if the pairwise constraint holds around the flushed buffer, and the
  // level's cumulative empty-slot increase stays within the slack budget.
  auto try_preserve = [&](InputStream* s, bool from_y) -> StatusOr<bool> {
    const LeafMeta* b = s->BlockMeta();
    if (builder.empty()) {
      if (has_prev && !PairwiseWasteOk(prev_count, b->count, b_cap)) {
        return false;
      }
    } else {
      if (has_prev && !PairwiseWasteOk(prev_count, builder.count(), b_cap)) {
        return false;
      }
      if (!PairwiseWasteOk(builder.count(), b->count, b_cap)) return false;
    }
    int64_t w_prospective = w_run;
    if (!builder.empty()) {
      w_prospective += empty_of(static_cast<uint32_t>(builder.count()));
    }
    // Preserving a Y block is waste-neutral for the level (+e emitted,
    // -e consumed); an X block imports its empties.
    if (!from_y) w_prospective += empty_of(b->count);
    if (!target_->ledger().WithinBudget(
            target_->ledger().net_increase() + w_prospective, b_cap)) {
      return false;
    }

    LSMSSD_RETURN_IF_ERROR(flush());
    z.push_back(*b);
    preserved.insert(b->block);
    ++result.blocks_preserved;
    if (!from_y) w_run += empty_of(b->count);
    has_prev = true;
    prev_count = b->count;
    prev_in_z = true;
    s->SkipBlock();
    return true;
  };

  // ---- One-pass co-scan with consolidation and preservation. --------
  while (x_stream->HasNext() || y_stream.HasNext()) {
    if (x_stream->HasNext() && y_stream.HasNext() &&
        x_stream->NextKey() == y_stream.NextKey()) {
      auto upper_or = x_stream->NextRecord();
      if (!upper_or.ok()) return upper_or.status();
      auto lower_or = y_stream.NextRecord();
      if (!lower_or.ok()) return lower_or.status();
      Record out;
      const bool annihilate =
          target_is_bottom_ || options_.annihilate_delete_put;
      if (ConsolidateRecords(upper_or.value(), lower_or.value(), annihilate,
                             &out)) {
        LSMSSD_RETURN_IF_ERROR(emit_record(out));
      }
      continue;
    }

    const bool take_x =
        !y_stream.HasNext() ||
        (x_stream->HasNext() && x_stream->NextKey() < y_stream.NextKey());
    InputStream* s =
        take_x ? x_stream.get() : static_cast<InputStream*>(&y_stream);
    InputStream* other =
        take_x ? static_cast<InputStream*>(&y_stream) : x_stream.get();

    if (preserve_blocks_ && s->AtBlockStart()) {
      const LeafMeta* b = s->BlockMeta();
      // The whole block can be squeezed in before the other stream's next
      // record (strict: an equal key would require consolidation).
      const bool fits = !other->HasNext() || other->NextKey() > b->max_key;
      if (fits) {
        auto done_or = try_preserve(s, /*from_y=*/!take_x);
        if (!done_or.ok()) return done_or.status();
        if (done_or.value()) continue;
      }
    }

    auto record_or = s->NextRecord();
    if (!record_or.ok()) return record_or.status();
    LSMSSD_RETURN_IF_ERROR(emit_record(record_or.value()));
  }

  // ---- Final flush; repair a pairwise violation inside Z in place. ---
  if (!builder.empty()) {
    if (prev_in_z &&
        !PairwiseWasteOk(prev_count, builder.count(), b_cap)) {
      // The tail block must be on the device before it is read back and
      // freed (its free must also not reorder around buffered
      // allocations, or ids would diverge from the unbatched path).
      LSMSSD_RETURN_IF_ERROR(flush_pending());
      // The last Z block and the final partial buffer jointly fit in one
      // block (that is what the violation means); rewrite them as one.
      LeafMeta tail = z.back();
      z.pop_back();
      BlockData data;
      LSMSSD_RETURN_IF_ERROR(device_->ReadBlock(tail.block, &data));
      auto tail_records_or = DecodeRecordBlock(options_, data);
      if (!tail_records_or.ok()) return tail_records_or.status();
      std::vector<Record> combined = std::move(tail_records_or).value();
      for (const Record& r : builder.records()) combined.push_back(r);
      builder.Reset();
      LSMSSD_CHECK_LE(combined.size(), b_cap);

      if (preserved.erase(tail.block) > 0) {
        // Un-preserved: the block still belongs to its original level and
        // will be freed by the splice/removal below.
        --result.blocks_preserved;
      } else {
        // We wrote it during this merge and own it.
        LSMSSD_RETURN_IF_ERROR(device_->FreeBlock(tail.block));
        std::erase(scratch->owned, tail.block);
      }
      w_run -= empty_of(tail.count);

      auto id_or =
          device_->WriteNewBlock(EncodeRecordBlock(options_, combined));
      if (!id_or.ok()) return id_or.status();
      if (rate_limiter_ != nullptr) rate_limiter_->Charge(1);
      scratch->owned.push_back(id_or.value());
      const LeafMeta meta = MakeLeafMeta(options_, combined, id_or.value());
      z.push_back(meta);
      ++result.output_blocks_written;
      w_run += empty_of(meta.count);
    } else {
      LSMSSD_RETURN_IF_ERROR(flush());
    }
  }
  // Every Z block needs a real id before ownership passes to the level.
  LSMSSD_RETURN_IF_ERROR(flush_pending());

  // ---- Install Z; restore constraints (Cases 1-4 of Section II-B). ---
  // The splice is the commit point: ownership of the Z blocks passes to
  // the target level, and the old Y blocks are freed. From here on a
  // failure must not free output blocks (the tree references them).
  scratch->installed = true;
  scratch->owned.clear();
  const size_t z_count = z.size();
  LSMSSD_RETURN_IF_ERROR(
      target_->SpliceLeaves(y_begin, y_end, std::move(z), preserved));

  // Case 3: pairwise checks where Z meets the untouched neighbours.
  {
    std::vector<size_t> seams;
    const size_t n = target_->num_leaves();
    if (z_count > 0) {
      if (y_begin + z_count < n) seams.push_back(y_begin + z_count - 1);
      if (y_begin > 0) seams.push_back(y_begin - 1);
    } else if (y_begin > 0 && y_begin < n) {
      seams.push_back(y_begin - 1);  // Removal made two old blocks adjacent.
    }
    for (size_t idx : seams) {  // Descending order keeps indices valid.
      if (!target_->MeetsPairwiseWaste(idx)) {
        auto writes_or = target_->CoalescePair(idx);
        if (!writes_or.ok()) return writes_or.status();
        result.target_maintenance_writes += writes_or.value();
        ++result.target_pairwise_repairs;
      }
    }
  }

  // ---- Remove X from the source level (Cases 1-2). -------------------
  if (src_level != nullptr) {
    LSMSSD_RETURN_IF_ERROR(
        src_level->RemoveLeaves(x_begin, x_end, preserved));
    const size_t sn = src_level->num_leaves();
    if (x_begin > 0 && x_begin < sn &&
        !src_level->MeetsPairwiseWaste(x_begin - 1)) {
      auto writes_or = src_level->CoalescePair(x_begin - 1);
      if (!writes_or.ok()) return writes_or.status();
      result.source_maintenance_writes += writes_or.value();
      ++result.source_pairwise_repairs;
    }
    if (!src_level->MeetsLevelWaste()) {
      auto writes_or = src_level->Compact();
      if (!writes_or.ok()) return writes_or.status();
      result.source_maintenance_writes += writes_or.value();
      result.source_compacted = true;
    }
  }

  // ---- Settle the slack ledger; Case 4 compaction if needed. ---------
  const uint64_t target_empty_after = target_->empty_slots();
  target_->ledger().OnMergeEnd(static_cast<int64_t>(target_empty_after) -
                               static_cast<int64_t>(target_empty_before));
  scratch->ledger_open = false;
  if (!target_->MeetsLevelWaste()) {
    auto writes_or = target_->Compact();  // Resets the ledger.
    if (!writes_or.ok()) return writes_or.status();
    result.target_maintenance_writes += writes_or.value();
    result.target_compacted = true;
  }

  return result;
}

}  // namespace lsmssd
