#ifndef LSMSSD_LSM_MEMTABLE_H_
#define LSMSSD_LSM_MEMTABLE_H_

#include <cstddef>
#include <map>
#include <vector>

#include "src/format/record.h"

namespace lsmssd {

/// The memory-resident top level L0 (Section II-A): an in-memory sorted
/// index that logs modifications. At most one record per key — a newer
/// Put overwrites an older entry, a Delete replaces it with a tombstone
/// (the tombstone must survive to cancel possible older versions in lower
/// levels). Merges drain contiguous key ranges out of L0.
class Memtable {
 public:
  Memtable() = default;

  /// Logs an insert/update.
  void Put(Key key, std::string payload);

  /// Logs a delete (tombstone).
  void Delete(Key key);

  /// Looks up `key`. Returns the logged record, or nullptr if L0 has no
  /// entry for the key (the caller must then consult lower levels).
  const Record* Get(Key key) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  Key min_key() const;
  Key max_key() const;

  /// Copies all keys in sorted order (policy metadata scans).
  std::vector<Key> SortedKeys() const;

  /// Copies the records of the `count` entries starting at sorted position
  /// `begin` (clamped to size). Does not remove them.
  std::vector<Record> Slice(size_t begin, size_t count) const;

  /// Removes the `count` entries starting at sorted position `begin` and
  /// returns them in key order.
  std::vector<Record> Extract(size_t begin, size_t count);

  /// Removes the `count` entries starting at sorted position `begin`
  /// without returning them. Pairs with Slice(): a merge copies its L0
  /// input up front and erases it only after the merge has fully
  /// installed, so an aborted merge leaves L0 intact.
  void EraseRange(size_t begin, size_t count);

  /// Removes and returns everything.
  std::vector<Record> ExtractAll();

  /// Sorted position of the first entry with key > `key` (i.e., where an
  /// RR cursor resumes).
  size_t UpperBoundIndex(Key key) const;

  /// Records in [lo, hi], appended to *out in key order (for scans).
  void CollectRange(Key lo, Key hi, std::vector<Record>* out) const;

 private:
  // Ordered map gives O(log n) point ops; index-based slicing walks
  // iterators (L0 is small — thousands of entries — so this is cheap
  // relative to merge I/O).
  std::map<Key, Record> entries_;
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_MEMTABLE_H_
