#include "src/lsm/stats.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"

namespace lsmssd {

void LsmStats::EnsureLevels(size_t levels) {
  auto grow = [levels](std::vector<uint64_t>& v) {
    if (v.size() < levels) v.resize(levels, 0);
  };
  grow(merges_into);
  grow(full_merges_into);
  grow(blocks_written_into);
  grow(maintenance_blocks_written);
  grow(records_merged_into);
  grow(blocks_preserved_into);
  grow(compactions);
  grow(pairwise_repairs);
}

uint64_t LsmStats::TotalBlocksWritten() const {
  uint64_t total = 0;
  for (uint64_t v : blocks_written_into) total += v;
  for (uint64_t v : maintenance_blocks_written) total += v;
  return total;
}

uint64_t LsmStats::BlocksWrittenForLevel(size_t level) const {
  uint64_t total = 0;
  if (level < blocks_written_into.size()) total += blocks_written_into[level];
  if (level < maintenance_blocks_written.size()) {
    total += maintenance_blocks_written[level];
  }
  return total;
}

LsmStats LsmStats::DeltaSince(const LsmStats& earlier) const {
  auto diff = [](const std::vector<uint64_t>& now,
                 const std::vector<uint64_t>& then) {
    std::vector<uint64_t> out(now.size(), 0);
    for (size_t i = 0; i < now.size(); ++i) {
      const uint64_t before = i < then.size() ? then[i] : 0;
      LSMSSD_CHECK_GE(now[i], before);
      out[i] = now[i] - before;
    }
    return out;
  };
  LsmStats d;
  d.merges_into = diff(merges_into, earlier.merges_into);
  d.full_merges_into = diff(full_merges_into, earlier.full_merges_into);
  d.blocks_written_into =
      diff(blocks_written_into, earlier.blocks_written_into);
  d.maintenance_blocks_written =
      diff(maintenance_blocks_written, earlier.maintenance_blocks_written);
  d.records_merged_into =
      diff(records_merged_into, earlier.records_merged_into);
  d.blocks_preserved_into =
      diff(blocks_preserved_into, earlier.blocks_preserved_into);
  d.compactions = diff(compactions, earlier.compactions);
  d.pairwise_repairs = diff(pairwise_repairs, earlier.pairwise_repairs);
  d.puts = puts - earlier.puts;
  d.deletes = deletes - earlier.deletes;
  d.gets = gets - earlier.gets;
  d.scans = scans - earlier.scans;
  return d;
}

std::string LsmStats::ToString() const {
  std::ostringstream out;
  out << "requests: puts=" << puts << " deletes=" << deletes
      << " gets=" << gets << " scans=" << scans << "\n";
  for (size_t i = 1; i < merges_into.size(); ++i) {
    out << "L" << i << ": merges=" << merges_into[i] << " (full "
        << full_merges_into[i] << ")"
        << " blocks_written=" << blocks_written_into[i]
        << " maintenance=" << maintenance_blocks_written[i]
        << " records_in=" << records_merged_into[i]
        << " preserved=" << blocks_preserved_into[i]
        << " compactions=" << compactions[i]
        << " pair_repairs=" << pairwise_repairs[i] << "\n";
  }
  return out.str();
}

}  // namespace lsmssd
