#ifndef LSMSSD_LSM_WASTE_H_
#define LSMSSD_LSM_WASTE_H_

#include <cstdint>

namespace lsmssd {

/// Waste-constraint predicates from Section II-B.
///
/// Pairwise: any two consecutive data blocks must store strictly more than
/// B records total (prevents runs of nearly-empty blocks that would defeat
/// partial-merge cost bounds).
inline bool PairwiseWasteOk(uint64_t count_a, uint64_t count_b, uint64_t b) {
  return count_a + count_b > b;
}

/// Level-wise: the fraction of empty record slots across a level's data
/// blocks must be <= epsilon. Levels with fewer than two blocks are
/// exempt, as are levels that are already maximally packed (fewer than one
/// block's worth of empty slots — leaves == ceil(records/B), so no
/// compaction could reduce the waste further; this case only arises for
/// levels a few blocks long, far below the paper's operating scale).
inline bool LevelWasteOk(uint64_t records, uint64_t leaves, uint64_t b,
                         double epsilon) {
  if (leaves < 2) return true;
  const uint64_t empty = leaves * b - records;
  if (empty < b) return true;  // Already as compact as possible.
  return static_cast<double>(empty) <=
         epsilon * static_cast<double>(leaves * b);
}

/// Per-level slack ledger for block-preserving merges (Section II-B).
///
/// Each merge into a level is allowed to increase the level's count of
/// empty record slots by at most epsilon * (merge size in records); unused
/// allowance carries over to later merges ("any unused slack can be claimed
/// by subsequent merges"). During a merge, preserving an input block is
/// permitted only while the cumulative net increase `w` stays within
/// `allowance - B + 1` — the final output block may be forced to carry up
/// to B-1 empty slots, hence the headroom. A compaction resets the ledger.
class WasteLedger {
 public:
  /// Called at the start of each merge into the owning level.
  /// `per_merge_slack` = epsilon * (capacity in records of the merged
  /// source range), i.e. epsilon * delta * K_source * B for partial merges.
  void OnMergeStart(double per_merge_slack) {
    ++merges_since_compaction_;
    slack_allowance_ += per_merge_slack;
  }

  /// True iff the level's net empty-slot increase may reach
  /// `prospective_w` without busting the budget for a block of capacity
  /// `b`.
  bool WithinBudget(int64_t prospective_w, uint64_t b) const {
    return static_cast<double>(prospective_w) <=
           slack_allowance_ - static_cast<double>(b) + 1.0;
  }

  /// Accounts the net empty-slot delta observed at the end of a merge.
  void OnMergeEnd(int64_t net_empty_slot_delta) {
    net_increase_ += net_empty_slot_delta;
  }

  void OnCompaction() {
    merges_since_compaction_ = 0;
    slack_allowance_ = 0.0;
    net_increase_ = 0;
  }

  uint64_t merges_since_compaction() const {
    return merges_since_compaction_;
  }
  double slack_allowance() const { return slack_allowance_; }
  int64_t net_increase() const { return net_increase_; }

 private:
  uint64_t merges_since_compaction_ = 0;
  double slack_allowance_ = 0.0;
  int64_t net_increase_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_WASTE_H_
