// Waste-constraint logic is header-only (src/lsm/waste.h); this file exists
// so the module shows up as a translation unit and to anchor future
// non-inline additions.
#include "src/lsm/waste.h"
