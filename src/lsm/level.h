#ifndef LSMSSD_LSM_LEVEL_H_
#define LSMSSD_LSM_LEVEL_H_

#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include <memory>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/format/record_block.h"
#include "src/format/record_block_view.h"
#include "src/lsm/waste.h"
#include "src/storage/block_device.h"
#include "src/util/bloom.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Metadata of one B+tree data block (leaf) of a level. These entries are
/// the level's "internal nodes cached in main memory" (Section II-A): they
/// carry everything policies need — key ranges and record counts — so
/// range selection (ChooseBest) runs on metadata alone, with no data I/O.
struct LeafMeta {
  BlockId block = kInvalidBlockId;
  Key min_key = 0;
  Key max_key = 0;
  uint32_t count = 0;
  /// Optional per-leaf Bloom filter (Options::bloom_bits_per_key > 0);
  /// shared so preserved blocks keep their filter across levels.
  std::shared_ptr<const BloomFilter> filter;
};

/// Builds the metadata entry (key range, count, Bloom filter if enabled)
/// for a block holding `records` at id `block`.
LeafMeta MakeLeafMeta(const Options& options,
                      const std::vector<Record>& records, BlockId block);

/// One leaf's block image plus a validated zero-copy view over it (the
/// unit the read path hands around). The shared image stays valid even if
/// a later merge frees or evicts the block — readers hold a reference.
struct LeafView {
  std::shared_ptr<const BlockData> data;
  RecordBlockView view;
};

/// One on-SSD level L_i (i >= 1) under the paper's relaxed storage rules
/// (Section II-B): leaves live at arbitrary block addresses, need not be
/// full individually, and the level maintains the two waste constraints
/// (level-wise <= epsilon; adjacent pairs > B records). All record
/// mutation happens through merges/compactions — never in place.
///
/// The leaf directory is an ordered vector; bulk splices touch one
/// contiguous range per operation, mirroring the paper's bulk-delete /
/// bulk-insert of B+tree key ranges whose cost is negligible against data
/// block I/O.
class Level {
 public:
  /// `device` must outlive the level. `level_index` is 1-based (L0 is the
  /// memtable) and used for diagnostics.
  Level(const Options& options, BlockDevice* device, size_t level_index);

  Level(const Level&) = delete;
  Level& operator=(const Level&) = delete;

  size_t level_index() const { return level_index_; }
  size_t num_leaves() const { return leaves_.size(); }
  /// Size of the level in blocks (S(L_i) in the paper).
  size_t size_blocks() const { return leaves_.size(); }
  uint64_t record_count() const { return record_count_; }
  bool empty() const { return leaves_.empty(); }

  const LeafMeta& leaf(size_t i) const;
  const std::vector<LeafMeta>& leaves() const { return leaves_; }

  Key min_key() const;
  Key max_key() const;

  /// Total empty record slots across all leaves.
  uint64_t empty_slots() const;
  /// Fraction of empty slots (0 when the level is empty).
  double waste_factor() const;
  /// Level-wise waste constraint (exempt below two leaves).
  bool MeetsLevelWaste() const;
  /// Pairwise constraint for leaves (i, i+1).
  bool MeetsPairwiseWaste(size_t i) const;

  /// Reads leaf `i` without decoding: shared block image + in-place view.
  /// The preferred read primitive — lookups, scans, and merge streams all
  /// run on it; only slots actually consumed are materialized as Records.
  StatusOr<LeafView> ReadLeafView(size_t i) const;

  /// Reads and decodes leaf `i`'s records (materializing convenience for
  /// compaction and tests; implemented over ReadLeafView).
  StatusOr<std::vector<Record>> ReadLeaf(size_t i) const;

  /// Point lookup. Returns the level's record for `key` via `*out`;
  /// NotFound if the level has no record for the key.
  Status Lookup(Key key, Record* out) const;

  /// Appends all records with keys in [lo, hi] to *out in key order.
  Status CollectRange(Key lo, Key hi, std::vector<Record>* out) const;

  /// Half-open leaf index range [first, second) of leaves whose key ranges
  /// intersect [lo, hi].
  std::pair<size_t, size_t> OverlapRange(Key lo, Key hi) const;

  /// Replaces leaves [begin, end) with `replacement`. Old blocks are freed
  /// unless their id appears in `preserved` (block-preserving merges hand
  /// blocks across levels without rewriting them). Replacement leaves must
  /// be internally sorted and fit strictly between the neighbours.
  Status SpliceLeaves(size_t begin, size_t end,
                      std::vector<LeafMeta> replacement,
                      const std::unordered_set<BlockId>& preserved);

  /// Removes leaves [begin, end); frees their blocks except `preserved`.
  Status RemoveLeaves(size_t begin, size_t end,
                      const std::unordered_set<BlockId>& preserved);

  /// Appends one leaf (bulk load); key range must follow the current tail.
  void AppendLeaf(const LeafMeta& meta);

  /// Rewrites adjacent leaves (i, i+1) as one block (pairwise-waste repair,
  /// Cases 1 and 3 in Section II-B). Their combined count must fit in one
  /// block — guaranteed whenever the pairwise constraint is violated.
  /// Returns the number of blocks written (always 1).
  StatusOr<uint64_t> CoalescePair(size_t i);

  /// One-pass compaction: rewrites the level into fully packed blocks and
  /// resets the waste ledger. Returns the number of blocks written.
  StatusOr<uint64_t> Compact();

  WasteLedger& ledger() { return ledger_; }
  const WasteLedger& ledger() const { return ledger_; }

  /// Lookups answered "absent" by a leaf's Bloom filter without reading
  /// the block (0 when filters are disabled).
  uint64_t bloom_negative_skips() const { return bloom_negative_skips_; }

  /// Structural invariant check. `deep` additionally reads every block and
  /// verifies contents against metadata (tests only; O(level size) I/O).
  Status CheckInvariants(bool deep) const;

  const Options& options() const { return options_; }
  BlockDevice* device() const { return device_; }

 private:
  /// Index of the first leaf with max_key >= key.
  size_t LowerBoundLeaf(Key key) const;

  const Options& options_;
  BlockDevice* device_;
  size_t level_index_;
  std::vector<LeafMeta> leaves_;
  uint64_t record_count_ = 0;
  WasteLedger ledger_;
  // Mutable: Lookup is logically const; the counter is observability only.
  mutable uint64_t bloom_negative_skips_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_LEVEL_H_
