#ifndef LSMSSD_LSM_MANIFEST_H_
#define LSMSSD_LSM_MANIFEST_H_

#include <string>
#include <vector>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/lsm/level.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

class LsmTree;

/// A point-in-time snapshot of an LSM tree's *metadata*: the options, the
/// memtable contents, and every level's leaf directory (block ids + key
/// ranges + counts). Data blocks themselves live on the block device; a
/// manifest plus a persistent device (FileBlockDevice with
/// remove_on_close=false) is enough to reopen the index after a restart.
///
/// The paper observes (Section V, footnote 1) that the internal B+tree
/// nodes can be reconstructed from data blocks and need not be persisted;
/// the manifest is the practical checkpoint of exactly that in-memory
/// state. Bloom filters are not serialized — they are rebuilt from the
/// data blocks on restore when enabled.
struct Manifest {
  Options options;
  std::vector<Record> memtable_records;       ///< In key order.
  std::vector<std::vector<LeafMeta>> levels;  ///< levels[0] is L1.
};

/// Serializes the live state of `tree` into a portable byte string
/// (little-endian, versioned, checksummed).
std::string EncodeManifest(const LsmTree& tree);

/// Parses a manifest; fails with Corruption on malformed input.
StatusOr<Manifest> DecodeManifest(const std::string& data);

/// Convenience: EncodeManifest + atomic-ish write to `path`.
Status SaveManifestToFile(const LsmTree& tree, const std::string& path);

/// Reads and decodes a manifest file.
StatusOr<Manifest> LoadManifestFromFile(const std::string& path);

}  // namespace lsmssd

#endif  // LSMSSD_LSM_MANIFEST_H_
