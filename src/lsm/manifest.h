#ifndef LSMSSD_LSM_MANIFEST_H_
#define LSMSSD_LSM_MANIFEST_H_

#include <string>
#include <vector>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/lsm/level.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

class LsmTree;

/// A point-in-time snapshot of an LSM tree's *metadata*: the options, the
/// memtable contents, and every level's leaf directory (block ids + key
/// ranges + counts). Data blocks themselves live on the block device; a
/// manifest plus a persistent device (FileBlockDevice with
/// remove_on_close=false) is enough to reopen the index after a restart.
///
/// The paper observes (Section V, footnote 1) that the internal B+tree
/// nodes can be reconstructed from data blocks and need not be persisted;
/// the manifest is the practical checkpoint of exactly that in-memory
/// state. Bloom filters are not serialized — they are rebuilt from the
/// data blocks on restore when enabled.
/// Durable bounds of the value log at checkpoint time (zeros when
/// key–value separation is off). `head_file`/`head_offset` is the
/// durable append frontier — every pointer the manifest's tree state
/// references ends at or before it — and `tail_file` is the oldest
/// segment still holding live values; segments below it were fully
/// rewritten by GC and are deleted once the manifest that says so is
/// durable (DESIGN.md §11).
struct VlogManifestState {
  uint64_t head_file = 0;
  uint64_t head_offset = 0;
  uint64_t tail_file = 0;
};

struct Manifest {
  Options options;
  std::vector<Record> memtable_records;       ///< In key order.
  std::vector<std::vector<LeafMeta>> levels;  ///< levels[0] is L1.
  VlogManifestState vlog;                     ///< Zeros when vlog is off.
};

/// Serializes the live state of `tree` into a portable byte string
/// (little-endian, versioned, checksummed).
std::string EncodeManifest(const LsmTree& tree);

/// As above, recording the value-log bounds (Db's checkpoint path).
std::string EncodeManifest(const LsmTree& tree, const VlogManifestState& vlog);

/// Parses a manifest; fails with Corruption on malformed input.
StatusOr<Manifest> DecodeManifest(const std::string& data);

/// Convenience: EncodeManifest + atomic-ish write to `path`.
Status SaveManifestToFile(const LsmTree& tree, const std::string& path);

/// Reads and decodes a manifest file.
StatusOr<Manifest> LoadManifestFromFile(const std::string& path);

}  // namespace lsmssd

#endif  // LSMSSD_LSM_MANIFEST_H_
