#ifndef LSMSSD_LSM_MERGE_H_
#define LSMSSD_LSM_MERGE_H_

#include <cstdint>
#include <vector>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/lsm/level.h"
#include "src/storage/block_device.h"
#include "src/util/rate_limiter.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Input side of a merge: either a batch of records drained from the
/// memory-resident L0, or a contiguous range of leaves of an on-SSD level.
struct MergeSource {
  /// Records from L0, in key order (used when `level == nullptr`). The
  /// caller extracts them from the memtable before merging.
  std::vector<Record> l0_records;

  /// Source level (>= 1) and the half-open leaf range [leaf_begin,
  /// leaf_end) selected by the merge policy. The merge removes these leaves
  /// from the source when it completes.
  Level* level = nullptr;
  size_t leaf_begin = 0;
  size_t leaf_end = 0;

  bool from_l0() const { return level == nullptr; }

  static MergeSource FromL0(std::vector<Record> records) {
    MergeSource s;
    s.l0_records = std::move(records);
    return s;
  }
  static MergeSource FromLevel(Level* level, size_t begin, size_t end) {
    MergeSource s;
    s.level = level;
    s.leaf_begin = begin;
    s.leaf_end = end;
    return s;
  }
};

/// Cost breakdown of one merge, in data-block writes.
struct MergeResult {
  /// New Z blocks written by the merge itself (including the in-merge
  /// coalesce of the final partial output block, when needed).
  uint64_t output_blocks_written = 0;
  /// Input blocks reused unmodified in the output (Section II-B
  /// block-preserving merge); each preserved block saves one write and one
  /// read.
  uint64_t blocks_preserved = 0;
  /// Records consumed from the source (before consolidation).
  uint64_t source_records = 0;
  /// Blocks written repairing/compacting the destination level afterwards
  /// (Cases 3-4).
  uint64_t target_maintenance_writes = 0;
  /// Blocks written repairing/compacting the source level after the merged
  /// range was removed (Cases 1-2). Zero for L0 sources.
  uint64_t source_maintenance_writes = 0;
  uint64_t target_pairwise_repairs = 0;
  uint64_t source_pairwise_repairs = 0;
  bool target_compacted = false;
  bool source_compacted = false;
  /// Number of overlapping destination leaves the merge rewrote or
  /// preserved (|Y|); useful for verifying the ChooseBest bound (Thm 2).
  uint64_t overlapping_target_blocks = 0;
};

/// Executes the paper's generalized merge (Section II-B): takes a list of
/// source blocks/records X, finds the overlapping leaves Y of the target,
/// streams both in key order consolidating duplicate keys, and emits Z —
/// reusing input blocks wherever the greedy block-preserving check allows.
/// Afterwards it restores both waste constraints (adjacent-pair coalesce,
/// one-pass compaction) on the source and target levels.
class MergeExecutor {
 public:
  /// `target` is the level merged into; `target_is_bottom` enables
  /// tombstone dropping (a delete reaching the lowest level has nothing
  /// left to cancel). `preserve_blocks` toggles the block-preserving
  /// optimization (off reproduces the paper's "-P" policy variants).
  /// `rate_limiter` (optional) is charged one token per output data-block
  /// write as the merge produces them. Charging never blocks — the debt is
  /// slept off by the compaction worker *between* steps, with no locks
  /// held — so enabling the limiter changes merge cadence, never block
  /// layout, block counts, or the paper's write-cost metrics.
  MergeExecutor(const Options& options, BlockDevice* device, Level* target,
                bool target_is_bottom, bool preserve_blocks,
                RateLimiter* rate_limiter = nullptr);

  /// Runs the merge. On success the source range has been removed from its
  /// level (L0 sources are already drained by the caller) and the target
  /// satisfies both waste constraints.
  ///
  /// Failure atomicity: the merge's commit point is the target splice. A
  /// failure *before* it (corrupt input block, ResourceExhausted device)
  /// frees every output block this merge wrote, settles the slack ledger,
  /// and leaves both levels untouched — the pre-merge tree stays fully
  /// readable and the device's live-block count returns to its pre-merge
  /// value. A failure *after* it (during constraint-restoring
  /// maintenance) leaves a valid but possibly waste-violating tree; the
  /// error still surfaces to the caller.
  StatusOr<MergeResult> Merge(MergeSource source);

 private:
  /// Cross-cutting bookkeeping for failure atomicity.
  struct MergeScratch {
    /// Output blocks written and currently owned by this merge (removed
    /// again when the merge itself frees one, or when the splice hands
    /// ownership to the target level).
    std::vector<BlockId> owned;
    bool ledger_open = false;  ///< OnMergeStart ran, OnMergeEnd has not.
    bool installed = false;    ///< The target splice (commit point) ran.
    uint64_t target_empty_before = 0;
  };

  StatusOr<MergeResult> MergeBody(MergeSource source, MergeScratch* scratch);

  const Options& options_;
  BlockDevice* device_;
  Level* target_;
  bool target_is_bottom_;
  bool preserve_blocks_;
  RateLimiter* rate_limiter_;  ///< May be null (unpaced).
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_MERGE_H_
