#include "src/lsm/lsm_tree.h"

#include <algorithm>


#include "src/lsm/merge.h"
#include "src/util/logging.h"

namespace lsmssd {

StatusOr<std::unique_ptr<LsmTree>> LsmTree::Open(
    const Options& options, BlockDevice* device,
    std::unique_ptr<MergePolicy> policy) {
  if (device == nullptr) return Status::InvalidArgument("null device");
  LSMSSD_RETURN_IF_ERROR(
      options.Validate(static_cast<uint32_t>(device->block_size())));
  if (policy == nullptr) return Status::InvalidArgument("null merge policy");
  return std::unique_ptr<LsmTree>(
      new LsmTree(options, device, std::move(policy)));
}

LsmTree::LsmTree(const Options& options, BlockDevice* device,
                 std::unique_ptr<MergePolicy> policy)
    : options_(options),
      cache_device_(options.cache_blocks > 0
                        ? std::make_unique<CachedBlockDevice>(
                              device, options.cache_blocks)
                        : nullptr),
      device_(cache_device_ != nullptr ? cache_device_.get() : device),
      policy_(std::move(policy)) {
  stats_.EnsureLevels(2);
  // Strategic pre-creation of levels (Section V-A's open question): an
  // empty deep level makes merges into it cheap from the start.
  for (size_t i = 0; i < options_.initial_levels; ++i) AddLevel();
}

const Level& LsmTree::level(size_t i) const {
  LSMSSD_CHECK_GE(i, 1u);
  LSMSSD_CHECK_LT(i, num_levels());
  return *levels_[i - 1];
}

Level* LsmTree::mutable_level(size_t i) {
  LSMSSD_CHECK_GE(i, 1u);
  LSMSSD_CHECK_LT(i, num_levels());
  return levels_[i - 1].get();
}

void LsmTree::set_policy(std::unique_ptr<MergePolicy> policy) {
  LSMSSD_CHECK(policy != nullptr);
  policy_ = std::move(policy);
}

Status LsmTree::Put(Key key, std::string_view payload) {
  if (payload.size() != options_.stored_payload_size()) {
    return Status::InvalidArgument("payload must be exactly payload_size");
  }
  if (key > MaxKeyForSize(options_.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }
  memtable_.Put(key, std::string(payload));
  ++stats_.puts;
  return MaybeMerge();
}

Status LsmTree::Delete(Key key) {
  if (key > MaxKeyForSize(options_.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }
  memtable_.Delete(key);
  ++stats_.deletes;
  return MaybeMerge();
}

Status LsmTree::PutNoMerge(Key key, std::string_view payload) {
  if (payload.size() != options_.stored_payload_size()) {
    return Status::InvalidArgument("payload must be exactly payload_size");
  }
  if (key > MaxKeyForSize(options_.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }
  memtable_.Put(key, std::string(payload));
  ++stats_.puts;
  return Status::OK();
}

Status LsmTree::DeleteNoMerge(Key key) {
  if (key > MaxKeyForSize(options_.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }
  memtable_.Delete(key);
  ++stats_.deletes;
  return Status::OK();
}

bool LsmTree::MemtableAtCapacity() const {
  return memtable_.size() >=
         options_.level0_capacity_blocks * options_.records_per_block();
}

void LsmTree::SealMemtable() {
  if (memtable_.empty()) return;
  sealed_.push_back(std::make_unique<Memtable>(std::move(memtable_)));
  memtable_ = Memtable();
}

uint64_t LsmTree::sealed_records() const {
  uint64_t total = 0;
  for (const auto& m : sealed_) total += m->size();
  return total;
}

bool LsmTree::HasCompactionWork() const {
  if (!sealed_.empty()) return true;
  if (L0BufferOverflowing()) return true;
  for (size_t i = 1; i < num_levels(); ++i) {
    if (LevelOverflowing(i)) return true;
  }
  return false;
}

bool LsmTree::L0BufferOverflowing() const {
  return l0_buffer_.size() >=
         options_.level0_capacity_blocks * options_.records_per_block();
}

bool LsmTree::L0BufferBacklogged() const {
  return l0_buffer_.size() >= 2 * options_.level0_capacity_blocks *
                                  options_.records_per_block();
}

Status LsmTree::FlushSealedStep(Memtable* m) {
  LSMSSD_CHECK(m != nullptr);
  // Absorb `m` into the memory-resident L0 buffer — pure memory, no
  // device I/O. Newest wins: `m` is newer than everything the buffer
  // already holds (it absorbed only earlier seals), so plain Put/Delete
  // overwrite is correct. Records leave memory only when the buffer
  // itself overflows (MergeOverflowStep), through the same policy-
  // windowed L0 merges the inline path runs against its memtable — which
  // is what keeps amortized block writes equal to inline mode. Draining
  // each sealed memtable straight to L1 instead (windowed or bulk) costs
  // 4-5x the blocks: windows pay ~one target-block rewrite per record on
  // the ever-sparser tail, and a bulk merge rewrites the whole target.
  for (Record& r : m->ExtractAll()) {
    if (r.is_tombstone()) {
      l0_buffer_.Delete(r.key);
    } else {
      l0_buffer_.Put(r.key, std::move(r.payload));
    }
  }
  return Status::OK();
}

bool LsmTree::PopSealedIfDrained() {
  if (sealed_.empty() || !sealed_.front()->empty()) return false;
  sealed_.pop_front();
  return true;
}

std::vector<size_t> LsmTree::OverflowingMergeSources() const {
  // The L0 buffer is the shallowest "level": it spills a policy-selected
  // window once it reaches K0 capacity, exactly like the inline path's
  // overflow test on its memtable.
  std::vector<size_t> sources;
  if (L0BufferOverflowing()) sources.push_back(0);
  for (size_t i = 1; i < num_levels(); ++i) {
    if (LevelOverflowing(i)) sources.push_back(i);
  }
  return sources;
}

StatusOr<LsmTree::CompactStep> LsmTree::MergeSourceStep(size_t source) {
  if (source == 0) {
    if (!L0BufferOverflowing()) return CompactStep::kNone;
    if (num_levels() == 1) AddLevel();
    compacting_l0_ = &l0_buffer_;
    Status st = ExecuteMerge(0);
    compacting_l0_ = nullptr;
    LSMSSD_RETURN_IF_ERROR(st);
    return CompactStep::kMerge;
  }
  if (source >= num_levels() || !LevelOverflowing(source)) {
    return CompactStep::kNone;
  }
  if (source + 1 == num_levels()) AddLevel();
  LSMSSD_RETURN_IF_ERROR(ExecuteMerge(source));
  return CompactStep::kMerge;
}

StatusOr<LsmTree::CompactStep> LsmTree::MergeOverflowStep() {
  const std::vector<size_t> sources = OverflowingMergeSources();
  if (sources.empty()) return CompactStep::kNone;
  return MergeSourceStep(sources.front());
}

StatusOr<LsmTree::CompactStep> LsmTree::BackgroundCompactStep() {
  // Sealed memtables first: they bound the write path's queue, and a
  // flush step fully absorbs the front one into the L0 buffer (pure
  // memory — see FlushSealedStep), so the pop below always fires. Device
  // I/O happens only in MergeOverflowStep once the buffer overflows.
  // ... unless the buffer is backlogged: then merges go first so the
  // buffer stays bounded and the full queue throttles the writers.
  if (!L0BufferBacklogged()) {
    if (Memtable* front = FrontSealed()) {
      LSMSSD_RETURN_IF_ERROR(FlushSealedStep(front));
      PopSealedIfDrained();
      return CompactStep::kFlush;
    }
  }
  return MergeOverflowStep();
}

const Record* LsmTree::FindInMemtables(Key key) const {
  if (const Record* r = memtable_.Get(key)) return r;
  for (auto it = sealed_.rbegin(); it != sealed_.rend(); ++it) {
    if (const Record* r = (*it)->Get(key)) return r;
  }
  // The L0 buffer holds absorbed seals — older than anything above.
  return l0_buffer_.Get(key);
}

StatusOr<std::string> LsmTree::GetFromLevels(Key key) {
  for (size_t i = 1; i < num_levels(); ++i) {
    Record r;
    Status st = level(i).Lookup(key, &r);
    if (st.ok()) {
      if (r.is_tombstone()) return Status::NotFound("deleted");
      return r.payload;
    }
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound("no such key");
}

StatusOr<std::string> LsmTree::Get(Key key) {
  ++stats_.gets;
  if (const Record* r = FindInMemtables(key)) {
    if (r->is_tombstone()) return Status::NotFound("deleted");
    return r->payload;
  }
  return GetFromLevels(key);
}

std::vector<Record> LsmTree::MemtableSnapshot() const {
  // Newest first with try_emplace: the first version seen for a key wins,
  // so active shadows sealed and newer sealed shadows older. Tombstones
  // are kept — they must survive to cancel versions in the levels.
  std::map<Key, Record> merged;
  auto absorb = [&merged](const Memtable& m) {
    for (Record& r : m.Slice(0, m.size())) {
      merged.try_emplace(r.key, std::move(r));
    }
  };
  absorb(memtable_);
  for (auto it = sealed_.rbegin(); it != sealed_.rend(); ++it) absorb(**it);
  absorb(l0_buffer_);  // Oldest memory-resident state.
  std::vector<Record> out;
  out.reserve(merged.size());
  for (auto& [key, r] : merged) out.push_back(std::move(r));
  return out;
}

Status LsmTree::Scan(Key lo, Key hi,
                     std::vector<std::pair<Key, std::string>>* out) {
  ++stats_.scans;
  if (lo > hi) return Status::InvalidArgument("scan range inverted");
  std::unique_ptr<Iterator> it = NewIterator();
  for (it->Seek(lo); it->Valid() && it->key() <= hi; it->Next()) {
    out->emplace_back(it->key(), it->value());
  }
  return it->status();
}

bool LsmTree::LevelOverflowing(size_t i) const {
  if (i == 0) {
    const uint64_t capacity_records =
        options_.level0_capacity_blocks * options_.records_per_block();
    return l0().size() >= capacity_records;
  }
  return level(i).size_blocks() > LevelCapacityBlocks(i);
}

Status LsmTree::MaybeMerge() {
  size_t i = 0;
  while (i < num_levels()) {
    if (!LevelOverflowing(i)) {
      ++i;
      continue;
    }
    if (i + 1 == num_levels()) AddLevel();
    LSMSSD_RETURN_IF_ERROR(ExecuteMerge(i));
    // Re-check the same level: a partial merge may leave it overflowing
    // (e.g., right after a big full merge landed from above).
  }
  return Status::OK();
}

void LsmTree::AddLevel() {
  levels_.push_back(
      std::make_unique<Level>(options_, device_, levels_.size() + 1));
  stats_.EnsureLevels(num_levels());
}

Status LsmTree::ExecuteMerge(size_t source_level) {
  const size_t target_index = source_level + 1;
  LSMSSD_CHECK_LT(target_index, num_levels());
  MergeSelection sel = policy_->SelectMerge(*this, source_level);

  Level* target = mutable_level(target_index);
  const bool bottom = IsBottomLevel(target_index);
  MergeExecutor executor(options_, device_, target, bottom,
                         options_.preserve_blocks, merge_rate_limiter_);

  MergeSource source;
  // L0 input is *copied* out of the memtable and erased only after the
  // merge commits, so an aborted merge (corrupt target leaf, full device)
  // leaves L0 — and with it every not-yet-durable write — intact.
  size_t l0_erase_begin = 0;
  size_t l0_erase_count = 0;
  if (source_level == 0) {
    l0_erase_begin = sel.full ? 0 : sel.record_begin;
    l0_erase_count = sel.full ? l0().size() : sel.record_count;
    std::vector<Record> records = l0().Slice(l0_erase_begin, l0_erase_count);
    if (records.empty()) {
      return Status::Internal("policy selected an empty L0 range");
    }
    source = MergeSource::FromL0(std::move(records));
  } else {
    Level* src = mutable_level(source_level);
    const size_t begin = sel.full ? 0 : sel.leaf_begin;
    const size_t end =
        sel.full ? src->num_leaves() : sel.leaf_begin + sel.leaf_count;
    if (begin >= end || end > src->num_leaves()) {
      return Status::Internal("policy selected an invalid leaf range");
    }
    source = MergeSource::FromLevel(src, begin, end);
  }

  auto result_or = executor.Merge(std::move(source));
  if (!result_or.ok()) return result_or.status();
  if (source_level == 0) l0().EraseRange(l0_erase_begin, l0_erase_count);
  const MergeResult& r = result_or.value();

  stats_.EnsureLevels(num_levels());
  ++stats_.merges_into[target_index];
  if (sel.full) ++stats_.full_merges_into[target_index];
  stats_.blocks_written_into[target_index] += r.output_blocks_written;
  stats_.maintenance_blocks_written[target_index] +=
      r.target_maintenance_writes;
  stats_.records_merged_into[target_index] += r.source_records;
  stats_.blocks_preserved_into[target_index] += r.blocks_preserved;
  stats_.pairwise_repairs[target_index] += r.target_pairwise_repairs;
  if (r.target_compacted) ++stats_.compactions[target_index];
  if (source_level >= 1) {
    stats_.maintenance_blocks_written[source_level] +=
        r.source_maintenance_writes;
    stats_.pairwise_repairs[source_level] += r.source_pairwise_repairs;
    if (r.source_compacted) ++stats_.compactions[source_level];
  }
  return Status::OK();
}

uint64_t LsmTree::TotalRecords() const {
  uint64_t total = memtable_.size() + sealed_records() + l0_buffer_.size();
  for (size_t i = 1; i < num_levels(); ++i) total += level(i).record_count();
  return total;
}

uint64_t LsmTree::ApproximateDataBytes() const {
  return TotalRecords() * options_.record_size();
}

Status LsmTree::CheckInvariants(bool deep) const {
  for (size_t i = 1; i < num_levels(); ++i) {
    LSMSSD_RETURN_IF_ERROR(level(i).CheckInvariants(deep));
    // Levels may only exceed capacity transiently inside MaybeMerge.
    if (level(i).size_blocks() > LevelCapacityBlocks(i)) {
      return Status::Internal("level above capacity at rest");
    }
  }
  return Status::OK();
}

}  // namespace lsmssd
