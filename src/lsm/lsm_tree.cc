#include "src/lsm/lsm_tree.h"

#include <algorithm>


#include "src/lsm/merge.h"
#include "src/util/logging.h"

namespace lsmssd {

StatusOr<std::unique_ptr<LsmTree>> LsmTree::Open(
    const Options& options, BlockDevice* device,
    std::unique_ptr<MergePolicy> policy) {
  if (device == nullptr) return Status::InvalidArgument("null device");
  LSMSSD_RETURN_IF_ERROR(
      options.Validate(static_cast<uint32_t>(device->block_size())));
  if (policy == nullptr) return Status::InvalidArgument("null merge policy");
  return std::unique_ptr<LsmTree>(
      new LsmTree(options, device, std::move(policy)));
}

LsmTree::LsmTree(const Options& options, BlockDevice* device,
                 std::unique_ptr<MergePolicy> policy)
    : options_(options),
      cache_device_(options.cache_blocks > 0
                        ? std::make_unique<CachedBlockDevice>(
                              device, options.cache_blocks)
                        : nullptr),
      device_(cache_device_ != nullptr ? cache_device_.get() : device),
      policy_(std::move(policy)) {
  stats_.EnsureLevels(2);
  // Strategic pre-creation of levels (Section V-A's open question): an
  // empty deep level makes merges into it cheap from the start.
  for (size_t i = 0; i < options_.initial_levels; ++i) AddLevel();
}

const Level& LsmTree::level(size_t i) const {
  LSMSSD_CHECK_GE(i, 1u);
  LSMSSD_CHECK_LT(i, num_levels());
  return *levels_[i - 1];
}

Level* LsmTree::mutable_level(size_t i) {
  LSMSSD_CHECK_GE(i, 1u);
  LSMSSD_CHECK_LT(i, num_levels());
  return levels_[i - 1].get();
}

void LsmTree::set_policy(std::unique_ptr<MergePolicy> policy) {
  LSMSSD_CHECK(policy != nullptr);
  policy_ = std::move(policy);
}

Status LsmTree::Put(Key key, std::string_view payload) {
  if (payload.size() != options_.payload_size) {
    return Status::InvalidArgument("payload must be exactly payload_size");
  }
  if (key > MaxKeyForSize(options_.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }
  memtable_.Put(key, std::string(payload));
  ++stats_.puts;
  return MaybeMerge();
}

Status LsmTree::Delete(Key key) {
  if (key > MaxKeyForSize(options_.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }
  memtable_.Delete(key);
  ++stats_.deletes;
  return MaybeMerge();
}

StatusOr<std::string> LsmTree::Get(Key key) {
  ++stats_.gets;
  if (const Record* r = memtable_.Get(key)) {
    if (r->is_tombstone()) return Status::NotFound("deleted");
    return r->payload;
  }
  for (size_t i = 1; i < num_levels(); ++i) {
    Record r;
    Status st = level(i).Lookup(key, &r);
    if (st.ok()) {
      if (r.is_tombstone()) return Status::NotFound("deleted");
      return r.payload;
    }
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound("no such key");
}

Status LsmTree::Scan(Key lo, Key hi,
                     std::vector<std::pair<Key, std::string>>* out) {
  ++stats_.scans;
  if (lo > hi) return Status::InvalidArgument("scan range inverted");
  std::unique_ptr<Iterator> it = NewIterator();
  for (it->Seek(lo); it->Valid() && it->key() <= hi; it->Next()) {
    out->emplace_back(it->key(), it->value());
  }
  return it->status();
}

bool LsmTree::LevelOverflowing(size_t i) const {
  if (i == 0) {
    const uint64_t capacity_records =
        options_.level0_capacity_blocks * options_.records_per_block();
    return memtable_.size() >= capacity_records;
  }
  return level(i).size_blocks() > LevelCapacityBlocks(i);
}

Status LsmTree::MaybeMerge() {
  size_t i = 0;
  while (i < num_levels()) {
    if (!LevelOverflowing(i)) {
      ++i;
      continue;
    }
    if (i + 1 == num_levels()) AddLevel();
    LSMSSD_RETURN_IF_ERROR(ExecuteMerge(i));
    // Re-check the same level: a partial merge may leave it overflowing
    // (e.g., right after a big full merge landed from above).
  }
  return Status::OK();
}

void LsmTree::AddLevel() {
  levels_.push_back(
      std::make_unique<Level>(options_, device_, levels_.size() + 1));
  stats_.EnsureLevels(num_levels());
}

Status LsmTree::ExecuteMerge(size_t source_level) {
  const size_t target_index = source_level + 1;
  LSMSSD_CHECK_LT(target_index, num_levels());
  MergeSelection sel = policy_->SelectMerge(*this, source_level);

  Level* target = mutable_level(target_index);
  const bool bottom = IsBottomLevel(target_index);
  MergeExecutor executor(options_, device_, target, bottom,
                         options_.preserve_blocks);

  MergeSource source;
  // L0 input is *copied* out of the memtable and erased only after the
  // merge commits, so an aborted merge (corrupt target leaf, full device)
  // leaves L0 — and with it every not-yet-durable write — intact.
  size_t l0_erase_begin = 0;
  size_t l0_erase_count = 0;
  if (source_level == 0) {
    l0_erase_begin = sel.full ? 0 : sel.record_begin;
    l0_erase_count = sel.full ? memtable_.size() : sel.record_count;
    std::vector<Record> records =
        memtable_.Slice(l0_erase_begin, l0_erase_count);
    if (records.empty()) {
      return Status::Internal("policy selected an empty L0 range");
    }
    source = MergeSource::FromL0(std::move(records));
  } else {
    Level* src = mutable_level(source_level);
    const size_t begin = sel.full ? 0 : sel.leaf_begin;
    const size_t end =
        sel.full ? src->num_leaves() : sel.leaf_begin + sel.leaf_count;
    if (begin >= end || end > src->num_leaves()) {
      return Status::Internal("policy selected an invalid leaf range");
    }
    source = MergeSource::FromLevel(src, begin, end);
  }

  auto result_or = executor.Merge(std::move(source));
  if (!result_or.ok()) return result_or.status();
  if (source_level == 0) memtable_.EraseRange(l0_erase_begin, l0_erase_count);
  const MergeResult& r = result_or.value();

  stats_.EnsureLevels(num_levels());
  ++stats_.merges_into[target_index];
  if (sel.full) ++stats_.full_merges_into[target_index];
  stats_.blocks_written_into[target_index] += r.output_blocks_written;
  stats_.maintenance_blocks_written[target_index] +=
      r.target_maintenance_writes;
  stats_.records_merged_into[target_index] += r.source_records;
  stats_.blocks_preserved_into[target_index] += r.blocks_preserved;
  stats_.pairwise_repairs[target_index] += r.target_pairwise_repairs;
  if (r.target_compacted) ++stats_.compactions[target_index];
  if (source_level >= 1) {
    stats_.maintenance_blocks_written[source_level] +=
        r.source_maintenance_writes;
    stats_.pairwise_repairs[source_level] += r.source_pairwise_repairs;
    if (r.source_compacted) ++stats_.compactions[source_level];
  }
  return Status::OK();
}

uint64_t LsmTree::TotalRecords() const {
  uint64_t total = memtable_.size();
  for (size_t i = 1; i < num_levels(); ++i) total += level(i).record_count();
  return total;
}

uint64_t LsmTree::ApproximateDataBytes() const {
  return TotalRecords() * options_.record_size();
}

Status LsmTree::CheckInvariants(bool deep) const {
  for (size_t i = 1; i < num_levels(); ++i) {
    LSMSSD_RETURN_IF_ERROR(level(i).CheckInvariants(deep));
    // Levels may only exceed capacity transiently inside MaybeMerge.
    if (level(i).size_blocks() > LevelCapacityBlocks(i)) {
      return Status::Internal("level above capacity at rest");
    }
  }
  return Status::OK();
}

}  // namespace lsmssd
