#include "src/lsm/memtable.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lsmssd {

void Memtable::Put(Key key, std::string payload) {
  entries_[key] = Record::Put(key, std::move(payload));
}

void Memtable::Delete(Key key) { entries_[key] = Record::Tombstone(key); }

const Record* Memtable::Get(Key key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Key Memtable::min_key() const {
  LSMSSD_CHECK(!entries_.empty());
  return entries_.begin()->first;
}

Key Memtable::max_key() const {
  LSMSSD_CHECK(!entries_.empty());
  return entries_.rbegin()->first;
}

std::vector<Key> Memtable::SortedKeys() const {
  std::vector<Key> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, record] : entries_) keys.push_back(key);
  return keys;
}

std::vector<Record> Memtable::Slice(size_t begin, size_t count) const {
  std::vector<Record> out;
  if (begin >= entries_.size()) return out;
  count = std::min(count, entries_.size() - begin);
  out.reserve(count);
  auto it = entries_.begin();
  std::advance(it, static_cast<ptrdiff_t>(begin));
  for (size_t i = 0; i < count; ++i, ++it) out.push_back(it->second);
  return out;
}

std::vector<Record> Memtable::Extract(size_t begin, size_t count) {
  std::vector<Record> out;
  if (begin >= entries_.size()) return out;
  count = std::min(count, entries_.size() - begin);
  out.reserve(count);
  auto it = entries_.begin();
  std::advance(it, static_cast<ptrdiff_t>(begin));
  for (size_t i = 0; i < count; ++i) {
    out.push_back(std::move(it->second));
    it = entries_.erase(it);
  }
  return out;
}

void Memtable::EraseRange(size_t begin, size_t count) {
  if (begin >= entries_.size()) return;
  count = std::min(count, entries_.size() - begin);
  auto it = entries_.begin();
  std::advance(it, static_cast<ptrdiff_t>(begin));
  for (size_t i = 0; i < count; ++i) it = entries_.erase(it);
}

std::vector<Record> Memtable::ExtractAll() {
  std::vector<Record> out;
  out.reserve(entries_.size());
  for (auto& [key, record] : entries_) out.push_back(std::move(record));
  entries_.clear();
  return out;
}

size_t Memtable::UpperBoundIndex(Key key) const {
  auto it = entries_.upper_bound(key);
  return static_cast<size_t>(std::distance(entries_.begin(), it));
}

void Memtable::CollectRange(Key lo, Key hi, std::vector<Record>* out) const {
  for (auto it = entries_.lower_bound(lo);
       it != entries_.end() && it->first <= hi; ++it) {
    out->push_back(it->second);
  }
}

}  // namespace lsmssd
