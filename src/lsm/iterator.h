#ifndef LSMSSD_LSM_ITERATOR_H_
#define LSMSSD_LSM_ITERATOR_H_

#include <memory>
#include <string>

#include "src/format/record.h"
#include "src/util/status.h"

namespace lsmssd {

/// Forward iterator over the live (non-deleted, consolidated) records of
/// an LSM tree, in key order. Obtained from LsmTree::NewIterator(); the
/// tree must not be modified while an iterator is open. Iterators from
/// Db::NewIterator() enforce that themselves by holding the Db's shared
/// tree lock for their lifetime (writers wait until the iterator is
/// destroyed); bare-tree callers must not mutate the tree while
/// iterating.
///
/// Usage:
///   auto it = tree.NewIterator();
///   for (it->SeekToFirst(); it->Valid(); it->Next()) {
///     use(it->key(), it->value());
///   }
///   LSMSSD_CHECK(it->status().ok());
class Iterator {
 public:
  virtual ~Iterator() = default;

  /// True iff the iterator is positioned on a record. key()/value() may
  /// only be called when Valid().
  virtual bool Valid() const = 0;

  /// Positions on the smallest key (invalid if the tree is empty).
  virtual void SeekToFirst() = 0;

  /// Positions on the first record with key >= target.
  virtual void Seek(Key target) = 0;

  /// Advances to the next live record. Requires Valid().
  virtual void Next() = 0;

  virtual Key key() const = 0;
  virtual const std::string& value() const = 0;

  /// Non-OK if an I/O or corruption error interrupted iteration; the
  /// iterator becomes invalid in that case.
  virtual Status status() const = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_LSM_ITERATOR_H_
