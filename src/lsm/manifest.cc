#include "src/lsm/manifest.h"

#include <cstdio>
#include <cstring>

#include "src/lsm/lsm_tree.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

// v1 manifests predate key–value separation: no vlog_value_threshold
// in the options block and no vlog bounds after the levels. They are
// still decoded (threshold 0, vlog bounds zero); new manifests are
// always written as v2.
constexpr char kMagicV1[8] = {'L', 'S', 'M', 'S', 'S', 'D', '0', '1'};
constexpr char kMagicV2[8] = {'L', 'S', 'M', 'S', 'S', 'D', '0', '2'};

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked little-endian reader.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(
                static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadDouble(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_, pos_, n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

/// FNV-1a over the payload; cheap manifest integrity check.
uint64_t Checksum(const std::string& data, size_t begin, size_t end) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = begin; i < end; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void EncodeOptions(const Options& o, std::string* out) {
  PutU64(out, o.block_size);
  PutU64(out, o.key_size);
  PutU64(out, o.payload_size);
  PutU64(out, o.level0_capacity_blocks);
  PutDouble(out, o.gamma);
  PutDouble(out, o.epsilon);
  PutDouble(out, o.delta);
  PutU64(out, o.preserve_blocks ? 1 : 0);
  PutU64(out, o.cache_blocks);
  PutU64(out, o.bloom_bits_per_key);
  PutU64(out, o.annihilate_delete_put ? 1 : 0);
  PutU64(out, o.vlog_value_threshold);
}

bool DecodeOptions(Reader* r, Options* o, bool v2) {
  uint64_t u;
  if (!r->ReadU64(&u)) return false;
  o->block_size = u;
  if (!r->ReadU64(&u)) return false;
  o->key_size = u;
  if (!r->ReadU64(&u)) return false;
  o->payload_size = u;
  if (!r->ReadU64(&o->level0_capacity_blocks)) return false;
  if (!r->ReadDouble(&o->gamma)) return false;
  if (!r->ReadDouble(&o->epsilon)) return false;
  if (!r->ReadDouble(&o->delta)) return false;
  if (!r->ReadU64(&u)) return false;
  o->preserve_blocks = (u != 0);
  if (!r->ReadU64(&u)) return false;
  o->cache_blocks = u;
  if (!r->ReadU64(&u)) return false;
  o->bloom_bits_per_key = u;
  if (!r->ReadU64(&u)) return false;
  o->annihilate_delete_put = (u != 0);
  if (v2) {
    if (!r->ReadU64(&u)) return false;
    o->vlog_value_threshold = u;
  } else {
    o->vlog_value_threshold = 0;
  }
  return true;
}

void EncodeRecord(const Record& record, std::string* out) {
  PutU64(out, static_cast<uint64_t>(record.type));
  PutU64(out, record.key);
  PutU64(out, record.payload.size());
  out->append(record.payload);
}

bool DecodeRecord(Reader* r, Record* record) {
  uint64_t type, payload_size;
  if (!r->ReadU64(&type)) return false;
  if (type > static_cast<uint64_t>(RecordType::kDelete)) return false;
  record->type = static_cast<RecordType>(type);
  if (!r->ReadU64(&record->key)) return false;
  if (!r->ReadU64(&payload_size)) return false;
  if (payload_size > (1u << 20)) return false;  // Sanity cap.
  return r->ReadBytes(payload_size, &record->payload);
}

}  // namespace

std::string EncodeManifest(const LsmTree& tree) {
  return EncodeManifest(tree, VlogManifestState());
}

std::string EncodeManifest(const LsmTree& tree,
                           const VlogManifestState& vlog) {
  std::string out(kMagicV2, sizeof(kMagicV2));
  std::string body;
  EncodeOptions(tree.options(), &body);

  // Memory-resident records in key order: the active memtable plus any
  // sealed (queued-for-flush) memtables, consolidated newest-wins. A
  // checkpoint taken while background compaction has work queued must
  // capture those records, or deleting covered WAL segments loses them.
  const std::vector<Record> memtable = tree.MemtableSnapshot();
  PutU64(&body, memtable.size());
  for (const Record& r : memtable) EncodeRecord(r, &body);

  // Leaf directories of every on-SSD level.
  PutU64(&body, tree.num_levels() - 1);
  for (size_t i = 1; i < tree.num_levels(); ++i) {
    const Level& level = tree.level(i);
    PutU64(&body, level.num_leaves());
    for (const LeafMeta& leaf : level.leaves()) {
      PutU64(&body, leaf.block);
      PutU64(&body, leaf.min_key);
      PutU64(&body, leaf.max_key);
      PutU64(&body, leaf.count);
    }
  }

  // Value-log bounds (zeros when separation is off).
  PutU64(&body, vlog.head_file);
  PutU64(&body, vlog.head_offset);
  PutU64(&body, vlog.tail_file);

  out += body;
  PutU64(&out, Checksum(out, sizeof(kMagicV2), out.size()));
  return out;
}

StatusOr<Manifest> DecodeManifest(const std::string& data) {
  if (data.size() < sizeof(kMagicV2) + 8) {
    return Status::Corruption("bad manifest magic");
  }
  const bool v2 = std::memcmp(data.data(), kMagicV2, sizeof(kMagicV2)) == 0;
  if (!v2 && std::memcmp(data.data(), kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status::Corruption("bad manifest magic");
  }
  // Verify the trailing checksum over everything between magic and it.
  {
    uint64_t stored = 0;
    const size_t tail = data.size() - 8;
    for (int i = 0; i < 8; ++i) {
      stored |= static_cast<uint64_t>(static_cast<uint8_t>(data[tail + i]))
                << (8 * i);
    }
    if (stored != Checksum(data, sizeof(kMagicV2), tail)) {
      return Status::Corruption("manifest checksum mismatch");
    }
  }

  Reader r(data);
  std::string magic;
  (void)r.ReadBytes(sizeof(kMagicV2), &magic);

  Manifest manifest;
  if (!DecodeOptions(&r, &manifest.options, v2)) {
    return Status::Corruption("truncated options");
  }
  if (Status st = manifest.options.Validate(); !st.ok()) {
    return Status::Corruption("manifest options invalid: " + st.message());
  }

  uint64_t memtable_count;
  if (!r.ReadU64(&memtable_count)) {
    return Status::Corruption("truncated memtable count");
  }
  manifest.memtable_records.reserve(memtable_count);
  Key prev_key = 0;
  for (uint64_t i = 0; i < memtable_count; ++i) {
    Record record;
    if (!DecodeRecord(&r, &record)) {
      return Status::Corruption("truncated memtable record");
    }
    if (i > 0 && record.key <= prev_key) {
      return Status::Corruption("memtable records out of order");
    }
    prev_key = record.key;
    manifest.memtable_records.push_back(std::move(record));
  }

  uint64_t level_count;
  if (!r.ReadU64(&level_count)) {
    return Status::Corruption("truncated level count");
  }
  if (level_count > 64) return Status::Corruption("absurd level count");
  manifest.levels.resize(level_count);
  for (auto& leaves : manifest.levels) {
    uint64_t leaf_count;
    if (!r.ReadU64(&leaf_count)) {
      return Status::Corruption("truncated leaf count");
    }
    leaves.reserve(leaf_count);
    Key prev_max = 0;
    for (uint64_t i = 0; i < leaf_count; ++i) {
      LeafMeta leaf;
      uint64_t count;
      if (!r.ReadU64(&leaf.block) || !r.ReadU64(&leaf.min_key) ||
          !r.ReadU64(&leaf.max_key) || !r.ReadU64(&count)) {
        return Status::Corruption("truncated leaf metadata");
      }
      leaf.count = static_cast<uint32_t>(count);
      if (leaf.count == 0 || leaf.min_key > leaf.max_key ||
          (i > 0 && leaf.min_key <= prev_max)) {
        return Status::Corruption("inconsistent leaf metadata");
      }
      prev_max = leaf.max_key;
      leaves.push_back(leaf);
    }
  }
  if (v2) {
    if (!r.ReadU64(&manifest.vlog.head_file) ||
        !r.ReadU64(&manifest.vlog.head_offset) ||
        !r.ReadU64(&manifest.vlog.tail_file)) {
      return Status::Corruption("truncated vlog bounds");
    }
    if (manifest.vlog.tail_file > manifest.vlog.head_file) {
      return Status::Corruption("vlog tail beyond head");
    }
  }
  return manifest;
}

Status SaveManifestToFile(const LsmTree& tree, const std::string& path) {
  const std::string data = EncodeManifest(tree);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + tmp);
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != data.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<LsmTree>> LsmTree::Restore(
    const Manifest& manifest, BlockDevice* device,
    std::unique_ptr<MergePolicy> policy) {
  auto tree_or = Open(manifest.options, device, std::move(policy));
  if (!tree_or.ok()) return tree_or.status();
  std::unique_ptr<LsmTree> tree = std::move(tree_or).value();
  const Options& options = tree->options();

  for (const Record& r : manifest.memtable_records) {
    if (r.is_tombstone()) {
      tree->memtable_.Delete(r.key);
    } else {
      if (r.payload.size() != options.stored_payload_size()) {
        return Status::Corruption("manifest memtable payload size mismatch");
      }
      tree->memtable_.Put(r.key, r.payload);
    }
  }

  for (const auto& leaves : manifest.levels) {
    tree->AddLevel();
    Level* level = tree->mutable_level(tree->num_levels() - 1);
    for (const LeafMeta& leaf : leaves) {
      if (leaf.count > options.records_per_block()) {
        return Status::Corruption("manifest leaf count exceeds capacity");
      }
      if (options.bloom_bits_per_key == 0) {
        level->AppendLeaf(leaf);
        continue;
      }
      // Rebuild the Bloom filter from the block, verifying the metadata
      // against the actual contents as we go. Reads go through the tree's
      // device so a configured buffer cache is warmed by the restore.
      auto data_or = tree->device()->ReadBlockShared(leaf.block);
      if (!data_or.ok()) return data_or.status();
      auto view_or = RecordBlockView::Parse(options, *data_or.value());
      if (!view_or.ok()) return view_or.status();
      const RecordBlockView& view = view_or.value();
      if (view.empty() || view.min_key() != leaf.min_key ||
          view.max_key() != leaf.max_key || view.size() != leaf.count) {
        return Status::Corruption("manifest leaf metadata mismatch");
      }
      LeafMeta rebuilt = leaf;
      auto filter = std::make_shared<BloomFilter>(view.size(),
                                                  options.bloom_bits_per_key);
      for (size_t s = 0; s < view.size(); ++s) filter->AddKey(view.key_at(s));
      rebuilt.filter = std::move(filter);
      level->AppendLeaf(rebuilt);
    }
  }

  LSMSSD_RETURN_IF_ERROR(tree->CheckInvariants(false));
  return tree;
}

StatusOr<Manifest> LoadManifestFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  return DecodeManifest(data);
}

}  // namespace lsmssd
