#include "src/lsm/wal.h"

#include <cstdio>
#include <memory>

#include "src/util/logging.h"

namespace lsmssd {

namespace {

uint32_t Fnv1a(const std::string& data) {
  uint32_t h = 2166136261u;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// True when any offset in [from, data.size()) starts a complete,
/// checksum-valid WAL frame. Distinguishes a benign torn tail (nothing
/// readable follows the bad frame) from mid-file corruption that still
/// has intact entries behind it. A false positive needs random bytes to
/// pass FNV-1a (~2^-32 per offset); only runs on the failure path.
bool HasValidEntryAfter(const std::string& data, size_t from) {
  for (size_t p = from; p + 8 + 9 <= data.size(); ++p) {
    const uint32_t length = GetU32(data.data() + p);
    if (length < 9 || length > data.size() - p - 8) continue;
    if (Fnv1a(data.substr(p + 8, length)) == GetU32(data.data() + p + 4)) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path) {
  auto file = PosixWalFile::Open(path);
  if (!file.ok()) return file.status();
  return Wrap(std::move(file).value());
}

std::unique_ptr<WalWriter> WalWriter::Wrap(std::unique_ptr<WalFile> file) {
  LSMSSD_CHECK(file != nullptr);
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

WalWriter::WalWriter(std::unique_ptr<WalFile> file)
    : file_(std::move(file)) {}

Status WalWriter::Append(const Record& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutU64(&payload, record.key);
  payload.append(record.payload);

  std::string entry;
  PutU32(&entry, static_cast<uint32_t>(payload.size()));
  PutU32(&entry, Fnv1a(payload));
  entry += payload;
  LSMSSD_RETURN_IF_ERROR(file_->Append(entry));
  ++entries_appended_;
  bytes_appended_ += entry.size();
  return Status::OK();
}

Status WalWriter::Sync() { return file_->Sync(); }

Status WalWriter::Truncate() { return file_->Truncate(); }

StatusOr<std::vector<Record>> WalReader::ReadAll(
    const std::string& path, size_t* valid_bytes,
    std::vector<size_t>* entry_offsets) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  if (entry_offsets != nullptr) entry_offsets->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::vector<Record>{};  // Nothing to replay.
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  std::vector<Record> records;
  size_t pos = 0;
  while (pos + 8 <= data.size()) {
    const uint32_t length = GetU32(data.data() + pos);
    const uint32_t checksum = GetU32(data.data() + pos + 4);
    const bool frame_fits = length >= 9 && pos + 8 + length <= data.size();
    if (!frame_fits ||
        Fnv1a(data.substr(pos + 8, length)) != checksum) {
      // A bad frame with nothing readable after it is the expected tear
      // from a crash mid-append: drop it. But a bad frame *followed by*
      // well-formed entries is latent corruption of data a sync may
      // have acknowledged — truncating here would silently discard
      // those durable entries, so refuse instead of guessing.
      if (HasValidEntryAfter(data, pos + 1)) {
        return Status::Corruption(
            "WAL entry at offset " + std::to_string(pos) +
            " is corrupt but followed by well-formed entries");
      }
      break;  // Torn tail.
    }
    const std::string payload = data.substr(pos + 8, length);
    Record record;
    const auto type = static_cast<uint8_t>(payload[0]);
    if (type > static_cast<uint8_t>(RecordType::kDelete)) {
      return Status::Corruption("WAL entry with unknown record type");
    }
    record.type = static_cast<RecordType>(type);
    record.key = GetU64(payload.data() + 1);
    record.payload = payload.substr(9);
    records.push_back(std::move(record));
    if (entry_offsets != nullptr) entry_offsets->push_back(pos);
    pos += 8 + length;
  }
  if (valid_bytes != nullptr) *valid_bytes = pos;
  return records;
}

}  // namespace lsmssd
