#include "src/lsm/level.h"

#include <algorithm>
#include <string>

#include "src/util/logging.h"

namespace lsmssd {

LeafMeta MakeLeafMeta(const Options& options,
                      const std::vector<Record>& records, BlockId block) {
  LSMSSD_CHECK(!records.empty());
  LeafMeta meta;
  meta.block = block;
  meta.min_key = records.front().key;
  meta.max_key = records.back().key;
  meta.count = static_cast<uint32_t>(records.size());
  if (options.bloom_bits_per_key > 0) {
    // Incremental build: no temporary key vector per block.
    auto filter = std::make_shared<BloomFilter>(records.size(),
                                                options.bloom_bits_per_key);
    for (const Record& r : records) filter->AddKey(r.key);
    meta.filter = std::move(filter);
  }
  return meta;
}

Level::Level(const Options& options, BlockDevice* device, size_t level_index)
    : options_(options), device_(device), level_index_(level_index) {
  LSMSSD_CHECK(device != nullptr);
  LSMSSD_CHECK_GE(level_index, 1u);
}

const LeafMeta& Level::leaf(size_t i) const {
  LSMSSD_CHECK_LT(i, leaves_.size());
  return leaves_[i];
}

Key Level::min_key() const {
  LSMSSD_CHECK(!leaves_.empty());
  return leaves_.front().min_key;
}

Key Level::max_key() const {
  LSMSSD_CHECK(!leaves_.empty());
  return leaves_.back().max_key;
}

uint64_t Level::empty_slots() const {
  const uint64_t b = options_.records_per_block();
  return leaves_.size() * b - record_count_;
}

double Level::waste_factor() const {
  if (leaves_.empty()) return 0.0;
  const double slots =
      static_cast<double>(leaves_.size() * options_.records_per_block());
  return static_cast<double>(empty_slots()) / slots;
}

bool Level::MeetsLevelWaste() const {
  return LevelWasteOk(record_count_, leaves_.size(),
                      options_.records_per_block(), options_.epsilon);
}

bool Level::MeetsPairwiseWaste(size_t i) const {
  LSMSSD_CHECK_LT(i + 1, leaves_.size());
  return PairwiseWasteOk(leaves_[i].count, leaves_[i + 1].count,
                         options_.records_per_block());
}

StatusOr<LeafView> Level::ReadLeafView(size_t i) const {
  LSMSSD_CHECK_LT(i, leaves_.size());
  auto data_or = device_->ReadBlockShared(leaves_[i].block);
  if (!data_or.ok()) return data_or.status();
  LeafView leaf;
  leaf.data = std::move(data_or).value();
  auto view_or = RecordBlockView::Parse(options_, *leaf.data);
  if (!view_or.ok()) return view_or.status();
  leaf.view = view_or.value();
  if (leaf.view.size() != leaves_[i].count) {
    return Status::Corruption("leaf record count mismatch at level " +
                              std::to_string(level_index_));
  }
  return leaf;
}

StatusOr<std::vector<Record>> Level::ReadLeaf(size_t i) const {
  auto leaf_or = ReadLeafView(i);
  if (!leaf_or.ok()) return leaf_or.status();
  return leaf_or.value().view.Materialize();
}

size_t Level::LowerBoundLeaf(Key key) const {
  // First leaf whose max_key >= key.
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (leaves_[mid].max_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status Level::Lookup(Key key, Record* out) const {
  const size_t i = LowerBoundLeaf(key);
  if (i == leaves_.size() || leaves_[i].min_key > key) {
    return Status::NotFound("key not in level");
  }
  if (leaves_[i].filter != nullptr && !leaves_[i].filter->MayContain(key)) {
    ++bloom_negative_skips_;  // Definitely absent: skip the block read.
    device_->stats().RecordBloomSkip();
    return Status::NotFound("key not in leaf (bloom)");
  }
  auto leaf_or = ReadLeafView(i);
  if (!leaf_or.ok()) return leaf_or.status();
  // One in-place binary search over the encoded slots; only the matching
  // record (if any) is materialized.
  size_t slot;
  if (!leaf_or.value().view.Find(key, &slot)) {
    return Status::NotFound("key not in leaf");
  }
  *out = leaf_or.value().view.record_at(slot);
  return Status::OK();
}

Status Level::CollectRange(Key lo, Key hi, std::vector<Record>* out) const {
  const auto [begin, end] = OverlapRange(lo, hi);
  for (size_t i = begin; i < end; ++i) {
    auto leaf_or = ReadLeafView(i);
    if (!leaf_or.ok()) return leaf_or.status();
    const RecordBlockView& view = leaf_or.value().view;
    for (size_t s = view.LowerBound(lo); s < view.size(); ++s) {
      if (view.key_at(s) > hi) break;
      out->push_back(view.record_at(s));
    }
  }
  return Status::OK();
}

std::pair<size_t, size_t> Level::OverlapRange(Key lo, Key hi) const {
  const size_t begin = LowerBoundLeaf(lo);
  size_t end = begin;
  while (end < leaves_.size() && leaves_[end].min_key <= hi) ++end;
  return {begin, end};
}

Status Level::SpliceLeaves(size_t begin, size_t end,
                           std::vector<LeafMeta> replacement,
                           const std::unordered_set<BlockId>& preserved) {
  LSMSSD_CHECK_LE(begin, end);
  LSMSSD_CHECK_LE(end, leaves_.size());

  for (size_t i = begin; i < end; ++i) {
    record_count_ -= leaves_[i].count;
    if (!preserved.contains(leaves_[i].block)) {
      LSMSSD_RETURN_IF_ERROR(device_->FreeBlock(leaves_[i].block));
    }
  }
  for (const LeafMeta& m : replacement) record_count_ += m.count;

  leaves_.erase(leaves_.begin() + static_cast<ptrdiff_t>(begin),
                leaves_.begin() + static_cast<ptrdiff_t>(end));
  leaves_.insert(leaves_.begin() + static_cast<ptrdiff_t>(begin),
                 replacement.begin(), replacement.end());
  return Status::OK();
}

Status Level::RemoveLeaves(size_t begin, size_t end,
                           const std::unordered_set<BlockId>& preserved) {
  return SpliceLeaves(begin, end, {}, preserved);
}

void Level::AppendLeaf(const LeafMeta& meta) {
  LSMSSD_CHECK_GT(meta.count, 0u);
  if (!leaves_.empty()) {
    LSMSSD_CHECK_LT(leaves_.back().max_key, meta.min_key);
  }
  leaves_.push_back(meta);
  record_count_ += meta.count;
}

StatusOr<uint64_t> Level::CoalescePair(size_t i) {
  LSMSSD_CHECK_LT(i + 1, leaves_.size());
  auto left_or = ReadLeaf(i);
  if (!left_or.ok()) return left_or.status();
  auto right_or = ReadLeaf(i + 1);
  if (!right_or.ok()) return right_or.status();

  std::vector<Record> combined = std::move(left_or).value();
  auto& right = right_or.value();
  combined.insert(combined.end(), right.begin(), right.end());
  LSMSSD_CHECK_LE(combined.size(), options_.records_per_block())
      << "coalesce of a non-violating pair";

  auto id_or = device_->WriteNewBlock(EncodeRecordBlock(options_, combined));
  if (!id_or.ok()) return id_or.status();

  const LeafMeta merged = MakeLeafMeta(options_, combined, id_or.value());
  LSMSSD_RETURN_IF_ERROR(SpliceLeaves(i, i + 2, {merged}, {}));
  return uint64_t{1};
}

StatusOr<uint64_t> Level::Compact() {
  const size_t b = options_.records_per_block();
  std::vector<LeafMeta> new_leaves;
  new_leaves.reserve(record_count_ / b + 1);
  uint64_t writes = 0;

  RecordBlockBuilder builder(options_);
  auto flush = [&]() -> Status {
    if (builder.empty()) return Status::OK();
    // Build the metadata from the buffered records in place, before
    // Finish() resets the builder — no O(B) record-vector copy.
    LeafMeta meta = MakeLeafMeta(options_, builder.records(), kInvalidBlockId);
    auto id_or = device_->WriteNewBlock(builder.Finish());
    if (!id_or.ok()) return id_or.status();
    meta.block = id_or.value();
    new_leaves.push_back(std::move(meta));
    ++writes;
    return Status::OK();
  };

  // Abort-atomically: a failure before the final splice (a corrupt input
  // leaf, a full device) frees every output block written so far, leaving
  // the level exactly as it was.
  auto abort = [&](Status st) -> Status {
    for (const LeafMeta& m : new_leaves) (void)device_->FreeBlock(m.block);
    return st;
  };

  for (size_t i = 0; i < leaves_.size(); ++i) {
    auto records_or = ReadLeaf(i);
    if (!records_or.ok()) return abort(records_or.status());
    for (const Record& r : records_or.value()) {
      if (builder.full()) {
        if (Status st = flush(); !st.ok()) return abort(std::move(st));
      }
      builder.Add(r);
    }
  }
  if (Status st = flush(); !st.ok()) return abort(std::move(st));

  LSMSSD_RETURN_IF_ERROR(
      SpliceLeaves(0, leaves_.size(), std::move(new_leaves), {}));
  ledger_.OnCompaction();
  return writes;
}

Status Level::CheckInvariants(bool deep) const {
  const uint64_t b = options_.records_per_block();
  uint64_t records = 0;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    const LeafMeta& m = leaves_[i];
    if (m.count == 0) {
      return Status::Internal("empty leaf in level " +
                              std::to_string(level_index_));
    }
    if (m.count > b) return Status::Internal("overfull leaf");
    if (m.min_key > m.max_key) return Status::Internal("inverted leaf range");
    if (i > 0 && leaves_[i - 1].max_key >= m.min_key) {
      return Status::Internal("overlapping/unsorted leaves in level " +
                              std::to_string(level_index_));
    }
    if (i + 1 < leaves_.size() && !MeetsPairwiseWaste(i)) {
      return Status::Internal("pairwise waste violation at leaf " +
                              std::to_string(i) + " of level " +
                              std::to_string(level_index_));
    }
    records += m.count;
  }
  if (records != record_count_) {
    return Status::Internal("record count drift in level " +
                            std::to_string(level_index_));
  }
  if (!MeetsLevelWaste()) {
    return Status::Internal("level-wise waste violation in level " +
                            std::to_string(level_index_));
  }
  if (deep) {
    for (size_t i = 0; i < leaves_.size(); ++i) {
      auto leaf_or = ReadLeafView(i);  // Validates count against metadata.
      if (!leaf_or.ok()) return leaf_or.status();
      const RecordBlockView& view = leaf_or.value().view;
      if (view.min_key() != leaves_[i].min_key ||
          view.max_key() != leaves_[i].max_key) {
        return Status::Internal("leaf key-range metadata mismatch");
      }
    }
  }
  return Status::OK();
}

}  // namespace lsmssd
