// Sharded Db facade: hash-partitions keys across N independent
// single-shard Db instances (each with its own memtable pipeline, WAL,
// device file, and compaction thread) living in `shard-<i>`
// subdirectories of one root. The root carries a checksummed SHARDS
// layout file recording the shard count and partition function, written
// once at creation and authoritative on every reopen — so a sharded Db
// opens correctly with default options and the key->shard mapping can
// never drift. Routing (Put/Delete/Get) and fan-out (checkpoint, scrub,
// stats, scans) live here; src/db/db.cc holds the single-shard engine
// and branches to these implementations when shards_ is non-empty.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/db/db.h"
#include "src/db/fs_util.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

constexpr char kLayoutMagic[] = "lsmssd-shards v1";
constexpr char kLayoutHash[] = "fnv1a64";

/// The layout file body the CRC line covers.
std::string EncodeLayoutBody(size_t shards) {
  return std::string(kLayoutMagic) + "\ncount=" + std::to_string(shards) +
         "\nhash=" + kLayoutHash + "\n";
}

/// N-way merge over per-shard snapshot iterators. Each child already
/// holds its shard's shared locks (it is a Db SnapshotIterator), so the
/// merged view is one consistent cut for as long as this iterator lives.
/// Hash partitioning puts every key in exactly one shard, so no
/// duplicate-key resolution is needed — a plain min-heap merge is exact.
class ShardMergeIterator : public Iterator {
 public:
  explicit ShardMergeIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return !heap_.empty(); }

  void SeekToFirst() override {
    for (auto& c : children_) c->SeekToFirst();
    RebuildHeap();
  }

  void Seek(Key target) override {
    for (auto& c : children_) c->Seek(target);
    RebuildHeap();
  }

  void Next() override {
    Iterator* top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), &Greater);
    heap_.pop_back();
    top->Next();
    if (top->Valid()) {
      heap_.push_back(top);
      std::push_heap(heap_.begin(), heap_.end(), &Greater);
    } else if (!top->status().ok()) {
      // A child died mid-iteration; the merged view must stop rather
      // than silently skip that shard's remaining keys.
      heap_.clear();
    }
  }

  Key key() const override { return heap_.front()->key(); }
  const std::string& value() const override { return heap_.front()->value(); }

  Status status() const override {
    for (const auto& c : children_) {
      if (!c->status().ok()) return c->status();
    }
    return Status::OK();
  }

 private:
  /// Min-heap via std::*_heap with an inverted comparison.
  static bool Greater(const Iterator* a, const Iterator* b) {
    return a->key() > b->key();
  }

  void RebuildHeap() {
    heap_.clear();
    for (auto& c : children_) {
      if (c->Valid()) heap_.push_back(c.get());
    }
    std::make_heap(heap_.begin(), heap_.end(), &Greater);
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  std::vector<Iterator*> heap_;  ///< Valid children, min-key at front.
};

}  // namespace

std::string Db::ShardLayoutPath(const std::string& dir) {
  return dir + "/SHARDS";
}
std::string Db::ShardLayoutTmpPath(const std::string& dir) {
  return dir + "/SHARDS.tmp";
}
std::string Db::ShardDirPath(const std::string& dir, size_t i) {
  return dir + "/shard-" + std::to_string(i);
}

size_t Db::ShardOfKey(Key key, size_t shards) {
  if (shards <= 1) return 0;
  // FNV-1a 64-bit over the key's 8 little-endian bytes. Stable by
  // construction: this function is part of the on-disk layout (SHARDS
  // records `hash=fnv1a64`) and must never change for existing Dbs.
  uint64_t h = 14695981039346656037ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (key >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % shards);
}

StatusOr<size_t> Db::ReadShardLayout(const std::string& dir) {
  const std::string path = ShardLayoutPath(dir);
  if (!fsutil::FileExists(path)) {
    return Status::NotFound(path + ": no shard layout (unsharded root?)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  // The last line is "crc=<u32>\n" over everything before it.
  const std::string crc_tag = "crc=";
  const size_t crc_pos = data.rfind(crc_tag);
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      data[crc_pos - 1] != '\n') {
    return Status::Corruption(path + ": missing crc line");
  }
  const std::string body = data.substr(0, crc_pos);
  const std::string crc_str = data.substr(crc_pos + crc_tag.size());
  errno = 0;
  char* end = nullptr;
  const unsigned long long stored = std::strtoull(crc_str.c_str(), &end, 10);
  if (end == crc_str.c_str() || errno != 0 ||
      crc32c::Value(reinterpret_cast<const uint8_t*>(body.data()),
                    body.size()) != static_cast<uint32_t>(stored)) {
    return Status::Corruption(path + ": checksum mismatch");
  }

  if (body.rfind(kLayoutMagic, 0) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  const std::string count_tag = "\ncount=";
  const size_t count_pos = body.find(count_tag);
  if (count_pos == std::string::npos) {
    return Status::Corruption(path + ": missing count");
  }
  const size_t count =
      std::strtoull(body.c_str() + count_pos + count_tag.size(), nullptr, 10);
  if (count < 2) {
    return Status::Corruption(path + ": shard count " +
                              std::to_string(count) + " out of range");
  }
  if (body.find("\nhash=" + std::string(kLayoutHash) + "\n") ==
      std::string::npos) {
    return Status::Corruption(path + ": unknown partition hash");
  }
  return count;
}

Status Db::WriteShardLayout(const std::string& dir, size_t shards) {
  const std::string body = EncodeLayoutBody(shards);
  const std::string data =
      body + "crc=" +
      std::to_string(crc32c::Value(
          reinterpret_cast<const uint8_t*>(body.data()), body.size())) +
      "\n";
  const std::string tmp = ShardLayoutTmpPath(dir);
  const std::string path = ShardLayoutPath(dir);
  LSMSSD_RETURN_IF_ERROR(fsutil::WriteFile(tmp, data, /*sync=*/true));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return fsutil::Errno("rename " + tmp + " -> " + path);
  }
  return fsutil::SyncDir(dir);
}

StatusOr<std::unique_ptr<Db>> Db::OpenSharded(const DbOptions& dbopts,
                                              const std::string& dir,
                                              size_t layout_shards) {
  if (layout_shards > 0) {
    // An existing layout is an existing Db, and it is authoritative: the
    // caller may reopen with the default shards=1 (or the matching
    // count), but never with a different explicit count.
    if (dbopts.error_if_exists) {
      return Status::FailedPrecondition("Db already exists at " + dir);
    }
    if (dbopts.shards > 1 && dbopts.shards != layout_shards) {
      return Status::InvalidArgument(
          "Db at " + dir + " is laid out as " +
          std::to_string(layout_shards) + " shards; reopening as " +
          std::to_string(dbopts.shards) +
          " would repartition keys (resharding is not supported)");
    }
  } else {
    // Fresh sharded creation. An existing single-shard Db cannot be
    // resharded in place: its keys were never hash-partitioned, so
    // opening it behind a routing facade would make them unreachable.
    if (fsutil::FileExists(ManifestPath(dir)) ||
        fsutil::FileExists(WalPath(dir)) ||
        fsutil::FileExists(DevicePath(dir)) ||
        !ListWalSegments(dir).empty()) {
      return Status::InvalidArgument(
          "cannot reshard the existing single-shard Db at " + dir + " into " +
          std::to_string(dbopts.shards) + " shards");
    }
    // Publish the layout before any shard exists: a crash between here
    // and the child opens below reopens as an (empty) sharded Db.
    LSMSSD_RETURN_IF_ERROR(WriteShardLayout(dir, dbopts.shards));
  }
  const size_t n = layout_shards > 0 ? layout_shards : dbopts.shards;

  DbOptions child = dbopts;
  child.shards = 1;
  child.shard_memory_budget_records = 0;
  // Shard directories are facade internals: always creatable (a crash
  // during creation may have left only some of them), and never
  // "already exists" errors — error_if_exists was enforced on the root.
  child.create_if_missing = true;
  child.error_if_exists = false;
  if (dbopts.max_device_blocks > 0) {
    // Ceil-divide so per-shard caps sum to >= the requested total; the
    // facade's SetMaxDeviceBlocks applies the same split at runtime.
    child.max_device_blocks = (dbopts.max_device_blocks + n - 1) / n;
  }

  std::unique_ptr<Db> facade(new Db(dbopts, dir));
  facade->shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard_or = Open(child, ShardDirPath(dir, i));
    if (!shard_or.ok()) return shard_or.status();
    facade->shards_.push_back(std::move(shard_or).value());
  }

  // Cross-shard memory budget: default to the single-shard ceiling —
  // (queue_depth + 1) sealed/active memtables plus the L0 buffer, each
  // K0 * B records — so N shards together hold no more memory-resident
  // records than one shard's pipeline would.
  const Options& o = child.options;
  facade->shard_mem_budget_ =
      dbopts.shard_memory_budget_records > 0
          ? dbopts.shard_memory_budget_records
          : static_cast<uint64_t>(child.compaction_queue_depth + 2) *
                o.level0_capacity_blocks * o.records_per_block();
  return facade;
}

uint64_t Db::ApproxMemRecords() const {
  return mem_active_records_.load(std::memory_order_relaxed) +
         mem_sealed_records_.load(std::memory_order_relaxed) +
         mem_l0_records_.load(std::memory_order_relaxed);
}

void Db::ArbitrateShardMemory() {
  if (!dbopts_.background_compaction) return;
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->ApproxMemRecords();
  if (total <= shard_mem_budget_) return;
  // Proportional reclaim, simplest form: seal the largest *active*
  // memtable, turning the biggest unsealed memory holder into work the
  // shard's compaction thread drains to SSD. Sealed/L0 records are
  // already on their way down; only active ones need a push.
  Db* victim = nullptr;
  uint64_t victim_active = 0;
  for (const auto& s : shards_) {
    const uint64_t active =
        s->mem_active_records_.load(std::memory_order_relaxed);
    if (active > victim_active) {
      victim_active = active;
      victim = s.get();
    }
  }
  if (victim != nullptr && victim->TrySealActiveMemtable()) {
    arbiter_seals_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Db::TrySealActiveMemtable() {
  std::unique_lock<std::mutex> lk(db_mu_);
  if (failed() || !dbopts_.background_compaction) return false;
  {
    std::lock_guard<std::mutex> clk(comp_mu_);
    // Never stall here: the arbiter is advisory pressure, and a full
    // queue (or a wedged worker) means the shard is already flushing as
    // fast as it can.
    if (sealed_queued_ >= dbopts_.compaction_queue_depth) return false;
    if (!compaction_error_.ok()) return false;
  }
  {
    std::unique_lock<SharedMutex> mlk(mem_mu_);
    const uint64_t n = tree_->active_memtable_records();
    if (n == 0) return false;
    tree_->SealMemtable();
    mem_sealed_records_.fetch_add(n, std::memory_order_relaxed);
    mem_active_records_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> clk(comp_mu_);
    ++sealed_queued_;
    ++memtables_sealed_;
    compaction_scheduled_ = true;
  }
  // notify_all: comp_cv_ also carries rate-limiter pacing waiters, which a
  // deepening queue must interrupt (see Db::PaceMergeRate).
  comp_cv_.notify_all();
  return true;
}

std::unique_ptr<Iterator> Db::ShardedNewIterator() const {
  // Fixed acquisition order 0..N-1: each child iterator takes and holds
  // its shard's shared locks, so two concurrent cross-shard readers can
  // never deadlock, and the merged view is one consistent cut (no
  // writer can slip between the acquisitions into an already-snapshotted
  // shard).
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(shards_.size());
  for (const auto& s : shards_) {
    auto it = s->NewIterator();
    if (it == nullptr) return nullptr;  // That shard failed; so does the cut.
    children.push_back(std::move(it));
  }
  return std::make_unique<ShardMergeIterator>(std::move(children));
}

Status Db::ShardedScan(Key lo, Key hi,
                       std::vector<std::pair<Key, std::string>>* out) {
  if (lo > hi) return Status::InvalidArgument("scan range inverted");
  auto it = ShardedNewIterator();
  if (it == nullptr) return FailedStatus();
  for (it->Seek(lo); it->Valid() && it->key() <= hi; it->Next()) {
    out->emplace_back(it->key(), it->value());
  }
  return it->status();
}

DbStats Db::ShardedStats() const {
  DbStats agg;
  agg.shards = shards_.size();
  agg.arbiter_seals = arbiter_seals_.load(std::memory_order_relaxed);
  bool first = true;
  for (const auto& shard : shards_) {
    const DbStats s = shard->Stats();
    if (first) {
      agg.io = s.io;
      first = false;
    } else {
      agg.io.MergeFrom(s.io);
    }
    agg.wal_entries_appended += s.wal_entries_appended;
    agg.wal_bytes_appended += s.wal_bytes_appended;
    agg.wal_syncs += s.wal_syncs;
    agg.checkpoints += s.checkpoints;
    agg.recovery_wal_entries_replayed += s.recovery_wal_entries_replayed;
    agg.recovery_manifest_blocks += s.recovery_manifest_blocks;
    agg.deferred_frees += s.deferred_frees;
    // Block ids are per-shard namespaces: the same id from two shards
    // names two distinct physical blocks, so duplicates are kept (the
    // count is what matters at the facade; shard(i)->Stats() has the
    // per-shard detail).
    agg.quarantined_blocks.insert(agg.quarantined_blocks.end(),
                                  s.quarantined_blocks.begin(),
                                  s.quarantined_blocks.end());
    agg.scrub_blocks_verified += s.scrub_blocks_verified;
    agg.scrub_corruptions_found += s.scrub_corruptions_found;
    agg.write_backpressure_events += s.write_backpressure_events;
    agg.vlog_segments += s.vlog_segments;
    agg.vlog_bytes_appended += s.vlog_bytes_appended;
    agg.vlog_gc_rewrites += s.vlog_gc_rewrites;
    agg.vlog_segments_reclaimed += s.vlog_segments_reclaimed;
    agg.vlog_quarantined_entries += s.vlog_quarantined_entries;
    agg.memtables_sealed += s.memtables_sealed;
    agg.background_flushes += s.background_flushes;
    agg.background_merges += s.background_merges;
    agg.compaction_queue_depth += s.compaction_queue_depth;
    agg.compaction_micros += s.compaction_micros;
    agg.throttle_events += s.throttle_events;
    agg.throttle_micros += s.throttle_micros;
    agg.stall_events += s.stall_events;
    agg.stall_micros += s.stall_micros;
    agg.compaction_rate_pauses += s.compaction_rate_pauses;
    agg.compaction_rate_pause_micros += s.compaction_rate_pause_micros;
    agg.stall_latency.Merge(s.stall_latency);
  }
  std::sort(agg.quarantined_blocks.begin(), agg.quarantined_blocks.end());
  return agg;
}

}  // namespace lsmssd
