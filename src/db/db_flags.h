#ifndef LSMSSD_DB_DB_FLAGS_H_
#define LSMSSD_DB_DB_FLAGS_H_

#include <string_view>
#include <vector>

#include "src/db/db.h"
#include "src/util/flags.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Appends the flag names DbOptionsFromFlags consumes, so each command
/// builds its known-flag list as `{its own flags} + Db flags`.
void AppendDbFlagNames(std::vector<std::string_view>* known);

/// Builds a DbOptions from flags, starting from `base` format options.
/// One builder shared by every tool that opens a Db (`run`, `scrub`,
/// `serve`, benches), so a flag means the same thing everywhere.
///
/// Flags consumed (all optional):
///   --policy=Full|RR|ChooseBest|Mixed|TestMixed|PartitionedCB
///   --bloom=N                bloom bits per key (0 = off)
///   --cache-blocks=N         buffer cache capacity in blocks (0 = off)
///   --sync=always|everyn|none   WAL sync mode
///   --sync-n=N               group-commit batch size (everyn; >= 1)
///   --checkpoint-wal-mb=N    auto-checkpoint threshold (0 = manual)
///   --background-compaction[=0|1]
///   --shards=N               hash-partitioned shards (>= 1)
///   --scrub-interval-ms=N    online scrub cadence (0 = off)
///   --max-device-blocks=N    device exhaustion bound (0 = unbounded)
///   --vlog-threshold=N       key–value separation: payloads of at least
///                            N bytes go to the value log (0 = off; must
///                            exceed the 16-byte pointer)
///   --vlog-gc-ratio=R        background vlog GC when the dead fraction
///                            reaches R, in [0, 1) (0 = manual GC only)
///
/// Validation failures return InvalidArgument with the offending flag
/// named; nothing is created on disk. annihilate_delete_put is forced
/// off (WAL replay re-applies a suffix of history, which eager
/// annihilation cannot tolerate).
StatusOr<DbOptions> DbOptionsFromFlags(const FlagMap& flags,
                                       const Options& base);

}  // namespace lsmssd

#endif  // LSMSSD_DB_DB_FLAGS_H_
