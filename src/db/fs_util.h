#ifndef LSMSSD_DB_FS_UTIL_H_
#define LSMSSD_DB_FS_UTIL_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lsmssd {
namespace fsutil {

/// POSIX helpers shared by the Db implementation files (db.cc,
/// db_sharded.cc). Thin, header-only, and deliberately dumb: every
/// durability decision (what to sync, when) stays at the call site.

inline Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

inline bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

inline uint64_t FileSizeOrZero(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

/// fsyncs `dir` itself so a rename inside it is durable.
inline Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir " + dir);
  return Status::OK();
}

/// Writes `data` to a fresh `path`, fsyncing when `sync` is set.
inline Status WriteFile(const std::string& path, std::string_view data,
                        bool sync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + path);
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write " + path);
    }
    done += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync " + path);
  }
  if (::close(fd) != 0) return Errno("close " + path);
  return Status::OK();
}

}  // namespace fsutil
}  // namespace lsmssd

#endif  // LSMSSD_DB_FS_UTIL_H_
