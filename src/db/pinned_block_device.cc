#include "src/db/pinned_block_device.h"

#include <string>

namespace lsmssd {

PinnedBlockDevice::PinnedBlockDevice(BlockDevice* base,
                                     std::vector<BlockId> pinned)
    : base_(base), pinned_(pinned.begin(), pinned.end()) {}

StatusOr<BlockId> PinnedBlockDevice::WriteNewBlock(const BlockData& data) {
  auto id_or = base_->WriteNewBlock(data);
  if (id_or.ok()) {
    stats_.RecordAllocate();
    stats_.RecordWrite();
  }
  return id_or;
}

Status PinnedBlockDevice::WriteBlocks(const std::vector<BlockData>& blocks,
                                      std::vector<BlockId>* ids) {
  LSMSSD_RETURN_IF_ERROR(base_->WriteBlocks(blocks, ids));
  for (size_t i = 0; i < blocks.size(); ++i) {
    stats_.RecordAllocate();
    stats_.RecordWrite();
  }
  if (blocks.size() > 1) stats_.RecordBatchWrite(blocks.size());
  return Status::OK();
}

Status PinnedBlockDevice::ReadBlocks(const std::vector<BlockId>& ids,
                                     std::vector<BlockData>* out) {
  for (BlockId id : ids) {
    if (deferred_.contains(id)) {
      return Status::NotFound("block " + std::to_string(id) +
                              " was freed (pinned for recovery only)");
    }
  }
  if (Status st = base_->ReadBlocks(ids, out); !st.ok()) {
    // The vectored path cannot tell us which block failed; replay
    // per-block so the offending id gets quarantined. (Error path only —
    // the extra physical reads are irrelevant next to the corruption.)
    for (BlockId id : ids) {
      BlockData scratch;
      if (Status per = base_->ReadBlock(id, &scratch); !per.ok()) {
        NoteCorruption(id, per);
        return per;
      }
    }
    return st;
  }
  for (size_t i = 0; i < ids.size(); ++i) stats_.RecordRead();
  if (ids.size() > 1) stats_.RecordBatchRead(ids.size());
  return Status::OK();
}

void PinnedBlockDevice::NoteCorruption(BlockId id, const Status& st) {
  if (!st.IsCorruption()) return;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantined_.insert(id);
}

std::vector<BlockId> PinnedBlockDevice::QuarantinedBlocks() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return std::vector<BlockId>(quarantined_.begin(), quarantined_.end());
}

size_t PinnedBlockDevice::quarantined_count() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.size();
}

Status PinnedBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  if (deferred_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) +
                            " was freed (pinned for recovery only)");
  }
  if (Status st = base_->ReadBlock(id, out); !st.ok()) {
    NoteCorruption(id, st);
    return st;
  }
  stats_.RecordRead();
  return Status::OK();
}

StatusOr<std::shared_ptr<const BlockData>> PinnedBlockDevice::ReadBlockShared(
    BlockId id) {
  if (deferred_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) +
                            " was freed (pinned for recovery only)");
  }
  auto data_or = base_->ReadBlockShared(id);
  if (data_or.ok()) {
    stats_.RecordRead();
  } else {
    NoteCorruption(id, data_or.status());
  }
  return data_or;
}

Status PinnedBlockDevice::VerifyBlock(BlockId id) {
  if (deferred_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) +
                            " was freed (pinned for recovery only)");
  }
  Status st = base_->VerifyBlock(id);
  if (st.ok()) {
    stats_.RecordRead();
  } else {
    NoteCorruption(id, st);
  }
  return st;
}

Status PinnedBlockDevice::FreeBlock(BlockId id) {
  if (pinned_.contains(id) ||
      (checkpoint_active_ && checkpoint_pinned_.contains(id))) {
    if (!deferred_.insert(id).second) {
      return Status::NotFound("double free of pinned block " +
                              std::to_string(id));
    }
    // Logically freed now; the physical slot recycles once no manifest
    // (durable or in flight) references it.
    stats_.RecordFree();
    NoteFreed(id);
    return Status::OK();
  }
  LSMSSD_RETURN_IF_ERROR(base_->FreeBlock(id));
  stats_.RecordFree();
  NoteFreed(id);
  return Status::OK();
}

void PinnedBlockDevice::NoteFreed(BlockId id) {
  // Freeing is the one exit from quarantine: the damaged slot no longer
  // backs live data (a merge rewrote the level, or the tree dropped it).
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantined_.erase(id);
}

void PinnedBlockDevice::BeginCheckpoint(const std::vector<BlockId>& snapshot) {
  checkpoint_pinned_.clear();
  checkpoint_pinned_.insert(snapshot.begin(), snapshot.end());
  checkpoint_active_ = true;
}

Status PinnedBlockDevice::CommitCheckpoint() {
  pinned_.swap(checkpoint_pinned_);
  checkpoint_pinned_.clear();
  checkpoint_active_ = false;
  // Release deferred frees the new manifest does not pin. A block freed
  // by a merge *while* the manifest was being written is still referenced
  // by it and must stay deferred until the next checkpoint.
  Status first_error;
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    if (pinned_.contains(*it)) {
      ++it;
      continue;
    }
    if (Status st = base_->FreeBlock(*it); !st.ok() && first_error.ok()) {
      first_error = st;
    }
    it = deferred_.erase(it);
  }
  return first_error;
}

void PinnedBlockDevice::AbortCheckpoint() {
  checkpoint_pinned_.clear();
  checkpoint_active_ = false;
}

Status PinnedBlockDevice::Commit(const std::vector<BlockId>& new_pinned) {
  BeginCheckpoint(new_pinned);
  return CommitCheckpoint();
}

}  // namespace lsmssd
