#include "src/db/pinned_block_device.h"

#include <string>

namespace lsmssd {

PinnedBlockDevice::PinnedBlockDevice(BlockDevice* base,
                                     std::vector<BlockId> pinned)
    : base_(base), pinned_(pinned.begin(), pinned.end()) {}

StatusOr<BlockId> PinnedBlockDevice::WriteNewBlock(const BlockData& data) {
  auto id_or = base_->WriteNewBlock(data);
  if (id_or.ok()) {
    stats_.RecordAllocate();
    stats_.RecordWrite();
  }
  return id_or;
}

Status PinnedBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  if (deferred_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) +
                            " was freed (pinned for recovery only)");
  }
  LSMSSD_RETURN_IF_ERROR(base_->ReadBlock(id, out));
  stats_.RecordRead();
  return Status::OK();
}

StatusOr<std::shared_ptr<const BlockData>> PinnedBlockDevice::ReadBlockShared(
    BlockId id) {
  if (deferred_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) +
                            " was freed (pinned for recovery only)");
  }
  auto data_or = base_->ReadBlockShared(id);
  if (data_or.ok()) stats_.RecordRead();
  return data_or;
}

Status PinnedBlockDevice::FreeBlock(BlockId id) {
  if (pinned_.contains(id)) {
    if (!deferred_.insert(id).second) {
      return Status::NotFound("double free of pinned block " +
                              std::to_string(id));
    }
    // Logically freed now; the physical slot recycles at Commit().
    stats_.RecordFree();
    return Status::OK();
  }
  LSMSSD_RETURN_IF_ERROR(base_->FreeBlock(id));
  stats_.RecordFree();
  return Status::OK();
}

Status PinnedBlockDevice::Commit(const std::vector<BlockId>& new_pinned) {
  Status first_error;
  for (BlockId id : deferred_) {
    if (Status st = base_->FreeBlock(id); !st.ok() && first_error.ok()) {
      first_error = st;
    }
  }
  deferred_.clear();
  pinned_.clear();
  pinned_.insert(new_pinned.begin(), new_pinned.end());
  return first_error;
}

}  // namespace lsmssd
