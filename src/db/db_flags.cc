#include "src/db/db_flags.h"

namespace lsmssd {

void AppendDbFlagNames(std::vector<std::string_view>* known) {
  static constexpr std::string_view kNames[] = {
      "policy",          "bloom",
      "cache-blocks",    "sync",
      "sync-n",          "checkpoint-wal-mb",
      "background-compaction", "shards",
      "scrub-interval-ms", "max-device-blocks",
      "compaction-workers", "compaction-rate-limit",
      "vlog-threshold",    "vlog-gc-ratio",
  };
  for (std::string_view n : kNames) known->push_back(n);
}

StatusOr<DbOptions> DbOptionsFromFlags(const FlagMap& flags,
                                       const Options& base) {
  DbOptions dbopts;
  dbopts.options = base;
  // WAL replay re-applies a suffix of the history, which eager
  // tombstone+insert annihilation cannot tolerate; Db rejects it.
  dbopts.options.annihilate_delete_put = false;

  LSMSSD_ASSIGN_OR_RETURN(dbopts.options.bloom_bits_per_key,
                          FlagUint(flags, "bloom", 0));
  LSMSSD_ASSIGN_OR_RETURN(dbopts.options.cache_blocks,
                          FlagUint(flags, "cache-blocks", 0));

  const std::string policy_name = FlagOr(flags, "policy", "ChooseBest");
  if (!ParsePolicyKind(policy_name, &dbopts.policy)) {
    return Status::InvalidArgument(
        "unknown policy: " + policy_name +
        " (use Full|RR|ChooseBest|Mixed|TestMixed|PartitionedCB)");
  }

  const std::string sync = FlagOr(flags, "sync", "everyn");
  if (sync == "always") {
    dbopts.wal_sync_mode = WalSyncMode::kAlways;
  } else if (sync == "everyn") {
    dbopts.wal_sync_mode = WalSyncMode::kEveryN;
    LSMSSD_ASSIGN_OR_RETURN(dbopts.wal_sync_every_n,
                            FlagUint(flags, "sync-n", 64));
    if (dbopts.wal_sync_every_n == 0) {
      return Status::InvalidArgument("--sync-n must be >= 1");
    }
  } else if (sync == "none") {
    dbopts.wal_sync_mode = WalSyncMode::kNone;
  } else {
    return Status::InvalidArgument("unknown sync mode: " + sync +
                                   " (use always|everyn|none)");
  }

  uint64_t checkpoint_mb = 0;
  LSMSSD_ASSIGN_OR_RETURN(checkpoint_mb,
                          FlagUint(flags, "checkpoint-wal-mb", 8));
  dbopts.checkpoint_wal_bytes = checkpoint_mb * 1024 * 1024;

  LSMSSD_ASSIGN_OR_RETURN(dbopts.background_compaction,
                          FlagBool(flags, "background-compaction", false));

  LSMSSD_ASSIGN_OR_RETURN(dbopts.compaction_workers,
                          FlagUint(flags, "compaction-workers", 1));
  if (dbopts.compaction_workers == 0) {
    return Status::InvalidArgument("--compaction-workers must be >= 1");
  }
  // Merge block-writes per second; 0 = unlimited (burst stays at the
  // DbOptions auto default).
  LSMSSD_ASSIGN_OR_RETURN(dbopts.compaction_rate_limit_blocks_per_sec,
                          FlagUint(flags, "compaction-rate-limit", 0));

  LSMSSD_ASSIGN_OR_RETURN(dbopts.shards, FlagUint(flags, "shards", 1));
  if (dbopts.shards == 0) {
    return Status::InvalidArgument("--shards must be >= 1");
  }

  LSMSSD_ASSIGN_OR_RETURN(dbopts.scrub_interval_ms,
                          FlagUint(flags, "scrub-interval-ms", 0));
  LSMSSD_ASSIGN_OR_RETURN(dbopts.max_device_blocks,
                          FlagUint(flags, "max-device-blocks", 0));

  // Key–value separation (0 keeps it off, the default). The threshold is
  // a payload-size floor; Options::Validate re-checks it against the
  // pointer size, but catching it here names the flag for the user.
  LSMSSD_ASSIGN_OR_RETURN(dbopts.options.vlog_value_threshold,
                          FlagUint(flags, "vlog-threshold", 0));
  if (dbopts.options.vlog_value_threshold != 0 &&
      dbopts.options.vlog_value_threshold <= kVlogPointerSize) {
    return Status::InvalidArgument(
        "--vlog-threshold must be 0 (off) or > " +
        std::to_string(kVlogPointerSize) +
        " (smaller values would store more than they save)");
  }
  LSMSSD_ASSIGN_OR_RETURN(dbopts.vlog_gc_ratio,
                          FlagDouble(flags, "vlog-gc-ratio", 0.0));
  if (dbopts.vlog_gc_ratio < 0.0 || dbopts.vlog_gc_ratio >= 1.0) {
    return Status::InvalidArgument("--vlog-gc-ratio must be in [0, 1)");
  }
  return dbopts;
}

}  // namespace lsmssd
