#ifndef LSMSSD_DB_PINNED_BLOCK_DEVICE_H_
#define LSMSSD_DB_PINNED_BLOCK_DEVICE_H_

#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/storage/block_device.h"

namespace lsmssd {

/// BlockDevice decorator that keeps the last durable checkpoint
/// recoverable. The recovery image is (manifest, blocks it references):
/// if a merge frees a manifest-referenced block and a later allocation
/// reuses its slot, a crash before the *next* checkpoint would recover
/// the old manifest over a corrupted block — silent data loss. This
/// wrapper therefore *pins* the blocks referenced by the most recent
/// durable manifest: freeing a pinned block is deferred (the tree sees a
/// successful free and can no longer read the block through this device,
/// but the slot is not recycled) until Commit() declares the next
/// manifest durable, at which point deferred frees hit the base device
/// and the pin set is swapped.
///
/// Allocation-order note: deferring frees only delays slot reuse; it
/// never triggers extra block writes, so the paper's write counts are
/// unaffected (fig02/06/10 run on bare devices anyway).
class PinnedBlockDevice : public BlockDevice {
 public:
  /// `base` must outlive this object. The initial pin set is the block
  /// list of the manifest the Db was opened from (empty for a fresh Db).
  PinnedBlockDevice(BlockDevice* base, std::vector<BlockId> pinned);

  size_t block_size() const override { return base_->block_size(); }
  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  /// Forwards the batch to the base device (fresh blocks are never pinned,
  /// so no pin bookkeeping applies) and mirrors the per-block stats.
  Status WriteBlocks(const std::vector<BlockData>& blocks,
                     std::vector<BlockId>* ids) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) override;
  /// Forwards the batch after screening deferred-freed ids. On a vectored
  /// failure, retries per-block so the corrupt id (if any) is named and
  /// quarantined exactly as a ReadBlock would.
  Status ReadBlocks(const std::vector<BlockId>& ids,
                    std::vector<BlockData>* out) override;
  Status FreeBlock(BlockId id) override;
  Status VerifyBlock(BlockId id) override;
  Status CorruptBlockForTesting(BlockId id, const BlockData& data) override {
    return base_->CorruptBlockForTesting(id, data);
  }
  Status ReadBlockUnverifiedForTesting(BlockId id, BlockData* out) override {
    return base_->ReadBlockUnverifiedForTesting(id, out);
  }
  Status Flush() override { return base_->Flush(); }
  uint64_t live_blocks() const override {
    return base_->live_blocks() - deferred_.size();
  }

  /// A checkpoint is about to release the commit lock and publish a
  /// manifest referencing exactly `snapshot`: pin that set *now*, before
  /// writers may run again, so a concurrent merge cannot free one of its
  /// blocks and let a later allocation recycle the slot under the
  /// manifest being written. Ends with CommitCheckpoint() (publish
  /// succeeded) or AbortCheckpoint() (it failed).
  void BeginCheckpoint(const std::vector<BlockId>& snapshot);

  /// The manifest pinned by BeginCheckpoint() is durable: it becomes the
  /// recovery pin set, and every deferred free *not* in it is released on
  /// the base device. (A block freed while the manifest was in flight is
  /// still referenced by the now-durable manifest; its free stays
  /// deferred until the next checkpoint.) Errors from the base frees are
  /// returned but leave the wrapper consistent.
  Status CommitCheckpoint();

  /// The in-flight manifest failed: drop its pin set. Deferred frees for
  /// blocks only it pinned stay deferred — the Db poisons itself on a
  /// failed checkpoint, so no further allocation can recycle them anyway.
  void AbortCheckpoint();

  /// Single-step form (no concurrency window): BeginCheckpoint +
  /// CommitCheckpoint in one call, for callers that hold every lock
  /// across the whole publish.
  Status Commit(const std::vector<BlockId>& new_pinned);

  /// Blocks whose free is currently deferred (tests/introspection).
  size_t deferred_frees() const { return deferred_.size(); }

  /// Snapshot of the quarantine: every block id that has failed checksum
  /// verification (on a read or a scrub) since open. Quarantined ids are
  /// never silently served; each access keeps returning Corruption. A
  /// block leaves quarantine only by being freed (e.g. a merge rewrote
  /// the level) — until then the set names what a repair tool must
  /// restore from a replica or backup.
  std::vector<BlockId> QuarantinedBlocks() const;
  size_t quarantined_count() const;

  // Like CachedBlockDevice, this wrapper mirrors the tree's logical I/O
  // into its own stats() (a deferred free counts as a free), so
  // tree->device()->stats() stays the complete account whether or not a
  // cache sits on top.
  //
  // Thread-compatibility: not internally locked. The Db's locking
  // discipline covers it — FreeBlock/WriteNewBlock run under the
  // exclusive tree lock, reads under the shared one, and the three
  // checkpoint calls under the commit lock (CommitCheckpoint additionally
  // under the exclusive tree lock, since it frees device slots readers
  // might otherwise probe).

 private:
  /// Adds `id` to the quarantine when `st` is a Corruption verdict.
  void NoteCorruption(BlockId id, const Status& st);
  /// Drops `id` from the quarantine after a successful free.
  void NoteFreed(BlockId id);

  BlockDevice* base_;
  std::unordered_set<BlockId> pinned_;
  /// Pin set of a manifest currently being written (empty otherwise).
  std::unordered_set<BlockId> checkpoint_pinned_;
  bool checkpoint_active_ = false;
  std::unordered_set<BlockId> deferred_;  ///< Freed by the tree, still pinned.
  /// Quarantine has its own lock: corruption is discovered on the *read*
  /// path, where concurrent Db readers hold only the shared tree lock.
  mutable std::mutex quarantine_mu_;
  std::unordered_set<BlockId> quarantined_;
};

}  // namespace lsmssd

#endif  // LSMSSD_DB_PINNED_BLOCK_DEVICE_H_
