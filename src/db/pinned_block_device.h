#ifndef LSMSSD_DB_PINNED_BLOCK_DEVICE_H_
#define LSMSSD_DB_PINNED_BLOCK_DEVICE_H_

#include <unordered_set>
#include <vector>

#include "src/storage/block_device.h"

namespace lsmssd {

/// BlockDevice decorator that keeps the last durable checkpoint
/// recoverable. The recovery image is (manifest, blocks it references):
/// if a merge frees a manifest-referenced block and a later allocation
/// reuses its slot, a crash before the *next* checkpoint would recover
/// the old manifest over a corrupted block — silent data loss. This
/// wrapper therefore *pins* the blocks referenced by the most recent
/// durable manifest: freeing a pinned block is deferred (the tree sees a
/// successful free and can no longer read the block through this device,
/// but the slot is not recycled) until Commit() declares the next
/// manifest durable, at which point deferred frees hit the base device
/// and the pin set is swapped.
///
/// Allocation-order note: deferring frees only delays slot reuse; it
/// never triggers extra block writes, so the paper's write counts are
/// unaffected (fig02/06/10 run on bare devices anyway).
class PinnedBlockDevice : public BlockDevice {
 public:
  /// `base` must outlive this object. The initial pin set is the block
  /// list of the manifest the Db was opened from (empty for a fresh Db).
  PinnedBlockDevice(BlockDevice* base, std::vector<BlockId> pinned);

  size_t block_size() const override { return base_->block_size(); }
  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) override;
  Status FreeBlock(BlockId id) override;
  Status Flush() override { return base_->Flush(); }
  uint64_t live_blocks() const override {
    return base_->live_blocks() - deferred_.size();
  }

  /// The next checkpoint is durable: releases every deferred free on the
  /// base device and pins `new_pinned` (the new manifest's block list)
  /// instead. Errors from the base frees are returned but leave the
  /// wrapper consistent.
  Status Commit(const std::vector<BlockId>& new_pinned);

  /// Blocks whose free is currently deferred (tests/introspection).
  size_t deferred_frees() const { return deferred_.size(); }

  // Like CachedBlockDevice, this wrapper mirrors the tree's logical I/O
  // into its own stats() (a deferred free counts as a free), so
  // tree->device()->stats() stays the complete account whether or not a
  // cache sits on top.

 private:
  BlockDevice* base_;
  std::unordered_set<BlockId> pinned_;
  std::unordered_set<BlockId> deferred_;  ///< Freed by the tree, still pinned.
};

}  // namespace lsmssd

#endif  // LSMSSD_DB_PINNED_BLOCK_DEVICE_H_
