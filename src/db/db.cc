#include "src/db/db.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/lsm/manifest.h"
#include "src/storage/fault_injection_wal_file.h"
#include "src/util/logging.h"

// Like LSMSSD_RETURN_IF_ERROR, but a durability error also poisons the
// instance (see Db::Fail): once a WAL/tree/checkpoint step failed
// mid-operation, the in-memory state may be ahead of or behind the log,
// and only a reopen-recovery is trustworthy.
#define LSMSSD_RETURN_IF_ERROR_FAIL(expr)           \
  do {                                              \
    ::lsmssd::Status _st = (expr);                  \
    if (!_st.ok()) return Fail(std::move(_st));     \
  } while (false)

namespace lsmssd {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

uint64_t FileSizeOrZero(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

/// fsyncs `dir` itself so a rename inside it is durable.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir " + dir);
  return Status::OK();
}

/// Writes `data` (or its first `limit` bytes) to a fresh `path`,
/// fsyncing when `sync` is set.
Status WriteFile(const std::string& path, std::string_view data,
                 bool sync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + path);
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write " + path);
    }
    done += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync " + path);
  }
  if (::close(fd) != 0) return Errno("close " + path);
  return Status::OK();
}

}  // namespace

std::string Db::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}
std::string Db::ManifestTmpPath(const std::string& dir) {
  return dir + "/MANIFEST.tmp";
}
std::string Db::DevicePath(const std::string& dir) {
  return dir + "/blocks.dev";
}
std::string Db::WalPath(const std::string& dir) { return dir + "/wal.log"; }

Db::Db(DbOptions dbopts, std::string dir)
    : dbopts_(std::move(dbopts)), dir_(std::move(dir)) {}

StatusOr<std::unique_ptr<Db>> Db::Open(const DbOptions& dbopts,
                                       const std::string& dir) {
  LSMSSD_RETURN_IF_ERROR(dbopts.options.Validate());
  if (dbopts.options.annihilate_delete_put) {
    return Status::InvalidArgument(
        "Db is incompatible with annihilate_delete_put: WAL recovery "
        "re-applies a tail of the history, which eager tombstone+insert "
        "annihilation cannot tolerate");
  }
  if (dbopts.wal_sync_mode == WalSyncMode::kEveryN &&
      dbopts.wal_sync_every_n == 0) {
    return Status::InvalidArgument("wal_sync_every_n must be > 0");
  }

  // The directory.
  struct ::stat st;
  if (::stat(dir.c_str(), &st) != 0) {
    if (!dbopts.create_if_missing) {
      return Status::NotFound("no Db at " + dir +
                              " (create_if_missing is off)");
    }
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir " + dir);
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument(dir + " exists and is not a directory");
  }

  const std::string manifest_path = ManifestPath(dir);
  const bool have_manifest = FileExists(manifest_path);
  // A crash before the first checkpoint leaves a wal.log/blocks.dev with
  // no MANIFEST; that is still an existing Db (its WAL is recoverable
  // state), not a fresh directory.
  if (dbopts.error_if_exists &&
      (have_manifest || FileExists(WalPath(dir)) ||
       FileExists(DevicePath(dir)))) {
    return Status::FailedPrecondition("Db already exists at " + dir);
  }
  // A leftover MANIFEST.tmp is a checkpoint that crashed before its
  // rename; the previous MANIFEST is still the durable truth.
  (void)::unlink(ManifestTmpPath(dir).c_str());

  std::unique_ptr<Db> db(new Db(dbopts, dir));

  // Checkpoint (if any) -> device -> tree.
  Manifest manifest;
  std::vector<BlockId> manifest_blocks;
  if (have_manifest) {
    auto manifest_or = LoadManifestFromFile(manifest_path);
    if (!manifest_or.ok()) return manifest_or.status();
    manifest = std::move(manifest_or).value();
    // Stored format fields are authoritative; runtime-only knobs follow
    // the caller.
    manifest.options.cache_blocks = dbopts.options.cache_blocks;
    manifest.options.bloom_bits_per_key = dbopts.options.bloom_bits_per_key;
    for (const auto& level : manifest.levels) {
      for (const LeafMeta& leaf : level) manifest_blocks.push_back(leaf.block);
    }
  }

  FileBlockDevice::FileOptions fopts;
  fopts.block_size =
      have_manifest ? manifest.options.block_size : dbopts.options.block_size;
  fopts.remove_on_close = false;
  // Without a manifest no block is referenced by any durable state, so a
  // pre-existing device file (crash before the first checkpoint) is
  // starting-over garbage.
  fopts.truncate = !have_manifest;
  auto device_or = FileBlockDevice::Open(DevicePath(dir), fopts);
  if (!device_or.ok()) return device_or.status();
  db->device_ = std::move(device_or).value();
  if (have_manifest) {
    LSMSSD_RETURN_IF_ERROR(db->device_->RestoreLive(manifest_blocks));
  }

  BlockDevice* dev = db->device_.get();
  if (dbopts.fault_injector != nullptr) {
    db->fault_device_ = std::make_unique<FaultInjectionBlockDevice>(
        dev, dbopts.fault_injector);
    dev = db->fault_device_.get();
  }
  db->pinned_ = std::make_unique<PinnedBlockDevice>(dev, manifest_blocks);
  db->recovery_manifest_blocks_ = manifest_blocks.size();

  auto policy = CreatePolicy(dbopts.policy, dbopts.mixed_params);
  auto tree_or =
      have_manifest
          ? LsmTree::Restore(manifest, db->pinned_.get(), std::move(policy))
          : LsmTree::Open(dbopts.options, db->pinned_.get(),
                          std::move(policy));
  if (!tree_or.ok()) return tree_or.status();
  db->tree_ = std::move(tree_or).value();

  // Replay the WAL tail on top of the checkpoint. Blind-write semantics
  // make this safe even when the manifest already includes a prefix of
  // the tail (crash between manifest rename and WAL truncate).
  const std::string wal_path = WalPath(dir);
  size_t wal_valid_bytes = 0;
  auto replay_or = WalReader::ReadAll(wal_path, &wal_valid_bytes);
  if (!replay_or.ok()) return replay_or.status();
  for (const Record& r : replay_or.value()) {
    Status st = r.is_tombstone() ? db->tree_->Delete(r.key)
                                 : db->tree_->Put(r.key, r.payload);
    if (!st.ok()) {
      // A checksummed entry the tree rejects means the log lied about
      // its own contents.
      if (st.IsInvalidArgument()) {
        return Status::Corruption("WAL replay: " + st.message());
      }
      return st;
    }
    ++db->recovery_replayed_;
  }

  // The log's intact prefix stays (a crash before the next checkpoint
  // must replay it again), but a torn tail is cut off *before* new
  // appends — an entry written behind a tear would be unreachable on the
  // next replay.
  if (FileSizeOrZero(wal_path) > wal_valid_bytes) {
    if (::truncate(wal_path.c_str(), static_cast<off_t>(wal_valid_bytes)) !=
        0) {
      return Errno("truncate torn WAL tail " + wal_path);
    }
  }
  if (dbopts.fault_injector != nullptr) {
    auto base_or = PosixWalFile::Open(wal_path);
    if (!base_or.ok()) return base_or.status();
    db->wal_ = WalWriter::Wrap(std::make_unique<FaultInjectionWalFile>(
        std::move(base_or).value(), dbopts.fault_injector));
  } else {
    auto wal_or = WalWriter::Open(wal_path);
    if (!wal_or.ok()) return wal_or.status();
    db->wal_ = std::move(wal_or).value();
  }
  db->wal_recovered_bytes_ = wal_valid_bytes;
  return db;
}

Db::~Db() {
  if (!failed_ && wal_ != nullptr) (void)wal_->Sync();
}

Status Db::Fail(Status st) {
  LSMSSD_CHECK(!st.ok());
  failed_ = true;
  return st;
}

uint64_t Db::WalLiveBytes() const {
  return wal_recovered_bytes_ +
         (wal_->bytes_appended() - bytes_at_last_truncate_);
}

Status Db::Put(Key key, std::string_view payload) {
  return Apply(Record::Put(key, std::string(payload)));
}

Status Db::Delete(Key key) { return Apply(Record::Tombstone(key)); }

Status Db::Apply(const Record& record) {
  if (failed_) {
    return Status::FailedPrecondition(
        "db failed after a durability error; reopen to recover");
  }
  // Validate before logging: the WAL must never carry an entry the tree
  // would reject on replay.
  const Options& options = tree_->options();
  if (!record.is_tombstone() &&
      record.payload.size() != options.payload_size) {
    return Status::InvalidArgument("payload must be exactly payload_size");
  }
  if (record.key > MaxKeyForSize(options.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }

  LSMSSD_RETURN_IF_ERROR_FAIL(wal_->Append(record));

  const bool need_sync =
      dbopts_.wal_sync_mode == WalSyncMode::kAlways ||
      (dbopts_.wal_sync_mode == WalSyncMode::kEveryN &&
       wal_->entries_appended() - entries_synced_ >=
           dbopts_.wal_sync_every_n);
  if (need_sync) {
    LSMSSD_RETURN_IF_ERROR_FAIL(wal_->Sync());
    ++wal_syncs_;
    entries_synced_ = wal_->entries_appended();
  }

  LSMSSD_RETURN_IF_ERROR_FAIL(record.is_tombstone()
                                  ? tree_->Delete(record.key)
                                  : tree_->Put(record.key, record.payload));

  if (dbopts_.checkpoint_wal_bytes > 0 &&
      WalLiveBytes() >= dbopts_.checkpoint_wal_bytes) {
    LSMSSD_RETURN_IF_ERROR_FAIL(CheckpointInternal());
  }
  return Status::OK();
}

StatusOr<std::string> Db::Get(Key key) {
  if (failed_) {
    return Status::FailedPrecondition(
        "db failed after a durability error; reopen to recover");
  }
  return tree_->Get(key);
}

Status Db::Scan(Key lo, Key hi,
                std::vector<std::pair<Key, std::string>>* out) {
  if (failed_) {
    return Status::FailedPrecondition(
        "db failed after a durability error; reopen to recover");
  }
  return tree_->Scan(lo, hi, out);
}

std::unique_ptr<Iterator> Db::NewIterator() const {
  if (failed_) return nullptr;
  return tree_->NewIterator();
}

Status Db::SyncWal() {
  if (failed_) {
    return Status::FailedPrecondition(
        "db failed after a durability error; reopen to recover");
  }
  LSMSSD_RETURN_IF_ERROR_FAIL(wal_->Sync());
  ++wal_syncs_;
  entries_synced_ = wal_->entries_appended();
  return Status::OK();
}

Status Db::Checkpoint() {
  if (failed_) {
    return Status::FailedPrecondition(
        "db failed after a durability error; reopen to recover");
  }
  LSMSSD_RETURN_IF_ERROR_FAIL(CheckpointInternal());
  return Status::OK();
}

Status Db::CheckpointInternal() {
  // 1. The on-disk WAL must cover every entry the manifest will include
  //    *before* the manifest is published: a crash between the rename
  //    (step 3) and the truncate (step 4) recovers by replaying the log
  //    on top of the checkpoint, which only re-converges if the durable
  //    log is a superset of the manifest's entries. Without this sync,
  //    kEveryN/kNone could publish a manifest at entry N while the disk
  //    log ends at M < N — replay would then regress every key
  //    rewritten in (M, N] to its older value.
  LSMSSD_RETURN_IF_ERROR(wal_->Sync());
  ++wal_syncs_;
  entries_synced_ = wal_->entries_appended();
  // 2. Every block the manifest will reference must be durable too.
  LSMSSD_RETURN_IF_ERROR(pinned_->Flush());
  // 3. Publish the manifest atomically.
  LSMSSD_RETURN_IF_ERROR(WriteManifestAtomically(EncodeManifest(*tree_)));
  ++checkpoints_;
  // 4. The WAL's entries are all included in the manifest; empty it. (A
  //    crash between 3 and 4 double-replays them — safe, blind writes.)
  LSMSSD_RETURN_IF_ERROR(wal_->Truncate());
  wal_recovered_bytes_ = 0;
  bytes_at_last_truncate_ = wal_->bytes_appended();
  // 5. Blocks only the *previous* manifest referenced may now recycle.
  LSMSSD_RETURN_IF_ERROR(pinned_->Commit(CurrentTreeBlocks()));
  return Status::OK();
}

Status Db::WriteManifestAtomically(const std::string& data) {
  const std::string tmp = ManifestTmpPath(dir_);
  const std::string path = ManifestPath(dir_);
  FaultInjector* injector = dbopts_.fault_injector;
  if (injector != nullptr && injector->Step()) {
    // Crash mid-write: a torn tmp file, never renamed, ignored (and
    // deleted) by the next Open.
    (void)WriteFile(tmp, std::string_view(data).substr(0, data.size() / 2),
                    /*sync=*/false);
    return Status::IoError("injected fault: torn manifest tmp write");
  }
  LSMSSD_RETURN_IF_ERROR(WriteFile(tmp, data, /*sync=*/true));
  if (injector != nullptr && injector->Step()) {
    return Status::IoError("injected fault: crash before manifest rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return Errno("rename " + tmp + " -> " + path);
  }
  return SyncDir(dir_);
}

std::vector<BlockId> Db::CurrentTreeBlocks() const {
  std::vector<BlockId> blocks;
  for (size_t i = 1; i < tree_->num_levels(); ++i) {
    for (const LeafMeta& leaf : tree_->level(i).leaves()) {
      blocks.push_back(leaf.block);
    }
  }
  return blocks;
}

DbStats Db::Stats() const {
  DbStats s;
  // The tree's device view carries the complete logical account: block
  // writes/reads/allocs/frees plus cache_hits/misses and bloom_skips
  // (mirrored by CachedBlockDevice / recorded by Level::Lookup).
  s.io = tree_->device()->stats();
  s.wal_entries_appended = wal_->entries_appended();
  s.wal_bytes_appended = wal_->bytes_appended();
  s.wal_syncs = wal_syncs_;
  s.checkpoints = checkpoints_;
  s.recovery_wal_entries_replayed = recovery_replayed_;
  s.recovery_manifest_blocks = recovery_manifest_blocks_;
  s.deferred_frees = pinned_->deferred_frees();
  return s;
}

std::string DbStats::ToString() const {
  std::string out = "io: " + io.ToString() + "\n";
  out += "wal: entries=" + std::to_string(wal_entries_appended) +
         " bytes=" + std::to_string(wal_bytes_appended) +
         " syncs=" + std::to_string(wal_syncs) + "\n";
  out += "checkpoints: " + std::to_string(checkpoints) +
         " (deferred frees pending: " + std::to_string(deferred_frees) +
         ")\n";
  out += "recovery: manifest_blocks=" +
         std::to_string(recovery_manifest_blocks) +
         " wal_entries_replayed=" +
         std::to_string(recovery_wal_entries_replayed) + "\n";
  return out;
}

}  // namespace lsmssd
