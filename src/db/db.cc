#include "src/db/db.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <shared_mutex>  // std::shared_lock

#include "src/db/fs_util.h"
#include "src/lsm/manifest.h"
#include "src/storage/fault_injection_wal_file.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

// POSIX helpers now live in fs_util.h (shared with db_sharded.cc).
using fsutil::Errno;
using fsutil::FileExists;
using fsutil::FileSizeOrZero;
using fsutil::SyncDir;
using fsutil::WriteFile;

/// Iterator wrapper that pins the Db's tree by holding its shared tree
/// lock until destroyed: the underlying tree iterator stays valid, and
/// writers (which need the lock exclusively) wait.
class SnapshotIterator : public Iterator {
 public:
  /// `mem_lock` is engaged only in background-compaction mode, where the
  /// memtables the iterator reads are guarded by their own lock.
  SnapshotIterator(std::shared_lock<SharedMutex> lock,
                   std::shared_lock<SharedMutex> mem_lock,
                   std::unique_ptr<Iterator> base)
      : lock_(std::move(lock)),
        mem_lock_(std::move(mem_lock)),
        base_(std::move(base)) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override { base_->SeekToFirst(); }
  void Seek(Key target) override { base_->Seek(target); }
  void Next() override { base_->Next(); }
  Key key() const override { return base_->key(); }
  const std::string& value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  std::shared_lock<SharedMutex> lock_;
  std::shared_lock<SharedMutex> mem_lock_;
  std::unique_ptr<Iterator> base_;
};

/// Iterator layer for key–value separation: the base (a SnapshotIterator,
/// which holds the Db's read locks for its lifetime) yields pointer
/// payloads; value() resolves the current one through the value log,
/// caching per position. A corrupt entry surfaces through status() with
/// an empty value rather than tearing the whole iteration down.
class VlogResolvingIterator : public Iterator {
 public:
  using Resolver = std::function<Status(std::string_view, Key, std::string*)>;
  VlogResolvingIterator(std::unique_ptr<Iterator> base, Resolver resolver)
      : base_(std::move(base)), resolver_(std::move(resolver)) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override {
    resolved_valid_ = false;
    base_->SeekToFirst();
  }
  void Seek(Key target) override {
    resolved_valid_ = false;
    base_->Seek(target);
  }
  void Next() override {
    resolved_valid_ = false;
    base_->Next();
  }
  Key key() const override { return base_->key(); }
  const std::string& value() const override {
    if (!resolved_valid_) {
      Status st = resolver_(base_->value(), base_->key(), &resolved_);
      if (!st.ok()) {
        resolved_.clear();
        status_ = std::move(st);
      }
      resolved_valid_ = true;
    }
    return resolved_;
  }
  Status status() const override {
    if (!status_.ok()) return status_;
    return base_->status();
  }

 private:
  std::unique_ptr<Iterator> base_;
  Resolver resolver_;
  mutable std::string resolved_;
  mutable bool resolved_valid_ = false;
  mutable Status status_;
};

}  // namespace

std::string Db::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}
std::string Db::ManifestTmpPath(const std::string& dir) {
  return dir + "/MANIFEST.tmp";
}
std::string Db::DevicePath(const std::string& dir) {
  return dir + "/blocks.dev";
}
std::string Db::ChecksumPath(const std::string& dir) {
  return FileBlockDevice::SidecarPath(DevicePath(dir));
}
std::string Db::WalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string Db::WalSegmentPath(const std::string& dir, uint64_t seq) {
  return dir + "/wal.old." + std::to_string(seq);
}

std::vector<std::string> Db::ListWalSegments(const std::string& dir) {
  static const std::string kPrefix = "wal.old.";
  std::vector<std::pair<uint64_t, std::string>> segments;
  ::DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return {};
  while (struct ::dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::string tail = name.substr(kPrefix.size());
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.emplace_back(std::stoull(tail), dir + "/" + name);
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end());
  std::vector<std::string> paths;
  paths.reserve(segments.size());
  for (auto& [seq, path] : segments) paths.push_back(std::move(path));
  return paths;
}

std::string Db::VlogSegmentPath(const std::string& dir, uint64_t n) {
  return dir + "/vlog-" + std::to_string(n);
}

std::vector<uint64_t> Db::ListVlogSegments(const std::string& dir) {
  static const std::string kPrefix = "vlog-";
  std::vector<uint64_t> segments;
  ::DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return {};
  while (struct ::dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::string tail = name.substr(kPrefix.size());
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.push_back(std::stoull(tail));
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end());
  return segments;
}

Db::Db(DbOptions dbopts, std::string dir)
    : dbopts_(std::move(dbopts)), dir_(std::move(dir)) {}

StatusOr<std::unique_ptr<Db>> Db::Open(const DbOptions& dbopts,
                                       const std::string& dir) {
  LSMSSD_RETURN_IF_ERROR(dbopts.options.Validate());
  if (dbopts.options.annihilate_delete_put) {
    return Status::InvalidArgument(
        "Db is incompatible with annihilate_delete_put: WAL recovery "
        "re-applies a tail of the history, which eager tombstone+insert "
        "annihilation cannot tolerate");
  }
  if (dbopts.wal_sync_mode == WalSyncMode::kEveryN &&
      dbopts.wal_sync_every_n == 0) {
    return Status::InvalidArgument("wal_sync_every_n must be > 0");
  }
  if (dbopts.background_compaction && dbopts.compaction_queue_depth == 0) {
    return Status::InvalidArgument("compaction_queue_depth must be >= 1");
  }
  if (dbopts.background_compaction && dbopts.compaction_workers == 0) {
    return Status::InvalidArgument("compaction_workers must be >= 1");
  }
  if (dbopts.shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (dbopts.vlog_gc_ratio < 0 || dbopts.vlog_gc_ratio >= 1) {
    return Status::InvalidArgument("vlog_gc_ratio must be in [0, 1)");
  }
  if (dbopts.options.vlog_value_threshold != 0 &&
      dbopts.vlog_segment_bytes == 0) {
    return Status::InvalidArgument("vlog_segment_bytes must be > 0");
  }
  if (dbopts.checkpoint_wal_bytes > 0) {
    // Framed WAL entry: [u32 length][u32 crc][u8 type][u64 key][payload].
    // In vlog mode the WAL carries the 16-byte pointer, not the value.
    const uint64_t max_entry_bytes =
        4 + 4 + 1 + 8 + dbopts.options.stored_payload_size();
    if (dbopts.checkpoint_wal_bytes < 2 * max_entry_bytes) {
      return Status::InvalidArgument(
          "checkpoint_wal_bytes=" + std::to_string(dbopts.checkpoint_wal_bytes) +
          " is below two WAL entries (" + std::to_string(2 * max_entry_bytes) +
          " bytes): every modification would trigger a checkpoint; raise "
          "it or use 0 to disable automatic checkpoints");
    }
  }

  // The directory.
  struct ::stat st;
  if (::stat(dir.c_str(), &st) != 0) {
    if (!dbopts.create_if_missing) {
      return Status::NotFound("no Db at " + dir +
                              " (create_if_missing is off)");
    }
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir " + dir);
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument(dir + " exists and is not a directory");
  }

  // Sharded layouts branch off here: an existing SHARDS file is
  // authoritative (the Db reopens sharded even with default options);
  // otherwise shards > 1 creates one. Everything below this block is the
  // classic single-shard path, untouched.
  {
    size_t layout_shards = 0;
    if (FileExists(ShardLayoutPath(dir))) {
      auto layout_or = ReadShardLayout(dir);
      if (!layout_or.ok()) return layout_or.status();
      layout_shards = layout_or.value();
    }
    if (layout_shards > 0 || dbopts.shards > 1) {
      return OpenSharded(dbopts, dir, layout_shards);
    }
  }

  const std::string manifest_path = ManifestPath(dir);
  const bool have_manifest = FileExists(manifest_path);
  const std::vector<std::string> wal_segments = ListWalSegments(dir);
  // A crash before the first checkpoint leaves a wal.log/blocks.dev with
  // no MANIFEST; that is still an existing Db (its WAL is recoverable
  // state), not a fresh directory.
  if (dbopts.error_if_exists &&
      (have_manifest || FileExists(WalPath(dir)) ||
       FileExists(DevicePath(dir)) || !wal_segments.empty())) {
    return Status::FailedPrecondition("Db already exists at " + dir);
  }
  // A leftover MANIFEST.tmp is a checkpoint that crashed before its
  // rename; the previous MANIFEST is still the durable truth.
  (void)::unlink(ManifestTmpPath(dir).c_str());

  std::unique_ptr<Db> db(new Db(dbopts, dir));

  // Checkpoint (if any) -> device -> tree.
  Manifest manifest;
  std::vector<BlockId> manifest_blocks;
  if (have_manifest) {
    auto manifest_or = LoadManifestFromFile(manifest_path);
    if (!manifest_or.ok()) return manifest_or.status();
    manifest = std::move(manifest_or).value();
    // Stored format fields are authoritative; runtime-only knobs follow
    // the caller.
    manifest.options.cache_blocks = dbopts.options.cache_blocks;
    manifest.options.bloom_bits_per_key = dbopts.options.bloom_bits_per_key;
    manifest.options.io_batch_blocks = dbopts.options.io_batch_blocks;
    for (const auto& level : manifest.levels) {
      for (const LeafMeta& leaf : level) manifest_blocks.push_back(leaf.block);
    }
  }

  FileBlockDevice::FileOptions fopts;
  fopts.block_size =
      have_manifest ? manifest.options.block_size : dbopts.options.block_size;
  fopts.remove_on_close = false;
  // Without a manifest no block is referenced by any durable state, so a
  // pre-existing device file (crash before the first checkpoint) is
  // starting-over garbage.
  fopts.truncate = !have_manifest;
  fopts.max_blocks = dbopts.max_device_blocks;
  auto device_or = FileBlockDevice::Open(DevicePath(dir), fopts);
  if (!device_or.ok()) return device_or.status();
  db->device_ = std::move(device_or).value();
  if (have_manifest) {
    LSMSSD_RETURN_IF_ERROR(db->device_->RestoreLive(manifest_blocks));
  }

  BlockDevice* dev = db->device_.get();
  if (dbopts.fault_injector != nullptr) {
    db->fault_device_ = std::make_unique<FaultInjectionBlockDevice>(
        dev, dbopts.fault_injector);
    dev = db->fault_device_.get();
  }
  db->pinned_ = std::make_unique<PinnedBlockDevice>(dev, manifest_blocks);
  db->recovery_manifest_blocks_ = manifest_blocks.size();

  auto policy = CreatePolicy(dbopts.policy, dbopts.mixed_params);
  auto tree_or =
      have_manifest
          ? LsmTree::Restore(manifest, db->pinned_.get(), std::move(policy))
          : LsmTree::Open(dbopts.options, db->pinned_.get(),
                          std::move(policy));
  if (!tree_or.ok()) return tree_or.status();
  db->tree_ = std::move(tree_or).value();

  // Key–value separation: the stored threshold is format-defining, so
  // the *tree's* options (manifest-authoritative) decide, not the
  // caller's. Discover the durable segments before replay — WAL pointer
  // records are validated against the durable vlog frontier below.
  db->vlog_on_ = db->tree_->options().vlog_enabled();
  const VlogManifestState& vm = manifest.vlog;  // Zeros without a manifest.
  uint64_t vlog_last = 0;  // Highest existing segment = the head.
  std::map<uint64_t, uint64_t> vlog_sizes;  // Durable size per segment.
  std::map<uint64_t, uint64_t> vlog_frontier;  // Max replayed pointer end.
  if (db->vlog_on_) {
    db->vlog_tail_file_ = vm.tail_file;
    db->vlog_pending_tail_ = vm.tail_file;
    vlog_last = vm.head_file;
    for (uint64_t n : ListVlogSegments(dir)) {
      if (n < vm.tail_file) {
        // Crash between the manifest publishing this tail and the segment
        // unlink: every live entry was already rewritten, finish the job.
        (void)::unlink(VlogSegmentPath(dir, n).c_str());
        continue;
      }
      vlog_sizes[n] = FileSizeOrZero(VlogSegmentPath(dir, n));
      vlog_last = std::max(vlog_last, n);
    }
    // The manifest's tree state references entries up to head_offset; a
    // head segment shorter than that lost durable (fsynced) bytes.
    if (vm.head_offset > 0) {
      auto it = vlog_sizes.find(vm.head_file);
      if (it == vlog_sizes.end() || it->second < vm.head_offset) {
        return Status::Corruption(
            "vlog segment " + std::to_string(vm.head_file) +
            " is shorter than the manifest frontier");
      }
    }
  }

  // A WAL pointer record "dangles" when its entry ends past the durable
  // bytes of its segment: the WAL fsync outran the vlog bytes (a crash in
  // the window between the vlog sync and the WAL sync, or kNone losing
  // the page cache). Dangling entries are always a *suffix* of the active
  // log in commit order — vlog appends precede WAL appends under the
  // commit lock and both tear as prefixes — so recovery drops the suffix.
  // Pointers *below* the manifest tail are stale (GC already rewrote
  // those keys later in the log) and replay harmlessly as blind writes.
  auto vlog_dangles = [&](const Record& r) -> bool {
    if (!db->vlog_on_ || r.is_tombstone()) return false;
    VlogPointer ptr;
    if (!DecodeVlogPointer(r.payload, &ptr)) return true;
    if (ptr.file < vm.tail_file) return false;
    auto it = vlog_sizes.find(ptr.file);
    const uint64_t size = it == vlog_sizes.end() ? 0 : it->second;
    const uint64_t end = ptr.offset + vlog::kEntryHeaderSize + ptr.length;
    if (end > size) return true;
    uint64_t& f = vlog_frontier[ptr.file];
    f = std::max(f, end);
    return false;
  };

  // Replay the WAL on top of the checkpoint, oldest first: rotated
  // segments (a checkpoint's manifest write crashed after rotating the
  // log), then the active log. Blind-write semantics make this safe even
  // when the manifest already includes a prefix of the replayed entries
  // (crash between manifest rename and segment unlink).
  auto replay_records = [&db](const std::vector<Record>& records,
                              size_t limit) -> Status {
    for (size_t i = 0; i < limit; ++i) {
      const Record& r = records[i];
      Status st = r.is_tombstone() ? db->tree_->Delete(r.key)
                                   : db->tree_->Put(r.key, r.payload);
      if (!st.ok()) {
        // A checksummed entry the tree rejects means the log lied about
        // its own contents.
        if (st.IsInvalidArgument()) {
          return Status::Corruption("WAL replay: " + st.message());
        }
        return st;
      }
      ++db->recovery_replayed_;
    }
    return Status::OK();
  };

  for (const std::string& seg_path : wal_segments) {
    size_t seg_valid_bytes = 0;
    auto seg_or = WalReader::ReadAll(seg_path, &seg_valid_bytes);
    if (!seg_or.ok()) return seg_or.status();
    // Rotation only ever renames a fully synced, quiesced log, so a torn
    // tail in a *segment* is real corruption, not a benign crash artifact
    // (unlike the active log below). The same holds for its vlog bytes:
    // rotation happens after a full sync pass that covers the vlog first,
    // so a rotated entry whose pointer dangles lost durable data.
    if (seg_valid_bytes < FileSizeOrZero(seg_path)) {
      return Status::Corruption("rotated WAL segment " + seg_path +
                                " has a torn tail");
    }
    for (const Record& r : seg_or.value()) {
      if (vlog_dangles(r)) {
        return Status::Corruption("rotated WAL segment " + seg_path +
                                  " references lost vlog bytes");
      }
    }
    LSMSSD_RETURN_IF_ERROR(replay_records(seg_or.value(),
                                          seg_or.value().size()));
    db->wal_old_bytes_ += seg_valid_bytes;
    const uint64_t seq = std::stoull(seg_path.substr(seg_path.rfind('.') + 1));
    db->next_wal_segment_ = std::max(db->next_wal_segment_, seq + 1);
  }

  const std::string wal_path = WalPath(dir);
  size_t wal_valid_bytes = 0;
  std::vector<size_t> wal_entry_offsets;
  auto replay_or = WalReader::ReadAll(wal_path, &wal_valid_bytes,
                                      &wal_entry_offsets);
  if (!replay_or.ok()) return replay_or.status();
  // Active log: cut at the first dangling pointer (suffix drop — all
  // acked-durable entries had their vlog bytes synced first, so only an
  // unacknowledged tail can dangle).
  size_t wal_keep = replay_or.value().size();
  for (size_t i = 0; i < replay_or.value().size(); ++i) {
    if (vlog_dangles(replay_or.value()[i])) {
      wal_keep = i;
      wal_valid_bytes = wal_entry_offsets[i];
      break;
    }
  }
  LSMSSD_RETURN_IF_ERROR(replay_records(replay_or.value(), wal_keep));

  // The log's intact prefix stays (a crash before the next checkpoint
  // must replay it again), but a torn tail is cut off *before* new
  // appends — an entry written behind a tear would be unreachable on the
  // next replay.
  if (FileSizeOrZero(wal_path) > wal_valid_bytes) {
    if (::truncate(wal_path.c_str(), static_cast<off_t>(wal_valid_bytes)) !=
        0) {
      return Errno("truncate torn WAL tail " + wal_path);
    }
  }
  auto writer_or = db->MakeWalWriter(wal_path);
  if (!writer_or.ok()) return writer_or.status();
  db->wal_ = std::move(writer_or).value();
  db->wal_recovered_bytes_ = wal_valid_bytes;

  if (db->vlog_on_) {
    // The head segment may carry bytes past every durable reference —
    // orphan entries whose WAL frames were lost, or a torn half-entry
    // from a sync crash. Truncate it to the durable frontier so no
    // unreferenced byte survives recovery; sealed segments keep orphan
    // *whole* entries (they are dead, GC reclaims them with the segment).
    uint64_t head_frontier = 0;
    if (auto it = vlog_frontier.find(vlog_last); it != vlog_frontier.end()) {
      head_frontier = it->second;
    }
    if (vm.head_file == vlog_last) {
      head_frontier = std::max(head_frontier, vm.head_offset);
    }
    const std::string head_path = VlogSegmentPath(dir, vlog_last);
    if (FileSizeOrZero(head_path) > head_frontier &&
        ::truncate(head_path.c_str(),
                   static_cast<off_t>(head_frontier)) != 0) {
      return Errno("truncate vlog head " + head_path);
    }
    for (uint64_t n = vm.tail_file; n <= vlog_last; ++n) {
      if (n != vlog_last && vlog_sizes.find(n) == vlog_sizes.end()) {
        continue;  // Never referenced (checked above) and absent: skip.
      }
      auto file_or = db->MakeVlogFile(n, /*writable=*/n == vlog_last);
      if (!file_or.ok()) return file_or.status();
      db->vlog_files_[n] = std::move(file_or).value();
    }
    db->vlog_head_file_ = vlog_last;
    db->vlog_head_offset_ = head_frontier;
    db->vlog_head_ = db->vlog_files_[vlog_last].get();
  }

  if ((dbopts.background_checkpoint && dbopts.checkpoint_wal_bytes > 0) ||
      dbopts.scrub_interval_ms > 0 ||
      (db->vlog_on_ && dbopts.vlog_gc_ratio > 0)) {
    db->maintenance_ = std::thread(&Db::MaintenanceLoop, db.get());
  }
  if (dbopts.background_compaction) {
    if (dbopts.compaction_rate_limit_blocks_per_sec > 0) {
      const uint64_t burst =
          dbopts.compaction_rate_burst_blocks > 0
              ? dbopts.compaction_rate_burst_blocks
              : std::max<uint64_t>(
                    64, dbopts.compaction_rate_limit_blocks_per_sec / 8);
      db->merge_rate_limiter_ = std::make_unique<RateLimiter>(
          dbopts.compaction_rate_limit_blocks_per_sec, burst);
      db->tree_->set_merge_rate_limiter(db->merge_rate_limiter_.get());
    }
    db->compaction_pool_.reserve(dbopts.compaction_workers);
    for (size_t i = 0; i < dbopts.compaction_workers; ++i) {
      db->compaction_pool_.emplace_back(&Db::CompactionLoop, db.get());
    }
  }
  return db;
}

StatusOr<std::unique_ptr<WalWriter>> Db::MakeWalWriter(
    const std::string& path) const {
  if (dbopts_.fault_injector != nullptr) {
    auto base_or = PosixWalFile::Open(path);
    if (!base_or.ok()) return base_or.status();
    return WalWriter::Wrap(std::make_unique<FaultInjectionWalFile>(
        std::move(base_or).value(), dbopts_.fault_injector));
  }
  return WalWriter::Open(path);
}

StatusOr<std::shared_ptr<VlogFile>> Db::MakeVlogFile(uint64_t n,
                                                     bool writable) const {
  auto base_or = PosixVlogFile::Open(VlogSegmentPath(dir_, n));
  if (!base_or.ok()) return base_or.status();
  // Only the head is appended, so only it needs the injected page-cache
  // model; sealed segments are fully durable and read straight through.
  if (writable && dbopts_.fault_injector != nullptr) {
    return std::shared_ptr<VlogFile>(std::make_shared<FaultInjectionVlogFile>(
        std::move(base_or).value(), dbopts_.fault_injector));
  }
  return std::shared_ptr<VlogFile>(std::move(base_or).value());
}

void Db::Close() {
  if (!shards_.empty()) {
    // The facade has no threads of its own; closing is closing the
    // children (idempotent, like the single-shard path).
    for (auto& s : shards_) s->Close();
    return;
  }
  {
    std::unique_lock<std::mutex> lk(db_mu_);
    if (closed_) return;
    closed_ = true;
    stop_maintenance_ = true;
  }
  maint_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  {
    std::lock_guard<std::mutex> clk(comp_mu_);
    stop_compaction_ = true;
  }
  comp_cv_.notify_all();
  for (std::thread& t : compaction_pool_) {
    if (t.joinable()) t.join();
  }
}

Db::~Db() {
  Close();
  // Value bytes before the pointers that reference them, as everywhere.
  if (!failed() && vlog_head_ != nullptr) (void)vlog_head_->Sync();
  if (!failed() && wal_ != nullptr) (void)wal_->Sync();
}

Status Db::FailLocked(Status st) {
  LSMSSD_CHECK(!st.ok());
  failed_.store(true, std::memory_order_release);
  // Wake every waiter (group-commit followers, queued checkpoints, the
  // maintenance thread, stalled writers) so nobody blocks on progress
  // that will never come.
  sync_cv_.notify_all();
  ckpt_cv_.notify_all();
  maint_cv_.notify_all();
  stall_cv_.notify_all();
  return st;
}

Status Db::FailedStatus() const {
  return Status::FailedPrecondition(
      "db failed after a durability error; reopen to recover");
}

uint64_t Db::WalLiveBytesLocked() const {
  return wal_old_bytes_ + wal_recovered_bytes_ + wal_->bytes_appended();
}

Status Db::Put(Key key, std::string_view payload) {
  return Apply(Record::Put(key, std::string(payload)));
}

Status Db::Delete(Key key) { return Apply(Record::Tombstone(key)); }

Status Db::Apply(const Record& record) {
  if (!shards_.empty()) {
    if (failed()) return FailedStatus();
    // Keep the cross-shard memory budget honest before admitting the
    // write, then route: each shard is a complete Db, so WAL order ==
    // apply order holds per shard (recovery replays per shard).
    ArbitrateShardMemory();
    return shards_[ShardOfKey(record.key, shards_.size())]->Apply(record);
  }

  // Validate before logging (and before taking any lock): the WAL must
  // never carry an entry the tree would reject on replay. tree_ and its
  // options are immutable after Open.
  const Options& options = tree_->options();
  if (!record.is_tombstone() &&
      record.payload.size() != options.payload_size) {
    return Status::InvalidArgument("payload must be exactly payload_size");
  }
  if (record.key > MaxKeyForSize(options.key_size)) {
    return Status::InvalidArgument("key does not fit in key_size bytes");
  }

  std::unique_lock<std::mutex> lk(db_mu_);
  if (failed()) return FailedStatus();
  return ApplyLocked(record, lk);
}

Status Db::ApplyLocked(const Record& in, std::unique_lock<std::mutex>& lk) {
  // Background mode: make room in the memtable pipeline *before* the WAL
  // append (throttle, seal a full memtable, stall on a full queue), so an
  // op that must be refused — compaction wedged on a full device — is
  // refused before it is logged.
  if (dbopts_.background_compaction) {
    LSMSSD_RETURN_IF_ERROR(MaybeSealOrStallLocked(lk));
    if (failed()) return FailedStatus();
  }

  // Key–value separation: move the value into the log first and commit a
  // 16-byte pointer instead — the WAL frame, memtable, and every block
  // the record ever occupies carry the pointer, so merges move O(pointer)
  // bytes per record no matter how large the value.
  Record pointer_record;
  const Record* rec = &in;
  if (vlog_on_ && !in.is_tombstone()) {
    pointer_record = in;
    LSMSSD_RETURN_IF_ERROR(VlogAppendLocked(&pointer_record));
    rec = &pointer_record;
  }
  const Record& record = *rec;

  // Append + apply under one continuous db_mu_ hold, so tree apply order
  // is exactly WAL append order (recovery replays the same sequence).
  const uint64_t bytes_before = wal_->bytes_appended();
  if (Status st = wal_->Append(record); !st.ok()) {
    return FailLocked(std::move(st));
  }
  wal_bytes_total_ += wal_->bytes_appended() - bytes_before;
  const uint64_t my_seq = ++seq_appended_;

  if (dbopts_.background_compaction) {
    // The decoupled apply: into the active memtable only, under mem_mu_
    // (readers probe it shared), never touching tree_mu_ — so this write
    // cannot wait behind a running merge step.
    std::unique_lock<SharedMutex> mlk(mem_mu_);
    Status st = record.is_tombstone()
                    ? tree_->DeleteNoMerge(record.key)
                    : tree_->PutNoMerge(record.key, record.payload);
    if (!st.ok()) {
      // Unreachable after the validation above; treat as a logic fault.
      mlk.unlock();
      return FailLocked(std::move(st));
    }
    // Publish the active-memtable size for a parent facade's memory
    // arbiter (exact under mem_mu_; the load side is relaxed).
    mem_active_records_.store(tree_->active_memtable_records(),
                              std::memory_order_relaxed);
  } else {
    std::unique_lock<SharedMutex> tlk(tree_mu_);
    Status st = record.is_tombstone()
                    ? tree_->Delete(record.key)
                    : tree_->Put(record.key, record.payload);
    if (!st.ok()) {
      tlk.unlock();
      // Only durability errors poison the Db. The record itself is
      // already WAL-logged and sitting in L0 (the tree applies to the
      // memtable before merging); what failed is the *triggered merge*,
      // which aborts atomically and leaves the tree intact:
      //   - ResourceExhausted: the device hit max_device_blocks. Surface
      //     it as write backpressure — the caller can checkpoint, free
      //     capacity, or raise the cap, and writers make progress again.
      //   - Corruption: the merge touched a damaged block, now
      //     quarantined. Reads and writes of healthy ranges keep working.
      // Anything else (an I/O error mid-merge, an internal invariant
      // breach) is a durability failure and poisons as before.
      if (st.code() == StatusCode::kResourceExhausted) {
        ++backpressure_events_;
        return st;
      }
      if (st.IsCorruption()) return st;
      return FailLocked(std::move(st));
    }
  }

  switch (dbopts_.wal_sync_mode) {
    case WalSyncMode::kAlways:
      LSMSSD_RETURN_IF_ERROR(SyncCoveringLocked(lk, my_seq));
      break;
    case WalSyncMode::kEveryN:
      // Count appends not yet covered by a completed *or in-flight* sync;
      // when a batch of N has accumulated, this writer leads (or queues
      // behind the in-flight leader) a round covering all of them.
      if (seq_appended_ - std::max(seq_synced_, sync_target_) >=
          dbopts_.wal_sync_every_n) {
        LSMSSD_RETURN_IF_ERROR(SyncCoveringLocked(lk, seq_appended_));
      }
      break;
    case WalSyncMode::kNone:
      break;
  }

  if (dbopts_.checkpoint_wal_bytes > 0 &&
      WalLiveBytesLocked() >= dbopts_.checkpoint_wal_bytes) {
    if (dbopts_.background_checkpoint) {
      // Hand the work to the maintenance thread; this writer returns
      // without stalling behind the manifest write.
      if (!checkpoint_requested_ && !checkpoint_in_progress_) {
        checkpoint_requested_ = true;
        maint_cv_.notify_one();
      }
    } else {
      LSMSSD_RETURN_IF_ERROR(CheckpointLocked(lk));
    }
  }
  return Status::OK();
}

Status Db::VlogAppendLocked(Record* record) {
  if (vlog_head_offset_ >= dbopts_.vlog_segment_bytes) {
    LSMSSD_RETURN_IF_ERROR(RollVlogLocked());
  }
  const std::string entry = vlog::EncodeEntry(record->key, record->payload);
  if (Status st = vlog_head_->Append(entry); !st.ok()) {
    return FailLocked(std::move(st));
  }
  VlogPointer ptr;
  ptr.file = static_cast<uint32_t>(vlog_head_file_);
  ptr.offset = vlog_head_offset_;
  ptr.length = static_cast<uint32_t>(record->payload.size());
  vlog_head_offset_ += entry.size();
  vlog_bytes_appended_ += entry.size();
  record->payload = EncodeVlogPointerToString(ptr);
  return Status::OK();
}

Status Db::RollVlogLocked() {
  // Seal with an fsync so sealed segments are never torn: recovery can
  // treat any short/garbled tail as damage, and the head-only truncation
  // below (Open) stays sound.
  if (Status st = vlog_head_->Sync(); !st.ok()) {
    return FailLocked(std::move(st));
  }
  auto file_or = MakeVlogFile(vlog_head_file_ + 1, /*writable=*/true);
  if (!file_or.ok()) return FailLocked(file_or.status());
  ++vlog_head_file_;
  vlog_head_offset_ = 0;
  std::lock_guard<std::mutex> vlk(vlog_mu_);
  auto& slot = vlog_files_[vlog_head_file_];
  slot = std::move(file_or).value();
  vlog_head_ = slot.get();
  return Status::OK();
}

Status Db::SyncCoveringLocked(std::unique_lock<std::mutex>& lk,
                              uint64_t target) {
  while (seq_synced_ < target) {
    if (failed()) return FailedStatus();
    if (sync_in_progress_) {
      // Another writer is the leader; its round (or a later one) will
      // cover us. Wait for it to complete.
      sync_cv_.wait(lk);
      continue;
    }
    // Become the leader: claim everything appended so far, fsync once for
    // the whole batch with the commit lock released, and publish. The
    // vlog head syncs FIRST: a WAL-durable pointer whose value bytes were
    // lost would dangle (recovery tolerates a dangling *suffix* only
    // because of this ordering). Segments sealed before the claim were
    // synced at roll time.
    sync_in_progress_ = true;
    const uint64_t cover = seq_appended_;
    sync_target_ = std::max(sync_target_, cover);
    VlogFile* vlog_head = vlog_head_;
    lk.unlock();
    Status st = vlog_head != nullptr ? vlog_head->Sync() : Status::OK();
    if (st.ok()) st = wal_->Sync();
    lk.lock();
    sync_in_progress_ = false;
    if (!st.ok()) {
      sync_cv_.notify_all();
      return FailLocked(std::move(st));
    }
    seq_synced_ = std::max(seq_synced_, cover);
    ++wal_syncs_;
    sync_cv_.notify_all();
  }
  return Status::OK();
}

Status Db::ForceSyncAllLocked(std::unique_lock<std::mutex>& lk) {
  // At least one unconditional fsync (SyncWal/checkpoint semantics: the
  // sync counter always advances), then loop until — with db_mu_ held
  // continuously since the check — nothing is in flight and everything
  // appended is covered. At that point the WAL file is stable: safe to
  // rotate or to hand to a fresh writer.
  bool synced_once = false;
  for (;;) {
    if (failed()) return FailedStatus();
    if (sync_in_progress_) {
      sync_cv_.wait(lk);
      continue;
    }
    if (synced_once && seq_synced_ == seq_appended_) return Status::OK();
    sync_in_progress_ = true;
    const uint64_t cover = seq_appended_;
    sync_target_ = std::max(sync_target_, cover);
    VlogFile* vlog_head = vlog_head_;  // Value bytes before pointers.
    lk.unlock();
    Status st = vlog_head != nullptr ? vlog_head->Sync() : Status::OK();
    if (st.ok()) st = wal_->Sync();
    lk.lock();
    sync_in_progress_ = false;
    if (!st.ok()) {
      sync_cv_.notify_all();
      return FailLocked(std::move(st));
    }
    seq_synced_ = std::max(seq_synced_, cover);
    ++wal_syncs_;
    synced_once = true;
    sync_cv_.notify_all();
  }
}

Status Db::MaybeSealOrStallLocked(std::unique_lock<std::mutex>& lk) {
  using Clock = std::chrono::steady_clock;
  const auto micros_since = [](Clock::time_point t0) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count());
  };

  // Soft throttle: with the queue deep, delay every op a little so the
  // workers gain ground before writers hit the hard wall. The wait holds
  // db_mu_ on purpose — it must slow the whole commit path. It is a
  // condvar wait, not an unconditional sleep: every worker step notifies
  // stall_cv_, so the moment the queue drains below the threshold (or
  // compaction wedges) the writer proceeds instead of serving out the
  // full slowdown_micros penalty.
  if (dbopts_.compaction_slowdown_depth > 0) {
    std::unique_lock<std::mutex> clk(comp_mu_);
    if (sealed_queued_ >= dbopts_.compaction_slowdown_depth) {
      const auto t0 = Clock::now();
      stall_cv_.wait_for(
          clk, std::chrono::microseconds(dbopts_.compaction_slowdown_micros),
          [&] {
            return sealed_queued_ < dbopts_.compaction_slowdown_depth ||
                   !compaction_error_.ok() || failed();
          });
      ++throttle_events_;
      throttle_micros_ += micros_since(t0);
    }
  }

  // Reading the active memtable's size under db_mu_ alone is race-free:
  // only writers mutate it, and they all hold db_mu_.
  if (!tree_->MemtableAtCapacity()) return Status::OK();

  {
    std::unique_lock<std::mutex> clk(comp_mu_);
    if (sealed_queued_ >= dbopts_.compaction_queue_depth &&
        compaction_error_.ok() && !failed()) {
      // Hard stall: the queue is full. Wait for the worker, still holding
      // db_mu_ — later writers queue behind us, which is the point.
      ++stall_events_;
      const auto t0 = Clock::now();
      stall_cv_.wait(clk, [&] {
        return sealed_queued_ < dbopts_.compaction_queue_depth ||
               !compaction_error_.ok() || failed();
      });
      const uint64_t waited = micros_since(t0);
      stall_micros_ += waited;
      stall_hist_.Add(waited);
    }
    if (!compaction_error_.ok()) {
      // Compaction is wedged (full device, quarantined block). Refuse the
      // op *before* logging it — clean backpressure the caller can retry
      // after freeing capacity (see SetMaxDeviceBlocks).
      ++backpressure_events_;
      return compaction_error_;
    }
    if (failed()) return FailedStatus();
  }
  // Between the checks above and the seal below the queue can only have
  // shrunk: writers are serialized by db_mu_ and the worker only pops.
  {
    std::unique_lock<SharedMutex> mlk(mem_mu_);
    const uint64_t sealed_n = tree_->active_memtable_records();
    tree_->SealMemtable();
    mem_sealed_records_.fetch_add(sealed_n, std::memory_order_relaxed);
    mem_active_records_.store(0, std::memory_order_relaxed);
    // Publish depth + kick under comp_mu_ while still holding mem_mu_
    // (mem_mu_ -> comp_mu_ follows the hierarchy): the worker cannot pop
    // the new memtable before its ++sealed_queued_ lands, because a pop
    // needs mem_mu_ exclusive.
    std::lock_guard<std::mutex> clk(comp_mu_);
    ++sealed_queued_;
    ++memtables_sealed_;
    compaction_scheduled_ = true;
  }
  // notify_all, not notify_one: comp_cv_ carries two kinds of waiters —
  // idle workers waiting for work AND pacing workers waiting out rate-
  // limiter debt (which a deepening queue must interrupt, see
  // PaceMergeRate). A single notify could be swallowed by the wrong kind.
  comp_cv_.notify_all();
  return Status::OK();
}

void Db::CompactionLoop() {
  std::unique_lock<std::mutex> clk(comp_mu_);
  for (;;) {
    comp_cv_.wait(clk,
                  [this] { return stop_compaction_ || compaction_scheduled_; });
    if (stop_compaction_) return;
    clk.unlock();
    RunCompactionSteps();
    clk.lock();
  }
}

bool Db::TryClaimLevelsLocked(size_t lo, size_t hi) {
  if (level_claims_.size() < hi + 1) level_claims_.resize(hi + 1, 0);
  for (size_t i = lo; i <= hi; ++i) {
    if (level_claims_[i] != 0) return false;
  }
  for (size_t i = lo; i <= hi; ++i) level_claims_[i] = 1;
  return true;
}

void Db::ReleaseLevelsLocked(size_t lo, size_t hi) {
  for (size_t i = lo; i <= hi; ++i) {
    LSMSSD_CHECK(i < level_claims_.size() && level_claims_[i] != 0);
    level_claims_[i] = 0;
  }
}

Status Db::RunOneCompactionStep(LsmTree::CompactStep* step, bool* popped) {
  // Phase 1 — flush. Flushes normally outrank merges (they bound the
  // writer-visible queue), but once the L0 buffer is backlogged the merge
  // goes first — flushing into an already-oversized buffer trades bounded
  // queue depth for unbounded buffer memory (see
  // LsmTree::L0BufferBacklogged). A flush runs entirely under mem_mu_
  // exclusive — it drains the front sealed memtable into the memory-
  // resident L0 buffer, pure memory work — so it overlaps a merge step
  // another worker is running under tree_mu_. What it must NOT overlap is
  // an L0 *spill* (which reads and erases the buffer under tree_mu_, not
  // mem_mu_): the claim on "level 0" serializes the two buffer mutators.
  // Claim BEFORE peeking: L0BufferBacklogged reads the buffer's size, and
  // a spill erases the buffer under tree_mu_ (not mem_mu_), so the size is
  // only stable once claim {0} excludes the other mutator. The claim is
  // cheap and released immediately when there is nothing to flush.
  bool flush_claimed = false;
  {
    std::lock_guard<std::mutex> clk(comp_mu_);
    flush_claimed = TryClaimLevelsLocked(0, 0);
  }
  if (flush_claimed) {
    bool do_flush = false;
    {
      std::shared_lock<SharedMutex> mlk(mem_mu_);
      do_flush =
          !tree_->L0BufferBacklogged() && tree_->FrontSealed() != nullptr;
    }
    Status st;
    if (do_flush) {
      std::unique_lock<SharedMutex> mlk(mem_mu_);
      // Re-fetch under the exclusive hold: another worker may have
      // finished the front memtable between the peek and the claim.
      if (Memtable* front = tree_->FrontSealed(); front != nullptr) {
        st = tree_->FlushSealedStep(front);
        if (st.ok()) {
          *popped = tree_->PopSealedIfDrained();
          // Exact refresh for the facade arbiter: mem_mu_ exclusive makes
          // reading the queue's record counts race-free.
          mem_sealed_records_.store(tree_->sealed_records(),
                                    std::memory_order_relaxed);
          mem_l0_records_.store(tree_->l0_buffer_records(),
                                std::memory_order_relaxed);
          *step = LsmTree::CompactStep::kFlush;
        }
      }
    }
    {
      std::lock_guard<std::mutex> clk(comp_mu_);
      ReleaseLevelsLocked(0, 0);
    }
    if (!st.ok()) return st;
    if (*step == LsmTree::CompactStep::kFlush) return Status::OK();
    // The front vanished while we claimed: fall through to the merges.
  }

  // Phase 2 — merge. One exclusive tree_mu_ hold per step keeps level
  // publication serialized; the claim {source, source+1} keeps a second
  // worker from picking the same pair the moment we drop tree_mu_ between
  // steps, and (for source 0) excludes concurrent flush absorption into
  // the buffer being spilled.
  std::unique_lock<SharedMutex> tlk(tree_mu_);
  size_t source = 0;
  bool claimed = false;
  {
    // mem_mu_ shared: L0BufferOverflowing reads the buffer's size, which a
    // concurrent flush mutates under mem_mu_.
    std::shared_lock<SharedMutex> mlk(mem_mu_);
    const std::vector<size_t> sources = tree_->OverflowingMergeSources();
    std::lock_guard<std::mutex> clk(comp_mu_);
    for (size_t s : sources) {
      if (TryClaimLevelsLocked(s, s + 1)) {
        source = s;
        claimed = true;
        break;
      }
    }
  }
  if (!claimed) return Status::OK();  // Nothing overflowing, or all claimed.
  // Safe to run without mem_mu_ even for source 0: the claim excludes
  // flushes, and workers are the only L0-buffer mutators (comp_mu_'s
  // claim handoff provides the happens-before edge between their holds).
  auto step_or = tree_->MergeSourceStep(source);
  {
    std::lock_guard<std::mutex> clk(comp_mu_);
    ReleaseLevelsLocked(source, source + 1);
  }
  if (!step_or.ok()) return step_or.status();
  *step = step_or.value();
  {
    std::shared_lock<SharedMutex> mlk(mem_mu_);
    mem_l0_records_.store(tree_->l0_buffer_records(),
                          std::memory_order_relaxed);
  }
  return Status::OK();
}

void Db::PaceMergeRate() {
  if (merge_rate_limiter_ == nullptr) return;
  const std::chrono::microseconds delay = merge_rate_limiter_->DelayNeeded();
  if (delay.count() <= 0) return;
  // Cap each pause so a worker re-evaluates the world (new work, shutdown)
  // at least every 100ms even under a huge debt.
  const auto capped = std::min(delay, std::chrono::microseconds(100000));
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  std::unique_lock<std::mutex> clk(comp_mu_);
  // Fairness: merges yield pacing to flushes when the sealed queue is deep
  // — a paused worker must not hold writers at the stall wall just to
  // honor a rate limit. Sealing notifies comp_cv_, which interrupts the
  // wait the moment the queue deepens.
  const size_t fairness_depth =
      std::max<size_t>(1, dbopts_.compaction_slowdown_depth);
  if (sealed_queued_ >= fairness_depth) return;
  comp_cv_.wait_for(clk, capped, [&] {
    return stop_compaction_ || sealed_queued_ >= fairness_depth;
  });
  ++rate_pauses_;
  rate_pause_micros_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

void Db::RunCompactionSteps() {
  using Clock = std::chrono::steady_clock;
  {
    std::lock_guard<std::mutex> clk(comp_mu_);
    compaction_scheduled_ = false;
    ++active_compaction_workers_;
  }
  Status err;
  while (!failed()) {
    const auto t0 = Clock::now();
    auto step = LsmTree::CompactStep::kNone;
    bool popped = false;
    Status st = RunOneCompactionStep(&step, &popped);
    const auto micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count());
    {
      std::lock_guard<std::mutex> clk(comp_mu_);
      compaction_micros_ += micros;
      if (st.ok()) {
        compaction_error_ = Status::OK();  // Progress clears a wedge.
        if (step == LsmTree::CompactStep::kFlush) ++background_flushes_;
        if (step == LsmTree::CompactStep::kMerge) ++background_merges_;
        if (popped) --sealed_queued_;
      } else {
        compaction_error_ = st;
      }
    }
    // After *every* step — progress or error — wake stalled writers: a
    // pop freed a queue slot; an error must be surfaced, not waited out.
    stall_cv_.notify_all();
    if (!st.ok()) {
      err = st;
      break;
    }
    if (step == LsmTree::CompactStep::kNone) break;
    // Pay off rate-limiter debt *between* steps, off every lock: the loop
    // re-scans for work afterwards, so claimed-but-unfinished work never
    // leaks — a worker exits only after seeing kNone for itself.
    if (step == LsmTree::CompactStep::kMerge) PaceMergeRate();
  }
  {
    std::lock_guard<std::mutex> clk(comp_mu_);
    --active_compaction_workers_;
  }
  stall_cv_.notify_all();
  // ResourceExhausted and Corruption are retryable backpressure (exactly
  // as on the inline path); anything else is a durability failure. The
  // error was published under comp_mu_ FIRST: a stalled writer (which
  // holds db_mu_!) wakes, returns, and releases db_mu_ — only then can
  // this FailLocked proceed. Taking db_mu_ before publishing would
  // deadlock.
  if (!err.ok() && err.code() != StatusCode::kResourceExhausted &&
      !err.IsCorruption()) {
    std::unique_lock<std::mutex> lk(db_mu_);
    (void)FailLocked(std::move(err));
  }
}

Status Db::WaitForCompaction() {
  if (!shards_.empty()) {
    for (auto& s : shards_) LSMSSD_RETURN_IF_ERROR(s->WaitForCompaction());
    return Status::OK();
  }
  if (!dbopts_.background_compaction) return Status::OK();
  std::unique_lock<std::mutex> clk(comp_mu_);
  stall_cv_.wait(clk, [&] {
    return (sealed_queued_ == 0 && active_compaction_workers_ == 0 &&
            !compaction_scheduled_) ||
           !compaction_error_.ok() || failed();
  });
  if (!compaction_error_.ok()) return compaction_error_;
  if (failed()) return FailedStatus();
  return Status::OK();
}

StatusOr<std::string> Db::Get(Key key) {
  if (failed()) return FailedStatus();
  if (!shards_.empty()) {
    return shards_[ShardOfKey(key, shards_.size())]->Get(key);
  }
  std::shared_lock<SharedMutex> tlk(tree_mu_);
  // In vlog mode the pointer must be resolved before the read locks drop:
  // holding mem_mu_ shared through the whole lookup keeps a GC rewrite
  // (which commits under mem_mu_ exclusive) from superseding the pointer
  // — and therefore keeps a checkpoint from unlinking its segment —
  // between the tree probe and the vlog read.
  std::shared_lock<SharedMutex> mlk(mem_mu_, std::defer_lock);
  if (dbopts_.background_compaction && vlog_on_) mlk.lock();

  StatusOr<std::string> stored = [&]() -> StatusOr<std::string> {
    if (!dbopts_.background_compaction) return tree_->Get(key);
    // Background mode: the memtable probe needs mem_mu_ (writers mutate
    // the active memtable without tree_mu_); the level walk below runs
    // under tree_mu_ alone, off the writers' locks — except in vlog mode,
    // where mlk already pins mem_mu_ for the whole lookup (above).
    {
      std::shared_lock<SharedMutex> probe(mem_mu_, std::defer_lock);
      if (!mlk.owns_lock()) probe.lock();
      if (const Record* r = tree_->FindInMemtables(key)) {
        if (r->is_tombstone()) return Status::NotFound("deleted");
        return r->payload;
      }
    }
    return tree_->GetFromLevels(key);
  }();
  if (!vlog_on_ || !stored.ok()) return stored;
  std::string value;
  LSMSSD_RETURN_IF_ERROR(ResolveVlogValue(stored.value(), key, &value));
  return value;
}

Status Db::Scan(Key lo, Key hi,
                std::vector<std::pair<Key, std::string>>* out) {
  if (failed()) return FailedStatus();
  if (!shards_.empty()) return ShardedScan(lo, hi, out);
  std::shared_lock<SharedMutex> tlk(tree_mu_);
  // The scan's iterator walks the active and sealed memtables, which
  // background-mode writers mutate under mem_mu_ only.
  std::shared_lock<SharedMutex> mlk(mem_mu_, std::defer_lock);
  if (dbopts_.background_compaction) mlk.lock();
  if (!vlog_on_) return tree_->Scan(lo, hi, out);
  // Resolve the pointers in place before the locks drop (same reasoning
  // as Get: no GC rewrite can supersede them while mem_mu_ is pinned).
  const size_t first = out->size();
  LSMSSD_RETURN_IF_ERROR(tree_->Scan(lo, hi, out));
  for (size_t i = first; i < out->size(); ++i) {
    std::string value;
    LSMSSD_RETURN_IF_ERROR(
        ResolveVlogValue((*out)[i].second, (*out)[i].first, &value));
    (*out)[i].second = std::move(value);
  }
  return Status::OK();
}

std::unique_ptr<Iterator> Db::NewIterator() const {
  if (failed()) return nullptr;
  if (!shards_.empty()) return ShardedNewIterator();
  std::shared_lock<SharedMutex> tlk(tree_mu_);
  std::shared_lock<SharedMutex> mlk(mem_mu_, std::defer_lock);
  // In background mode the snapshot must also pin the memtables: the
  // iterator reads them, and writers mutate them under mem_mu_ (not
  // tree_mu_). Writers therefore wait behind open iterators in either
  // mode — mem_mu_ here, tree_mu_ in inline mode.
  if (dbopts_.background_compaction) mlk.lock();
  auto base = tree_->NewIterator();
  if (base == nullptr) return nullptr;
  auto snap = std::make_unique<SnapshotIterator>(std::move(tlk),
                                                 std::move(mlk),
                                                 std::move(base));
  if (!vlog_on_) return snap;
  // The snapshot's locks pin the tree state the pointers came from, so
  // value() resolves against segments no GC can reclaim mid-iteration.
  return std::make_unique<VlogResolvingIterator>(
      std::move(snap), [this](std::string_view stored, Key key,
                              std::string* out) {
        return ResolveVlogValue(stored, key, out);
      });
}

Status Db::SyncWal() {
  if (!shards_.empty()) {
    for (auto& s : shards_) LSMSSD_RETURN_IF_ERROR(s->SyncWal());
    return Status::OK();
  }
  std::unique_lock<std::mutex> lk(db_mu_);
  if (failed()) return FailedStatus();
  return ForceSyncAllLocked(lk);
}

Status Db::Checkpoint() {
  if (!shards_.empty()) {
    for (auto& s : shards_) LSMSSD_RETURN_IF_ERROR(s->Checkpoint());
    return Status::OK();
  }
  std::unique_lock<std::mutex> lk(db_mu_);
  if (failed()) return FailedStatus();
  return CheckpointLocked(lk);
}

Status Db::CheckpointLocked(std::unique_lock<std::mutex>& lk) {
  while (checkpoint_in_progress_) {
    ckpt_cv_.wait(lk);
    if (failed()) return FailedStatus();
  }
  checkpoint_in_progress_ = true;
  Status st = CheckpointBodyLocked(lk);
  checkpoint_in_progress_ = false;
  checkpoint_requested_ = false;
  ckpt_cv_.notify_all();
  return st;
}

Status Db::CheckpointBodyLocked(std::unique_lock<std::mutex>& lk) {
  FaultInjector* injector = dbopts_.fault_injector;

  // 1. Quiesce + sync: the on-disk WAL must cover every entry the
  //    manifest will include *before* the manifest is published. A crash
  //    between the manifest rename and the segment unlink (step 5)
  //    recovers by replaying the rotated log on top of the checkpoint,
  //    which only re-converges if the durable log is a superset of the
  //    manifest's entries. Without this sync, kEveryN/kNone could publish
  //    a manifest at entry N while the disk log ends at M < N — replay
  //    would then regress every key rewritten in (M, N] to its older
  //    value. On return db_mu_ has been held continuously since the last
  //    check: no sync is in flight and no new append can sneak in before
  //    the rotation below.
  LSMSSD_RETURN_IF_ERROR(ForceSyncAllLocked(lk));

  // 2. Rotate the WAL: the fully synced log becomes an immutable numbered
  //    segment and writers get a fresh empty wal.log, so appends continue
  //    while the manifest (covering exactly the rotated entries) is being
  //    written off-lock below. Recovery replays segments strictly —
  //    they were synced before the rename, so a tear in one is real
  //    corruption.
  if (injector != nullptr && injector->Step()) {
    return FailLocked(
        Status::IoError("injected fault: crash before WAL rotation"));
  }
  const std::string segment_path = WalSegmentPath(dir_, next_wal_segment_);
  if (::rename(WalPath(dir_).c_str(), segment_path.c_str()) != 0) {
    return FailLocked(Errno("rotate WAL -> " + segment_path));
  }
  ++next_wal_segment_;
  wal_old_bytes_ += wal_recovered_bytes_ + wal_->bytes_appended();
  wal_recovered_bytes_ = 0;
  auto writer_or = MakeWalWriter(WalPath(dir_));
  if (!writer_or.ok()) return FailLocked(writer_or.status());
  wal_ = std::move(writer_or).value();
  if (Status st = SyncDir(dir_); !st.ok()) return FailLocked(std::move(st));

  // 3. Snapshot the tree (writers are excluded by db_mu_; readers never
  //    mutate; the shared tree lock keeps a background compaction step
  //    from rewriting levels mid-encode) and pin the snapshot's blocks,
  //    so a merge running after we drop the lock cannot free one and let
  //    a later allocation recycle its slot under the manifest being
  //    written. The snapshot consolidates the active AND sealed
  //    memtables (LsmTree::MemtableSnapshot): queued-but-unflushed
  //    records must be in the manifest before step 5 deletes the WAL
  //    segments that carry them.
  std::string manifest_data;
  uint64_t vlog_publish_tail = 0;
  {
    std::shared_lock<SharedMutex> tlk(tree_mu_);
    // mem_mu_ too (tree -> mem follows the hierarchy): the snapshot reads
    // the L0 buffer and the sealed queue, which a concurrent flush step
    // mutates under mem_mu_ alone — tree_mu_ no longer covers them.
    std::shared_lock<SharedMutex> mlk(mem_mu_);
    if (vlog_on_) {
      // The vlog frontier is durable: step 1 synced the head before the
      // WAL, and db_mu_ has been held since, so head/offset still match
      // the fsynced file. Publishing pending_tail_ here makes the GC'd
      // range reclaimable only after this manifest lands (step 5b).
      VlogManifestState vstate;
      vstate.head_file = vlog_head_file_;
      vstate.head_offset = vlog_head_offset_;
      vstate.tail_file = vlog_pending_tail_;
      vlog_publish_tail = vlog_pending_tail_;
      manifest_data = EncodeManifest(*tree_, vstate);
    } else {
      manifest_data = EncodeManifest(*tree_);
    }
    pinned_->BeginCheckpoint(CurrentTreeBlocks());
  }

  // 4. The slow part — device flush + manifest write — runs with the
  //    commit lock released: writers keep appending to the fresh WAL.
  lk.unlock();
  Status st = pinned_->Flush();
  if (st.ok()) st = WriteManifestAtomically(manifest_data);
  lk.lock();
  if (!st.ok()) {
    pinned_->AbortCheckpoint();
    return FailLocked(std::move(st));
  }
  ++checkpoints_;

  // 5. The manifest covers every rotated entry; delete the segments. (A
  //    crash before this double-replays them — safe, blind writes.)
  if (injector != nullptr && injector->Step()) {
    return FailLocked(
        Status::IoError("injected fault: crash before WAL segment unlink"));
  }
  for (const std::string& seg : ListWalSegments(dir_)) {
    (void)::unlink(seg.c_str());
  }
  wal_old_bytes_ = 0;

  // 5b. The manifest's tail no longer references the GC'd segments —
  //     unlink them. A crash before this leaks nothing: recovery reads
  //     the published tail and deletes everything below it (blind
  //     re-unlink, ENOENT-tolerant).
  if (vlog_on_ && vlog_publish_tail > vlog_tail_file_) {
    if (injector != nullptr && injector->Step()) {
      return FailLocked(
          Status::IoError("injected fault: crash before vlog segment unlink"));
    }
    if (Status vst = VlogDropBelowLocked(vlog_publish_tail); !vst.ok()) {
      return FailLocked(std::move(vst));
    }
  }

  // 6. Blocks only the *previous* manifest referenced may now recycle.
  //    Exclusive tree lock: recycling frees device slots a concurrent
  //    reader might otherwise probe mid-read.
  {
    std::unique_lock<SharedMutex> tlk(tree_mu_);
    st = pinned_->CommitCheckpoint();
  }
  if (!st.ok()) return FailLocked(std::move(st));
  return Status::OK();
}

void Db::MaintenanceLoop() {
  std::unique_lock<std::mutex> lk(db_mu_);
  const bool scrub_enabled = dbopts_.scrub_interval_ms > 0;
  const bool auto_gc = vlog_on_ && dbopts_.vlog_gc_ratio > 0;
  for (;;) {
    if (scrub_enabled || auto_gc) {
      // Wake early for explicit work; a timeout is a scrub/GC tick.
      const uint64_t tick_ms =
          scrub_enabled ? dbopts_.scrub_interval_ms : 20;
      maint_cv_.wait_for(
          lk, std::chrono::milliseconds(tick_ms),
          [this] { return stop_maintenance_ || checkpoint_requested_; });
    } else {
      maint_cv_.wait(
          lk, [this] { return stop_maintenance_ || checkpoint_requested_; });
    }
    if (stop_maintenance_) return;
    if (failed()) {
      // Poisoned: stay dormant until Close(). The request can never be
      // served; clearing it keeps the predicate from busy-waking.
      checkpoint_requested_ = false;
      continue;
    }
    if (checkpoint_requested_) {
      // Re-check the threshold: a manual Checkpoint() may have landed
      // between the request and this wakeup.
      if (WalLiveBytesLocked() < dbopts_.checkpoint_wal_bytes) {
        checkpoint_requested_ = false;
      } else {
        // Errors poison the Db (writers see it on their next operation).
        (void)CheckpointLocked(lk);
        continue;
      }
    }
    if (auto_gc && VlogGcWantedLocked()) {
      // One sealed segment per tick keeps the pause bounded; the next
      // tick re-evaluates the garbage ratio. The checkpoint publishes the
      // advanced tail so the reclaimed segment is actually deleted.
      if (VlogGcSegmentLocked(lk).ok() && !failed() &&
          vlog_pending_tail_ > vlog_tail_file_) {
        (void)CheckpointLocked(lk);
      }
      if (failed()) continue;
    }
    if (scrub_enabled) ScrubTickLocked(lk);
  }
}

void Db::ScrubTickLocked(std::unique_lock<std::mutex>& lk) {
  // Walk manifest-live blocks round-robin by id: each tick takes the next
  // batch after the cursor, so every live block is eventually verified no
  // matter how often the set changes between ticks.
  std::vector<BlockId> blocks = CurrentTreeBlocks();
  std::sort(blocks.begin(), blocks.end());
  std::vector<BlockId> batch;
  const size_t batch_cap =
      dbopts_.scrub_batch_blocks > 0 ? dbopts_.scrub_batch_blocks : 1;
  for (auto it = std::upper_bound(blocks.begin(), blocks.end(), scrub_cursor_);
       it != blocks.end() && batch.size() < batch_cap; ++it) {
    batch.push_back(*it);
  }
  if (batch.empty()) {
    scrub_cursor_ = 0;  // End of a pass; the next tick starts over.
    return;
  }
  scrub_cursor_ = batch.back();

  // The I/O runs off db_mu_, under the shared tree lock (scrubbing is a
  // reader). Blocks freed by a merge in the window between snapshot and
  // verification report NotFound and are simply skipped.
  lk.unlock();
  uint64_t verified = 0, corrupt = 0;
  {
    std::shared_lock<SharedMutex> tlk(tree_mu_);
    for (BlockId id : batch) {
      Status st = pinned_->VerifyBlock(id);
      if (st.ok()) {
        ++verified;
      } else if (st.IsCorruption()) {
        ++corrupt;  // Quarantined by PinnedBlockDevice::VerifyBlock.
      }
    }
  }
  lk.lock();
  scrub_blocks_verified_ += verified;
  scrub_corruptions_ += corrupt;
}

Status Db::Scrub() {
  if (!shards_.empty()) {
    // Scrub every shard even after one reports damage: the quarantine
    // picture in Stats() should cover the whole facade, and per-shard
    // corruption is independent. First Corruption wins as the verdict.
    Status verdict = Status::OK();
    for (auto& s : shards_) {
      Status st = s->Scrub();
      if (st.IsCorruption()) {
        if (verdict.ok()) verdict = st;
      } else if (!st.ok()) {
        return st;  // Transport-level failure: surface immediately.
      }
    }
    return verdict;
  }
  std::vector<BlockId> blocks;
  {
    std::unique_lock<std::mutex> lk(db_mu_);
    if (failed()) return FailedStatus();
    blocks = CurrentTreeBlocks();
  }
  std::sort(blocks.begin(), blocks.end());

  uint64_t verified = 0, corrupt = 0;
  {
    std::shared_lock<SharedMutex> tlk(tree_mu_);
    for (BlockId id : blocks) {
      Status st = pinned_->VerifyBlock(id);
      if (st.ok()) {
        ++verified;
      } else if (st.IsCorruption()) {
        ++corrupt;
      } else if (!st.IsNotFound()) {
        return st;  // Transport-level failure: surface it.
      }
    }
  }
  {
    std::unique_lock<std::mutex> lk(db_mu_);
    scrub_blocks_verified_ += verified;
    scrub_corruptions_ += corrupt;
  }
  if (corrupt > 0) {
    return Status::Corruption("scrub found " + std::to_string(corrupt) +
                              " corrupt block(s); see quarantine in Stats()");
  }
  return Status::OK();
}

Status Db::ResolveVlogValue(std::string_view stored, Key key,
                            std::string* out) const {
  VlogPointer ptr;
  if (!DecodeVlogPointer(stored, &ptr)) {
    return Status::Corruption("malformed vlog pointer for key " +
                              std::to_string(key));
  }
  std::shared_ptr<VlogFile> file;
  {
    std::lock_guard<std::mutex> vlk(vlog_mu_);
    if (vlog_quarantine_.count({ptr.file, ptr.offset}) != 0) {
      return Status::Corruption(
          "vlog segment " + std::to_string(ptr.file) + " entry at offset " +
          std::to_string(ptr.offset) + " is quarantined");
    }
    auto it = vlog_files_.find(ptr.file);
    if (it == vlog_files_.end()) {
      return Status::Corruption("pointer into unknown vlog segment " +
                                std::to_string(ptr.file));
    }
    file = it->second;
  }
  Status st = vlog::ReadEntry(file.get(), ptr.offset, key, ptr.length, out);
  if (st.IsCorruption()) {
    // Quarantine the single damaged entry — the Db keeps serving every
    // other key (mirroring block quarantine: damage is data-local, not
    // instance-fatal).
    std::lock_guard<std::mutex> vlk(vlog_mu_);
    if (vlog_quarantine_.insert({ptr.file, ptr.offset}).second) {
      vlog_quarantined_entries_.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Corruption("vlog segment " + std::to_string(ptr.file) +
                              ": " + st.message());
  }
  return st;
}

bool Db::VlogGcWantedLocked() const {
  if (vlog_pending_tail_ >= vlog_head_file_) return false;  // Head only.
  uint64_t total = vlog_head_offset_;
  {
    std::lock_guard<std::mutex> vlk(vlog_mu_);
    for (uint64_t n = vlog_pending_tail_; n < vlog_head_file_; ++n) {
      auto it = vlog_files_.find(n);
      if (it != vlog_files_.end()) total += it->second->size();
    }
  }
  if (total == 0) return false;
  uint64_t records = 0;
  {
    std::shared_lock<SharedMutex> tlk(tree_mu_);
    std::shared_lock<SharedMutex> mlk(mem_mu_);
    records = tree_->TotalRecords();
  }
  // Conservative live floor: every live key stores exactly one entry of
  // header + payload_size bytes; anything beyond that is dead weight
  // (superseded versions, orphans, tombstoned values).
  const uint64_t live =
      records * (vlog::kEntryHeaderSize + tree_->options().payload_size);
  if (live >= total) return false;
  return static_cast<double>(total - live) >=
         dbopts_.vlog_gc_ratio * static_cast<double>(total);
}

Status Db::VlogGcSegmentLocked(std::unique_lock<std::mutex>& lk) {
  const uint64_t seg = vlog_pending_tail_;
  if (!vlog_on_ || seg >= vlog_head_file_) return Status::OK();
  std::shared_ptr<VlogFile> file;
  {
    std::lock_guard<std::mutex> vlk(vlog_mu_);
    auto it = vlog_files_.find(seg);
    if (it == vlog_files_.end()) {
      // Never created (or never referenced) — nothing to rewrite.
      vlog_pending_tail_ = seg + 1;
      return Status::OK();
    }
    file = it->second;
  }

  // Scan off the commit lock — the segment is sealed and immutable. Each
  // entry is probed and (when live) rewritten under one continuous db_mu_
  // hold, so no writer can slip between the liveness check and the
  // re-append. "Live" means the tree's newest version of the key is a put
  // whose stored payload is exactly this entry's pointer; anything else —
  // overwritten, deleted, or an orphan whose WAL frame never became
  // durable — is dead and simply not carried forward.
  uint64_t rewrites = 0;
  lk.unlock();
  uint64_t intact_end = 0;
  Status scan_st = vlog::ScanEntries(
      file.get(), 0,
      [&](const vlog::EntryInfo& info, const std::string& value) -> Status {
        VlogPointer ptr;
        ptr.file = static_cast<uint32_t>(seg);
        ptr.offset = info.offset;
        ptr.length = info.length;
        const std::string want = EncodeVlogPointerToString(ptr);
        std::unique_lock<std::mutex> inner(db_mu_);
        if (failed()) return FailedStatus();
        bool live = false;
        {
          std::shared_lock<SharedMutex> tlk(tree_mu_);
          if (dbopts_.background_compaction) {
            bool probed = false;
            {
              std::shared_lock<SharedMutex> mlk(mem_mu_);
              if (const Record* r = tree_->FindInMemtables(info.key)) {
                live = !r->is_tombstone() && r->payload == want;
                probed = true;
              }
            }
            if (!probed) {
              auto cur = tree_->GetFromLevels(info.key);
              live = cur.ok() && cur.value() == want;
            }
          } else {
            auto cur = tree_->Get(info.key);
            live = cur.ok() && cur.value() == want;
          }
        }
        if (!live) return Status::OK();
        LSMSSD_RETURN_IF_ERROR(
            ApplyLocked(Record::Put(info.key, value), inner));
        ++rewrites;
        return Status::OK();
      },
      &intact_end);
  lk.lock();
  LSMSSD_RETURN_IF_ERROR(scan_st);
  if (failed()) return FailedStatus();
  if (intact_end != file->size()) {
    // Sealed segments were fsynced whole at roll time; a short scan means
    // real damage. Refuse to advance the tail over bytes that may still
    // hold the only copy of a live value.
    return Status::Corruption("vlog segment " + std::to_string(seg) +
                              " has unreadable entries; GC refused");
  }
  vlog_gc_rewrites_ += rewrites;
  vlog_pending_tail_ = seg + 1;
  return Status::OK();
}

Status Db::VlogDropBelowLocked(uint64_t tail) {
  for (uint64_t n = vlog_tail_file_; n < tail; ++n) {
    const std::string path = VlogSegmentPath(dir_, n);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink vlog segment " + path);
    }
    ++vlog_segments_reclaimed_;
  }
  std::lock_guard<std::mutex> vlk(vlog_mu_);
  for (uint64_t n = vlog_tail_file_; n < tail; ++n) vlog_files_.erase(n);
  for (auto it = vlog_quarantine_.begin();
       it != vlog_quarantine_.end() && it->first < tail;) {
    it = vlog_quarantine_.erase(it);
  }
  vlog_tail_file_ = tail;
  return Status::OK();
}

Status Db::CompactVlog() {
  if (!shards_.empty()) {
    for (auto& s : shards_) LSMSSD_RETURN_IF_ERROR(s->CompactVlog());
    return Status::OK();
  }
  if (!vlog_on_) return Status::OK();
  std::unique_lock<std::mutex> lk(db_mu_);
  if (failed()) return FailedStatus();
  // One pass over the segments sealed *now*: rewrites land in the
  // current head (or its successors), which stays out of this pass —
  // chasing the moving head would re-copy every live value forever.
  const uint64_t stop = vlog_head_file_;
  while (vlog_pending_tail_ < stop) {
    LSMSSD_RETURN_IF_ERROR(VlogGcSegmentLocked(lk));
    if (failed()) return FailedStatus();
  }
  if (vlog_pending_tail_ > vlog_tail_file_) {
    // Publish the new tail (and delete the reclaimed segments) now; a
    // crash before this checkpoint re-runs the GC, which converges.
    LSMSSD_RETURN_IF_ERROR(CheckpointLocked(lk));
  }
  return Status::OK();
}

void Db::SetMaxDeviceBlocks(uint64_t max_blocks) {
  if (!shards_.empty()) {
    // Ceil-divide so the per-shard caps sum to >= the requested total
    // (matching the distribution OpenSharded applies at open).
    const uint64_t per_shard =
        max_blocks == 0
            ? 0
            : (max_blocks + shards_.size() - 1) / shards_.size();
    for (auto& s : shards_) s->SetMaxDeviceBlocks(per_shard);
    return;
  }
  std::unique_lock<std::mutex> lk(db_mu_);
  {
    // Exclusive tree lock: allocation sites read the cap under it.
    std::unique_lock<SharedMutex> tlk(tree_mu_);
    device_->set_max_blocks(max_blocks);
  }
  if (dbopts_.background_compaction) {
    // A raised cap may unwedge a ResourceExhausted compaction: clear the
    // sticky error and kick the worker so queued memtables drain again.
    {
      std::lock_guard<std::mutex> clk(comp_mu_);
      compaction_error_ = Status::OK();
      compaction_scheduled_ = true;
    }
    comp_cv_.notify_all();
    stall_cv_.notify_all();
  }
}

Status Db::WriteManifestAtomically(const std::string& data) {
  const std::string tmp = ManifestTmpPath(dir_);
  const std::string path = ManifestPath(dir_);
  FaultInjector* injector = dbopts_.fault_injector;
  if (injector != nullptr && injector->Step()) {
    // Crash mid-write: a torn tmp file, never renamed, ignored (and
    // deleted) by the next Open.
    (void)WriteFile(tmp, std::string_view(data).substr(0, data.size() / 2),
                    /*sync=*/false);
    return Status::IoError("injected fault: torn manifest tmp write");
  }
  LSMSSD_RETURN_IF_ERROR(WriteFile(tmp, data, /*sync=*/true));
  if (injector != nullptr && injector->Step()) {
    return Status::IoError("injected fault: crash before manifest rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return Errno("rename " + tmp + " -> " + path);
  }
  return SyncDir(dir_);
}

std::vector<BlockId> Db::CurrentTreeBlocks() const {
  std::vector<BlockId> blocks;
  for (size_t i = 1; i < tree_->num_levels(); ++i) {
    for (const LeafMeta& leaf : tree_->level(i).leaves()) {
      blocks.push_back(leaf.block);
    }
  }
  return blocks;
}

DbStats Db::Stats() const {
  if (!shards_.empty()) return ShardedStats();
  std::unique_lock<std::mutex> lk(db_mu_);
  DbStats s;
  // The tree's device view carries the complete logical account: block
  // writes/reads/allocs/frees plus cache_hits/misses and bloom_skips
  // (mirrored by CachedBlockDevice / recorded by Level::Lookup).
  s.io = tree_->device()->stats();
  // Syscall/batch counters tick on the file-backed base device's own
  // IoStats, not on the decorators' — overlay them into the snapshot.
  s.io.OverlaySyscallCounters(device_->stats());
  // Db-level counters, not the active writer's: the writer's own counters
  // reset every time a checkpoint rotates in a fresh wal.log.
  s.wal_entries_appended = seq_appended_;
  s.wal_bytes_appended = wal_bytes_total_;
  s.wal_syncs = wal_syncs_;
  s.checkpoints = checkpoints_;
  s.recovery_wal_entries_replayed = recovery_replayed_;
  s.recovery_manifest_blocks = recovery_manifest_blocks_;
  s.deferred_frees = pinned_->deferred_frees();
  s.quarantined_blocks = pinned_->QuarantinedBlocks();
  std::sort(s.quarantined_blocks.begin(), s.quarantined_blocks.end());
  s.scrub_blocks_verified = scrub_blocks_verified_;
  s.scrub_corruptions_found = scrub_corruptions_;
  s.write_backpressure_events = backpressure_events_;
  if (vlog_on_) {
    s.vlog_segments = vlog_head_file_ - vlog_tail_file_ + 1;
    s.vlog_bytes_appended = vlog_bytes_appended_;
    s.vlog_gc_rewrites = vlog_gc_rewrites_;
    s.vlog_segments_reclaimed = vlog_segments_reclaimed_;
    s.vlog_quarantined_entries =
        vlog_quarantined_entries_.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> clk(comp_mu_);
    s.memtables_sealed = memtables_sealed_;
    s.background_flushes = background_flushes_;
    s.background_merges = background_merges_;
    s.compaction_queue_depth = sealed_queued_;
    s.compaction_micros = compaction_micros_;
    s.throttle_events = throttle_events_;
    s.throttle_micros = throttle_micros_;
    s.stall_events = stall_events_;
    s.stall_micros = stall_micros_;
    s.compaction_rate_pauses = rate_pauses_;
    s.compaction_rate_pause_micros = rate_pause_micros_;
    s.stall_latency = stall_hist_;
  }
  return s;
}

std::string DbStats::ToString() const {
  std::string out;
  // Single-shard output is byte-identical to previous releases; the
  // shards line only appears for a sharded facade.
  if (shards > 1) {
    out += "shards: " + std::to_string(shards) +
           " arbiter_seals=" + std::to_string(arbiter_seals) + "\n";
  }
  out += "io: " + io.ToString() + "\n";
  out += "wal: entries=" + std::to_string(wal_entries_appended) +
         " bytes=" + std::to_string(wal_bytes_appended) +
         " syncs=" + std::to_string(wal_syncs) + "\n";
  out += "checkpoints: " + std::to_string(checkpoints) +
         " (deferred frees pending: " + std::to_string(deferred_frees) +
         ")\n";
  out += "recovery: manifest_blocks=" +
         std::to_string(recovery_manifest_blocks) +
         " wal_entries_replayed=" +
         std::to_string(recovery_wal_entries_replayed) + "\n";
  out += "integrity: quarantined=" + std::to_string(quarantined_blocks.size()) +
         " scrub_verified=" + std::to_string(scrub_blocks_verified) +
         " scrub_corruptions=" + std::to_string(scrub_corruptions_found) +
         " backpressure_events=" + std::to_string(write_backpressure_events) +
         "\n";
  // Only with key–value separation on — default output stays
  // byte-identical (vlog_segments is 0 whenever vlog mode is off).
  if (vlog_segments > 0) {
    out += "vlog: segments=" + std::to_string(vlog_segments) +
           " bytes_appended=" + std::to_string(vlog_bytes_appended) +
           " gc_rewrites=" + std::to_string(vlog_gc_rewrites) +
           " reclaimed=" + std::to_string(vlog_segments_reclaimed) +
           " quarantined_entries=" + std::to_string(vlog_quarantined_entries) +
           "\n";
  }
  out += "compaction: sealed=" + std::to_string(memtables_sealed) +
         " bg_flushes=" + std::to_string(background_flushes) +
         " bg_merges=" + std::to_string(background_merges) +
         " queue_depth=" + std::to_string(compaction_queue_depth) +
         " compaction_micros=" + std::to_string(compaction_micros) +
         " throttle_events=" + std::to_string(throttle_events) +
         " throttle_micros=" + std::to_string(throttle_micros) +
         " stall_events=" + std::to_string(stall_events) +
         " stall_micros=" + std::to_string(stall_micros) +
         " rate_pauses=" + std::to_string(compaction_rate_pauses) +
         " rate_pause_micros=" + std::to_string(compaction_rate_pause_micros) +
         "\n";
  out += "stall_latency_us: " + stall_latency.ToString() + "\n";
  return out;
}

}  // namespace lsmssd
