#ifndef LSMSSD_DB_DB_H_
#define LSMSSD_DB_DB_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/db/pinned_block_device.h"
#include "src/format/options.h"
#include "src/lsm/iterator.h"
#include "src/lsm/lsm_tree.h"
#include "src/lsm/wal.h"
#include "src/policy/policy_factory.h"
#include "src/storage/fault_injection.h"
#include "src/storage/fault_injection_block_device.h"
#include "src/storage/file_block_device.h"
#include "src/storage/io_stats.h"
#include "src/util/shared_mutex.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// When WAL appends are fsynced. An acknowledged modification is
/// *guaranteed* to survive a crash only once a sync (or a checkpoint)
/// covering it has succeeded; a crash never leaves a modification
/// partially visible under any mode.
enum class WalSyncMode {
  kNone,    ///< Sync only at checkpoint/close. Fastest; crash may lose
            ///< the acked tail (never tear it).
  kEveryN,  ///< Group commit: one writer fsyncs once the batch reaches
            ///< DbOptions::wal_sync_every_n unsynced appends (across all
            ///< threads), and every waiter it covers is acked together.
  kAlways,  ///< Sync before acknowledging every modification.
};

/// Configuration of a durable Db instance.
struct DbOptions {
  /// Tree/format options. When opening an existing Db, the format fields
  /// stored in its manifest are authoritative; only the runtime-only
  /// fields (cache_blocks, bloom_bits_per_key) are taken from here.
  Options options;

  /// Merge policy driving the tree (and its Mixed parameters, when the
  /// policy is kMixed).
  PolicyKind policy = PolicyKind::kChooseBest;
  MixedParams mixed_params;

  WalSyncMode wal_sync_mode = WalSyncMode::kAlways;
  uint64_t wal_sync_every_n = 64;  ///< Used by kEveryN only; must be > 0.

  /// Automatic checkpoint threshold: a checkpoint runs once the live WAL
  /// (rotated segments + active log) exceeds this many bytes. 0 disables
  /// automatic checkpoints (call Db::Checkpoint() manually). Must
  /// otherwise be large enough that checkpoints cannot fire on every
  /// single modification (>= two framed entries); Open rejects smaller
  /// values.
  uint64_t checkpoint_wal_bytes = 8ull << 20;

  /// Run automatic checkpoints on the Db's background maintenance thread
  /// (the default): the writer that trips the threshold only *requests*
  /// a checkpoint and returns; the maintenance thread takes it, and the
  /// slow part (device flush + manifest write) runs off the commit lock,
  /// so no writer ever stalls behind a manifest write. When false,
  /// auto-checkpoints run inline in the tripping writer before its op
  /// returns — fully deterministic, used by the crash-point sweep and by
  /// tests that count checkpoints. Db::Checkpoint() is synchronous either
  /// way.
  bool background_checkpoint = true;

  bool create_if_missing = true;  ///< Open fails on a missing dir if false.
  bool error_if_exists = false;   ///< Open fails on an existing Db if true.

  /// Caps the device's simultaneously-live blocks; 0 = unlimited. When a
  /// merge or memtable flush hits the cap it aborts atomically (the
  /// pre-merge tree stays fully readable, zero blocks leak) and the
  /// triggering Put/Delete returns ResourceExhausted — write backpressure,
  /// not a poisoned Db. Raise at runtime with SetMaxDeviceBlocks().
  uint64_t max_device_blocks = 0;

  /// Background scrub cadence: every `scrub_interval_ms` of maintenance-
  /// thread idle time, verify the checksums of the next
  /// `scrub_batch_blocks` manifest-live blocks (round-robin by block id,
  /// wrapping). 0 disables background scrubbing; Db::Scrub() runs a full
  /// synchronous pass either way. Corrupt blocks land in the quarantine
  /// set (Db::Stats().quarantined_blocks) without failing the Db.
  uint64_t scrub_interval_ms = 0;
  uint64_t scrub_batch_blocks = 32;

  /// Test seam: when set, every durable step (block write/flush, WAL
  /// append/sync, segment rotate/unlink, manifest write/rename) consults
  /// this injector, and a tripped injector kills the instance mid-step —
  /// the crash-point sweep in tests/integration/crash_sweep_test.cc
  /// drives recovery through every such point. Must outlive the Db.
  FaultInjector* fault_injector = nullptr;
};

/// Counters surfaced by Db::Stats().
struct DbStats {
  IoStats io;  ///< Physical device accounting (incl. cache/bloom counters).
  uint64_t wal_entries_appended = 0;  ///< Since this Db was opened.
  uint64_t wal_bytes_appended = 0;    ///< Framed bytes, since open.
  uint64_t wal_syncs = 0;             ///< Successful explicit WAL fsyncs.
  uint64_t checkpoints = 0;           ///< Checkpoints taken since open.
  uint64_t recovery_wal_entries_replayed = 0;  ///< Replayed during Open.
  uint64_t recovery_manifest_blocks = 0;  ///< Blocks restored from manifest.
  uint64_t deferred_frees = 0;  ///< Blocks pinned for recovery, free deferred.

  /// Block ids that failed checksum verification (on a read or a scrub),
  /// sorted. A quarantined block keeps returning Corruption on every
  /// access; it leaves the set only when a merge/compaction frees it.
  std::vector<BlockId> quarantined_blocks;
  uint64_t scrub_blocks_verified = 0;   ///< Clean verdicts, since open.
  uint64_t scrub_corruptions_found = 0; ///< Corrupt verdicts, since open.
  /// Put/Delete calls that returned ResourceExhausted because the device
  /// hit max_device_blocks (the op itself is logged and applied; only the
  /// triggered merge was rolled back).
  uint64_t write_backpressure_events = 0;

  /// Multi-line human-readable summary (CLI stats line).
  std::string ToString() const;
};

/// Single-entry-point durable engine: a directory owning a
/// FileBlockDevice (`blocks.dev`), a write-ahead log (`wal.log`, plus
/// rotated `wal.old.<n>` segments while a checkpoint is in flight), a
/// checkpoint (`MANIFEST`), and the LsmTree wired over them. This is the
/// documented way into the library for applications; LsmTree stays the
/// policy-research core underneath.
///
/// Lifecycle:
///   * Db::Open creates the directory or auto-recovers an existing one:
///     load MANIFEST -> LsmTree::Restore -> replay every rotated WAL
///     segment in order, then the active WAL tail (tolerating a torn
///     final entry in the active log only).
///   * Every Put/Delete is WAL-appended *before* it is applied, then
///     fsynced per WalSyncMode.
///   * A checkpoint (manual, or automatic once the live WAL exceeds
///     DbOptions::checkpoint_wal_bytes) syncs the WAL, *rotates* it
///     (rename to wal.old.<n>, fresh empty wal.log), publishes the
///     manifest atomically (tmp + fsync + rename + dir fsync), deletes
///     the rotated segments it covers, and recycles block slots whose
///     free had been deferred (see PinnedBlockDevice). Rotation — rather
///     than truncation — is what lets writers keep appending while the
///     manifest is being written.
///
/// Thread-safety: the Db is safe for concurrent use. Reads (Get/Scan/
/// NewIterator) run under a shared tree lock; Put/Delete serialize
/// through a commit lock with cross-thread group commit; automatic
/// checkpoints run on a background maintenance thread by default. An
/// iterator holds the shared tree lock for its whole lifetime, so
/// writers wait until it is destroyed — and a thread must never write
/// while itself holding an open iterator (self-deadlock). See DESIGN.md,
/// "Threading model", for the lock hierarchy and protocols.
///
/// After any durability error (including injected faults) the instance
/// enters a failed state and refuses further operations; reopening the
/// directory recovers the last consistent state.
class Db {
 public:
  /// Opens or creates the Db rooted at directory `dir` (see class
  /// comment). `dbopts.options` must validate; annihilate_delete_put is
  /// rejected because WAL replay re-applies a tail of the history, which
  /// eager tombstone+insert annihilation cannot tolerate. Invalid
  /// WAL/checkpoint knobs (wal_sync_every_n == 0 under kEveryN, a
  /// non-zero checkpoint_wal_bytes too small to hold two entries) are
  /// rejected here too.
  static StatusOr<std::unique_ptr<Db>> Open(const DbOptions& dbopts,
                                            const std::string& dir);

  /// Joins the background maintenance thread (finishing any in-flight
  /// checkpoint) and stops accepting maintenance work. Idempotent; called
  /// automatically by the destructor. Concurrent operations must have
  /// completed before Close() — it is a lifetime event, not an operation.
  void Close();

  /// Close(), then a best-effort final WAL sync (unless the instance
  /// failed). No checkpoint — reopening replays the WAL.
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // ---- Modifications (WAL-appended before apply) ---------------------

  /// Inserts or blind-updates `key`. `payload` must be exactly
  /// payload_size bytes. Safe to call from many threads.
  Status Put(Key key, std::string_view payload);

  /// Deletes `key` (tombstone; the key need not exist).
  Status Delete(Key key);

  // ---- Reads (shared tree lock; run concurrently with each other) ----

  StatusOr<std::string> Get(Key key);
  Status Scan(Key lo, Key hi, std::vector<std::pair<Key, std::string>>* out);
  /// The returned iterator pins the current tree state by holding the
  /// shared tree lock until destroyed: readers proceed, writers wait.
  /// Do not write from the thread holding it. Returns nullptr after a
  /// durability failure.
  std::unique_ptr<Iterator> NewIterator() const;

  // ---- Durability ----------------------------------------------------

  /// Takes a checkpoint now, synchronously (manifest + WAL rotation +
  /// slot recycling). Serializes with any in-flight automatic checkpoint.
  Status Checkpoint();

  /// fsyncs the WAL now (makes every acked modification durable without
  /// the cost of a checkpoint).
  Status SyncWal();

  // ---- Integrity -----------------------------------------------------

  /// Synchronously verifies the checksum of every manifest-live block
  /// (one full scrub pass). Returns OK if all blocks verified clean,
  /// Corruption naming the count of damaged blocks otherwise (their ids
  /// land in Stats().quarantined_blocks). Runs under the shared tree
  /// lock, concurrently with reads.
  Status Scrub();

  /// Raises (or clears, with 0) the device's live-block cap. Writers
  /// backpressured by ResourceExhausted make progress again on their next
  /// operation once capacity allows.
  void SetMaxDeviceBlocks(uint64_t max_blocks);

  // ---- Introspection -------------------------------------------------

  DbStats Stats() const;
  const Options& options() const { return tree_->options(); }
  const std::string& dir() const { return dir_; }
  /// True after a durability error; all operations refuse until reopen.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// The underlying tree, for research/diagnostic code. Mutating it
  /// directly bypasses the WAL — such changes are lost on crash — and
  /// bypasses the Db's locks: only touch it while nothing else (including
  /// a background checkpoint) runs.
  LsmTree* tree() { return tree_.get(); }

  // Layout of a Db directory (exposed for tools/tests).
  static std::string ManifestPath(const std::string& dir);
  static std::string ManifestTmpPath(const std::string& dir);
  static std::string DevicePath(const std::string& dir);
  /// Out-of-band checksum sidecar for blocks.dev (blocks.crc).
  static std::string ChecksumPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);
  /// Path of rotated WAL segment number `seq` (wal.old.<seq>).
  static std::string WalSegmentPath(const std::string& dir, uint64_t seq);
  /// Existing rotated segments in `dir`, sorted by sequence number
  /// (replay order). Exposed so tests can wipe a Db directory completely.
  static std::vector<std::string> ListWalSegments(const std::string& dir);

 private:
  Db(DbOptions dbopts, std::string dir);

  /// WAL-append + tree apply under the commit lock, group-commit sync per
  /// policy, then trigger/run the auto-checkpoint if the threshold
  /// tripped.
  Status Apply(const Record& record);

  /// Blocks until every entry up to `target` is covered by a successful
  /// fsync, becoming the group-commit leader when no sync is in flight
  /// (the leader fsyncs with the commit lock *released*; followers wait
  /// on sync_cv_). `lk` must hold db_mu_. Poisons and returns the error
  /// on fsync failure.
  Status SyncCoveringLocked(std::unique_lock<std::mutex>& lk,
                            uint64_t target);

  /// Quiesces in-flight syncs and issues at least one fsync, so that on
  /// return (with db_mu_ held continuously since the last check) every
  /// appended entry is synced and no sync is in flight — the WAL file is
  /// stable and may be rotated or handed to a new writer.
  Status ForceSyncAllLocked(std::unique_lock<std::mutex>& lk);

  /// Serialized checkpoint entry point (waits out a concurrent
  /// checkpoint, then runs one). `lk` must hold db_mu_.
  Status CheckpointLocked(std::unique_lock<std::mutex>& lk);
  /// The checkpoint protocol itself; db_mu_ is released during the
  /// device flush + manifest write (see DESIGN.md). Requires
  /// checkpoint_in_progress_ set by the caller.
  Status CheckpointBodyLocked(std::unique_lock<std::mutex>& lk);

  /// Background maintenance thread: runs auto-checkpoints requested by
  /// writers — and, when scrub_interval_ms > 0, periodic scrub batches —
  /// until Close().
  void MaintenanceLoop();

  /// One background scrub batch: picks the next scrub_batch_blocks live
  /// blocks after the round-robin cursor and verifies them under the
  /// shared tree lock (db_mu_ released during the I/O). `lk` must hold
  /// db_mu_; reacquired before returning.
  void ScrubTickLocked(std::unique_lock<std::mutex>& lk);

  /// tmp + fsync + rename + dir-fsync, with injected crash points.
  /// Called *without* db_mu_ held (it only touches dir_ and the
  /// injector).
  Status WriteManifestAtomically(const std::string& data);
  /// Block ids referenced by the live tree (the next manifest's pin set).
  /// Requires db_mu_ (tree structure is stable under it).
  std::vector<BlockId> CurrentTreeBlocks() const;
  /// Opens a WAL writer on `path`, wrapping it for fault injection when
  /// configured.
  StatusOr<std::unique_ptr<WalWriter>> MakeWalWriter(
      const std::string& path) const;

  /// Marks the instance failed, wakes every waiter, and passes `st`
  /// through. Requires db_mu_ held.
  Status FailLocked(Status st);
  Status FailedStatus() const;

  /// Bytes currently in the live WAL: rotated segments + recovered tail
  /// + appends to the active log. Requires db_mu_.
  uint64_t WalLiveBytesLocked() const;

  DbOptions dbopts_;
  std::string dir_;
  std::unique_ptr<FileBlockDevice> device_;  ///< Base physical device.
  std::unique_ptr<FaultInjectionBlockDevice> fault_device_;  ///< Optional.
  std::unique_ptr<PinnedBlockDevice> pinned_;
  std::unique_ptr<LsmTree> tree_;
  std::unique_ptr<WalWriter> wal_;  ///< Active log; swapped at rotation.

  // ---- Concurrency (lock hierarchy: db_mu_ before tree_mu_) ----------
  //
  // db_mu_   commit lock: WAL append order == tree apply order, group-
  //          commit state, checkpoint state, counters. Released while a
  //          leader fsyncs and while a checkpoint writes the manifest.
  // tree_mu_ tree + device-metadata lock: Get/Scan/iterators hold it
  //          shared; tree mutations and deferred-free recycling hold it
  //          exclusive (always while also holding db_mu_). Writer-
  //          preferring so tight read loops cannot starve commits
  //          (std::shared_mutex on glibc would).
  mutable std::mutex db_mu_;
  mutable SharedMutex tree_mu_;
  std::condition_variable sync_cv_;   ///< Group-commit rounds completing.
  std::condition_variable ckpt_cv_;   ///< Checkpoint slot freeing up.
  std::condition_variable maint_cv_;  ///< Work for the maintenance thread.
  std::thread maintenance_;

  std::atomic<bool> failed_{false};
  bool closed_ = false;               ///< Close() ran (under db_mu_).
  bool stop_maintenance_ = false;     ///< Tells MaintenanceLoop to exit.
  bool checkpoint_requested_ = false; ///< Writer tripped the threshold.
  bool checkpoint_in_progress_ = false;
  bool sync_in_progress_ = false;     ///< A group-commit leader is fsyncing.

  // Group-commit bookkeeping (under db_mu_). Sequence numbers count WAL
  // entries appended since open; they survive rotation (unlike the
  // per-writer counters, which reset with each fresh wal.log).
  uint64_t seq_appended_ = 0;  ///< Entries appended.
  uint64_t seq_synced_ = 0;    ///< Entries covered by a completed fsync.
  uint64_t sync_target_ = 0;   ///< Entries covered once the in-flight
                               ///< fsync completes (kEveryN batching).

  uint64_t wal_bytes_total_ = 0;  ///< Framed bytes appended since open.
  uint64_t wal_syncs_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t recovery_replayed_ = 0;
  uint64_t recovery_manifest_blocks_ = 0;
  uint64_t wal_recovered_bytes_ = 0;  ///< Active-WAL size found at Open.
  uint64_t wal_old_bytes_ = 0;    ///< Total bytes in rotated segments.
  uint64_t next_wal_segment_ = 1; ///< Next rotation's segment number.

  // Integrity bookkeeping (under db_mu_).
  uint64_t scrub_blocks_verified_ = 0;
  uint64_t scrub_corruptions_ = 0;
  uint64_t backpressure_events_ = 0;
  BlockId scrub_cursor_ = 0;  ///< Background scrub resumes after this id.
};

}  // namespace lsmssd

#endif  // LSMSSD_DB_DB_H_
