#ifndef LSMSSD_DB_DB_H_
#define LSMSSD_DB_DB_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/db/pinned_block_device.h"
#include "src/format/options.h"
#include "src/lsm/iterator.h"
#include "src/lsm/lsm_tree.h"
#include "src/lsm/wal.h"
#include "src/policy/policy_factory.h"
#include "src/storage/fault_injection.h"
#include "src/storage/fault_injection_block_device.h"
#include "src/storage/file_block_device.h"
#include "src/storage/io_stats.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// When WAL appends are fsynced. An acknowledged modification is
/// *guaranteed* to survive a crash only once a sync (or a checkpoint)
/// covering it has succeeded; a crash never leaves a modification
/// partially visible under any mode.
enum class WalSyncMode {
  kNone,    ///< Sync only at checkpoint/close. Fastest; crash may lose
            ///< the acked tail (never tear it).
  kEveryN,  ///< Group commit: sync every DbOptions::wal_sync_every_n
            ///< appends.
  kAlways,  ///< Sync before acknowledging every modification.
};

/// Configuration of a durable Db instance.
struct DbOptions {
  /// Tree/format options. When opening an existing Db, the format fields
  /// stored in its manifest are authoritative; only the runtime-only
  /// fields (cache_blocks, bloom_bits_per_key) are taken from here.
  Options options;

  /// Merge policy driving the tree (and its Mixed parameters, when the
  /// policy is kMixed).
  PolicyKind policy = PolicyKind::kChooseBest;
  MixedParams mixed_params;

  WalSyncMode wal_sync_mode = WalSyncMode::kAlways;
  uint64_t wal_sync_every_n = 64;  ///< Used by kEveryN only; must be > 0.

  /// Automatic checkpoint threshold: when the WAL exceeds this many
  /// bytes, the modification that crossed the line triggers a checkpoint
  /// before returning. 0 disables automatic checkpoints (call
  /// Db::Checkpoint() manually).
  uint64_t checkpoint_wal_bytes = 8ull << 20;

  bool create_if_missing = true;  ///< Open fails on a missing dir if false.
  bool error_if_exists = false;   ///< Open fails on an existing Db if true.

  /// Test seam: when set, every durable step (block write/flush, WAL
  /// append/sync/truncate, manifest write/rename) consults this
  /// injector, and a tripped injector kills the instance mid-step —
  /// the crash-point sweep in tests/integration/crash_sweep_test.cc
  /// drives recovery through every such point. Must outlive the Db.
  FaultInjector* fault_injector = nullptr;
};

/// Counters surfaced by Db::Stats().
struct DbStats {
  IoStats io;  ///< Physical device accounting (incl. cache/bloom counters).
  uint64_t wal_entries_appended = 0;  ///< Since this Db was opened.
  uint64_t wal_bytes_appended = 0;    ///< Framed bytes, since open.
  uint64_t wal_syncs = 0;             ///< Successful explicit WAL fsyncs.
  uint64_t checkpoints = 0;           ///< Checkpoints taken since open.
  uint64_t recovery_wal_entries_replayed = 0;  ///< Replayed during Open.
  uint64_t recovery_manifest_blocks = 0;  ///< Blocks restored from manifest.
  uint64_t deferred_frees = 0;  ///< Blocks pinned for recovery, free deferred.

  /// Multi-line human-readable summary (CLI stats line).
  std::string ToString() const;
};

/// Single-entry-point durable engine: a directory owning a
/// FileBlockDevice (`blocks.dev`), a write-ahead log (`wal.log`), a
/// checkpoint (`MANIFEST`), and the LsmTree wired over them. This is the
/// documented way into the library for applications; LsmTree stays the
/// policy-research core underneath.
///
/// Lifecycle:
///   * Db::Open creates the directory or auto-recovers an existing one:
///     load MANIFEST -> LsmTree::Restore -> replay the WAL tail
///     (tolerating a torn final entry).
///   * Every Put/Delete is WAL-appended *before* it is applied, then
///     fsynced per WalSyncMode.
///   * When the WAL exceeds DbOptions::checkpoint_wal_bytes, the Db
///     checkpoints automatically: fsync the WAL (the durable log must
///     cover every entry the manifest will include), flush the block
///     device, write the manifest to MANIFEST.tmp, fsync, atomically
///     rename over MANIFEST, fsync the directory, truncate the WAL, and
///     recycle block slots whose free had been deferred (see
///     PinnedBlockDevice).
///
/// After any durability error (including injected faults) the instance
/// enters a failed state and refuses further operations; reopening the
/// directory recovers the last consistent state.
///
/// Single-threaded, like the tree (the paper scopes concurrency out).
class Db {
 public:
  /// Opens or creates the Db rooted at directory `dir` (see class
  /// comment). `dbopts.options` must validate; annihilate_delete_put is
  /// rejected because WAL replay re-applies a tail of the history, which
  /// eager tombstone+insert annihilation cannot tolerate.
  static StatusOr<std::unique_ptr<Db>> Open(const DbOptions& dbopts,
                                            const std::string& dir);

  /// Best-effort final WAL sync (unless the instance failed), then
  /// closes everything. No checkpoint — reopening replays the WAL.
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // ---- Modifications (WAL-appended before apply) ---------------------

  /// Inserts or blind-updates `key`. `payload` must be exactly
  /// payload_size bytes.
  Status Put(Key key, std::string_view payload);

  /// Deletes `key` (tombstone; the key need not exist).
  Status Delete(Key key);

  // ---- Reads ---------------------------------------------------------

  StatusOr<std::string> Get(Key key);
  Status Scan(Key lo, Key hi, std::vector<std::pair<Key, std::string>>* out);
  /// The Db must not be modified while the iterator is in use.
  std::unique_ptr<Iterator> NewIterator() const;

  // ---- Durability ----------------------------------------------------

  /// Takes a checkpoint now (manifest + WAL truncate + slot recycling).
  Status Checkpoint();

  /// fsyncs the WAL now (makes every acked modification durable without
  /// the cost of a checkpoint).
  Status SyncWal();

  // ---- Introspection -------------------------------------------------

  DbStats Stats() const;
  const Options& options() const { return tree_->options(); }
  const std::string& dir() const { return dir_; }
  /// True after a durability error; all operations refuse until reopen.
  bool failed() const { return failed_; }
  /// The underlying tree, for research/diagnostic code. Mutating it
  /// directly bypasses the WAL — such changes are lost on crash.
  LsmTree* tree() { return tree_.get(); }

  // Layout of a Db directory (exposed for tools/tests).
  static std::string ManifestPath(const std::string& dir);
  static std::string ManifestTmpPath(const std::string& dir);
  static std::string DevicePath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

 private:
  Db(DbOptions dbopts, std::string dir);

  /// WAL-append, sync per policy, apply to the tree, maybe checkpoint.
  Status Apply(const Record& record);
  Status CheckpointInternal();
  /// tmp + fsync + rename + dir-fsync, with injected crash points.
  Status WriteManifestAtomically(const std::string& data);
  /// Block ids referenced by the live tree (the next manifest's pin set).
  std::vector<BlockId> CurrentTreeBlocks() const;
  /// Marks the instance failed and passes `st` through.
  Status Fail(Status st);
  /// Bytes currently in the WAL (recovered tail + appends since the last
  /// truncate); drives the auto-checkpoint threshold.
  uint64_t WalLiveBytes() const;

  DbOptions dbopts_;
  std::string dir_;
  std::unique_ptr<FileBlockDevice> device_;  ///< Base physical device.
  std::unique_ptr<FaultInjectionBlockDevice> fault_device_;  ///< Optional.
  std::unique_ptr<PinnedBlockDevice> pinned_;
  std::unique_ptr<LsmTree> tree_;
  std::unique_ptr<WalWriter> wal_;

  bool failed_ = false;
  uint64_t wal_syncs_ = 0;
  uint64_t entries_synced_ = 0;   ///< wal_->entries_appended() at last sync.
  uint64_t checkpoints_ = 0;
  uint64_t recovery_replayed_ = 0;
  uint64_t recovery_manifest_blocks_ = 0;
  uint64_t wal_recovered_bytes_ = 0;     ///< WAL size found at Open.
  uint64_t bytes_at_last_truncate_ = 0;  ///< wal_->bytes_appended() then.
};

}  // namespace lsmssd

#endif  // LSMSSD_DB_DB_H_
