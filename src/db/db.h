#ifndef LSMSSD_DB_DB_H_
#define LSMSSD_DB_DB_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/db/pinned_block_device.h"
#include "src/format/options.h"
#include "src/format/vlog_pointer.h"
#include "src/lsm/iterator.h"
#include "src/lsm/lsm_tree.h"
#include "src/lsm/wal.h"
#include "src/policy/policy_factory.h"
#include "src/storage/fault_injection.h"
#include "src/storage/fault_injection_block_device.h"
#include "src/storage/file_block_device.h"
#include "src/storage/vlog_file.h"
#include "src/storage/io_stats.h"
#include "src/util/histogram.h"
#include "src/util/rate_limiter.h"
#include "src/util/shared_mutex.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// When WAL appends are fsynced. An acknowledged modification is
/// *guaranteed* to survive a crash only once a sync (or a checkpoint)
/// covering it has succeeded; a crash never leaves a modification
/// partially visible under any mode.
enum class WalSyncMode {
  kNone,    ///< Sync only at checkpoint/close. Fastest; crash may lose
            ///< the acked tail (never tear it).
  kEveryN,  ///< Group commit: one writer fsyncs once the batch reaches
            ///< DbOptions::wal_sync_every_n unsynced appends (across all
            ///< threads), and every waiter it covers is acked together.
  kAlways,  ///< Sync before acknowledging every modification.
};

/// Configuration of a durable Db instance.
struct DbOptions {
  /// Tree/format options. When opening an existing Db, the format fields
  /// stored in its manifest are authoritative; only the runtime-only
  /// fields (cache_blocks, bloom_bits_per_key) are taken from here.
  Options options;

  /// Merge policy driving the tree (and its Mixed parameters, when the
  /// policy is kMixed).
  PolicyKind policy = PolicyKind::kChooseBest;
  MixedParams mixed_params;

  WalSyncMode wal_sync_mode = WalSyncMode::kAlways;
  uint64_t wal_sync_every_n = 64;  ///< Used by kEveryN only; must be > 0.

  /// Hash-partition keys across this many independent LSM shards, each a
  /// complete single-shard Db (own memtable pipeline, WAL, device file,
  /// compaction thread) in a `shard-<i>` subdirectory, fronted by one
  /// facade so callers are untouched. The partition function (stable
  /// FNV-1a over the key bytes) and the shard count are recorded in a
  /// root `SHARDS` layout file at creation; on reopen that file is
  /// authoritative, so a sharded Db reopens correctly even with the
  /// default options. 1 (the default) is the classic single-shard layout
  /// — no layout file, byte-identical behavior to previous releases.
  /// Opening an existing Db with a *different* non-default shard count,
  /// or asking for shards > 1 on an existing single-shard directory,
  /// fails: resharding in place is not supported.
  size_t shards = 1;

  /// Global memory-arbiter budget for sharded + background-compaction
  /// mode, in records: when the sum of active/sealed-memtable and
  /// L0-buffer records across all shards exceeds this, the facade seals
  /// the shard with the largest active memtable (turning the biggest
  /// memory holder into flushable work) before admitting the write.
  /// 0 = the single-shard ceiling, (compaction_queue_depth + 2) * K0 * B
  /// records, so N shards together use no more memory than one shard
  /// would. Ignored when shards == 1 or background_compaction is off
  /// (inline sharded mode keeps N independent K0 budgets; see DESIGN.md).
  uint64_t shard_memory_budget_records = 0;

  /// Automatic checkpoint threshold: a checkpoint runs once the live WAL
  /// (rotated segments + active log) exceeds this many bytes. 0 disables
  /// automatic checkpoints (call Db::Checkpoint() manually). Must
  /// otherwise be large enough that checkpoints cannot fire on every
  /// single modification (>= two framed entries); Open rejects smaller
  /// values.
  uint64_t checkpoint_wal_bytes = 8ull << 20;

  /// Run automatic checkpoints on the Db's background maintenance thread
  /// (the default): the writer that trips the threshold only *requests*
  /// a checkpoint and returns; the maintenance thread takes it, and the
  /// slow part (device flush + manifest write) runs off the commit lock,
  /// so no writer ever stalls behind a manifest write. When false,
  /// auto-checkpoints run inline in the tripping writer before its op
  /// returns — fully deterministic, used by the crash-point sweep and by
  /// tests that count checkpoints. Db::Checkpoint() is synchronous either
  /// way.
  bool background_checkpoint = true;

  bool create_if_missing = true;  ///< Open fails on a missing dir if false.
  bool error_if_exists = false;   ///< Open fails on an existing Db if true.

  /// Take merges off the write path: Put/Delete land in the WAL and the
  /// active memtable only; when the memtable fills it is *sealed* onto a
  /// bounded queue of immutable memtables, and a dedicated background
  /// compaction thread drains the queue one bounded merge step at a
  /// time, publishing each step atomically under the exclusive tree
  /// lock. Writers never wait for a merge unless the
  /// queue backs up — then they are first throttled (see
  /// compaction_slowdown_depth) and finally stalled until the worker
  /// frees a slot (counted and timed in DbStats). Default off: the inline
  /// paper-faithful write path, where the writer that overflows L0 runs
  /// the whole merge cascade before its op returns.
  bool background_compaction = false;

  /// Hard bound on queued sealed memtables (>= 1). A writer that must
  /// seal while the queue is full stalls until the worker drains one.
  /// Memory ceiling: (compaction_queue_depth + 1) * K0 * B records.
  size_t compaction_queue_depth = 4;

  /// Background compaction worker threads (>= 1; background mode only).
  /// With one worker (the default, previous behavior) flushes and merges
  /// alternate on a single thread, so one long merge head-of-line blocks
  /// every flush behind it and the sealed queue backs up into throttles
  /// and stalls. With more workers the steps are scheduled through a
  /// per-level ownership table: flushes run under the memtable lock only
  /// and claim the L0 buffer; a merge of level s claims {s, s+1} and
  /// holds the exclusive tree lock for its step (level publication stays
  /// a single serialized step) — so a flush proceeds concurrently with a
  /// long merge, and no two workers ever write the same level.
  size_t compaction_workers = 1;

  /// Token-bucket cap on the aggregate background merge write rate, in
  /// data blocks per second; 0 = unpaced (previous behavior). Merge steps
  /// charge the bucket as they write and the worker sleeps off any debt
  /// *between* steps with no locks held, smoothing merge I/O over time
  /// instead of emitting it in bursts (the write-latency-variance
  /// pathology of unthrottled compaction; see DESIGN.md). Fairness: the
  /// pacing pause is skipped while the sealed queue is at or past
  /// compaction_slowdown_depth — when writers are already being
  /// throttled, merges run at full speed to drain the backlog.
  uint64_t compaction_rate_limit_blocks_per_sec = 0;

  /// Bucket capacity for the rate limiter, in blocks; bounds how large a
  /// burst an idle period can buy. 0 = auto (max(64, limit/8)).
  uint64_t compaction_rate_burst_blocks = 0;

  /// Soft backpressure: while the queue holds at least this many sealed
  /// memtables, every modification sleeps compaction_slowdown_micros
  /// before committing, slowing writers so the worker can catch up
  /// before they hit the hard stall. 0 disables throttling.
  size_t compaction_slowdown_depth = 3;
  uint64_t compaction_slowdown_micros = 200;

  /// Caps the device's simultaneously-live blocks; 0 = unlimited. When a
  /// merge or memtable flush hits the cap it aborts atomically (the
  /// pre-merge tree stays fully readable, zero blocks leak) and the
  /// triggering Put/Delete returns ResourceExhausted — write backpressure,
  /// not a poisoned Db. Raise at runtime with SetMaxDeviceBlocks().
  uint64_t max_device_blocks = 0;

  /// Background scrub cadence: every `scrub_interval_ms` of maintenance-
  /// thread idle time, verify the checksums of the next
  /// `scrub_batch_blocks` manifest-live blocks (round-robin by block id,
  /// wrapping). 0 disables background scrubbing; Db::Scrub() runs a full
  /// synchronous pass either way. Corrupt blocks land in the quarantine
  /// set (Db::Stats().quarantined_blocks) without failing the Db.
  uint64_t scrub_interval_ms = 0;
  uint64_t scrub_batch_blocks = 32;

  /// Value-log GC trigger (only meaningful when Options::vlog_enabled()):
  /// when the estimated dead fraction of the value log reaches this
  /// ratio, the maintenance thread rewrites the live entries out of the
  /// oldest segment, advances the tail, and checkpoints to reclaim it.
  /// 0 disables automatic GC (Db::CompactVlog() still works); must be
  /// < 1 otherwise.
  double vlog_gc_ratio = 0.0;

  /// Value-log segment roll threshold: once the head segment reaches
  /// this many bytes it is sealed (fsynced) and a fresh `vlog-<n+1>`
  /// starts. Smaller segments mean finer-grained GC. Must be > 0.
  uint64_t vlog_segment_bytes = 4ull << 20;

  /// Test seam: when set, every durable step (block write/flush, WAL
  /// append/sync, segment rotate/unlink, manifest write/rename) consults
  /// this injector, and a tripped injector kills the instance mid-step —
  /// the crash-point sweep in tests/integration/crash_sweep_test.cc
  /// drives recovery through every such point. Must outlive the Db.
  FaultInjector* fault_injector = nullptr;
};

/// Counters surfaced by Db::Stats().
struct DbStats {
  IoStats io;  ///< Physical device accounting (incl. cache/bloom counters).
  uint64_t wal_entries_appended = 0;  ///< Since this Db was opened.
  uint64_t wal_bytes_appended = 0;    ///< Framed bytes, since open.
  uint64_t wal_syncs = 0;             ///< Successful explicit WAL fsyncs.
  uint64_t checkpoints = 0;           ///< Checkpoints taken since open.
  uint64_t recovery_wal_entries_replayed = 0;  ///< Replayed during Open.
  uint64_t recovery_manifest_blocks = 0;  ///< Blocks restored from manifest.
  uint64_t deferred_frees = 0;  ///< Blocks pinned for recovery, free deferred.

  /// Block ids that failed checksum verification (on a read or a scrub),
  /// sorted. A quarantined block keeps returning Corruption on every
  /// access; it leaves the set only when a merge/compaction frees it.
  std::vector<BlockId> quarantined_blocks;
  uint64_t scrub_blocks_verified = 0;   ///< Clean verdicts, since open.
  uint64_t scrub_corruptions_found = 0; ///< Corrupt verdicts, since open.
  /// Put/Delete calls that returned ResourceExhausted because the device
  /// hit max_device_blocks (the op itself is logged and applied; only the
  /// triggered merge was rolled back).
  uint64_t write_backpressure_events = 0;

  // Background compaction (all zero when background_compaction is off).
  uint64_t memtables_sealed = 0;     ///< Active memtables moved to the queue.
  uint64_t background_flushes = 0;   ///< Worker steps draining a sealed memtable.
  uint64_t background_merges = 0;    ///< Worker steps merging an on-SSD level.
  uint64_t compaction_queue_depth = 0;  ///< Sealed memtables queued right now.
  uint64_t compaction_micros = 0;    ///< Worker wall time inside merge steps.
  uint64_t throttle_events = 0;      ///< Ops delayed by the soft slowdown.
  uint64_t throttle_micros = 0;
  uint64_t stall_events = 0;         ///< Ops that hit the hard queue-full stall.
  uint64_t stall_micros = 0;
  /// Pacing pauses the rate limiter imposed on merge workers (zero when
  /// compaction_rate_limit_blocks_per_sec is 0).
  uint64_t compaction_rate_pauses = 0;
  uint64_t compaction_rate_pause_micros = 0;
  /// Per-op hard-stall wait times in microseconds (only stalled ops are
  /// recorded; an empty histogram means no writer ever hit the wall). For
  /// a sharded Db this is the *merge* of every shard's histogram
  /// (LatencyHistogram::Merge), not one shard's view.
  LatencyHistogram stall_latency;

  // Sharding (see DbOptions::shards; both trivial when unsharded).
  uint64_t shards = 1;         ///< Shard count behind this facade.
  uint64_t arbiter_seals = 0;  ///< Early seals forced by the memory arbiter.

  // Value log (all zero when key–value separation is off; the ToString
  // summary omits the vlog line entirely in that case).
  uint64_t vlog_segments = 0;         ///< Segments in [tail, head] right now.
  uint64_t vlog_bytes_appended = 0;   ///< Entry bytes appended since open.
  uint64_t vlog_gc_rewrites = 0;      ///< Live entries GC re-appended.
  uint64_t vlog_segments_reclaimed = 0;  ///< Segments GC deleted since open.
  uint64_t vlog_quarantined_entries = 0; ///< Entries failing checksum reads.

  /// Multi-line human-readable summary (CLI stats line).
  std::string ToString() const;
};

/// Single-entry-point durable engine: a directory owning a
/// FileBlockDevice (`blocks.dev`), a write-ahead log (`wal.log`, plus
/// rotated `wal.old.<n>` segments while a checkpoint is in flight), a
/// checkpoint (`MANIFEST`), and the LsmTree wired over them. This is the
/// documented way into the library for applications; LsmTree stays the
/// policy-research core underneath.
///
/// Lifecycle:
///   * Db::Open creates the directory or auto-recovers an existing one:
///     load MANIFEST -> LsmTree::Restore -> replay every rotated WAL
///     segment in order, then the active WAL tail (tolerating a torn
///     final entry in the active log only).
///   * Every Put/Delete is WAL-appended *before* it is applied, then
///     fsynced per WalSyncMode.
///   * A checkpoint (manual, or automatic once the live WAL exceeds
///     DbOptions::checkpoint_wal_bytes) syncs the WAL, *rotates* it
///     (rename to wal.old.<n>, fresh empty wal.log), publishes the
///     manifest atomically (tmp + fsync + rename + dir fsync), deletes
///     the rotated segments it covers, and recycles block slots whose
///     free had been deferred (see PinnedBlockDevice). Rotation — rather
///     than truncation — is what lets writers keep appending while the
///     manifest is being written.
///
/// Thread-safety: the Db is safe for concurrent use. Reads (Get/Scan/
/// NewIterator) run under a shared tree lock; Put/Delete serialize
/// through a commit lock with cross-thread group commit; automatic
/// checkpoints run on a background maintenance thread by default. An
/// iterator holds the shared tree lock for its whole lifetime, so
/// writers wait until it is destroyed — and a thread must never write
/// while itself holding an open iterator (self-deadlock). See DESIGN.md,
/// "Threading model", for the lock hierarchy and protocols.
///
/// After any durability error (including injected faults) the instance
/// enters a failed state and refuses further operations; reopening the
/// directory recovers the last consistent state.
class Db {
 public:
  /// Opens or creates the Db rooted at directory `dir` (see class
  /// comment). `dbopts.options` must validate; annihilate_delete_put is
  /// rejected because WAL replay re-applies a tail of the history, which
  /// eager tombstone+insert annihilation cannot tolerate. Invalid
  /// WAL/checkpoint knobs (wal_sync_every_n == 0 under kEveryN, a
  /// non-zero checkpoint_wal_bytes too small to hold two entries) are
  /// rejected here too.
  static StatusOr<std::unique_ptr<Db>> Open(const DbOptions& dbopts,
                                            const std::string& dir);

  /// Joins the background maintenance thread (finishing any in-flight
  /// checkpoint) and stops accepting maintenance work. Idempotent; called
  /// automatically by the destructor. Concurrent operations must have
  /// completed before Close() — it is a lifetime event, not an operation.
  void Close();

  /// Close(), then a best-effort final WAL sync (unless the instance
  /// failed). No checkpoint — reopening replays the WAL.
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // ---- Modifications (WAL-appended before apply) ---------------------

  /// Inserts or blind-updates `key`. `payload` must be exactly
  /// payload_size bytes. Safe to call from many threads.
  Status Put(Key key, std::string_view payload);

  /// Deletes `key` (tombstone; the key need not exist).
  Status Delete(Key key);

  // ---- Reads (shared tree lock; run concurrently with each other) ----

  StatusOr<std::string> Get(Key key);
  Status Scan(Key lo, Key hi, std::vector<std::pair<Key, std::string>>* out);
  /// The returned iterator pins the current tree state by holding the
  /// shared tree lock until destroyed: readers proceed, writers wait.
  /// Do not write from the thread holding it. Returns nullptr after a
  /// durability failure.
  std::unique_ptr<Iterator> NewIterator() const;

  // ---- Durability ----------------------------------------------------

  /// Takes a checkpoint now, synchronously (manifest + WAL rotation +
  /// slot recycling). Serializes with any in-flight automatic checkpoint.
  Status Checkpoint();

  /// fsyncs the WAL now (makes every acked modification durable without
  /// the cost of a checkpoint).
  Status SyncWal();

  /// Blocks until the background compaction pipeline is idle: no sealed
  /// memtable queued, no worker step running, no kick pending. Returns
  /// the worker's sticky error if compaction is wedged (e.g.
  /// ResourceExhausted on a full device) instead of waiting forever.
  /// No-op (OK) when background_compaction is off. Benches and tests use
  /// it to quiesce before measuring or checking invariants.
  Status WaitForCompaction();

  // ---- Integrity -----------------------------------------------------

  /// Synchronously verifies the checksum of every manifest-live block
  /// (one full scrub pass). Returns OK if all blocks verified clean,
  /// Corruption naming the count of damaged blocks otherwise (their ids
  /// land in Stats().quarantined_blocks). Runs under the shared tree
  /// lock, concurrently with reads.
  Status Scrub();

  /// Garbage-collects the value log synchronously: rewrites the live
  /// entries of every sealed segment to the head, advances the tail over
  /// them, and checkpoints so the reclaimed segments are deleted. No-op
  /// (OK) when key–value separation is off or only the head segment
  /// exists. Fans out to every shard on a sharded facade.
  Status CompactVlog();

  /// Raises (or clears, with 0) the device's live-block cap. Writers
  /// backpressured by ResourceExhausted make progress again on their next
  /// operation once capacity allows.
  void SetMaxDeviceBlocks(uint64_t max_blocks);

  // ---- Introspection -------------------------------------------------

  DbStats Stats() const;
  const Options& options() const {
    return shards_.empty() ? tree_->options() : shards_.front()->options();
  }
  const std::string& dir() const { return dir_; }
  /// True after a durability error; all operations refuse until reopen.
  /// A sharded facade is failed once ANY shard is: the instance died as a
  /// unit (the crash-recovery contract is per-directory), so one poisoned
  /// shard refuses the whole facade rather than serving a partial key
  /// space.
  bool failed() const {
    if (shards_.empty()) return failed_.load(std::memory_order_acquire);
    for (const auto& s : shards_) {
      if (s->failed()) return true;
    }
    return false;
  }
  /// The underlying tree, for research/diagnostic code. Mutating it
  /// directly bypasses the WAL — such changes are lost on crash — and
  /// bypasses the Db's locks: only touch it while nothing else (including
  /// a background checkpoint) runs. nullptr on a sharded facade — use
  /// shard(i)->tree() per shard instead.
  LsmTree* tree() { return tree_.get(); }

  // ---- Sharding ------------------------------------------------------

  /// Number of shards behind this instance (1 when unsharded).
  size_t shard_count() const {
    return shards_.empty() ? 1 : shards_.size();
  }
  /// Shard `i` as a full single-shard Db (diagnostics, per-shard stats).
  /// nullptr when unsharded or out of range. The facade owns it; do not
  /// Close() it directly.
  Db* shard(size_t i) {
    return i < shards_.size() ? shards_[i].get() : nullptr;
  }
  /// The stable partition function: FNV-1a 64-bit over the key's 8
  /// little-endian bytes, mod `shards`. Pure and layout-defining — it is
  /// what the SHARDS file pins, so it must never change for existing
  /// layouts.
  static size_t ShardOfKey(Key key, size_t shards);

  // Layout of a Db directory (exposed for tools/tests).
  static std::string ManifestPath(const std::string& dir);
  static std::string ManifestTmpPath(const std::string& dir);
  static std::string DevicePath(const std::string& dir);
  /// Out-of-band checksum sidecar for blocks.dev (blocks.crc).
  static std::string ChecksumPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);
  /// Path of rotated WAL segment number `seq` (wal.old.<seq>).
  static std::string WalSegmentPath(const std::string& dir, uint64_t seq);
  /// Existing rotated segments in `dir`, sorted by sequence number
  /// (replay order). Exposed so tests can wipe a Db directory completely.
  static std::vector<std::string> ListWalSegments(const std::string& dir);
  /// Path of value-log segment `n` (vlog-<n>); present only when
  /// key–value separation is on.
  static std::string VlogSegmentPath(const std::string& dir, uint64_t n);
  /// Existing vlog segment numbers in `dir`, sorted ascending.
  static std::vector<uint64_t> ListVlogSegments(const std::string& dir);
  /// Root layout file of a sharded Db (`SHARDS`): shard count + partition
  /// function, checksummed, written atomically at creation and
  /// authoritative on reopen. Absent for single-shard layouts.
  static std::string ShardLayoutPath(const std::string& dir);
  static std::string ShardLayoutTmpPath(const std::string& dir);
  /// Directory of shard `i` under a sharded root (`shard-<i>`).
  static std::string ShardDirPath(const std::string& dir, size_t i);
  /// Decodes + checksum-verifies an existing SHARDS file; returns the
  /// shard count. Exposed so offline tools (scrub) can walk a sharded
  /// root without opening the Db.
  static StatusOr<size_t> ReadShardLayout(const std::string& dir);

 private:
  Db(DbOptions dbopts, std::string dir);

  // ---- Sharded facade (db_sharded.cc) --------------------------------

  /// Opens a Db whose root carries (or will carry) a SHARDS layout:
  /// writes the layout file on creation, then opens every `shard-<i>`
  /// child as a single-shard Db with the same options. `layout_shards` is
  /// the count read from an existing SHARDS file, or 0 when creating.
  static StatusOr<std::unique_ptr<Db>> OpenSharded(const DbOptions& dbopts,
                                                   const std::string& dir,
                                                   size_t layout_shards);
  /// Encodes and atomically publishes the SHARDS file (tmp + fsync +
  /// rename + dir fsync).
  static Status WriteShardLayout(const std::string& dir, size_t shards);

  /// Facade write-path gate: when the cross-shard memory budget is
  /// exceeded, seals the shard with the largest active memtable. Called
  /// before routing each modification; background-compaction mode only.
  void ArbitrateShardMemory();
  /// Seals this (single-shard) Db's active memtable onto the compaction
  /// queue even below capacity — the arbiter's reclaim lever. Refuses
  /// (returns false) rather than stalling when the queue is full, the
  /// worker is wedged, or the memtable is empty.
  bool TrySealActiveMemtable();
  /// This shard's memory-resident record count (active + sealed
  /// memtables + L0 buffer), from the relaxed accounting atomics.
  uint64_t ApproxMemRecords() const;
  /// Stats() over every shard: scalar counters sum, IoStats merge,
  /// quarantine ids concatenate, stall histograms Merge.
  DbStats ShardedStats() const;
  /// Scan via the N-way shard merge iterator.
  Status ShardedScan(Key lo, Key hi,
                     std::vector<std::pair<Key, std::string>>* out);
  /// N-way heap merge over per-shard snapshot iterators, acquired in
  /// shard order 0..N-1 (the fixed lock order that makes the cut
  /// consistent and deadlock-free).
  std::unique_ptr<Iterator> ShardedNewIterator() const;

  /// WAL-append + tree apply under the commit lock, group-commit sync per
  /// policy, then trigger/run the auto-checkpoint if the threshold
  /// tripped.
  Status Apply(const Record& record);

  /// Blocks until every entry up to `target` is covered by a successful
  /// fsync, becoming the group-commit leader when no sync is in flight
  /// (the leader fsyncs with the commit lock *released*; followers wait
  /// on sync_cv_). `lk` must hold db_mu_. Poisons and returns the error
  /// on fsync failure.
  Status SyncCoveringLocked(std::unique_lock<std::mutex>& lk,
                            uint64_t target);

  /// Quiesces in-flight syncs and issues at least one fsync, so that on
  /// return (with db_mu_ held continuously since the last check) every
  /// appended entry is synced and no sync is in flight — the WAL file is
  /// stable and may be rotated or handed to a new writer.
  Status ForceSyncAllLocked(std::unique_lock<std::mutex>& lk);

  /// Serialized checkpoint entry point (waits out a concurrent
  /// checkpoint, then runs one). `lk` must hold db_mu_.
  Status CheckpointLocked(std::unique_lock<std::mutex>& lk);
  /// The checkpoint protocol itself; db_mu_ is released during the
  /// device flush + manifest write (see DESIGN.md). Requires
  /// checkpoint_in_progress_ set by the caller.
  Status CheckpointBodyLocked(std::unique_lock<std::mutex>& lk);

  /// Background maintenance thread: runs auto-checkpoints requested by
  /// writers — and, when scrub_interval_ms > 0, periodic scrub batches —
  /// until Close().
  void MaintenanceLoop();

  /// Background compaction worker body (compaction_workers threads run
  /// it in background mode): sleeps on comp_cv_ until a writer seals a
  /// memtable (or the cap is raised), then runs RunCompactionSteps.
  /// Deliberately NOT the maintenance thread: that one parks on db_mu_,
  /// and a hard-stalled writer waits for compaction progress *while
  /// holding db_mu_* — a worker that needed db_mu_ to wake could then
  /// never run.
  void CompactionLoop();

  // ---- Background compaction (see DESIGN.md, "Compaction scheduling
  // & write stalls") -----------------------------------------------------

  /// Write-path gate, called with db_mu_ held before the WAL append:
  /// applies the soft throttle, and when the active memtable is full,
  /// seals it onto the queue — stalling first if the queue is at
  /// compaction_queue_depth — and kicks the worker. Returns the worker's
  /// sticky error (without applying the op) when compaction is wedged.
  Status MaybeSealOrStallLocked(std::unique_lock<std::mutex>& lk);

  /// Worker: drains the pipeline one step at a time until there is no
  /// work, updating the comp_mu_ counters and waking stalled writers
  /// after every step. Runs WITHOUT db_mu_ (a stalled writer holds it);
  /// takes db_mu_ only to poison the Db on a durability error, after
  /// publishing the error under comp_mu_ so the stalled writer can wake
  /// and release db_mu_ first.
  void RunCompactionSteps();

  /// One bounded worker step, scheduled through the per-level ownership
  /// table (level_claims_, under comp_mu_): a flush claims the L0 buffer
  /// ("level 0") and runs under mem_mu_ exclusive only — pure memory, no
  /// tree lock, so it proceeds while another worker holds tree_mu_ for a
  /// long merge; a merge claims its source level pair {s, s+1} and runs
  /// under tree_mu_ exclusive (serialized level publication). Claims are
  /// try-acquire only (a worker never blocks holding one lock waiting
  /// for a claim), and work that is visible but claimed by another
  /// worker is left to that worker's drain loop, which always rescans
  /// before exiting. Writers keep appending throughout either step kind.
  Status RunOneCompactionStep(LsmTree::CompactStep* step, bool* popped);

  /// Claims every level in [lo, hi] for the calling worker, or claims
  /// nothing and returns false if any is taken. Requires comp_mu_.
  bool TryClaimLevelsLocked(size_t lo, size_t hi);
  void ReleaseLevelsLocked(size_t lo, size_t hi);

  /// Pays off the rate limiter's token debt after a merge step: sleeps
  /// (bounded, off every lock) on comp_cv_ until the debt is covered —
  /// or returns early when the sealed queue gets deep (fairness: merges
  /// yield their pacing to flush pressure) or the Db is stopping.
  void PaceMergeRate();

  /// One background scrub batch: picks the next scrub_batch_blocks live
  /// blocks after the round-robin cursor and verifies them under the
  /// shared tree lock (db_mu_ released during the I/O). `lk` must hold
  /// db_mu_; reacquired before returning.
  void ScrubTickLocked(std::unique_lock<std::mutex>& lk);

  /// tmp + fsync + rename + dir-fsync, with injected crash points.
  /// Called *without* db_mu_ held (it only touches dir_ and the
  /// injector).
  Status WriteManifestAtomically(const std::string& data);
  /// Block ids referenced by the live tree (the next manifest's pin set).
  /// Requires db_mu_ (tree structure is stable under it).
  std::vector<BlockId> CurrentTreeBlocks() const;
  /// Opens a WAL writer on `path`, wrapping it for fault injection when
  /// configured.
  StatusOr<std::unique_ptr<WalWriter>> MakeWalWriter(
      const std::string& path) const;

  // ---- Value log (DESIGN.md §11; all no-ops unless
  // Options::vlog_enabled()) ---------------------------------------------

  /// Opens vlog segment `n` for append+read, wrapping it for fault
  /// injection when `writable` (the head — reads of sealed segments never
  /// consult the injector).
  StatusOr<std::shared_ptr<VlogFile>> MakeVlogFile(uint64_t n,
                                                   bool writable) const;
  /// Appends `record`'s payload to the head vlog segment (rolling it
  /// first if over vlog_segment_bytes) and rewrites `record` in place to
  /// carry the 16-byte pointer. Requires db_mu_; runs before the WAL
  /// append so a WAL-durable pointer always has vlog bytes behind it
  /// (modulo the sync-ordering window recovery handles).
  Status VlogAppendLocked(Record* record);
  /// Seals the current head segment (fsync, so sealed segments are never
  /// torn) and starts `vlog-<head+1>`. Requires db_mu_.
  Status RollVlogLocked();
  /// Resolves a stored 16-byte pointer payload to the user value via the
  /// segment reader map. A checksum/shape mismatch quarantines the entry
  /// (further reads keep failing fast) and returns Corruption naming it —
  /// the Db is NOT poisoned; the damage is one value, not the instance.
  Status ResolveVlogValue(std::string_view stored, Key key,
                          std::string* out) const;
  /// The WAL-append + tree-apply body of Apply (record already in stored
  /// form); factored out so GC can rewrite entries under its held lock.
  Status ApplyLocked(const Record& record, std::unique_lock<std::mutex>& lk);
  /// GC of one sealed segment: scan it (off-lock; sealed segments are
  /// immutable), re-Put every entry the tree still points at, then
  /// advance the pending tail over it. The segment is only deleted after
  /// a checkpoint publishes the new tail — a crash at any step before
  /// that leaves it in place and GC simply re-runs. `lk` must hold
  /// db_mu_; released during the scan.
  Status VlogGcSegmentLocked(std::unique_lock<std::mutex>& lk);
  /// Auto-GC trigger: estimated dead fraction of the log >= vlog_gc_ratio,
  /// using TotalRecords * entry-size as a conservative live-byte floor
  /// (every live key stores exactly one entry). Requires db_mu_.
  bool VlogGcWantedLocked() const;
  /// Unlinks segments below `tail` and drops their readers (after the
  /// manifest recording `tail` is durable). Requires db_mu_.
  Status VlogDropBelowLocked(uint64_t tail);

  /// Marks the instance failed, wakes every waiter, and passes `st`
  /// through. Requires db_mu_ held.
  Status FailLocked(Status st);
  Status FailedStatus() const;

  /// Bytes currently in the live WAL: rotated segments + recovered tail
  /// + appends to the active log. Requires db_mu_.
  uint64_t WalLiveBytesLocked() const;

  DbOptions dbopts_;
  std::string dir_;

  // ---- Sharded facade state (empty/zero when unsharded). A facade owns
  // its children and nothing else: no device, tree, WAL, or threads of
  // its own — every public method routes or fans out. --------------------
  std::vector<std::unique_ptr<Db>> shards_;
  uint64_t shard_mem_budget_ = 0;  ///< Arbiter budget in records (facade).
  std::atomic<uint64_t> arbiter_seals_{0};

  // Per-shard memory accounting maintained by the single-shard write/
  // compaction paths and read (relaxed) by the parent facade's arbiter:
  // active-memtable records (stored under mem_mu_ by writers), sealed-
  // queue records (added at seal, refreshed by the worker at pop), and
  // L0-buffer records (refreshed by the worker after each step).
  std::atomic<uint64_t> mem_active_records_{0};
  std::atomic<uint64_t> mem_sealed_records_{0};
  std::atomic<uint64_t> mem_l0_records_{0};

  std::unique_ptr<FileBlockDevice> device_;  ///< Base physical device.
  std::unique_ptr<FaultInjectionBlockDevice> fault_device_;  ///< Optional.
  std::unique_ptr<PinnedBlockDevice> pinned_;
  std::unique_ptr<LsmTree> tree_;
  std::unique_ptr<WalWriter> wal_;  ///< Active log; swapped at rotation.

  // ---- Concurrency (lock hierarchy: db_mu_ -> tree_mu_ -> mem_mu_ ->
  // comp_mu_; any prefix may be skipped, the order never reversed) ------
  //
  // db_mu_   commit lock: WAL append order == tree apply order, group-
  //          commit state, checkpoint state, counters. Released while a
  //          leader fsyncs and while a checkpoint writes the manifest.
  // tree_mu_ on-SSD tree + device-metadata lock: Get/Scan/iterators hold
  //          it shared; level mutations and deferred-free recycling hold
  //          it exclusive. Inline-mode writers take it exclusive per op
  //          (always while also holding db_mu_); background-mode writers
  //          never take it — only compaction workers do, one merge step
  //          per exclusive hold (level publication stays serialized even
  //          with compaction_workers > 1). Writer-preferring so tight
  //          read loops cannot starve commits (std::shared_mutex on
  //          glibc would).
  // mem_mu_  memory-resident state lock: the active memtable's contents,
  //          the sealed-queue structure, and flush absorption into the
  //          tree's L0 buffer (a flush step runs entirely under mem_mu_
  //          exclusive, never tree_mu_ — pure memory, so it overlaps an
  //          in-flight merge). Writers hold it exclusive for the
  //          in-memory apply and for sealing; readers hold it shared for
  //          the memtable probe (and for an iterator's whole lifetime).
  //          This is the split that takes merges off the write path: a
  //          writer needs only db_mu_ + mem_mu_, a merge step needs
  //          tree_mu_ — they never contend. The L0 buffer's contents are
  //          mutated either under [mem_mu_ exclusive + claim on level 0]
  //          (flush) or [tree_mu_ exclusive + claim on level 0] (L0
  //          spill); readers snapshotting it hold tree_mu_ AND mem_mu_
  //          shared.
  // comp_mu_ leaf lock (never held while acquiring any other): compaction
  //          queue depth, worker state, the per-level ownership table
  //          (level_claims_), stall/throttle/pacing counters. Guards
  //          stall_cv_, on which stalled writers wait *while holding
  //          db_mu_* — which is why workers must not touch db_mu_
  //          between steps.
  mutable std::mutex db_mu_;
  mutable SharedMutex tree_mu_;
  mutable SharedMutex mem_mu_;
  mutable std::mutex comp_mu_;
  std::condition_variable sync_cv_;   ///< Group-commit rounds completing.
  std::condition_variable ckpt_cv_;   ///< Checkpoint slot freeing up.
  std::condition_variable maint_cv_;  ///< Work for the maintenance thread.
  std::condition_variable stall_cv_;  ///< Compaction progress (comp_mu_).
  std::condition_variable comp_cv_;   ///< Work for the worker (comp_mu_).
  std::thread maintenance_;
  /// Compaction worker pool, compaction_workers threads (background mode
  /// only; previously a single thread).
  std::vector<std::thread> compaction_pool_;

  std::atomic<bool> failed_{false};
  bool closed_ = false;               ///< Close() ran (under db_mu_).
  bool stop_maintenance_ = false;     ///< Tells MaintenanceLoop to exit.
  bool checkpoint_requested_ = false; ///< Writer tripped the threshold.
  bool checkpoint_in_progress_ = false;
  bool sync_in_progress_ = false;     ///< A group-commit leader is fsyncing.

  // Background-compaction state (under comp_mu_).
  size_t sealed_queued_ = 0;      ///< Sealed memtables awaiting drain.
  size_t active_compaction_workers_ = 0;  ///< Workers inside RunCompactionSteps.
  bool compaction_scheduled_ = false;  ///< Kicked, no worker started on it yet.
  bool stop_compaction_ = false;  ///< Tells CompactionLoop to exit.
  /// Per-level ownership table (index 0 = the L0 buffer, i = level Li):
  /// nonzero while a worker owns the level for its current step. A flush
  /// claims {0}; a merge of source s claims {s, s+1}. This is what makes
  /// the two L0-buffer mutators (flush absorb under mem_mu_, L0 spill
  /// under tree_mu_) mutually exclusive, and guarantees no two workers
  /// ever write the same level.
  std::vector<uint8_t> level_claims_;
  /// Sticky worker error (ResourceExhausted/Corruption): surfaced to
  /// writers that must seal, cleared by a later successful step or by
  /// SetMaxDeviceBlocks. Durability errors poison the Db instead.
  Status compaction_error_;
  uint64_t memtables_sealed_ = 0;
  uint64_t background_flushes_ = 0;
  uint64_t background_merges_ = 0;
  uint64_t compaction_micros_ = 0;
  uint64_t throttle_events_ = 0;
  uint64_t throttle_micros_ = 0;
  uint64_t stall_events_ = 0;
  uint64_t stall_micros_ = 0;
  uint64_t rate_pauses_ = 0;        ///< Merge pacing pauses taken.
  uint64_t rate_pause_micros_ = 0;  ///< Time merge workers spent pacing.
  LatencyHistogram stall_hist_;

  /// Token bucket charged by merge block-writes (set on the tree at
  /// Open when compaction_rate_limit_blocks_per_sec > 0), drained by
  /// PaceMergeRate between worker steps.
  std::unique_ptr<RateLimiter> merge_rate_limiter_;

  // Group-commit bookkeeping (under db_mu_). Sequence numbers count WAL
  // entries appended since open; they survive rotation (unlike the
  // per-writer counters, which reset with each fresh wal.log).
  uint64_t seq_appended_ = 0;  ///< Entries appended.
  uint64_t seq_synced_ = 0;    ///< Entries covered by a completed fsync.
  uint64_t sync_target_ = 0;   ///< Entries covered once the in-flight
                               ///< fsync completes (kEveryN batching).

  uint64_t wal_bytes_total_ = 0;  ///< Framed bytes appended since open.
  uint64_t wal_syncs_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t recovery_replayed_ = 0;
  uint64_t recovery_manifest_blocks_ = 0;
  uint64_t wal_recovered_bytes_ = 0;  ///< Active-WAL size found at Open.
  uint64_t wal_old_bytes_ = 0;    ///< Total bytes in rotated segments.
  uint64_t next_wal_segment_ = 1; ///< Next rotation's segment number.

  // Integrity bookkeeping (under db_mu_).
  uint64_t scrub_blocks_verified_ = 0;
  uint64_t scrub_corruptions_ = 0;
  uint64_t backpressure_events_ = 0;
  BlockId scrub_cursor_ = 0;  ///< Background scrub resumes after this id.

  // ---- Value log state (empty/zero when key–value separation is off).
  // Writer-side fields are under db_mu_ (vlog appends happen in commit
  // order, before the WAL append). The segment reader map and the
  // quarantine set are under vlog_mu_, a leaf lock readers take without
  // db_mu_ — Get resolves pointers under the shared tree locks only.
  bool vlog_on_ = false;              ///< tree options' vlog_enabled().
  uint64_t vlog_head_file_ = 0;       ///< Segment being appended.
  uint64_t vlog_head_offset_ = 0;     ///< Append end within the head.
  uint64_t vlog_tail_file_ = 0;       ///< Manifest-published tail.
  uint64_t vlog_pending_tail_ = 0;    ///< GC-advanced, awaiting publish.
  VlogFile* vlog_head_ = nullptr;     ///< Borrowed from vlog_files_.
  uint64_t vlog_bytes_appended_ = 0;
  uint64_t vlog_gc_rewrites_ = 0;
  uint64_t vlog_segments_reclaimed_ = 0;

  mutable std::mutex vlog_mu_;  ///< Leaf lock (never held acquiring others).
  /// Every open segment in [tail, head], shared so a reader holding one
  /// across an unlink keeps a valid fd (POSIX keeps the data alive).
  mutable std::map<uint64_t, std::shared_ptr<VlogFile>> vlog_files_;
  /// (segment, offset) of entries that failed verification; kept failing
  /// fast instead of re-reading damaged bytes. Cleared when GC reclaims
  /// the segment.
  mutable std::set<std::pair<uint64_t, uint64_t>> vlog_quarantine_;
  mutable std::atomic<uint64_t> vlog_quarantined_entries_{0};
};

}  // namespace lsmssd

#endif  // LSMSSD_DB_DB_H_
