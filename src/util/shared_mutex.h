#ifndef LSMSSD_UTIL_SHARED_MUTEX_H_
#define LSMSSD_UTIL_SHARED_MUTEX_H_

#include <condition_variable>
#include <mutex>

namespace lsmssd {

/// A writer-preferring reader/writer mutex.
///
/// `std::shared_mutex` on glibc is a reader-preferring pthread rwlock: as
/// long as one reader holds the lock, new readers keep acquiring it even
/// while a writer waits, so a handful of tight read loops can starve a
/// writer *indefinitely* (observed as minutes-long Put stalls in the
/// concurrent stress test). This implementation blocks new readers once a
/// writer is waiting, which bounds writer wait by the currently-active
/// readers only.
///
/// Writer preference cannot starve readers in the Db: writers are
/// serialized by the commit lock and hold this lock only for the
/// in-memory tree apply, so between any two write acquisitions there is a
/// WAL-append (often an fsync) window with no writer active or waiting.
///
/// Meets the SharedMutex named requirements used by std::shared_lock /
/// std::unique_lock / std::lock_guard.
class SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
    std::unique_lock<std::mutex> lk(mu_);
    ++waiting_writers_;
    writer_cv_.wait(lk, [&] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writer_active_ || active_readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::unique_lock<std::mutex> lk(mu_);
    writer_active_ = false;
    // Wake writers first (preference), and readers too in case no writer
    // is waiting; the predicates sort out who proceeds.
    writer_cv_.notify_one();
    reader_cv_.notify_all();
  }

  void lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    reader_cv_.wait(lk, [&] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writer_active_ || waiting_writers_ != 0) return false;
    ++active_readers_;
    return true;
  }

  void unlock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--active_readers_ == 0) writer_cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable writer_cv_;
  std::condition_variable reader_cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_SHARED_MUTEX_H_
