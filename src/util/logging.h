#ifndef LSMSSD_UTIL_LOGGING_H_
#define LSMSSD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace lsmssd {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

namespace internal_logging {

/// Stream-style log message; emits on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Helper that swallows the streamed message of a disabled log statement.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

/// Minimum severity that actually gets printed (default: kWarning, so
/// library internals stay quiet in benchmarks). Fatal always prints.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

#define LSMSSD_LOG(severity)                                    \
  ::lsmssd::internal_logging::LogMessage(                       \
      ::lsmssd::LogSeverity::k##severity, __FILE__, __LINE__)

/// Always-on invariant check; prints the expression, any streamed context,
/// and aborts on failure. Used for programmer errors, not runtime errors.
#define LSMSSD_CHECK(cond)                                       \
  switch (0)                                                     \
  case 0:                                                        \
  default:                                                       \
    (cond) ? (void)0                                             \
           : ::lsmssd::internal_logging::Voidify() &             \
                 LSMSSD_LOG(Fatal) << "Check failed: " #cond " "

#define LSMSSD_CHECK_EQ(a, b) \
  LSMSSD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define LSMSSD_CHECK_NE(a, b) \
  LSMSSD_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define LSMSSD_CHECK_LE(a, b) \
  LSMSSD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LSMSSD_CHECK_LT(a, b) \
  LSMSSD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define LSMSSD_CHECK_GE(a, b) \
  LSMSSD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LSMSSD_CHECK_GT(a, b) \
  LSMSSD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define LSMSSD_DCHECK(cond) LSMSSD_CHECK(cond)
#else
#define LSMSSD_DCHECK(cond) \
  while (false) ::lsmssd::internal_logging::NullStream()
#endif

namespace internal_logging {
/// Makes the ternary in LSMSSD_CHECK type-check (LogMessage is not void).
struct Voidify {
  void operator&(LogMessage&) {}
};
}  // namespace internal_logging

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_LOGGING_H_
