#ifndef LSMSSD_UTIL_STATUS_H_
#define LSMSSD_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lsmssd {

/// Error categories used across the library. The library does not use
/// exceptions; every fallible operation returns a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIoError = 4,
  kOutOfRange = 5,
  kFailedPrecondition = 6,
  kResourceExhausted = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kTimedOut = 10,
  /// The peer is temporarily unreachable (connection reset/refused, peer
  /// closed, server overloaded or draining). Retryable with backoff, unlike
  /// kIoError which signals a broken local resource. Client-local: it has
  /// no wire encoding (see net::WireErrorFromStatus).
  kUnavailable = 11,
};

/// Returns a short human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error indicator. An OK status carries no message and is
/// cheap to copy; error statuses carry a message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s(StatusCodeToString(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function.
#define LSMSSD_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::lsmssd::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_STATUS_H_
