#ifndef LSMSSD_UTIL_RANDOM_H_
#define LSMSSD_UTIL_RANDOM_H_

#include <cstdint>

namespace lsmssd {

/// Deterministic, fast pseudo-random generator (xoshiro256**). All
/// randomness in workloads and tests flows through seeded instances of this
/// class so experiments are exactly reproducible across platforms (the
/// standard library distributions are not portable across implementations).
class Random {
 public:
  /// Seeds the generator. Two generators with equal seeds produce equal
  /// streams. Seed 0 is remapped internally to a fixed non-zero state.
  explicit Random(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the result is exactly uniform.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller, cached pair).
  double NextGaussian();

  /// True with probability p (p clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_RANDOM_H_
