#include "src/util/golden_section.h"

#include <cmath>
#include <map>

#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// Memoizing wrapper so each index is evaluated at most once.
class MemoFn {
 public:
  explicit MemoFn(const std::function<double(size_t)>& f) : f_(f) {}

  double operator()(size_t i) {
    auto it = cache_.find(i);
    if (it != cache_.end()) return it->second;
    const double v = f_(i);
    cache_.emplace(i, v);
    return v;
  }

  size_t evaluations() const { return cache_.size(); }

 private:
  const std::function<double(size_t)>& f_;
  std::map<size_t, double> cache_;
};

}  // namespace

MinimizeResult GoldenSectionMinimize(
    size_t n, const std::function<double(size_t)>& f) {
  LSMSSD_CHECK_GT(n, 0u);
  MemoFn memo(f);

  // Fibonacci-style shrinking bracket on integer indices. We keep the
  // invariant that the minimum lies in [lo, hi]; probes m1 < m2 inside the
  // bracket decide which side to discard. This is the discrete analogue of
  // golden-section search and needs O(log n) probes.
  size_t lo = 0, hi = n - 1;
  while (hi - lo > 2) {
    const size_t span = hi - lo;
    // Golden ratio split; guaranteed lo < m1 < m2 < hi for span > 2.
    size_t m1 = lo + static_cast<size_t>(std::floor(span * 0.382));
    size_t m2 = lo + static_cast<size_t>(std::ceil(span * 0.618));
    if (m1 == lo) ++m1;
    if (m2 == hi) --m2;
    if (m1 >= m2) m2 = m1 + 1;
    if (memo(m1) <= memo(m2)) {
      hi = m2;  // Minimum cannot be right of m2.
    } else {
      lo = m1;  // Minimum cannot be left of m1.
    }
  }

  MinimizeResult result;
  result.best_index = lo;
  result.best_value = memo(lo);
  for (size_t i = lo + 1; i <= hi; ++i) {
    const double v = memo(i);
    if (v < result.best_value) {
      result.best_value = v;
      result.best_index = i;
    }
  }
  result.evaluations = memo.evaluations();
  return result;
}

MinimizeResult LinearScanMinimize(size_t n,
                                  const std::function<double(size_t)>& f) {
  LSMSSD_CHECK_GT(n, 0u);
  MinimizeResult result;
  result.best_index = 0;
  result.best_value = f(0);
  result.evaluations = 1;
  for (size_t i = 1; i < n; ++i) {
    const double v = f(i);
    ++result.evaluations;
    if (v < result.best_value) {
      result.best_value = v;
      result.best_index = i;
    } else if (v > result.best_value) {
      break;  // Unimodal: once the curve turns up, the minimum is behind us.
    }
  }
  return result;
}

}  // namespace lsmssd
