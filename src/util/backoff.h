#ifndef LSMSSD_UTIL_BACKOFF_H_
#define LSMSSD_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "src/util/random.h"

namespace lsmssd {

/// Exponential backoff with decorrelating jitter, used by the network
/// client's retry policy (src/net/client.h). Delays grow geometrically
/// from `initial_ms` up to `max_ms`; each delay is then jittered downward
/// by up to `jitter` of itself so a fleet of clients kicked off by the
/// same event (a server restart, an overload shed) does not retry in
/// lockstep. All randomness flows through a seeded Random, so tests and
/// the chaos bench replay identical schedules.
class ExponentialBackoff {
 public:
  struct Options {
    int initial_ms = 2;
    int max_ms = 250;
    double multiplier = 2.0;
    /// Fraction of each delay randomized away: the n-th delay is uniform
    /// in [base*(1-jitter), base]. 0 = fully deterministic.
    double jitter = 0.5;
    uint64_t seed = 1;
  };

  explicit ExponentialBackoff(const Options& opts)
      : opts_(Sanitize(opts)), rng_(opts_.seed), base_ms_(opts_.initial_ms) {}

  /// The next delay in milliseconds (and advances the schedule). Never
  /// exceeds max_ms; never goes below 0.
  int NextDelayMs() {
    const double base = base_ms_;
    base_ms_ = std::min<double>(opts_.max_ms, base_ms_ * opts_.multiplier);
    ++attempts_;
    const double cut = base * opts_.jitter * rng_.NextDouble();
    const double delay = base - cut;
    return static_cast<int>(delay < 0 ? 0 : delay);
  }

  /// Back to the initial delay (e.g. after a successful request).
  void Reset() {
    base_ms_ = opts_.initial_ms;
    attempts_ = 0;
  }

  /// Delays handed out since construction or the last Reset().
  int attempts() const { return attempts_; }

 private:
  static Options Sanitize(Options o) {
    if (o.initial_ms < 0) o.initial_ms = 0;
    if (o.max_ms < o.initial_ms) o.max_ms = o.initial_ms;
    if (o.multiplier < 1.0) o.multiplier = 1.0;
    o.jitter = std::clamp(o.jitter, 0.0, 1.0);
    return o;
  }

  Options opts_;
  Random rng_;
  double base_ms_;
  int attempts_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_BACKOFF_H_
