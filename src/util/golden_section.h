#ifndef LSMSSD_UTIL_GOLDEN_SECTION_H_
#define LSMSSD_UTIL_GOLDEN_SECTION_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace lsmssd {

/// Result of a discrete minimization run.
struct MinimizeResult {
  size_t best_index = 0;     ///< Index into the candidate domain.
  double best_value = 0.0;   ///< f(domain[best_index]).
  size_t evaluations = 0;    ///< Number of distinct f evaluations performed.
};

/// Minimizes f over the index domain {0, 1, ..., n-1} assuming -f is
/// unimodal (f strictly decreases to a unique minimum then increases;
/// plateaus are tolerated but may return any point of the plateau).
///
/// This is the discrete golden-section / ternary search the paper's Mixed
/// learner uses to find the optimal threshold tau with O(log |D_tau|)
/// measurements (Section IV-C, Theorem 5). Evaluations are memoized so f is
/// called at most once per index — measurements are expensive (each one
/// replays a full level cycle of the workload).
MinimizeResult GoldenSectionMinimize(size_t n,
                                     const std::function<double(size_t)>& f);

/// Linear-scan variant: evaluates f at 0, 1, ... and stops as soon as the
/// value increases (valid under the same unimodality assumption). The paper
/// notes this is adequate for small D_tau (10% increments).
MinimizeResult LinearScanMinimize(size_t n,
                                  const std::function<double(size_t)>& f);

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_GOLDEN_SECTION_H_
