#ifndef LSMSSD_UTIL_BLOOM_H_
#define LSMSSD_UTIL_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/format/key_codec.h"

namespace lsmssd {

/// Standard Bloom filter over keys (double hashing, à la LevelDB). The
/// paper's technical report discusses Bloom filters as an orthogonal
/// optimization for LSM lookups; here one filter guards each data block
/// (leaf), living in memory next to the leaf directory, so negative
/// lookups skip the block read entirely.
class BloomFilter {
 public:
  /// Sizes a filter for `expected_keys` keys at `bits_per_key` bits per
  /// key (>= 1; ~10 gives a ~1% false-positive rate) with no keys added
  /// yet. The number of probes is derived as bits_per_key * ln 2. Add
  /// keys incrementally with AddKey — the construction path for block
  /// builders, which know their key count but should not have to gather
  /// the keys into a temporary vector.
  BloomFilter(size_t expected_keys, size_t bits_per_key);

  /// Convenience: sizes for keys.size() and adds them all.
  BloomFilter(const std::vector<Key>& keys, size_t bits_per_key);

  /// Inserts one key. Adding more than `expected_keys` keys keeps the
  /// filter correct (no false negatives) but raises the false-positive
  /// rate.
  void AddKey(Key key);

  /// False means definitely absent; true means possibly present.
  bool MayContain(Key key) const;

  size_t SizeBytes() const { return bits_.size(); }
  size_t num_probes() const { return num_probes_; }

 private:
  std::vector<uint8_t> bits_;
  size_t num_probes_;
};

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_BLOOM_H_
