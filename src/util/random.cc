#include "src/util/random.h"

#include <cmath>

#include "src/util/logging.h"

namespace lsmssd {

namespace {
// splitmix64: expands a single seed into well-distributed state words.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  if (seed == 0) seed = 0xdeadbeefcafef00dULL;
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  LSMSSD_CHECK_GT(n, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  LSMSSD_CHECK_LE(lo, hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // Full 64-bit range.
  return lo + Uniform(span);
}

double Random::NextDouble() {
  // 53 top bits -> [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace lsmssd
