#include "src/util/flags.h"

#include <cerrno>
#include <cstdlib>

namespace lsmssd {

StatusOr<FlagMap> ParseFlagArgs(int argc, char** argv, int first) {
  FlagMap flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return Status::InvalidArgument("unexpected argument: " + arg);
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else if (eq <= 2) {
      return Status::InvalidArgument("flag has no name: " + arg);
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const FlagMap& flags, const std::string& name,
                   const std::string& fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

StatusOr<uint64_t> FlagUint(const FlagMap& flags, const std::string& name,
                            uint64_t fallback) {
  auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  const std::string& text = it->second;
  if (text.empty() || text[0] == '-' || text[0] == '+') {
    return Status::InvalidArgument("--" + name + " expects an unsigned " +
                                   "integer, got '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return Status::InvalidArgument("--" + name + " expects an unsigned " +
                                   "integer, got '" + text + "'");
  }
  return value;
}

StatusOr<double> FlagDouble(const FlagMap& flags, const std::string& name,
                            double fallback) {
  auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  const std::string& text = it->second;
  if (text.empty()) {
    return Status::InvalidArgument("--" + name + " expects a number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   text + "'");
  }
  return value;
}

StatusOr<bool> FlagBool(const FlagMap& flags, const std::string& name,
                        bool fallback) {
  auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  const std::string& text = it->second;
  if (text == "1" || text == "true") return true;
  if (text == "0" || text == "false") return false;
  return Status::InvalidArgument("--" + name + " expects 0|1|true|false, " +
                                 "got '" + text + "'");
}

Status CheckKnownFlags(const FlagMap& flags,
                       const std::vector<std::string_view>& known) {
  for (const auto& [name, value] : flags) {
    bool found = false;
    for (std::string_view k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
  }
  return Status::OK();
}

}  // namespace lsmssd
