#include "src/util/bloom.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lsmssd {

namespace {
/// 64-bit mix (splitmix64 finalizer) — the base hash for double hashing.
uint64_t HashKey(Key key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

BloomFilter::BloomFilter(size_t expected_keys, size_t bits_per_key) {
  LSMSSD_CHECK_GE(bits_per_key, 1u);
  // k = m/n * ln 2, clamped to a sane range.
  num_probes_ = std::clamp<size_t>(
      static_cast<size_t>(static_cast<double>(bits_per_key) * 0.69), 1, 30);
  const size_t bits = std::max<size_t>(expected_keys * bits_per_key, 64);
  bits_.assign((bits + 7) / 8, 0);
}

BloomFilter::BloomFilter(const std::vector<Key>& keys, size_t bits_per_key)
    : BloomFilter(keys.size(), bits_per_key) {
  for (Key key : keys) AddKey(key);
}

void BloomFilter::AddKey(Key key) {
  const uint64_t bits = bits_.size() * 8;
  uint64_t h = HashKey(key);
  const uint64_t delta = (h >> 17) | (h << 47);  // Second hash.
  for (size_t i = 0; i < num_probes_; ++i) {
    const uint64_t bit = h % bits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    h += delta;
  }
}

bool BloomFilter::MayContain(Key key) const {
  const uint64_t bits = bits_.size() * 8;
  uint64_t h = HashKey(key);
  const uint64_t delta = (h >> 17) | (h << 47);
  for (size_t i = 0; i < num_probes_; ++i) {
    const uint64_t bit = h % bits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace lsmssd
