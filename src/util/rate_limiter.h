#ifndef LSMSSD_UTIL_RATE_LIMITER_H_
#define LSMSSD_UTIL_RATE_LIMITER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace lsmssd {

/// Token-bucket pacing for background merge block-writes, debt-model
/// variant: Charge() never blocks — it draws tokens (possibly driving the
/// balance negative) at the I/O site, and the compaction worker later asks
/// DelayNeeded() how long to pause, *off every lock*, before its next
/// step. Splitting "account" from "wait" this way keeps the limiter out of
/// the merge's tree-lock hold entirely: readers and flushes never stall
/// behind a pacing sleep, only the merge cadence itself is smoothed.
///
/// The bucket refills at `blocks_per_sec` and caps accumulated credit at
/// `burst_blocks`, so an idle period buys at most one burst of unpaced
/// writes. Thread-safe; shared by all compaction workers so the rate bounds
/// the *aggregate* merge write rate, not per-worker.
class RateLimiter {
 public:
  RateLimiter(uint64_t blocks_per_sec, uint64_t burst_blocks)
      : rate_(static_cast<double>(blocks_per_sec)),
        burst_(static_cast<double>(std::max<uint64_t>(1, burst_blocks))),
        tokens_(static_cast<double>(std::max<uint64_t>(1, burst_blocks))),
        last_(Clock::now()) {}

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  bool enabled() const { return rate_ > 0; }

  /// Draws `blocks` tokens. Never blocks; the balance may go negative
  /// (debt), to be slept off by a later DelayNeeded() caller.
  void Charge(uint64_t blocks) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    RefillLocked();
    tokens_ -= static_cast<double>(blocks);
    charged_ += blocks;
  }

  /// Time until the balance returns to zero (zero if not in debt).
  std::chrono::microseconds DelayNeeded() {
    if (!enabled()) return std::chrono::microseconds(0);
    std::lock_guard<std::mutex> lk(mu_);
    RefillLocked();
    if (tokens_ >= 0) return std::chrono::microseconds(0);
    return std::chrono::microseconds(
        static_cast<int64_t>(-tokens_ / rate_ * 1e6) + 1);
  }

  /// Total blocks ever charged (stats).
  uint64_t charged() {
    std::lock_guard<std::mutex> lk(mu_);
    return charged_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  void RefillLocked() {
    const Clock::time_point now = Clock::now();
    const double elapsed_s =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  }

  const double rate_;   ///< Tokens (blocks) per second; 0 disables.
  const double burst_;  ///< Max accumulated credit.
  std::mutex mu_;
  double tokens_;  ///< Current balance; negative = debt.
  uint64_t charged_ = 0;
  Clock::time_point last_;
};

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_RATE_LIMITER_H_
