#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace lsmssd {

Histogram::Histogram(uint64_t lo, uint64_t hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  LSMSSD_CHECK_GT(buckets, 0u);
  LSMSSD_CHECK_LE(lo, hi);
}

unsigned __int128 Histogram::Width() const {
  return static_cast<unsigned __int128>(hi_ - lo_) + 1;
}

// BucketOf and BucketLow are the two directions of one exact mapping,
//   BucketOf(v)   = floor((v - lo) * buckets / width),
//   BucketLow(i)  = lo + ceil(i * width / buckets),
// evaluated in 128-bit integers (width can be 2^64; the products can
// exceed 64 bits). Floating-point scaling here is what used to let the
// two disagree by one bucket at boundary values.
size_t Histogram::BucketOf(uint64_t value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  const auto idx = static_cast<size_t>(
      static_cast<unsigned __int128>(value - lo_) * counts_.size() / Width());
  return idx;  // value < hi => idx < buckets, exactly.
}

void Histogram::Add(uint64_t value) { AddWeighted(value, 1); }

void Histogram::AddWeighted(uint64_t value, uint64_t weight) {
  counts_[BucketOf(value)] += weight;
  total_ += weight;
}

void Histogram::Merge(const Histogram& other) {
  LSMSSD_CHECK(lo_ == other.lo_ && hi_ == other.hi_ &&
               counts_.size() == other.counts_.size())
      << "Histogram::Merge requires an identical domain and bucket count";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

void Histogram::Clear() {
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

double Histogram::Frequency(size_t i) const {
  LSMSSD_CHECK_LT(i, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

uint64_t Histogram::BucketLow(size_t i) const {
  LSMSSD_CHECK_LT(i, counts_.size());
  // Smallest v with (v - lo) * buckets / width >= i, i.e.
  // lo + ceil(i * width / buckets).
  const unsigned __int128 numer = static_cast<unsigned __int128>(i) * Width();
  const auto offset =
      static_cast<uint64_t>((numer + counts_.size() - 1) / counts_.size());
  return lo_ + offset;
}

double Histogram::FrequencyCv() const {
  if (total_ == 0) return 0.0;
  const double mean = 1.0 / counts_.size();
  double var = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double d = Frequency(i) - mean;
    var += d * d;
  }
  var /= counts_.size();
  return std::sqrt(var) / mean;
}

std::string Histogram::ToCsv() const {
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out << BucketLow(i) << "," << counts_[i] << "," << Frequency(i) << "\n";
  }
  return out.str();
}

// 16 linear buckets for values < 16, then 16 sub-buckets per power-of-two
// decade: bucket(v) = (msb(v) - 3) * 16 + next-4-bits(v). Highest decade
// is msb 63, so 976 buckets cover all of uint64.
namespace {
constexpr size_t kLatencyBuckets = (64 - 3) * 16;

size_t Msb(uint64_t v) {
  size_t b = 0;
  while (v >>= 1) ++b;
  return b;
}
}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kLatencyBuckets, 0) {}

size_t LatencyHistogram::BucketOf(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  const size_t k = Msb(value);
  const size_t sub = static_cast<size_t>(value >> (k - 4)) & 15u;
  return (k - 3) * 16 + sub;
}

uint64_t LatencyHistogram::BucketLow(size_t bucket) {
  if (bucket < 16) return bucket;
  const size_t k = bucket / 16 + 3;
  const uint64_t sub = bucket % 16;
  return (16ull + sub) << (k - 4);
}

void LatencyHistogram::Add(uint64_t value) {
  ++counts_[BucketOf(value)];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void LatencyHistogram::Clear() {
  counts_.assign(kLatencyBuckets, 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the sample answering the percentile (1-based, ceil).
  const auto rank = static_cast<uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // The last sample lives in this bucket's range too, but its exact
      // value is known: report it rather than the bucket floor.
      if (seen == count_ && counts_[i] == 1) return max_;
      const uint64_t low = BucketLow(i);
      return low < max_ ? low : max_;
    }
  }
  return max_;
}

std::string LatencyHistogram::ToString() const {
  const uint64_t mean = count_ == 0 ? 0 : sum_ / count_;
  return "count=" + std::to_string(count_) + " mean=" + std::to_string(mean) +
         " p50=" + std::to_string(Percentile(50)) +
         " p95=" + std::to_string(Percentile(95)) +
         " p99=" + std::to_string(Percentile(99)) +
         " max=" + std::to_string(max_);
}

}  // namespace lsmssd
