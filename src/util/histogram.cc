#include "src/util/histogram.h"

#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace lsmssd {

Histogram::Histogram(uint64_t lo, uint64_t hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  LSMSSD_CHECK_GT(buckets, 0u);
  LSMSSD_CHECK_LE(lo, hi);
}

unsigned __int128 Histogram::Width() const {
  return static_cast<unsigned __int128>(hi_ - lo_) + 1;
}

// BucketOf and BucketLow are the two directions of one exact mapping,
//   BucketOf(v)   = floor((v - lo) * buckets / width),
//   BucketLow(i)  = lo + ceil(i * width / buckets),
// evaluated in 128-bit integers (width can be 2^64; the products can
// exceed 64 bits). Floating-point scaling here is what used to let the
// two disagree by one bucket at boundary values.
size_t Histogram::BucketOf(uint64_t value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  const auto idx = static_cast<size_t>(
      static_cast<unsigned __int128>(value - lo_) * counts_.size() / Width());
  return idx;  // value < hi => idx < buckets, exactly.
}

void Histogram::Add(uint64_t value) { AddWeighted(value, 1); }

void Histogram::AddWeighted(uint64_t value, uint64_t weight) {
  counts_[BucketOf(value)] += weight;
  total_ += weight;
}

void Histogram::Clear() {
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

double Histogram::Frequency(size_t i) const {
  LSMSSD_CHECK_LT(i, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

uint64_t Histogram::BucketLow(size_t i) const {
  LSMSSD_CHECK_LT(i, counts_.size());
  // Smallest v with (v - lo) * buckets / width >= i, i.e.
  // lo + ceil(i * width / buckets).
  const unsigned __int128 numer = static_cast<unsigned __int128>(i) * Width();
  const auto offset =
      static_cast<uint64_t>((numer + counts_.size() - 1) / counts_.size());
  return lo_ + offset;
}

double Histogram::FrequencyCv() const {
  if (total_ == 0) return 0.0;
  const double mean = 1.0 / counts_.size();
  double var = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double d = Frequency(i) - mean;
    var += d * d;
  }
  var /= counts_.size();
  return std::sqrt(var) / mean;
}

std::string Histogram::ToCsv() const {
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out << BucketLow(i) << "," << counts_[i] << "," << Frequency(i) << "\n";
  }
  return out.str();
}

}  // namespace lsmssd
