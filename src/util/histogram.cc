#include "src/util/histogram.h"

#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace lsmssd {

Histogram::Histogram(uint64_t lo, uint64_t hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  LSMSSD_CHECK_GT(buckets, 0u);
  LSMSSD_CHECK_LE(lo, hi);
  const double width = static_cast<double>(hi - lo) + 1.0;
  inv_width_ = static_cast<double>(buckets) / width;
}

size_t Histogram::BucketOf(uint64_t value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  auto idx =
      static_cast<size_t>(static_cast<double>(value - lo_) * inv_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  return idx;
}

void Histogram::Add(uint64_t value) { AddWeighted(value, 1); }

void Histogram::AddWeighted(uint64_t value, uint64_t weight) {
  counts_[BucketOf(value)] += weight;
  total_ += weight;
}

void Histogram::Clear() {
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

double Histogram::Frequency(size_t i) const {
  LSMSSD_CHECK_LT(i, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

uint64_t Histogram::BucketLow(size_t i) const {
  LSMSSD_CHECK_LT(i, counts_.size());
  const double width =
      (static_cast<double>(hi_ - lo_) + 1.0) / counts_.size();
  return lo_ + static_cast<uint64_t>(i * width);
}

double Histogram::FrequencyCv() const {
  if (total_ == 0) return 0.0;
  const double mean = 1.0 / counts_.size();
  double var = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double d = Frequency(i) - mean;
    var += d * d;
  }
  var /= counts_.size();
  return std::sqrt(var) / mean;
}

std::string Histogram::ToCsv() const {
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out << BucketLow(i) << "," << counts_[i] << "," << Frequency(i) << "\n";
  }
  return out.str();
}

}  // namespace lsmssd
