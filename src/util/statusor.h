#ifndef LSMSSD_UTIL_STATUSOR_H_
#define LSMSSD_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace lsmssd {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    LSMSSD_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LSMSSD_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    LSMSSD_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    LSMSSD_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr<T>); on error returns the status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define LSMSSD_ASSIGN_OR_RETURN(lhs, rexpr)     \
  LSMSSD_ASSIGN_OR_RETURN_IMPL_(                \
      LSMSSD_CONCAT_(_statusor_, __LINE__), lhs, rexpr)

#define LSMSSD_CONCAT_INNER_(a, b) a##b
#define LSMSSD_CONCAT_(a, b) LSMSSD_CONCAT_INNER_(a, b)
#define LSMSSD_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value()

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_STATUSOR_H_
