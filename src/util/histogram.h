#ifndef LSMSSD_UTIL_HISTOGRAM_H_
#define LSMSSD_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lsmssd {

/// Fixed-bucket histogram over a closed key/value domain [lo, hi]. Used by
/// the Figure 1 experiment to plot per-level key-density distributions
/// (the paper divides the key space into 100 buckets) and by tests to
/// assert distribution shapes.
class Histogram {
 public:
  /// Divides [lo, hi] into `buckets` equal-width buckets. Requires
  /// buckets > 0 and lo <= hi.
  Histogram(uint64_t lo, uint64_t hi, size_t buckets);

  /// Adds one observation. Values outside [lo, hi] clamp to the end buckets.
  void Add(uint64_t value);
  /// Adds `weight` observations of `value`.
  void AddWeighted(uint64_t value, uint64_t weight);

  /// Adds every observation of `other` into this histogram. Requires an
  /// identical domain and bucket count (the merge is then exact:
  /// bucket-wise addition). Merging is associative and commutative, and
  /// the empty histogram is its identity — aggregators (e.g. cross-shard
  /// Db::Stats()) may fold in any order.
  void Merge(const Histogram& other);

  void Clear();

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }

  /// Fraction of mass in bucket i (0 if empty histogram).
  double Frequency(size_t i) const;

  /// Inclusive lower bound of bucket i's value range: the smallest value
  /// v with BucketOf(v) == i. Derived from the same integer mapping as
  /// BucketOf, so BucketOf(BucketLow(i)) == i for every bucket — the two
  /// can never disagree at boundaries.
  uint64_t BucketLow(size_t i) const;

  /// Index of the bucket containing `value` (after clamping):
  /// floor((value - lo) * buckets / (hi - lo + 1)), computed exactly in
  /// 128-bit integer arithmetic.
  size_t BucketOf(uint64_t value) const;

  /// Coefficient of variation of the bucket frequencies; 0 for a perfectly
  /// flat histogram. Convenient skew summary for tests.
  double FrequencyCv() const;

  /// One line per bucket: "<bucket_low>,<count>,<frequency>".
  std::string ToCsv() const;

 private:
  /// Domain width hi - lo + 1 as a 128-bit integer (it overflows uint64_t
  /// when the domain is the full key space).
  unsigned __int128 Width() const;

  uint64_t lo_;
  uint64_t hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Log-scale histogram for latency-like values spanning many orders of
/// magnitude (the write-stall histogram in Db::Stats()). Each power-of-two
/// decade is split into 16 linear sub-buckets, bounding the relative
/// quantile error at ~6% while keeping the footprint fixed (976 buckets
/// covering the full uint64 range). Not internally locked.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Add(uint64_t value);

  /// Adds every observation of `other` into this histogram (bucket-wise;
  /// count/sum/max combine exactly). Associative and commutative with the
  /// empty histogram as identity, so per-shard stall histograms can be
  /// folded into one distribution instead of reporting only one shard's.
  void Merge(const LatencyHistogram& other);

  void Clear();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max_value() const { return max_; }

  /// Approximate value at percentile `p` in [0, 100] (lower bucket bound;
  /// exact max for p covering the last sample). 0 when empty.
  uint64_t Percentile(double p) const;

  /// "count=N mean=M p50=A p95=B p99=C max=D" (zeros when empty).
  std::string ToString() const;

 private:
  static size_t BucketOf(uint64_t value);
  static uint64_t BucketLow(size_t bucket);

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_HISTOGRAM_H_
