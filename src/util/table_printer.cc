#include "src/util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/util/logging.h"

namespace lsmssd {

namespace internal_table {

std::string FormatCell(const std::string& v) { return v; }
std::string FormatCell(const char* v) { return std::string(v); }

std::string FormatCell(double v) {
  char buf[64];
  // %.6g keeps integers clean and gives enough precision for cost ratios.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

std::string FormatCell(float v) { return FormatCell(static_cast<double>(v)); }

}  // namespace internal_table

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  LSMSSD_CHECK(!columns_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  LSMSSD_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToAligned() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(columns_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule += widths[c] + 2;
  out << std::string(rule > 2 ? rule - 2 : rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out << columns_[c] << (c + 1 == columns_.size() ? "\n" : ",");
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  }
  return out.str();
}

void TablePrinter::Print(std::ostream& out, const std::string& tag) const {
  out << ToAligned();
  out << "# begin-csv " << tag << "\n";
  out << ToCsv();
  out << "# end-csv\n";
}

}  // namespace lsmssd
