#ifndef LSMSSD_UTIL_FLAGS_H_
#define LSMSSD_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Parsed `--name=value` command-line flags. A bare `--name` stores "1".
using FlagMap = std::map<std::string, std::string>;

/// Parses argv[first..argc) into a FlagMap. Every argument must look
/// like `--name` or `--name=value`; anything else is InvalidArgument.
/// Pure parsing — no filesystem or process side effects, so a caller can
/// reject bad invocations before creating any state.
StatusOr<FlagMap> ParseFlagArgs(int argc, char** argv, int first);

/// The flag's value, or `fallback` when absent.
std::string FlagOr(const FlagMap& flags, const std::string& name,
                   const std::string& fallback);

/// Strict decimal parse of a flag (default `fallback` when absent).
/// Rejects empty values, signs, trailing garbage, and overflow — unlike
/// strtoull, "--n=12abc" and "--n=-3" are errors, not silent prefixes.
StatusOr<uint64_t> FlagUint(const FlagMap& flags, const std::string& name,
                            uint64_t fallback);

/// Strict floating-point parse of a flag (default `fallback` when absent).
StatusOr<double> FlagDouble(const FlagMap& flags, const std::string& name,
                            double fallback);

/// Boolean flag: absent -> `fallback`; "1"/"true" -> true; "0"/"false"
/// -> false (so `--background-compaction` alone means true, and
/// `--background-compaction=0` turns it back off). Anything else is
/// InvalidArgument.
StatusOr<bool> FlagBool(const FlagMap& flags, const std::string& name,
                        bool fallback);

/// InvalidArgument naming the first flag not in `known` (catches typos
/// like `--shrads=2` that a lookup-with-default would silently ignore).
Status CheckKnownFlags(const FlagMap& flags,
                       const std::vector<std::string_view>& known);

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_FLAGS_H_
