#ifndef LSMSSD_UTIL_CRC32C_H_
#define LSMSSD_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lsmssd {
namespace crc32c {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected as 0x82F63B78).
/// The standard checksum used by production LSM stores for block integrity;
/// detects all single-bit errors and, unlike additive checksums, is not
/// fooled by swapped or misdirected payloads of equal byte sums.
///
/// `Extend` continues a CRC over more data; `Value` starts from zero.
/// Test vector: Value("123456789", 9) == 0xE3069283.
uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n);

inline uint32_t Value(const uint8_t* data, size_t n) {
  return Extend(0, data, n);
}

}  // namespace crc32c
}  // namespace lsmssd

#endif  // LSMSSD_UTIL_CRC32C_H_
