#include "src/util/crc32c.h"

#include <array>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace lsmssd {
namespace crc32c {
namespace {

// Slicing-by-8 lookup tables for the Castagnoli polynomial, built once at
// static-init time. Table[0] is the classic byte-at-a-time table; tables
// 1..7 fold eight input bytes per iteration.
struct Tables {
  uint32_t t[8][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int j = 1; j < 8; ++j) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[j][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

inline uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n) {
  crc = ~crc;
#if defined(__SSE4_2__)
  // Hardware path: align to 8 bytes, then crc 8 bytes per instruction.
  while (n > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --n;
  }
  while (n >= 8) {
    crc = static_cast<uint32_t>(_mm_crc32_u64(
        crc, *reinterpret_cast<const uint64_t*>(data)));
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --n;
  }
#else
  const Tables& tb = tables();
  while (n >= 8) {
    uint32_t lo = Load32(data) ^ crc;
    uint32_t hi = Load32(data + 4);
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xFF] ^ tb.t[2][(hi >> 8) & 0xFF] ^
          tb.t[1][(hi >> 16) & 0xFF] ^ tb.t[0][hi >> 24];
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *data++) & 0xFF] ^ (crc >> 8);
    --n;
  }
#endif
  return ~crc;
}

}  // namespace crc32c
}  // namespace lsmssd
