#ifndef LSMSSD_UTIL_TABLE_PRINTER_H_
#define LSMSSD_UTIL_TABLE_PRINTER_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace lsmssd {

/// Accumulates rows and renders them both as an aligned human-readable
/// table and as CSV. Every bench binary emits its figure's series through
/// one of these so the output format is uniform across experiments.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Appends one row; must have exactly as many cells as there are columns.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with operator<<.
  template <typename... Ts>
  void AddRowValues(const Ts&... values);

  size_t num_rows() const { return rows_.size(); }

  /// Aligned fixed-width table with a header rule.
  std::string ToAligned() const;

  /// RFC-4180-ish CSV (no quoting; cells must not contain commas).
  std::string ToCsv() const;

  /// Writes the aligned table followed by a CSV block delimited by
  /// "# begin-csv <tag>" / "# end-csv" markers for machine scraping.
  void Print(std::ostream& out, const std::string& tag) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

namespace internal_table {
std::string FormatCell(const std::string& v);
std::string FormatCell(const char* v);
std::string FormatCell(double v);
std::string FormatCell(float v);

template <typename T>
std::string FormatCell(const T& v) {
  return std::to_string(v);
}
}  // namespace internal_table

template <typename... Ts>
void TablePrinter::AddRowValues(const Ts&... values) {
  AddRow({internal_table::FormatCell(values)...});
}

}  // namespace lsmssd

#endif  // LSMSSD_UTIL_TABLE_PRINTER_H_
