#ifndef LSMSSD_NET_WIRE_H_
#define LSMSSD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/format/key_codec.h"
#include "src/util/status.h"

namespace lsmssd::net {

// ---------------------------------------------------------------------------
// Wire protocol v1 — the library's first *compatibility contract*.
//
// Every message (request or response) is one length-prefixed frame:
//
//   offset  size  field
//        0     4  magic          'L' 'S' 'M' 'S'
//        4     1  version        kWireVersion (1)
//        5     1  opcode         request: Opcode; response: Opcode | 0x80
//        6     2  reserved       must be zero (little-endian)
//        8     4  payload length little-endian, bytes following the header
//       12     4  crc32c         over bytes [4, 12) plus the payload
//       16     …  payload
//
// Versioning rule: the 16-byte header layout — magic position, version
// position, length position, and the CRC definition — is frozen across
// all versions; that is what lets a v1 peer *recognize* a frame from any
// future version and reply kUnsupportedVersion instead of desyncing.
// Within a version, changes must be additive (new opcodes, new trailing
// response fields); any change to an existing payload layout bumps
// kWireVersion. A server that receives a valid frame with an unknown
// version answers with a kUnsupportedVersion error response carrying its
// own version, then closes. A frame that fails magic/reserved/CRC/size
// validation is *malformed*: the server drops the connection without
// replying (there is no trustworthy opcode to reply to).
//
// Integers are little-endian except keys, which use the same big-endian
// order as the storage format (byte order == key order).
// ---------------------------------------------------------------------------

inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr uint8_t kResponseBit = 0x80;
inline constexpr char kWireMagic[4] = {'L', 'S', 'M', 'S'};

/// Default cap on a frame's payload; DecodeFrame treats anything larger
/// as malformed, bounding a connection's buffer memory.
inline constexpr size_t kDefaultMaxPayloadBytes = 4u << 20;

/// Operation selectors. Values are part of the wire contract: never
/// renumber, only append.
enum class Opcode : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kScan = 4,
  kStats = 5,
  /// Health check: empty request payload, empty OK response. Added within
  /// v1 (additive); older servers answer kUnimplemented, which callers
  /// should treat as "alive but old".
  kPing = 6,
};

/// True for the opcode byte of a response frame.
inline bool IsResponseOpcode(uint8_t opcode) {
  return (opcode & kResponseBit) != 0;
}

/// Wire error codes carried in the first payload byte of every response.
/// Values are part of the wire contract: never renumber, only append.
/// The first block mirrors StatusCode one-to-one (see WireErrorFromStatus
/// / StatusFromWire — the single mapping used by server encode and client
/// decode, so ResourceExhausted backpressure and Corruption stay
/// distinguishable end to end); the 100+ block is protocol-level.
enum class WireError : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIoError = 4,
  kOutOfRange = 5,
  kFailedPrecondition = 6,
  kResourceExhausted = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kUnsupportedVersion = 100,  ///< Valid frame, unknown version byte.
  kMalformedRequest = 101,    ///< Opcode known, payload undecodable.
  /// Load shed: the server's pending-work cap is full and this request
  /// was rejected WITHOUT executing (retry is always safe, writes
  /// included). The message carries a `retry_after_ms=<N>` hint — see
  /// ParseRetryAfterMs. Decodes to Status::Unavailable client-side.
  kOverloaded = 102,
  /// Graceful drain: the server is shutting down and this request was
  /// rejected without executing. Decodes to Status::Unavailable.
  kShuttingDown = 103,
};

/// Status -> wire code (kOk for OK). Every StatusCode has a distinct
/// wire value; the mapping is total.
WireError WireErrorFromStatus(const Status& status);

/// Wire code -> Status. Inverse of WireErrorFromStatus for every
/// StatusCode; the protocol-level codes (100+) decode to
/// FailedPrecondition/InvalidArgument with the message preserved. An
/// unknown code decodes to Internal naming the raw value.
Status StatusFromWire(WireError code, std::string message);

/// One decoded frame (header fields + raw payload bytes).
struct Frame {
  uint8_t version = 0;
  uint8_t opcode = 0;
  std::string payload;
};

enum class FrameDecodeResult {
  kFrame,     ///< One complete, CRC-valid frame consumed.
  kNeedMore,  ///< Buffer holds only a prefix; read more bytes.
  kMalformed, ///< Bad magic/reserved/CRC/oversized length: drop the peer.
};

/// Encodes one v1 frame.
std::string EncodeFrame(uint8_t opcode, std::string_view payload);

/// Attempts to decode one frame from the front of `buf`. On kFrame,
/// `*frame` is filled and `*consumed` is the byte count to drop from the
/// buffer. On kMalformed, `*error` (if non-null) describes the defect.
/// A valid frame with an unknown version still decodes as kFrame (the
/// header layout is version-invariant); callers reject the version.
FrameDecodeResult DecodeFrame(std::string_view buf, size_t max_payload_bytes,
                              Frame* frame, size_t* consumed,
                              std::string* error);

// ---- Little-endian / key primitives (exposed for tests) -------------------

void AppendU16(std::string* dst, uint16_t v);
void AppendU32(std::string* dst, uint32_t v);
void AppendU64(std::string* dst, uint64_t v);
/// Keys travel as 8 big-endian bytes regardless of Options::key_size
/// (byte order == key order, and the width is not format-dependent).
void AppendWireKey(std::string* dst, Key key);

/// Cursor-style readers: advance `*pos` past the field, return false when
/// the buffer is too short.
bool ReadU16(std::string_view buf, size_t* pos, uint16_t* v);
bool ReadU32(std::string_view buf, size_t* pos, uint32_t* v);
bool ReadU64(std::string_view buf, size_t* pos, uint64_t* v);
bool ReadWireKey(std::string_view buf, size_t* pos, Key* key);

// ---- Request payloads -----------------------------------------------------

std::string EncodeGetRequest(Key key);
std::string EncodePutRequest(Key key, std::string_view value);
std::string EncodeDeleteRequest(Key key);
/// `limit` caps the result count (0 = server maximum).
std::string EncodeScanRequest(Key lo, Key hi, uint32_t limit);
std::string EncodeStatsRequest();

bool DecodeGetRequest(std::string_view payload, Key* key);
bool DecodePutRequest(std::string_view payload, Key* key,
                      std::string_view* value);
bool DecodeDeleteRequest(std::string_view payload, Key* key);
bool DecodeScanRequest(std::string_view payload, Key* lo, Key* hi,
                       uint32_t* limit);

// ---- Response payloads ----------------------------------------------------

/// One key/value pair of a scan response.
struct ScanItem {
  Key key = 0;
  std::string value;
};

/// Error response for any opcode: wire code + u32 message length + bytes.
/// Requires !status.ok().
std::string EncodeErrorResponse(const Status& status);
/// Like EncodeErrorResponse but for the protocol-level codes.
std::string EncodeProtocolErrorResponse(WireError code, std::string_view msg);

/// kOverloaded response body carrying a machine-readable backoff hint in
/// the message (`retry_after_ms=<N>`).
std::string EncodeOverloadedResponse(uint32_t retry_after_ms);

/// Extracts the `retry_after_ms=<N>` hint from an error message (the
/// client feeds it into its backoff). False when no hint is present.
bool ParseRetryAfterMs(std::string_view message, uint32_t* retry_after_ms);

/// OK responses. Get carries the value; Put/Delete carry nothing; Scan
/// carries a count then (key, u32 length, value) triples; Stats carries
/// `key value` text lines (see Client::Stats).
std::string EncodeGetResponse(std::string_view value);
std::string EncodeEmptyOkResponse();
std::string EncodeScanResponse(const std::vector<ScanItem>& items);
std::string EncodeStatsResponse(std::string_view text);

/// Decodes the leading status of any response payload. On OK,
/// `*body` is the remainder of the payload (op-specific). On error the
/// returned Status carries the decoded code + message; `*body` is empty.
Status DecodeResponseStatus(std::string_view payload, std::string_view* body);

/// Op-specific OK-body decoders (false = truncated/inconsistent body).
bool DecodeScanResponseBody(std::string_view body,
                            std::vector<ScanItem>* items);

}  // namespace lsmssd::net

#endif  // LSMSSD_NET_WIRE_H_
