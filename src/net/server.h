#ifndef LSMSSD_NET_SERVER_H_
#define LSMSSD_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/db/db.h"
#include "src/net/wire.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd::net {

/// Configuration of a Server.
struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = pick an ephemeral port (see Server::port()).
  /// Worker threads executing decoded requests against the Db. Workers on
  /// different connections commit concurrently, so their WAL syncs batch
  /// through the Db's existing cross-thread group commit — the server
  /// adds no commit path of its own.
  size_t workers = 4;
  size_t max_frame_payload_bytes = kDefaultMaxPayloadBytes;
  /// Hard cap on one SCAN response (requests asking for more are
  /// truncated to this many items).
  uint32_t max_scan_results = 65536;
  /// Per-connection cap on decoded-but-unexecuted pipelined requests;
  /// past it the server stops reading that socket until the worker
  /// drains below (TCP backpressure, bounded memory).
  size_t max_pipelined_requests = 1024;
  /// Pool-wide cap on decoded-but-unexecuted requests across all
  /// connections. Past it the server *sheds*: each excess request is
  /// answered kOverloaded (with a retry-after hint) without touching the
  /// Db or keeping its payload, instead of queueing without bound. The
  /// rejection still flows through the connection's in-order response
  /// stream. 0 disables shedding.
  size_t max_pending_frames = 4096;
  /// Retry-after hint embedded in kOverloaded responses.
  uint32_t overload_retry_after_ms = 10;
  /// Slow-client eviction: a connection whose unsent response backlog
  /// exceeds this many bytes after a flush attempt is dropped (counted in
  /// connections_dropped_slow). Protects server memory from clients that
  /// pipeline requests but never read responses. 0 disables.
  size_t max_conn_backlog_bytes = 8u << 20;
  int listen_backlog = 128;
  /// Test seam: when set, workers call this once per executed request,
  /// before touching the Db. Lets tests hold the pool busy at a barrier.
  std::function<void()> worker_hook_for_testing;
};

/// Monotonic server counters (exposed via counters() and over the wire
/// in the STATS response).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped_malformed = 0;  ///< Frame-level garbage.
  uint64_t frames_processed = 0;               ///< Request frames executed.
  uint64_t unsupported_version_frames = 0;
  uint64_t frames_shed_overload = 0;     ///< Answered kOverloaded, unexecuted.
  uint64_t frames_rejected_shutdown = 0; ///< Answered kShuttingDown (drain).
  uint64_t connections_dropped_slow = 0; ///< Evicted over the backlog cap.
};

/// Pipelined binary-protocol server over one Db.
///
/// Architecture: one epoll thread owns every socket (accept, read, frame
/// decode, response flush); a pool of worker threads executes decoded
/// requests against the Db and hands encoded responses back for the
/// epoll thread to write. A connection's requests execute strictly in
/// receive order (one worker per connection at a time), so clients may
/// pipeline freely; different connections execute concurrently, which is
/// what batches their writes into one group-commit fsync.
///
/// Protocol errors are two-tier (see wire.h): a CRC-valid frame with an
/// undecodable payload gets a kMalformedRequest error response; a frame
/// that fails magic/reserved/CRC/size validation proves the byte stream
/// is desynced, and the connection is dropped without a reply — the Db
/// itself is never poisoned by anything a client sends.
class Server {
 public:
  /// Binds and listens on opts.host:opts.port, then starts the epoll and
  /// worker threads. `db` must outlive the server and be open; the
  /// server never Close()s it.
  static StatusOr<std::unique_ptr<Server>> Start(const ServerOptions& opts,
                                                 Db* db);
  ~Server();  ///< Stop()s if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 at Start).
  uint16_t port() const { return port_; }

  /// Abrupt shutdown: stops accepting, closes every connection, joins
  /// all threads. In-flight requests finish against the Db; their
  /// responses are not guaranteed to be delivered. Idempotent.
  void Stop();

  /// Graceful drain (the SIGTERM path): stop accepting, answer every
  /// already-accepted frame — executed requests with their real response,
  /// requests arriving after the drain begins with kShuttingDown — flush
  /// all responses, and close each connection as it goes idle. Once every
  /// connection has drained, or `deadline_ms` elapses, falls through to
  /// Stop(). Returns true when the drain completed before the deadline
  /// (no connection was cut with undelivered output). Idempotent;
  /// callers checkpoint the Db afterwards.
  bool Drain(int deadline_ms);

  ServerCounters counters() const;

 private:
  struct Connection;

  Server(const ServerOptions& opts, Db* db) : opts_(opts), db_(db) {}

  Status Listen();
  void EpollLoop();
  void WorkerLoop();

  // ---- Epoll-thread-only connection management ------------------------
  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Parses every complete frame in conn->inbuf, queueing work.
  void ParseFrames(const std::shared_ptr<Connection>& conn);
  /// Writes as much buffered output as the socket accepts; arms/disarms
  /// EPOLLOUT; closes the connection when it is finished or broken.
  void TryFlush(const std::shared_ptr<Connection>& conn);
  void UpdateEpollInterest(const std::shared_ptr<Connection>& conn);
  void CloseConn(const std::shared_ptr<Connection>& conn);
  /// Drains the worker->epoll flush queue (eventfd handler).
  void DrainFlushQueue();

  // ---- Worker side ----------------------------------------------------
  void EnqueueWork(const std::shared_ptr<Connection>& conn);
  /// Executes one decoded request, returning the encoded response frame.
  std::string HandleRequest(const Frame& frame);
  std::string BuildStatsText();
  /// Signals the epoll thread that `conn` has new output.
  void SignalFlush(const std::shared_ptr<Connection>& conn);

  ServerOptions opts_;
  Db* db_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: worker output ready, or Stop().
  uint16_t port_ = 0;

  std::thread epoll_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool drain_begun_ = false;  ///< Epoll thread: drain housekeeping done.

  /// Decoded-but-unexecuted requests across all connections (shed markers
  /// excluded) — the quantity max_pending_frames caps.
  std::atomic<int64_t> pending_frames_{0};
  /// Open connections; Drain() waits for this to reach zero.
  std::atomic<int64_t> live_conns_{0};

  /// Live connections, keyed by fd. Epoll thread only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Connection>> work_q_;

  std::mutex flush_mu_;
  std::vector<std::shared_ptr<Connection>> flush_q_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_malformed_{0};
  std::atomic<uint64_t> frames_processed_{0};
  std::atomic<uint64_t> unsupported_version_frames_{0};
  std::atomic<uint64_t> frames_shed_overload_{0};
  std::atomic<uint64_t> frames_rejected_shutdown_{0};
  std::atomic<uint64_t> connections_dropped_slow_{0};
};

}  // namespace lsmssd::net

#endif  // LSMSSD_NET_SERVER_H_
