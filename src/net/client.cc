#include "src/net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace lsmssd::net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IoError(what + ": " + std::strerror(err));
}

Status SetSocketTimeout(int fd, int which, int ms) {
  if (ms <= 0) return Status::OK();
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(timeout)", errno);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(const ClientOptions& opts) {
  if (opts.port == 0) {
    return Status::InvalidArgument("ClientOptions::port must be set");
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(opts.port);
  if (int rc = getaddrinfo(opts.host.c_str(), port_str.c_str(), &hints, &res);
      rc != 0) {
    return Status::IoError("getaddrinfo(" + opts.host +
                           "): " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::IoError("no addresses for " + opts.host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    // Non-blocking connect so the timeout is enforceable.
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = poll(&pfd, 1, opts.connect_timeout_ms > 0 ? opts.connect_timeout_ms
                                                     : -1);
      if (rc == 0) {
        last = Status::IoError("connect timeout to " + opts.host + ":" +
                               port_str);
        close(fd);
        fd = -1;
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      rc = so_error == 0 ? 0 : -1;
      errno = so_error;
    }
    if (rc != 0) {
      last = ErrnoStatus("connect " + opts.host + ":" + port_str, errno);
      close(fd);
      fd = -1;
      continue;
    }
    fcntl(fd, F_SETFL, flags);  // Back to blocking for request/response.
    break;
  }
  freeaddrinfo(res);
  if (fd < 0) return last;

  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (Status st = SetSocketTimeout(fd, SO_RCVTIMEO, opts.io_timeout_ms);
      !st.ok()) {
    close(fd);
    return st;
  }
  if (Status st = SetSocketTimeout(fd, SO_SNDTIMEO, opts.io_timeout_ms);
      !st.ok()) {
    close(fd);
    return st;
  }
  auto client = std::unique_ptr<Client>(new Client(opts));
  client->fd_ = fd;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::Fail(Status st) {
  if (dead_.ok()) dead_ = st;
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  return st;
}

Status Client::SendRaw(uint8_t opcode, std::string_view payload) {
  if (!dead_.ok()) return dead_;
  const std::string frame = EncodeFrame(opcode, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired. With nothing of the frame on the wire the
        // connection is still aligned — the caller may retry. A torn
        // frame, by contrast, desynchronizes the stream for good.
        if (sent == 0) {
          return Status::TimedOut("send timed out after " +
                                  std::to_string(opts_.io_timeout_ms) + "ms");
        }
        return Fail(Status::TimedOut(
            "send timed out mid-frame (" + std::to_string(sent) + "/" +
            std::to_string(frame.size()) + " bytes); stream desynchronized"));
      }
      return Fail(ErrnoStatus("send", errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::FillBuffer() {
  char buf[64 * 1024];
  const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
  if (n < 0) {
    if (errno == EINTR) return Status::OK();
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired: the server is slow or stalled, not broken.
      return Status::TimedOut("recv timed out after " +
                              std::to_string(opts_.io_timeout_ms) + "ms");
    }
    return ErrnoStatus("recv", errno);
  }
  if (n == 0) {
    return Status::IoError("connection closed by server");
  }
  inbuf_.append(buf, static_cast<size_t>(n));
  return Status::OK();
}

Status Client::ReceiveResponse(Frame* frame) {
  if (!dead_.ok()) return dead_;
  while (true) {
    size_t consumed = 0;
    std::string error;
    switch (DecodeFrame(inbuf_, opts_.max_frame_payload_bytes, frame,
                        &consumed, &error)) {
      case FrameDecodeResult::kFrame:
        inbuf_.erase(0, consumed);
        if (frame->version != kWireVersion) {
          // Still surface the server's error payload if it sent one
          // (kUnsupportedVersion replies carry the server's version).
          break;
        }
        if (!IsResponseOpcode(frame->opcode)) {
          return Fail(Status::Internal("server sent a request opcode"));
        }
        return Status::OK();
      case FrameDecodeResult::kNeedMore:
        if (Status st = FillBuffer(); !st.ok()) {
          // A timeout is NOT fatal: inbuf_ keeps any partial frame, the
          // stream stays aligned, and a later ReceiveResponse resumes
          // exactly where this one left off. Everything else latches.
          return st.IsTimedOut() ? st : Fail(st);
        }
        continue;
      case FrameDecodeResult::kMalformed:
        return Fail(Status::Internal("malformed server frame: " + error));
    }
    return Status::OK();
  }
}

Status Client::Call(Opcode op, std::string_view payload, Frame* reply) {
  LSMSSD_RETURN_IF_ERROR(SendRaw(static_cast<uint8_t>(op), payload));
  LSMSSD_RETURN_IF_ERROR(ReceiveResponse(reply));
  if (reply->opcode != (static_cast<uint8_t>(op) | kResponseBit)) {
    return Fail(Status::Internal(
        "response opcode mismatch: sent " +
        std::to_string(static_cast<int>(op)) + ", got " +
        std::to_string(static_cast<int>(reply->opcode))));
  }
  return Status::OK();
}

Status Client::Put(Key key, std::string_view value) {
  Frame reply;
  LSMSSD_RETURN_IF_ERROR(Call(Opcode::kPut, EncodePutRequest(key, value),
                              &reply));
  std::string_view body;
  return DecodeResponseStatus(reply.payload, &body);
}

Status Client::Delete(Key key) {
  Frame reply;
  LSMSSD_RETURN_IF_ERROR(Call(Opcode::kDelete, EncodeDeleteRequest(key),
                              &reply));
  std::string_view body;
  return DecodeResponseStatus(reply.payload, &body);
}

StatusOr<std::string> Client::Get(Key key) {
  Frame reply;
  LSMSSD_RETURN_IF_ERROR(Call(Opcode::kGet, EncodeGetRequest(key), &reply));
  std::string_view body;
  LSMSSD_RETURN_IF_ERROR(DecodeResponseStatus(reply.payload, &body));
  return std::string(body);
}

Status Client::Scan(Key lo, Key hi, uint32_t limit,
                    std::vector<ScanItem>* out) {
  Frame reply;
  LSMSSD_RETURN_IF_ERROR(Call(Opcode::kScan, EncodeScanRequest(lo, hi, limit),
                              &reply));
  std::string_view body;
  LSMSSD_RETURN_IF_ERROR(DecodeResponseStatus(reply.payload, &body));
  std::vector<ScanItem> items;
  if (!DecodeScanResponseBody(body, &items)) {
    return Fail(Status::Internal("undecodable scan response body"));
  }
  out->insert(out->end(), std::make_move_iterator(items.begin()),
              std::make_move_iterator(items.end()));
  return Status::OK();
}

StatusOr<ServerStats> Client::Stats() {
  Frame reply;
  LSMSSD_RETURN_IF_ERROR(Call(Opcode::kStats, EncodeStatsRequest(), &reply));
  std::string_view body;
  LSMSSD_RETURN_IF_ERROR(DecodeResponseStatus(reply.payload, &body));
  ServerStats stats;
  stats.text.assign(body);
  // Parseable prefix: `key value` lines up to the first blank line.
  std::string_view rest = body;
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view()
                                        : rest.substr(nl + 1);
    if (line.empty()) break;  // Blank line ends the parseable section.
    const size_t sp = line.find(' ');
    if (sp == std::string_view::npos) continue;
    const std::string_view k = line.substr(0, sp);
    const uint64_t v = std::strtoull(std::string(line.substr(sp + 1)).c_str(),
                                     nullptr, 10);
    if (k == "payload_size") stats.payload_size = v;
    else if (k == "shards") stats.shards = v;
    else if (k == "checkpoints") stats.checkpoints = v;
    else if (k == "memtables_sealed") stats.memtables_sealed = v;
    else if (k == "stall_events") stats.stall_events = v;
    else if (k == "quarantined_blocks") stats.quarantined_blocks = v;
    else if (k == "scrub_corruptions") stats.scrub_corruptions = v;
    else if (k == "scrub_blocks_verified") stats.scrub_blocks_verified = v;
    else if (k == "frames_processed") stats.frames_processed = v;
    else if (k == "connections_dropped") stats.connections_dropped = v;
  }
  return stats;
}

}  // namespace lsmssd::net
