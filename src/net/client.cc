#include "src/net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/util/backoff.h"

namespace lsmssd::net {

namespace {

/// Classifies a transport errno: "the peer went away" is retryable
/// Unavailable; everything else (bad fd, ENOMEM, ...) is a broken local
/// resource and stays fatal IoError.
Status ErrnoStatus(const std::string& what, int err) {
  const std::string msg = what + ": " + std::strerror(err);
  switch (err) {
    case ECONNRESET:
    case ECONNREFUSED:
    case ECONNABORTED:
    case EPIPE:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case ENETRESET:
    case ETIMEDOUT:
      return Status::Unavailable(msg);
    default:
      return Status::IoError(msg);
  }
}

Status SetSocketTimeout(int fd, int which, int ms) {
  if (ms <= 0) return Status::OK();
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(timeout)", errno);
  }
  return Status::OK();
}

/// Dials opts.host:opts.port with the connect timeout; on success returns
/// a blocking fd with TCP_NODELAY and the I/O timeouts applied.
StatusOr<int> Dial(const ClientOptions& opts) {
  if (opts.port == 0) {
    return Status::InvalidArgument("ClientOptions::port must be set");
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(opts.port);
  if (int rc = getaddrinfo(opts.host.c_str(), port_str.c_str(), &hints, &res);
      rc != 0) {
    return Status::IoError("getaddrinfo(" + opts.host +
                           "): " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::IoError("no addresses for " + opts.host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    // Non-blocking connect so the timeout is enforceable.
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = poll(&pfd, 1, opts.connect_timeout_ms > 0 ? opts.connect_timeout_ms
                                                     : -1);
      if (rc == 0) {
        last = Status::Unavailable("connect timeout to " + opts.host + ":" +
                                   port_str);
        close(fd);
        fd = -1;
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      rc = so_error == 0 ? 0 : -1;
      errno = so_error;
    }
    if (rc != 0) {
      last = ErrnoStatus("connect " + opts.host + ":" + port_str, errno);
      close(fd);
      fd = -1;
      continue;
    }
    fcntl(fd, F_SETFL, flags);  // Back to blocking for request/response.
    break;
  }
  freeaddrinfo(res);
  if (fd < 0) return last;

  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (Status st = SetSocketTimeout(fd, SO_RCVTIMEO, opts.io_timeout_ms);
      !st.ok()) {
    close(fd);
    return st;
  }
  if (Status st = SetSocketTimeout(fd, SO_SNDTIMEO, opts.io_timeout_ms);
      !st.ok()) {
    close(fd);
    return st;
  }
  return fd;
}

}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(const ClientOptions& opts) {
  auto fd = Dial(opts);
  LSMSSD_RETURN_IF_ERROR(fd.status());
  auto client = std::unique_ptr<Client>(new Client(opts));
  client->fd_ = *fd;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::Reconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  // Replies owed on the torn stream will never arrive: write them off so
  // the fresh stream starts with clean reply bookkeeping.
  stats_.abandoned_replies += pending_.size();
  pending_.clear();
  inbuf_.clear();
  dead_ = Status::OK();
  auto fd = Dial(opts_);
  if (!fd.ok()) {
    dead_ = fd.status();
    return fd.status();
  }
  fd_ = *fd;
  ++stats_.reconnects;
  if (opts_.fault_injector != nullptr) opts_.fault_injector->OnReconnect();
  return Status::OK();
}

Status Client::Fail(Status st) {
  if (dead_.ok()) dead_ = st;
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  return st;
}

ssize_t Client::IoSend(const void* buf, size_t len, int* err) {
  if (opts_.fault_injector != nullptr) {
    const auto action = opts_.fault_injector->Next(SocketOp::kSend);
    if (action.kind == SocketFaultInjector::Action::Kind::kErrno) {
      *err = action.err;
      return -1;
    }
    if (action.kind == SocketFaultInjector::Action::Kind::kShort &&
        len > action.cap_bytes) {
      len = action.cap_bytes;
    }
  }
  const ssize_t n = send(fd_, buf, len, MSG_NOSIGNAL);
  *err = errno;
  return n;
}

ssize_t Client::IoRecv(void* buf, size_t len, int* err) {
  if (opts_.fault_injector != nullptr) {
    const auto action = opts_.fault_injector->Next(SocketOp::kRecv);
    if (action.kind == SocketFaultInjector::Action::Kind::kErrno) {
      *err = action.err;
      return -1;
    }
    if (action.kind == SocketFaultInjector::Action::Kind::kShort &&
        len > action.cap_bytes) {
      len = action.cap_bytes;
    }
  }
  const ssize_t n = recv(fd_, buf, len, 0);
  *err = errno;
  return n;
}

Status Client::SendRaw(uint8_t opcode, std::string_view payload) {
  if (!dead_.ok()) return dead_;
  const std::string frame = EncodeFrame(opcode, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    int err = 0;
    const ssize_t n = IoSend(frame.data() + sent, frame.size() - sent, &err);
    if (n < 0) {
      if (err == EINTR) continue;
      if (err == EAGAIN || err == EWOULDBLOCK) {
        // SO_SNDTIMEO expired. With nothing of the frame on the wire the
        // connection is still aligned — the caller may retry. A torn
        // frame, by contrast, desynchronizes the stream for good.
        if (sent == 0) {
          return Status::TimedOut("send timed out after " +
                                  std::to_string(opts_.io_timeout_ms) + "ms");
        }
        return Fail(Status::TimedOut(
            "send timed out mid-frame (" + std::to_string(sent) + "/" +
            std::to_string(frame.size()) + " bytes); stream desynchronized"));
      }
      return Fail(ErrnoStatus("send", err));
    }
    sent += static_cast<size_t>(n);
  }
  pending_.push_back(PendingReply{next_seq_++, false});
  return Status::OK();
}

Status Client::FillBuffer() {
  char buf[64 * 1024];
  int err = 0;
  const ssize_t n = IoRecv(buf, sizeof(buf), &err);
  if (n < 0) {
    if (err == EINTR) return Status::OK();
    if (err == EAGAIN || err == EWOULDBLOCK) {
      // SO_RCVTIMEO expired: the server is slow or stalled, not broken.
      return Status::TimedOut("recv timed out after " +
                              std::to_string(opts_.io_timeout_ms) + "ms");
    }
    return ErrnoStatus("recv", err);
  }
  if (n == 0) {
    // Orderly close by the peer mid-conversation: it went away; the
    // connection (not the local machinery) is what broke.
    return Status::Unavailable("connection closed by server");
  }
  inbuf_.append(buf, static_cast<size_t>(n));
  return Status::OK();
}

Status Client::ReceiveResponse(Frame* frame) {
  if (!dead_.ok()) return dead_;
  while (true) {
    size_t consumed = 0;
    std::string error;
    switch (DecodeFrame(inbuf_, opts_.max_frame_payload_bytes, frame,
                        &consumed, &error)) {
      case FrameDecodeResult::kFrame: {
        inbuf_.erase(0, consumed);
        bool abandoned = false;
        if (!pending_.empty()) {
          abandoned = pending_.front().abandoned;
          pending_.pop_front();
        }
        if (abandoned) {
          // The reply to a request whose caller gave up waiting. Drop it
          // and keep reading: the next frame answers a newer request.
          continue;
        }
        if (frame->version != kWireVersion) {
          // Still surface the server's error payload if it sent one
          // (kUnsupportedVersion replies carry the server's version).
          break;
        }
        if (!IsResponseOpcode(frame->opcode)) {
          return Fail(Status::Internal("server sent a request opcode"));
        }
        return Status::OK();
      }
      case FrameDecodeResult::kNeedMore:
        if (Status st = FillBuffer(); !st.ok()) {
          // A timeout is NOT fatal: inbuf_ keeps any partial frame, the
          // stream stays aligned, and a later ReceiveResponse resumes
          // exactly where this one left off. Everything else latches.
          return st.IsTimedOut() ? st : Fail(st);
        }
        continue;
      case FrameDecodeResult::kMalformed:
        return Fail(Status::Internal("malformed server frame: " + error));
    }
    return Status::OK();
  }
}

Status Client::Invoke(Opcode op, std::string_view payload, bool is_write,
                      std::string* ok_body) {
  const RetryPolicy& rp = opts_.retry;
  const int max_attempts = rp.max_attempts < 1 ? 1 : rp.max_attempts;
  ExponentialBackoff::Options bo;
  bo.initial_ms = rp.initial_backoff_ms;
  bo.max_ms = rp.max_backoff_ms;
  bo.multiplier = rp.multiplier;
  bo.jitter = rp.jitter;
  bo.seed = rp.seed;
  ExponentialBackoff backoff(bo);
  Status last = Status::OK();
  // True while a reply for an already-sent request is owed on a healthy
  // stream — the retry then *waits*, it does not resend.
  bool awaiting_reply = false;
  uint32_t retry_after_hint = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retries;
      if (!awaiting_reply) {
        int delay = backoff.NextDelayMs();
        if (retry_after_hint > static_cast<uint32_t>(delay)) {
          delay = static_cast<int>(retry_after_hint);
        }
        retry_after_hint = 0;
        if (delay > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
      }
    }
    if ((fd_ < 0 || !dead_.ok()) && max_attempts > 1) {
      if (Status st = Reconnect(); !st.ok()) {
        last = st;
        if (st.IsUnavailable()) continue;  // server down; back off, re-dial
        return st;
      }
      awaiting_reply = false;
    }
    if (!awaiting_reply) {
      if (Status st = SendRaw(static_cast<uint8_t>(op), payload); !st.ok()) {
        last = st;
        // A send-phase failure means the server did not execute: a torn
        // request frame is discarded whole on the peer. Resending is
        // safe for every op, writes included.
        if (st.IsTimedOut()) {
          ++stats_.send_timeouts;
          continue;
        }
        if (st.IsUnavailable()) continue;
        return st;
      }
      awaiting_reply = true;
    }
    Frame reply;
    if (Status st = ReceiveResponse(&reply); !st.ok()) {
      last = st;
      if (st.IsTimedOut()) {
        // Reply still owed on an aligned stream: keep waiting, do not
        // resend (resending here is what double-applies).
        ++stats_.recv_timeouts;
        continue;
      }
      if (st.IsUnavailable() && (!is_write || rp.retry_writes)) {
        // Ambiguous: the request may or may not have executed before the
        // connection died. Reads resend freely; writes only by opt-in.
        awaiting_reply = false;
        continue;
      }
      return st;
    }
    awaiting_reply = false;
    if (reply.opcode != (static_cast<uint8_t>(op) | kResponseBit)) {
      return Fail(Status::Internal(
          "response opcode mismatch: sent " +
          std::to_string(static_cast<int>(op)) + ", got " +
          std::to_string(static_cast<int>(reply.opcode))));
    }
    std::string_view body;
    Status st = DecodeResponseStatus(reply.payload, &body);
    if (st.ok()) {
      if (ok_body != nullptr) ok_body->assign(body);
      return Status::OK();
    }
    if (st.IsUnavailable()) {
      // kOverloaded / kShuttingDown: the server rejected the request
      // *before* executing it — always safe to resend, and kOverloaded
      // carries a retry-after floor for the backoff.
      ++stats_.overloaded_replies;
      ParseRetryAfterMs(st.message(), &retry_after_hint);
      last = st;
      continue;
    }
    return st;  // Application-level result (NotFound, backpressure, ...).
  }
  if (awaiting_reply && !pending_.empty()) {
    // Every attempt timed out with the reply still owed. Mark it so a
    // later call on this client drains it instead of misparsing it as
    // its own answer.
    pending_.back().abandoned = true;
    ++stats_.abandoned_replies;
  }
  return last;
}

Status Client::Put(Key key, std::string_view value) {
  return Invoke(Opcode::kPut, EncodePutRequest(key, value), /*is_write=*/true,
                nullptr);
}

Status Client::Delete(Key key) {
  return Invoke(Opcode::kDelete, EncodeDeleteRequest(key), /*is_write=*/true,
                nullptr);
}

StatusOr<std::string> Client::Get(Key key) {
  std::string body;
  LSMSSD_RETURN_IF_ERROR(
      Invoke(Opcode::kGet, EncodeGetRequest(key), /*is_write=*/false, &body));
  return body;
}

Status Client::Scan(Key lo, Key hi, uint32_t limit,
                    std::vector<ScanItem>* out) {
  std::string body;
  LSMSSD_RETURN_IF_ERROR(Invoke(Opcode::kScan,
                                EncodeScanRequest(lo, hi, limit),
                                /*is_write=*/false, &body));
  std::vector<ScanItem> items;
  if (!DecodeScanResponseBody(body, &items)) {
    return Fail(Status::Internal("undecodable scan response body"));
  }
  out->insert(out->end(), std::make_move_iterator(items.begin()),
              std::make_move_iterator(items.end()));
  return Status::OK();
}

Status Client::Ping() {
  return Invoke(Opcode::kPing, std::string_view(), /*is_write=*/false,
                nullptr);
}

StatusOr<ServerStats> Client::Stats() {
  std::string body;
  LSMSSD_RETURN_IF_ERROR(Invoke(Opcode::kStats, EncodeStatsRequest(),
                                /*is_write=*/false, &body));
  ServerStats stats;
  stats.text = body;
  // Parseable prefix: `key value` lines up to the first blank line.
  std::string_view rest = stats.text;
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view()
                                        : rest.substr(nl + 1);
    if (line.empty()) break;  // Blank line ends the parseable section.
    const size_t sp = line.find(' ');
    if (sp == std::string_view::npos) continue;
    const std::string_view k = line.substr(0, sp);
    const uint64_t v = std::strtoull(std::string(line.substr(sp + 1)).c_str(),
                                     nullptr, 10);
    if (k == "payload_size") stats.payload_size = v;
    else if (k == "shards") stats.shards = v;
    else if (k == "checkpoints") stats.checkpoints = v;
    else if (k == "memtables_sealed") stats.memtables_sealed = v;
    else if (k == "stall_events") stats.stall_events = v;
    else if (k == "quarantined_blocks") stats.quarantined_blocks = v;
    else if (k == "scrub_corruptions") stats.scrub_corruptions = v;
    else if (k == "scrub_blocks_verified") stats.scrub_blocks_verified = v;
    else if (k == "frames_processed") stats.frames_processed = v;
    else if (k == "connections_dropped") stats.connections_dropped = v;
    else if (k == "frames_shed_overload") stats.frames_shed_overload = v;
    else if (k == "frames_rejected_shutdown") stats.frames_rejected_shutdown = v;
    else if (k == "connections_dropped_slow") stats.connections_dropped_slow = v;
  }
  return stats;
}

}  // namespace lsmssd::net
