#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/lsm/iterator.h"

namespace lsmssd::net {

namespace {
Status ErrnoStatus(const std::string& what, int err) {
  return Status::IoError(what + ": " + std::strerror(err));
}
}  // namespace

/// Per-connection state. The socket, epoll interest, input buffer, and
/// lifecycle flags belong to the epoll thread alone; `mu` guards only
/// the state that crosses the worker boundary (pending requests, the
/// busy flag, and buffered output).
struct Server::Connection {
  int fd = -1;
  bool dead = false;           ///< Closed and deregistered.
  bool eof = false;            ///< Peer half-closed; finish then close.
  bool closing = false;        ///< Close once output drains and idle.
  bool epollin_armed = true;
  bool epollout_armed = false;
  std::string inbuf;

  /// One queued unit of a connection's in-order response stream. Shed
  /// markers (overload / drain rejections) ride the same queue as real
  /// requests so their error responses interleave in receive order; their
  /// payload bytes are dropped at parse time, so a marker costs a few
  /// dozen bytes and zero Db work.
  struct WorkItem {
    enum class Kind : uint8_t { kExecute, kShedOverload, kShedShutdown };
    Frame frame;
    Kind kind = Kind::kExecute;
  };

  std::mutex mu;
  std::deque<WorkItem> pending;  ///< Decoded requests awaiting a worker.
  bool busy = false;           ///< A worker owns the pending queue.
  bool aborted = false;        ///< mu-side mirror of `dead`: the peer is
                               ///< gone; workers skip the queued Db work.
  std::string outbuf;          ///< Encoded responses awaiting the socket.
  size_t out_off = 0;
};

StatusOr<std::unique_ptr<Server>> Server::Start(const ServerOptions& opts,
                                                Db* db) {
  if (db == nullptr) return Status::InvalidArgument("Server needs a Db");
  if (opts.workers == 0) {
    return Status::InvalidArgument("ServerOptions::workers must be >= 1");
  }
  auto server = std::unique_ptr<Server>(new Server(opts, db));
  LSMSSD_RETURN_IF_ERROR(server->Listen());
  server->started_ = true;
  server->epoll_thread_ = std::thread([s = server.get()] { s->EpollLoop(); });
  server->workers_.reserve(opts.workers);
  for (size_t i = 0; i < opts.workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

Server::~Server() { Stop(); }

Status Server::Listen() {
  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket", errno);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + opts_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind " + opts_.host + ":" +
                           std::to_string(opts_.port),
                       errno);
  }
  if (listen(listen_fd_, opts_.listen_backlog) != 0) {
    return ErrnoStatus("listen", errno);
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname", errno);
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return ErrnoStatus("epoll_create1", errno);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return ErrnoStatus("eventfd", errno);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  return Status::OK();
}

void Server::Stop() {
  if (!started_) {
    // Start() failed before threads existed; release any fds Listen made.
    if (listen_fd_ >= 0) close(listen_fd_), listen_fd_ = -1;
    if (epoll_fd_ >= 0) close(epoll_fd_), epoll_fd_ = -1;
    if (wake_fd_ >= 0) close(wake_fd_), wake_fd_ = -1;
    return;
  }
  {
    std::lock_guard<std::mutex> l(work_mu_);
    if (stopping_.exchange(true)) return;  // Already stopped.
  }
  work_cv_.notify_all();
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  if (epoll_thread_.joinable()) epoll_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (listen_fd_ >= 0) close(listen_fd_), listen_fd_ = -1;
  if (epoll_fd_ >= 0) close(epoll_fd_), epoll_fd_ = -1;
  if (wake_fd_ >= 0) close(wake_fd_), wake_fd_ = -1;
}

bool Server::Drain(int deadline_ms) {
  if (!started_ || stopping_.load(std::memory_order_acquire)) {
    Stop();
    return true;
  }
  draining_.store(true, std::memory_order_release);
  // Wake the epoll thread: it closes the listener, marks every
  // connection closing, and flushes — all fd work stays on its thread.
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(deadline_ms < 0 ? 0 : deadline_ms);
  bool clean = false;
  while (true) {
    if (live_conns_.load(std::memory_order_relaxed) == 0 &&
        pending_frames_.load(std::memory_order_relaxed) == 0) {
      clean = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Stop();
  return clean;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections_accepted = connections_accepted_.load();
  c.connections_dropped_malformed = connections_dropped_malformed_.load();
  c.frames_processed = frames_processed_.load();
  c.unsupported_version_frames = unsupported_version_frames_.load();
  c.frames_shed_overload = frames_shed_overload_.load();
  c.frames_rejected_shutdown = frames_rejected_shutdown_.load();
  c.connections_dropped_slow = connections_dropped_slow_.load();
  return c;
}

// ---- Epoll thread ---------------------------------------------------------

void Server::EpollLoop() {
  std::vector<epoll_event> events(128);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself broke; shut the loop down.
    }
    if (draining_.load(std::memory_order_acquire) && !drain_begun_) {
      // Drain housekeeping, once: retire the listener (no new
      // connections) and put every live connection on the
      // close-when-idle path. Frames already buffered or still arriving
      // are answered (executed or kShuttingDown) before the close.
      drain_begun_ = true;
      if (listen_fd_ >= 0) {
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        close(listen_fd_);
        listen_fd_ = -1;
      }
      std::vector<std::shared_ptr<Connection>> live;
      live.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) live.push_back(conn);
      for (const auto& conn : live) {
        if (conn->dead) continue;
        conn->closing = true;
        TryFlush(conn);  // Closes immediately when already idle.
      }
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        DrainFlushQueue();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier this batch.
      std::shared_ptr<Connection> conn = it->second;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((ev & EPOLLIN) != 0) HandleReadable(conn);
      if (!conn->dead && (ev & EPOLLOUT) != 0) TryFlush(conn);
    }
  }
  // Shutdown: close every connection. Workers may still hold references;
  // they only touch mu-guarded fields, never the fd.
  for (auto& [fd, conn] : conns_) {
    conn->dead = true;
    {
      std::lock_guard<std::mutex> l(conn->mu);
      conn->aborted = true;
    }
    close(fd);
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
}

void Server::AcceptNew() {
  while (true) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error: wait for the next event.
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_[fd] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    live_conns_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (!conn->dead && conn->epollin_armed) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      ParseFrames(conn);
      continue;
    }
    if (n == 0) {
      conn->eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }
  if (conn->dead) return;
  if (conn->eof) {
    bool idle;
    {
      std::lock_guard<std::mutex> l(conn->mu);
      idle = !conn->busy && conn->pending.empty() && conn->outbuf.empty();
    }
    if (idle) {
      CloseConn(conn);
    } else {
      conn->closing = true;  // Deliver what is in flight, then close.
    }
  }
}

void Server::ParseFrames(const std::shared_ptr<Connection>& conn) {
  size_t pos = 0;
  bool paused = false;
  while (!conn->dead && !paused) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const std::string_view rest = std::string_view(conn->inbuf).substr(pos);
    const FrameDecodeResult r = DecodeFrame(
        rest, opts_.max_frame_payload_bytes, &frame, &consumed, &error);
    if (r == FrameDecodeResult::kNeedMore) break;
    if (r == FrameDecodeResult::kMalformed) {
      // The byte stream is not trustworthy past this point: there is no
      // reliable opcode to reply to, so drop the connection. The Db never
      // saw the bytes — nothing to poison.
      connections_dropped_malformed_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn);
      return;
    }
    pos += consumed;
    if (frame.version != kWireVersion) {
      unsupported_version_frames_.fetch_add(1, std::memory_order_relaxed);
      const std::string reply = EncodeFrame(
          static_cast<uint8_t>(frame.opcode | kResponseBit),
          EncodeProtocolErrorResponse(
              WireError::kUnsupportedVersion,
              "server speaks wire version " + std::to_string(kWireVersion)));
      {
        std::lock_guard<std::mutex> l(conn->mu);
        conn->outbuf.append(reply);
      }
      conn->closing = true;
      conn->inbuf.clear();
      conn->epollin_armed = false;
      UpdateEpollInterest(conn);
      TryFlush(conn);
      return;
    }
    // Admission decision, made before any Db work: drain rejections and
    // overload sheds become lightweight markers on the same in-order
    // queue (their payload bytes are released here), so a client that
    // pipelined N frames still receives exactly N responses in order.
    using Kind = Connection::WorkItem::Kind;
    Kind kind = Kind::kExecute;
    if (draining_.load(std::memory_order_acquire)) {
      kind = Kind::kShedShutdown;
      frames_rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    } else if (opts_.max_pending_frames > 0 &&
               pending_frames_.load(std::memory_order_relaxed) >=
                   static_cast<int64_t>(opts_.max_pending_frames) &&
               frame.opcode != static_cast<uint8_t>(Opcode::kPing) &&
               frame.opcode != static_cast<uint8_t>(Opcode::kStats)) {
      // Health probes are always admitted: an operator diagnosing an
      // overloaded server must still get PING/STATS answers — they do
      // no Db work, so admitting them cannot deepen the overload.
      kind = Kind::kShedOverload;
      frames_shed_overload_.fetch_add(1, std::memory_order_relaxed);
    } else {
      pending_frames_.fetch_add(1, std::memory_order_relaxed);
    }
    if (kind != Kind::kExecute) frame.payload = std::string();
    bool enqueue = false;
    {
      std::lock_guard<std::mutex> l(conn->mu);
      conn->pending.push_back(Connection::WorkItem{std::move(frame), kind});
      if (!conn->busy) {
        conn->busy = true;
        enqueue = true;
      }
      paused = conn->pending.size() >= opts_.max_pipelined_requests;
    }
    if (enqueue) EnqueueWork(conn);
  }
  if (!conn->dead && pos > 0) conn->inbuf.erase(0, pos);
  if (paused && conn->epollin_armed) {
    // Pipelining backpressure: stop reading this socket until the worker
    // drains the queue (TryFlush re-arms and re-parses).
    conn->epollin_armed = false;
    UpdateEpollInterest(conn);
  }
}

void Server::TryFlush(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  bool blocked = false;
  bool broken = false;
  bool idle = false;
  size_t backlog_bytes = 0;
  {
    std::lock_guard<std::mutex> l(conn->mu);
    while (conn->out_off < conn->outbuf.size()) {
      const ssize_t n =
          send(conn->fd, conn->outbuf.data() + conn->out_off,
               conn->outbuf.size() - conn->out_off,
               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;
          break;
        }
        broken = true;
        break;
      }
      conn->out_off += static_cast<size_t>(n);
    }
    if (conn->out_off == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_off = 0;
    }
    backlog_bytes = conn->outbuf.size() - conn->out_off;
    idle = !conn->busy && conn->pending.empty() && conn->outbuf.empty();
  }
  if (broken) {
    CloseConn(conn);
    return;
  }
  if (opts_.max_conn_backlog_bytes > 0 &&
      backlog_bytes > opts_.max_conn_backlog_bytes) {
    // Slow-client eviction: the peer pipelines requests but does not
    // read responses; its backlog, not the worker pool, is the memory
    // it is consuming. Dropping the connection frees it — the client
    // observes a reset (Unavailable) and may reconnect with backoff.
    connections_dropped_slow_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(conn);
    return;
  }
  if (blocked) {
    if (!conn->epollout_armed) {
      conn->epollout_armed = true;
      UpdateEpollInterest(conn);
    }
    return;
  }
  if (conn->epollout_armed) {
    conn->epollout_armed = false;
    UpdateEpollInterest(conn);
  }
  if ((conn->closing || conn->eof) && idle) {
    CloseConn(conn);
    return;
  }
  // Resume reading once the pipeline backlog has drained.
  if (!conn->epollin_armed && !conn->closing && !conn->eof) {
    size_t backlog;
    {
      std::lock_guard<std::mutex> l(conn->mu);
      backlog = conn->pending.size();
    }
    if (backlog < opts_.max_pipelined_requests / 2 + 1) {
      conn->epollin_armed = true;
      UpdateEpollInterest(conn);
      ParseFrames(conn);  // Frames may already be buffered past the pause.
    }
  }
}

void Server::UpdateEpollInterest(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  epoll_event ev{};
  ev.events = (conn->epollin_armed ? EPOLLIN : 0u) |
              (conn->epollout_armed ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConn(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  {
    std::lock_guard<std::mutex> l(conn->mu);
    conn->aborted = true;
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conns_.erase(conn->fd);
  close(conn->fd);
  live_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::DrainFlushQueue() {
  std::vector<std::shared_ptr<Connection>> ready;
  {
    std::lock_guard<std::mutex> l(flush_mu_);
    ready.swap(flush_q_);
  }
  for (const auto& conn : ready) {
    if (!conn->dead) TryFlush(conn);
  }
}

// ---- Workers --------------------------------------------------------------

void Server::EnqueueWork(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> l(work_mu_);
    work_q_.push_back(conn);
  }
  work_cv_.notify_one();
}

void Server::SignalFlush(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> l(flush_mu_);
    flush_q_.push_back(conn);
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void Server::WorkerLoop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lk(work_mu_);
      work_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) || !work_q_.empty();
      });
      if (work_q_.empty()) return;  // stopping_ and nothing left.
      conn = std::move(work_q_.front());
      work_q_.pop_front();
    }
    // Drain this connection until its pipeline is empty. Only one worker
    // holds a given connection at a time (the busy flag), so requests
    // execute — and respond — strictly in receive order.
    while (true) {
      std::deque<Connection::WorkItem> batch;
      bool aborted = false;
      {
        std::lock_guard<std::mutex> l(conn->mu);
        if (conn->pending.empty()) {
          conn->busy = false;
          break;
        }
        batch.swap(conn->pending);
        aborted = conn->aborted;
      }
      int64_t executes = 0;
      for (const Connection::WorkItem& item : batch) {
        if (item.kind == Connection::WorkItem::Kind::kExecute) ++executes;
      }
      if (executes > 0) {
        pending_frames_.fetch_sub(executes, std::memory_order_relaxed);
      }
      if (aborted) continue;  // Peer gone: nobody will read the responses,
                              // so skip the Db work (and any duplicate
                              // application a retrying client would risk).
      std::string out;
      for (const Connection::WorkItem& item : batch) {
        const uint8_t response_op =
            static_cast<uint8_t>(item.frame.opcode | kResponseBit);
        switch (item.kind) {
          case Connection::WorkItem::Kind::kExecute:
            out.append(HandleRequest(item.frame));
            break;
          case Connection::WorkItem::Kind::kShedOverload:
            out.append(EncodeFrame(
                response_op,
                EncodeOverloadedResponse(opts_.overload_retry_after_ms)));
            break;
          case Connection::WorkItem::Kind::kShedShutdown:
            out.append(EncodeFrame(
                response_op,
                EncodeProtocolErrorResponse(WireError::kShuttingDown,
                                            "server draining")));
            break;
        }
      }
      {
        std::lock_guard<std::mutex> l(conn->mu);
        conn->outbuf.append(out);
      }
      SignalFlush(conn);
    }
    SignalFlush(conn);  // Final idle/close check for this connection.
  }
}

std::string Server::HandleRequest(const Frame& frame) {
  if (opts_.worker_hook_for_testing) opts_.worker_hook_for_testing();
  frames_processed_.fetch_add(1, std::memory_order_relaxed);
  const uint8_t response_op =
      static_cast<uint8_t>(frame.opcode | kResponseBit);
  auto malformed = [&](const char* what) {
    return EncodeFrame(response_op, EncodeProtocolErrorResponse(
                                        WireError::kMalformedRequest, what));
  };
  std::string body;
  switch (static_cast<Opcode>(frame.opcode)) {
    case Opcode::kGet: {
      Key key = 0;
      if (!DecodeGetRequest(frame.payload, &key)) {
        return malformed("undecodable GET payload");
      }
      StatusOr<std::string> value = db_->Get(key);
      body = value.ok() ? EncodeGetResponse(value.value())
                        : EncodeErrorResponse(value.status());
      break;
    }
    case Opcode::kPut: {
      Key key = 0;
      std::string_view value;
      if (!DecodePutRequest(frame.payload, &key, &value)) {
        return malformed("undecodable PUT payload");
      }
      if (value.size() != db_->options().payload_size) {
        body = EncodeErrorResponse(Status::InvalidArgument(
            "payload must be exactly " +
            std::to_string(db_->options().payload_size) + " bytes, got " +
            std::to_string(value.size())));
        break;
      }
      const Status st = db_->Put(key, value);
      body = st.ok() ? EncodeEmptyOkResponse() : EncodeErrorResponse(st);
      break;
    }
    case Opcode::kDelete: {
      Key key = 0;
      if (!DecodeDeleteRequest(frame.payload, &key)) {
        return malformed("undecodable DELETE payload");
      }
      const Status st = db_->Delete(key);
      body = st.ok() ? EncodeEmptyOkResponse() : EncodeErrorResponse(st);
      break;
    }
    case Opcode::kScan: {
      Key lo = 0;
      Key hi = 0;
      uint32_t limit = 0;
      if (!DecodeScanRequest(frame.payload, &lo, &hi, &limit)) {
        return malformed("undecodable SCAN payload");
      }
      uint32_t cap = opts_.max_scan_results;
      if (limit != 0 && limit < cap) cap = limit;
      std::unique_ptr<Iterator> it = db_->NewIterator();
      if (it == nullptr) {
        body = EncodeErrorResponse(
            Status::FailedPrecondition("db is in a failed state"));
        break;
      }
      std::vector<ScanItem> items;
      for (it->Seek(lo);
           it->Valid() && it->key() <= hi && items.size() < cap;
           it->Next()) {
        items.push_back(ScanItem{it->key(), it->value()});
      }
      body = it->status().ok() ? EncodeScanResponse(items)
                               : EncodeErrorResponse(it->status());
      break;
    }
    case Opcode::kStats:
      body = EncodeStatsResponse(BuildStatsText());
      break;
    case Opcode::kPing:
      if (!frame.payload.empty()) {
        return malformed("PING carries no payload");
      }
      body = EncodeEmptyOkResponse();
      break;
    default:
      body = EncodeErrorResponse(Status::Unimplemented(
          "unknown opcode " + std::to_string(frame.opcode)));
      break;
  }
  return EncodeFrame(response_op, body);
}

std::string Server::BuildStatsText() {
  const DbStats s = db_->Stats();
  std::string t;
  auto line = [&t](const char* key, uint64_t value) {
    t += key;
    t += ' ';
    t += std::to_string(value);
    t += '\n';
  };
  line("payload_size", db_->options().payload_size);
  line("shards", s.shards);
  line("checkpoints", s.checkpoints);
  line("memtables_sealed", s.memtables_sealed);
  line("stall_events", s.stall_events);
  line("quarantined_blocks", s.quarantined_blocks.size());
  line("scrub_corruptions", s.scrub_corruptions_found);
  line("scrub_blocks_verified", s.scrub_blocks_verified);
  line("frames_processed", frames_processed_.load());
  line("connections_dropped", connections_dropped_malformed_.load());
  line("frames_shed_overload", frames_shed_overload_.load());
  line("frames_rejected_shutdown", frames_rejected_shutdown_.load());
  line("connections_dropped_slow", connections_dropped_slow_.load());
  t += '\n';
  t += s.ToString();
  return t;
}

}  // namespace lsmssd::net
