#include "src/net/fault_socket.h"

#include <cerrno>
#include <chrono>
#include <thread>

namespace lsmssd::net {

SocketFaultInjector::Action SocketFaultInjector::Next(SocketOp op) {
  Action action;
  const uint64_t step = steps_.fetch_add(1, std::memory_order_relaxed) + 1;

  // An armed clock that has fired models the network staying down: every
  // op from then on is a reset, until the sweep driver Disarms it.
  if (clock_ != nullptr && clock_->Step()) {
    resets_.fetch_add(1, std::memory_order_relaxed);
    action.kind = Action::Kind::kErrno;
    action.err = ECONNRESET;
    return action;
  }
  if (pending_reset_.load(std::memory_order_relaxed)) {
    pending_reset_.store(false, std::memory_order_relaxed);
    resets_.fetch_add(1, std::memory_order_relaxed);
    action.kind = Action::Kind::kErrno;
    action.err = ECONNRESET;
    return action;
  }

  auto fires = [step](uint64_t every) { return every != 0 && step % every == 0; };

  if (fires(config_.delay_every)) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.delay_ms));
    return action;  // delayed, then passes through
  }
  if (fires(config_.eintr_every)) {
    eintr_.fetch_add(1, std::memory_order_relaxed);
    action.kind = Action::Kind::kErrno;
    action.err = EINTR;
    return action;
  }
  if (fires(config_.eagain_every)) {
    eagain_.fetch_add(1, std::memory_order_relaxed);
    action.kind = Action::Kind::kErrno;
    action.err = EAGAIN;
    return action;
  }
  if (fires(config_.short_every)) {
    short_ios_.fetch_add(1, std::memory_order_relaxed);
    action.kind = Action::Kind::kShort;
    action.cap_bytes = config_.short_bytes == 0 ? 1 : config_.short_bytes;
    return action;
  }
  if (fires(config_.truncate_every) && op == SocketOp::kSend) {
    truncations_.fetch_add(1, std::memory_order_relaxed);
    pending_reset_.store(true, std::memory_order_relaxed);
    action.kind = Action::Kind::kShort;
    action.cap_bytes = config_.short_bytes == 0 ? 1 : config_.short_bytes;
    return action;
  }
  if (fires(config_.reset_every)) {
    resets_.fetch_add(1, std::memory_order_relaxed);
    action.kind = Action::Kind::kErrno;
    action.err = ECONNRESET;
    return action;
  }
  return action;
}

}  // namespace lsmssd::net
