#ifndef LSMSSD_NET_FAULT_SOCKET_H_
#define LSMSSD_NET_FAULT_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/storage/fault_injection.h"

namespace lsmssd::net {

/// Which syscall the client is about to issue. Rules can target one side
/// of the stream (e.g. short reads only).
enum class SocketOp { kSend, kRecv };

/// Periodic fault rules, all counted in injector steps (one step per
/// intercepted send/recv attempt). A rule with period 0 is off; a rule
/// with period N fires on every N-th step it is eligible for. At most one
/// rule fires per step, checked in the order: delay, eintr, eagain,
/// short, truncate, reset — so configs with distinct periods produce a
/// deterministic interleaving.
struct SocketFaultConfig {
  /// Sleep `delay_ms` before the op (models a congested or distant peer).
  uint64_t delay_every = 0;
  int delay_ms = 1;
  /// Fail the op with EINTR (signal delivery mid-syscall).
  uint64_t eintr_every = 0;
  /// Fail the op with EAGAIN (kernel buffer momentarily full/empty).
  uint64_t eagain_every = 0;
  /// Cap the op at `short_bytes` bytes (partial read/write).
  uint64_t short_every = 0;
  size_t short_bytes = 3;
  /// Cap a *send* at `short_bytes`, then fail every subsequent op with
  /// ECONNRESET until OnReconnect(): a mid-frame truncation as seen by
  /// the peer (it receives a frame prefix, then EOF).
  uint64_t truncate_every = 0;
  /// Fail the op with ECONNRESET (peer reset / network partition).
  uint64_t reset_every = 0;
};

/// The network analogue of FaultInjectionBlockDevice: a deterministic
/// fault schedule the client consults before every send/recv. Shares the
/// step-clock idiom with storage::FaultInjector — in fact it *ticks* one,
/// so Arm(k) on the underlying clock turns step k (and all later steps,
/// the clock latches) into a permanent connection reset. That gives
/// sweeps the same shape as the crash sweeps in tests/db: for k in
/// 0..N, arm at k, run the op sequence, assert the invariant.
///
/// One injector drives one client (the step sequence is the
/// determinism contract); Next() is nevertheless thread-safe so a
/// misconfigured share degrades to interleaved-but-counted, not UB.
class SocketFaultInjector {
 public:
  /// What the intercepted I/O wrapper should do for this op.
  struct Action {
    enum class Kind : uint8_t {
      kPass,   ///< Perform the op normally.
      kErrno,  ///< Do not perform the op; fail with errno `err`.
      kShort,  ///< Perform the op but cap the byte count at `cap_bytes`.
    };
    Kind kind = Kind::kPass;
    int err = 0;
    size_t cap_bytes = 0;
  };

  /// Injection totals, for bench reporting and test assertions.
  struct Counters {
    uint64_t delays = 0;
    uint64_t eintr = 0;
    uint64_t eagain = 0;
    uint64_t short_ios = 0;
    uint64_t truncations = 0;
    uint64_t resets = 0;
  };

  /// `clock` may be null (periodic rules only, no armed-step sweeps);
  /// when set it is ticked once per Next() and is not owned.
  SocketFaultInjector(FaultInjector* clock, const SocketFaultConfig& config)
      : clock_(clock), config_(config) {}

  /// Decides the fate of the next I/O attempt. Performs the injected
  /// delay itself (sleeping here keeps the wrapper trivial).
  Action Next(SocketOp op);

  /// The client calls this after tearing down and re-dialing the
  /// connection: a pending truncation-reset applies to the torn stream,
  /// not the fresh one. (An *armed clock* keeps resetting — a tripped
  /// FaultInjector models the network staying down until Disarm.)
  void OnReconnect() { pending_reset_.store(false, std::memory_order_relaxed); }

  Counters counters() const {
    Counters c;
    c.delays = delays_.load(std::memory_order_relaxed);
    c.eintr = eintr_.load(std::memory_order_relaxed);
    c.eagain = eagain_.load(std::memory_order_relaxed);
    c.short_ios = short_ios_.load(std::memory_order_relaxed);
    c.truncations = truncations_.load(std::memory_order_relaxed);
    c.resets = resets_.load(std::memory_order_relaxed);
    return c;
  }

  /// Steps consumed so far (== intercepted I/O attempts).
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

 private:
  FaultInjector* clock_;
  const SocketFaultConfig config_;
  std::atomic<uint64_t> steps_{0};
  std::atomic<bool> pending_reset_{false};
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> eintr_{0};
  std::atomic<uint64_t> eagain_{0};
  std::atomic<uint64_t> short_ios_{0};
  std::atomic<uint64_t> truncations_{0};
  std::atomic<uint64_t> resets_{0};
};

}  // namespace lsmssd::net

#endif  // LSMSSD_NET_FAULT_SOCKET_H_
